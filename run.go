package reo

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/sema"
)

// TaskPorts carries the ports handed to one task instance, in the order
// of the task's arguments in the main definition. Each argument yields an
// Outport (if the vertex is a connector tail) or an Inport (if it is a
// head); range arguments contribute one port per element. Tasks moving
// streams of items over one port should prefer the ports' batched
// operations (Outport.SendBatch / Inport.RecvBatch), which amortize one
// coordination handshake over the whole batch.
type TaskPorts struct {
	Outs []Outport
	Ins  []Inport
}

// TaskFunc is the body of a task. The run ends when every task returns;
// a non-nil error aborts the run.
type TaskFunc func(tp TaskPorts) error

// Tasks maps task names (as written in main, e.g. "Tasks.pro") to bodies.
type Tasks map[string]TaskFunc

// RunResult reports statistics of a completed main run.
type RunResult struct {
	// Steps is the total number of global execution steps across all
	// connector instances.
	Steps int64
	// TaskCount is the number of task instances spawned.
	TaskCount int
}

// Run executes the program's first main definition: it instantiates the
// main's connectors for the given parameter values, spawns one goroutine
// per task instance, waits for all tasks to return, and closes the
// connectors.
func (p *Program) Run(args map[string]int, tasks Tasks, opts ...ConnectOption) (*RunResult, error) {
	if len(p.file.Mains) == 0 {
		return nil, fmt.Errorf("reo: program has no main definition")
	}
	return p.runMain(p.file.Mains[0], args, tasks, opts...)
}

func (p *Program) runMain(m *ast.MainDef, args map[string]int, tasks Tasks, opts ...ConnectOption) (*RunResult, error) {
	env := make(map[string]int)
	for _, prm := range m.Params {
		v, ok := args[prm]
		if !ok {
			return nil, fmt.Errorf("reo: main parameter %q not supplied", prm)
		}
		env[prm] = v
	}

	// Validate every task name statically, before instantiating any
	// connector or spawning any goroutine: a typo in the last task item
	// must not leave half a run behind.
	if err := validateTaskNames(m.Tasks, tasks); err != nil {
		return nil, err
	}

	// vertexPort resolves a main-level vertex name to a connector port.
	type portRef struct {
		out Outport
		in  Inport
	}
	vertices := make(map[string]portRef)
	var instances []*Instance
	closeAll := func() {
		for _, inst := range instances {
			inst.Close()
		}
	}

	evalArgPorts := func(a ast.PortArg) ([]string, error) {
		ev := func(e ast.IntExpr) (int, error) { return evalMainInt(e, env) }
		if a.IsRange {
			lo, err := ev(a.Lo)
			if err != nil {
				return nil, err
			}
			hi, err := ev(a.Hi)
			if err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, fmt.Errorf("%s: empty range %d..%d", a.Pos, lo, hi)
			}
			var names []string
			for i := lo; i <= hi; i++ {
				names = append(names, fmt.Sprintf("%s[%d]", a.Name, i))
			}
			return names, nil
		}
		name := a.Name
		for _, ix := range a.Indices {
			v, err := ev(ix)
			if err != nil {
				return nil, err
			}
			name += fmt.Sprintf("[%d]", v)
		}
		return []string{name}, nil
	}

	// Instantiate each connector of the main definition.
	for _, inv := range m.Conns {
		if _, isBuiltin := sema.Builtins[inv.Name]; isBuiltin {
			return nil, fmt.Errorf("%s: main must instantiate defined connectors, not primitive %q", inv.Pos, inv.Name)
		}
		conn, err := p.Connector(inv.Name)
		if err != nil {
			closeAll()
			return nil, err
		}
		// Map positional arguments to parameters, computing lengths.
		tmpl := conn.tmpl
		lengths := make(map[string]int)
		type binding struct {
			param  string
			names  []string
			isTail bool
		}
		var binds []binding
		bindSide := func(params []ast.Param, argsSide []ast.PortArg, isTail bool) error {
			if len(params) != len(argsSide) {
				return fmt.Errorf("%s: %q expects %d arguments, got %d", inv.Pos, inv.Name, len(params), len(argsSide))
			}
			for i, prm := range params {
				names, err := evalArgPorts(argsSide[i])
				if err != nil {
					return err
				}
				if prm.IsArray {
					lengths[prm.Name] = len(names)
				} else if len(names) != 1 {
					return fmt.Errorf("%s: scalar parameter %q needs one vertex, got %d", inv.Pos, prm.Name, len(names))
				}
				binds = append(binds, binding{param: prm.Name, names: names, isTail: isTail})
			}
			return nil
		}
		if err := bindSide(tmpl.Tails, inv.Tails, true); err != nil {
			closeAll()
			return nil, err
		}
		if err := bindSide(tmpl.Heads, inv.Heads, false); err != nil {
			closeAll()
			return nil, err
		}
		inst, err := conn.Connect(lengths, opts...)
		if err != nil {
			closeAll()
			return nil, err
		}
		instances = append(instances, inst)
		for _, b := range binds {
			if b.isTail {
				ports := inst.Outports(b.param)
				for i, name := range b.names {
					if _, dup := vertices[name]; dup {
						closeAll()
						return nil, fmt.Errorf("%s: vertex %q bound to two connector ports", inv.Pos, name)
					}
					vertices[name] = portRef{out: ports[i]}
				}
			} else {
				ports := inst.Inports(b.param)
				for i, name := range b.names {
					if _, dup := vertices[name]; dup {
						closeAll()
						return nil, fmt.Errorf("%s: vertex %q bound to two connector ports", inv.Pos, name)
					}
					vertices[name] = portRef{in: ports[i]}
				}
			}
		}
	}

	// Expand task items into concrete task instances.
	type taskRun struct {
		name  string
		ports TaskPorts
	}
	var runs []taskRun
	var expand func(item ast.TaskItem) error
	expand = func(item ast.TaskItem) error {
		switch item := item.(type) {
		case *ast.TaskInst:
			var tp TaskPorts
			for _, a := range item.Args {
				names, err := evalArgPorts(a)
				if err != nil {
					return err
				}
				for _, name := range names {
					ref, ok := vertices[name]
					if !ok {
						return fmt.Errorf("%s: vertex %q is not bound to any connector port", item.Pos, name)
					}
					if ref.out != nil {
						tp.Outs = append(tp.Outs, ref.out)
					} else {
						tp.Ins = append(tp.Ins, ref.in)
					}
				}
			}
			runs = append(runs, taskRun{name: item.Name, ports: tp})
			return nil
		case *ast.TaskForall:
			lo, err := evalMainInt(item.Lo, env)
			if err != nil {
				return err
			}
			hi, err := evalMainInt(item.Hi, env)
			if err != nil {
				return err
			}
			saved, had := env[item.Var]
			for i := lo; i <= hi; i++ {
				env[item.Var] = i
				for _, b := range item.Body {
					if err := expand(b); err != nil {
						return err
					}
				}
			}
			if had {
				env[item.Var] = saved
			} else {
				delete(env, item.Var)
			}
			return nil
		}
		return fmt.Errorf("reo: unknown task item %T", item)
	}
	for _, item := range m.Tasks {
		if err := expand(item); err != nil {
			closeAll()
			return nil, err
		}
	}

	// Tasks as goroutines (Fig. 2's threads). The first task error closes
	// the connectors so that peers blocked on port operations unblock.
	var wg sync.WaitGroup
	var closeOnce sync.Once
	errc := make(chan error, len(runs))
	for _, r := range runs {
		wg.Add(1)
		go func(r taskRun) {
			defer wg.Done()
			if err := tasks[r.name](r.ports); err != nil {
				errc <- fmt.Errorf("task %s: %w", r.name, err)
				closeOnce.Do(closeAll)
			}
		}(r)
	}
	wg.Wait()
	closeOnce.Do(closeAll)
	close(errc)
	for err := range errc {
		return nil, err
	}
	res := &RunResult{TaskCount: len(runs)}
	for _, inst := range instances {
		res.Steps += inst.Steps()
	}
	return res, nil
}

// validateTaskNames walks the main's task tree (without evaluating range
// bounds) and rejects the first task name missing from the registry,
// listing the registered names.
func validateTaskNames(items []ast.TaskItem, tasks Tasks) error {
	for _, item := range items {
		switch item := item.(type) {
		case *ast.TaskInst:
			if _, ok := tasks[item.Name]; !ok {
				names := make([]string, 0, len(tasks))
				for name := range tasks {
					names = append(names, name)
				}
				sort.Strings(names)
				registered := "none"
				if len(names) > 0 {
					registered = strings.Join(names, ", ")
				}
				return fmt.Errorf("%s: no registered task %q (registered: %s)", item.Pos, item.Name, registered)
			}
		case *ast.TaskForall:
			if err := validateTaskNames(item.Body, tasks); err != nil {
				return err
			}
		default:
			return fmt.Errorf("reo: unknown task item %T", item)
		}
	}
	return nil
}

func evalMainInt(e ast.IntExpr, env map[string]int) (int, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Val, nil
	case *ast.VarRef:
		v, ok := env[e.Name]
		if !ok {
			return 0, fmt.Errorf("%s: unbound variable %q", e.Pos, e.Name)
		}
		return v, nil
	case *ast.LenOf:
		return 0, fmt.Errorf("%s: #%s not allowed in main", e.Pos, e.Name)
	case *ast.BinInt:
		l, err := evalMainInt(e.L, env)
		if err != nil {
			return 0, err
		}
		r, err := evalMainInt(e.R, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("%s: division by zero", e.Pos)
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, fmt.Errorf("%s: modulo by zero", e.Pos)
			}
			return l % r, nil
		}
	}
	return 0, fmt.Errorf("invalid main expression %T", e)
}
