// Command fig12 regenerates the paper's Fig. 12: the eighteen benchmark
// connectors, existing (static, per-N, simplified) vs new (parametrized,
// just-in-time) compilation approach, N in {2,4,8,16,32,64}, metric =
// global execution steps within a time budget, with the pie-chart and
// per-N bar-chart summaries.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		budget   = flag.Duration("budget", 500*time.Millisecond, "measurement budget per (connector, N, approach)")
		ns       = flag.String("N", "2,4,8,16,32,64", "comma-separated task counts")
		conns    = flag.String("connectors", "", "comma-separated connector names (default: all eighteen)")
		maxSt    = flag.Int("max-static-states", 1<<16, "existing compiler's automaton capacity")
		reps     = flag.Int("reps", 1, "repetitions of the sweep; best steps per cell reported (use >= 3 for CI gating)")
		verbose  = flag.Bool("v", false, "progress output")
		jsonPath = flag.String("json", "", "also write machine-readable results (BENCH_fig12.json schema) to this file")
		withGen  = flag.Bool("gen", false, "also measure the static code-generation backend against the interpreted engine (the bench-gen Lane cells) and append the rows to -json")
		genItems = flag.Int("gen-items", 1<<17, "values moved per generated-backend measurement (with -gen)")
	)
	flag.Parse()

	cfg := bench.Fig12Config{
		Budget:          *budget,
		MaxStaticStates: *maxSt,
	}
	for _, s := range strings.Split(*ns, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "fig12: bad N %q\n", s)
			os.Exit(2)
		}
		cfg.Ns = append(cfg.Ns, n)
	}
	if *conns != "" {
		for _, s := range strings.Split(*conns, ",") {
			cfg.Connectors = append(cfg.Connectors, strings.TrimSpace(s))
		}
	}
	progress := (os.Stderr)
	if !*verbose {
		progress = nil
	}
	if *reps < 1 {
		*reps = 1
	}
	var runs [][]bench.Fig12Row
	for r := 0; r < *reps; r++ {
		rows, err := bench.RunFig12(cfg, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig12:", err)
			os.Exit(1)
		}
		runs = append(runs, rows)
	}
	rows := bench.MergeBest(runs)
	fmt.Print(bench.FormatFig12(rows))

	jsonRows := bench.Fig12JSONRows(rows, *budget)
	if *withGen {
		var best []bench.GenResult
		for r := 0; r < *reps; r++ {
			res, err := bench.RunGenSteady(*genItems)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fig12:", err)
				os.Exit(1)
			}
			if best == nil {
				best = res
				continue
			}
			for i := range best {
				if res[i].Elapsed < best[i].Elapsed {
					best[i] = res[i]
				}
			}
		}
		fmt.Println("\nGenerated backend (reoc gen) vs interpreted engine, Lane connector:")
		for _, r := range best {
			fmt.Printf("  %-12s %12.0f steps/s\n", r.Approach, r.StepsPerSec())
		}
		jsonRows = append(jsonRows, bench.GenJSONRows(best)...)
	}
	if *jsonPath != "" {
		if err := bench.WriteJSONRows(*jsonPath, jsonRows); err != nil {
			fmt.Fprintln(os.Stderr, "fig12:", err)
			os.Exit(1)
		}
	}
}
