// Command reoc is the connector compiler front end: it parses, checks,
// and inspects protocol programs in the textual syntax — the counterpart
// of the paper's text-to-Java compiler plug-in (Fig. 11), with the
// automaton dump and model checker attached.
//
// Usage:
//
//	reoc check file.reo
//	reoc flatten file.reo Connector
//	reoc automata file.reo Connector [-n N]
//	reoc plan file.reo Connector [-n N]
//	reoc regions file.reo Connector [-n N] [-workers W]
//	reoc gen file.reo Connector [-n N | -parametric] [-o dir] [-pkg name] [-force]
//	reoc verify file.reo Connector [-n N]
//	reoc explore [-seed S] [-rounds R] [-max-ops K] [-max-prims P] [-backends list] [-shrink] [-selfcheck-mutate]
//	reoc bench-compare baseline.json current.json... [-threshold 0.25]
//	reoc bench-batch out.json [-stages S] [-items I] [-batches 1,8,64,512] [-reps R]
//	reoc bench-gen out.json [-items I] [-lanes L] [-npb-slaves K] [-reps R]
//	reoc bench-instances out.json [-cycles C] [-instances K] [-rounds P] [-reps R]
//	reoc bench-remote out.json [-lanes L] [-mem-items I] [-tcp-items J] [-reps R]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	reo "repro"
	"repro/internal/ast"
	"repro/internal/bench"
	"repro/internal/ca"
	"repro/internal/check"
	"repro/internal/compile"
	"repro/internal/explore"
	"repro/internal/flatten"
	"repro/internal/gen"
	"repro/internal/normalize"
	"repro/internal/npb"
	"repro/internal/parser"
	"repro/internal/sema"
)

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "explore" {
		exploreCmd(os.Args[2:])
		return
	}
	if len(os.Args) < 3 {
		usage()
	}
	cmd := os.Args[1]
	file := os.Args[2]
	rest := os.Args[3:]

	if cmd == "bench-compare" {
		benchCompare(file, rest)
		return
	}
	if cmd == "bench-batch" {
		benchBatch(file, rest)
		return
	}
	if cmd == "bench-gen" {
		benchGen(file, rest)
		return
	}
	if cmd == "bench-instances" {
		benchInstances(file, rest)
		return
	}
	if cmd == "bench-remote" {
		benchRemote(file, rest)
		return
	}
	if cmd == "gen" {
		os.Exit(gen.RunCLI(append([]string{file}, rest...), os.Stdout, os.Stderr))
	}

	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "check":
		f, err := parser.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		info, err := sema.Check(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: OK (%d definitions, %d mains)\n", file, len(info.Defs), len(f.Mains))
		for _, d := range f.Defs {
			fmt.Printf("  %s(%d tails; %d heads)\n", d.Name, len(d.Tails), len(d.Heads))
		}
	case "flatten":
		name, _ := parseRest(rest)
		f, err := parser.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		info, err := sema.Check(f)
		if err != nil {
			fatal(err)
		}
		flat, err := flatten.Flatten(info, name)
		if err != nil {
			fatal(err)
		}
		fmt.Println("# flattened:")
		fmt.Println(ast.RenderExpr(flat, ""))
		norm := normalize.Normalize(flat)
		fmt.Println("\n# normalized:")
		fmt.Println(ast.RenderExpr(norm, ""))
		fmt.Printf("\n# normal form: %v\n", normalize.IsNormal(norm))
	case "automata":
		name, n := parseRest(rest)
		inst := connectInstance(string(src), name, n)
		defer inst.Close()
		fmt.Printf("# %s instantiated with N=%d: %d constituent automata\n\n", name, n, inst.Constituents())
		for _, a := range inst.Automata() {
			fmt.Println(a)
		}
	case "plan":
		// Dump the compiled transition plans of the initial composite
		// state: what the engine actually executes per fired step after
		// just-in-time expansion.
		name, n := parseRest(rest)
		inst := connectInstance(string(src), name, n)
		defer inst.Close()
		auts := inst.Automata()
		u := inst.Universe()
		states := make([]int32, len(auts))
		for i, a := range auts {
			states[i] = a.Initial
		}
		joints := ca.ExpandJoint(auts, states, ca.ExpandConnected)
		fmt.Printf("# %s (N=%d): %d joint transitions from the initial composite state\n", name, n, len(joints))
		for _, j := range joints {
			t := &ca.Transition{Sync: j.Sync, Guards: j.Guards, Acts: j.Acts}
			pl := ca.CompilePlan(t, u.DirOf)
			fmt.Printf("  %s\n", pl.Dump(u))
		}
	case "regions":
		// Dump the asynchronous-region partition: which constituents are
		// buffer shapes cut into links, and which synchronous regions
		// remain — what WithPartitioning(PartitionRegions) executes.
		name, n, workers := parseRegionsRest(rest)
		// With -workers the instance itself runs region-partitioned on
		// the requested pool, so the assignment report reads the real
		// scheduler state; the plan dump works on the same instance
		// either way (the constituent automata do not depend on the
		// connect options).
		var opts []reo.ConnectOption
		if workers != 0 {
			opts = append(opts,
				reo.WithPartitioning(reo.PartitionRegions), reo.WithWorkers(workers))
		}
		inst := connectInstanceOpts(string(src), name, n, opts...)
		defer inst.Close()
		plan := ca.PlanRegions(inst.Universe(), inst.Automata())
		fmt.Printf("# %s (N=%d): %s", name, n, plan.Dump(inst.Universe(), inst.Automata()))
		if workers != 0 {
			fmt.Printf("\n# worker assignment (%d workers):\n", inst.Workers())
			for ri, info := range inst.Regions() {
				fmt.Printf("  region %d -> worker %d (%d constituents, %d link endpoints)\n",
					ri, info.Worker, info.Constituents, info.Links)
			}
		}
	case "verify":
		name, n := parseRest(rest)
		inst := connectInstance(string(src), name, n)
		defer inst.Close()
		res, err := check.Analyze(inst.Universe(), inst.Automata(), check.Limits{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reachable composite states: %d\n", res.States)
		fmt.Printf("global steps explored:      %d\n", res.Transitions)
		fmt.Printf("deadlock-free:              %v\n", res.DeadlockFree())
		for _, d := range res.Deadlocks {
			fmt.Printf("  deadlock state: %s\n", d)
		}
		fmt.Printf("all boundary ports live:    %v\n", res.AllPortsLive())
		for _, p := range res.DeadPorts {
			fmt.Printf("  dead port: %s\n", p)
		}
		if !res.DeadlockFree() || !res.AllPortsLive() {
			os.Exit(1)
		}
	default:
		usage()
	}
}

// benchCompare is the CI perf-regression gate: compare one or more
// benchmark JSON artifacts (BENCH_fig12.json / BENCH_fig13.json /
// bench-batch schemas) against a checked-in baseline and exit non-zero
// when any cell's rate dropped by more than the threshold (or vanished).
// Multiple current artifacts concatenate, so a baseline can hold cells
// produced by different sweeps (the fig12 sweep and the batched-port
// sweep) and gate them in one invocation.
func benchCompare(baselinePath string, rest []string) {
	var currentPaths []string
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		currentPaths = append(currentPaths, rest[0])
		rest = rest[1:]
	}
	if len(currentPaths) == 0 {
		usage()
	}
	fs := flag.NewFlagSet("bench-compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.25, "allowed fractional rate drop per cell")
	minRows := fs.Int("min-rows", 1, "minimum rows the current artifacts must contain together (guards against an empty run passing)")
	fs.Parse(rest)

	baseline, err := bench.ReadCompareRows(baselinePath)
	if err != nil {
		fatal(err)
	}
	// An empty (or all-unmeasured) baseline gates nothing: every
	// comparison would pass vacuously, which is indistinguishable from a
	// healthy run in CI logs. Fail loudly instead.
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: baseline %s has no rows — the gate would pass vacuously; regenerate the baseline\n", baselinePath)
		os.Exit(1)
	}
	if len(bench.BestRates(baseline)) == 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: baseline %s has no measured cells (every rate is 0) — the gate would pass vacuously; regenerate the baseline\n", baselinePath)
		os.Exit(1)
	}
	var current []bench.CompareRow
	for _, path := range currentPaths {
		rows, err := bench.ReadCompareRows(path)
		if err != nil {
			fatal(err)
		}
		current = append(current, rows...)
	}
	if len(current) == 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: current artifacts (%s) have no rows — the benchmark run produced nothing to gate\n", strings.Join(currentPaths, "+"))
		os.Exit(1)
	}
	if len(current) < *minRows {
		fmt.Fprintf(os.Stderr, "bench-compare: current artifacts have %d rows, need >= %d\n", len(current), *minRows)
		os.Exit(1)
	}
	regs := bench.CompareRates(baseline, current, *threshold)
	fmt.Printf("bench-compare: %d baseline cells vs %s (threshold %.0f%% drop)\n",
		len(bench.BestRates(baseline)), strings.Join(currentPaths, "+"), 100**threshold)
	if ratio, cells := bench.GeomeanRatio(baseline, current); cells > 0 {
		fmt.Printf("bench-compare: geomean current/baseline = %.3fx over %d cells\n", ratio, cells)
	}
	if len(regs) == 0 {
		fmt.Println("bench-compare: OK — no cell regressed")
		return
	}
	for _, r := range regs {
		fmt.Printf("  REGRESSION %s\n", r)
	}
	// Name the offending cells in the error itself: CI surfaces stderr,
	// and "3 cell(s) regressed" without the keys forces a dig through the
	// full log to learn which approach/connector/N combination broke.
	keys := make([]string, len(regs))
	for i, r := range regs {
		keys[i] = r.Key
	}
	fmt.Fprintf(os.Stderr, "bench-compare: %d cell(s) regressed: %s\n", len(regs), strings.Join(keys, ", "))
	os.Exit(1)
}

// benchBatch runs the batched-port throughput sweep (the workload of
// BenchmarkBatchedThroughput) and writes machine-readable rows for the
// perf-regression gate: items/s through the stage-coupled Fifo1 pipeline
// per batch size, best of -reps runs.
func benchBatch(outPath string, rest []string) {
	fs := flag.NewFlagSet("bench-batch", flag.ExitOnError)
	stages := fs.Int("stages", 4, "pipeline stages")
	items := fs.Int("items", 1<<14, "items moved per measurement")
	batches := fs.String("batches", "1,8,64,512", "comma-separated batch sizes")
	reps := fs.Int("reps", 3, "repetitions per batch size (best run reported; use >= 3 for CI gating)")
	fs.Parse(rest)
	if *reps < 1 {
		*reps = 1
	}

	var results []bench.BatchResult
	for _, s := range strings.Split(*batches, ",") {
		batch, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || batch < 1 {
			fmt.Fprintf(os.Stderr, "bench-batch: bad batch size %q\n", s)
			os.Exit(2)
		}
		best, err := bench.RunBatchThroughput(*stages, *items, batch)
		if err != nil {
			fatal(err)
		}
		for r := 1; r < *reps; r++ {
			res, err := bench.RunBatchThroughput(*stages, *items, batch)
			if err != nil {
				fatal(err)
			}
			if res.Elapsed < best.Elapsed {
				best = res
			}
		}
		fmt.Printf("bench-batch: stages=%d items=%d batch=%-4d %12.0f items/s (%d conn steps)\n",
			best.Stages, best.Items, best.Batch, best.ItemsPerSec(), best.Steps)
		results = append(results, best)
	}
	if err := bench.WriteBatchJSON(outPath, results); err != nil {
		fatal(err)
	}
}

// benchGen runs the generated-vs-interpreted comparisons and writes
// fig12-schema rows for the perf-regression gate: the FireSteady lane on
// both backends (internal/genlib/lane), the n-lane RegionScaling fabric
// on both backends (interpreted region partitioning vs the parametric
// internal/genlib/fabric package), and one NPB program on the generated
// fabric — best of -reps runs each.
func benchGen(outPath string, rest []string) {
	fs := flag.NewFlagSet("bench-gen", flag.ExitOnError)
	items := fs.Int("items", 1<<17, "values moved end to end per measurement")
	lanes := fs.Int("lanes", 16, "fabric width of the RegionScaling cells")
	fabricItems := fs.Int("fabric-items", 1<<14, "values moved per lane in the RegionScaling cells")
	npbSlaves := fs.Int("npb-slaves", 4, "slave count of the generated NPB cell")
	reps := fs.Int("reps", 3, "repetitions (best run reported; use >= 3 for CI gating)")
	fs.Parse(rest)
	if *reps < 1 {
		*reps = 1
	}
	bestOf := func(run func() ([]bench.GenResult, error)) []bench.GenResult {
		best, err := run()
		if err != nil {
			fatal(err)
		}
		for r := 1; r < *reps; r++ {
			res, err := run()
			if err != nil {
				fatal(err)
			}
			for i := range best {
				if res[i].Elapsed < best[i].Elapsed {
					best[i] = res[i]
				}
			}
		}
		return best
	}
	var results []bench.GenResult
	results = append(results, bestOf(func() ([]bench.GenResult, error) {
		return bench.RunGenSteady(*items)
	})...)
	results = append(results, bestOf(func() ([]bench.GenResult, error) {
		return bench.RunGenRegionScaling(*lanes, *fabricItems)
	})...)
	results = append(results, bestOf(func() ([]bench.GenResult, error) {
		res, err := bench.RunGenNPB("EP", npb.ClassS, *npbSlaves)
		return []bench.GenResult{res}, err
	})...)
	for _, r := range results {
		fmt.Printf("bench-gen: %-12s %-8s N=%-3d %12.0f steps/s\n",
			r.Approach, r.Connector, r.N, r.StepsPerSec())
	}
	if err := bench.WriteGenJSON(outPath, results); err != nil {
		fatal(err)
	}
}

// benchInstances runs the multi-instance serving cells — InstanceChurn
// (full Connect/fire/Close cycles, dedicated pool vs shared runtime
// with pooled reuse) and ManyInstances (round-robin fires across many
// live instances on the shared runtime) — and writes perf-gate rows,
// best of -reps runs per cell.
func benchInstances(outPath string, rest []string) {
	fs := flag.NewFlagSet("bench-instances", flag.ExitOnError)
	cycles := fs.Int("cycles", 2000, "Connect/fire/Close cycles per churn measurement")
	instances := fs.Int("instances", 10000, "live instances for the many-instances cell")
	rounds := fs.Int("rounds", 10, "round-robin passes over the live instances")
	reps := fs.Int("reps", 3, "repetitions per cell (best run reported; use >= 3 for CI gating)")
	fs.Parse(rest)
	if *reps < 1 {
		*reps = 1
	}

	run := func(f func() (bench.InstanceResult, error)) bench.InstanceResult {
		best, err := f()
		if err != nil {
			fatal(err)
		}
		for r := 1; r < *reps; r++ {
			res, err := f()
			if err != nil {
				fatal(err)
			}
			if res.Elapsed < best.Elapsed {
				best = res
			}
		}
		return best
	}
	results := []bench.InstanceResult{
		run(func() (bench.InstanceResult, error) { return bench.RunInstanceChurn(*cycles, false) }),
		run(func() (bench.InstanceResult, error) { return bench.RunInstanceChurn(*cycles, true) }),
		run(func() (bench.InstanceResult, error) { return bench.RunManyInstances(*instances, *rounds) }),
	}
	for _, r := range results {
		fmt.Printf("bench-instances: %-15s instances=%-6d %12.0f ops/s\n",
			r.Approach, r.Instances, r.OpsPerSec())
	}
	if err := bench.WriteInstanceJSON(outPath, results); err != nil {
		fatal(err)
	}
}

// benchRemote runs the region-link transport cells — the lane connector
// in-process (transport mem) and split across two TCP-joined instances
// over loopback (transport tcp, at one lane and at -lanes lanes) — and
// writes perf-gate rows, best of -reps runs per cell. The tcp cells are
// round-trip-bound by design (a cut Fifo1 keeps its planned capacity of
// one end to end), so their rates gate the wire path's constant
// factors, not bulk bandwidth. The payload sweep runs each tcp shape
// twice: small ints (framing and round-trip cost) and 1 KiB byte
// slices (bulk encode and buffer reuse).
func benchRemote(outPath string, rest []string) {
	fs := flag.NewFlagSet("bench-remote", flag.ExitOnError)
	lanes := fs.Int("lanes", 4, "lane count of the multi-lane cells")
	memItems := fs.Int("mem-items", 1<<14, "items moved per mem measurement")
	tcpItems := fs.Int("tcp-items", 1<<11, "items moved per tcp measurement (round-trip bound, keep small)")
	reps := fs.Int("reps", 3, "repetitions per cell (best run reported; use >= 3 for CI gating)")
	fs.Parse(rest)
	if *reps < 1 {
		*reps = 1
	}

	run := func(transport, payload string, lanes, items int) bench.RemoteResult {
		best, err := bench.RunRemoteLinkPayload(transport, payload, lanes, items)
		if err != nil {
			fatal(err)
		}
		for r := 1; r < *reps; r++ {
			res, err := bench.RunRemoteLinkPayload(transport, payload, lanes, items)
			if err != nil {
				fatal(err)
			}
			if res.Elapsed < best.Elapsed {
				best = res
			}
		}
		return best
	}
	results := []bench.RemoteResult{
		run("mem", bench.PayloadInt, *lanes, *memItems),
		run("tcp", bench.PayloadInt, 1, *tcpItems / *lanes),
		run("tcp", bench.PayloadInt, *lanes, *tcpItems),
		run("tcp", bench.PayloadBulk, 1, *tcpItems / *lanes),
		run("tcp", bench.PayloadBulk, *lanes, *tcpItems),
	}
	for _, r := range results {
		fmt.Printf("bench-remote: transport=%-4s payload=%-4s lanes=%-3d %12.0f items/s (%d conn steps)\n",
			r.Transport, r.Payload, r.Lanes, r.ItemsPerSec(), r.Steps)
	}
	if err := bench.WriteRemoteJSON(outPath, results); err != nil {
		fatal(err)
	}
}

// exploreCmd runs the adversarial scenario engine (internal/explore):
// seeded random connectors through the real compile pipeline, driven
// over randomized-but-deterministic schedules across the execution lane
// matrix. On divergence it prints the (shrunk) failing case and a
// one-line repro command and exits 1. With -selfcheck-mutate the
// candidate-ordering off-by-one is injected into the generated lane and
// the run must detect it (exit 0 on detection — the harness's own
// mutation test).
func exploreCmd(rest []string) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "base seed; round 0 runs the base seed itself, so -seed X -rounds 1 replays a reported round exactly")
	rounds := fs.Int("rounds", 50, "exploration rounds")
	maxOps := fs.Int("max-ops", 24, "schedule token budget per round")
	maxPrims := fs.Int("max-prims", 8, "connector primitive budget per round")
	backends := fs.String("backends", "all", `lanes to compare: "all" or comma-separated of gen, workers, runtime, batch2, off, components, aot`)
	shrink := fs.Bool("shrink", true, "minimize the failing case before reporting")
	selfcheck := fs.Bool("selfcheck-mutate", false, "inject the candidate-ordering mutation into the generated lane; the run must detect it")
	verbose := fs.Bool("v", false, "per-round progress")
	fs.Parse(rest)

	opt := explore.Options{
		Seed:     *seed,
		Rounds:   *rounds,
		MaxOps:   *maxOps,
		MaxPrims: *maxPrims,
		Backends: *backends,
		Shrink:   *shrink,
		Mutate:   *selfcheck,
	}
	if *verbose {
		opt.Log = func(format string, args ...any) {
			fmt.Printf("explore: "+format+"\n", args...)
		}
	}
	rep, err := explore.Run(opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("explore: seed=%d rounds=%d orders=%d lane-runs=%d skipped=%d gen-regions=%d\n",
		*seed, rep.Rounds, rep.Orders, rep.LaneRuns, rep.Skipped, rep.GenRegions)
	if *selfcheck {
		if rep.Failure == nil {
			fmt.Fprintf(os.Stderr, "explore: selfcheck FAILED — injected mutation not detected in %d rounds\n", rep.Rounds)
			os.Exit(1)
		}
		fmt.Printf("explore: selfcheck OK — injected mutation detected on lane %s\n", rep.Failure.Lane)
		fmt.Print(explore.FormatFailure(rep.Failure))
		return
	}
	if rep.Failure != nil {
		fmt.Fprint(os.Stderr, explore.FormatFailure(rep.Failure))
		os.Exit(1)
	}
	fmt.Println("explore: OK — no divergence")
}

// connectInstance compiles the named connector and instantiates every
// array parameter at length n.
func connectInstance(src, name string, n int) *reo.Instance {
	return connectInstanceOpts(src, name, n)
}

func connectInstanceOpts(src, name string, n int, opts ...reo.ConnectOption) *reo.Instance {
	prog, err := reo.Compile(src)
	if err != nil {
		fatal(err)
	}
	conn, err := prog.Connector(name)
	if err != nil {
		fatal(err)
	}
	lengths := map[string]int{}
	for _, p := range connTemplateArrays(conn.Template()) {
		lengths[p] = n
	}
	inst, err := conn.Connect(lengths, opts...)
	if err != nil {
		fatal(err)
	}
	return inst
}

func connTemplateArrays(t *compile.Template) []string { return t.ArrayParams() }

func parseRest(rest []string) (name string, n int) {
	if len(rest) < 1 {
		usage()
	}
	name = rest[0]
	fs := flag.NewFlagSet("reoc", flag.ExitOnError)
	np := fs.Int("n", 3, "array length for every array parameter")
	fs.Parse(rest[1:])
	return name, *np
}

// parseRegionsRest additionally accepts -workers for the regions
// subcommand (0 = plan only; <0 = GOMAXPROCS).
func parseRegionsRest(rest []string) (name string, n, workers int) {
	if len(rest) < 1 {
		usage()
	}
	name = rest[0]
	fs := flag.NewFlagSet("reoc", flag.ExitOnError)
	np := fs.Int("n", 3, "array length for every array parameter")
	wp := fs.Int("workers", 0, "also report scheduler worker assignment for this pool size (<0 = GOMAXPROCS)")
	fs.Parse(rest[1:])
	return name, *np, *wp
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reoc:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  reoc check    file.reo
  reoc flatten  file.reo Connector
  reoc automata file.reo Connector [-n N]
  reoc plan     file.reo Connector [-n N]
  reoc regions  file.reo Connector [-n N] [-workers W]
  reoc gen      file.reo Connector [-n N | -parametric] [-o dir] [-pkg name] [-force]
  reoc verify   file.reo Connector [-n N]
  reoc explore  [-seed S] [-rounds R] [-max-ops K] [-max-prims P] [-backends list] [-shrink] [-selfcheck-mutate] [-v]
  reoc bench-compare baseline.json current.json... [-threshold 0.25] [-min-rows K]
  reoc bench-batch out.json [-stages S] [-items I] [-batches 1,8,64,512] [-reps R]
  reoc bench-gen out.json [-items I] [-lanes L] [-npb-slaves K] [-reps R]
  reoc bench-instances out.json [-cycles C] [-instances K] [-rounds P] [-reps R]
  reoc bench-remote out.json [-lanes L] [-mem-items I] [-tcp-items J] [-reps R]`)
	os.Exit(2)
}
