// Command reoc is the connector compiler front end: it parses, checks,
// and inspects protocol programs in the textual syntax — the counterpart
// of the paper's text-to-Java compiler plug-in (Fig. 11), with the
// automaton dump and model checker attached.
//
// Usage:
//
//	reoc check file.reo
//	reoc flatten file.reo Connector
//	reoc automata file.reo Connector [-n N]
//	reoc plan file.reo Connector [-n N]
//	reoc regions file.reo Connector [-n N]
//	reoc verify file.reo Connector [-n N]
package main

import (
	"flag"
	"fmt"
	"os"

	reo "repro"
	"repro/internal/ast"
	"repro/internal/ca"
	"repro/internal/check"
	"repro/internal/compile"
	"repro/internal/flatten"
	"repro/internal/normalize"
	"repro/internal/parser"
	"repro/internal/sema"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd := os.Args[1]
	file := os.Args[2]
	rest := os.Args[3:]

	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "check":
		f, err := parser.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		info, err := sema.Check(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: OK (%d definitions, %d mains)\n", file, len(info.Defs), len(f.Mains))
		for _, d := range f.Defs {
			fmt.Printf("  %s(%d tails; %d heads)\n", d.Name, len(d.Tails), len(d.Heads))
		}
	case "flatten":
		name, _ := parseRest(rest)
		f, err := parser.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		info, err := sema.Check(f)
		if err != nil {
			fatal(err)
		}
		flat, err := flatten.Flatten(info, name)
		if err != nil {
			fatal(err)
		}
		fmt.Println("# flattened:")
		fmt.Println(ast.RenderExpr(flat, ""))
		norm := normalize.Normalize(flat)
		fmt.Println("\n# normalized:")
		fmt.Println(ast.RenderExpr(norm, ""))
		fmt.Printf("\n# normal form: %v\n", normalize.IsNormal(norm))
	case "automata":
		name, n := parseRest(rest)
		inst := connectInstance(string(src), name, n)
		defer inst.Close()
		fmt.Printf("# %s instantiated with N=%d: %d constituent automata\n\n", name, n, inst.Constituents())
		for _, a := range inst.Automata() {
			fmt.Println(a)
		}
	case "plan":
		// Dump the compiled transition plans of the initial composite
		// state: what the engine actually executes per fired step after
		// just-in-time expansion.
		name, n := parseRest(rest)
		inst := connectInstance(string(src), name, n)
		defer inst.Close()
		auts := inst.Automata()
		u := inst.Universe()
		states := make([]int32, len(auts))
		for i, a := range auts {
			states[i] = a.Initial
		}
		joints := ca.ExpandJoint(auts, states, ca.ExpandConnected)
		fmt.Printf("# %s (N=%d): %d joint transitions from the initial composite state\n", name, n, len(joints))
		for _, j := range joints {
			t := &ca.Transition{Sync: j.Sync, Guards: j.Guards, Acts: j.Acts}
			pl := ca.CompilePlan(t, u.DirOf)
			fmt.Printf("  %s\n", pl.Dump(u))
		}
	case "regions":
		// Dump the asynchronous-region partition: which constituents are
		// buffer shapes cut into links, and which synchronous regions
		// remain — what WithPartitioning(PartitionRegions) executes.
		name, n := parseRest(rest)
		inst := connectInstance(string(src), name, n)
		defer inst.Close()
		plan := ca.PlanRegions(inst.Universe(), inst.Automata())
		fmt.Printf("# %s (N=%d): %s", name, n, plan.Dump(inst.Universe(), inst.Automata()))
	case "verify":
		name, n := parseRest(rest)
		inst := connectInstance(string(src), name, n)
		defer inst.Close()
		res, err := check.Analyze(inst.Universe(), inst.Automata(), check.Limits{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reachable composite states: %d\n", res.States)
		fmt.Printf("global steps explored:      %d\n", res.Transitions)
		fmt.Printf("deadlock-free:              %v\n", res.DeadlockFree())
		for _, d := range res.Deadlocks {
			fmt.Printf("  deadlock state: %s\n", d)
		}
		fmt.Printf("all boundary ports live:    %v\n", res.AllPortsLive())
		for _, p := range res.DeadPorts {
			fmt.Printf("  dead port: %s\n", p)
		}
		if !res.DeadlockFree() || !res.AllPortsLive() {
			os.Exit(1)
		}
	default:
		usage()
	}
}

// connectInstance compiles the named connector and instantiates every
// array parameter at length n.
func connectInstance(src, name string, n int) *reo.Instance {
	prog, err := reo.Compile(src)
	if err != nil {
		fatal(err)
	}
	conn, err := prog.Connector(name)
	if err != nil {
		fatal(err)
	}
	lengths := map[string]int{}
	for _, p := range connTemplateArrays(conn.Template()) {
		lengths[p] = n
	}
	inst, err := conn.Connect(lengths)
	if err != nil {
		fatal(err)
	}
	return inst
}

func connTemplateArrays(t *compile.Template) []string { return t.ArrayParams() }

func parseRest(rest []string) (name string, n int) {
	if len(rest) < 1 {
		usage()
	}
	name = rest[0]
	fs := flag.NewFlagSet("reoc", flag.ExitOnError)
	np := fs.Int("n", 3, "array length for every array parameter")
	fs.Parse(rest[1:])
	return name, *np
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reoc:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  reoc check    file.reo
  reoc flatten  file.reo Connector
  reoc automata file.reo Connector [-n N]
  reoc plan     file.reo Connector [-n N]
  reoc regions  file.reo Connector [-n N]
  reoc verify   file.reo Connector [-n N]`)
	os.Exit(2)
}
