// Command fig13 regenerates the paper's Fig. 13: NPB run times of the
// original (hand-written channels) programs vs their Reo-based variants,
// per class and slave count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	reo "repro"
	"repro/internal/bench"
	"repro/internal/genlib/msfabric"
	"repro/internal/npb"
)

func main() {
	var (
		progs     = flag.String("prog", "CG,LU", "comma-separated programs (EP,IS,CG,MG,FT,LU,BT,SP or 'all')")
		classes   = flag.String("class", "S,W", "comma-separated classes (S,W,A,B,C)")
		ns        = flag.String("N", "2,4,8", "comma-separated slave counts")
		reps      = flag.Int("reps", 1, "repetitions per configuration (best time reported)")
		batch     = flag.Int("batch", 1, "scatter/gather batching degree: work units per slave per round, moved as one batched port operation (1 = the paper's structure)")
		partition = flag.String("partition", "off", "partition the Reo connectors: off, components (§V-C(3) fix), or regions (buffer-boundary cut)")
		workers   = flag.Int("workers", 0, "scheduler workers for partition=regions (0 = synchronous, <0 = GOMAXPROCS)")
		fullExp   = flag.Bool("full-expansion", false, "textbook joint enumeration (reproduces the §V-C(3) blow-up)")
		backend   = flag.String("backend", "interpreted", "Reo-variant backend: interpreted (the connector engine) or generated (static parametric code, `reoc gen -parametric`)")
		jsonPath  = flag.String("json", "", "also write machine-readable results (BENCH_fig13.json schema, fig12 -json parity) to this file")
	)
	flag.Parse()

	reoVariant := npb.Reo
	switch *backend {
	case "interpreted":
	case "generated":
		reoVariant = npb.Gen
	default:
		fmt.Fprintf(os.Stderr, "fig13: bad -backend %q (interpreted|generated)\n", *backend)
		os.Exit(2)
	}

	var opts []reo.ConnectOption
	var genOpts []msfabric.Option
	switch *partition {
	case "off", "false":
	case "components", "true":
		opts = append(opts, reo.WithPartitioning(reo.PartitionComponents))
	case "regions":
		opts = append(opts, reo.WithPartitioning(reo.PartitionRegions))
		if *workers != 0 {
			opts = append(opts, reo.WithWorkers(*workers))
		}
	default:
		fmt.Fprintf(os.Stderr, "fig13: bad -partition %q (off|components|regions)\n", *partition)
		os.Exit(2)
	}
	if *fullExp {
		opts = append(opts, reo.WithFullExpansion(true))
	}
	// The generated runtime always runs region-partitioned; of the
	// interpreted knobs only the worker pool carries over.
	if *workers != 0 {
		genOpts = append(genOpts, msfabric.WithWorkers(*workers))
	}
	npb.DefaultReoOptions = npb.ReoCommOptions{Opts: opts, GenOpts: genOpts}
	if *batch < 1 {
		fmt.Fprintf(os.Stderr, "fig13: bad -batch %d (need >= 1)\n", *batch)
		os.Exit(2)
	}
	// Both variants run the same batched scatter/gather structure; the
	// rows land in the -json output keyed with their batch degree, so
	// batched sweeps track separately from the scalar baseline cells.
	npb.DefaultBatch = *batch

	var programs []string
	if *progs == "all" {
		for _, p := range npb.Programs() {
			programs = append(programs, p.Name())
		}
	} else {
		for _, s := range strings.Split(*progs, ",") {
			programs = append(programs, strings.TrimSpace(s))
		}
	}
	var classList []npb.Class
	for _, s := range strings.Split(*classes, ",") {
		c, err := npb.ParseClass(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig13:", err)
			os.Exit(2)
		}
		classList = append(classList, c)
	}
	var nList []int
	for _, s := range strings.Split(*ns, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "fig13: bad N %q\n", s)
			os.Exit(2)
		}
		nList = append(nList, n)
	}

	var rows []bench.Fig13Row
	for _, p := range programs {
		for _, c := range classList {
			for _, n := range nList {
				for _, v := range []npb.Variant{npb.Orig, reoVariant} {
					best := bench.RunFig13(p, c, v, n)
					for r := 1; r < *reps && best.Err == nil; r++ {
						row := bench.RunFig13(p, c, v, n)
						if row.Err == nil && row.Elapsed < best.Elapsed {
							best = row
						}
					}
					rows = append(rows, best)
				}
			}
		}
	}
	fmt.Print(bench.FormatFig13(rows))
	if *jsonPath != "" {
		if err := bench.WriteFig13JSON(*jsonPath, rows); err != nil {
			fmt.Fprintln(os.Stderr, "fig13:", err)
			os.Exit(1)
		}
	}
}
