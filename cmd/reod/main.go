// Command reod hosts one node of a distributed connector: it reads a
// topology spec, connects its share of the region plan over TCP, drives
// the boundary ports hosted locally with a deterministic workload, and
// prints per-port checksums plus its step count. Running the same spec
// with -reference executes the whole plan in one process — the output
// of a distributed fleet, concatenated and sorted, must match it line
// for line (STEPS lines sum to the reference's).
//
// Usage:
//
//	reod -topo cluster.json -node a        # host node "a"
//	reod -topo cluster.json -reference     # single-process reference
//
// The topology spec is JSON:
//
//	{
//	  "source":    "Alternator(in[];out) = ...",   // reo program text
//	  "connector": "Alternator",
//	  "lengths":   {"in": 4},
//	  "seed":      7,
//	  "nodes":     {"a": "127.0.0.1:9401", "b": "127.0.0.1:9402"},
//	  "regions":   {"a": [0], "b": [1]},
//	  "workload":  {"sends": {"in": 24}, "recvs": {"out": 96}}
//	}
//
// workload.sends gives the number of values pushed into every port of a
// tail parameter; workload.recvs the number of values expected from
// every port of a head parameter. Values are deterministic functions of
// (parameter, index, round), so checksums are comparable across runs.
// They are plain ints, which ride the wire protocol's typed fast path;
// programs moving custom payload types across nodes must register them
// on every node first (reo.RegisterWireType / reo.RegisterWireUnit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"time"

	reo "repro"
	"repro/internal/ca"
)

type topoSpec struct {
	Source    string            `json:"source"`
	Connector string            `json:"connector"`
	Lengths   map[string]int    `json:"lengths"`
	Seed      int64             `json:"seed"`
	Nodes     map[string]string `json:"nodes"`
	Regions   map[string][]int  `json:"regions"`
	Workload  workload          `json:"workload"`
	// DialTimeoutSec bounds connection establishment (default 10).
	DialTimeoutSec int `json:"dial_timeout_sec"`
}

type workload struct {
	Sends map[string]int `json:"sends"`
	Recvs map[string]int `json:"recvs"`
}

// sendValue is the deterministic payload for round k (1-based) of port
// index i (0-based) of a tail parameter. The reference run and every
// node compute the same values, so recv-side checksums are comparable.
func sendValue(i, k int) int { return (i+1)*1_000_000 + k }

// portResult is one driven port's outcome.
type portResult struct {
	label string
	count int
	sum   uint64
	err   error
}

func main() {
	topoPath := flag.String("topo", "", "topology spec (JSON, required)")
	node := flag.String("node", "", "node name to host (exclusive with -reference)")
	reference := flag.Bool("reference", false, "run the whole plan in-process instead of hosting a node")
	linger := flag.Duration("linger", 2*time.Second, "delay before Close, so slower peers finish draining")
	flag.Parse()

	if err := run(*topoPath, *node, *reference, *linger); err != nil {
		fmt.Fprintln(os.Stderr, "reod:", err)
		os.Exit(1)
	}
}

func run(topoPath, node string, reference bool, linger time.Duration) error {
	if topoPath == "" {
		return fmt.Errorf("-topo is required")
	}
	if (node == "") == !reference {
		return fmt.Errorf("exactly one of -node or -reference is required")
	}
	raw, err := os.ReadFile(topoPath)
	if err != nil {
		return err
	}
	var spec topoSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parse %s: %w", topoPath, err)
	}

	prog, err := reo.Compile(spec.Source)
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	conn, err := prog.Connector(spec.Connector)
	if err != nil {
		return err
	}

	// Port ownership: replay the region plan the engine will build and
	// map every boundary port to the node hosting its region. The
	// reference run hosts everything.
	asm, err := conn.Template().Instantiate(spec.Lengths)
	if err != nil {
		return err
	}
	plan := ca.PlanRegions(asm.U, asm.Auts)
	owner := plan.PortRegions(asm.U, asm.Auts)
	regionNode := make([]string, len(plan.Regions))
	for n, rs := range spec.Regions {
		for _, ri := range rs {
			if ri < 0 || ri >= len(regionNode) {
				return fmt.Errorf("region %d out of range (plan has %d)", ri, len(regionNode))
			}
			regionNode[ri] = n
		}
	}
	mine := func(p ca.PortID) bool {
		if reference {
			return true
		}
		ri := owner[p]
		return ri >= 0 && regionNode[ri] == node
	}

	opts := []reo.ConnectOption{
		reo.WithPartitioning(reo.PartitionRegions),
		reo.WithSeed(spec.Seed),
	}
	if !reference {
		dt := time.Duration(spec.DialTimeoutSec) * time.Second
		opts = append(opts, reo.WithRemoteRegions(&reo.RemoteTopology{
			Node:        node,
			Nodes:       spec.Nodes,
			Regions:     spec.Regions,
			DialTimeout: dt,
		}))
	}
	inst, err := conn.Connect(spec.Lengths, opts...)
	if err != nil {
		return err
	}

	label := func(param string, i, n int) string {
		if n == 1 {
			return param
		}
		return fmt.Sprintf("%s[%d]", param, i+1)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []portResult
	)
	record := func(r portResult) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}
	for param, count := range spec.Workload.Sends {
		ports := inst.Outports(param)
		ids := asm.Tails[param]
		if len(ports) == 0 {
			return fmt.Errorf("workload sends on unknown tail parameter %q", param)
		}
		for i, port := range ports {
			if !mine(ids[i]) {
				continue
			}
			wg.Add(1)
			go func(param string, i int, port reo.Outport) {
				defer wg.Done()
				h := fnv.New64a()
				r := portResult{label: label(param, i, len(ports))}
				for k := 1; k <= count; k++ {
					v := sendValue(i, k)
					if err := port.Send(v); err != nil {
						r.err = fmt.Errorf("send %s round %d: %w", r.label, k, err)
						break
					}
					fmt.Fprintf(h, "%v|", v)
					r.count++
				}
				r.sum = h.Sum64()
				record(r)
			}(param, i, port)
		}
	}
	for param, count := range spec.Workload.Recvs {
		ports := inst.Inports(param)
		ids := asm.Heads[param]
		if len(ports) == 0 {
			return fmt.Errorf("workload recvs on unknown head parameter %q", param)
		}
		for i, port := range ports {
			if !mine(ids[i]) {
				continue
			}
			wg.Add(1)
			go func(param string, i int, port reo.Inport) {
				defer wg.Done()
				h := fnv.New64a()
				r := portResult{label: label(param, i, len(ports))}
				for k := 0; k < count; k++ {
					v, err := port.Recv()
					if err != nil {
						r.err = fmt.Errorf("recv %s round %d: %w", r.label, k, err)
						break
					}
					fmt.Fprintf(h, "%v|", v)
					r.count++
				}
				r.sum = h.Sum64()
				record(r)
			}(param, i, port)
		}
	}
	wg.Wait()

	// Let trailing link housekeeping (acks, ring advances) finish before
	// sampling the step counter.
	steps := inst.Steps()
	for quiet := 0; quiet < 10; {
		time.Sleep(10 * time.Millisecond)
		if s := inst.Steps(); s != steps {
			steps, quiet = s, 0
		} else {
			quiet++
		}
	}

	sort.Slice(results, func(a, b int) bool { return results[a].label < results[b].label })
	var failed error
	for _, r := range results {
		if r.err != nil && failed == nil {
			failed = r.err
		}
		fmt.Printf("PORT %s %d %016x\n", r.label, r.count, r.sum)
	}
	fmt.Printf("STEPS %d\n", steps)

	// Closing tears down the peers' links too: give slower nodes a
	// grace period to finish their own draining first.
	if !reference {
		time.Sleep(linger)
	}
	inst.Close()
	return failed
}
