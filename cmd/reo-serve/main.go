// Command reo-serve is the multi-instance serving harness: an HTTP
// front door where every session is one connector instance multiplexed
// onto the shared process runtime (reo.WithRuntime) and recycled
// through the template pool on close (reo.WithReuse). It demonstrates
// the PR's serving story end to end: session churn costs a pool pop
// and a reset instead of a coordinator build, and any number of live
// sessions share one GOMAXPROCS-sized worker pool.
//
// Serve mode (default):
//
//	reo-serve [-addr :8080]
//
//	POST   /v1/sessions               -> {"id": "..."}        create a session
//	POST   /v1/sessions/{id}/send     {"value": v}            write into the session's lane
//	POST   /v1/sessions/{id}/recv     -> {"value": v}         read from the session's lane
//	DELETE /v1/sessions/{id}                                  close (recycles the instance)
//	GET    /v1/stats                  -> live/created/closed counts, runtime workers
//
// Load mode (self-driving loopback client over real HTTP):
//
//	reo-serve -load [-sessions N] [-ops M] [-clients C]
//
// reports ops/s, p50/p99 op latency, and allocs/op (whole-process
// malloc delta across the run, HTTP machinery included). -smoke runs a
// small echo-validating load and exits non-zero on any mismatch — the
// CI front-door check.
//
// The transport is plain request/response HTTP on the standard
// library; a streaming front door (WebSocket or SSE per session) is
// out of scope here because it needs a protocol implementation the
// stdlib does not ship.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	reo "repro"
)

// sessionSrc is the per-session protocol: one buffered lane (two
// synchronous regions joined by a link — the smallest shape that
// exercises the shared scheduler). Swap in any compiled connector to
// serve a richer protocol.
const sessionSrc = `Session(a;b) = Fifo1(a;b)`

type server struct {
	conn *reo.Connector

	mu       sync.RWMutex
	sessions map[string]*session
	nextID   atomic.Uint64
	created  atomic.Int64
	closed   atomic.Int64
}

type session struct {
	inst *reo.Instance
	out  reo.Outport
	in   reo.Inport
}

func newServer() (*server, error) {
	prog, err := reo.Compile(sessionSrc)
	if err != nil {
		return nil, err
	}
	conn, err := prog.Connector("Session")
	if err != nil {
		return nil, err
	}
	return &server{conn: conn, sessions: make(map[string]*session)}, nil
}

func (s *server) create() (string, error) {
	inst, err := s.conn.Connect(nil,
		reo.WithPartitioning(reo.PartitionRegions),
		reo.WithRuntime(nil), // the shared process runtime
		reo.WithReuse(true),  // recycle the instance on close
	)
	if err != nil {
		return "", err
	}
	id := strconv.FormatUint(s.nextID.Add(1), 10)
	s.mu.Lock()
	s.sessions[id] = &session{inst: inst, out: inst.Outport("a"), in: inst.Inport("b")}
	s.mu.Unlock()
	s.created.Add(1)
	return id, nil
}

func (s *server) get(id string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

func (s *server) drop(id string) error {
	s.mu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if sess == nil {
		return errors.New("no such session")
	}
	s.closed.Add(1)
	return sess.inst.Close()
}

type valueMsg struct {
	Value any `json:"value"`
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		id, err := s.create()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]string{"id": id})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/send", func(w http.ResponseWriter, r *http.Request) {
		sess := s.get(r.PathValue("id"))
		if sess == nil {
			http.Error(w, "no such session", http.StatusNotFound)
			return
		}
		var msg valueMsg
		if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := sess.out.Send(msg.Value); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/recv", func(w http.ResponseWriter, r *http.Request) {
		sess := s.get(r.PathValue("id"))
		if sess == nil {
			http.Error(w, "no such session", http.StatusNotFound)
			return
		}
		v, err := sess.in.Recv()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, valueMsg{Value: v})
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.drop(r.PathValue("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.RLock()
		live := len(s.sessions)
		s.mu.RUnlock()
		writeJSON(w, map[string]any{
			"live":    live,
			"created": s.created.Load(),
			"closed":  s.closed.Load(),
			"workers": reo.DefaultRuntime().Workers(),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (serve mode)")
	load := flag.Bool("load", false, "run the loopback load harness instead of serving")
	smoke := flag.Bool("smoke", false, "short echo-validating load run (implies -load); non-zero exit on mismatch")
	sessions := flag.Int("sessions", 200, "sessions the load harness churns through")
	ops := flag.Int("ops", 50, "send+recv op pairs per session")
	clients := flag.Int("clients", 4, "concurrent load-harness clients")
	flag.Parse()

	srv, err := newServer()
	if err != nil {
		fatal(err)
	}
	if *smoke {
		*load = true
		*sessions, *ops, *clients = 16, 8, 2
	}
	if *load {
		if err := runLoad(srv, *sessions, *ops, *clients, *smoke); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("reo-serve: listening on %s (%d runtime workers)\n", *addr, reo.DefaultRuntime().Workers())
	fatal(http.ListenAndServe(*addr, srv.handler()))
}

// runLoad serves on a loopback listener and drives it with `clients`
// concurrent clients, each churning sessions: create, ops × (send one
// value, recv it back, optionally validate the echo), delete.
func runLoad(srv *server, sessions, ops, clients int, validate bool) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	if clients < 1 {
		clients = 1
	}
	if clients > sessions {
		clients = sessions
	}
	perClient := sessions / clients

	var memBefore, memAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)

	type clientResult struct {
		durations []time.Duration
		err       error
	}
	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			res.durations = make([]time.Duration, 0, perClient*ops)
			for s := 0; s < perClient; s++ {
				id, err := createSession(base)
				if err != nil {
					res.err = err
					return
				}
				for o := 0; o < ops; o++ {
					v := c*1_000_000 + s*1_000 + o
					t0 := time.Now()
					got, err := sendRecv(base, id, v)
					res.durations = append(res.durations, time.Since(t0))
					if err != nil {
						res.err = err
						return
					}
					// JSON round-trips numbers as float64.
					if validate && got != float64(v) {
						res.err = fmt.Errorf("echo mismatch: sent %d, got %v", v, got)
						return
					}
				}
				if err := deleteSession(base, id); err != nil {
					res.err = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&memAfter)

	var durations []time.Duration
	for _, res := range results {
		if res.err != nil {
			return res.err
		}
		durations = append(durations, res.durations...)
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	totalOps := len(durations)
	if totalOps == 0 {
		return errors.New("load run performed no operations")
	}
	allocs := float64(memAfter.Mallocs-memBefore.Mallocs) / float64(totalOps)
	fmt.Printf("reo-serve load: %d sessions x %d ops, %d clients, %d runtime workers\n",
		clients*perClient, ops, clients, reo.DefaultRuntime().Workers())
	fmt.Printf("  ops/s:      %.0f (%d ops in %v)\n", float64(totalOps)/elapsed.Seconds(), totalOps, elapsed.Round(time.Millisecond))
	fmt.Printf("  latency:    p50 %v  p99 %v\n",
		durations[totalOps/2].Round(time.Microsecond),
		durations[totalOps*99/100].Round(time.Microsecond))
	fmt.Printf("  allocs/op:  %.1f (whole process, HTTP included)\n", allocs)
	if validate {
		fmt.Println("reo-serve smoke: OK — all echoes matched")
	}
	return nil
}

func createSession(base string) (string, error) {
	resp, err := http.Post(base+"/v1/sessions", "application/json", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("create: status %s", resp.Status)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.ID, nil
}

func sendRecv(base, id string, v int) (any, error) {
	body, _ := json.Marshal(valueMsg{Value: v})
	resp, err := http.Post(base+"/v1/sessions/"+id+"/send", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return nil, fmt.Errorf("send: status %s", resp.Status)
	}
	resp, err = http.Post(base+"/v1/sessions/"+id+"/recv", "application/json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("recv: status %s", resp.Status)
	}
	var out valueMsg
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Value, nil
}

func deleteSession(base, id string) error {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("delete: status %s", resp.Status)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reo-serve:", err)
	os.Exit(1)
}
