package explore

import (
	"fmt"
	"strings"
)

// Conn is one generated connector: a structural description (vertices
// and primitives) that renders to .reo source. Keeping the structure —
// rather than only the text — is what lets the shrinker drop primitives
// and boundary ports while keeping the result well-typed.
//
// Vertex numbering: 0..NIn-1 are the boundary tails in[1..NIn],
// NIn..NIn+NOut-1 the boundary heads out[1..NOut], and everything above
// is a hidden internal vertex x1, x2, ... — the grammar's hiding
// coverage: every internal vertex is a hidden port chain the engines
// must resolve identically.
type Conn struct {
	Seed   int64
	NIn    int
	NOut   int
	nextV  int
	Prims  []Prim
	WrapIf int // 0 = plain body, 1..3 = always-true `if` variants (flatten coverage)
}

// Prim is one primitive occurrence.
type Prim struct {
	Kind  string
	Attr  string
	Tails []int
	Heads []int
	// Prod renders the primitive wrapped in a degenerate one-iteration
	// `prod` whose variable substitutes one boundary index — structural
	// coverage for the flattener without changing semantics.
	Prod bool
	// Island renders the primitive as its own one-iteration `prod`
	// section. Static-section constituents are composed into a medium
	// automaton at compile time, but each prod level instantiates as a
	// separate automaton — islands are what give the region planner
	// individual buffers to cut and single-automaton regions for the
	// generated runtime to bind.
	Island bool
}

// GenConfig bounds the generator.
type GenConfig struct {
	MaxPrims  int // max primitives before fix-ups (default 8)
	MaxFanout int // max Merger/Replicator/Router arity (default 3)
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxPrims < 2 {
		c.MaxPrims = 8
	}
	if c.MaxFanout < 2 {
		c.MaxFanout = 3
	}
	return c
}

func (c *Conn) inVertex(i int) int  { return i }
func (c *Conn) outVertex(j int) int { return c.NIn + j }

func (c *Conn) freshInternal() int {
	v := c.NIn + c.NOut + c.nextV
	c.nextV++
	return v
}

func (c *Conn) vertexName(v int) string {
	switch {
	case v < c.NIn:
		return fmt.Sprintf("in[%d]", v+1)
	case v < c.NIn+c.NOut:
		return fmt.Sprintf("out[%d]", v-c.NIn+1)
	default:
		return fmt.Sprintf("x%d", v-c.NIn-c.NOut+1)
	}
}

// primKinds are the generator's weighted primitive choices. Choice-rich
// primitives (Merger/Router/LossySync) are weighted up deliberately:
// multi-candidate states are where candidate-ordering bugs in the
// generated runtime become observable.
var primKinds = []struct {
	kind       string
	weight     int
	nIn, nOut  int // fixed arities; -1 = fan (2..MaxFanout)
	buffered   bool
	attrChoice []string
}{
	{kind: "Sync", weight: 4, nIn: 1, nOut: 1},
	{kind: "Fifo1", weight: 3, nIn: 1, nOut: 1, buffered: true},
	{kind: "Fifo1Full", weight: 1, nIn: 1, nOut: 1, buffered: true},
	{kind: "Fifo", weight: 1, nIn: 1, nOut: 1, buffered: true, attrChoice: []string{"2", "3"}},
	{kind: "Filter", weight: 1, nIn: 1, nOut: 1, attrChoice: []string{"even"}},
	{kind: "Transformer", weight: 2, nIn: 1, nOut: 1, attrChoice: []string{"inc", "double"}},
	{kind: "LossySync", weight: 1, nIn: 1, nOut: 1},
	{kind: "Merger", weight: 3, nIn: -1, nOut: 1},
	{kind: "Replicator", weight: 2, nIn: 1, nOut: -1},
	{kind: "Router", weight: 3, nIn: 1, nOut: -1},
	{kind: "SyncDrain", weight: 1, nIn: 2, nOut: 0},
	{kind: "AsyncDrain", weight: 1, nIn: 2, nOut: 0},
}

// Deterministic reports whether the connector's observable behavior is
// a function of the schedule alone: no choice primitives and no
// multi-writer vertex (which compiles to an implicit merger node).
// Deterministic connectors must behave identically on every lane;
// nondeterministic ones are strictly comparable only between lanes
// sharing the region plan, choice streams, and scheduling discipline.
func (c *Conn) Deterministic() bool {
	writers := map[int]int{}
	for i := range c.Prims {
		switch c.Prims[i].Kind {
		case "Merger", "Router", "LossySync", "AsyncDrain":
			return false
		}
		for _, v := range c.Prims[i].Heads {
			writers[v]++
			if writers[v] > 1 {
				return false
			}
		}
	}
	return true
}

// GenerateConn builds a random well-typed connector from the seed. The
// construction is correct by design (every primitive input has a
// producer, acyclic except through buffers, every boundary vertex
// used); callers still re-validate through the real compile pipeline
// and retry on rejection (see BuildConn).
//
// Half the seeds generate from the deterministic sub-grammar (no choice
// primitives, single-writer vertices): those connectors admit strict
// cross-lane sequence comparison, while choice-rich ones exercise the
// shared-plan lanes and each lane's replay determinism.
func GenerateConn(seed int64, cfg GenConfig) *Conn {
	cfg = cfg.withDefaults()
	r := newRNG(seed)
	det := r.chance(1, 2)
	c := &Conn{
		Seed: seed,
		NIn:  r.rangeIn(1, 3),
		NOut: r.rangeIn(1, 3),
	}

	// avail: vertices with at least one producer (usable as inputs).
	// rank orders unbuffered dataflow so only buffered primitives can
	// close a cycle.
	var avail []int
	rank := map[int]int{}
	consumed := map[int]bool{}
	producedOut := map[int]bool{}
	for i := 0; i < c.NIn; i++ {
		avail = append(avail, c.inVertex(i))
		rank[c.inVertex(i)] = 0
	}

	weights := make([]int, len(primKinds))
	for i, k := range primKinds {
		weights[i] = k.weight
		if det {
			switch k.kind {
			case "Merger", "Router", "LossySync", "AsyncDrain":
				weights[i] = 0
			}
		}
	}

	pickInputs := func(n int) []int {
		if n > len(avail) {
			n = len(avail)
		}
		perm := append([]int(nil), avail...)
		for i := len(perm) - 1; i > 0; i-- {
			j := r.intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		return perm[:n]
	}
	contains := func(vs []int, v int) bool {
		for _, w := range vs {
			if w == v {
				return true
			}
		}
		return false
	}

	nPrims := r.rangeIn(2, cfg.MaxPrims)
	for p := 0; p < nPrims; p++ {
		k := primKinds[r.pickWeighted(weights)]
		nIn, nOut := k.nIn, k.nOut
		if nIn == -1 {
			nIn = r.rangeIn(2, cfg.MaxFanout)
		}
		if nOut == -1 {
			nOut = r.rangeIn(2, cfg.MaxFanout)
		}
		tails := pickInputs(nIn)
		if len(tails) < nIn && nIn > 1 {
			continue // not enough distinct producers for a fan-in yet
		}
		maxRank := 0
		for _, v := range tails {
			if rank[v] > maxRank {
				maxRank = rank[v]
			}
		}
		var heads []int
		for h := 0; h < nOut; h++ {
			v := -1
			switch {
			case r.chance(7, 20):
				// In the deterministic sub-grammar an out vertex takes one
				// writer only (a second writer is an implicit merger node).
				if o := c.outVertex(r.intn(c.NOut)); !contains(heads, o) && !(det && producedOut[o]) {
					v = o
					producedOut[v] = true
				} else {
					v = c.freshInternal()
					rank[v] = maxRank + 1
					avail = append(avail, v)
				}
			case !det && k.buffered && r.chance(1, 4) && len(avail) > len(tails):
				// Buffered back edge: any produced vertex that is not an
				// input of this primitive — rings through buffers.
				cand := pickInputs(len(avail))
				v = -1
				for _, w := range cand {
					if w >= c.NIn+c.NOut && !contains(tails, w) && !contains(heads, w) {
						v = w
						break
					}
				}
				if v < 0 {
					v = c.freshInternal()
					rank[v] = maxRank + 1
					avail = append(avail, v)
				}
			default:
				v = c.freshInternal()
				rank[v] = maxRank + 1
				avail = append(avail, v)
			}
			heads = append(heads, v)
		}
		for _, v := range tails {
			consumed[v] = true
		}
		attr := ""
		if len(k.attrChoice) > 0 {
			attr = k.attrChoice[r.intn(len(k.attrChoice))]
		}
		c.Prims = append(c.Prims, Prim{Kind: k.kind, Attr: attr, Tails: tails, Heads: heads})
	}

	// Fix-ups: every boundary tail consumed, every boundary head
	// produced, every internal vertex consumed (no dangling writes). The
	// deterministic sub-grammar must not add a second writer to any out
	// vertex (an implicit merger node), so its dangling reads drain
	// through a SyncDrain instead of merging into an out.
	detSink := func(v int) {
		w := -1
		for _, u := range avail {
			if u != v && u >= c.NIn+c.NOut && !consumed[u] {
				w = u // pair two dangling internals in one drain
				break
			}
		}
		if w < 0 {
			for _, u := range avail {
				if u != v {
					w = u
					break
				}
			}
		}
		if w < 0 {
			return // single-vertex universe; the compile retry rejects leftovers
		}
		c.Prims = append(c.Prims, Prim{Kind: "SyncDrain", Tails: []int{v, w}})
		consumed[v], consumed[w] = true, true
	}
	if det {
		for j := 0; j < c.NOut; j++ {
			o := c.outVertex(j)
			if producedOut[o] {
				continue
			}
			src := -1
			for _, u := range avail {
				if !consumed[u] {
					src = u // give a dangling producer the free out slot first
					break
				}
			}
			if src < 0 {
				src = avail[r.intn(len(avail))]
			}
			c.Prims = append(c.Prims, Prim{Kind: "Sync", Tails: []int{src}, Heads: []int{o}})
			consumed[src] = true
			producedOut[o] = true
		}
		for i := 0; i < c.NIn; i++ {
			if !consumed[c.inVertex(i)] {
				detSink(c.inVertex(i))
			}
		}
		for _, v := range avail {
			if v >= c.NIn+c.NOut && !consumed[v] {
				detSink(v)
			}
		}
	} else {
		for i := 0; i < c.NIn; i++ {
			if !consumed[c.inVertex(i)] {
				o := c.outVertex(r.intn(c.NOut))
				c.Prims = append(c.Prims, Prim{Kind: "Sync", Tails: []int{c.inVertex(i)}, Heads: []int{o}})
				producedOut[o] = true
			}
		}
		for j := 0; j < c.NOut; j++ {
			if !producedOut[c.outVertex(j)] {
				src := avail[r.intn(len(avail))]
				c.Prims = append(c.Prims, Prim{Kind: "Sync", Tails: []int{src}, Heads: []int{c.outVertex(j)}})
				consumed[src] = true
			}
		}
		for _, v := range avail {
			if v >= c.NIn+c.NOut && !consumed[v] {
				o := c.outVertex(r.intn(c.NOut))
				c.Prims = append(c.Prims, Prim{Kind: "Sync", Tails: []int{v}, Heads: []int{o}})
			}
		}
	}

	// Bufferize: splitting an edge with a Fifo1 splits the synchronous
	// region there. Without this pass nearly every generated region is a
	// multi-automaton cluster, which the generated runtime (like `reoc
	// gen`) leaves interpreted — buffer-separated islands are what put
	// choice-rich single-automaton regions (Router, Merger, LossySync)
	// under generated dispatch, where candidate-ordering bugs live.
	nPrims = len(c.Prims)
	for pi := 0; pi < nPrims; pi++ {
		if k := c.Prims[pi].Kind; k == "Fifo1" || k == "Fifo1Full" || k == "Fifo" {
			continue
		}
		for ti := range c.Prims[pi].Tails {
			if r.chance(1, 2) {
				v := c.Prims[pi].Tails[ti]
				w := c.freshInternal()
				c.Prims = append(c.Prims, Prim{Kind: "Fifo1", Tails: []int{v}, Heads: []int{w}, Island: true})
				c.Prims[pi].Tails[ti] = w
			}
		}
	}
	// Island most non-buffer prims too: a choice-rich primitive whose
	// neighbors are all buffers or boundaries becomes a single-automaton
	// region under generated dispatch; the rest stay in the static
	// section, keeping the compile-time medium composition covered.
	for pi := range c.Prims {
		if !c.Prims[pi].Island && r.chance(7, 10) {
			c.Prims[pi].Island = true
		}
	}

	// Structural decorations: degenerate prod wraps and an always-true
	// if around the body, exercising the flattener's loop/conditional
	// paths on every lane identically.
	for i := range c.Prims {
		if r.chance(1, 5) && c.primHasBoundaryArg(&c.Prims[i]) {
			c.Prims[i].Prod = true
		}
	}
	if r.chance(3, 10) {
		c.WrapIf = r.rangeIn(1, 3)
	}
	return c
}

func (c *Conn) primHasBoundaryArg(p *Prim) bool {
	for _, v := range append(append([]int(nil), p.Tails...), p.Heads...) {
		if v < c.NIn+c.NOut {
			return true
		}
	}
	return false
}

// Name is the rendered definition's name.
func (c *Conn) Name() string { return "Xp" }

// Lengths returns the Instantiate lengths for the boundary arrays.
func (c *Conn) Lengths() map[string]int {
	return map[string]int{"in": c.NIn, "out": c.NOut}
}

// Source renders the connector as .reo text.
func (c *Conn) Source() string {
	var body []string
	for i := range c.Prims {
		body = append(body, c.renderPrim(&c.Prims[i]))
	}
	inner := strings.Join(body, "\n    mult ")
	switch c.WrapIf {
	case 1:
		inner = "if (#in >= 1) {\n    " + inner + "\n    }"
	case 2:
		inner = "if (#out >= 1) {\n    " + inner + "\n    }"
	case 3:
		inner = "if (#in + 1 > 1) {\n    " + inner + "\n    }"
	}
	return fmt.Sprintf("%s(in[];out[]) =\n    %s\n", c.Name(), inner)
}

func (c *Conn) renderPrim(p *Prim) string {
	name := p.Kind
	if p.Attr != "" {
		name += "." + p.Attr
	}
	// Degenerate prod wrap: substitute the first boundary index with the
	// iteration variable of a one-iteration loop.
	prodIdx := -1
	if p.Prod {
		for _, v := range append(append([]int(nil), p.Tails...), p.Heads...) {
			if v < c.NIn+c.NOut {
				prodIdx = v
				break
			}
		}
	}
	rendered := false
	arg := func(v int) string {
		if v == prodIdx && !rendered {
			rendered = true
			if v < c.NIn {
				return "in[i]"
			}
			return "out[i]"
		}
		return c.vertexName(v)
	}
	var tails, heads []string
	for _, v := range p.Tails {
		tails = append(tails, arg(v))
	}
	for _, v := range p.Heads {
		heads = append(heads, arg(v))
	}
	call := fmt.Sprintf("%s(%s;%s)", name, strings.Join(tails, ","), strings.Join(heads, ","))
	switch {
	case prodIdx >= 0:
		k := prodIdx + 1
		if prodIdx >= c.NIn {
			k = prodIdx - c.NIn + 1
		}
		call = fmt.Sprintf("prod (i:%d..%d) %s", k, k, call)
	case p.Island:
		call = "prod (i:1..1) " + call
	}
	return call
}
