package explore

// Seeded generator shared by the connector grammar and the schedule
// sampler: xorshift64* over a splitmix64-mixed seed, the same shape as
// the engine's pickRNG. Self-contained so generated cases reproduce
// bit-for-bit regardless of Go version (math/rand's stream is not part
// of its compatibility promise).

type rng struct{ s uint64 }

func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newRNG(seed int64) *rng {
	s := mix64(uint64(seed))
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &rng{s: s}
}

// deriveSeed derives an independent stream seed from a base seed and a
// stream index (per-round and per-probe seeds).
func deriveSeed(base int64, idx uint64) int64 {
	return int64(mix64(uint64(base) + 0x632be59bd9b4e019*idx))
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// intn returns a uniform int in [0, n). n must be > 0.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// rangeIn returns a uniform int in [lo, hi] inclusive.
func (r *rng) rangeIn(lo, hi int) int {
	return lo + r.intn(hi-lo+1)
}

// chance returns true with probability num/den.
func (r *rng) chance(num, den int) bool {
	return r.intn(den) < num
}

// pickWeighted picks an index with the given weights.
func (r *rng) pickWeighted(weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	n := r.intn(total)
	for i, w := range weights {
		if n < w {
			return i
		}
		n -= w
	}
	return len(weights) - 1
}
