package explore

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/gen/gendrv"
	"repro/internal/parser"
	"repro/internal/sema"
)

// maxTauBurst bounds internal-step bursts in every lane identically:
// generated token rings livelock deterministically (and cheaply)
// instead of walking the engine's default million-step budget.
const maxTauBurst = 20000

// BuiltConn is a generated connector that survived the real compile
// pipeline; lanes instantiate it independently (each engine gets a
// fresh universe, exactly like separate Connect calls).
type BuiltConn struct {
	Conn *Conn
	tmpl *compile.Template
}

// Funcs returns the registered data functions every lane shares (the
// gendrv set, so explorer cases and fixed differentials agree on
// semantics).
func Funcs() compile.Funcs {
	return compile.Funcs{
		Filters:      gendrv.TestFilters(),
		Transformers: gendrv.TestXforms(),
	}
}

// BuildConn generates a connector from the seed and validates it
// through parse→check→compile→instantiate, retrying with derived seeds
// until one passes (the grammar is correct by construction, so retries
// are rare; after 32 rejections the last error is returned).
func BuildConn(seed int64, cfg GenConfig) (*BuiltConn, error) {
	var lastErr error
	for attempt := 0; attempt < 32; attempt++ {
		c := GenerateConn(deriveSeed(seed, uint64(attempt)), cfg)
		tmpl, err := compileConn(c)
		if err != nil {
			lastErr = err
			continue
		}
		bc := &BuiltConn{Conn: c, tmpl: tmpl}
		if _, err := bc.instantiate(); err != nil {
			lastErr = err
			continue
		}
		return bc, nil
	}
	return nil, fmt.Errorf("explore: no valid connector after 32 attempts from seed %d: %w", seed, lastErr)
}

// CompileConn validates one concrete connector (the shrinker re-checks
// every reduction candidate through it).
func CompileConn(c *Conn) (*BuiltConn, error) {
	tmpl, err := compileConn(c)
	if err != nil {
		return nil, err
	}
	bc := &BuiltConn{Conn: c, tmpl: tmpl}
	if _, err := bc.instantiate(); err != nil {
		return nil, err
	}
	return bc, nil
}

func compileConn(c *Conn) (*compile.Template, error) {
	f, err := parser.Parse(c.Source())
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	return compile.Build(info, c.Name(), Funcs(), compile.Options{Simplify: true})
}

func (bc *BuiltConn) instantiate() (*compile.Assembly, error) {
	return bc.tmpl.Instantiate(bc.Conn.Lengths())
}

// Ins and Outs return the boundary vertex names in array order.
func (bc *BuiltConn) Ins() []string  { return paramNames("in", bc.Conn.NIn) }
func (bc *BuiltConn) Outs() []string { return paramNames("out", bc.Conn.NOut) }

func paramNames(param string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s[%d]", param, i+1)
	}
	return out
}

// Lane identifies one execution configuration of the differential
// matrix.
type Lane struct {
	Name string
	// Group "regions" shares the reference's region plan and per-region
	// choice streams (strict comparison); "single" lanes differ in
	// structure or scheduling, so they compare sequences on deterministic
	// connectors and replay-determinism on choice-bearing ones.
	Group string
	// Async lanes fire off the caller goroutines (quiet-window settling,
	// self-consistency retry on divergence).
	Async bool
	// SkipCounters drops Steps and GuardEvals from the comparison:
	// scheduling lanes run region loops eagerly on their own goroutines,
	// so internal work pending at close (and dispatch-scan counts) are
	// timing-dependent even when every observable sequence is strict.
	SkipCounters bool
	// Batch re-chunks the schedule to this size (0 = reference chunking).
	Batch int
}

// Lanes returns the lane matrix for a backends selector: "all" or a
// comma-separated subset of gen, workers, runtime, off, components,
// aot, batch.
var allLanes = []Lane{
	{Name: "gen", Group: "regions"},
	// Scheduling lanes drain cross-region propagation eagerly on their
	// own goroutines, where the cooperative reference defers it to the
	// next operation — decision points (and so merge orders) legitimately
	// differ, so they are sequence-compared on deterministic connectors
	// only. Strict parity is the gen lane's contract.
	{Name: "workers", Group: "single", Async: true, SkipCounters: true},
	{Name: "runtime", Group: "single", Async: true, SkipCounters: true},
	// Re-chunking moves the engine's decision points (each op
	// registration is a dispatch scan), so merge choices resolve at
	// different moments even on the same RNG stream — the batch lane is
	// compared like the single-engine lanes.
	{Name: "batch2", Group: "single", Batch: 2},
	{Name: "off", Group: "single"},
	{Name: "components", Group: "single"},
	{Name: "aot", Group: "single"},
}

// NewBackend builds a fresh instance of the connector for the named
// lane. The returned close function releases it (lanes with dedicated
// runtimes tear them down). mutate injects the candidate-ordering
// off-by-one into the generated lane's templates (mutation self-check
// only). genBound reports how many regions run generated dispatch (0
// for interpreted lanes).
func (bc *BuiltConn) NewBackend(lane string, seed int64, mutate bool) (b Backend, closeFn func() error, genBound int, err error) {
	asm, err := bc.instantiate()
	if err != nil {
		return nil, nil, 0, err
	}
	opts := engine.Options{Seed: seed, MaxTauBurst: maxTauBurst}
	var coord engine.Coordinator
	switch lane {
	case "ref", "batch2", "batch3":
		coord, err = engine.NewMultiRegions(asm.U, asm.Auts, opts)
	case "gen":
		bind, bound := gen.InProcBinder(asm, gen.InProcOptions{MutateRotateCandidates: mutate})
		coord, err = engine.NewMultiRegionsBound(asm.U, asm.Auts, opts, bind)
		genBound = *bound
	case "workers":
		opts.Workers = 2
		coord, err = engine.NewMultiRegions(asm.U, asm.Auts, opts)
	case "runtime":
		rt := engine.NewRuntime(2)
		coord, err = engine.NewMultiRegions(asm.U, asm.Auts, withRuntime(opts, rt))
		if err == nil {
			inner := coord
			coord = nil
			named := engine.NewNamed(inner, namedSources(asm), namedSinks(asm))
			return named, func() error {
				cerr := named.Close()
				rt.Close()
				return cerr
			}, 0, nil
		}
		rt.Close()
	case "off":
		coord, err = engine.New(asm.U, asm.Auts, opts)
	case "components":
		coord, err = engine.NewMulti(asm.U, asm.Auts, opts)
	case "aot":
		opts.Composition = engine.AOT
		opts.MaxStates = 1 << 14
		coord, err = engine.New(asm.U, asm.Auts, opts)
	default:
		return nil, nil, 0, fmt.Errorf("explore: unknown lane %q", lane)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	named := engine.NewNamed(coord, namedSources(asm), namedSinks(asm))
	return named, named.Close, genBound, nil
}

func withRuntime(opts engine.Options, rt *engine.Runtime) engine.Options {
	opts.Runtime = rt
	return opts
}

func namedSources(asm *compile.Assembly) map[string][]engine.NamedPort {
	out := make(map[string][]engine.NamedPort, len(asm.Tails))
	for name, ports := range asm.Tails {
		for _, p := range ports {
			out[name] = append(out[name], engine.NamedPort{Name: asm.U.Name(p), ID: int32(p)})
		}
	}
	return out
}

func namedSinks(asm *compile.Assembly) map[string][]engine.NamedPort {
	out := make(map[string][]engine.NamedPort, len(asm.Heads))
	for name, ports := range asm.Heads {
		for _, p := range ports {
			out[name] = append(out[name], engine.NamedPort{Name: asm.U.Name(p), ID: int32(p)})
		}
	}
	return out
}
