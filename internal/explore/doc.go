// Package explore is the adversarial scenario engine: instead of
// replaying fixed schedules over the fixed connlib connectors (the
// first differential layer, internal/gen/diff_test.go and the root
// partition/batch/remote tests), it *searches* for divergence between
// execution lanes.
//
// It has three parts:
//
//   - A grammar-based, seeded connector generator (grammar.go): random
//     well-typed .reo connectors, weighted over Sync/Fifo1/Fifo1Full/
//     Fifo.N/filters/transformers/Merger/Replicator/Router/drains with
//     hidden internal vertices, rendered through the real
//     parser→sema→compile→instantiate pipeline and regenerated if any
//     stage rejects them.
//
//   - A deterministic schedule explorer (schedule.go, dpor.go): port
//     operations are launched one at a time, each confirmed through the
//     monotonic OpsRegistered counter, with the engine driven to a
//     fixpoint between launches — so a run is a deterministic function
//     of (connector, schedule, seed) exactly as under gendrv's
//     discipline, but over randomized chunked interleavings instead of
//     one fixed order. For small schedules, DPOR-style enumeration
//     walks the distinct launch orders (canonicalized by commuting
//     independent ports) instead of sampling one.
//
//   - A lane matrix (lanes.go): the region-partitioned interpreted
//     engine is the reference; the in-process generated backend
//     (internal/gen.InProcBinder → engine.BindGen → fireLoopGen) shares
//     its region plan, choice streams, and cooperative scheduling, and
//     is compared strictly (per-port sequences, Steps, GuardEvals) on
//     every connector. All other lanes — WithWorkers, WithRuntime,
//     batch re-chunking, PartitionOff, components, AOT — differ in
//     structure or scheduling, so the grammar marks each connector
//     deterministic (no choice primitives, single-writer vertices) or
//     choice-bearing, and runOrder compares accordingly: deterministic
//     connectors must reproduce the reference's sequences on every
//     lane; choice-bearing ones give cross-structure lanes a
//     replay-determinism check (same lane and seed, twice, exact
//     match), with timing-dependent async lanes run as crash smoke.
//
// On divergence the shrinker (shrink.go) minimizes the failing
// connector and schedule, and Run reports a one-line repro command.
// The mutation self-check (Options.Mutate, `reoc explore -selfcheck`)
// injects a candidate-ordering off-by-one into the generated lane's
// templates and demands the explorer catch it — proof the harness can
// see the bugs it exists for.
package explore
