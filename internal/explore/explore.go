package explore

import (
	"fmt"
	"strings"
)

// Options configures one explorer run (the `reoc explore` flag surface).
type Options struct {
	Seed     int64
	Rounds   int
	MaxOps   int    // schedule token budget per round
	MaxPrims int    // connector size budget
	Backends string // "all" or comma-separated lane names
	Shrink   bool   // minimize the failing case before reporting
	// Mutate injects the candidate-ordering off-by-one into the
	// generated lane (mutation self-check: the run is EXPECTED to fail).
	Mutate bool
	// ExhaustiveTokens: schedules at or below this many tokens get
	// DPOR-style order enumeration on top of the sampled order (0
	// disables enumeration).
	ExhaustiveTokens int
	// MaxOrders caps enumerated orders per round.
	MaxOrders int
	// Log, when set, receives per-round progress lines.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 50
	}
	if o.MaxOps <= 0 {
		o.MaxOps = 24
	}
	if o.MaxPrims <= 0 {
		o.MaxPrims = 8
	}
	if o.Backends == "" {
		o.Backends = "all"
	}
	if o.ExhaustiveTokens == 0 {
		o.ExhaustiveTokens = 6
	}
	if o.MaxOrders <= 0 {
		o.MaxOrders = 8
	}
	return o
}

// Failure describes one confirmed divergence.
type Failure struct {
	RoundSeed int64
	Lane      string
	Conn      *Conn
	Schedule  *Schedule
	Diff      string
	// Repro is a one-line command reproducing the failing round.
	Repro string

	connBC *BuiltConn // compiled form, kept for the shrinker
}

// Report summarizes a run.
type Report struct {
	Rounds   int // rounds completed (including the failing one)
	Orders   int // schedule orders executed
	LaneRuns int // lane executions (compared, self-checked, or smoked)
	Skipped  int // cross-structure comparisons skipped on lazy connector errors
	// GenRegions sums, over gen-lane runs, how many regions executed
	// generated dispatch (fireLoopGen) — the lane's real coverage.
	GenRegions int
	Failure    *Failure
}

// RoundSeed returns the seed of round i under base seed: round 0 runs
// the base seed itself, so `-seed <roundSeed> -rounds 1` replays any
// failing round exactly.
func RoundSeed(base int64, i int) int64 {
	if i == 0 {
		return base
	}
	return deriveSeed(base, uint64(i))
}

// SelectLanes resolves a backends selector against the lane matrix.
func SelectLanes(sel string) ([]Lane, error) {
	if sel == "" || sel == "all" {
		return allLanes, nil
	}
	byName := map[string]Lane{}
	for _, l := range allLanes {
		byName[l.Name] = l
	}
	var out []Lane
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		l, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("explore: unknown backend %q (have gen, workers, runtime, batch2, off, components, aot)", name)
		}
		out = append(out, l)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("explore: empty backend selection %q", sel)
	}
	return out, nil
}

// Run executes the explorer: per round it generates a connector and a
// schedule from the round seed, runs the reference lane, then every
// selected lane under the comparison policy, stopping at the first
// confirmed divergence. The returned error is only for harness
// breakage (a found divergence is reported via Report.Failure).
func Run(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	lanes, err := SelectLanes(opt.Backends)
	if err != nil {
		return nil, err
	}
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{}

	for i := 0; i < opt.Rounds; i++ {
		roundSeed := RoundSeed(opt.Seed, i)
		rep.Rounds++
		bc, err := BuildConn(roundSeed, GenConfig{MaxPrims: opt.MaxPrims})
		if err != nil {
			return nil, err
		}
		sampled := GenerateSchedule(deriveSeed(roundSeed, 1001), bc.Ins(), bc.Outs(), opt.MaxOps)

		orders := []*Schedule{sampled}
		if opt.ExhaustiveTokens > 0 && sampled.TokenCount() <= opt.ExhaustiveTokens {
			asm, err := bc.instantiate()
			if err != nil {
				return nil, err
			}
			orders = append(orders, EnumerateOrders(sampled, PortComponents(asm), opt.MaxOrders)...)
		}
		logf("round %d: seed=%d prims=%d in=%d out=%d tokens=%d orders=%d",
			i, roundSeed, len(bc.Conn.Prims), bc.Conn.NIn, bc.Conn.NOut, sampled.TokenCount(), len(orders))

		for _, order := range orders {
			rep.Orders++
			fail, st, err := runOrder(bc, order, lanes, roundSeed, opt.Mutate)
			rep.Skipped += st.skipped
			rep.LaneRuns += st.laneRuns
			rep.GenRegions += st.genRegions
			if err != nil {
				return nil, err
			}
			if fail == nil {
				continue
			}
			fail.RoundSeed = roundSeed
			fail.Repro = Repro(roundSeed, opt, fail.Lane)
			if opt.Shrink {
				logf("round %d: lane %s diverged, shrinking", i, fail.Lane)
				lane := laneByName(lanes, fail.Lane)
				sb, ss := Shrink(fail.connBC, fail.Schedule, func(b *BuiltConn, s *Schedule) bool {
					f, _, err := runOrder(b, s, []Lane{lane}, roundSeed, opt.Mutate)
					return err == nil && f != nil
				})
				fail.Conn, fail.Schedule = sb.Conn, ss
				if f2, _, err := runOrder(sb, ss, []Lane{lane}, roundSeed, opt.Mutate); err == nil && f2 != nil {
					fail.Diff = f2.Diff
				}
			}
			rep.Failure = fail
			return rep, nil
		}
	}
	return rep, nil
}

// Repro renders the one-line command replaying a failing round.
func Repro(roundSeed int64, opt Options, lane string) string {
	cmd := fmt.Sprintf("go run ./cmd/reoc explore -seed %d -rounds 1 -max-ops %d -max-prims %d -backends %s",
		roundSeed, opt.MaxOps, opt.MaxPrims, lane)
	if opt.Mutate {
		cmd += " -selfcheck-mutate"
	}
	return cmd
}

// lazyConnError recognizes the interpreter's lazy connector-level data
// errors (ca.Automaton's undefined-read and causal-cycle messages):
// they surface only when the failing value is actually read, which
// depends on which transition the lane's choice stream picks.
func lazyConnError(s string) bool {
	return strings.Contains(s, "no value defined for port") ||
		strings.Contains(s, "causal cycle through port")
}

func laneByName(lanes []Lane, name string) Lane {
	for _, l := range lanes {
		if l.Name == name {
			return l
		}
	}
	return Lane{Name: name}
}

type orderStats struct {
	skipped    int
	laneRuns   int
	genRegions int
}

// runOrder runs one schedule order across the lane matrix against a
// fresh reference, returning the first confirmed divergence (nil if the
// order agrees everywhere).
//
// Comparison policy, keyed off Conn.Deterministic():
//
//   - The gen lane shares the reference's region plan, choice streams,
//     and cooperative scheduling, so it compares strictly (sequences,
//     Steps, GuardEvals) on every connector.
//   - On deterministic connectors every lane must reproduce the
//     reference's sequences: choice primitives are absent and every
//     vertex has one writer, so observable behavior is a function of the
//     schedule alone, whatever the engine's structure.
//   - On choice-bearing connectors, cross-structure lanes resolve merges
//     at legitimately different decision points — even a lane that is
//     choice-invariant under the reference's lazy propagation need not
//     be under a monolithic composition. Those lanes instead get a
//     replay-determinism check: the same lane, seed, and schedule run
//     twice must agree exactly (async lanes run as crash/hang smoke
//     only, their eager scheduling being timing-dependent by design).
func runOrder(bc *BuiltConn, order *Schedule, lanes []Lane, roundSeed int64, mutate bool) (*Failure, orderStats, error) {
	var st orderStats
	engSeed := deriveSeed(roundSeed, 7)
	deterministic := bc.Conn.Deterministic()
	ref, _, err := runLane(bc, "ref", false, order, engSeed, false)
	if err != nil {
		return nil, st, err
	}

	var offOutcome *Outcome
	for _, lane := range lanes {
		sched := order
		if lane.Batch > 0 {
			sched = order.Rechunk(lane.Batch)
		}
		cross := lane.Group != "regions"
		mut := mutate && lane.Name == "gen"

		if cross && !deterministic {
			if lane.Async {
				// Timing-dependent scheduling on a choice-bearing connector:
				// no sound comparison target, but the run still smokes out
				// panics, hangs, and registration stalls.
				if _, _, err := runLane(bc, lane.Name, true, sched, engSeed, mut); err != nil {
					return nil, st, err
				}
				st.laneRuns++
				continue
			}
			out1, _, err := runLane(bc, lane.Name, false, sched, engSeed, mut)
			if err != nil {
				return nil, st, err
			}
			out2, _, err := runLane(bc, lane.Name, false, sched, engSeed, mut)
			if err != nil {
				return nil, st, err
			}
			st.laneRuns++
			if d := DiffOutcomes(out1, out2, lane.Name+"/run1", lane.Name+"/run2", false, false); d != "" {
				return &Failure{
					Lane:     lane.Name,
					Conn:     bc.Conn,
					connBC:   bc,
					Schedule: sched,
					Diff:     "replay nondeterminism: " + d,
				}, st, nil
			}
			continue
		}

		if cross && lazyConnError(ref.Broken) {
			// A lazily-erroring transition (undefined hidden-port read) is
			// reached or not depending on transition order, which even a
			// deterministic connector leaves unspecified across engine
			// structures once a run aborts mid-way.
			st.skipped++
			continue
		}
		out, genBound, err := runLane(bc, lane.Name, lane.Async, sched, engSeed, mut)
		if err != nil {
			return nil, st, err
		}
		if cross && lazyConnError(out.Broken) {
			st.skipped++
			continue
		}
		st.laneRuns++
		if lane.Name == "gen" {
			st.genRegions += genBound
		}
		diff := DiffOutcomes(ref, out, "ref", lane.Name, cross || lane.SkipCounters, false)
		if diff != "" && lane.Async {
			// Scheduling lanes get a confirmation rerun: a divergence that
			// does not repeat was a settling artifact, not a bug.
			confirmed := true
			for r := 0; r < 2; r++ {
				again, _, err := runLane(bc, lane.Name, true, sched, engSeed, mut)
				if err != nil {
					return nil, st, err
				}
				if DiffOutcomes(ref, again, "ref", lane.Name, cross || lane.SkipCounters, false) == "" {
					confirmed = false
					break
				}
			}
			if !confirmed {
				diff = ""
			}
		}
		if diff != "" {
			return &Failure{
				Lane:     lane.Name,
				Conn:     bc.Conn,
				connBC:   bc,
				Schedule: sched,
				Diff:     diff,
			}, st, nil
		}
		// The AOT lane additionally checks strict Steps parity against
		// the plain single engine (same composition, different strategy).
		if lane.Name == "off" {
			offOutcome = out
		}
		if lane.Name == "aot" && offOutcome != nil {
			if d := DiffOutcomes(offOutcome, out, "off", "aot", false, true); d != "" {
				return &Failure{
					Lane:     "aot",
					Conn:     bc.Conn,
					connBC:   bc,
					Schedule: sched,
					Diff:     d,
				}, st, nil
			}
		}
	}
	return nil, st, nil
}

func runLane(bc *BuiltConn, lane string, async bool, s *Schedule, seed int64, mutate bool) (*Outcome, int, error) {
	b, closeFn, genBound, err := bc.NewBackend(lane, seed, mutate)
	if err != nil {
		return nil, 0, err
	}
	out, err := RunSchedule(b, s, RunCfg{Async: async, CloseFn: closeFn})
	if err != nil {
		return nil, genBound, fmt.Errorf("explore: lane %s: %w", lane, err)
	}
	return out, genBound, nil
}

// FormatFailure renders a failure report, ending with the repro line.
func FormatFailure(f *Failure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "explore: divergence on lane %s (round seed %d)\n", f.Lane, f.RoundSeed)
	fmt.Fprintf(&b, "  %s\n", f.Diff)
	fmt.Fprintf(&b, "connector:\n%s", indent(f.Conn.Source(), "  "))
	fmt.Fprintf(&b, "schedule (%d tokens):\n", len(f.Schedule.Ops))
	for _, op := range f.Schedule.Ops {
		if op.Send {
			fmt.Fprintf(&b, "  send %-8s %v\n", op.Port, op.Vals)
		} else {
			fmt.Fprintf(&b, "  recv %-8s cap=%d\n", op.Port, op.Cap)
		}
	}
	fmt.Fprintf(&b, "repro: %s\n", f.Repro)
	return b.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
