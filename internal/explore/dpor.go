package explore

import (
	"repro/internal/ca"
	"repro/internal/compile"
)

// DPOR-style branch-point enumeration for small schedules. The branch
// points of the explorer are the launch-order choices between tokens of
// different ports; two tokens are independent exactly when their ports
// lie in different connected components of the region-link graph (then
// no automaton, buffer, or choice stream is shared between them, so
// commuting their launches cannot change any observable). Enumeration
// therefore walks, per component, every interleaving of that
// component's per-port token streams, and concatenates components in a
// fixed order — the canonical representative of each equivalence class
// of schedules, with cross-component permutations (which a naive
// permutation walk would waste runs on) pruned entirely.

// PortComponents maps every boundary vertex name to the connected
// component of the region-link graph its region belongs to. Ports in
// different components never interact.
func PortComponents(asm *compile.Assembly) map[string]int {
	plan := ca.PlanRegions(asm.U, asm.Auts)
	uf := ca.NewUnionFind(len(plan.Regions))
	for _, l := range plan.Links {
		uf.Union(l.From, l.To)
	}
	// A port's component is that of any region whose alphabet contains
	// it (all such regions are linked through it, hence already unioned
	// for non-buffer sharing; link endpoints map through their own
	// region).
	comp := map[string]int{}
	assign := func(p ca.PortID, ri int) {
		comp[asm.U.Name(p)] = uf.Find(ri)
	}
	for ri, spec := range plan.Regions {
		for _, ai := range spec.Auts {
			asm.Auts[ai].Ports.ForEach(func(p ca.PortID) { assign(p, ri) })
		}
		for _, p := range spec.Nodes {
			assign(p, ri)
		}
	}
	// Link buffer endpoints (cut constituents appear in no region).
	for _, l := range plan.Links {
		assign(l.SrcPort, l.From)
		assign(l.DstPort, l.To)
	}
	return comp
}

// EnumerateOrders returns canonical launch orders of the schedule's
// tokens: per region-link component, every interleaving of the
// component's per-port streams (each stream's own order preserved),
// components concatenated in first-appearance order. At most limit
// orders are produced; the sampled input order is not guaranteed to be
// among them, so callers run it separately. comp maps port names to
// components (see PortComponents); ports missing from comp share a
// synthetic component.
func EnumerateOrders(s *Schedule, comp map[string]int, limit int) []*Schedule {
	if limit < 1 {
		limit = 1
	}
	// Group tokens by port, ports by component, preserving appearance
	// order at both levels.
	type portStream struct {
		port string
		ops  []Op
	}
	var compOrder []int
	streamsByComp := map[int][]*portStream{}
	streamOf := map[string]*portStream{}
	for _, op := range s.Ops {
		st := streamOf[op.Port]
		if st == nil {
			cid, ok := comp[op.Port]
			if !ok {
				cid = -1
			}
			st = &portStream{port: op.Port}
			streamOf[op.Port] = st
			if len(streamsByComp[cid]) == 0 {
				compOrder = append(compOrder, cid)
			}
			streamsByComp[cid] = append(streamsByComp[cid], st)
		}
		st.ops = append(st.ops, op)
	}

	// Per component: DFS over "which port contributes the next token".
	interleave := func(streams []*portStream, cap int) [][]Op {
		total := 0
		for _, st := range streams {
			total += len(st.ops)
		}
		var out [][]Op
		idx := make([]int, len(streams))
		cur := make([]Op, 0, total)
		var rec func()
		rec = func() {
			if len(out) >= cap {
				return
			}
			if len(cur) == total {
				out = append(out, append([]Op(nil), cur...))
				return
			}
			for i, st := range streams {
				if idx[i] >= len(st.ops) {
					continue
				}
				cur = append(cur, st.ops[idx[i]])
				idx[i]++
				rec()
				idx[i]--
				cur = cur[:len(cur)-1]
				if len(out) >= cap {
					return
				}
			}
		}
		rec()
		return out
	}

	// Cross product over components, capped.
	orders := [][]Op{nil}
	for _, cid := range compOrder {
		variants := interleave(streamsByComp[cid], limit)
		var next [][]Op
		for _, head := range orders {
			for _, v := range variants {
				next = append(next, append(append([]Op(nil), head...), v...))
				if len(next) >= limit {
					break
				}
			}
			if len(next) >= limit {
				break
			}
		}
		orders = next
	}

	out := make([]*Schedule, len(orders))
	for i, ops := range orders {
		out[i] = &Schedule{Ops: ops}
	}
	return out
}

// TokenCount is the schedule's token total — the explorer enumerates
// orders exhaustively only below a small threshold.
func (s *Schedule) TokenCount() int { return len(s.Ops) }
