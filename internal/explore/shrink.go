package explore

// Shrinker: greedy minimization of a failing (connector, schedule)
// pair. Each reduction candidate is re-validated through the real
// compile pipeline (CompileConn) and must still reproduce the failure
// (the caller's predicate) to be accepted. Because Conn keeps the
// connector's structure — not just its text — reductions stay
// well-typed by construction or are rejected by the pipeline, never
// silently degenerate.

// FailsFn reports whether a (connector, schedule) pair still exhibits
// the failure being minimized. It must be deterministic.
type FailsFn func(*BuiltConn, *Schedule) bool

// ShrinkBudget bounds how many candidate evaluations one Shrink call
// may spend (each evaluation runs the lane matrix, so this is the
// expensive knob).
const ShrinkBudget = 160

// Shrink minimizes a failing pair: it repeatedly tries dropping
// primitives, stripping structural decorations (prod wraps, if wraps),
// dropping schedule tokens, and trimming token payloads/capacities,
// keeping any reduction that still compiles and still fails. The
// returned pair is 1-minimal with respect to these operations or the
// budget ran out.
func Shrink(bc *BuiltConn, s *Schedule, fails FailsFn) (*BuiltConn, *Schedule) {
	budget := ShrinkBudget
	try := func(c *Conn, cand *Schedule) (*BuiltConn, bool) {
		if budget <= 0 {
			return nil, false
		}
		budget--
		if c == nil {
			if fails(bc, cand) {
				return bc, true
			}
			return nil, false
		}
		nb, err := CompileConn(c)
		if err != nil {
			return nil, false
		}
		if fails(nb, cand) {
			return nb, true
		}
		return nil, false
	}

	for budget > 0 {
		reduced := false

		// Drop whole primitives (largest structural cuts first).
		for i := 0; i < len(bc.Conn.Prims) && budget > 0; i++ {
			c := bc.Conn.clone()
			c.Prims = append(c.Prims[:i:i], c.Prims[i+1:]...)
			if nb, ok := try(c, s); ok {
				bc, reduced = nb, true
				i--
			}
		}
		// Strip decorations.
		if bc.Conn.WrapIf != 0 && budget > 0 {
			c := bc.Conn.clone()
			c.WrapIf = 0
			if nb, ok := try(c, s); ok {
				bc, reduced = nb, true
			}
		}
		for i := 0; i < len(bc.Conn.Prims) && budget > 0; i++ {
			if !bc.Conn.Prims[i].Prod {
				continue
			}
			c := bc.Conn.clone()
			c.Prims[i].Prod = false
			if nb, ok := try(c, s); ok {
				bc, reduced = nb, true
			}
		}

		// Drop schedule tokens.
		for i := 0; i < len(s.Ops) && budget > 0; i++ {
			cand := &Schedule{Ops: append(s.Ops[:i:i], s.Ops[i+1:]...)}
			if _, ok := try(nil, cand); ok {
				s, reduced = cand, true
				i--
			}
		}
		// Trim token payloads and capacities.
		for i := 0; i < len(s.Ops) && budget > 0; i++ {
			op := s.Ops[i]
			switch {
			case op.Send && len(op.Vals) > 1:
				cand := s.withOp(i, Op{Port: op.Port, Send: true, Vals: op.Vals[:len(op.Vals)-1]})
				if _, ok := try(nil, cand); ok {
					s, reduced = cand, true
					i--
				}
			case !op.Send && op.Cap > 1:
				cand := s.withOp(i, Op{Port: op.Port, Cap: op.Cap / 2})
				if _, ok := try(nil, cand); ok {
					s, reduced = cand, true
					i--
				}
			}
		}

		if !reduced {
			break
		}
	}
	return bc, s
}

func (s *Schedule) withOp(i int, op Op) *Schedule {
	ops := append([]Op(nil), s.Ops...)
	ops[i] = op
	return &Schedule{Ops: ops}
}

// clone deep-copies the connector structure.
func (c *Conn) clone() *Conn {
	n := *c
	n.Prims = make([]Prim, len(c.Prims))
	for i, p := range c.Prims {
		n.Prims[i] = Prim{
			Kind:  p.Kind,
			Attr:  p.Attr,
			Tails: append([]int(nil), p.Tails...),
			Heads: append([]int(nil), p.Heads...),
			Prod:  p.Prod,
		}
	}
	return &n
}
