package explore

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Backend is the structural surface the driver needs — satisfied by
// engine.Backend (reo.Instance.Backend(), engine.NewNamed) and by the
// instances generated packages emit.
type Backend interface {
	SendBatch(port string, vs []any) (int, error)
	RecvBatch(port string, buf []any) (int, error)
	Ports(param string) []string
	Close() error
	Steps() int64
	GuardEvals() int64
	OpsRegistered() int64
}

// Op is one schedule token: a batched operation on a boundary port.
// Sends carry their items; receives carry a capacity.
type Op struct {
	Port string
	Send bool
	Vals []any
	Cap  int
}

// Schedule is a launch-ordered list of port operations. The driver
// launches them one at a time (each confirmed through OpsRegistered),
// deferring a token while its port still has an incomplete operation —
// so the realized arrival order is a deterministic function of the
// token order and the engine's (deterministic) completion behavior.
type Schedule struct {
	Ops []Op
}

// Tag is the item sender i moves in round r, matching gendrv.Tag so
// sequences identify origin and order.
func Tag(i, r int) int { return (i+1)*1000 + r }

// GenerateSchedule samples a chunked interleaved schedule for the given
// boundary ports: per-tail streams of seeded lengths split into chunks,
// per-head receive capacities split likewise, all riffled into one
// launch order. maxOps bounds the token count.
func GenerateSchedule(seed int64, ins, outs []string, maxOps int) *Schedule {
	r := newRNG(seed)
	if maxOps < 2 {
		maxOps = 2
	}
	total := 0
	streams := make([][]any, len(ins))
	for i := range ins {
		l := r.rangeIn(0, 6)
		vs := make([]any, l)
		for k := range vs {
			vs[k] = Tag(i, k)
		}
		streams[i] = vs
		total += l
	}
	// Worst-case deliverable items per head: replicator chains can copy
	// a tail item to several heads, but 2×total+2 covers every generated
	// shape and keeps short receives (routing, filtering) observable.
	capPer := 2*total + 2

	var perPort [][]Op
	for i, port := range ins {
		var ops []Op
		vs := streams[i]
		for len(vs) > 0 {
			n := r.rangeIn(1, 4)
			if n > len(vs) {
				n = len(vs)
			}
			ops = append(ops, Op{Port: port, Send: true, Vals: vs[:n]})
			vs = vs[n:]
		}
		perPort = append(perPort, ops)
	}
	for _, port := range outs {
		var ops []Op
		left := capPer
		for left > 0 {
			n := r.rangeIn(1, 5)
			if n > left {
				n = left
			}
			ops = append(ops, Op{Port: port, Cap: n})
			left -= n
			if len(ops) >= 4 && left > 0 { // a tail receiver absorbing the rest
				ops = append(ops, Op{Port: port, Cap: left})
				break
			}
		}
		perPort = append(perPort, ops)
	}

	// Riffle: repeatedly take the next token of a random nonempty port
	// stream, preserving per-port order.
	s := &Schedule{}
	for len(s.Ops) < maxOps {
		var nonempty []int
		for i := range perPort {
			if len(perPort[i]) > 0 {
				nonempty = append(nonempty, i)
			}
		}
		if len(nonempty) == 0 {
			break
		}
		i := nonempty[r.intn(len(nonempty))]
		s.Ops = append(s.Ops, perPort[i][0])
		perPort[i] = perPort[i][1:]
	}
	return s
}

// Rechunk rebuilds the schedule with every stream split into chunks of
// size k instead of its original chunking, preserving the relative
// launch order of the ports' first tokens. Batch-size lanes run the
// same logical streams through a different op granularity.
func (s *Schedule) Rechunk(k int) *Schedule {
	if k < 1 {
		k = 1
	}
	type stream struct {
		port string
		send bool
		vals []any
		cap_ int
	}
	var order []string
	byPort := map[string]*stream{}
	for _, op := range s.Ops {
		st := byPort[op.Port]
		if st == nil {
			st = &stream{port: op.Port, send: op.Send}
			byPort[op.Port] = st
			order = append(order, op.Port)
		}
		st.vals = append(st.vals, op.Vals...)
		st.cap_ += op.Cap
	}
	out := &Schedule{}
	live := true
	for live {
		live = false
		for _, port := range order {
			st := byPort[port]
			if st.send {
				if len(st.vals) == 0 {
					continue
				}
				n := k
				if n > len(st.vals) {
					n = len(st.vals)
				}
				out.Ops = append(out.Ops, Op{Port: port, Send: true, Vals: st.vals[:n]})
				st.vals = st.vals[n:]
				live = true
			} else {
				if st.cap_ == 0 {
					continue
				}
				n := k
				if n > st.cap_ {
					n = st.cap_
				}
				out.Ops = append(out.Ops, Op{Port: port, Cap: n})
				st.cap_ -= n
				live = true
			}
		}
	}
	return out
}

// Outcome is one run's observable behavior: per-port value sequences
// (concatenated over the port's completed op prefixes, rendered with
// fmt.Sprint), the engine counters, and how the run ended.
type Outcome struct {
	Seqs       map[string][]string
	Steps      int64
	GuardEvals int64
	Deadlock   bool   // closed at a fixpoint with unfinished tokens
	Broken     string // non-empty when an op failed before close (e.g. livelock)
}

// RunCfg tunes the driver for the lane's scheduling model.
type RunCfg struct {
	// Async marks lanes whose firing happens off the caller goroutines
	// (WithWorkers / WithRuntime): fixpoint detection then needs a
	// wall-clock quiet window on top of counter stability.
	Async bool
	// CloseFn overrides Backend.Close (reo instances recycle through
	// Instance.Close rather than the coordinator's).
	CloseFn func() error
}

type opState struct {
	op    Op
	moved int32
	done  int32
	errS  atomic.Value // string
}

// RunSchedule drives the backend through the schedule deterministically:
// tokens launch one at a time in order (first token whose port is free),
// each launch confirmed via OpsRegistered, with the engine settled to a
// fixpoint before every decision. When no token can launch and no
// operation can complete, the run is declared deadlocked and closed;
// pending operations then record their partial prefixes, which are part
// of the observed behavior.
func RunSchedule(b Backend, s *Schedule, cfg RunCfg) (*Outcome, error) {
	out := &Outcome{Seqs: map[string][]string{}}
	states := make([]*opState, 0, len(s.Ops))
	busy := map[string]*opState{}
	var wg sync.WaitGroup
	launched := 0
	pendingTok := append([]Op(nil), s.Ops...)

	doneCount := func() int {
		n := 0
		for _, st := range states {
			n += int(atomic.LoadInt32(&st.done))
		}
		return n
	}
	settle := func() {
		const stablePolls = 192
		deadline := time.Now().Add(10 * time.Second)
		var quietSince time.Time
		lastS, lastR, lastD := int64(-1), int64(-1), -1
		stable := 0
		for {
			sNow, rNow, dNow := b.Steps(), b.OpsRegistered(), doneCount()
			if sNow != lastS || rNow != lastR || dNow != lastD {
				lastS, lastR, lastD = sNow, rNow, dNow
				stable = 0
				quietSince = time.Now()
			} else {
				stable++
			}
			if stable >= stablePolls {
				if !cfg.Async || time.Since(quietSince) > 30*time.Millisecond {
					return
				}
				time.Sleep(time.Millisecond)
			}
			if time.Now().After(deadline) {
				return
			}
			runtime.Gosched()
		}
	}
	launch := func(op Op) error {
		st := &opState{op: op}
		states = append(states, st)
		busy[op.Port] = st
		base := b.OpsRegistered()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n int
			var err error
			if op.Send {
				n, err = b.SendBatch(op.Port, op.Vals)
			} else {
				buf := make([]any, op.Cap)
				n, err = b.RecvBatch(op.Port, buf)
				st.op.Vals = buf
			}
			atomic.StoreInt32(&st.moved, int32(n))
			if err != nil {
				st.errS.Store(err.Error())
			}
			atomic.StoreInt32(&st.done, 1)
		}()
		deadline := time.Now().Add(10 * time.Second)
		for b.OpsRegistered() < base+1 {
			// A token whose previous same-port op completed inside the
			// engine but whose goroutine hasn't recorded yet can register
			// immediately; ops on other ports cannot, so waiting here is
			// safe only because the caller launches free ports only.
			if atomic.LoadInt32(&st.done) == 1 {
				break // failed fast (broken engine) without registering
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("explore: op on %q never registered", op.Port)
			}
			runtime.Gosched()
		}
		return nil
	}

	for {
		settle()
		// Free completed ports.
		for port, st := range busy {
			if atomic.LoadInt32(&st.done) == 1 {
				delete(busy, port)
			}
		}
		idx := -1
		for i, op := range pendingTok {
			if busy[op.Port] == nil {
				idx = i
				break
			}
		}
		if idx < 0 {
			break // nothing launchable at this fixpoint: done or deadlock
		}
		op := pendingTok[idx]
		pendingTok = append(pendingTok[:idx], pendingTok[idx+1:]...)
		if err := launch(op); err != nil {
			return nil, err
		}
		launched++
	}

	out.Deadlock = len(pendingTok) > 0 || len(busy) > 0
	closeFn := cfg.CloseFn
	if closeFn == nil {
		closeFn = b.Close
	}
	_ = closeFn()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		return nil, fmt.Errorf("explore: operations failed to release after close")
	}

	// Record per-port sequences in launch order; an op error before the
	// driver's own close marks the run broken (close-released partials
	// are expected and not errors).
	for _, st := range states {
		n := int(atomic.LoadInt32(&st.moved))
		seq := out.Seqs[st.op.Port]
		for i := 0; i < n && i < len(st.op.Vals); i++ {
			seq = append(seq, fmt.Sprint(st.op.Vals[i]))
		}
		out.Seqs[st.op.Port] = seq
		if e, _ := st.errS.Load().(string); e != "" && !out.Deadlock {
			if out.Broken == "" {
				out.Broken = e
			}
		}
	}
	out.Steps = b.Steps()
	out.GuardEvals = b.GuardEvals()
	return out, nil
}

func normalizeBroken(s string) string {
	var b strings.Builder
	inDigits := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			if !inDigits {
				b.WriteByte('#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteRune(r)
	}
	return b.String()
}

// DiffOutcomes compares two outcomes under a policy and returns a
// human-readable divergence description, or "" when they agree.
// seqsOnly drops the Steps/GuardEvals comparison (cross-group lanes);
// skipGuardEvals drops only GuardEvals (scheduling lanes, whose
// dispatch-scan count is timing-dependent).
func DiffOutcomes(ref, got *Outcome, refName, gotName string, seqsOnly, skipGuardEvals bool) string {
	var d []string
	ports := map[string]bool{}
	for p := range ref.Seqs {
		ports[p] = true
	}
	for p := range got.Seqs {
		ports[p] = true
	}
	var names []string
	for p := range ports {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		a, b := ref.Seqs[p], got.Seqs[p]
		if strings.Join(a, ",") != strings.Join(b, ",") {
			d = append(d, fmt.Sprintf("port %s: %s=[%s] %s=[%s]",
				p, refName, strings.Join(a, ","), gotName, strings.Join(b, ",")))
		}
	}
	// Engine errors embed backend-dependent identifiers (partitioned
	// universes renumber ports), so Broken compares with digit runs
	// normalized: the error class must agree, not the raw IDs.
	if normalizeBroken(ref.Broken) != normalizeBroken(got.Broken) {
		d = append(d, fmt.Sprintf("broken: %s=%q %s=%q", refName, ref.Broken, gotName, got.Broken))
	}
	if ref.Deadlock != got.Deadlock {
		d = append(d, fmt.Sprintf("deadlock: %s=%v %s=%v", refName, ref.Deadlock, gotName, got.Deadlock))
	}
	if !seqsOnly {
		if ref.Steps != got.Steps {
			d = append(d, fmt.Sprintf("steps: %s=%d %s=%d", refName, ref.Steps, gotName, got.Steps))
		}
		if !skipGuardEvals && ref.GuardEvals != got.GuardEvals {
			d = append(d, fmt.Sprintf("guardEvals: %s=%d %s=%d", refName, ref.GuardEvals, gotName, got.GuardEvals))
		}
	}
	return strings.Join(d, "; ")
}
