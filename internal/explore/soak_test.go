package explore

import (
	"os"
	"strconv"
	"testing"
)

// TestExploreSoak is the nightly long exploration: opt-in via
// EXPLORE_SOAK_ROUNDS (the PR gate runs the short TestExploreClean and
// the `reoc explore` smoke instead). Seed defaults to 42 and can be
// pinned with EXPLORE_SOAK_SEED to replay a nightly failure locally.
func TestExploreSoak(t *testing.T) {
	rounds, _ := strconv.Atoi(os.Getenv("EXPLORE_SOAK_ROUNDS"))
	if rounds <= 0 {
		t.Skip("set EXPLORE_SOAK_ROUNDS to run the soak")
	}
	seed := int64(42)
	if s, err := strconv.ParseInt(os.Getenv("EXPLORE_SOAK_SEED"), 10, 64); err == nil {
		seed = s
	}
	rep, err := Run(Options{Seed: seed, Rounds: rounds, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rounds=%d orders=%d laneRuns=%d skipped=%d genRegions=%d",
		rep.Rounds, rep.Orders, rep.LaneRuns, rep.Skipped, rep.GenRegions)
	if rep.Failure != nil {
		t.Fatalf("\n%s", FormatFailure(rep.Failure))
	}
}
