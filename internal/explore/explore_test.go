package explore

import (
	"strings"
	"testing"
)

// TestGeneratorDeterministic: the grammar is a pure function of the
// seed (the repro contract depends on it).
func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := GenerateConn(seed, GenConfig{})
		b := GenerateConn(seed, GenConfig{})
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, a.Source(), b.Source())
		}
	}
}

// TestGeneratorCompiles: generated connectors survive the real
// pipeline within BuildConn's retry budget, for many seeds.
func TestGeneratorCompiles(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		if _, err := BuildConn(seed, GenConfig{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestScheduleDeterministic: schedules are pure functions of the seed,
// and Rechunk preserves per-port streams.
func TestScheduleDeterministic(t *testing.T) {
	ins := []string{"in[1]", "in[2]"}
	outs := []string{"out[1]"}
	a := GenerateSchedule(7, ins, outs, 24)
	b := GenerateSchedule(7, ins, outs, 24)
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a.Ops), len(b.Ops))
	}
	flat := func(s *Schedule) map[string]string {
		m := map[string][]string{}
		for _, op := range s.Ops {
			if op.Send {
				for _, v := range op.Vals {
					m[op.Port] = append(m[op.Port], "s")
					_ = v
				}
			} else {
				for i := 0; i < op.Cap; i++ {
					m[op.Port] = append(m[op.Port], "r")
				}
			}
		}
		out := map[string]string{}
		for p, vs := range m {
			out[p] = strings.Join(vs, "")
		}
		return out
	}
	re := a.Rechunk(2)
	fa, fr := flat(a), flat(re)
	for p, want := range fa {
		if fr[p] != want {
			t.Fatalf("rechunk changed stream on %s: %q vs %q", p, want, fr[p])
		}
	}
}

// TestEnumerateOrders: a two-port schedule enumerates the binomial
// interleavings (capped), preserving per-port order.
func TestEnumerateOrders(t *testing.T) {
	s := &Schedule{Ops: []Op{
		{Port: "a", Send: true, Vals: []any{1}},
		{Port: "a", Send: true, Vals: []any{2}},
		{Port: "b", Cap: 1},
	}}
	comp := map[string]int{"a": 0, "b": 0}
	orders := EnumerateOrders(s, comp, 16)
	if len(orders) != 3 { // C(3,1) positions for b among a's two tokens
		t.Fatalf("want 3 interleavings, got %d", len(orders))
	}
	seen := map[string]bool{}
	for _, o := range orders {
		var sig []string
		lastA := 0
		for _, op := range o.Ops {
			sig = append(sig, op.Port)
			if op.Port == "a" {
				v := op.Vals[0].(int)
				if v <= lastA {
					t.Fatalf("per-port order violated: %v", o.Ops)
				}
				lastA = v
			}
		}
		seen[strings.Join(sig, ",")] = true
	}
	if len(seen) != 3 {
		t.Fatalf("orders not distinct: %v", seen)
	}

	// Independent components: cross-component interleavings are pruned
	// to the single canonical concatenation.
	comp = map[string]int{"a": 0, "b": 1}
	orders = EnumerateOrders(s, comp, 16)
	if len(orders) != 1 {
		t.Fatalf("independent ports: want 1 canonical order, got %d", len(orders))
	}
}

// TestExploreClean: a short exploration over the full lane matrix finds
// no divergence on a healthy tree.
func TestExploreClean(t *testing.T) {
	if testing.Short() {
		t.Skip("explorer run")
	}
	rep, err := Run(Options{Seed: 1, Rounds: 6, MaxOps: 16, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("unexpected divergence:\n%s", FormatFailure(rep.Failure))
	}
	if rep.LaneRuns == 0 {
		t.Fatal("no lane runs executed")
	}
}

// TestMutationSelfCheck: with the candidate-ordering off-by-one
// injected into the generated lane's templates, the explorer must find
// a divergence — proof it can see the class of bug it exists for — and
// the shrinker must return a case that still reproduces it.
func TestMutationSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("explorer run")
	}
	opt := Options{Seed: 1, Rounds: 200, MaxOps: 24, Backends: "gen", Mutate: true, Shrink: true, Log: t.Logf}
	rep, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure == nil {
		t.Fatalf("mutation not detected in %d rounds", rep.Rounds)
	}
	f := rep.Failure
	if f.Repro == "" || !strings.Contains(f.Repro, "-selfcheck-mutate") {
		t.Fatalf("repro line missing or unmarked: %q", f.Repro)
	}
	// The shrunk case must still reproduce under the same lane.
	bc, err := CompileConn(f.Conn)
	if err != nil {
		t.Fatalf("shrunk connector no longer compiles: %v", err)
	}
	fail, _, err := runOrder(bc, f.Schedule, []Lane{laneByName(allLanes, "gen")}, f.RoundSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	if fail == nil {
		t.Fatalf("shrunk case does not reproduce:\n%s", FormatFailure(f))
	}
	t.Logf("detected and shrunk to %d prims, %d tokens:\n%s",
		len(f.Conn.Prims), len(f.Schedule.Ops), FormatFailure(f))
}

// TestMutationCleanGreen: the same seed with the mutation off stays
// green (the self-check's control arm).
func TestMutationCleanGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("explorer run")
	}
	rep, err := Run(Options{Seed: 1, Rounds: 6, MaxOps: 24, Backends: "gen", Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("clean run diverged:\n%s", FormatFailure(rep.Failure))
	}
}
