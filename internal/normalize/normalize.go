package normalize

import "repro/internal/ast"

// Normalize returns the normal form of a flattened expression.
func Normalize(e ast.Expr) ast.Expr {
	var invokes, prods, ifs []ast.Expr
	collect(e, &invokes, &prods, &ifs)
	factors := make([]ast.Expr, 0, len(invokes)+len(prods)+len(ifs))
	factors = append(factors, invokes...)
	factors = append(factors, prods...)
	factors = append(factors, ifs...)
	if len(factors) == 1 {
		return factors[0]
	}
	return &ast.Mult{Factors: factors, Pos: e.Position()}
}

func collect(e ast.Expr, invokes, prods, ifs *[]ast.Expr) {
	switch e := e.(type) {
	case *ast.Mult:
		for _, f := range e.Factors {
			collect(f, invokes, prods, ifs)
		}
	case *ast.Invoke:
		*invokes = append(*invokes, e)
	case *ast.Prod:
		body := Normalize(e.Body)
		*prods = append(*prods, &ast.Prod{Var: e.Var, Lo: e.Lo, Hi: e.Hi, Body: body, Pos: e.Pos})
	case *ast.If:
		n := &ast.If{Cond: e.Cond, Then: Normalize(e.Then), Pos: e.Pos}
		if e.Else != nil {
			n.Else = Normalize(e.Else)
		}
		*ifs = append(*ifs, n)
	}
}

// IsNormal reports whether an expression is in normal form (used by tests
// and cmd/reoc).
func IsNormal(e ast.Expr) bool {
	m, ok := e.(*ast.Mult)
	if !ok {
		switch e := e.(type) {
		case *ast.Invoke:
			return true
		case *ast.Prod:
			return IsNormal(e.Body)
		case *ast.If:
			if !IsNormal(e.Then) {
				return false
			}
			return e.Else == nil || IsNormal(e.Else)
		}
		return false
	}
	// Sections in order: invokes, prods, ifs; nested Mult not allowed.
	const (
		secInvoke = iota
		secProd
		secIf
	)
	section := secInvoke
	for _, f := range m.Factors {
		switch f := f.(type) {
		case *ast.Invoke:
			if section > secInvoke {
				return false
			}
		case *ast.Prod:
			if section > secProd {
				return false
			}
			section = secProd
			if !IsNormal(f.Body) {
				return false
			}
		case *ast.If:
			section = secIf
			if !IsNormal(f.Then) {
				return false
			}
			if f.Else != nil && !IsNormal(f.Else) {
				return false
			}
		default:
			return false
		}
	}
	return true
}
