// Package normalize rewrites flattened connector expressions into the
// normal form of §IV-C: from left to right, first a section with only
// (primitive) constituents, then a section with only iteration
// expressions, and finally a section with only conditional expressions —
// recursively inside iteration bodies and conditional branches. The
// reordering is sound because mult (×) is associative and commutative.
package normalize
