package normalize_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/normalize"
	"repro/internal/parser"
)

func parse(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExample10Order(t *testing.T) {
	// §IV-C Example 10: after normalization, constituents come first,
	// then iterations, then conditionals.
	e := parse(t, `
        if (1 == 1) { Sync(a;b) }
        mult prod (i:1..3) Sync(x[i];y[i])
        mult Fifo1(p;q)
        mult prod (j:1..2) Fifo1(s[j];t[j])
        mult Sync(c;d)
    `)
	n := normalize.Normalize(e)
	if !normalize.IsNormal(n) {
		t.Fatalf("not normal:\n%s", ast.RenderExpr(n, ""))
	}
	m := n.(*ast.Mult)
	kinds := []string{}
	for _, f := range m.Factors {
		switch f.(type) {
		case *ast.Invoke:
			kinds = append(kinds, "inv")
		case *ast.Prod:
			kinds = append(kinds, "prod")
		case *ast.If:
			kinds = append(kinds, "if")
		}
	}
	want := []string{"inv", "inv", "prod", "prod", "if"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestNestedNormalization(t *testing.T) {
	e := parse(t, `
        prod (i:1..3) {
            if (i == 1) { Sync(a[i];b[i]) } mult Fifo1(c[i];d[i])
        }
    `)
	n := normalize.Normalize(e)
	if !normalize.IsNormal(n) {
		t.Fatalf("nested body not normalized:\n%s", ast.RenderExpr(n, ""))
	}
	p := n.(*ast.Prod)
	body := p.Body.(*ast.Mult)
	if _, ok := body.Factors[0].(*ast.Invoke); !ok {
		t.Error("invoke not first in prod body")
	}
}

func TestSingleFactorCollapses(t *testing.T) {
	e := parse(t, `Sync(a;b)`)
	n := normalize.Normalize(e)
	if _, ok := n.(*ast.Invoke); !ok {
		t.Errorf("single invoke wrapped: %T", n)
	}
}

func TestIsNormalRejects(t *testing.T) {
	e := parse(t, `prod (i:1..2) Sync(a[i];b) mult Fifo1(c;d)`)
	if normalize.IsNormal(e) {
		t.Error("prod-before-invoke accepted as normal")
	}
}

// genExpr builds a random connector expression for the property test.
func genExpr(r *rand.Rand, depth int) ast.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return &ast.Invoke{
			Name:  "Sync",
			Tails: []ast.PortArg{{Name: "a"}},
			Heads: []ast.PortArg{{Name: "b"}},
		}
	}
	switch r.Intn(3) {
	case 0:
		n := 2 + r.Intn(3)
		m := &ast.Mult{}
		for i := 0; i < n; i++ {
			m.Factors = append(m.Factors, genExpr(r, depth-1))
		}
		return m
	case 1:
		return &ast.Prod{
			Var:  "i",
			Lo:   &ast.IntLit{Val: 1},
			Hi:   &ast.IntLit{Val: 3},
			Body: genExpr(r, depth-1),
		}
	default:
		node := &ast.If{
			Cond: &ast.Cmp{Op: "==", L: &ast.IntLit{Val: 1}, R: &ast.IntLit{Val: 1}},
			Then: genExpr(r, depth-1),
		}
		if r.Intn(2) == 0 {
			node.Else = genExpr(r, depth-1)
		}
		return node
	}
}

func countLeaves(e ast.Expr) (inv, prod, ifs int) {
	switch e := e.(type) {
	case *ast.Mult:
		for _, f := range e.Factors {
			i2, p2, f2 := countLeaves(f)
			inv += i2
			prod += p2
			ifs += f2
		}
	case *ast.Invoke:
		inv++
	case *ast.Prod:
		prod++
		i2, p2, f2 := countLeaves(e.Body)
		inv += i2
		prod += p2
		ifs += f2
	case *ast.If:
		ifs++
		i2, p2, f2 := countLeaves(e.Then)
		inv += i2
		prod += p2
		ifs += f2
		if e.Else != nil {
			i2, p2, f2 = countLeaves(e.Else)
			inv += i2
			prod += p2
			ifs += f2
		}
	}
	return
}

// TestNormalizePropertyBased: for random expressions, Normalize always
// yields a normal form, preserves the multiset of constructs, and is
// idempotent.
func TestNormalizePropertyBased(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prop := func() bool {
		e := genExpr(r, 4)
		n := normalize.Normalize(e)
		if !normalize.IsNormal(n) {
			return false
		}
		i1, p1, f1 := countLeaves(e)
		i2, p2, f2 := countLeaves(n)
		if i1 != i2 || p1 != p2 || f1 != f2 {
			return false
		}
		// Idempotence up to structure: normalizing again stays normal
		// and preserves counts.
		n2 := normalize.Normalize(n)
		i3, p3, f3 := countLeaves(n2)
		return normalize.IsNormal(n2) && i3 == i2 && p3 == p2 && f3 == f2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
