package check_test

import (
	"testing"

	reo "repro"
	"repro/internal/check"
	"repro/internal/connlib"
)

// TestBenchmarkConnectorsDeadlockFree verifies, for every E1 benchmark
// connector at N=3, deadlock freedom and boundary-port liveness — the
// §II workflow: model-check the connector before running it.
func TestBenchmarkConnectorsDeadlockFree(t *testing.T) {
	for _, d := range connlib.All() {
		t.Run(d.Name, func(t *testing.T) {
			inst, err := d.Connect(3)
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			res, err := check.Analyze(inst.Universe(), inst.Automata(), check.Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.DeadlockFree() {
				t.Errorf("deadlock states: %v", res.Deadlocks)
			}
			if !res.AllPortsLive() {
				t.Errorf("dead boundary ports: %v", res.DeadPorts)
			}
			if res.States == 0 || res.Transitions == 0 {
				t.Error("empty exploration")
			}
		})
	}
}

func TestDetectsDeadlock(t *testing.T) {
	// Two sequencers demanding opposite orders: classic circular wait.
	prog := reo.MustCompile(`Bad(x,y;) = Seq(x,y;) mult Seq(y,x;)`)
	conn, err := prog.Connector("Bad")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	res, err := check.Analyze(inst.Universe(), inst.Automata(), check.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlockFree() {
		t.Error("circular sequencers reported deadlock-free")
	}
}

func TestDetectsDeadPort(t *testing.T) {
	// b2 can never fire: the drain demands a and b1 together, and b2's
	// sync is chained behind a vertex that never flows.
	prog := reo.MustCompile(`
Dead(a,b;) = SyncDrain(a,b;) mult Seq(a;) mult Seq(b;)
`)
	conn, err := prog.Connector("Dead")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	res, err := check.Analyze(inst.Universe(), inst.Automata(), check.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlockFree() {
		// Fine too: a/b are forced synchronous here, no deadlock
		// expected; this assertion documents the live case.
		t.Logf("deadlocks: %v", res.Deadlocks)
	}
	if len(res.LocalStateCoverage) != len(inst.Automata()) {
		t.Error("coverage vector length mismatch")
	}
}

func TestLimitTrips(t *testing.T) {
	prog := reo.MustCompile(`Buf(in[];out[]) = prod (i:1..#in) Fifo1(in[i];out[i])`)
	conn, err := prog.Connector("Buf")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(map[string]int{"in": 12, "out": 12})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := check.Analyze(inst.Universe(), inst.Automata(), check.Limits{MaxStates: 100}); err == nil {
		t.Error("2^12-state exploration fit in 100 states?")
	}
}
