package check

import (
	"fmt"

	"repro/internal/ca"
)

// Result holds the analysis outcome.
type Result struct {
	// States is the number of reachable composite states.
	States int
	// Transitions is the number of explored global steps.
	Transitions int
	// Deadlocks lists reachable states with no outgoing step, rendered
	// as constituent-state tuples.
	Deadlocks []string
	// DeadPorts lists boundary ports that occur in no reachable step.
	DeadPorts []string
	// LocalStateCoverage[i] is the fraction of constituent i's control
	// states that are reachable in some composite state.
	LocalStateCoverage []float64
}

// DeadlockFree reports whether no deadlock state was found.
func (r *Result) DeadlockFree() bool { return len(r.Deadlocks) == 0 }

// AllPortsLive reports whether every boundary port can fire.
func (r *Result) AllPortsLive() bool { return len(r.DeadPorts) == 0 }

// Limits bounds the exploration.
type Limits struct {
	MaxStates int // 0 = 1<<20
}

// Analyze explores the reachable composite space of the constituents.
func Analyze(u *ca.Universe, auts []*ca.Automaton, lim Limits) (*Result, error) {
	if len(auts) == 0 {
		return nil, fmt.Errorf("check: no constituents")
	}
	maxStates := lim.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	k := len(auts)
	keyOf := func(s []int32) string {
		b := make([]byte, 4*k)
		for i, v := range s {
			b[4*i] = byte(v)
			b[4*i+1] = byte(v >> 8)
			b[4*i+2] = byte(v >> 16)
			b[4*i+3] = byte(v >> 24)
		}
		return string(b)
	}

	init := make([]int32, k)
	for i, a := range auts {
		init[i] = a.Initial
	}
	seen := map[string]bool{keyOf(init): true}
	queue := [][]int32{init}

	firedPorts := u.NewSet()
	localSeen := make([]map[int32]bool, k)
	for i := range localSeen {
		localSeen[i] = map[int32]bool{auts[i].Initial: true}
	}

	res := &Result{}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		res.States++
		joints := ca.ExpandJoint(auts, st, ca.ExpandConnected)
		if len(joints) == 0 {
			res.Deadlocks = append(res.Deadlocks, fmt.Sprintf("%v", st))
			continue
		}
		res.Transitions += len(joints)
		for _, j := range joints {
			firedPorts.OrInto(j.Sync)
			key := keyOf(j.Targets)
			if !seen[key] {
				seen[key] = true
				if len(seen) > maxStates {
					return nil, fmt.Errorf("check: %w", ca.ErrTooLarge)
				}
				tgt := append([]int32(nil), j.Targets...)
				queue = append(queue, tgt)
				for i, s := range tgt {
					localSeen[i][s] = true
				}
			}
		}
	}

	for p := 0; p < u.NumPorts(); p++ {
		pid := ca.PortID(p)
		if u.DirOf(pid) == ca.DirNone {
			continue
		}
		if !firedPorts.Has(pid) {
			res.DeadPorts = append(res.DeadPorts, u.Name(pid))
		}
	}
	for i, a := range auts {
		res.LocalStateCoverage = append(res.LocalStateCoverage,
			float64(len(localSeen[i]))/float64(max(1, a.NumStates())))
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
