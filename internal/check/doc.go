// Package check is an explicit-state model checker for composed
// connectors, playing the role the Reo model checkers play in the paper's
// workflow (§II: "connectors can subsequently be formally verified through
// model checking, e.g., to prove deadlock freedom, fully automatically").
//
// The analysis explores the reachable composite state space under the
// may-semantics assumption that every boundary port is always willing to
// interact and every data guard may hold. It reports:
//
//   - hard deadlocks: reachable composite states with no outgoing global
//     step at all;
//   - dead boundary ports: ports that appear in no reachable transition
//     (they could never complete an operation);
//   - unreachable constituent states (per constituent, as a coverage
//     diagnostic).
package check
