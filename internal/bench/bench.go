package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	reo "repro"
	"repro/internal/connlib"
	"repro/internal/npb"
)

// Approach names one compilation/execution approach under comparison.
type Approach struct {
	Name string
	Opts []reo.ConnectOption
}

// Existing is the paper's existing approach: whole-product static
// compilation per N, with label simplification; it fails on connectors
// whose large automaton exceeds the limit.
func Existing(maxStates int) Approach {
	return Approach{
		Name: "existing",
		Opts: []reo.ConnectOption{reo.WithMode(reo.Static), reo.WithMaxStates(maxStates)},
	}
}

// New is the paper's new approach: parametrized compilation with
// just-in-time composition.
func New() Approach {
	return Approach{Name: "new", Opts: []reo.ConnectOption{reo.WithMode(reo.JIT)}}
}

// StepRate measures global execution steps of one benchmark connector
// under the driver for the given budget. Returns the steps and whether
// connect failed (the "existing approach fails" outcome).
func StepRate(d connlib.Def, n int, ap Approach, budget time.Duration) (steps int64, failed bool, err error) {
	inst, cerr := d.Connect(n, ap.Opts...)
	if cerr != nil {
		return 0, true, nil
	}
	wait := connlib.Drive(d, inst, n)
	time.Sleep(budget)
	steps = inst.Steps()
	inst.Close()
	wait()
	return steps, false, nil
}

// Fig12Row is one cell of the Fig. 12 comparison.
type Fig12Row struct {
	Connector string
	N         int
	StepsNew  int64
	StepsOld  int64
	OldFailed bool
}

// Classify buckets a row per the paper's legend.
func (r Fig12Row) Classify() string {
	switch {
	case r.OldFailed:
		return "new-compiles-old-fails"
	case r.StepsNew >= r.StepsOld:
		return "new-wins"
	case r.StepsOld <= 10*r.StepsNew:
		return "old-wins-≤10x"
	default:
		return "old-wins-≤100x"
	}
}

// Fig12Config configures the connector experiment.
type Fig12Config struct {
	Connectors []string // empty = all eighteen
	Ns         []int    // empty = {2,4,8,16,32,64}
	Budget     time.Duration
	// MaxStaticStates is the existing compiler's capacity limit.
	MaxStaticStates int
}

// defaultFig12Budget is the measurement window used when a config (or a
// JSON export) does not specify one.
const defaultFig12Budget = 200 * time.Millisecond

func (c *Fig12Config) defaults() {
	if len(c.Ns) == 0 {
		c.Ns = []int{2, 4, 8, 16, 32, 64}
	}
	if c.Budget <= 0 {
		c.Budget = defaultFig12Budget
	}
	if c.MaxStaticStates <= 0 {
		c.MaxStaticStates = 1 << 16
	}
}

// RunFig12 runs the full connector experiment.
func RunFig12(cfg Fig12Config, progress io.Writer) ([]Fig12Row, error) {
	cfg.defaults()
	defs := connlib.All()
	if len(cfg.Connectors) > 0 {
		var sel []connlib.Def
		for _, name := range cfg.Connectors {
			d, err := connlib.ByName(name)
			if err != nil {
				return nil, err
			}
			sel = append(sel, d)
		}
		defs = sel
	}
	var rows []Fig12Row
	for _, d := range defs {
		for _, n := range cfg.Ns {
			if progress != nil {
				fmt.Fprintf(progress, "fig12: %s N=%d\n", d.Name, n)
			}
			newSteps, _, err := StepRate(d, n, New(), cfg.Budget)
			if err != nil {
				return nil, err
			}
			oldSteps, oldFailed, err := StepRate(d, n, Existing(cfg.MaxStaticStates), cfg.Budget)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig12Row{
				Connector: d.Name, N: n,
				StepsNew: newSteps, StepsOld: oldSteps, OldFailed: oldFailed,
			})
		}
	}
	return rows, nil
}

// FormatFig12 renders the detailed table plus the pie/bar summaries of
// Fig. 12.
func FormatFig12(rows []Fig12Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %4s %14s %14s  %s\n", "connector", "N", "steps(new)", "steps(existing)", "outcome")
	for _, r := range rows {
		old := fmt.Sprintf("%d", r.StepsOld)
		if r.OldFailed {
			old = "FAIL"
		}
		fmt.Fprintf(&sb, "%-22s %4d %14d %14s  %s\n", r.Connector, r.N, r.StepsNew, old, r.Classify())
	}

	// Pie chart: overall percentages per class.
	total := len(rows)
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Classify()]++
	}
	sb.WriteString("\nSummary (pie chart analogue):\n")
	var classes []string
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&sb, "  %-24s %5.1f%% (%d/%d)\n", c, 100*float64(counts[c])/float64(total), counts[c], total)
	}

	// Bar chart: per-N counts.
	sb.WriteString("\nPer-N (bar chart analogue):\n")
	ns := map[int]map[string]int{}
	var nsList []int
	for _, r := range rows {
		if ns[r.N] == nil {
			ns[r.N] = map[string]int{}
			nsList = append(nsList, r.N)
		}
		ns[r.N][r.Classify()]++
	}
	sort.Ints(nsList)
	fmt.Fprintf(&sb, "  %6s %10s %10s %14s %14s\n", "N", "old-fails", "new-wins", "old-wins≤10x", "old-wins≤100x")
	for _, n := range nsList {
		fmt.Fprintf(&sb, "  %6d %10d %10d %14d %14d\n", n,
			ns[n]["new-compiles-old-fails"], ns[n]["new-wins"],
			ns[n]["old-wins-≤10x"], ns[n]["old-wins-≤100x"])
	}
	return sb.String()
}

// Fig12JSON is one machine-readable result row (the BENCH_fig12.json
// schema): one approach × connector × N cell with its measured step
// rate, so the performance trajectory is trackable across revisions.
type Fig12JSON struct {
	Approach    string  `json:"approach"`
	Connector   string  `json:"connector"`
	N           int     `json:"n"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// Failed marks approaches that could not compile/connect the cell
	// (the "existing approach fails" outcome); StepsPerSec is 0 then.
	Failed bool `json:"failed,omitempty"`
}

// Fig12JSONRows flattens comparison rows into per-approach JSON rows.
// budget is the measurement window each row's steps were counted in; a
// non-positive budget falls back to the RunFig12 default (matching what
// the sweep actually used).
func Fig12JSONRows(rows []Fig12Row, budget time.Duration) []Fig12JSON {
	if budget <= 0 {
		budget = defaultFig12Budget
	}
	secs := budget.Seconds()
	out := make([]Fig12JSON, 0, 2*len(rows))
	for _, r := range rows {
		out = append(out, Fig12JSON{
			Approach: "new", Connector: r.Connector, N: r.N,
			StepsPerSec: float64(r.StepsNew) / secs,
		})
		old := Fig12JSON{Approach: "existing", Connector: r.Connector, N: r.N, Failed: r.OldFailed}
		if !r.OldFailed {
			old.StepsPerSec = float64(r.StepsOld) / secs
		}
		out = append(out, old)
	}
	return out
}

// WriteFig12JSON writes the rows to path in the BENCH_fig12.json schema.
func WriteFig12JSON(path string, rows []Fig12Row, budget time.Duration) error {
	return WriteJSONRows(path, Fig12JSONRows(rows, budget))
}

// WriteJSONRows writes pre-flattened fig12-schema rows to path — the
// shared writer for sweeps that mix row producers (e.g. the fig12 sweep
// plus the generated-backend cells of -gen).
func WriteJSONRows(path string, rows []Fig12JSON) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Fig13Row is one NPB measurement.
type Fig13Row struct {
	Program string
	Class   npb.Class
	Variant npb.Variant
	Slaves  int
	// Batch is the scatter/gather batching degree the run used
	// (npb.DefaultBatch at measurement time; 1 = the paper's structure).
	Batch   int
	Elapsed time.Duration
	Steps   int64
	Err     error
}

// RunFig13 measures one NPB configuration under the current
// npb.DefaultBatch (stamped into the row so batched sweeps stay
// distinguishable in the perf trajectory).
func RunFig13(program string, class npb.Class, variant npb.Variant, slaves int) Fig13Row {
	row := Fig13Row{Program: program, Class: class, Variant: variant, Slaves: slaves, Batch: npb.DefaultBatch}
	prog, err := npb.ProgramByName(program)
	if err != nil {
		row.Err = err
		return row
	}
	start := time.Now()
	res, err := prog.Run(class, variant, slaves)
	row.Elapsed = time.Since(start)
	if err != nil {
		row.Err = err
		return row
	}
	row.Steps = res.Steps
	return row
}

// FormatFig13 renders the measurement table.
func FormatFig13(rows []Fig13Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-6s %-8s %4s %6s %14s %12s\n", "program", "class", "variant", "N", "batch", "time", "conn-steps")
	for _, r := range rows {
		batch := r.Batch
		if batch < 1 {
			batch = 1
		}
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-8s %-6s %-8s %4d %6d %14s %12s (%v)\n",
				r.Program, r.Class, r.Variant, r.Slaves, batch, "ERROR", "-", r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-8s %-6s %-8s %4d %6d %14s %12d\n",
			r.Program, r.Class, r.Variant, r.Slaves, batch, r.Elapsed.Round(time.Microsecond), r.Steps)
	}
	return sb.String()
}
