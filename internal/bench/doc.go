// Package bench is the shared harness for the paper's experiments:
// time-budgeted connector runs counting global execution steps (Fig. 12)
// and wall-clock NPB runs (Fig. 13), with the table/classification
// formatting used by cmd/fig12 and cmd/fig13.
package bench
