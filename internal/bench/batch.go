package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	reo "repro"
)

// This file measures batched-port throughput: the §V-C overhead story
// from the other side. Scalar port operations pay one engine-lock
// registration and one completion handshake per item; SendBatch/RecvBatch
// pay them once per batch, and pure-flow transitions additionally fuse a
// whole batch into one dispatch decision. The workload is the
// stage-coupled Fifo1 pipeline (the fig13-style streaming shape hand-
// written channels win on), moved once per measurement at a given batch
// size; items/s is the metric and lands in the same perf-trajectory JSON
// schema the fig12 sweep uses.

// batchPipelineSrc is the stage-coupled pipeline protocol: one buffered
// lane per hop, tasks attached between hops (the examples/pipeline and
// partition-test "Lanes" shape).
const batchPipelineSrc = `
BatchPipeline(src,out[];in[],snk) =
    Fifo1(src;in[1])
    mult prod (i:1..#out-1) Fifo1(out[i];in[i+1])
    mult Fifo1(out[#out];snk)
`

var batchPipelineProg = reo.MustCompile(batchPipelineSrc)

// BatchResult is one batched-throughput measurement.
type BatchResult struct {
	Stages  int
	Batch   int
	Items   int
	Elapsed time.Duration
	Steps   int64
}

// ItemsPerSec returns the measurement's throughput.
func (r BatchResult) ItemsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Items) / r.Elapsed.Seconds()
}

// RunBatchThroughput pushes items through a stages-stage Fifo1 pipeline
// with every task (source, relay stages, sink) moving values through its
// port in batches of the given size — batch 1 is the scalar Send/Recv
// case on the same engine path — and reports the wall time of the whole
// stream. Every task reuses one value slice for its entire run, so the
// measured path performs no allocation. Extra connect options (e.g.
// partitioning) apply to the instance.
func RunBatchThroughput(stages, items, batch int, opts ...reo.ConnectOption) (BatchResult, error) {
	res := BatchResult{Stages: stages, Batch: batch, Items: items}
	if batch < 1 || stages < 1 || items < 1 {
		return res, fmt.Errorf("bench: bad batch config (stages=%d items=%d batch=%d)", stages, items, batch)
	}
	conn, err := batchPipelineProg.Connector("BatchPipeline")
	if err != nil {
		return res, err
	}
	inst, err := conn.Connect(map[string]int{"out": stages, "in": stages}, opts...)
	if err != nil {
		return res, err
	}
	defer inst.Close()

	var wg sync.WaitGroup
	for i := 0; i < stages; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := inst.Inports("in")[i]
			out := inst.Outports("out")[i]
			buf := make([]any, batch)
			for done := 0; done < items; {
				k := batch
				if items-done < k {
					k = items - done
				}
				got, err := in.RecvBatch(buf[:k])
				if err != nil {
					return
				}
				if out.SendBatch(buf[:got]) != nil {
					return
				}
				done += got
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := inst.Outport("src")
		vs := make([]any, batch)
		for sent := 0; sent < items; {
			k := batch
			if items-sent < k {
				k = items - sent
			}
			for j := 0; j < k; j++ {
				vs[j] = sent + j
			}
			if src.SendBatch(vs[:k]) != nil {
				return
			}
			sent += k
		}
	}()

	start := time.Now()
	snk := inst.Inport("snk")
	buf := make([]any, batch)
	for got := 0; got < items; {
		k := batch
		if items-got < k {
			k = items - got
		}
		m, err := snk.RecvBatch(buf[:k])
		if err != nil {
			return res, err
		}
		got += m
	}
	res.Elapsed = time.Since(start)
	res.Steps = inst.Steps()
	inst.Close()
	wg.Wait()
	return res, nil
}

// BatchJSONRows flattens batched-throughput results into the perf-gate
// schema: approach "batched", connector "BatchPipeline", n = batch size,
// steps_per_sec = items/s (the rate the gate compares).
func BatchJSONRows(results []BatchResult) []CompareRow {
	out := make([]CompareRow, 0, len(results))
	for _, r := range results {
		out = append(out, CompareRow{
			Approach:    "batched",
			Connector:   "BatchPipeline",
			N:           r.Batch,
			StepsPerSec: r.ItemsPerSec(),
		})
	}
	return out
}

// WriteBatchJSON writes batched-throughput rows to path in the
// BENCH_fig12.json-compatible schema, so `reoc bench-compare` gates them
// against the checked-in baseline cells.
func WriteBatchJSON(path string, results []BatchResult) error {
	data, err := json.MarshalIndent(BatchJSONRows(results), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
