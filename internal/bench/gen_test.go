package bench_test

import (
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

// TestRunGenSteadyRows pins the generated-backend sweep's row shape:
// both approaches measured, fig12-schema keys stable (they are gated
// against BENCH_baseline.json), rates positive, and the JSON writer
// round-trippable by the gate's reader.
func TestRunGenSteadyRows(t *testing.T) {
	results, err := bench.RunGenSteady(2000)
	if err != nil {
		t.Fatal(err)
	}
	rows := bench.GenJSONRows(results)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	wantKeys := map[string]bool{
		"interpreted/Lane/N=1": false,
		"generated/Lane/N=1":   false,
	}
	for _, r := range rows {
		if r.StepsPerSec <= 0 {
			t.Errorf("%s/%s: non-positive rate %f", r.Approach, r.Connector, r.StepsPerSec)
		}
		key := bench.CompareRow{Approach: r.Approach, Connector: r.Connector, N: r.N}.Key()
		if _, ok := wantKeys[key]; !ok {
			t.Errorf("unexpected gate key %q", key)
			continue
		}
		wantKeys[key] = true
	}
	for k, seen := range wantKeys {
		if !seen {
			t.Errorf("gate key %q missing", k)
		}
	}

	path := filepath.Join(t.TempDir(), "gen.json")
	if err := bench.WriteGenJSON(path, results); err != nil {
		t.Fatal(err)
	}
	back, err := bench.ReadCompareRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Errorf("gate reader got %d rows, want 2", len(back))
	}
}
