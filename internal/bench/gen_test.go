package bench_test

import (
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/npb"
)

// TestRunGenSteadyRows pins the generated-backend sweep's row shape:
// both approaches measured, fig12-schema keys stable (they are gated
// against BENCH_baseline.json), rates positive, and the JSON writer
// round-trippable by the gate's reader.
func TestRunGenSteadyRows(t *testing.T) {
	results, err := bench.RunGenSteady(2000)
	if err != nil {
		t.Fatal(err)
	}
	rows := bench.GenJSONRows(results)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	wantKeys := map[string]bool{
		"interpreted/Lane/N=1": false,
		"generated/Lane/N=1":   false,
	}
	for _, r := range rows {
		if r.StepsPerSec <= 0 {
			t.Errorf("%s/%s: non-positive rate %f", r.Approach, r.Connector, r.StepsPerSec)
		}
		key := bench.CompareRow{Approach: r.Approach, Connector: r.Connector, N: r.N}.Key()
		if _, ok := wantKeys[key]; !ok {
			t.Errorf("unexpected gate key %q", key)
			continue
		}
		wantKeys[key] = true
	}
	for k, seen := range wantKeys {
		if !seen {
			t.Errorf("gate key %q missing", k)
		}
	}

	path := filepath.Join(t.TempDir(), "gen.json")
	if err := bench.WriteGenJSON(path, results); err != nil {
		t.Fatal(err)
	}
	back, err := bench.ReadCompareRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Errorf("gate reader got %d rows, want 2", len(back))
	}
}

// TestRunGenRegionScalingRows pins the RegionScaling cells: both
// approaches measured on the same n-lane fabric, gate keys stable, and
// both backends fire the identical step count for the identical
// workload (2 steps per item per lane, plus nothing else).
func TestRunGenRegionScalingRows(t *testing.T) {
	const n, items = 4, 512
	results, err := bench.RunGenRegionScaling(n, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	wantKeys := []string{"interpreted/Fabric/N=4", "generated/Fabric/N=4"}
	for i, r := range results {
		key := bench.CompareRow{Approach: r.Approach, Connector: r.Connector, N: r.N}.Key()
		if key != wantKeys[i] {
			t.Errorf("result %d: gate key %q, want %q", i, key, wantKeys[i])
		}
		if r.StepsPerSec() <= 0 {
			t.Errorf("%s: non-positive rate", r.Approach)
		}
		if want := int64(2 * n * items); r.Steps != want {
			t.Errorf("%s: %d steps in the timed window, want %d", r.Approach, r.Steps, want)
		}
	}
}

// TestRunGenNPBRow pins the generated NPB cell: it must verify the
// checksum before reporting a rate, and land in the gate under its own
// connector key.
func TestRunGenNPBRow(t *testing.T) {
	res, err := bench.RunGenNPB("EP", npb.ClassS, 2)
	if err != nil {
		t.Fatal(err)
	}
	key := bench.CompareRow{Approach: res.Approach, Connector: res.Connector, N: res.N}.Key()
	if key != "generated/NPB-EP/N=2" {
		t.Errorf("gate key %q, want generated/NPB-EP/N=2", key)
	}
	if res.StepsPerSec() <= 0 {
		t.Error("non-positive rate")
	}
}
