package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	reo "repro"
	"repro/internal/ca"
)

// This file measures region-link throughput across transports: the same
// lane connector — n independent Sync→Fifo1 lanes, each lane's buffer a
// cut region link — moved once per measurement either in-process
// (transport "mem", the default memTransport queue) or split across two
// TCP-joined coordinator instances over loopback (transport "tcp"). A
// cut Fifo1 keeps its planned capacity of one end to end, so the tcp
// cells are round-trip-bound by design: the cells gate the wire path's
// constant factors (framing, pump wakes, ack turnaround), not a bulk
// pipe, and the lane count shows how independent links overlap their
// round trips.

// remoteLanesSrc: each lane is a solid Sync region feeding a cut Fifo1
// into an out node region — one region link per lane, no cross-lane
// coupling.
const remoteLanesSrc = `
RemoteLanes(in[];out[]) =
    prod (i:1..#in) Sync(in[i];t[i])
    mult prod (i:1..#in) Fifo1(t[i];out[i])
`

var remoteLanesProg = reo.MustCompile(remoteLanesSrc)

// Payload kinds of the region-link cells: small ints exercise the
// framing and round-trip constant factors (the values themselves are
// nearly free on the wire), 1 KiB byte slices exercise bulk encode,
// copy and buffer reuse.
const (
	PayloadInt  = "int"
	PayloadBulk = "bulk"
)

// bulkPayloadSize is the value size of the bulk cells.
const bulkPayloadSize = 1024

// RemoteResult is one region-link throughput measurement.
type RemoteResult struct {
	Transport string // "mem" or "tcp"
	Payload   string // PayloadInt or PayloadBulk
	Lanes     int
	Items     int // total across lanes
	Elapsed   time.Duration
	Steps     int64
}

// ItemsPerSec returns the measurement's throughput.
func (r RemoteResult) ItemsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Items) / r.Elapsed.Seconds()
}

// RunRemoteLink moves items small-int values (split evenly across
// lanes) through the lane connector on the given transport and reports
// the wall time.
func RunRemoteLink(transport string, lanes, items int) (RemoteResult, error) {
	return RunRemoteLinkPayload(transport, PayloadInt, lanes, items)
}

// RunRemoteLinkPayload is RunRemoteLink with a payload-size choice:
// PayloadInt sends the lane counter itself, PayloadBulk a 1 KiB byte
// slice per item.
func RunRemoteLinkPayload(transport, payload string, lanes, items int) (RemoteResult, error) {
	res := RemoteResult{Transport: transport, Payload: payload, Lanes: lanes, Items: items}
	if lanes < 1 || items < lanes {
		return res, fmt.Errorf("bench: bad remote config (lanes=%d items=%d)", lanes, items)
	}
	var mkVal func(k int) any
	switch payload {
	case PayloadInt:
		mkVal = func(k int) any { return k }
	case PayloadBulk:
		// One shared slice per lane iteration would let the mem transport
		// alias it; a fresh fill per item keeps both transports honest
		// without measuring allocator churn (the buffer is reused).
		mkVal = func(k int) any {
			b := make([]byte, bulkPayloadSize)
			for i := range b {
				b[i] = byte(k + i)
			}
			return b
		}
	default:
		return res, fmt.Errorf("bench: unknown payload %q", payload)
	}
	conn, err := remoteLanesProg.Connector("RemoteLanes")
	if err != nil {
		return res, err
	}
	lengths := map[string]int{"in": lanes, "out": lanes}

	var send, recv *reo.Instance
	switch transport {
	case "mem":
		inst, err := conn.Connect(lengths, reo.WithPartitioning(reo.PartitionRegions))
		if err != nil {
			return res, err
		}
		send, recv = inst, inst
		defer inst.Close()
	case "tcp":
		a, b, err := connectLanesPair(conn, lengths)
		if err != nil {
			return res, err
		}
		send, recv = a, b
		defer a.Close()
		defer b.Close()
	default:
		return res, fmt.Errorf("bench: unknown transport %q", transport)
	}

	perLane := items / lanes
	res.Items = perLane * lanes
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := send.Outports("in")[i]
			for k := 0; k < perLane; k++ {
				if in.Send(mkVal(k)) != nil {
					return
				}
			}
		}(i)
	}
	var recvErr error
	var mu sync.Mutex
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := recv.Inports("out")[i]
			for k := 0; k < perLane; k++ {
				if _, err := out.Recv(); err != nil {
					mu.Lock()
					recvErr = err
					mu.Unlock()
					return
				}
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Steps = send.Steps()
	if recv != send {
		res.Steps += recv.Steps()
	}
	return res, recvErr
}

// connectLanesPair splits the lane plan across two TCP-joined instances
// in this process: the Sync regions (in-side) on node "a", the out node
// regions on node "b", so every lane's link crosses the loopback wire.
func connectLanesPair(conn *reo.Connector, lengths map[string]int) (a, b *reo.Instance, err error) {
	asm, err := conn.Template().Instantiate(lengths)
	if err != nil {
		return nil, nil, err
	}
	plan := ca.PlanRegions(asm.U, asm.Auts)
	owner := plan.PortRegions(asm.U, asm.Auts)
	regions := map[string][]int{}
	assigned := make([]bool, len(plan.Regions))
	assign := func(ports []ca.PortID, node string) {
		for _, p := range ports {
			if ri := owner[p]; ri >= 0 && !assigned[ri] {
				assigned[ri] = true
				regions[node] = append(regions[node], ri)
			}
		}
	}
	assign(asm.Tails["in"], "a")
	assign(asm.Heads["out"], "b")
	for ri, ok := range assigned {
		if !ok {
			return nil, nil, fmt.Errorf("bench: region %d has no boundary port to assign", ri)
		}
	}

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lnA.Close()
		return nil, nil, err
	}
	nodes := map[string]string{"a": lnA.Addr().String(), "b": lnB.Addr().String()}
	connect := func(node string, ln net.Listener) (*reo.Instance, error) {
		return conn.Connect(lengths,
			reo.WithPartitioning(reo.PartitionRegions),
			reo.WithRemoteRegions(&reo.RemoteTopology{
				Node: node, Nodes: nodes, Regions: regions, Listener: ln,
			}))
	}
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); a, errA = connect("a", lnA) }()
	go func() { defer wg.Done(); b, errB = connect("b", lnB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		if a != nil {
			a.Close()
		}
		if b != nil {
			b.Close()
		}
		if errA != nil {
			return nil, nil, errA
		}
		return nil, nil, errB
	}
	return a, b, nil
}

// RemoteJSONRows flattens region-link results into the perf-gate
// schema: approach "remote", connector "RemoteLink" (small-int payload)
// or "RemoteLinkBulk" (1 KiB payload), transport mem/tcp, n = lane
// count, steps_per_sec = items/s (the rate the gate compares).
func RemoteJSONRows(results []RemoteResult) []CompareRow {
	out := make([]CompareRow, 0, len(results))
	for _, r := range results {
		connector := "RemoteLink"
		if r.Payload == PayloadBulk {
			connector = "RemoteLinkBulk"
		}
		out = append(out, CompareRow{
			Approach:    "remote",
			Connector:   connector,
			Transport:   r.Transport,
			N:           r.Lanes,
			StepsPerSec: r.ItemsPerSec(),
		})
	}
	return out
}

// WriteRemoteJSON writes region-link rows to path in the perf-gate
// schema, so `reoc bench-compare` gates them against the checked-in
// baseline cells.
func WriteRemoteJSON(path string, results []RemoteResult) error {
	data, err := json.MarshalIndent(RemoteJSONRows(results), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
