package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	reo "repro"
)

// This file measures the multi-instance serving story: many connector
// instances multiplexed over one shared runtime (engine.Runtime). Two
// cells land in the perf-gate schema:
//
//   - InstanceChurn: a full Connect → Send → Recv → Close cycle per
//     iteration. "churn-dedicated" pays a worker-pool spin-up and
//     tear-down plus a fresh coordinator build per cycle (the
//     per-instance-pool baseline); "churn-shared" connects onto the
//     shared process runtime with pooled reuse (WithRuntime +
//     WithReuse), so a cycle is a pool pop, one value moved, and a
//     reset-recycle. Cycles/s is the rate.
//
//   - ManyInstances: `instances` live connectors attached to the shared
//     runtime at once, fired round-robin from one goroutine. This is
//     the steady-state serving shape (reo-serve's inner loop); ops/s is
//     the rate and the fire path is alloc-free.

// churnSrc is the per-session connector: one buffered lane, the
// smallest shape that still exercises a region cut (two synchronous
// regions joined by one link) and therefore the scheduler.
const churnSrc = `Churn(a;b) = Fifo1(a;b)`

var churnProg = reo.MustCompile(churnSrc)

// InstanceResult is one multi-instance measurement.
type InstanceResult struct {
	Approach  string
	Instances int
	Ops       int
	Elapsed   time.Duration
}

// OpsPerSec returns the measurement's rate: churn cycles/s or
// round-robin ops/s.
func (r InstanceResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// RunInstanceChurn times `cycles` full Connect/fire/Close cycles.
// shared=false builds each instance on its own dedicated worker pool
// (the baseline this PR replaces); shared=true multiplexes cycles over
// the process-global runtime with pooled instance reuse.
func RunInstanceChurn(cycles int, shared bool) (InstanceResult, error) {
	res := InstanceResult{Approach: "churn-dedicated", Instances: 1, Ops: cycles}
	opts := []reo.ConnectOption{
		reo.WithPartitioning(reo.PartitionRegions),
		reo.WithWorkers(2),
	}
	if shared {
		res.Approach = "churn-shared"
		opts = []reo.ConnectOption{
			reo.WithPartitioning(reo.PartitionRegions),
			reo.WithRuntime(nil), // process-global default runtime
			reo.WithReuse(true),
		}
	}
	if cycles < 1 {
		return res, fmt.Errorf("bench: bad churn config (cycles=%d)", cycles)
	}
	conn, err := churnProg.Connector("Churn")
	if err != nil {
		return res, err
	}
	cycle := func() error {
		inst, err := conn.Connect(nil, opts...)
		if err != nil {
			return err
		}
		defer inst.Close()
		if err := inst.Outport("a").Send(1); err != nil {
			return err
		}
		_, err = inst.Inport("b").Recv()
		return err
	}
	// One warm-up cycle: seeds the instance pool (shared) and faults in
	// the compiled plan, so the measured loop is pure churn.
	if err := cycle(); err != nil {
		return res, err
	}
	start := time.Now()
	for i := 0; i < cycles; i++ {
		if err := cycle(); err != nil {
			return res, err
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunManyInstances connects `instances` lanes onto the shared runtime
// (setup untimed), then times `rounds` round-robin passes moving one
// value end to end through every instance. Total ops = instances ×
// rounds.
func RunManyInstances(instances, rounds int) (InstanceResult, error) {
	res := InstanceResult{Approach: "many", Instances: instances, Ops: instances * rounds}
	if instances < 1 || rounds < 1 {
		return res, fmt.Errorf("bench: bad many-instances config (instances=%d rounds=%d)", instances, rounds)
	}
	conn, err := churnProg.Connector("Churn")
	if err != nil {
		return res, err
	}
	type lane struct {
		inst *reo.Instance
		out  reo.Outport
		in   reo.Inport
	}
	lanes := make([]lane, instances)
	for i := range lanes {
		inst, err := conn.Connect(nil,
			reo.WithPartitioning(reo.PartitionRegions),
			reo.WithRuntime(nil),
		)
		if err != nil {
			return res, err
		}
		lanes[i] = lane{inst: inst, out: inst.Outport("a"), in: inst.Inport("b")}
	}
	defer func() {
		for _, l := range lanes {
			l.inst.Close()
		}
	}()
	// Warm every instance once so the measured passes hit steady state.
	for _, l := range lanes {
		if err := l.out.Send(0); err != nil {
			return res, err
		}
		if _, err := l.in.Recv(); err != nil {
			return res, err
		}
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, l := range lanes {
			if err := l.out.Send(r); err != nil {
				return res, err
			}
			if _, err := l.in.Recv(); err != nil {
				return res, err
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// InstanceJSONRows flattens multi-instance results into the perf-gate
// schema: connector "InstanceChurn" (n = 1, rate = cycles/s) or
// "ManyInstances" (n = live instances, rate = ops/s), keyed by
// approach.
func InstanceJSONRows(results []InstanceResult) []CompareRow {
	out := make([]CompareRow, 0, len(results))
	for _, r := range results {
		connector := "InstanceChurn"
		if r.Approach == "many" {
			connector = "ManyInstances"
		}
		out = append(out, CompareRow{
			Approach:    r.Approach,
			Connector:   connector,
			N:           r.Instances,
			StepsPerSec: r.OpsPerSec(),
		})
	}
	return out
}

// WriteInstanceJSON writes multi-instance rows to path in the
// BENCH_fig12.json-compatible schema, so `reoc bench-compare` gates
// them against the checked-in baseline cells.
func WriteInstanceJSON(path string, results []InstanceResult) error {
	data, err := json.MarshalIndent(InstanceJSONRows(results), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
