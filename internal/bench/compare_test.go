package bench_test

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/npb"
)

func fig12Rows() []bench.Fig12Row {
	return []bench.Fig12Row{
		{Connector: "Sequencer", N: 8, StepsNew: 1000, StepsOld: 400},
		{Connector: "Merger", N: 4, StepsNew: 2000, OldFailed: true},
	}
}

// TestCompareGateFailsOnInjectedSlowdown is the satellite's local
// verification: write a baseline, slow one cell down >25%, and assert
// the gate reports exactly that cell.
func TestCompareGateFailsOnInjectedSlowdown(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_baseline.json")
	curPath := filepath.Join(dir, "BENCH_fig12.json")
	if err := bench.WriteFig12JSON(basePath, fig12Rows(), 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Inject a 40% slowdown on the new-approach Sequencer cell.
	slow := fig12Rows()
	slow[0].StepsNew = 600
	if err := bench.WriteFig12JSON(curPath, slow, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	baseline, err := bench.ReadCompareRows(basePath)
	if err != nil {
		t.Fatal(err)
	}
	current, err := bench.ReadCompareRows(curPath)
	if err != nil {
		t.Fatal(err)
	}
	regs := bench.CompareRates(baseline, current, 0.25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the injected one", regs)
	}
	if !strings.Contains(regs[0].Key, "new/Sequencer") {
		t.Errorf("regressed key = %q, want the new/Sequencer cell", regs[0].Key)
	}
	if regs[0].Missing {
		t.Error("injected slowdown reported as missing cell")
	}
	// Within threshold passes.
	if regs := bench.CompareRates(baseline, baseline, 0.25); len(regs) != 0 {
		t.Errorf("identical artifacts regressed: %v", regs)
	}
}

// TestCompareGateFailsOnMissingCell: a benchmark silently dropped from
// the current run must fail the gate, not pass by absence.
func TestCompareGateFailsOnMissingCell(t *testing.T) {
	baseline := []bench.CompareRow{
		{Approach: "new", Connector: "Sequencer", N: 8, StepsPerSec: 100},
		{Approach: "new", Connector: "Merger", N: 4, StepsPerSec: 100},
	}
	current := baseline[:1]
	regs := bench.CompareRates(baseline, current, 0.25)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("regressions = %v, want one missing-cell failure", regs)
	}
}

// TestCompareFoldsRepsAndFailedCells: repeated rows fold to best-of,
// failed baseline cells are not gated, and fig13-style rows rate by
// inverse seconds.
func TestCompareFoldsRepsAndFailedCells(t *testing.T) {
	baseline := []bench.CompareRow{
		{Approach: "new", Connector: "Ring", N: 8, StepsPerSec: 90},
		{Approach: "new", Connector: "Ring", N: 8, StepsPerSec: 110}, // best-of
		{Approach: "existing", Connector: "Ring", N: 8, Failed: true},
		{Approach: "reo", Program: "CG", Class: "S", N: 2, Seconds: 2.0},
	}
	current := []bench.CompareRow{
		{Approach: "new", Connector: "Ring", N: 8, StepsPerSec: 100},
		{Approach: "existing", Connector: "Ring", N: 8, Failed: true},
		// 3x slower NPB run: 1/seconds rate drops 66%.
		{Approach: "reo", Program: "CG", Class: "S", N: 2, Seconds: 6.0},
	}
	regs := bench.CompareRates(baseline, current, 0.25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want only the NPB slowdown", regs)
	}
	if !strings.Contains(regs[0].Key, "CG") {
		t.Errorf("regressed key = %q, want the CG cell", regs[0].Key)
	}
	// 110 -> 100 is within 25%: the fold used best-of, not last.
	for _, r := range regs {
		if strings.Contains(r.Key, "Ring") {
			t.Errorf("Ring cell regressed despite best-of fold: %v", r)
		}
	}
}

// TestFig13JSONRoundTrips: fig13 rows serialize into the shared schema
// and read back as comparable rows.
func TestFig13JSONRoundTrips(t *testing.T) {
	rows := []bench.Fig13Row{
		{Program: "CG", Class: npb.Class('S'), Variant: npb.Reo, Slaves: 4, Elapsed: 250 * time.Millisecond, Steps: 1234},
	}
	path := filepath.Join(t.TempDir(), "BENCH_fig13.json")
	if err := bench.WriteFig13JSON(path, rows); err != nil {
		t.Fatal(err)
	}
	got, err := bench.ReadCompareRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rows = %d, want 1", len(got))
	}
	r := got[0]
	if r.Approach != "reo" || r.Program != "CG" || r.Class != "S" || r.N != 4 {
		t.Errorf("row = %+v, want reo/CG/S/4", r)
	}
	if r.Rate() != 4 { // 1/0.25s
		t.Errorf("rate = %v, want 4 (inverse seconds)", r.Rate())
	}
	if r.Steps != 1234 {
		t.Errorf("steps = %d, want 1234", r.Steps)
	}
}

// TestMergeBest folds repeated fig12 sweeps per cell.
func TestMergeBest(t *testing.T) {
	a := []bench.Fig12Row{{Connector: "X", N: 2, StepsNew: 10, OldFailed: true}}
	b := []bench.Fig12Row{{Connector: "X", N: 2, StepsNew: 30, StepsOld: 5}}
	got := bench.MergeBest([][]bench.Fig12Row{a, b})
	if len(got) != 1 || got[0].StepsNew != 30 || got[0].StepsOld != 5 || got[0].OldFailed {
		t.Errorf("merged = %+v, want best-of with old success kept", got)
	}
}

// TestBatchKeysSeparateCells: a batched sweep must not collide with the
// scalar baseline cell of the same configuration, while batch=1 rows
// keep their historical keys so old artifacts still align.
func TestBatchKeysSeparateCells(t *testing.T) {
	scalar := bench.CompareRow{Approach: "reo", Program: "EP", Class: "S", N: 4}
	legacy := scalar
	batched := scalar
	batched.Batch = 8
	batch1 := scalar
	batch1.Batch = 1
	if scalar.Key() == batched.Key() {
		t.Errorf("batch=8 key %q collides with the scalar cell", batched.Key())
	}
	if legacy.Key() != batch1.Key() {
		t.Errorf("batch=1 key %q differs from the legacy key %q", batch1.Key(), legacy.Key())
	}
}

// TestBatchThroughputJSONRoundTrips: the batched-port sweep measures,
// serializes into the gate schema, and reads back as comparable cells —
// the path `reoc bench-batch` + `reoc bench-compare` exercise in CI.
func TestBatchThroughputJSONRoundTrips(t *testing.T) {
	var results []bench.BatchResult
	for _, batch := range []int{1, 4} {
		res, err := bench.RunBatchThroughput(2, 512, batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps == 0 || res.ItemsPerSec() <= 0 {
			t.Fatalf("batch=%d: empty measurement %+v", batch, res)
		}
		results = append(results, res)
	}
	// Batching must not change the firing structure: same items, same
	// global steps, whatever the batch degree.
	if results[0].Steps != results[1].Steps {
		t.Errorf("steps differ across batch sizes: %d vs %d", results[0].Steps, results[1].Steps)
	}
	path := filepath.Join(t.TempDir(), "BENCH_batch.json")
	if err := bench.WriteBatchJSON(path, results); err != nil {
		t.Fatal(err)
	}
	rows, err := bench.ReadCompareRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[1].Approach != "batched" || rows[1].Connector != "BatchPipeline" || rows[1].N != 4 {
		t.Errorf("row = %+v, want batched/BatchPipeline/N=4", rows[1])
	}
	if rows[1].Rate() <= 0 {
		t.Errorf("rate = %v, want > 0", rows[1].Rate())
	}
}

// TestTransportKeysSeparateCells: distributed cells carry the link
// medium in their key, so a tcp measurement can never satisfy (or
// regress) the mem baseline cell of the same lane count — while rows
// without a transport keep their historical keys.
func TestTransportKeysSeparateCells(t *testing.T) {
	mem := bench.CompareRow{Approach: "remote", Connector: "RemoteLink", Transport: "mem", N: 4}
	tcp := mem
	tcp.Transport = "tcp"
	if mem.Key() == tcp.Key() {
		t.Errorf("mem and tcp cells collide on key %q", mem.Key())
	}
	if !strings.Contains(tcp.Key(), "transport=tcp") {
		t.Errorf("tcp key %q does not name its transport", tcp.Key())
	}
	legacy := bench.CompareRow{Approach: "new", Connector: "Sequencer", N: 8}
	if strings.Contains(legacy.Key(), "transport") {
		t.Errorf("transport-less key %q changed shape", legacy.Key())
	}
}

// TestRemoteLinkJSONRoundTrips: the region-link sweep measures on the
// in-process transport, serializes into the gate schema with the
// transport in the key, and reads back as comparable cells — the
// `reoc bench-remote` + `reoc bench-compare` path in CI. (The tcp
// transport is covered functionally by the remote tests in the root
// package; timing it here would make the unit suite network-bound.)
func TestRemoteLinkJSONRoundTrips(t *testing.T) {
	res, err := bench.RunRemoteLink("mem", 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.ItemsPerSec() <= 0 {
		t.Fatalf("empty measurement %+v", res)
	}
	path := filepath.Join(t.TempDir(), "BENCH_remote.json")
	if err := bench.WriteRemoteJSON(path, []bench.RemoteResult{res}); err != nil {
		t.Fatal(err)
	}
	rows, err := bench.ReadCompareRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Approach != "remote" || r.Connector != "RemoteLink" || r.Transport != "mem" || r.N != 2 {
		t.Errorf("row = %+v, want remote/RemoteLink/transport=mem/N=2", r)
	}
	if !strings.Contains(r.Key(), "transport=mem") {
		t.Errorf("key %q does not carry the transport", r.Key())
	}
	if r.Rate() <= 0 {
		t.Errorf("rate = %v, want > 0", r.Rate())
	}
}

// TestGeomeanRatio: the summary scalar must be the geometric mean of
// per-cell current/baseline ratios over shared cells only.
func TestGeomeanRatio(t *testing.T) {
	baseline := []bench.CompareRow{
		{Approach: "a", Connector: "X", N: 1, StepsPerSec: 100},
		{Approach: "b", Connector: "X", N: 1, StepsPerSec: 200},
		{Approach: "c", Connector: "X", N: 1, StepsPerSec: 50}, // missing from current
	}
	current := []bench.CompareRow{
		{Approach: "a", Connector: "X", N: 1, StepsPerSec: 200}, // 2x
		{Approach: "b", Connector: "X", N: 1, StepsPerSec: 100}, // 0.5x
		{Approach: "d", Connector: "X", N: 1, StepsPerSec: 999}, // not in baseline
	}
	ratio, cells := bench.GeomeanRatio(baseline, current)
	if cells != 2 {
		t.Fatalf("cells = %d, want 2 (only shared cells count)", cells)
	}
	if math.Abs(ratio-1) > 1e-9 { // sqrt(2 * 0.5) = 1
		t.Errorf("ratio = %v, want 1.0", ratio)
	}
	// Repetition folding applies before the ratio: the best rep wins.
	current = append(current, bench.CompareRow{Approach: "b", Connector: "X", N: 1, StepsPerSec: 400})
	ratio, cells = bench.GeomeanRatio(baseline, current)
	if cells != 2 {
		t.Fatalf("cells = %d, want 2", cells)
	}
	if want := math.Sqrt(2 * 2); math.Abs(ratio-want) > 1e-9 {
		t.Errorf("ratio = %v, want %v", ratio, want)
	}
	// No shared cells: ratio defaults to 1 over 0 cells.
	if r, c := bench.GeomeanRatio(baseline[2:], current[:1]); r != 1 || c != 0 {
		t.Errorf("disjoint runs: ratio = %v cells = %d, want 1, 0", r, c)
	}
}
