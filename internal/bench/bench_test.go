package bench_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/connlib"
	"repro/internal/npb"
)

func TestStepRateMeasures(t *testing.T) {
	d, err := connlib.ByName("Merger")
	if err != nil {
		t.Fatal(err)
	}
	steps, failed, err := bench.StepRate(d, 3, bench.New(), 100*time.Millisecond)
	if err != nil || failed {
		t.Fatalf("steps=%d failed=%v err=%v", steps, failed, err)
	}
	if steps == 0 {
		t.Error("no steps measured")
	}
}

func TestStepRateReportsStaticFailure(t *testing.T) {
	d, err := connlib.ByName("EarlyAsyncMerger")
	if err != nil {
		t.Fatal(err)
	}
	// 2^24 states cannot fit in 1024.
	_, failed, err := bench.StepRate(d, 24, bench.Existing(1024), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("static compilation of a 2^24-state automaton succeeded?")
	}
}

func TestFig12Classification(t *testing.T) {
	cases := []struct {
		row  bench.Fig12Row
		want string
	}{
		{bench.Fig12Row{StepsNew: 100, OldFailed: true}, "new-compiles-old-fails"},
		{bench.Fig12Row{StepsNew: 100, StepsOld: 90}, "new-wins"},
		{bench.Fig12Row{StepsNew: 100, StepsOld: 500}, "old-wins-≤10x"},
		{bench.Fig12Row{StepsNew: 100, StepsOld: 5000}, "old-wins-≤100x"},
	}
	for _, tc := range cases {
		if got := tc.row.Classify(); got != tc.want {
			t.Errorf("%+v -> %s, want %s", tc.row, got, tc.want)
		}
	}
}

func TestRunFig12Small(t *testing.T) {
	rows, err := bench.RunFig12(bench.Fig12Config{
		Connectors: []string{"Merger"},
		Ns:         []int{2, 4},
		Budget:     20 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := bench.FormatFig12(rows)
	for _, want := range []string{"Merger", "Summary", "Per-N"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output lacks %q:\n%s", want, out)
		}
	}
}

func TestFig12JSONRows(t *testing.T) {
	rows := []bench.Fig12Row{
		{Connector: "Merger", N: 4, StepsNew: 1000, StepsOld: 500},
		{Connector: "Big", N: 64, StepsNew: 2000, OldFailed: true},
	}
	js := bench.Fig12JSONRows(rows, time.Second)
	if len(js) != 4 {
		t.Fatalf("json rows = %d, want 4 (one per approach per cell)", len(js))
	}
	if js[0].Approach != "new" || js[0].Connector != "Merger" || js[0].N != 4 || js[0].StepsPerSec != 1000 {
		t.Errorf("row 0 = %+v", js[0])
	}
	if js[1].Approach != "existing" || js[1].StepsPerSec != 500 || js[1].Failed {
		t.Errorf("row 1 = %+v", js[1])
	}
	if !js[3].Failed || js[3].StepsPerSec != 0 {
		t.Errorf("failed row = %+v", js[3])
	}

	path := t.TempDir() + "/BENCH_fig12.json"
	if err := bench.WriteFig12JSON(path, rows, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []bench.Fig12JSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, data)
	}
	if len(back) != 4 || back[0].StepsPerSec != 2000 {
		t.Errorf("round-trip rows = %+v", back)
	}
}

func TestRunFig13Row(t *testing.T) {
	row := bench.RunFig13("EP", npb.ClassS, npb.Reo, 2)
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	if row.Elapsed <= 0 || row.Steps == 0 {
		t.Errorf("row = %+v", row)
	}
	out := bench.FormatFig13([]bench.Fig13Row{row})
	if !strings.Contains(out, "EP") {
		t.Errorf("format: %s", out)
	}
	bad := bench.RunFig13("NOPE", npb.ClassS, npb.Orig, 2)
	if bad.Err == nil {
		t.Error("unknown program accepted")
	}
}
