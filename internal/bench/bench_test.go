package bench_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/connlib"
	"repro/internal/npb"
)

func TestStepRateMeasures(t *testing.T) {
	d, err := connlib.ByName("Merger")
	if err != nil {
		t.Fatal(err)
	}
	steps, failed, err := bench.StepRate(d, 3, bench.New(), 100*time.Millisecond)
	if err != nil || failed {
		t.Fatalf("steps=%d failed=%v err=%v", steps, failed, err)
	}
	if steps == 0 {
		t.Error("no steps measured")
	}
}

func TestStepRateReportsStaticFailure(t *testing.T) {
	d, err := connlib.ByName("EarlyAsyncMerger")
	if err != nil {
		t.Fatal(err)
	}
	// 2^24 states cannot fit in 1024.
	_, failed, err := bench.StepRate(d, 24, bench.Existing(1024), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("static compilation of a 2^24-state automaton succeeded?")
	}
}

func TestFig12Classification(t *testing.T) {
	cases := []struct {
		row  bench.Fig12Row
		want string
	}{
		{bench.Fig12Row{StepsNew: 100, OldFailed: true}, "new-compiles-old-fails"},
		{bench.Fig12Row{StepsNew: 100, StepsOld: 90}, "new-wins"},
		{bench.Fig12Row{StepsNew: 100, StepsOld: 500}, "old-wins-≤10x"},
		{bench.Fig12Row{StepsNew: 100, StepsOld: 5000}, "old-wins-≤100x"},
	}
	for _, tc := range cases {
		if got := tc.row.Classify(); got != tc.want {
			t.Errorf("%+v -> %s, want %s", tc.row, got, tc.want)
		}
	}
}

func TestRunFig12Small(t *testing.T) {
	rows, err := bench.RunFig12(bench.Fig12Config{
		Connectors: []string{"Merger"},
		Ns:         []int{2, 4},
		Budget:     20 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := bench.FormatFig12(rows)
	for _, want := range []string{"Merger", "Summary", "Per-N"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunFig13Row(t *testing.T) {
	row := bench.RunFig13("EP", npb.ClassS, npb.Reo, 2)
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	if row.Elapsed <= 0 || row.Steps == 0 {
		t.Errorf("row = %+v", row)
	}
	out := bench.FormatFig13([]bench.Fig13Row{row})
	if !strings.Contains(out, "EP") {
		t.Errorf("format: %s", out)
	}
	bad := bench.RunFig13("NOPE", npb.ClassS, npb.Orig, 2)
	if bad.Err == nil {
		t.Error("unknown program accepted")
	}
}
