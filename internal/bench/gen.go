package bench

import (
	"fmt"
	"time"

	reo "repro"
	"repro/internal/genlib/lane"
)

// This file measures the static code-generation backend against the
// interpreted engine on the identical workload: the BenchmarkFireSteady
// shape (one Fifo1 lane, one value moved end to end per iteration,
// scalar Send/Recv on a warmed instance). Rows land in the fig12 JSON
// schema under the approaches "interpreted" and "generated", so the
// perf-regression gate tracks both the interpreted baseline and the
// generated backend's advantage over it.

// laneSrc is the FireSteady connector; internal/genlib/lane is its
// checked-in generated twin (pinned byte-identical by the golden test).
const laneSrc = `Lane(a;b) = Fifo1(a;b)`

// GenResult is one backend's measurement.
type GenResult struct {
	Approach string
	Items    int
	Steps    int64
	Elapsed  time.Duration
}

// StepsPerSec returns the measured firing rate.
func (r GenResult) StepsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Steps) / r.Elapsed.Seconds()
}

// RunGenSteady moves `items` values through the lane on both backends
// and returns one measurement per approach (interpreted first).
func RunGenSteady(items int) ([]GenResult, error) {
	interp, err := runInterpretedLane(items)
	if err != nil {
		return nil, err
	}
	generated, err := runGeneratedLane(items)
	if err != nil {
		return nil, err
	}
	return []GenResult{interp, generated}, nil
}

func runInterpretedLane(items int) (GenResult, error) {
	res := GenResult{Approach: "interpreted", Items: items}
	prog, err := reo.Compile(laneSrc)
	if err != nil {
		return res, err
	}
	conn, err := prog.Connector("Lane")
	if err != nil {
		return res, err
	}
	inst, err := conn.Connect(nil)
	if err != nil {
		return res, err
	}
	defer inst.Close()
	out, in := inst.Outport("a"), inst.Inport("b")
	// Warm both composite states so the measured loop is pure dispatch.
	if err := pingPong(out.Send, func() error { _, err := in.Recv(); return err }, 1); err != nil {
		return res, err
	}
	start := time.Now()
	if err := pingPong(out.Send, func() error { _, err := in.Recv(); return err }, items); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Steps = inst.Steps() - 2 // exclude the warm-up iteration
	return res, nil
}

func runGeneratedLane(items int) (GenResult, error) {
	res := GenResult{Approach: "generated", Items: items}
	inst, err := lane.New()
	if err != nil {
		return res, err
	}
	defer inst.Close()
	out, in := inst.Outport("a"), inst.Inport("b")
	if out == nil || in == nil {
		return res, fmt.Errorf("bench: generated lane ports not found")
	}
	if err := pingPong(out.Send, func() error { _, err := in.Recv(); return err }, 1); err != nil {
		return res, err
	}
	start := time.Now()
	if err := pingPong(out.Send, func() error { _, err := in.Recv(); return err }, items); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Steps = inst.Steps() - 2
	return res, nil
}

// pingPong moves one value end to end per iteration from a single
// goroutine — the BenchmarkFireSteady access pattern (the Fifo1 accepts
// a send without a pending receive, so neither operation parks).
func pingPong(send func(any) error, recv func() error, items int) error {
	for i := 0; i < items; i++ {
		if err := send(i); err != nil {
			return err
		}
		if err := recv(); err != nil {
			return err
		}
	}
	return nil
}

// GenJSONRows flattens measurements into the fig12-schema rows the
// perf gate compares.
func GenJSONRows(results []GenResult) []Fig12JSON {
	rows := make([]Fig12JSON, 0, len(results))
	for _, r := range results {
		rows = append(rows, Fig12JSON{
			Approach:    r.Approach,
			Connector:   "Lane",
			N:           1,
			StepsPerSec: r.StepsPerSec(),
		})
	}
	return rows
}

// WriteGenJSON writes the measurements to path in the fig12 JSON
// schema, for `reoc bench-compare` gating.
func WriteGenJSON(path string, results []GenResult) error {
	return WriteJSONRows(path, GenJSONRows(results))
}
