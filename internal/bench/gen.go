package bench

import (
	"fmt"
	"time"

	reo "repro"
	"repro/internal/genlib/fabric"
	"repro/internal/genlib/lane"
	"repro/internal/npb"
)

// This file measures the static code-generation backend against the
// interpreted engine on the identical workload: the BenchmarkFireSteady
// shape (one Fifo1 lane, one value moved end to end per iteration,
// scalar Send/Recv on a warmed instance). Rows land in the fig12 JSON
// schema under the approaches "interpreted" and "generated", so the
// perf-regression gate tracks both the interpreted baseline and the
// generated backend's advantage over it.

// laneSrc is the FireSteady connector; internal/genlib/lane is its
// checked-in generated twin (pinned byte-identical by the golden test).
const laneSrc = `Lane(a;b) = Fifo1(a;b)`

// GenResult is one backend's measurement.
type GenResult struct {
	Approach string
	// Connector and N identify the perf-gate cell the measurement lands
	// in (fig12 schema: approach/connector/n).
	Connector string
	N         int
	Items     int
	Steps     int64
	Elapsed   time.Duration
}

// StepsPerSec returns the measured firing rate.
func (r GenResult) StepsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Steps) / r.Elapsed.Seconds()
}

// RunGenSteady moves `items` values through the lane on both backends
// and returns one measurement per approach (interpreted first).
func RunGenSteady(items int) ([]GenResult, error) {
	interp, err := runInterpretedLane(items)
	if err != nil {
		return nil, err
	}
	generated, err := runGeneratedLane(items)
	if err != nil {
		return nil, err
	}
	return []GenResult{interp, generated}, nil
}

func runInterpretedLane(items int) (GenResult, error) {
	res := GenResult{Approach: "interpreted", Connector: "Lane", N: 1, Items: items}
	prog, err := reo.Compile(laneSrc)
	if err != nil {
		return res, err
	}
	conn, err := prog.Connector("Lane")
	if err != nil {
		return res, err
	}
	inst, err := conn.Connect(nil)
	if err != nil {
		return res, err
	}
	defer inst.Close()
	out, in := inst.Outport("a"), inst.Inport("b")
	// Warm both composite states so the measured loop is pure dispatch.
	if err := pingPong(out.Send, func() error { _, err := in.Recv(); return err }, 1); err != nil {
		return res, err
	}
	start := time.Now()
	if err := pingPong(out.Send, func() error { _, err := in.Recv(); return err }, items); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Steps = inst.Steps() - 2 // exclude the warm-up iteration
	return res, nil
}

func runGeneratedLane(items int) (GenResult, error) {
	res := GenResult{Approach: "generated", Connector: "Lane", N: 1, Items: items}
	inst, err := lane.New()
	if err != nil {
		return res, err
	}
	defer inst.Close()
	out, in := inst.Outport("a"), inst.Inport("b")
	if out == nil || in == nil {
		return res, fmt.Errorf("bench: generated lane ports not found")
	}
	if err := pingPong(out.Send, func() error { _, err := in.Recv(); return err }, 1); err != nil {
		return res, err
	}
	start := time.Now()
	if err := pingPong(out.Send, func() error { _, err := in.Recv(); return err }, items); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Steps = inst.Steps() - 2
	return res, nil
}

// --- region-scaling cells: parametric generated vs interpreted ------------

// fabricSrc is the pure region-scaling shape (n independent Fifo1
// lanes); internal/genlib/fabric is its parametric generated twin.
const fabricSrc = `Fabric(a[];b[]) = prod (i:1..#a) Fifo1(a[i];b[i])`

// RunGenRegionScaling moves `items` values through every lane of an
// n-lane fabric on both backends — the interpreted engine under region
// partitioning (the decomposition the generated runtime always uses)
// and the parametric generated package — and returns one measurement
// per approach (interpreted first). The whole per-lane stream moves as
// one batched port operation, so the timed window is almost pure region
// fire loop: exactly the dispatch the static code replaces.
func RunGenRegionScaling(n, items int) ([]GenResult, error) {
	interp, err := runFabric(n, items, func() (fabricBackend, error) {
		prog, err := reo.Compile(fabricSrc)
		if err != nil {
			return nil, err
		}
		conn, err := prog.Connector("Fabric")
		if err != nil {
			return nil, err
		}
		inst, err := conn.Connect(map[string]int{"a": n, "b": n},
			reo.WithPartitioning(reo.PartitionRegions))
		if err != nil {
			return nil, err
		}
		return inst.Backend(), nil
	})
	if err != nil {
		return nil, err
	}
	interp.Approach = "interpreted"
	generated, err := runFabric(n, items, func() (fabricBackend, error) {
		return fabric.New(n)
	})
	if err != nil {
		return nil, err
	}
	generated.Approach = "generated"
	return []GenResult{interp, generated}, nil
}

// fabricBackend is the string-keyed surface both fabric instances
// share (reo.Backend and the genrun instance alike).
type fabricBackend interface {
	Ports(param string) []string
	SendBatch(port string, vs []any) (int, error)
	RecvBatch(port string, buf []any) (int, error)
	Steps() int64
	Close() error
}

func runFabric(n, items int, connect func() (fabricBackend, error)) (GenResult, error) {
	res := GenResult{Connector: "Fabric", N: n, Items: items}
	b, err := connect()
	if err != nil {
		return res, err
	}
	defer b.Close()
	as, bs := b.Ports("a"), b.Ports("b")
	round := func(perLane int) error {
		vs := make([]any, perLane)
		for i := range vs {
			vs[i] = i
		}
		errc := make(chan error, 2*n)
		for i := 0; i < n; i++ {
			go func(p string) {
				_, err := b.SendBatch(p, vs)
				errc <- err
			}(as[i])
			go func(p string) {
				buf := make([]any, perLane)
				_, err := b.RecvBatch(p, buf)
				errc <- err
			}(bs[i])
		}
		for i := 0; i < 2*n; i++ {
			if err := <-errc; err != nil {
				return err
			}
		}
		return nil
	}
	// Warm every lane (first fire pays region wake-up and slot setup).
	if err := round(1); err != nil {
		return res, err
	}
	warm := b.Steps()
	start := time.Now()
	if err := round(items); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Steps = b.Steps() - warm
	return res, nil
}

// RunGenNPB times one NPB program on the generated fabric (the Gen
// variant over internal/genlib/msfabric) and returns its connector
// firing rate as a perf-gate cell: a slowdown of the generated runtime
// under a real program's access pattern is caught even if the
// microbenchmark cells stay healthy.
func RunGenNPB(program string, class npb.Class, slaves int) (GenResult, error) {
	res := GenResult{Approach: "generated", Connector: "NPB-" + program, N: slaves}
	prog, err := npb.ProgramByName(program)
	if err != nil {
		return res, err
	}
	start := time.Now()
	out, err := prog.Run(class, npb.Gen, slaves)
	res.Elapsed = time.Since(start)
	if err != nil {
		return res, err
	}
	if !out.Verified {
		return res, fmt.Errorf("bench: %s class %s on the generated fabric failed verification (checksum %g)",
			program, class, out.Checksum)
	}
	res.Steps = out.Steps
	return res, nil
}

// pingPong moves one value end to end per iteration from a single
// goroutine — the BenchmarkFireSteady access pattern (the Fifo1 accepts
// a send without a pending receive, so neither operation parks).
func pingPong(send func(any) error, recv func() error, items int) error {
	for i := 0; i < items; i++ {
		if err := send(i); err != nil {
			return err
		}
		if err := recv(); err != nil {
			return err
		}
	}
	return nil
}

// GenJSONRows flattens measurements into the fig12-schema rows the
// perf gate compares.
func GenJSONRows(results []GenResult) []Fig12JSON {
	rows := make([]Fig12JSON, 0, len(results))
	for _, r := range results {
		rows = append(rows, Fig12JSON{
			Approach:    r.Approach,
			Connector:   r.Connector,
			N:           r.N,
			StepsPerSec: r.StepsPerSec(),
		})
	}
	return rows
}

// WriteGenJSON writes the measurements to path in the fig12 JSON
// schema, for `reoc bench-compare` gating.
func WriteGenJSON(path string, results []GenResult) error {
	return WriteJSONRows(path, GenJSONRows(results))
}
