package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// This file is the perf-regression gate: machine-readable benchmark rows
// (the BENCH_fig12.json / BENCH_fig13.json schemas) are compared against
// a checked-in baseline, and any cell whose rate dropped by more than
// the threshold fails the build. cmd/reoc bench-compare is the CLI.

// CompareRow is the schema superset the gate understands: a Fig12JSON
// row (approach/connector/n/steps_per_sec) or a Fig13JSON row
// (approach/program/class/n/seconds/steps). Unknown JSON fields are
// ignored, so the schemas can grow without breaking old baselines.
type CompareRow struct {
	Approach    string  `json:"approach"`
	Connector   string  `json:"connector,omitempty"`
	Program     string  `json:"program,omitempty"`
	Class       string  `json:"class,omitempty"`
	N           int     `json:"n"`
	Batch       int     `json:"batch,omitempty"`
	Transport   string  `json:"transport,omitempty"`
	StepsPerSec float64 `json:"steps_per_sec,omitempty"`
	Seconds     float64 `json:"seconds,omitempty"`
	Steps       int64   `json:"steps,omitempty"`
	Failed      bool    `json:"failed,omitempty"`
}

// Key identifies the measurement cell a row belongs to (everything but
// the metrics), so repeated rows — `-count 3`-style repetitions — fold
// into one comparison.
func (r CompareRow) Key() string {
	parts := []string{r.Approach}
	if r.Connector != "" {
		parts = append(parts, r.Connector)
	}
	if r.Program != "" {
		parts = append(parts, r.Program)
	}
	if r.Class != "" {
		parts = append(parts, "class="+r.Class)
	}
	// Transport distinguishes the region-link medium of distributed
	// cells (mem vs tcp); in-process rows omit it and keep their
	// historical keys.
	if r.Transport != "" {
		parts = append(parts, "transport="+r.Transport)
	}
	parts = append(parts, fmt.Sprintf("N=%d", r.N))
	// Batch > 1 marks a batched-port sweep cell; scalar rows (batch
	// absent or 1) keep their historical keys so old baselines align.
	if r.Batch > 1 {
		parts = append(parts, fmt.Sprintf("batch=%d", r.Batch))
	}
	return strings.Join(parts, "/")
}

// Rate returns the row's higher-is-better metric: steps/s where
// measured, else inverse wall-clock (Fig. 13 rows time a fixed
// workload, so 1/seconds is its throughput). 0 means unmeasured.
func (r CompareRow) Rate() float64 {
	if r.Failed {
		return 0
	}
	if r.StepsPerSec > 0 {
		return r.StepsPerSec
	}
	if r.Seconds > 0 {
		return 1 / r.Seconds
	}
	return 0
}

// ReadCompareRows loads a benchmark JSON artifact.
func ReadCompareRows(path string) ([]CompareRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []CompareRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// BestRates folds rows to the best (max) rate per cell: repetitions
// measure the same code, so the fastest run is the least-noisy signal.
func BestRates(rows []CompareRow) map[string]float64 {
	best := make(map[string]float64)
	for _, r := range rows {
		k := r.Key()
		if rate := r.Rate(); rate > best[k] {
			best[k] = rate
		}
	}
	return best
}

// Regression is one cell that failed the gate.
type Regression struct {
	Key               string
	Baseline, Current float64
	// Missing marks a baseline cell absent from the current run (a
	// silently dropped benchmark must fail the gate too).
	Missing bool
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: missing from current run (baseline %.0f/s)", r.Key, r.Baseline)
	}
	return fmt.Sprintf("%s: %.0f/s -> %.0f/s (%.1f%% drop)",
		r.Key, r.Baseline, r.Current, 100*(1-r.Current/r.Baseline))
}

// CompareRates gates current against baseline: every baseline cell with
// a measured rate must be present and within threshold (fraction, e.g.
// 0.25) of its baseline rate. Cells only the current run has are
// ignored (new benchmarks enter the baseline when it is regenerated).
func CompareRates(baseline, current []CompareRow, threshold float64) []Regression {
	base, cur := BestRates(baseline), BestRates(current)
	var out []Regression
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		if b <= 0 {
			continue // unmeasured baseline cell (e.g. "existing fails")
		}
		c, ok := cur[k]
		if !ok {
			out = append(out, Regression{Key: k, Baseline: b, Missing: true})
			continue
		}
		if c < b*(1-threshold) {
			out = append(out, Regression{Key: k, Baseline: b, Current: c})
		}
	}
	return out
}

// GeomeanRatio returns the geometric mean of current/baseline rate
// ratios over the cells both runs measured (and the count of such
// cells) — a single scalar summarizing whether a change was a net
// speedup (>1) or slowdown (<1) across the whole suite. Cells missing
// from either side are excluded; 0 cells yields ratio 1.
func GeomeanRatio(baseline, current []CompareRow) (float64, int) {
	base, cur := BestRates(baseline), BestRates(current)
	var logSum float64
	n := 0
	for k, b := range base {
		c, ok := cur[k]
		if !ok || b <= 0 || c <= 0 {
			continue
		}
		logSum += math.Log(c / b)
		n++
	}
	if n == 0 {
		return 1, 0
	}
	return math.Exp(logSum / float64(n)), n
}

// Fig13JSON is one machine-readable Fig. 13 result row — the NPB
// counterpart of Fig12JSON, sharing the approach/n/rate shape so both
// figures land in the same perf trajectory and the same gate.
type Fig13JSON struct {
	Approach string `json:"approach"` // variant: "orig" or "reo"
	Program  string `json:"program"`
	Class    string `json:"class"`
	N        int    `json:"n"` // slave count
	// Batch is the scatter/gather batching degree (omitted when 1, the
	// paper's structure, keeping schema parity with old artifacts).
	Batch   int     `json:"batch,omitempty"`
	Seconds float64 `json:"seconds"`
	Steps   int64   `json:"steps,omitempty"`
	// Failed marks configurations that errored; Seconds is 0 then.
	Failed bool `json:"failed,omitempty"`
}

// Fig13JSONRows flattens measurement rows into JSON rows.
func Fig13JSONRows(rows []Fig13Row) []Fig13JSON {
	out := make([]Fig13JSON, 0, len(rows))
	for _, r := range rows {
		j := Fig13JSON{
			Approach: r.Variant.String(),
			Program:  r.Program,
			Class:    r.Class.String(),
			N:        r.Slaves,
			Steps:    r.Steps,
		}
		if r.Batch > 1 {
			j.Batch = r.Batch
		}
		if r.Err != nil {
			j.Failed = true
		} else {
			j.Seconds = r.Elapsed.Seconds()
		}
		out = append(out, j)
	}
	return out
}

// WriteFig13JSON writes the rows to path in the BENCH_fig13.json schema.
func WriteFig13JSON(path string, rows []Fig13Row) error {
	data, err := json.MarshalIndent(Fig13JSONRows(rows), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MergeBest folds repeated Fig. 12 sweeps (cmd/fig12 -reps) into
// per-cell best rows: max steps for each approach, "old failed" only if
// it failed every rep. Rows must align (same config per index), which
// RunFig12 guarantees for a fixed config.
func MergeBest(runs [][]Fig12Row) []Fig12Row {
	if len(runs) == 0 {
		return nil
	}
	out := append([]Fig12Row(nil), runs[0]...)
	for _, run := range runs[1:] {
		for i := range out {
			if i >= len(run) {
				break
			}
			r := run[i]
			if r.StepsNew > out[i].StepsNew {
				out[i].StepsNew = r.StepsNew
			}
			if !r.OldFailed {
				out[i].OldFailed = false
				if r.StepsOld > out[i].StepsOld {
					out[i].StepsOld = r.StepsOld
				}
			}
		}
	}
	return out
}
