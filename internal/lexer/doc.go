// Package lexer tokenizes the textual connector language: identifiers
// (connector and vertex names, `Prim.attr` qualified primitives),
// integer literals, the operator/punctuation set of the syntax
// (`= ; , ( ) [ ] { } # .. + - * / %` and comparisons), and the
// keywords (`mult`, `prod`, `if`, `else`, `main`, `among`, `forall`,
// `and`). Line comments run from `//` to end of line and block
// comments from `/*` to `*/`. The parser
// (internal/parser) consumes the token stream; positions survive into
// every later stage's error messages.
package lexer
