package lexer_test

import (
	"testing"

	"repro/internal/lexer"
)

func kinds(t *testing.T, src string) []lexer.Kind {
	t.Helper()
	toks, err := lexer.All(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]lexer.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func expect(t *testing.T, src string, want ...lexer.Kind) {
	t.Helper()
	got := kinds(t, src)
	want = append(want, lexer.EOF)
	if len(got) != len(want) {
		t.Fatalf("lex %q: got %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lex %q token %d: got %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestBasicTokens(t *testing.T) {
	expect(t, "A(a;b) = Sync(a;b)",
		lexer.IDENT, lexer.LPAREN, lexer.IDENT, lexer.SEMI, lexer.IDENT, lexer.RPAREN,
		lexer.ASSIGN, lexer.IDENT, lexer.LPAREN, lexer.IDENT, lexer.SEMI, lexer.IDENT, lexer.RPAREN)
}

func TestArrayAndHash(t *testing.T) {
	expect(t, "tl[] #tl tl[i+1] tl[1..#tl]",
		lexer.IDENT, lexer.LBRACK, lexer.RBRACK,
		lexer.HASH, lexer.IDENT,
		lexer.IDENT, lexer.LBRACK, lexer.IDENT, lexer.PLUS, lexer.INT, lexer.RBRACK,
		lexer.IDENT, lexer.LBRACK, lexer.INT, lexer.DOTDOT, lexer.HASH, lexer.IDENT, lexer.RBRACK)
}

func TestKeywords(t *testing.T) {
	expect(t, "mult prod if else main among and forall",
		lexer.KWMULT, lexer.KWPROD, lexer.KWIF, lexer.KWELSE,
		lexer.KWMAIN, lexer.KWAMONG, lexer.KWAND, lexer.KWFORALL)
}

func TestOperators(t *testing.T) {
	expect(t, "== != < <= > >= && || ! % * / - +",
		lexer.EQ, lexer.NEQ, lexer.LT, lexer.LE, lexer.GT, lexer.GE,
		lexer.ANDAND, lexer.OROR, lexer.NOT, lexer.PERCENT,
		lexer.STAR, lexer.SLASH, lexer.MINUS, lexer.PLUS)
}

func TestDotForms(t *testing.T) {
	expect(t, "Filter.even Fifo.4 Tasks.pro 1..2",
		lexer.IDENT, lexer.DOT, lexer.IDENT,
		lexer.IDENT, lexer.DOT, lexer.INT,
		lexer.IDENT, lexer.DOT, lexer.IDENT,
		lexer.INT, lexer.DOTDOT, lexer.INT)
}

func TestComments(t *testing.T) {
	expect(t, "a // line comment\n b /* block\ncomment */ c",
		lexer.IDENT, lexer.IDENT, lexer.IDENT)
}

func TestIntValues(t *testing.T) {
	toks, err := lexer.All("0 42 123456")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 42, 123456}
	for i, w := range want {
		if toks[i].Kind != lexer.INT || toks[i].Int != w {
			t.Errorf("token %d = %+v, want INT %d", i, toks[i], w)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := lexer.All("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{"a & b", "a | b", "a @ b", "/* unterminated"} {
		if _, err := lexer.All(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestDollarInIdent(t *testing.T) {
	// Flattening-generated names like v$1 must survive re-lexing
	// (cmd/reoc round trips).
	toks, err := lexer.All("v$1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != lexer.IDENT || toks[0].Text != "v$1" {
		t.Errorf("got %+v", toks[0])
	}
}
