package lexer

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"repro/internal/ast"
)

// Kind classifies tokens.
type Kind uint8

const (
	EOF Kind = iota
	IDENT
	INT
	// Punctuation and operators.
	LPAREN  // (
	RPAREN  // )
	LBRACK  // [
	RBRACK  // ]
	LBRACE  // {
	RBRACE  // }
	COMMA   // ,
	SEMI    // ;
	COLON   // :
	ASSIGN  // =
	HASH    // #
	DOTDOT  // ..
	DOT     // .
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	EQ      // ==
	NEQ     // !=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
	ANDAND  // &&
	OROR    // ||
	NOT     // !
	// Keywords.
	KWMULT   // mult
	KWPROD   // prod
	KWIF     // if
	KWELSE   // else
	KWMAIN   // main
	KWAMONG  // among
	KWAND    // and
	KWFORALL // forall
)

var kindNames = map[Kind]string{
	EOF: "end of input", IDENT: "identifier", INT: "integer",
	LPAREN: "'('", RPAREN: "')'", LBRACK: "'['", RBRACK: "']'",
	LBRACE: "'{'", RBRACE: "'}'", COMMA: "','", SEMI: "';'",
	COLON: "':'", ASSIGN: "'='", HASH: "'#'", DOTDOT: "'..'", DOT: "'.'",
	PLUS: "'+'", MINUS: "'-'", STAR: "'*'", SLASH: "'/'", PERCENT: "'%'",
	EQ: "'=='", NEQ: "'!='", LT: "'<'", LE: "'<='", GT: "'>'", GE: "'>='",
	ANDAND: "'&&'", OROR: "'||'", NOT: "'!'",
	KWMULT: "'mult'", KWPROD: "'prod'", KWIF: "'if'", KWELSE: "'else'",
	KWMAIN: "'main'", KWAMONG: "'among'", KWAND: "'and'", KWFORALL: "'forall'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", k)
}

var keywords = map[string]Kind{
	"mult": KWMULT, "prod": KWPROD, "if": KWIF, "else": KWELSE,
	"main": KWMAIN, "among": KWAMONG, "and": KWAND, "forall": KWFORALL,
}

// Token is one lexeme with its source position.
type Token struct {
	Kind Kind
	Text string
	Int  int
	Pos  ast.Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INT:
		return fmt.Sprintf("integer %d", t.Int)
	default:
		return t.Kind.String()
	}
}

// Lexer scans a source string.
type Lexer struct {
	src       string
	off       int
	line, col int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a lexical error with position.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) errf(pos ast.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, n := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += n
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for {
		r := l.peek()
		switch {
		case r == -1:
			return nil
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			for {
				if l.peek() == -1 {
					return l.errf(pos, "unterminated block comment")
				}
				if l.peek() == '*' {
					l.advance()
					if l.peek() == '/' {
						l.advance()
						break
					}
					continue
				}
				l.advance()
			}
		default:
			return nil
		}
	}
}

func (l *Lexer) pos() ast.Pos { return ast.Pos{Line: l.line, Col: l.col} }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Next scans the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	r := l.peek()
	if r == -1 {
		return Token{Kind: EOF, Pos: pos}, nil
	}

	switch {
	case isIdentStart(r):
		start := l.off
		for isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case unicode.IsDigit(r):
		start := l.off
		for unicode.IsDigit(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		n := 0
		for _, d := range text {
			n = n*10 + int(d-'0')
			if n > 1<<31 {
				return Token{}, l.errf(pos, "integer literal %s too large", text)
			}
		}
		return Token{Kind: INT, Text: text, Int: n, Pos: pos}, nil
	}

	l.advance()
	simple := func(k Kind) (Token, error) { return Token{Kind: k, Text: string(r), Pos: pos}, nil }
	switch r {
	case '(':
		return simple(LPAREN)
	case ')':
		return simple(RPAREN)
	case '[':
		return simple(LBRACK)
	case ']':
		return simple(RBRACK)
	case '{':
		return simple(LBRACE)
	case '}':
		return simple(RBRACE)
	case ',':
		return simple(COMMA)
	case ';':
		return simple(SEMI)
	case ':':
		return simple(COLON)
	case '#':
		return simple(HASH)
	case '+':
		return simple(PLUS)
	case '-':
		return simple(MINUS)
	case '*':
		return simple(STAR)
	case '/':
		return simple(SLASH)
	case '%':
		return simple(PERCENT)
	case '.':
		if l.peek() == '.' {
			l.advance()
			return Token{Kind: DOTDOT, Text: "..", Pos: pos}, nil
		}
		return simple(DOT)
	case '=':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: EQ, Text: "==", Pos: pos}, nil
		}
		return simple(ASSIGN)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: NEQ, Text: "!=", Pos: pos}, nil
		}
		return simple(NOT)
	case '<':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: LE, Text: "<=", Pos: pos}, nil
		}
		return simple(LT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: GE, Text: ">=", Pos: pos}, nil
		}
		return simple(GT)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: ANDAND, Text: "&&", Pos: pos}, nil
		}
		return Token{}, l.errf(pos, "unexpected '&' (use '&&')")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OROR, Text: "||", Pos: pos}, nil
		}
		return Token{}, l.errf(pos, "unexpected '|' (use '||')")
	}
	return Token{}, l.errf(pos, "unexpected character %q", r)
}

// All scans the whole input, returning every token up to and including EOF.
func All(src string) ([]Token, error) {
	l := New(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
