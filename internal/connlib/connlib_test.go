package connlib_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	reo "repro"
	"repro/internal/connlib"
)

const tick = 50 * time.Millisecond

func within(t *testing.T, d time.Duration, what string, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { defer close(done); f() }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("timeout waiting for %s", what)
	}
}

func connect(t *testing.T, name string, n int, opts ...reo.ConnectOption) *reo.Instance {
	t.Helper()
	d, err := connlib.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.Connect(n, opts...)
	if err != nil {
		t.Fatalf("connect %s N=%d: %v", name, n, err)
	}
	t.Cleanup(func() { inst.Close() })
	return inst
}

// TestAllCompileAndConnect smoke-tests every benchmark connector at
// several N in JIT mode, and at small N in all modes.
func TestAllCompileAndConnect(t *testing.T) {
	for _, d := range connlib.All() {
		t.Run(d.Name, func(t *testing.T) {
			for _, n := range []int{1, 2, 5} {
				inst, err := d.Connect(n)
				if err != nil {
					t.Fatalf("N=%d: %v", n, err)
				}
				inst.Close()
			}
			for _, mode := range []reo.Mode{reo.AOT, reo.Static} {
				inst, err := d.Connect(3, reo.WithMode(mode))
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				inst.Close()
			}
		})
	}
}

// TestAllDriversMakeProgress runs the benchmark driver briefly on every
// connector and checks global steps accumulate — the liveness property
// underlying Fig. 12's metric.
func TestAllDriversMakeProgress(t *testing.T) {
	for _, d := range connlib.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := d.Connect(4, reo.WithSeed(11))
			if err != nil {
				t.Fatal(err)
			}
			wait := connlib.Drive(d, inst, 4)
			time.Sleep(200 * time.Millisecond)
			steps := inst.Steps()
			inst.Close()
			wait()
			if steps == 0 {
				t.Errorf("%s made no global steps", d.Name)
			}
		})
	}
}

// TestBatchedDriversMakeProgress runs the batched benchmark driver on
// every connector: the plain sender/receiver tasks move items in batches
// of 8, which must keep every protocol live (a pending batch behaves
// like a task that re-registers instantly) and keep steps accumulating.
func TestBatchedDriversMakeProgress(t *testing.T) {
	for _, d := range connlib.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := d.Connect(4, reo.WithSeed(11))
			if err != nil {
				t.Fatal(err)
			}
			wait := connlib.DriveBatched(d, inst, 4, 8)
			time.Sleep(200 * time.Millisecond)
			steps := inst.Steps()
			inst.Close()
			wait()
			if steps == 0 {
				t.Errorf("%s made no global steps under batched driving", d.Name)
			}
		})
	}
}

// TestLargeNAcrossWordBoundary is a regression test for bit-set padding:
// instances whose universes grow past 64/128 ports while automata are
// being stamped out must still compose (EarlyAsyncMerger at N=40 crosses
// the word boundary between the fifo constituents and the node merger).
func TestLargeNAcrossWordBoundary(t *testing.T) {
	for _, name := range []string{"EarlyAsyncMerger", "OrderedMany2One", "Barrier"} {
		t.Run(name, func(t *testing.T) {
			d, err := connlib.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := d.Connect(40, reo.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			wait := connlib.Drive(d, inst, 40)
			time.Sleep(150 * time.Millisecond)
			steps := inst.Steps()
			inst.Close()
			wait()
			if steps == 0 {
				t.Error("no steps at N=40")
			}
		})
	}
}

func TestMergerDeliversAllDistinct(t *testing.T) {
	inst := connect(t, "Merger", 5, reo.WithSeed(2))
	outs := inst.Outports("in")
	within(t, 10*time.Second, "merger", func() {
		var wg sync.WaitGroup
		for i, o := range outs {
			wg.Add(1)
			go func(i int, o reo.Outport) { defer wg.Done(); o.Send(i) }(i, o)
		}
		seen := map[any]bool{}
		for range outs {
			v, err := inst.Inport("out").Recv()
			if err != nil {
				t.Fatal(err)
			}
			if seen[v] {
				t.Errorf("duplicate %v", v)
			}
			seen[v] = true
		}
		wg.Wait()
	})
}

func TestReplicatorBroadcasts(t *testing.T) {
	inst := connect(t, "Replicator", 4)
	within(t, 10*time.Second, "replicate", func() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); inst.Outport("in").Send("x") }()
		for _, in := range inst.Inports("out") {
			wg.Add(1)
			go func(in reo.Inport) {
				defer wg.Done()
				if v, err := in.Recv(); err != nil || v != "x" {
					t.Errorf("recv = %v, %v", v, err)
				}
			}(in)
		}
		wg.Wait()
	})
}

func TestRouterExclusiveDelivery(t *testing.T) {
	inst := connect(t, "Router", 3, reo.WithSeed(5))
	ins := inst.Inports("out")
	const total = 30
	var delivered atomic.Int64
	within(t, 20*time.Second, "route", func() {
		var wg sync.WaitGroup
		for _, in := range ins {
			wg.Add(1)
			go func(in reo.Inport) {
				defer wg.Done()
				for {
					if _, err := in.Recv(); err != nil {
						return
					}
					delivered.Add(1)
				}
			}(in)
		}
		for i := 0; i < total; i++ {
			if err := inst.Outport("in").Send(i); err != nil {
				t.Fatal(err)
			}
		}
		for delivered.Load() < total {
			time.Sleep(5 * time.Millisecond)
		}
		inst.Close()
		wg.Wait()
	})
	if delivered.Load() != total {
		t.Errorf("delivered = %d, want %d (exclusive routing)", delivered.Load(), total)
	}
}

func TestEarlyAsyncMergerBuffers(t *testing.T) {
	inst := connect(t, "EarlyAsyncMerger", 3, reo.WithSeed(7))
	outs := inst.Outports("in")
	within(t, 10*time.Second, "buffered sends", func() {
		// All sends complete with no receiver: one buffer per sender.
		for i, o := range outs {
			if err := o.Send(i * 100); err != nil {
				t.Fatal(err)
			}
		}
	})
	within(t, 10*time.Second, "drain", func() {
		sum := 0
		for range outs {
			v, err := inst.Inport("out").Recv()
			if err != nil {
				t.Fatal(err)
			}
			sum += v.(int)
		}
		if sum != 300 {
			t.Errorf("sum = %d, want 300", sum)
		}
	})
}

func TestLateAsyncMergerSingleBuffer(t *testing.T) {
	inst := connect(t, "LateAsyncMerger", 3)
	outs := inst.Outports("in")
	within(t, 5*time.Second, "first buffered send", func() {
		if err := outs[0].Send("a"); err != nil {
			t.Fatal(err)
		}
	})
	// Second send must block: the single shared fifo slot is taken.
	second := make(chan struct{})
	go func() { outs[1].Send("b"); close(second) }()
	select {
	case <-second:
		t.Fatal("second send completed with full shared buffer")
	case <-time.After(tick):
	}
	within(t, 5*time.Second, "drain frees buffer", func() {
		if v, err := inst.Inport("out").Recv(); err != nil || v != "a" {
			t.Fatalf("recv = %v, %v", v, err)
		}
		<-second
	})
}

func TestBarrierLockstep(t *testing.T) {
	const n = 4
	inst := connect(t, "Barrier", n)
	outs := inst.Outports("a")
	ins := inst.Inports("b")

	recvDone := make(chan int, n)
	for i, in := range ins {
		go func(i int, in reo.Inport) {
			if _, err := in.Recv(); err == nil {
				recvDone <- i
			}
		}(i, in)
	}
	// n-1 senders: nothing may complete.
	for i := 0; i < n-1; i++ {
		go outs[i].Send(i)
	}
	select {
	case i := <-recvDone:
		t.Fatalf("receiver %d completed before all senders arrived", i)
	case <-time.After(tick):
	}
	within(t, 10*time.Second, "barrier releases", func() {
		go outs[n-1].Send(n - 1)
		for i := 0; i < n; i++ {
			<-recvDone
		}
	})
}

func TestAlternatorRoundRobin(t *testing.T) {
	const n = 3
	inst := connect(t, "Alternator", n, reo.WithSeed(13))
	outs := inst.Outports("in")
	within(t, 20*time.Second, "alternation", func() {
		var wg sync.WaitGroup
		for i, o := range outs {
			wg.Add(1)
			go func(i int, o reo.Outport) {
				defer wg.Done()
				for r := 0; r < 4; r++ {
					if err := o.Send(fmt.Sprintf("%d/%d", i, r)); err != nil {
						return
					}
				}
			}(i, o)
		}
		for r := 0; r < 4; r++ {
			for i := 0; i < n; i++ {
				v, err := inst.Inport("out").Recv()
				if err != nil {
					t.Fatal(err)
				}
				want := fmt.Sprintf("%d/%d", i, r)
				if v != want {
					t.Fatalf("round %d pos %d: got %v, want %s", r, i, v, want)
				}
			}
		}
		wg.Wait()
	})
}

func TestSequencerOrdersClients(t *testing.T) {
	const n = 3
	inst := connect(t, "Sequencer", n)
	outs := inst.Outports("c")

	// Client 2 tries first; it must stay blocked until client 1 went.
	second := make(chan struct{})
	go func() { outs[1].Send(0); close(second) }()
	select {
	case <-second:
		t.Fatal("client 2 completed before client 1")
	case <-time.After(tick):
	}
	within(t, 10*time.Second, "sequence 1,2,3", func() {
		if err := outs[0].Send(0); err != nil {
			t.Fatal(err)
		}
		<-second
		if err := outs[2].Send(0); err != nil {
			t.Fatal(err)
		}
		// And around again.
		if err := outs[0].Send(1); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLockMutualExclusion(t *testing.T) {
	const n = 4
	inst := connect(t, "Lock", n, reo.WithSeed(3))
	acq := inst.Outports("acq")
	rel := inst.Outports("rel")

	var inCrit atomic.Int32
	var maxSeen atomic.Int32
	within(t, 30*time.Second, "lock clients", func() {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for r := 0; r < 20; r++ {
					if err := acq[i].Send(r); err != nil {
						return
					}
					c := inCrit.Add(1)
					for {
						m := maxSeen.Load()
						if c <= m || maxSeen.CompareAndSwap(m, c) {
							break
						}
					}
					inCrit.Add(-1)
					if err := rel[i].Send(r); err != nil {
						return
					}
				}
			}(i)
		}
		wg.Wait()
	})
	if maxSeen.Load() > 1 {
		t.Errorf("mutual exclusion violated: %d clients in critical section", maxSeen.Load())
	}
}

func TestExchangerRingShift(t *testing.T) {
	const n = 3
	inst := connect(t, "Exchanger", n)
	outs := inst.Outports("a")
	ins := inst.Inports("b")
	within(t, 10*time.Second, "exchange", func() {
		var wg sync.WaitGroup
		got := make([]any, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); outs[i].Send(i + 1) }(i)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				v, err := ins[i].Recv()
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				got[i] = v
			}(i)
		}
		wg.Wait()
		// a[i] -> b[i%n+1]: b[2]=a[1]=1, b[3]=a[2]=2, b[1]=a[3]=3.
		want := []any{3, 1, 2}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("b[%d] = %v, want %v", i+1, got[i], want[i])
			}
		}
	})
}

func TestValveGates(t *testing.T) {
	inst := connect(t, "Valve", 2)
	outs := inst.Outports("a")
	ins := inst.Inports("b")
	ctl := inst.Outport("ctl")

	within(t, 10*time.Second, "open flow", func() {
		go outs[0].Send("v")
		if v, err := ins[0].Recv(); err != nil || v != "v" {
			t.Fatalf("open valve: %v, %v", v, err)
		}
	})
	within(t, 5*time.Second, "close", func() { ctl.Send(0) })
	blocked := make(chan struct{})
	go func() { outs[1].Send("w"); close(blocked) }()
	recvd := make(chan struct{})
	go func() { ins[1].Recv(); close(recvd) }()
	select {
	case <-recvd:
		t.Fatal("closed valve let data through")
	case <-time.After(tick):
	}
	within(t, 10*time.Second, "reopen", func() {
		ctl.Send(1)
		<-blocked
		<-recvd
	})
}

func TestDiscriminatorOnePerRound(t *testing.T) {
	const n = 3
	inst := connect(t, "Discriminator", n)
	outs := inst.Outports("in")

	got := make(chan any, 4)
	go func() {
		for {
			v, err := inst.Inport("out").Recv()
			if err != nil {
				return
			}
			got <- v
		}
	}()
	within(t, 10*time.Second, "full round", func() {
		for i, o := range outs {
			if err := o.Send(fmt.Sprintf("p%d", i+1)); err != nil {
				t.Fatal(err)
			}
		}
	})
	within(t, 10*time.Second, "one output", func() {
		v := <-got
		if v != fmt.Sprintf("p%d", n) {
			t.Errorf("round output = %v, want p%d", v, n)
		}
	})
	select {
	case v := <-got:
		t.Fatalf("extra output %v without a second round", v)
	case <-time.After(tick):
	}
}

func TestTokenRingOrder(t *testing.T) {
	const n = 3
	inst := connect(t, "TokenRing", n)
	ins := inst.Inports("c")

	// Client 2 alone must block: the token starts at position 1.
	second := make(chan struct{})
	go func() { ins[1].Recv(); close(second) }()
	select {
	case <-second:
		t.Fatal("client 2 got the token first")
	case <-time.After(tick):
	}
	within(t, 10*time.Second, "token circulates", func() {
		if _, err := ins[0].Recv(); err != nil {
			t.Fatal(err)
		}
		<-second
		if _, err := ins[2].Recv(); err != nil {
			t.Fatal(err)
		}
		// Full circle.
		if _, err := ins[0].Recv(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAsyncRoutersDeliver(t *testing.T) {
	for _, name := range []string{"EarlyAsyncRouter", "LateAsyncRouter"} {
		t.Run(name, func(t *testing.T) {
			inst := connect(t, name, 3, reo.WithSeed(17))
			within(t, 10*time.Second, "buffered route", func() {
				if err := inst.Outport("in").Send(42); err != nil {
					t.Fatal(err)
				}
				// Exactly one receiver can get it; all try.
				got := make(chan any, 3)
				for _, in := range inst.Inports("out") {
					go func(in reo.Inport) {
						if v, err := in.Recv(); err == nil {
							got <- v
						}
					}(in)
				}
				if v := <-got; v != 42 {
					t.Errorf("routed value = %v", v)
				}
				select {
				case v := <-got:
					t.Errorf("value %v delivered twice", v)
				case <-time.After(tick):
				}
			})
		})
	}
}

func TestAsyncReplicatorsDeliver(t *testing.T) {
	for _, name := range []string{"EarlyAsyncReplicator", "LateAsyncReplicator"} {
		t.Run(name, func(t *testing.T) {
			inst := connect(t, name, 3)
			within(t, 10*time.Second, "buffered broadcast", func() {
				if err := inst.Outport("in").Send("bc"); err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				for _, in := range inst.Inports("out") {
					wg.Add(1)
					go func(in reo.Inport) {
						defer wg.Done()
						if v, err := in.Recv(); err != nil || v != "bc" {
							t.Errorf("recv = %v, %v", v, err)
						}
					}(in)
				}
				wg.Wait()
			})
		})
	}
}

// TestOrderedMany2OneAllN exercises the paper's running connector across
// modes via connlib.
func TestOrderedMany2OneAllN(t *testing.T) {
	d, err := connlib.ByName("OrderedMany2One")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4} {
		for _, mode := range []reo.Mode{reo.JIT, reo.Static} {
			t.Run(fmt.Sprintf("N=%d/%v", n, mode), func(t *testing.T) {
				inst, err := d.Connect(n, reo.WithMode(mode))
				if err != nil {
					t.Fatal(err)
				}
				defer inst.Close()
				outs := inst.Outports("a")
				ins := inst.Inports("b")
				within(t, 20*time.Second, "ordered rounds", func() {
					var wg sync.WaitGroup
					for i, o := range outs {
						wg.Add(1)
						go func(i int, o reo.Outport) {
							defer wg.Done()
							for r := 0; r < 3; r++ {
								o.Send(fmt.Sprintf("%d/%d", i, r))
							}
						}(i, o)
					}
					for r := 0; r < 3; r++ {
						for i := 0; i < n; i++ {
							v, err := ins[i].Recv()
							if err != nil {
								t.Fatal(err)
							}
							if want := fmt.Sprintf("%d/%d", i, r); v != want {
								t.Fatalf("got %v, want %s", v, want)
							}
						}
					}
					wg.Wait()
				})
			})
		}
	}
}
