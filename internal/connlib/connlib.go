package connlib

import (
	"fmt"

	reo "repro"
)

// Kind classifies a connector's boundary shape, which determines how the
// benchmark driver attaches tasks.
type Kind uint8

const (
	// ManyToOne: N senders on "in", one receiver on "out".
	ManyToOne Kind = iota
	// OneToMany: one sender on "in", N receivers on "out".
	OneToMany
	// ManyToMany: N senders on "a", N receivers on "b".
	ManyToMany
	// ClientsOnly: N clients performing sends only (drain-style).
	ClientsOnly
	// ReceiversOnly: N clients performing receives only.
	ReceiversOnly
	// AcquireRelease: N clients alternating sends on "acq" and "rel".
	AcquireRelease
	// GatedManyToMany: ManyToMany plus a control sender on "ctl".
	GatedManyToMany
)

// Def is one benchmark connector.
type Def struct {
	Name string
	Kind Kind
	// Src is the textual definition; the definition's name equals Name.
	Src string
	// Lengths returns the Connect lengths for n senders/receivers.
	Lengths func(n int) map[string]int
	// MinN is the smallest supported instantiation (most support 1).
	MinN int
}

// All returns the eighteen benchmark connectors.
func All() []Def {
	return []Def{
		{
			Name: "Merger",
			Kind: ManyToOne,
			Src: `
Merger18(in[];out) = Merger(in[1..#in];out)`,
			Lengths: lens1("in"),
		},
		{
			Name: "Replicator",
			Kind: OneToMany,
			Src: `
Replicator18(in;out[]) = Replicator(in;out[1..#out])`,
			Lengths: lens1("out"),
		},
		{
			Name: "Router",
			Kind: OneToMany,
			Src: `
Router18(in;out[]) = Router(in;out[1..#out])`,
			Lengths: lens1("out"),
		},
		{
			Name: "EarlyAsyncMerger",
			Kind: ManyToOne,
			Src: `
EarlyAsyncMerger18(in[];out) = prod (i:1..#in) Fifo1(in[i];out)`,
			Lengths: lens1("in"),
		},
		{
			Name: "LateAsyncMerger",
			Kind: ManyToOne,
			Src: `
LateAsyncMerger18(in[];out) = Merger(in[1..#in];m) mult Fifo1(m;out)`,
			Lengths: lens1("in"),
		},
		{
			Name: "EarlyAsyncReplicator",
			Kind: OneToMany,
			Src: `
EarlyAsyncReplicator18(in;out[]) = Fifo1(in;m) mult Replicator(m;out[1..#out])`,
			Lengths: lens1("out"),
		},
		{
			Name: "LateAsyncReplicator",
			Kind: OneToMany,
			Src: `
LateAsyncReplicator18(in;out[]) = prod (i:1..#out) Fifo1(in;out[i])`,
			Lengths: lens1("out"),
		},
		{
			Name: "EarlyAsyncRouter",
			Kind: OneToMany,
			Src: `
EarlyAsyncRouter18(in;out[]) = Fifo1(in;m) mult Router(m;out[1..#out])`,
			Lengths: lens1("out"),
		},
		{
			Name: "LateAsyncRouter",
			Kind: OneToMany,
			Src: `
LateAsyncRouter18(in;out[]) =
    Router(in;t[1..#out]) mult prod (i:1..#out) Fifo1(t[i];out[i])`,
			Lengths: lens1("out"),
		},
		{
			Name: "Barrier",
			Kind: ManyToMany,
			Src: `
Barrier18(a[];b[]) =
    prod (i:1..#a) Sync(a[i];b[i])
    mult prod (i:1..#a-1) SyncDrain(a[i],a[i+1];)`,
			Lengths: lens2("a", "b"),
		},
		{
			Name: "Alternator",
			Kind: ManyToOne,
			Src: `
Alternator18(in[];out) =
    prod (i:1..#in) Fifo1(in[i];f[i])
    mult prod (i:1..#in-1) SyncDrain(in[i],in[i+1];)
    mult Merger(f[1..#in];out)
    mult Seq(f[1..#in];)`,
			Lengths: lens1("in"),
		},
		{
			Name: "Sequencer",
			Kind: ClientsOnly,
			Src: `
Sequencer18(c[];) =
    prod (i:1..#c-1) Fifo1(r[i];r[i+1])
    mult Fifo1Full(r[#c];r[1])
    mult prod (i:1..#c) SyncDrain(c[i],r[i];)`,
			Lengths: lens1("c"),
		},
		{
			Name: "Lock",
			Kind: AcquireRelease,
			Src: `
Lock18(acq[],rel[];) =
    Merger(acq[1..#acq];am) mult Merger(rel[1..#rel];rm)
    mult SyncDrain(am,tk;) mult Fifo1Full(rm;tk)`,
			Lengths: lens2("acq", "rel"),
		},
		{
			Name: "OrderedMany2One",
			Kind: ManyToMany,
			Src: `
X(tl;prev,next,hd) =
    Replicator(tl;prev,v) mult Fifo1(v;w) mult Replicator(w;next,hd)

OrderedMany2One18(a[];b[]) =
    if (#a == 1) {
        Fifo1(a[1];b[1])
    } else {
        prod (i:1..#a) X(a[i];prev[i],next[i],b[i])
        mult prod (i:1..#a-1) Seq(next[i],prev[i+1];)
        mult Seq(prev[1],next[#a];)
    }`,
			Lengths: lens2("a", "b"),
		},
		{
			Name: "Exchanger",
			Kind: ManyToMany,
			Src: `
Exchanger18(a[];b[]) =
    prod (i:1..#a) Sync(a[i];b[i%#a+1])
    mult prod (i:1..#a-1) SyncDrain(a[i],a[i+1];)`,
			Lengths: lens2("a", "b"),
		},
		{
			Name: "Valve",
			Kind: GatedManyToMany,
			Src: `
Valve18(a[],ctl;b[]) = prod (i:1..#a) Valve1(a[i],ctl;b[i])`,
			Lengths: lens2("a", "b"),
		},
		{
			Name: "Discriminator",
			Kind: ManyToOne,
			Src: `
Discriminator18(in[];out) =
    prod (i:1..#in) Fifo1(in[i];f[i])
    mult Seq(f[1..#in];)
    mult Sync(f[#in];out)`,
			Lengths: lens1("in"),
		},
		{
			Name: "TokenRing",
			Kind: ReceiversOnly,
			Src: `
TokenRing18(;c[]) =
    prod (i:1..#c-1) Fifo1(s[i];r[i+1])
    mult Fifo1Full(s[#c];r[1])
    mult prod (i:1..#c) Replicator(r[i];c[i],s[i])`,
			Lengths: lens1("c"),
		},
	}
}

// ByName returns the named benchmark connector.
func ByName(name string) (Def, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("connlib: unknown connector %q", name)
}

func lens1(param string) func(int) map[string]int {
	return func(n int) map[string]int { return map[string]int{param: n} }
}

func lens2(p1, p2 string) func(int) map[string]int {
	return func(n int) map[string]int { return map[string]int{p1: n, p2: n} }
}

// DefName returns the DSL definition name ("<Name>18").
func (d Def) DefName() string { return d.Name + "18" }

// Compile compiles the connector's program.
func (d Def) Compile(opts ...reo.CompileOption) (*reo.Connector, error) {
	prog, err := reo.Compile(d.Src, opts...)
	if err != nil {
		return nil, err
	}
	return prog.Connector(d.DefName())
}

// Connect compiles and instantiates the connector for n senders/receivers.
func (d Def) Connect(n int, opts ...reo.ConnectOption) (*reo.Instance, error) {
	if d.MinN > 0 && n < d.MinN {
		return nil, fmt.Errorf("connlib: %s requires N >= %d", d.Name, d.MinN)
	}
	conn, err := d.Compile()
	if err != nil {
		return nil, err
	}
	return conn.Connect(d.Lengths(n), opts...)
}
