// Package connlib defines the eighteen parametrizable benchmark
// connectors of experiment E1 (the paper's §V-B suite: a comprehensive
// selection covering the major examples of parametrizable connectors in
// the Reo literature), together with driver metadata used by the
// benchmark harness and the test suite.
package connlib
