package connlib

import (
	"sync"

	reo "repro"
)

// Drive spawns the benchmark driver tasks for the connector: every task
// sends or receives in a tight loop ("every task just tried to send and
// receive as often as possible", §V-B) until the instance closes. The
// returned function waits for all tasks to exit; close the instance first.
func Drive(d Def, inst *reo.Instance, n int) (wait func()) {
	return DriveBatched(d, inst, n, 1)
}

// DriveBatched is Drive with a batching degree: every plain sender and
// receiver task moves items through its port in batches of the given
// size (SendBatch/RecvBatch over a per-task reused slice, so the steady
// state allocates nothing), amortizing one registration handshake over
// the batch. batch <= 1 selects the scalar operations — the k=1 case of
// the same engine path. Control-structured tasks (AcquireRelease's
// lock/unlock alternation, the GatedManyToMany valve) stay scalar: their
// protocol alternates ports per item, which is exactly the access
// pattern batching cannot help.
func DriveBatched(d Def, inst *reo.Instance, n, batch int) (wait func()) {
	var wg sync.WaitGroup
	sender := func(out reo.Outport) {
		defer wg.Done()
		if batch <= 1 {
			for i := 0; ; i++ {
				if err := out.Send(i); err != nil {
					return
				}
			}
		}
		vs := make([]any, batch)
		for i := 0; ; {
			for j := range vs {
				vs[j] = i
				i++
			}
			if err := out.SendBatch(vs); err != nil {
				return
			}
		}
	}
	receiver := func(in reo.Inport) {
		defer wg.Done()
		if batch <= 1 {
			for {
				if _, err := in.Recv(); err != nil {
					return
				}
			}
		}
		buf := make([]any, batch)
		for {
			if _, err := in.RecvBatch(buf); err != nil {
				return
			}
		}
	}
	spawnSenders := func(param string) {
		for _, p := range inst.Outports(param) {
			wg.Add(1)
			go sender(p)
		}
	}
	spawnReceivers := func(param string) {
		for _, p := range inst.Inports(param) {
			wg.Add(1)
			go receiver(p)
		}
	}

	switch d.Kind {
	case ManyToOne:
		spawnSenders("in")
		spawnReceivers("out")
	case OneToMany:
		spawnSenders("in")
		spawnReceivers("out")
	case ManyToMany:
		spawnSenders("a")
		spawnReceivers("b")
	case ClientsOnly:
		spawnSenders("c")
	case ReceiversOnly:
		spawnReceivers("c")
	case AcquireRelease:
		acq := inst.Outports("acq")
		rel := inst.Outports("rel")
		for i := range acq {
			wg.Add(1)
			go func(a, r reo.Outport) {
				defer wg.Done()
				for k := 0; ; k++ {
					if err := a.Send(k); err != nil {
						return
					}
					if err := r.Send(k); err != nil {
						return
					}
				}
			}(acq[i], rel[i])
		}
	case GatedManyToMany:
		spawnSenders("a")
		spawnReceivers("b")
		// The control task toggles the valve; two sends in a row
		// return it to the open state so data keeps flowing.
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctl := inst.Outport("ctl")
			for {
				if err := ctl.Send(0); err != nil {
					return
				}
				if err := ctl.Send(1); err != nil {
					return
				}
			}
		}()
	}
	return wg.Wait
}
