package connlib

import (
	"sync"

	reo "repro"
)

// Drive spawns the benchmark driver tasks for the connector: every task
// sends or receives in a tight loop ("every task just tried to send and
// receive as often as possible", §V-B) until the instance closes. The
// returned function waits for all tasks to exit; close the instance first.
func Drive(d Def, inst *reo.Instance, n int) (wait func()) {
	var wg sync.WaitGroup
	sender := func(out reo.Outport) {
		defer wg.Done()
		for i := 0; ; i++ {
			if err := out.Send(i); err != nil {
				return
			}
		}
	}
	receiver := func(in reo.Inport) {
		defer wg.Done()
		for {
			if _, err := in.Recv(); err != nil {
				return
			}
		}
	}
	spawnSenders := func(param string) {
		for _, p := range inst.Outports(param) {
			wg.Add(1)
			go sender(p)
		}
	}
	spawnReceivers := func(param string) {
		for _, p := range inst.Inports(param) {
			wg.Add(1)
			go receiver(p)
		}
	}

	switch d.Kind {
	case ManyToOne:
		spawnSenders("in")
		spawnReceivers("out")
	case OneToMany:
		spawnSenders("in")
		spawnReceivers("out")
	case ManyToMany:
		spawnSenders("a")
		spawnReceivers("b")
	case ClientsOnly:
		spawnSenders("c")
	case ReceiversOnly:
		spawnReceivers("c")
	case AcquireRelease:
		acq := inst.Outports("acq")
		rel := inst.Outports("rel")
		for i := range acq {
			wg.Add(1)
			go func(a, r reo.Outport) {
				defer wg.Done()
				for k := 0; ; k++ {
					if err := a.Send(k); err != nil {
						return
					}
					if err := r.Send(k); err != nil {
						return
					}
				}
			}(acq[i], rel[i])
		}
	case GatedManyToMany:
		spawnSenders("a")
		spawnReceivers("b")
		// The control task toggles the valve; two sends in a row
		// return it to the open state so data keeps flowing.
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctl := inst.Outport("ctl")
			for {
				if err := ctl.Send(0); err != nil {
					return
				}
				if err := ctl.Send(1); err != nil {
					return
				}
			}
		}()
	}
	return wg.Wait
}
