package parser_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return f
}

func TestFig8(t *testing.T) {
	f := parse(t, `
ConnectorEx11a(tl1,tl2;hd1,hd2) =
    Replicator(tl1;prev1,v1) mult Replicator(tl2;prev2,v2)
    mult Fifo1(v1;w1) mult Fifo1(v2;w2)
    mult Replicator(w1;next1,hd1) mult Replicator(w2;next2,hd2)
    mult Seq(next1,prev2;) mult Seq(prev1,next2;)
`)
	if len(f.Defs) != 1 {
		t.Fatalf("defs = %d", len(f.Defs))
	}
	d := f.Defs[0]
	if d.Name != "ConnectorEx11a" || len(d.Tails) != 2 || len(d.Heads) != 2 {
		t.Fatalf("signature: %+v", d)
	}
	m, ok := d.Body.(*ast.Mult)
	if !ok || len(m.Factors) != 8 {
		t.Fatalf("body: %T with %d factors", d.Body, len(m.Factors))
	}
}

func TestFig9Parametrized(t *testing.T) {
	f := parse(t, `
ConnectorEx11N(tl[];hd[]) =
    if (#tl == 1) {
        Fifo1(tl[1];hd[1])
    } else {
        prod (i:1..#tl) X(tl[i];prev[i],next[i],hd[i])
        mult prod (i:1..#tl-1) Seq(next[i],prev[i+1];)
        mult Seq(prev[1],next[#tl];)
    }
`)
	d := f.Defs[0]
	if !d.Tails[0].IsArray || !d.Heads[0].IsArray {
		t.Fatal("array params not recognized")
	}
	ifx, ok := d.Body.(*ast.If)
	if !ok {
		t.Fatalf("body is %T, want If", d.Body)
	}
	cmp, ok := ifx.Cond.(*ast.Cmp)
	if !ok || cmp.Op != "==" {
		t.Fatalf("cond: %v", ast.RenderBool(ifx.Cond))
	}
	if _, ok := cmp.L.(*ast.LenOf); !ok {
		t.Fatal("cond lhs not #tl")
	}
	els, ok := ifx.Else.(*ast.Mult)
	if !ok || len(els.Factors) != 3 {
		t.Fatalf("else: %T", ifx.Else)
	}
	if _, ok := els.Factors[0].(*ast.Prod); !ok {
		t.Fatal("first else factor not prod")
	}
}

func TestMainDef(t *testing.T) {
	f := parse(t, `
A(a[];b[]) = prod (i:1..#a) Sync(a[i];b[i])
main(N) = A(out[1..N];in[1..N]) among
    forall (i:1..N) Tasks.pro(out[i]) and Tasks.con(in[1..N])
`)
	if len(f.Mains) != 1 {
		t.Fatalf("mains = %d", len(f.Mains))
	}
	m := f.Mains[0]
	if len(m.Params) != 1 || m.Params[0] != "N" {
		t.Fatalf("params: %v", m.Params)
	}
	if len(m.Conns) != 1 || m.Conns[0].Name != "A" {
		t.Fatalf("conns: %+v", m.Conns)
	}
	if len(m.Tasks) != 2 {
		t.Fatalf("tasks: %d", len(m.Tasks))
	}
	fa, ok := m.Tasks[0].(*ast.TaskForall)
	if !ok || fa.Var != "i" {
		t.Fatalf("task 0: %+v", m.Tasks[0])
	}
	ti, ok := m.Tasks[1].(*ast.TaskInst)
	if !ok || ti.Name != "Tasks.con" || !ti.Args[0].IsRange {
		t.Fatalf("task 1: %+v", m.Tasks[1])
	}
}

func TestAttrForms(t *testing.T) {
	f := parse(t, `A(a;b) = Filter.even(a;m) mult Fifo.4(m;k) mult Transformer.dbl(k;b)`)
	m := f.Defs[0].Body.(*ast.Mult)
	wantAttrs := []string{"even", "4", "dbl"}
	for i, w := range wantAttrs {
		inv := m.Factors[i].(*ast.Invoke)
		if inv.Attr != w {
			t.Errorf("factor %d attr = %q, want %q", i, inv.Attr, w)
		}
	}
}

func TestPrecedence(t *testing.T) {
	e, err := parser.ParseExpr(`Sync(a[1+2*3];b)`)
	if err != nil {
		t.Fatal(err)
	}
	ix := e.(*ast.Invoke).Tails[0].Indices[0]
	if got := ast.Render(ix); got != "(1+(2*3))" {
		t.Errorf("index = %s", got)
	}
}

func TestBoolPrecedenceAndParens(t *testing.T) {
	f := parse(t, `A(a[];b) = if (#a == 1 || #a > 2 && !(#a == 5)) { Sync(a[1];b) } else { Sync(a[2];b) }`)
	ifx := f.Defs[0].Body.(*ast.If)
	or, ok := ifx.Cond.(*ast.BoolBin)
	if !ok || or.Op != "||" {
		t.Fatalf("top op: %v", ast.RenderBool(ifx.Cond))
	}
	and, ok := or.R.(*ast.BoolBin)
	if !ok || and.Op != "&&" {
		t.Fatalf("rhs: %v", ast.RenderBool(or.R))
	}
	if _, ok := and.R.(*ast.Not); !ok {
		t.Fatal("negation lost")
	}
}

func TestElseIf(t *testing.T) {
	f := parse(t, `
A(a[];b) =
    if (#a == 1) { Sync(a[1];b) }
    else if (#a == 2) { Merger(a[1],a[2];b) }
    else { Merger(a[1..#a];b) }
`)
	ifx := f.Defs[0].Body.(*ast.If)
	nested, ok := ifx.Else.(*ast.If)
	if !ok {
		t.Fatalf("else-if is %T", ifx.Else)
	}
	if nested.Else == nil {
		t.Fatal("final else missing")
	}
}

func TestNegativeAndModulo(t *testing.T) {
	e, err := parser.ParseExpr(`Sync(a[i%n+1];b[-1+2])`)
	if err != nil {
		t.Fatal(err)
	}
	inv := e.(*ast.Invoke)
	if got := ast.Render(inv.Tails[0].Indices[0]); got != "((i%n)+1)" {
		t.Errorf("tail index = %s", got)
	}
	if got := ast.Render(inv.Heads[0].Indices[0]); got != "((0-1)+2)" {
		t.Errorf("head index = %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`A(a;b) =`,                        // missing body
		`A(a;b) = Sync(a;b`,               // unclosed paren
		`A(a;b) = Sync(a b)`,              // missing semi
		`A(a;b) = prod (i:1..) Sync(a;b)`, // missing range end
		`A(a;b) = if #a == 1 { }`,         // missing parens
		`A(a[];b) = Sync(a[1..2][3];b)`,   // index after range
		`main = among`,                    // empty main
		`A(a;b) = Sync(a;b) mult`,         // dangling mult
	}
	for _, src := range cases {
		if _, err := parser.Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := parser.Parse("A(a;b) = \n  Sync(a;b")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `Ordered(tl[];hd[]) =
    if (#tl == 1) { Fifo1(tl[1];hd[1]) } else {
        prod (i:1..#tl) Fifo1(tl[i];hd[i])
        mult Seq(tl[1..#tl];)
    }`
	f := parse(t, src)
	rendered := ast.RenderExpr(f.Defs[0].Body, "")
	reparsed, err := parser.ParseExpr(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered output failed: %v\n%s", err, rendered)
	}
	if ast.RenderExpr(reparsed, "") != rendered {
		t.Error("render not a fixed point")
	}
}
