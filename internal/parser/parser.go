package parser

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lexer"
)

// Error is a parse error with position.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []lexer.Token
	i    int
}

// Parse parses a complete source file.
func Parse(src string) (*ast.File, error) {
	toks, err := lexer.All(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &ast.File{}
	for p.peek().Kind != lexer.EOF {
		if p.peek().Kind == lexer.KWMAIN {
			m, err := p.mainDef()
			if err != nil {
				return nil, err
			}
			f.Mains = append(f.Mains, m)
			continue
		}
		d, err := p.connDef()
		if err != nil {
			return nil, err
		}
		f.Defs = append(f.Defs, d)
	}
	return f, nil
}

// ParseExpr parses a standalone connector expression (used in tests).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.All(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != lexer.EOF {
		return nil, p.errHere("trailing input after expression: %s", p.peek())
	}
	return e, nil
}

func (p *parser) peek() lexer.Token { return p.toks[p.i] }

func (p *parser) at(k lexer.Kind) bool { return p.peek().Kind == k }

func (p *parser) next() lexer.Token {
	t := p.toks[p.i]
	if t.Kind != lexer.EOF {
		p.i++
	}
	return t
}

func (p *parser) accept(k lexer.Kind) (lexer.Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return lexer.Token{}, false
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if t, ok := p.accept(k); ok {
		return t, nil
	}
	return lexer.Token{}, p.errHere("expected %s, found %s", k, p.peek())
}

func (p *parser) errHere(format string, args ...any) error {
	return &Error{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) connDef() (*ast.ConnDef, error) {
	name, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	tails, err := p.params()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.SEMI); err != nil {
		return nil, err
	}
	heads, err := p.params()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.ASSIGN); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ast.ConnDef{Name: name.Text, Tails: tails, Heads: heads, Body: body, Pos: name.Pos}, nil
}

func (p *parser) params() ([]ast.Param, error) {
	var out []ast.Param
	if p.at(lexer.SEMI) || p.at(lexer.RPAREN) {
		return out, nil
	}
	for {
		name, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		param := ast.Param{Name: name.Text, Pos: name.Pos}
		if _, ok := p.accept(lexer.LBRACK); ok {
			if _, err := p.expect(lexer.RBRACK); err != nil {
				return nil, err
			}
			param.IsArray = true
		}
		out = append(out, param)
		if _, ok := p.accept(lexer.COMMA); !ok {
			return out, nil
		}
	}
}

func (p *parser) expr() (ast.Expr, error) {
	first, err := p.term()
	if err != nil {
		return nil, err
	}
	factors := []ast.Expr{first}
	for {
		if _, ok := p.accept(lexer.KWMULT); !ok {
			break
		}
		f, err := p.term()
		if err != nil {
			return nil, err
		}
		factors = append(factors, f)
	}
	if len(factors) == 1 {
		return factors[0], nil
	}
	return &ast.Mult{Factors: factors, Pos: factors[0].Position()}, nil
}

func (p *parser) term() (ast.Expr, error) {
	switch p.peek().Kind {
	case lexer.KWPROD:
		return p.prodExpr()
	case lexer.KWIF:
		return p.ifExpr()
	case lexer.LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case lexer.LBRACE:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RBRACE); err != nil {
			return nil, err
		}
		return e, nil
	case lexer.IDENT:
		return p.invoke()
	}
	return nil, p.errHere("expected connector expression, found %s", p.peek())
}

func (p *parser) invoke() (*ast.Invoke, error) {
	name, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	inv := &ast.Invoke{Name: name.Text, Pos: name.Pos}
	if _, ok := p.accept(lexer.DOT); ok {
		switch p.peek().Kind {
		case lexer.IDENT:
			inv.Attr = p.next().Text
		case lexer.INT:
			inv.Attr = p.next().Text
		default:
			return nil, p.errHere("expected attribute after '.', found %s", p.peek())
		}
	}
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	inv.Tails, err = p.portArgs(lexer.SEMI)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.SEMI); err != nil {
		return nil, err
	}
	inv.Heads, err = p.portArgs(lexer.RPAREN)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	return inv, nil
}

func (p *parser) portArgs(end lexer.Kind) ([]ast.PortArg, error) {
	var out []ast.PortArg
	if p.at(end) {
		return out, nil
	}
	for {
		a, err := p.portArg()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		if _, ok := p.accept(lexer.COMMA); !ok {
			return out, nil
		}
	}
}

func (p *parser) portArg() (ast.PortArg, error) {
	name, err := p.expect(lexer.IDENT)
	if err != nil {
		return ast.PortArg{}, err
	}
	arg := ast.PortArg{Name: name.Text, Pos: name.Pos}
	for p.at(lexer.LBRACK) {
		p.next()
		lo, err := p.intExpr()
		if err != nil {
			return ast.PortArg{}, err
		}
		if _, ok := p.accept(lexer.DOTDOT); ok {
			if len(arg.Indices) > 0 {
				return ast.PortArg{}, p.errHere("range index must be the only index")
			}
			hi, err := p.intExpr()
			if err != nil {
				return ast.PortArg{}, err
			}
			if _, err := p.expect(lexer.RBRACK); err != nil {
				return ast.PortArg{}, err
			}
			if p.at(lexer.LBRACK) {
				return ast.PortArg{}, p.errHere("no further indices allowed after a range")
			}
			arg.IsRange = true
			arg.Lo, arg.Hi = lo, hi
			return arg, nil
		}
		if _, err := p.expect(lexer.RBRACK); err != nil {
			return ast.PortArg{}, err
		}
		arg.Indices = append(arg.Indices, lo)
	}
	return arg, nil
}

func (p *parser) prodExpr() (*ast.Prod, error) {
	kw, _ := p.expect(lexer.KWPROD)
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	v, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.COLON); err != nil {
		return nil, err
	}
	lo, err := p.intExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.DOTDOT); err != nil {
		return nil, err
	}
	hi, err := p.intExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	body, err := p.term()
	if err != nil {
		return nil, err
	}
	return &ast.Prod{Var: v.Text, Lo: lo, Hi: hi, Body: body, Pos: kw.Pos}, nil
}

func (p *parser) ifExpr() (*ast.If, error) {
	kw, _ := p.expect(lexer.KWIF)
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.boolExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LBRACE); err != nil {
		return nil, err
	}
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RBRACE); err != nil {
		return nil, err
	}
	node := &ast.If{Cond: cond, Then: then, Pos: kw.Pos}
	if _, ok := p.accept(lexer.KWELSE); ok {
		if p.at(lexer.KWIF) {
			node.Else, err = p.ifExpr()
			if err != nil {
				return nil, err
			}
			return node, nil
		}
		if _, err := p.expect(lexer.LBRACE); err != nil {
			return nil, err
		}
		node.Else, err = p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RBRACE); err != nil {
			return nil, err
		}
	}
	return node, nil
}

// Integer expressions: precedence climbing with two levels.

func (p *parser) intExpr() (ast.IntExpr, error) {
	l, err := p.intMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().Kind {
		case lexer.PLUS:
			op = "+"
		case lexer.MINUS:
			op = "-"
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.intMul()
		if err != nil {
			return nil, err
		}
		l = &ast.BinInt{Op: op, L: l, R: r, Pos: pos}
	}
}

func (p *parser) intMul() (ast.IntExpr, error) {
	l, err := p.intUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().Kind {
		case lexer.STAR:
			op = "*"
		case lexer.SLASH:
			op = "/"
		case lexer.PERCENT:
			op = "%"
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.intUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinInt{Op: op, L: l, R: r, Pos: pos}
	}
}

func (p *parser) intUnary() (ast.IntExpr, error) {
	switch p.peek().Kind {
	case lexer.INT:
		t := p.next()
		return &ast.IntLit{Val: t.Int, Pos: t.Pos}, nil
	case lexer.IDENT:
		t := p.next()
		return &ast.VarRef{Name: t.Text, Pos: t.Pos}, nil
	case lexer.HASH:
		pos := p.next().Pos
		name, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		return &ast.LenOf{Name: name.Text, Pos: pos}, nil
	case lexer.MINUS:
		pos := p.next().Pos
		x, err := p.intUnary()
		if err != nil {
			return nil, err
		}
		return &ast.BinInt{Op: "-", L: &ast.IntLit{Val: 0, Pos: pos}, R: x, Pos: pos}, nil
	case lexer.LPAREN:
		p.next()
		e, err := p.intExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errHere("expected integer expression, found %s", p.peek())
}

// Conditions.

func (p *parser) boolExpr() (ast.BoolExpr, error) {
	l, err := p.boolAnd()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.accept(lexer.OROR)
		if !ok {
			return l, nil
		}
		r, err := p.boolAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BoolBin{Op: "||", L: l, R: r, Pos: t.Pos}
	}
}

func (p *parser) boolAnd() (ast.BoolExpr, error) {
	l, err := p.boolAtom()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.accept(lexer.ANDAND)
		if !ok {
			return l, nil
		}
		r, err := p.boolAtom()
		if err != nil {
			return nil, err
		}
		l = &ast.BoolBin{Op: "&&", L: l, R: r, Pos: t.Pos}
	}
}

func (p *parser) boolAtom() (ast.BoolExpr, error) {
	if t, ok := p.accept(lexer.NOT); ok {
		x, err := p.boolAtom()
		if err != nil {
			return nil, err
		}
		return &ast.Not{X: x, Pos: t.Pos}, nil
	}
	// '(' may open a parenthesized condition or an integer expression;
	// try the condition first, backtracking on failure.
	if p.at(lexer.LPAREN) {
		mark := p.i
		p.next()
		if c, err := p.boolExpr(); err == nil {
			if _, err := p.expect(lexer.RPAREN); err == nil {
				return c, nil
			}
		}
		p.i = mark
	}
	l, err := p.intExpr()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.peek().Kind {
	case lexer.EQ:
		op = "=="
	case lexer.NEQ:
		op = "!="
	case lexer.LT:
		op = "<"
	case lexer.LE:
		op = "<="
	case lexer.GT:
		op = ">"
	case lexer.GE:
		op = ">="
	default:
		return nil, p.errHere("expected comparison operator, found %s", p.peek())
	}
	t := p.next()
	r, err := p.intExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Cmp{Op: op, L: l, R: r, Pos: t.Pos}, nil
}

// main definitions.

func (p *parser) mainDef() (*ast.MainDef, error) {
	kw, _ := p.expect(lexer.KWMAIN)
	m := &ast.MainDef{Pos: kw.Pos}
	if _, ok := p.accept(lexer.LPAREN); ok {
		if !p.at(lexer.RPAREN) {
			for {
				t, err := p.expect(lexer.IDENT)
				if err != nil {
					return nil, err
				}
				m.Params = append(m.Params, t.Text)
				if _, ok := p.accept(lexer.COMMA); !ok {
					break
				}
			}
		}
		if _, err := p.expect(lexer.RPAREN); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(lexer.ASSIGN); err != nil {
		return nil, err
	}
	for {
		inv, err := p.invoke()
		if err != nil {
			return nil, err
		}
		m.Conns = append(m.Conns, inv)
		if _, ok := p.accept(lexer.KWMULT); !ok {
			break
		}
	}
	if _, err := p.expect(lexer.KWAMONG); err != nil {
		return nil, err
	}
	for {
		item, err := p.taskItem()
		if err != nil {
			return nil, err
		}
		m.Tasks = append(m.Tasks, item)
		if _, ok := p.accept(lexer.KWAND); !ok {
			break
		}
	}
	return m, nil
}

func (p *parser) taskItem() (ast.TaskItem, error) {
	if kw, ok := p.accept(lexer.KWFORALL); ok {
		if _, err := p.expect(lexer.LPAREN); err != nil {
			return nil, err
		}
		v, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.COLON); err != nil {
			return nil, err
		}
		lo, err := p.intExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.DOTDOT); err != nil {
			return nil, err
		}
		hi, err := p.intExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RPAREN); err != nil {
			return nil, err
		}
		fa := &ast.TaskForall{Var: v.Text, Lo: lo, Hi: hi, Pos: kw.Pos}
		if _, ok := p.accept(lexer.LBRACE); ok {
			for {
				item, err := p.taskItem()
				if err != nil {
					return nil, err
				}
				fa.Body = append(fa.Body, item)
				if _, ok := p.accept(lexer.KWAND); !ok {
					break
				}
			}
			if _, err := p.expect(lexer.RBRACE); err != nil {
				return nil, err
			}
			return fa, nil
		}
		item, err := p.taskItem()
		if err != nil {
			return nil, err
		}
		fa.Body = []ast.TaskItem{item}
		return fa, nil
	}

	name, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	full := name.Text
	if _, ok := p.accept(lexer.DOT); ok {
		part, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		full += "." + part.Text
	}
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	inst := &ast.TaskInst{Name: full, Pos: name.Pos}
	if !p.at(lexer.RPAREN) {
		for {
			a, err := p.portArg()
			if err != nil {
				return nil, err
			}
			inst.Args = append(inst.Args, a)
			if _, ok := p.accept(lexer.COMMA); !ok {
				break
			}
		}
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	return inst, nil
}
