// Package parser builds the AST of the textual connector language.
//
// Grammar (EBNF, '||'-style alternatives):
//
//	file     = { conndef | maindef } ;
//	conndef  = IDENT "(" params ";" params ")" "=" expr ;
//	param    = IDENT [ "[" "]" ] ;
//	expr     = term { "mult" term } ;
//	term     = invoke | prod | if | "(" expr ")" | "{" expr "}" ;
//	invoke   = IDENT [ "." (IDENT | INT) ] "(" portargs ";" portargs ")" ;
//	prod     = "prod" "(" IDENT ":" intexpr ".." intexpr ")" term ;
//	if       = "if" "(" boolexpr ")" "{" expr "}"
//	             [ "else" ( "{" expr "}" | if ) ] ;
//	portarg  = IDENT { "[" intexpr [ ".." intexpr ] "]" } ;
//	maindef  = "main" [ "(" [ IDENT { "," IDENT } ] ")" ] "="
//	             invoke { "mult" invoke } "among" taskitem { "and" taskitem } ;
//	taskitem = "forall" "(" IDENT ":" intexpr ".." intexpr ")"
//	             ( taskitem | "{" taskitem { "and" taskitem } "}" )
//	         | IDENT [ "." IDENT ] "(" [ portarg { "," portarg } ] ")" ;
package parser
