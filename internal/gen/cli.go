package gen

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// RunCLI implements the `reoc gen` subcommand: it reads a protocol
// source file, generates the named connector, and writes the emitted
// package file into the output directory. It returns a process exit
// code and prints human-readable errors to stderr, so cmd/reoc can
// delegate to it directly and tests can exercise every error path
// without spawning a process.
//
// Usage: reoc gen file.reo Connector [-n N] [-o dir] [-pkg name] [-force]
func RunCLI(args []string, stdout, stderr io.Writer) int {
	if len(args) < 2 {
		fmt.Fprintln(stderr, "usage: reoc gen file.reo Connector [-n N] [-o dir] [-pkg name] [-force]")
		return 2
	}
	file, connector := args[0], args[1]
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 3, "array length for every array parameter")
	outDir := fs.String("o", ".", "output directory (created if missing)")
	pkg := fs.String("pkg", "", "package name (default: lower-cased connector name)")
	force := fs.Bool("force", false, "overwrite an existing generated file")
	maxStates := fs.Int("max-states", 0, "ahead-of-time expansion bound (default 4096)")
	if err := fs.Parse(args[2:]); err != nil {
		return 2
	}

	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(stderr, "reoc gen:", err)
		return 1
	}
	g, err := Generate(string(src), Config{
		Connector: connector,
		Package:   *pkg,
		N:         *n,
		MaxStates: *maxStates,
	})
	if err != nil {
		fmt.Fprintln(stderr, "reoc gen:", err)
		return 1
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(stderr, "reoc gen:", err)
		return 1
	}
	target := filepath.Join(*outDir, g.Package+"_gen.go")
	if !*force {
		if _, err := os.Stat(target); err == nil {
			fmt.Fprintf(stderr, "reoc gen: %s already exists (use -force to overwrite)\n", target)
			return 1
		}
	}
	if err := os.WriteFile(target, g.File, 0o644); err != nil {
		fmt.Fprintln(stderr, "reoc gen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "reoc gen: wrote %s (package %s: %d composite states, %d transitions)\n",
		target, g.Package, g.States, g.Transitions)
	return 0
}
