package gen

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// RunCLI implements the `reoc gen` subcommand: it reads a protocol
// source file, generates the named connector, and writes the emitted
// package file into the output directory. It returns a process exit
// code and prints human-readable errors to stderr, so cmd/reoc can
// delegate to it directly and tests can exercise every error path
// without spawning a process.
//
// Usage: reoc gen file.reo Connector [-n N | -parametric] [-o dir] [-pkg name] [-force]
func RunCLI(args []string, stdout, stderr io.Writer) int {
	if len(args) < 2 {
		fmt.Fprintln(stderr, "usage: reoc gen file.reo Connector [-n N | -parametric] [-o dir] [-pkg name] [-force]")
		return 2
	}
	file, connector := args[0], args[1]
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 3, "array length for every array parameter (fixed-N expansion)")
	parametric := fs.Bool("parametric", false, "emit a parametric-N package (per-region templates over the genrun runtime) instead of a fixed-N expansion")
	outDir := fs.String("o", ".", "output directory (created if missing)")
	pkg := fs.String("pkg", "", "package name (default: lower-cased connector name)")
	force := fs.Bool("force", false, "overwrite an existing generated file")
	maxStates := fs.Int("max-states", 0, "ahead-of-time expansion bound (default 4096, fixed-N only)")
	if err := fs.Parse(args[2:]); err != nil {
		return 2
	}
	// Reject a nonsensical length eagerly, before any parsing or
	// flattening work: arrays are nonempty, so there is no connector to
	// expand at n <= 0 and the deep failure the compiler would eventually
	// produce only obscures the actual mistake.
	if *n <= 0 {
		fmt.Fprintf(stderr, "reoc gen: invalid option -n: array length %d must be >= 1 (arrays are nonempty)\n", *n)
		return 1
	}

	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(stderr, "reoc gen:", err)
		return 1
	}
	cfg := Config{
		Connector: connector,
		Package:   *pkg,
		N:         *n,
		MaxStates: *maxStates,
	}
	var g *Generated
	if *parametric {
		g, err = GenerateParametric(string(src), cfg)
	} else {
		g, err = Generate(string(src), cfg)
	}
	if err != nil {
		fmt.Fprintln(stderr, "reoc gen:", err)
		return 1
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(stderr, "reoc gen:", err)
		return 1
	}
	target := filepath.Join(*outDir, g.Package+"_gen.go")
	if !*force {
		if _, err := os.Stat(target); err == nil {
			fmt.Fprintf(stderr, "reoc gen: %s already exists (use -force to overwrite)\n", target)
			return 1
		}
	}
	if err := os.WriteFile(target, g.File, 0o644); err != nil {
		fmt.Fprintln(stderr, "reoc gen:", err)
		return 1
	}
	if *parametric {
		fmt.Fprintf(stdout, "reoc gen: wrote %s (package %s: %d region templates, %d states, %d transitions, any n)\n",
			target, g.Package, g.Templates, g.States, g.Transitions)
	} else {
		fmt.Fprintf(stdout, "reoc gen: wrote %s (package %s: %d composite states, %d transitions)\n",
			target, g.Package, g.States, g.Transitions)
	}
	return 0
}
