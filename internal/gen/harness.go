package gen

import (
	_ "embed"
	"fmt"
	"strings"
)

// The differential harness: the test (and the CI smoke step) assembles
// a throwaway Go module containing the generated connector packages,
// a verbatim copy of the gendrv driver, and a main emitted by
// EmitHarnessMain that runs every connector under the deterministic
// schedule and prints the per-port sequences as JSON. The same gendrv
// source drives the interpreted engine in-process, so any divergence
// between the backends is a real semantic difference, not harness
// drift.

//go:embed gendrv/gendrv.go
var gendrvSource []byte

// GendrvSource returns the differential driver's source, for writing
// into a generated test module as package gendrv.
func GendrvSource() []byte { return append([]byte(nil), gendrvSource...) }

// HarnessConn describes one connector entry of an emitted harness.
type HarnessConn struct {
	// Pkg is both the module-relative import directory and the package
	// name of the generated connector.
	Pkg string
	// Name is the connector's display name in the JSON output.
	Name string
	// Kind is the gendrv schedule kind.
	Kind string
	// N and Rounds parametrize the schedule; Seed resolves choice.
	N, Rounds int
	Seed      int64
	// Funcs passes gendrv's shared test filters/transformations to New
	// (for connectors referencing Filter.*/Transformer.* primitives).
	Funcs bool
}

// EmitHarnessMain renders the harness main for a module named module
// containing the given connector packages.
func EmitHarnessMain(module string, conns []HarnessConn) []byte {
	var sb strings.Builder
	p := func(format string, args ...any) {
		fmt.Fprintf(&sb, format, args...)
		sb.WriteByte('\n')
	}
	p("// Generated differential harness; runs every generated connector")
	p("// under the deterministic gendrv schedule and prints JSON results.")
	p("package main")
	p("")
	p("import (")
	p("\t\"encoding/json\"")
	p("\t\"fmt\"")
	p("\t\"os\"")
	p("")
	p("\t%q", module+"/gendrv")
	for _, c := range conns {
		p("\t%q", module+"/"+c.Pkg)
	}
	p(")")
	p("")
	p("func main() {")
	p("\tvar out []*gendrv.Result")
	p("\tfail := func(name string, err error) {")
	p("\t\tfmt.Fprintf(os.Stderr, \"%%s: %%v\\n\", name, err)")
	p("\t\tos.Exit(1)")
	p("\t}")
	for _, c := range conns {
		opts := fmt.Sprintf("%s.WithSeed(%d)", c.Pkg, c.Seed)
		if c.Funcs {
			opts += fmt.Sprintf(", %s.WithFuncs(gendrv.TestFilters(), gendrv.TestXforms())", c.Pkg)
		}
		p("\t{")
		p("\t\tinst, err := %s.New(%s)", c.Pkg, opts)
		p("\t\tif err != nil {")
		p("\t\t\tfail(%q, err)", c.Name)
		p("\t\t}")
		p("\t\tres, err := gendrv.Drive(inst, %q, %d, %d)", c.Kind, c.N, c.Rounds)
		p("\t\tif err != nil {")
		p("\t\t\tfail(%q, err)", c.Name)
		p("\t\t}")
		p("\t\tres.Connector = %q", c.Name)
		p("\t\tout = append(out, res)")
		p("\t}")
	}
	p("\tif err := json.NewEncoder(os.Stdout).Encode(out); err != nil {")
	p("\t\tfail(\"encode\", err)")
	p("\t}")
	p("}")
	return []byte(sb.String())
}
