package gen_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

// TestGoldenLane pins the generator's output byte-for-byte against the
// checked-in internal/genlib/lane package: the golden file doubles as
// the generated backend used by in-process tests and benchmarks, so
// this test guarantees the checked-in code can never drift from what
// `go generate ./internal/genlib` (reoc gen) produces today.
func TestGoldenLane(t *testing.T) {
	srcPath := filepath.Join("..", "genlib", "lane.reo")
	goldenPath := filepath.Join("..", "genlib", "lane", "lane_gen.go")
	src, err := os.ReadFile(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Generate(string(src), gen.Config{Connector: "Lane", Package: "lane"})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.File, golden) {
		t.Errorf("generated output differs from %s; run `go generate ./internal/genlib` and commit the result", goldenPath)
	}
	if g.States != 2 || g.Transitions != 2 {
		t.Errorf("lane expanded to %d states / %d transitions, want 2/2", g.States, g.Transitions)
	}
}
