// Package gen is the static code-generation backend of the compiler:
// `reoc gen` runs the ordinary front-end pipeline
// (lexer→parser→sema→flatten→compile→instantiate) for one connector at
// concrete array lengths, expands the reachable composite state space
// ahead of time — the same joint expansion the engine performs lazily —
// and emits a self-contained Go package in which every joint transition
// is a specialized function: synchronization-set checks become pointer
// tests against a pending-operation table, data guards become inlined
// conditionals, cell moves become direct assignments, and pure-flow
// transitions fuse whole batches into `copy` loops. The emitted package
// depends only on the standard library and implements the same
// name-addressed runtime contract as the interpreted engine
// (engine.Backend), so the two are drop-in interchangeable.
//
// The generated dispatch loop replicates the interpreted engine's
// observable semantics exactly — candidate enumeration order, the
// seeded choice among enabled transitions, batched-operation cursor
// advancement, the fused pure-flow fast path, and the Steps/GuardEvals
// accounting — so that for a fixed operation arrival order the two
// backends produce identical per-port sequences (pinned by the
// differential tests in this package). What changes is the cost per
// step: there is no composite-state cache, no bitset algebra, and no
// plan walking at run time; the whole automaton is resident as Go
// control flow.
//
// Like the paper's pre-parametrization compiler, this trades
// generality for speed: generation materializes the reachable state
// space and fails with an ErrTooLarge-style error when it exceeds
// Config.MaxStates, where the interpreted JIT engine would simply
// expand states on demand.
package gen
