// Package gendrv is the deterministic differential driver shared by the
// interpreted engine and the packages emitted by `reoc gen`.
//
// This file is self-contained (stdlib only) on purpose: internal/gen
// embeds its source verbatim into the throwaway module the differential
// test builds, so the exact same schedule drives both backends — the
// interpreted one in-process through reo.Instance.Backend(), and the
// generated one inside the harness binary. Any edit here changes both
// sides at once; there is no second copy to drift.
//
// Determinism. A connector's per-port delivered sequences depend on the
// order operations arrive and on the engine's seeded choice among
// simultaneously enabled transitions. Drive pins both: operations are
// registered in a fixed order (each registration is confirmed through
// the monotonic OpsRegistered counter before the next is issued), every
// stream moves as one batched operation (so no mid-stream re-racing),
// and both backends resolve choice points with the same seeded RNG over
// identically ordered candidate lists. Under that discipline the global
// run is a deterministic function of (connector, schedule, seed), and
// the two backends must agree on every per-port sequence, on Steps, and
// on GuardEvals — which is exactly what the differential test asserts.
package gendrv

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Backend is the minimal surface the driver needs. It is satisfied
// structurally by engine.Backend (via reo.Instance.Backend()) and by
// every Instance type emitted by reoc gen.
type Backend interface {
	Send(port string, v any) error
	Recv(port string) (any, error)
	SendBatch(port string, vs []any) (int, error)
	RecvBatch(port string, buf []any) (int, error)
	Ports(param string) []string
	Close() error
	Steps() int64
	GuardEvals() int64
	OpsRegistered() int64
}

// Result is one deterministic run's observable outcome: the value
// sequence moved through every boundary port (rendered with fmt.Sprint
// so arbitrary payload types compare across processes), plus the
// connector's step and guard-evaluation counters.
type Result struct {
	Connector  string              `json:"connector"`
	Seqs       map[string][]string `json:"seqs"`
	Steps      int64               `json:"steps"`
	GuardEvals int64               `json:"guard_evals"`
}

// Tag is the value sender i (0-based) moves in round r; receivers see
// these tags, so per-port sequences identify both origin and order.
func Tag(i, r int) int { return (i+1)*1000 + r }

// TestFilters returns the data filters the differential connectors
// reference, defined once here so the interpreted and generated runs
// register byte-identical functions.
func TestFilters() map[string]func(any) bool {
	return map[string]func(any) bool{
		"even": func(v any) bool { i, _ := v.(int); return i%2 == 0 },
	}
}

// TestXforms returns the data transformations the differential
// connectors reference. inc and double do not commute, so chained
// applications pin composition order as well as presence.
func TestXforms() map[string]func(any) any {
	return map[string]func(any) any{
		"double": func(v any) any { i, _ := v.(int); return i * 2 },
		"inc":    func(v any) any { i, _ := v.(int); return i + 1 },
	}
}

// waitRegistered spins until the backend has accepted at least k
// operations, sequencing op arrival without sleeping. The counter is
// monotonic, so an operation that registered and already completed
// still counts.
func waitRegistered(b Backend, k int64) error {
	deadline := time.Now().Add(10 * time.Second)
	for b.OpsRegistered() < k {
		if time.Now().After(deadline) {
			return fmt.Errorf("gendrv: backend never reached %d registered operations (got %d)", k, b.OpsRegistered())
		}
		runtime.Gosched()
	}
	return nil
}

// Drive runs the deterministic schedule for a connector of the given
// kind (the connlib boundary shapes: "many2one", "one2many",
// "many2many", "clients", "receivers", "acqrel", "gated") at size n,
// moving `rounds` items per stream, and returns the observed per-port
// sequences. Drive closes the backend before returning.
func Drive(b Backend, kind string, n, rounds int) (*Result, error) {
	res := &Result{Seqs: make(map[string][]string)}
	defer b.Close()

	var (
		mu   sync.Mutex
		errs []error
	)
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	record := func(port string, vals []any) {
		mu.Lock()
		seq := make([]string, len(vals))
		for i, v := range vals {
			seq[i] = fmt.Sprint(v)
		}
		res.Seqs[port] = seq
		mu.Unlock()
	}

	var sendWG, recvWG sync.WaitGroup
	// launchSenders registers one batched send per port of param, in
	// array order, each confirmed registered before the next launches.
	launchSenders := func(param string) error {
		for i, port := range b.Ports(param) {
			vs := make([]any, rounds)
			for r := range vs {
				vs[r] = Tag(i, r)
			}
			base := b.OpsRegistered()
			sendWG.Add(1)
			go func(port string, vs []any) {
				defer sendWG.Done()
				if _, err := b.SendBatch(port, vs); err != nil {
					fail(fmt.Errorf("send %s: %w", port, err))
					return
				}
				record(port, vs)
			}(port, vs)
			if err := waitRegistered(b, base+1); err != nil {
				return err
			}
		}
		return nil
	}
	// launchReceivers registers one batched receive of capacity `items`
	// per port of param, in array order. Streams the protocol routes
	// elsewhere (or consumes internally) leave a receiver's batch short;
	// the post-close partial count is part of the observed behavior, so
	// with allowShort the close-time error is recorded, not failed.
	launchReceivers := func(param string, items int, allowShort bool) error {
		for _, port := range b.Ports(param) {
			buf := make([]any, items)
			base := b.OpsRegistered()
			recvWG.Add(1)
			go func(port string, buf []any) {
				defer recvWG.Done()
				got, err := b.RecvBatch(port, buf)
				if err != nil && !allowShort {
					fail(fmt.Errorf("recv %s: %w", port, err))
					return
				}
				record(port, buf[:got])
			}(port, buf)
			if err := waitRegistered(b, base+1); err != nil {
				return err
			}
		}
		return nil
	}

	var err error
	switch kind {
	case "many2one":
		// Senders in array order, then one receiver sized for the whole
		// stream. Aggregating connectors (a discriminator emits one value
		// per round of inputs) deliver fewer than n*rounds, so once every
		// sender's batch completed, close releases the short receiver.
		if err = launchSenders("in"); err != nil {
			break
		}
		if err = launchReceivers("out", n*rounds, true); err != nil {
			break
		}
		sendWG.Wait()
		b.Close()
	case "one2many":
		// Receivers first (each sized for the worst case: a replicator
		// delivers every item to every receiver), then the one sender.
		// Router-style connectors split the stream, so receivers may end
		// short; Drive's close releases them.
		if err = launchReceivers("out", n*rounds, true); err != nil {
			break
		}
		vs := make([]any, n*rounds)
		for r := range vs {
			vs[r] = Tag(0, r)
		}
		if _, serr := b.SendBatch(b.Ports("in")[0], vs); serr != nil {
			err = fmt.Errorf("send in: %w", serr)
			break
		}
		record(b.Ports("in")[0], vs)
		b.Close() // release short receiver batches deterministically
	case "many2many":
		if err = launchSenders("a"); err != nil {
			break
		}
		err = launchReceivers("b", rounds, false)
	case "clients":
		err = launchSenders("c")
	case "receivers":
		err = launchReceivers("c", rounds, false)
	case "acqrel":
		// One client alternating acquire/release sends, sequentially on
		// the driving goroutine: fully deterministic without fan-out.
		acq, rel := b.Ports("acq")[0], b.Ports("rel")[0]
		var acqs, rels []any
		for r := 0; r < rounds; r++ {
			if serr := b.Send(acq, Tag(0, r)); serr != nil {
				err = fmt.Errorf("send %s: %w", acq, serr)
				break
			}
			acqs = append(acqs, Tag(0, r))
			if serr := b.Send(rel, Tag(1, r)); serr != nil {
				err = fmt.Errorf("send %s: %w", rel, serr)
				break
			}
			rels = append(rels, Tag(1, r))
		}
		record(acq, acqs)
		record(rel, rels)
	case "gated":
		// Valve-style: data lanes only; the control vertex stays idle,
		// leaving the valve in its initial (open) state.
		if err = launchSenders("a"); err != nil {
			break
		}
		err = launchReceivers("b", rounds, false)
	default:
		err = fmt.Errorf("gendrv: unknown connector kind %q", kind)
	}

	sendWG.Wait()
	recvWG.Wait()
	if err != nil {
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	res.Steps = b.Steps()
	res.GuardEvals = b.GuardEvals()
	return res, nil
}
