// Package genrun is the shared runtime of parametric generated
// connectors: the packages `reoc gen -parametric` emits contain only
// their embedded source text and a list of static region templates
// (state/transition tables with inlined guard/exec closures), and call
// genrun.New to turn them into a live instance at any array length N.
//
// New runs the ordinary compilation pipeline (parse → check → compile →
// instantiate) to obtain the connector's constituent automata, plans the
// asynchronous regions exactly as the interpreted PartitionRegions path
// does, and then — instead of interpreting each region's transition
// plans — binds the matching static template to every region whose
// canonical structure (ca.CanonicalRegion) one of the templates was
// generated for. Bound regions fire through the engine's generated fast
// path (engine.BindGen); regions without a matching template (node
// regions, shapes that appeared only at other N, connectors edited since
// generation) silently stay interpreted, so the instance is always
// correct — generation is a per-region acceleration, not a semantic
// fork. Batched ports, WithWorkers/WithRuntime scheduling, and the
// region links all work identically on bound and interpreted regions.
package genrun

import (
	"fmt"
	"sync"

	"repro/internal/ca"
	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/sema"
)

// Funcs registers the data functions referenced by Filter.*/Transformer.*
// primitives, exactly as reo.WithFuncs does for the interpreted path.
type Funcs = compile.Funcs

// Ctx is the execution context generated guard/exec closures receive.
type Ctx = engine.GenCtx

// Trans is one static transition of a generated region template.
type Trans = engine.GenTrans

// Template is one region shape of a generated connector: the canonical
// structure key it was generated for, the slot classification, the
// static transition tables, and the registered function names its
// closures index (resolved against Funcs at New time).
type Template struct {
	// Key is ca.CanonicalRegion's structure key of the region automaton
	// the template was generated from; New binds the template to every
	// region with the same key.
	Key string
	// Cls classifies each port slot ('S' source, 'K' sink, 'I' internal)
	// under the link layout the region had at generation time.
	Cls     string
	States  int
	Initial int32
	Cells   int
	// FilterNames/XformNames list the registered functions the template's
	// closures call, in Filt/Xf index order.
	FilterNames []string
	XformNames  []string
	Trans       [][]Trans
}

type config struct {
	seed       int64
	workers    int
	runtime    *engine.Runtime
	useRuntime bool
	funcs      Funcs
}

// Option configures New.
type Option func(*config)

// WithSeed fixes the nondeterministic-choice seed (per-region streams
// derive from it exactly as in the interpreted engine).
func WithSeed(s int64) Option { return func(c *config) { c.seed = s } }

// WithWorkers runs the regions on a dedicated n-worker pool
// (reo.WithWorkers semantics: 0 = synchronous, <0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithRuntime attaches the regions to a shared pool instead (nil selects
// the process-global default). Mutually exclusive with WithWorkers.
func WithRuntime(rt *engine.Runtime) Option {
	return func(c *config) { c.runtime, c.useRuntime = rt, true }
}

// WithFuncs registers the data functions the connector's Filter.* and
// Transformer.* primitives name.
func WithFuncs(f Funcs) Option { return func(c *config) { c.funcs = f } }

// Instance is a live parametric generated connector. It satisfies the
// engine.Backend contract (and so the gendrv differential driver's)
// through the embedded name-addressed adapter.
type Instance struct {
	*engine.Named
	m         *engine.Multi
	regions   int
	generated int
}

// Workers returns the scheduler pool size the regions fire on (0 when
// cross-region progress is driven synchronously).
func (i *Instance) Workers() int { return i.m.Workers() }

// Regions returns the number of region engines of the instance.
func (i *Instance) Regions() int { return i.regions }

// GeneratedRegions returns how many of them run on a bound static
// template (the rest are interpreted fallbacks).
func (i *Instance) GeneratedRegions() int { return i.generated }

// built caches the compiled template of one (source, connector) pair so
// repeated New calls (instance churn, benchmarks) pay parsing and
// parametrized compilation once, like reo.Program's template cache.
type built struct {
	tmpl *compile.Template
	err  error
}

var (
	builtMu sync.Mutex
	builts  = map[string]*built{}
)

func compileOnce(src, connector string, funcs Funcs) (*compile.Template, error) {
	// Funcs participate in compilation (predicates are baked into the
	// automata), so the cache key must cover the registration identity;
	// generated packages pass the same Funcs value per call site, and a
	// differing registration simply misses the cache.
	key := fmt.Sprintf("%p/%p/%s\x00%s", funcs.Filters, funcs.Transformers, connector, src)
	builtMu.Lock()
	defer builtMu.Unlock()
	if b, ok := builts[key]; ok {
		return b.tmpl, b.err
	}
	b := &built{}
	builts[key] = b
	f, err := parser.Parse(src)
	if err != nil {
		b.err = err
		return nil, err
	}
	info, err := sema.Check(f)
	if err != nil {
		b.err = err
		return nil, err
	}
	b.tmpl, b.err = compile.Build(info, connector, funcs, compile.Options{Simplify: true})
	return b.tmpl, b.err
}

// New instantiates a generated connector at array length n: every array
// parameter is instantiated to n, the instance is partitioned into
// asynchronous regions, and each region matching a template's canonical
// structure is bound to that template's static code.
func New(src, connector string, n int, templates []*Template, opts ...Option) (*Instance, error) {
	cfg := &config{}
	for _, o := range opts {
		o(cfg)
	}
	if n < 1 {
		return nil, fmt.Errorf("%s: array length n=%d must be >= 1 (arrays are nonempty)", connector, n)
	}
	if cfg.useRuntime && cfg.workers != 0 {
		return nil, fmt.Errorf("%s: WithRuntime is mutually exclusive with WithWorkers (a shared runtime brings its own pool)", connector)
	}
	if cfg.useRuntime && cfg.runtime == nil {
		cfg.runtime = engine.DefaultRuntime()
	}

	// Resolve every template's registered functions eagerly, so a missing
	// registration fails loudly at construction instead of silently
	// leaving its regions interpreted.
	type boundTemplate struct {
		gt    *engine.GenTemplate
		filts []func(any) bool
		xfs   []func(any) any
	}
	byKey := make(map[string][]*boundTemplate, len(templates))
	for _, t := range templates {
		bt := &boundTemplate{gt: &engine.GenTemplate{
			States:  t.States,
			Initial: t.Initial,
			Cells:   t.Cells,
			Cls:     t.Cls,
			Trans:   t.Trans,
		}}
		for _, name := range t.FilterNames {
			fn := cfg.funcs.Filters[name]
			if fn == nil {
				return nil, fmt.Errorf("%s: no registered filter %q (pass WithFuncs)", connector, name)
			}
			bt.filts = append(bt.filts, fn)
		}
		for _, name := range t.XformNames {
			fn := cfg.funcs.Transformers[name]
			if fn == nil {
				return nil, fmt.Errorf("%s: no registered transformer %q (pass WithFuncs)", connector, name)
			}
			bt.xfs = append(bt.xfs, fn)
		}
		byKey[t.Key] = append(byKey[t.Key], bt)
	}

	tmpl, err := compileOnce(src, connector, cfg.funcs)
	if err != nil {
		return nil, err
	}
	lengths := map[string]int{}
	for _, p := range tmpl.ArrayParams() {
		lengths[p] = n
	}
	asm, err := tmpl.Instantiate(lengths)
	if err != nil {
		return nil, err
	}

	generated := 0
	bind := func(ri int, spec ca.RegionSpec, eng *engine.Engine) {
		if len(spec.Auts) != 1 || len(spec.Nodes) != 0 {
			return
		}
		key, ports, cells := ca.CanonicalRegion(asm.Auts[spec.Auts[0]])
		for _, bt := range byKey[key] {
			if eng.BindGen(bt.gt, ports, cells, bt.filts, bt.xfs) == nil {
				generated++
				return
			}
		}
	}
	m, err := engine.NewMultiRegionsBound(asm.U, asm.Auts, engine.Options{
		Seed:    cfg.seed,
		Workers: cfg.workers,
		Runtime: cfg.runtime,
	}, bind)
	if err != nil {
		return nil, err
	}

	sources := make(map[string][]engine.NamedPort)
	for name, ports := range asm.Tails {
		for _, p := range ports {
			sources[name] = append(sources[name], engine.NamedPort{Name: asm.U.Name(p), ID: int32(p)})
		}
	}
	sinks := make(map[string][]engine.NamedPort)
	for name, ports := range asm.Heads {
		for _, p := range ports {
			sinks[name] = append(sinks[name], engine.NamedPort{Name: asm.U.Name(p), ID: int32(p)})
		}
	}
	return &Instance{
		Named:     engine.NewNamed(m, sources, sinks),
		m:         m,
		regions:   m.Partitions(),
		generated: generated,
	}, nil
}
