package gen_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/gen"
)

// runCLI captures one RunCLI invocation.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = gen.RunCLI(args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeLane(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lane.reo")
	if err := os.WriteFile(path, []byte("Lane(a;b) = Fifo1(a;b)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIMissingArgs(t *testing.T) {
	code, _, stderr := runCLI(t, "only-a-file.reo")
	if code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("got code %d, stderr %q; want usage error", code, stderr)
	}
}

func TestCLIMissingSourceFile(t *testing.T) {
	code, _, stderr := runCLI(t, filepath.Join(t.TempDir(), "nope.reo"), "Lane")
	if code != 1 || !strings.Contains(stderr, "nope.reo") {
		t.Errorf("got code %d, stderr %q; want file-not-found error", code, stderr)
	}
}

func TestCLIBadSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.reo")
	if err := os.WriteFile(path, []byte("Lane(a;b = "), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, path, "Lane", "-o", t.TempDir())
	if code != 1 || stderr == "" {
		t.Errorf("got code %d, stderr %q; want parse error", code, stderr)
	}
}

func TestCLIUnknownConnector(t *testing.T) {
	code, _, stderr := runCLI(t, writeLane(t), "NoSuchThing", "-o", t.TempDir())
	if code != 1 || !strings.Contains(stderr, "NoSuchThing") {
		t.Errorf("got code %d, stderr %q; want unknown-connector error", code, stderr)
	}
}

func TestCLIUnwritableOutputDir(t *testing.T) {
	if runtime.GOOS == "windows" || os.Getuid() == 0 {
		t.Skip("permission bits are not enforceable here")
	}
	dir := t.TempDir()
	locked := filepath.Join(dir, "locked")
	if err := os.Mkdir(locked, 0o500); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, writeLane(t), "Lane", "-o", filepath.Join(locked, "sub"))
	if code != 1 || !strings.Contains(stderr, "permission denied") {
		t.Errorf("got code %d, stderr %q; want permission error", code, stderr)
	}
}

func TestCLICollisionNeedsForce(t *testing.T) {
	out := t.TempDir()
	lane := writeLane(t)
	code, stdout, stderr := runCLI(t, lane, "Lane", "-o", out)
	if code != 0 {
		t.Fatalf("first generation failed: %s", stderr)
	}
	if !strings.Contains(stdout, "lane_gen.go") || !strings.Contains(stdout, "2 composite states") {
		t.Errorf("unexpected success output %q", stdout)
	}
	// Second run collides with the existing file.
	code, _, stderr = runCLI(t, lane, "Lane", "-o", out)
	if code != 1 || !strings.Contains(stderr, "already exists") {
		t.Errorf("got code %d, stderr %q; want collision error", code, stderr)
	}
	// -force overwrites.
	code, _, stderr = runCLI(t, lane, "Lane", "-o", out, "-force")
	if code != 0 {
		t.Errorf("force overwrite failed: %s", stderr)
	}
}

func TestCLIBadPackageName(t *testing.T) {
	code, _, stderr := runCLI(t, writeLane(t), "Lane", "-o", t.TempDir(), "-pkg", "Not-Valid")
	if code != 1 || !strings.Contains(stderr, "package name") {
		t.Errorf("got code %d, stderr %q; want package-name error", code, stderr)
	}
}

// TestCLIRejectsNonpositiveN pins the eager length check: a zero or
// negative -n is diagnosed as such before any source file is even read,
// instead of surfacing as a confusing instantiation failure.
func TestCLIRejectsNonpositiveN(t *testing.T) {
	for _, n := range []string{"0", "-2"} {
		code, _, stderr := runCLI(t, filepath.Join(t.TempDir(), "absent.reo"), "Lane", "-n", n)
		if code != 1 || !strings.Contains(stderr, "invalid option -n") ||
			!strings.Contains(stderr, "must be >= 1") {
			t.Errorf("-n %s: got code %d, stderr %q; want eager invalid-option error", n, code, stderr)
		}
		if strings.Contains(stderr, "absent.reo") {
			t.Errorf("-n %s: source file was read before the length check: %q", n, stderr)
		}
	}
}

// TestCLIParametric runs the -parametric path end to end on an arrayed
// connector the fixed-N path would have to expand per length.
func TestCLIParametric(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lanes.reo")
	if err := os.WriteFile(path, []byte("Lanes(a[];b[]) = prod (i:1..#a) Fifo1(a[i];b[i])\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	code, stdout, stderr := runCLI(t, path, "Lanes", "-parametric", "-o", out)
	if code != 0 {
		t.Fatalf("parametric generation failed: %s", stderr)
	}
	if !strings.Contains(stdout, "lanes_gen.go") || !strings.Contains(stdout, "1 region templates") ||
		!strings.Contains(stdout, "any n") {
		t.Errorf("unexpected success output %q", stdout)
	}
	emitted, err := os.ReadFile(filepath.Join(out, "lanes_gen.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package lanes", "genrun.New(source, connectorName, n, templates", "func New(n int"} {
		if !strings.Contains(string(emitted), want) {
			t.Errorf("emitted package missing %q", want)
		}
	}
}

// TestGenerateStateBound pins the ErrTooLarge-style failure mode: a
// connector whose reachable composite space exceeds MaxStates must be
// rejected at generation time with a pointer to the JIT alternative.
func TestGenerateStateBound(t *testing.T) {
	src := `Lanes(a[];b[]) = prod (i:1..#a) Fifo1(a[i];b[i])`
	_, err := gen.Generate(src, gen.Config{Connector: "Lanes", N: 6, MaxStates: 16})
	if err == nil || !strings.Contains(err.Error(), "composite states") {
		t.Errorf("got %v; want a MaxStates error", err)
	}
	// The same connector fits with an adequate bound.
	g, err := gen.Generate(src, gen.Config{Connector: "Lanes", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.States != 8 {
		t.Errorf("3 independent lanes expanded to %d states, want 8", g.States)
	}
}
