package gen_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"

	reo "repro"
	"repro/internal/connlib"
	"repro/internal/gen"
	"repro/internal/gen/gendrv"
	"repro/internal/genlib/lane"
)

// The differential acceptance test of the code-generation backend: for
// every connlib connector (plus a guard/transformer connector), the
// generated package and the interpreted engine run the same
// deterministic gendrv schedule with the same seed, and must agree on
// every per-port value sequence, on Steps, and on GuardEvals. The
// generated side runs in a subprocess built from a throwaway module
// (generated packages are self-contained and cannot live inside this
// module's test binary), with the gendrv source embedded verbatim so
// both sides share one schedule implementation.

const (
	diffN      = 3
	diffRounds = 6
	diffSeed   = 7
)

// reproCmd pins a differential failure to its replay: these harnesses
// are deterministic functions of the fixed seed, so the exact test
// invocation plus the seed is the whole reproduction recipe.
func reproCmd(t *testing.T, seed int64) string {
	return fmt.Sprintf("repro: go test -run '%s' ./internal/gen/ (deterministic, seed %d)",
		regexp.QuoteMeta(t.Name()), seed)
}

// funcConns exercise inlined guards and named transformations, all
// driven as one2many connectors at n=1 (lossy ones leave the receiver
// short, released by close). They pin the simplification interactions
// individually: FilterChain a guard plus a transform, XformChain two
// chained transforms composed into one action by simplification (inc
// and double do not commute, so composition order is observable),
// XformFifo a transform folded into a buffer's cell fill, and
// GuardFold a transform folded into a filter's predicate.
var funcConns = []struct {
	name, src string
}{
	{"FilterChain", `FilterChain(in;out) = Filter.even(in;m) mult Transformer.double(m;out)`},
	{"XformChain", `XformChain(in;out) = Transformer.inc(in;m) mult Transformer.double(m;out)`},
	{"XformFifo", `XformFifo(in;out) = Transformer.double(in;m) mult Fifo1(m;out)`},
	{"GuardFold", `GuardFold(in;out) = Transformer.inc(in;m) mult Filter.even(m;out)`},
}

// kindName maps connlib boundary shapes to gendrv schedule kinds.
func kindName(k connlib.Kind) string {
	switch k {
	case connlib.ManyToOne:
		return "many2one"
	case connlib.OneToMany:
		return "one2many"
	case connlib.ManyToMany:
		return "many2many"
	case connlib.ClientsOnly:
		return "clients"
	case connlib.ReceiversOnly:
		return "receivers"
	case connlib.AcquireRelease:
		return "acqrel"
	case connlib.GatedManyToMany:
		return "gated"
	}
	return "unknown"
}

func TestGenDifferentialConnlib(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available; the CI gen smoke job runs this")
	}

	// Assemble the throwaway module: gendrv + one generated package per
	// connector + the emitted harness main.
	dir := t.TempDir()
	writeFile := func(rel string, data []byte) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", []byte("module gentest\n\ngo 1.24\n"))
	writeFile("gendrv/gendrv.go", gen.GendrvSource())

	var conns []gen.HarnessConn
	for i, d := range connlib.All() {
		pkg := fmt.Sprintf("c%02d%s", i, lowerAlnum(d.Name))
		g, err := gen.Generate(d.Src, gen.Config{
			Connector: d.DefName(),
			Package:   pkg,
			Lengths:   d.Lengths(diffN),
		})
		if err != nil {
			t.Fatalf("generate %s: %v", d.Name, err)
		}
		writeFile(filepath.Join(pkg, pkg+"_gen.go"), g.File)
		conns = append(conns, gen.HarnessConn{
			Pkg: pkg, Name: d.Name, Kind: kindName(d.Kind),
			N: diffN, Rounds: diffRounds, Seed: diffSeed,
		})
	}
	// The guard/transformer connectors ride along in the same build.
	for _, fc := range funcConns {
		pkg := "c" + lowerAlnum(fc.name)
		g, err := gen.Generate(fc.src, gen.Config{
			Connector: fc.name,
			Package:   pkg,
			Funcs:     reo.Funcs{Filters: gendrv.TestFilters(), Transformers: gendrv.TestXforms()},
		})
		if err != nil {
			t.Fatalf("generate %s: %v", fc.name, err)
		}
		writeFile(filepath.Join(pkg, pkg+"_gen.go"), g.File)
		conns = append(conns, gen.HarnessConn{
			Pkg: pkg, Name: fc.name, Kind: "one2many",
			N: 1, Rounds: diffRounds, Seed: diffSeed, Funcs: true,
		})
	}
	writeFile("main.go", gen.EmitHarnessMain("gentest", conns))

	harness := filepath.Join(dir, "harness")
	build := exec.Command(goBin, "build", "-o", harness, ".")
	build.Dir = dir
	build.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=-mod=mod")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building generated module: %v\n%s", err, out)
	}
	runCmd := exec.Command(harness)
	runCmd.Stderr = os.Stderr
	out, err := runCmd.Output()
	if err != nil {
		t.Fatalf("running generated harness: %v", err)
	}
	var generated []*gendrv.Result
	if err := json.Unmarshal(out, &generated); err != nil {
		t.Fatalf("decoding harness output: %v\n%s", err, out)
	}
	if len(generated) != len(conns) {
		t.Fatalf("harness returned %d results, want %d", len(generated), len(conns))
	}

	// Interpreted twin runs, in-process, through the identical driver.
	for i, c := range conns {
		c, genRes := c, generated[i]
		t.Run(c.Name, func(t *testing.T) {
			var backend reo.Backend
			if src := funcConnSrc(c.Name); src != "" {
				prog, err := reo.Compile(src,
					reo.WithFuncs(reo.Funcs{Filters: gendrv.TestFilters(), Transformers: gendrv.TestXforms()}))
				if err != nil {
					t.Fatal(err)
				}
				inst, err := prog.MustConnector(c.Name).Connect(nil, reo.WithSeed(diffSeed))
				if err != nil {
					t.Fatal(err)
				}
				backend = inst.Backend()
			} else {
				d, err := connlib.ByName(c.Name)
				if err != nil {
					t.Fatal(err)
				}
				inst, err := d.Connect(c.N, reo.WithSeed(diffSeed))
				if err != nil {
					t.Fatal(err)
				}
				backend = inst.Backend()
			}
			want, err := gendrv.Drive(backend, c.Kind, c.N, c.Rounds)
			if err != nil {
				t.Fatalf("interpreted drive: %v", err)
			}
			if !reflect.DeepEqual(want.Seqs, genRes.Seqs) {
				t.Errorf("per-port sequences differ\ninterpreted: %v\ngenerated:   %v\n%s", want.Seqs, genRes.Seqs, reproCmd(t, diffSeed))
			}
			if want.Steps != genRes.Steps {
				t.Errorf("steps differ: interpreted %d, generated %d\n%s", want.Steps, genRes.Steps, reproCmd(t, diffSeed))
			}
			if want.GuardEvals != genRes.GuardEvals {
				t.Errorf("guard evals differ: interpreted %d, generated %d\n%s", want.GuardEvals, genRes.GuardEvals, reproCmd(t, diffSeed))
			}
		})
	}
}

// TestGenDifferentialLaneInProcess pins the checked-in generated lane
// (internal/genlib/lane) against the interpreted engine without a
// subprocess: identical scalar ping-pong sequences, identical batched
// sequences (exercising the generated copy-fused path), identical
// Steps and GuardEvals.
func TestGenDifferentialLaneInProcess(t *testing.T) {
	const items = 40

	type run struct {
		seq              []string
		steps, guardEval int64
	}
	drive := func(b reo.Backend) run {
		t.Helper()
		var r run
		// Scalar phase: one value in flight at a time.
		for i := 0; i < items; i++ {
			if err := b.Send("a", i); err != nil {
				t.Fatal(err)
			}
			v, err := b.Recv("b")
			if err != nil {
				t.Fatal(err)
			}
			r.seq = append(r.seq, fmt.Sprint(v))
		}
		// Batched phase, ragged sizes included. The sender's registration
		// is confirmed through OpsRegistered before the receive registers,
		// so both backends see the identical arrival order (and therefore
		// identical dispatch-scan counts).
		for _, k := range []int{1, 3, 8} {
			vs := make([]any, k)
			for j := range vs {
				vs[j] = fmt.Sprintf("b%d-%d", k, j)
			}
			base := b.OpsRegistered()
			done := make(chan error, 1)
			go func() {
				_, err := b.SendBatch("a", vs)
				done <- err
			}()
			for b.OpsRegistered() < base+1 {
			}
			buf := make([]any, k)
			got, err := b.RecvBatch("b", buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			for _, v := range buf[:got] {
				r.seq = append(r.seq, fmt.Sprint(v))
			}
		}
		r.steps, r.guardEval = b.Steps(), b.GuardEvals()
		b.Close()
		return r
	}

	prog := reo.MustCompile(`Lane(a;b) = Fifo1(a;b)`)
	inst, err := prog.MustConnector("Lane").Connect(nil, reo.WithSeed(diffSeed))
	if err != nil {
		t.Fatal(err)
	}
	want := drive(inst.Backend())

	gi, err := lane.New(lane.WithSeed(diffSeed))
	if err != nil {
		t.Fatal(err)
	}
	got := drive(gi)

	if !reflect.DeepEqual(want.seq, got.seq) {
		t.Errorf("sequences differ\ninterpreted: %v\ngenerated:   %v\n%s", want.seq, got.seq, reproCmd(t, diffSeed))
	}
	if want.steps != got.steps {
		t.Errorf("steps differ: interpreted %d, generated %d\n%s", want.steps, got.steps, reproCmd(t, diffSeed))
	}
	if want.guardEval != got.guardEval {
		t.Errorf("guard evals differ: interpreted %d, generated %d\n%s", want.guardEval, got.guardEval, reproCmd(t, diffSeed))
	}
}

// funcConnSrc returns the source of a guard/transformer differential
// connector, or "" for connlib names.
func funcConnSrc(name string) string {
	for _, fc := range funcConns {
		if fc.name == name {
			return fc.src
		}
	}
	return ""
}

// lowerAlnum lowers a name to package-name-safe characters.
func lowerAlnum(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		}
	}
	return string(out)
}
