package gen_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	reo "repro"
	"repro/internal/gen"
	"repro/internal/gen/gendrv"
	"repro/internal/genlib/fabric"
	"repro/internal/genlib/msfabric"
	"repro/internal/genlib/xfab"
)

// The parametric differential suite: each checked-in parametric package
// (internal/genlib/{fabric,xfab,msfabric}) runs the same deterministic
// schedule as an interpreted twin built from the identical source with
// region partitioning, and must agree on every per-port value sequence,
// on Steps, and on GuardEvals. Unlike the fixed-N differential no
// subprocess is needed: parametric packages live on the genrun runtime
// inside this module. The suite deliberately includes an N outside the
// generator's probe lengths and with no fixed-N expansion checked in
// anywhere — the whole point of the parametric path.

// parametricSrc returns the checked-in .reo source next to genlib.
func parametricSrc(t *testing.T, name string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "genlib", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// TestGoldenParametric pins the parametric generator's output
// byte-for-byte against the checked-in genlib packages, exactly as
// TestGoldenLane pins the fixed-N lane.
func TestGoldenParametric(t *testing.T) {
	cases := []struct {
		reoFile, connector, pkg string
		funcs                   reo.Funcs
		templates               int
	}{
		{"fabric.reo", "Fabric", "fabric", reo.Funcs{}, 1},
		{"xfab.reo", "XFab", "xfab", reo.Funcs{Filters: gendrv.TestFilters(), Transformers: gendrv.TestXforms()}, 2},
		{"msfabric.reo", "MSFabric", "msfabric", reo.Funcs{}, 1},
	}
	for _, c := range cases {
		t.Run(c.pkg, func(t *testing.T) {
			g, err := gen.GenerateParametric(parametricSrc(t, c.reoFile), gen.Config{
				Connector: c.connector,
				Package:   c.pkg,
				Funcs:     c.funcs,
			})
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("..", "genlib", c.pkg, c.pkg+"_gen.go")
			golden, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(g.File, golden) {
				t.Errorf("generated output differs from %s; run `go generate ./internal/genlib` and commit the result", goldenPath)
			}
			if g.Templates != c.templates {
				t.Errorf("%s generated %d region templates, want %d", c.connector, g.Templates, c.templates)
			}
		})
	}
}

// interpretedFabric builds the interpreted twin of a genlib connector:
// same source, same funcs, same seed, region partitioning (the
// decomposition genrun always uses), so the two backends are
// structurally identical down to the per-region RNG streams.
func interpretedTwin(t *testing.T, reoFile, connector string, lengths map[string]int, funcs reo.Funcs, extra ...reo.ConnectOption) reo.Backend {
	t.Helper()
	prog, err := reo.Compile(parametricSrc(t, reoFile), reo.WithFuncs(funcs))
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]reo.ConnectOption{
		reo.WithSeed(diffSeed),
		reo.WithPartitioning(reo.PartitionRegions),
	}, extra...)
	inst, err := prog.MustConnector(connector).Connect(lengths, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Backend()
}

func compareResults(t *testing.T, want, got *gendrv.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Seqs, got.Seqs) {
		t.Errorf("per-port sequences differ\ninterpreted: %v\ngenerated:   %v\n%s", want.Seqs, got.Seqs, reproCmd(t, diffSeed))
	}
	if want.Steps != got.Steps {
		t.Errorf("steps differ: interpreted %d, generated %d\n%s", want.Steps, got.Steps, reproCmd(t, diffSeed))
	}
	if want.GuardEvals != got.GuardEvals {
		t.Errorf("guard evals differ: interpreted %d, generated %d\n%s", want.GuardEvals, got.GuardEvals, reproCmd(t, diffSeed))
	}
}

// TestParametricDifferentialFabric drives the parametric fabric at two
// array lengths through the shared gendrv schedule. N=5 lies outside the
// generator's probe lengths {2,3,4} and no fixed-N expansion of the
// connector exists anywhere in the repository: the templates must still
// bind, because region shapes are length-invariant.
func TestParametricDifferentialFabric(t *testing.T) {
	for _, n := range []int{4, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			gi, err := fabric.New(n, fabric.WithSeed(diffSeed))
			if err != nil {
				t.Fatal(err)
			}
			if got := gi.GeneratedRegions(); got != n {
				t.Errorf("GeneratedRegions() = %d, want %d (every lane bound)", got, n)
			}
			if got := gi.Regions(); got != n {
				t.Errorf("Regions() = %d, want %d", got, n)
			}
			genRes, err := gendrv.Drive(gi, "many2many", n, diffRounds)
			if err != nil {
				t.Fatalf("generated drive: %v", err)
			}
			twin := interpretedTwin(t, "fabric.reo", "Fabric", map[string]int{"a": n, "b": n}, reo.Funcs{})
			want, err := gendrv.Drive(twin, "many2many", n, diffRounds)
			if err != nil {
				t.Fatalf("interpreted drive: %v", err)
			}
			compareResults(t, want, genRes)
		})
	}
}

// TestParametricDifferentialFabricWorkers runs the same schedule with
// both backends on a two-worker pool. Scan interleaving under workers is
// scheduler-dependent, so GuardEvals is not comparable; the delivered
// sequences and the step count (two firings per item per lane, however
// scheduled) must still agree exactly.
func TestParametricDifferentialFabricWorkers(t *testing.T) {
	const n = 4
	gi, err := fabric.New(n, fabric.WithSeed(diffSeed), fabric.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := gi.Workers(); got != 2 {
		t.Errorf("Workers() = %d, want 2", got)
	}
	if got := gi.GeneratedRegions(); got != n {
		t.Errorf("GeneratedRegions() = %d, want %d", got, n)
	}
	genRes, err := gendrv.Drive(gi, "many2many", n, diffRounds)
	if err != nil {
		t.Fatalf("generated drive: %v", err)
	}
	twin := interpretedTwin(t, "fabric.reo", "Fabric", map[string]int{"a": n, "b": n},
		reo.Funcs{}, reo.WithWorkers(2))
	want, err := gendrv.Drive(twin, "many2many", n, diffRounds)
	if err != nil {
		t.Fatalf("interpreted drive: %v", err)
	}
	if !reflect.DeepEqual(want.Seqs, genRes.Seqs) {
		t.Errorf("per-port sequences differ\ninterpreted: %v\ngenerated:   %v\n%s", want.Seqs, genRes.Seqs, reproCmd(t, diffSeed))
	}
	if want.Steps != genRes.Steps {
		t.Errorf("steps differ: interpreted %d, generated %d\n%s", want.Steps, genRes.Steps, reproCmd(t, diffSeed))
	}
}

// driveXFab is the xfab schedule: receivers first (the filter drops odd
// values, so each receiver's batch ends short and is released by the
// close), then senders, sequenced through OpsRegistered exactly like
// gendrv.Drive. Closing only after every sender completed makes the
// post-close partial counts part of the deterministic observable
// behavior.
func driveXFab(t *testing.T, b gendrv.Backend, n, rounds int) *gendrv.Result {
	t.Helper()
	res := &gendrv.Result{Seqs: make(map[string][]string)}
	var mu sync.Mutex
	record := func(port string, vals []any) {
		mu.Lock()
		defer mu.Unlock()
		seq := make([]string, len(vals))
		for i, v := range vals {
			seq[i] = fmt.Sprint(v)
		}
		res.Seqs[port] = seq
	}
	spinUntil := func(k int64) {
		for b.OpsRegistered() < k {
		}
	}
	var recvWG, sendWG sync.WaitGroup
	for _, port := range b.Ports("b") {
		buf := make([]any, rounds)
		base := b.OpsRegistered()
		recvWG.Add(1)
		go func(port string, buf []any) {
			defer recvWG.Done()
			got, _ := b.RecvBatch(port, buf) // short on close: expected
			record(port, buf[:got])
		}(port, buf)
		spinUntil(base + 1)
	}
	for i, port := range b.Ports("a") {
		vs := make([]any, rounds)
		for r := range vs {
			vs[r] = gendrv.Tag(i, r)
		}
		base := b.OpsRegistered()
		sendWG.Add(1)
		go func(port string, vs []any) {
			defer sendWG.Done()
			if _, err := b.SendBatch(port, vs); err != nil {
				t.Errorf("send %s: %v", port, err)
				return
			}
			record(port, vs)
		}(port, vs)
		spinUntil(base + 1)
	}
	sendWG.Wait()
	res.Steps = b.Steps()
	res.GuardEvals = b.GuardEvals()
	b.Close()
	recvWG.Wait()
	return res
}

// TestParametricDifferentialXFab exercises generated guards and
// transformations on both sides of real SPSC links: the region analysis
// cuts xfab's middle buffer, so every lane is a generated Transformer
// region linked to a generated Filter region.
func TestParametricDifferentialXFab(t *testing.T) {
	const n = 4
	funcs := reo.Funcs{Filters: gendrv.TestFilters(), Transformers: gendrv.TestXforms()}
	gi, err := xfab.New(n, xfab.WithSeed(diffSeed), xfab.WithFuncs(funcs))
	if err != nil {
		t.Fatal(err)
	}
	// Two generated regions per lane (transformer and filter side).
	if got := gi.GeneratedRegions(); got != 2*n {
		t.Errorf("GeneratedRegions() = %d, want %d", got, 2*n)
	}
	genRes := driveXFab(t, gi, n, diffRounds)
	twin := interpretedTwin(t, "xfab.reo", "XFab", map[string]int{"a": n, "b": n}, funcs)
	want := driveXFab(t, twin, n, diffRounds)
	compareResults(t, want, genRes)
}

// driveMSFabric scatters one batch per master outlet and gathers one per
// slave outlet — the NPB scatter/gather round structure, sequenced
// deterministically.
func driveMSFabric(t *testing.T, b gendrv.Backend, rounds int) *gendrv.Result {
	t.Helper()
	res := &gendrv.Result{Seqs: make(map[string][]string)}
	var mu sync.Mutex
	record := func(port string, vals []any) {
		mu.Lock()
		defer mu.Unlock()
		seq := make([]string, len(vals))
		for i, v := range vals {
			seq[i] = fmt.Sprint(v)
		}
		res.Seqs[port] = seq
	}
	spinUntil := func(k int64) {
		for b.OpsRegistered() < k {
		}
	}
	var wg sync.WaitGroup
	recv := func(param string) {
		for _, port := range b.Ports(param) {
			buf := make([]any, rounds)
			base := b.OpsRegistered()
			wg.Add(1)
			go func(port string, buf []any) {
				defer wg.Done()
				got, err := b.RecvBatch(port, buf)
				if err != nil {
					t.Errorf("recv %s: %v", port, err)
				}
				record(port, buf[:got])
			}(port, buf)
			spinUntil(base + 1)
		}
	}
	send := func(param string, tagBase int) {
		for i, port := range b.Ports(param) {
			vs := make([]any, rounds)
			for r := range vs {
				vs[r] = gendrv.Tag(tagBase+i, r)
			}
			base := b.OpsRegistered()
			wg.Add(1)
			go func(port string, vs []any) {
				defer wg.Done()
				if _, err := b.SendBatch(port, vs); err != nil {
					t.Errorf("send %s: %v", port, err)
					return
				}
				record(port, vs)
			}(port, vs)
			spinUntil(base + 1)
		}
	}
	recv("si")
	recv("mi")
	send("mo", 0)
	send("so", 100)
	wg.Wait()
	res.Steps = b.Steps()
	res.GuardEvals = b.GuardEvals()
	b.Close()
	return res
}

// TestParametricDifferentialMSFabric pins the NPB fabric shape the
// generated backend runs the benchmark programs on.
func TestParametricDifferentialMSFabric(t *testing.T) {
	const n = 4
	gi, err := msfabric.New(n, msfabric.WithSeed(diffSeed))
	if err != nil {
		t.Fatal(err)
	}
	if got := gi.GeneratedRegions(); got != 2*n {
		t.Errorf("GeneratedRegions() = %d, want %d (both lane directions bound)", got, 2*n)
	}
	genRes := driveMSFabric(t, gi, diffRounds)
	lengths := map[string]int{"mo": n, "so": n, "si": n, "mi": n}
	twin := interpretedTwin(t, "msfabric.reo", "MSFabric", lengths, reo.Funcs{})
	want := driveMSFabric(t, twin, diffRounds)
	compareResults(t, want, genRes)
}

// TestParametricBatchEdgeCases mirrors TestBatchedDifferential's edge
// cases on the generated backend: ragged batch tails must produce
// identical sequences and counters, and a receive batch wider than the
// delivered stream must return the partial count on close — identically
// on both backends.
func TestParametricBatchEdgeCases(t *testing.T) {
	type run struct {
		seq              []string
		steps, guardEval int64
	}
	// Ragged-tail parity, modeled on the lane in-process differential:
	// sender registration is confirmed before the receive registers, so
	// both backends see the same arrival order.
	ragged := func(b gendrv.Backend) run {
		t.Helper()
		var r run
		a, out := b.Ports("a")[0], b.Ports("b")[0]
		for _, k := range []int{1, 3, 8} {
			vs := make([]any, k)
			for j := range vs {
				vs[j] = fmt.Sprintf("b%d-%d", k, j)
			}
			base := b.OpsRegistered()
			done := make(chan error, 1)
			go func() {
				_, err := b.SendBatch(a, vs)
				done <- err
			}()
			for b.OpsRegistered() < base+1 {
			}
			buf := make([]any, k)
			got, err := b.RecvBatch(out, buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			for _, v := range buf[:got] {
				r.seq = append(r.seq, fmt.Sprint(v))
			}
		}
		r.steps, r.guardEval = b.Steps(), b.GuardEvals()
		b.Close()
		return r
	}
	t.Run("ragged", func(t *testing.T) {
		gi, err := fabric.New(2, fabric.WithSeed(diffSeed))
		if err != nil {
			t.Fatal(err)
		}
		got := ragged(gi)
		twin := interpretedTwin(t, "fabric.reo", "Fabric", map[string]int{"a": 2, "b": 2}, reo.Funcs{})
		want := ragged(twin)
		if !reflect.DeepEqual(want.seq, got.seq) {
			t.Errorf("sequences differ\ninterpreted: %v\ngenerated:   %v\n%s", want.seq, got.seq, reproCmd(t, diffSeed))
		}
		if want.steps != got.steps {
			t.Errorf("steps differ: interpreted %d, generated %d\n%s", want.steps, got.steps, reproCmd(t, diffSeed))
		}
		if want.guardEval != got.guardEval {
			t.Errorf("guard evals differ: interpreted %d, generated %d\n%s", want.guardEval, got.guardEval, reproCmd(t, diffSeed))
		}
	})

	// Partial count on close: a receive batch of 5 sees only 2 values
	// before the connector closes; both backends must return count 2 with
	// the same close error.
	partial := func(b gendrv.Backend) (int, []string, string) {
		t.Helper()
		a, out := b.Ports("a")[0], b.Ports("b")[0]
		type recvRes struct {
			got int
			err error
		}
		buf := make([]any, 5)
		base := b.OpsRegistered()
		done := make(chan recvRes, 1)
		go func() {
			got, err := b.RecvBatch(out, buf)
			done <- recvRes{got, err}
		}()
		for b.OpsRegistered() < base+1 {
		}
		if _, err := b.SendBatch(a, []any{"x0", "x1"}); err != nil {
			t.Fatal(err)
		}
		// Both sent values are delivered once SendBatch returned (the
		// second item cannot be consumed before the first reached the
		// receive batch); the close releases the short receive.
		b.Close()
		r := <-done
		var seq []string
		for _, v := range buf[:r.got] {
			seq = append(seq, fmt.Sprint(v))
		}
		errStr := ""
		if r.err != nil {
			errStr = r.err.Error()
		}
		return r.got, seq, errStr
	}
	t.Run("partial-on-close", func(t *testing.T) {
		gi, err := fabric.New(2, fabric.WithSeed(diffSeed))
		if err != nil {
			t.Fatal(err)
		}
		gotN, gotSeq, gotErr := partial(gi)
		twin := interpretedTwin(t, "fabric.reo", "Fabric", map[string]int{"a": 2, "b": 2}, reo.Funcs{})
		wantN, wantSeq, wantErr := partial(twin)
		if gotN != 2 || wantN != 2 {
			t.Errorf("partial counts: interpreted %d, generated %d, want 2 on both", wantN, gotN)
		}
		if !reflect.DeepEqual(wantSeq, gotSeq) {
			t.Errorf("partial sequences differ\ninterpreted: %v\ngenerated:   %v\n%s", wantSeq, gotSeq, reproCmd(t, diffSeed))
		}
		if gotErr == "" || gotErr != wantErr {
			t.Errorf("close errors differ: interpreted %q, generated %q", wantErr, gotErr)
		}
	})
}
