package gen

// runtimeSrc is the backend-independent runtime appended verbatim to
// every generated package: pending-operation bookkeeping, the dispatch
// loop (which calls the specialized tryEnable/fire/fuse), the blocking
// port API, and the statistics surface. It deliberately mirrors the
// interpreted engine's structure — one mutex per instance, pooled
// batched operations with a one-slot inline fast path, indexed first
// dispatch after each registration, seeded choice among enabled
// candidates, and the τ-burst livelock guard — so the two backends are
// observationally identical and differ only in dispatch cost.
const runtimeSrc = `// ErrClosed is returned by operations on a closed connector.
var ErrClosed = errors.New(connectorName + ": connector closed")

// ErrPortBusy is returned when a second operation is attempted on a
// port that already has one pending. Ports are single-owner.
var ErrPortBusy = errors.New(connectorName + ": port already has a pending operation")

// ErrLivelock is returned when the connector fires an excessive burst
// of internal steps without completing any boundary operation.
var ErrLivelock = errors.New(connectorName + ": internal-step livelock")

// op is one pending port operation: a batch of items with a cursor.
// Scalar Send/Recv alias the one-slot inline array, so the pooled
// steady state allocates nothing.
type op struct {
	vals   []any
	cur    int
	inline [1]any
	err    error
	done   chan struct{}
}

func (o *op) remaining() int { return len(o.vals) - o.cur }

// pickRNG is the nondeterministic-choice stream: the same xorshift64*
// generator (with splitmix64 seeding) as the interpreted engine, so the
// two backends make identical choice sequences for identical seeds.
type pickRNG struct{ s uint64 }

func (r *pickRNG) reseed(seed int64) {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	r.s = z
}

func (r *pickRNG) intn(n int) int {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	x := r.s * 0x2545F4914F6CDD1D
	return int((x >> 32) % uint64(n))
}

// config collects instance options.
type config struct {
	seed    int64
	workers int
	filters map[string]func(any) bool
	xforms  map[string]func(any) any
}

// Option configures New.
type Option func(*config)

// WithSeed fixes the seed resolving nondeterministic transition choice,
// for reproducible runs (the interpreted engine's WithSeed).
func WithSeed(s int64) Option { return func(c *config) { c.seed = s } }

// WithWorkers records the requested worker-pool size for interface
// parity with the interpreted engine. The generated backend always
// fires on the operating goroutine under one lock — dispatch is
// compiled, not scheduled — so the value is reported by Workers() but
// does not change execution.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithFuncs registers the data functions the connector's guards and
// transformations reference by name. New fails if a referenced name is
// missing.
func WithFuncs(filters map[string]func(any) bool, xforms map[string]func(any) any) Option {
	return func(c *config) { c.filters, c.xforms = filters, xforms }
}

// Instance is a live connector instance. All methods are safe for
// concurrent use; port operations block until a transition fires, as
// with the interpreted engine.
type Instance struct {
	mu      sync.Mutex
	state   int32
	cells   [numCells]any
	pend    [numPorts]*op
	enabled []int32
	rng     pickRNG
	closed  bool
	broken  error
	workers int
	filters [numFilters]func(any) bool
	xforms  [numXforms]func(any) any
	opPool  sync.Pool

	steps      atomic.Int64
	guardEvals atomic.Int64
	registered atomic.Int64
}

// New builds an instance in the connector's initial configuration.
func New(opts ...Option) (*Instance, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	m := &Instance{
		state:   initialState,
		cells:   initialCells(),
		workers: cfg.workers,
	}
	m.rng.reseed(cfg.seed)
	for i, name := range filterNames {
		f := cfg.filters[name]
		if f == nil {
			return nil, fmt.Errorf("%s: no registered filter %q (pass WithFuncs)", connectorName, name)
		}
		m.filters[i] = f
	}
	for i, name := range xformNames {
		f := cfg.xforms[name]
		if f == nil {
			return nil, fmt.Errorf("%s: no registered transformer %q (pass WithFuncs)", connectorName, name)
		}
		m.xforms[i] = f
	}
	return m, nil
}

// Outport is a task's sending end of a boundary vertex.
type Outport struct {
	m    *Instance
	p    int32
	name string
}

// Inport is a task's receiving end of a boundary vertex.
type Inport struct {
	m    *Instance
	p    int32
	name string
}

// Outport returns the sending handle of the named boundary vertex, or
// nil if the name is unknown or not a source.
func (m *Instance) Outport(port string) *Outport {
	i, ok := portIndex[port]
	if !ok || !portIsSource[i] {
		return nil
	}
	return &Outport{m: m, p: i, name: port}
}

// Inport returns the receiving handle of the named boundary vertex, or
// nil if the name is unknown or not a sink.
func (m *Instance) Inport(port string) *Inport {
	i, ok := portIndex[port]
	if !ok || portIsSource[i] {
		return nil
	}
	return &Inport{m: m, p: i, name: port}
}

// Ports returns the boundary vertex names bound to a connector
// parameter, in array order.
func (m *Instance) Ports(param string) []string {
	return append([]string(nil), paramPorts[param]...)
}

// Name returns the vertex name the port is linked to.
func (o *Outport) Name() string { return o.name }

// Name returns the vertex name the port is linked to.
func (i *Inport) Name() string { return i.name }

// Send offers v to the connector and blocks until a transition accepts
// it (or the connector closes).
func (o *Outport) Send(v any) error {
	x := o.m.getOp()
	x.inline[0] = v
	x.vals = x.inline[:1]
	_, err := o.m.runOp(o.p, x)
	return err
}

// SendBatch offers every item of vs in order as one registered
// operation: items are accepted one transition firing at a time, under
// a single registration and completion handshake. The connector reads
// vs in place; do not mutate it until SendBatch returns.
func (o *Outport) SendBatch(vs []any) error {
	if len(vs) == 0 {
		return nil
	}
	x := o.m.getOp()
	x.vals = vs
	_, err := o.m.runOp(o.p, x)
	return err
}

// Recv blocks until the connector delivers a value.
func (i *Inport) Recv() (any, error) {
	x := i.m.getOp()
	x.vals = x.inline[:1]
	if err := i.m.register(i.p, x); err != nil {
		i.m.putOp(x)
		return nil, err
	}
	<-x.done
	v, err := x.inline[0], x.err
	i.m.putOp(x)
	return v, err
}

// RecvBatch blocks until a value has been delivered into every slot of
// buf, returning how many leading slots hold delivered values (len(buf)
// on nil error, possibly fewer when the connector closed mid-batch).
func (i *Inport) RecvBatch(buf []any) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	x := i.m.getOp()
	x.vals = buf
	return i.m.runOp(i.p, x)
}

// Send offers v on the named boundary source vertex (Backend form).
func (m *Instance) Send(port string, v any) error {
	o := m.Outport(port)
	if o == nil {
		return fmt.Errorf("%s: unknown or non-source vertex %q", connectorName, port)
	}
	return o.Send(v)
}

// Recv receives from the named boundary sink vertex (Backend form).
func (m *Instance) Recv(port string) (any, error) {
	i := m.Inport(port)
	if i == nil {
		return nil, fmt.Errorf("%s: unknown or non-sink vertex %q", connectorName, port)
	}
	return i.Recv()
}

// SendBatch sends a batch on the named vertex, returning the number of
// items accepted (Backend form).
func (m *Instance) SendBatch(port string, vs []any) (int, error) {
	o := m.Outport(port)
	if o == nil {
		return 0, fmt.Errorf("%s: unknown or non-source vertex %q", connectorName, port)
	}
	if len(vs) == 0 {
		return 0, nil
	}
	x := m.getOp()
	x.vals = vs
	return m.runOp(o.p, x)
}

// RecvBatch receives a batch on the named vertex (Backend form).
func (m *Instance) RecvBatch(port string, buf []any) (int, error) {
	i := m.Inport(port)
	if i == nil {
		return 0, fmt.Errorf("%s: unknown or non-sink vertex %q", connectorName, port)
	}
	return i.RecvBatch(buf)
}

func (m *Instance) getOp() *op {
	if x := m.opPool.Get(); x != nil {
		return x.(*op)
	}
	return &op{done: make(chan struct{}, 1)}
}

// putOp recycles a completed op, dropping value references so pooled
// ops never pin user payloads between operations.
func (m *Instance) putOp(o *op) {
	o.vals, o.cur, o.err = nil, 0, nil
	o.inline[0] = nil
	m.opPool.Put(o)
}

// runOp drives a prepared op through register/park/complete and
// recycles it, returning the number of items moved.
func (m *Instance) runOp(p int32, o *op) (int, error) {
	if err := m.register(p, o); err != nil {
		m.putOp(o)
		return 0, err
	}
	<-o.done
	n, err := o.cur, o.err
	m.putOp(o)
	return n, err
}

// register pends the operation and runs the fire loop to quiescence.
func (m *Instance) register(p int32, o *op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.broken != nil {
		return m.broken
	}
	if m.pend[p] != nil {
		return ErrPortBusy
	}
	m.pend[p] = o
	m.registered.Add(1)
	m.fireLoop(p)
	return nil
}

// fireLoop fires enabled transitions until quiescence, with the
// interpreted engine's dispatch discipline: the first iteration
// considers only the transitions the fresh operation on trigger can
// newly enable (the static byPort index) plus internal transitions;
// after a fire the full state scans. Choice among multiple enabled
// candidates is resolved by the seeded RNG over the same candidate
// ordering the interpreted engine produces.
func (m *Instance) fireLoop(trigger int32) {
	if m.broken != nil {
		return
	}
	indexed := true
	tau := 0
	for {
		m.enabled = m.enabled[:0]
		if indexed {
			indexed = false
			byp := byPort[int(m.state)*numPorts+int(trigger)]
			ts := taus[m.state]
			i, j := 0, 0
			for i < len(byp) || j < len(ts) {
				var next int32
				if j >= len(ts) || (i < len(byp) && byp[i] < ts[j]) {
					next = byp[i]
					i++
				} else {
					next = ts[j]
					j++
				}
				m.tryEnable(next)
			}
		} else {
			for _, t := range stateTrans[m.state] {
				m.tryEnable(t)
			}
		}
		if len(m.enabled) == 0 {
			return
		}
		pick := 0
		if len(m.enabled) > 1 {
			pick = m.rng.intn(len(m.enabled))
		}
		t := m.enabled[pick]
		if m.fire(t) {
			tau = 0
		} else {
			tau++
			if tau > maxTauBurst {
				m.break_(ErrLivelock)
				return
			}
		}
		if transFuse[t] {
			m.fuse(t)
		}
	}
}

// advance moves the pending operation on port p one item forward,
// completing it when its batch is exhausted.
func (m *Instance) advance(p int32, o *op) {
	o.cur++
	if o.cur == len(o.vals) {
		m.pend[p] = nil
		o.done <- struct{}{}
	}
}

// bump moves a pending operation k items forward after a fused burst.
func (m *Instance) bump(p int32, o *op, k int) {
	o.cur += k
	if o.cur == len(o.vals) {
		m.pend[p] = nil
		o.done <- struct{}{}
	}
}

// break_ marks the instance broken and fails all pending operations.
func (m *Instance) break_(err error) {
	m.broken = err
	for p, o := range m.pend {
		if o == nil {
			continue
		}
		o.err = err
		m.pend[p] = nil
		o.done <- struct{}{}
	}
}

// Close shuts the connector down; all pending and future operations
// fail with ErrClosed.
func (m *Instance) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	for p, o := range m.pend {
		if o == nil {
			continue
		}
		o.err = ErrClosed
		m.pend[p] = nil
		o.done <- struct{}{}
	}
	return nil
}

// Steps returns the number of global execution steps fired.
func (m *Instance) Steps() int64 { return m.steps.Load() }

// GuardEvals returns how many candidate transitions were considered by
// dispatch (sync set covered), the engine's per-step matching work.
func (m *Instance) GuardEvals() int64 { return m.guardEvals.Load() }

// OpsRegistered returns how many port operations have ever been
// accepted for pending (monotonic).
func (m *Instance) OpsRegistered() int64 { return m.registered.Load() }

// Workers reports the worker-pool size requested with WithWorkers. The
// generated backend executes synchronously regardless; see WithWorkers.
func (m *Instance) Workers() int { return m.workers }

// States and Transitions report the compiled automaton's size.
func (m *Instance) States() int { return numStates }

// Transitions reports the number of compiled joint transitions.
func (m *Instance) Transitions() int { return numTrans }
`
