package gen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ca"
	"repro/internal/compile"
	"repro/internal/parser"
	"repro/internal/prim"
	"repro/internal/sema"
)

// Config parametrizes one generation run.
type Config struct {
	// Connector is the definition name to compile.
	Connector string
	// Package is the emitted package name (default: lower-cased
	// connector name).
	Package string
	// N is the array length applied to every array parameter; Lengths
	// overrides it per parameter when non-nil.
	N       int
	Lengths map[string]int
	// Funcs supplies registered data functions for Filter.* and
	// Transformer.* primitives. Generation only needs them to build the
	// automata; emitted code references them by name and resolves them
	// again at New() time from the generated package's own registry.
	Funcs compile.Funcs
	// MaxStates bounds ahead-of-time expansion (default 4096), the
	// static analogue of the engine's AOT limit.
	MaxStates int
}

// Generated is the result of one generation run.
type Generated struct {
	// File is the gofmt-formatted source of the emitted package, laid
	// out as a single <Package>_gen.go file.
	File []byte
	// Package and Connector echo the configuration.
	Package   string
	Connector string
	// States and Transitions count the expanded composite space (for
	// the parametric path: totals across the emitted region templates).
	States, Transitions int
	// Templates counts the distinct region shapes of a parametric run
	// (zero for the fixed-N path).
	Templates int
}

// model is the fully resolved form the emitter works from.
type model struct {
	cfg       Config
	universe  *ca.Universe
	auts      []*ca.Automaton
	ports     []portInfo // compact boundary ports, ascending ca.PortID
	portIdx   map[ca.PortID]int32
	params    []paramInfo
	cells     []any // initial values, index = ca.CellID
	states    []*stateInfo
	trans     []*transInfo
	filters   []string // referenced filter names, sorted
	filterIdx map[string]int
	xforms    []string // referenced transformer names, sorted
	xformIdx  map[string]int
}

type portInfo struct {
	name   string
	source bool
}

type paramInfo struct {
	name  string
	ports []int32 // compact indices, array order
}

type stateInfo struct {
	vec   []int32
	trans []int32 // global transition ids, joint order
	taus  []int32 // subset with no boundary port in sync
	// byPort[compact port] lists the transitions whose sync set contains
	// that boundary port (ascending) — the static form of the engine's
	// per-state dispatch index.
	byPort map[int32][]int32
}

type transInfo struct {
	id    int32
	joint ca.Joint
	// syncPorts are the boundary ports of the sync set, compact indices
	// ascending — the ports that must hold pending operations.
	syncPorts []int32
	guards    []guardInfo
	outs      []outInfo
	target    int32
	flow      bool
	label     string // diagnostic comment: port-set + effects
}

type guardInfo struct {
	src    ca.Loc
	filter int  // index into model.filters
	negate bool // guard name was "!name"
	// xforms are the transformations folded into the predicate by
	// simplification, outermost first (indices into model.xforms).
	xforms []int
}

type outInfo struct {
	deliver bool
	port    int32 // compact sink port (deliver)
	cell    ca.CellID
	src     ca.Loc
	// xforms is the action's transformation composition, outermost
	// first (indices into model.xforms); empty for identity moves.
	xforms []int
}

// Generate compiles one connector of src and emits its static package.
func Generate(src string, cfg Config) (*Generated, error) {
	m, err := buildModel(src, cfg)
	if err != nil {
		return nil, err
	}
	file, err := m.emit()
	if err != nil {
		return nil, err
	}
	return &Generated{
		File:        file,
		Package:     m.cfg.Package,
		Connector:   m.cfg.Connector,
		States:      len(m.states),
		Transitions: len(m.trans),
	}, nil
}

func buildModel(src string, cfg Config) (*model, error) {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 4096
	}
	if cfg.N <= 0 {
		cfg.N = 3
	}
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	tmpl, err := compile.Build(info, cfg.Connector, cfg.Funcs, compile.Options{Simplify: true})
	if err != nil {
		return nil, err
	}
	lengths := cfg.Lengths
	if lengths == nil {
		lengths = make(map[string]int)
		for _, p := range tmpl.ArrayParams() {
			lengths[p] = cfg.N
		}
	}
	asm, err := tmpl.Instantiate(lengths)
	if err != nil {
		return nil, err
	}
	if cfg.Package == "" {
		cfg.Package = sanitizePackage(cfg.Connector)
	}
	if err := checkPackageName(cfg.Package); err != nil {
		return nil, err
	}

	m := &model{
		cfg:       cfg,
		universe:  asm.U,
		auts:      asm.Auts,
		portIdx:   make(map[ca.PortID]int32),
		filterIdx: make(map[string]int),
		xformIdx:  make(map[string]int),
		cells:     asm.U.InitialCells(),
	}
	for _, a := range m.auts {
		a.PadToUniverse()
	}
	for p := 0; p < asm.U.NumPorts(); p++ {
		id := ca.PortID(p)
		dir := asm.U.DirOf(id)
		if dir == ca.DirNone {
			continue
		}
		m.portIdx[id] = int32(len(m.ports))
		m.ports = append(m.ports, portInfo{name: asm.U.Name(id), source: dir == ca.DirSource})
	}
	if len(m.ports) == 0 {
		return nil, fmt.Errorf("gen: connector %q has no boundary ports", cfg.Connector)
	}
	// Parameters in sorted name order (Assembly's maps are unordered);
	// the vertex lists themselves keep array order.
	addParams := func(side map[string][]ca.PortID) error {
		for name, ids := range side {
			var idxs []int32
			for _, id := range ids {
				ci, ok := m.portIdx[id]
				if !ok {
					return fmt.Errorf("gen: parameter %q is bound to non-boundary port %q", name, asm.U.Name(id))
				}
				idxs = append(idxs, ci)
			}
			m.params = append(m.params, paramInfo{name: name, ports: idxs})
		}
		return nil
	}
	if err := addParams(asm.Tails); err != nil {
		return nil, err
	}
	if err := addParams(asm.Heads); err != nil {
		return nil, err
	}
	sort.Slice(m.params, func(i, j int) bool { return m.params[i].name < m.params[j].name })

	if err := m.expand(); err != nil {
		return nil, err
	}
	return m, nil
}

// expand performs the ahead-of-time breadth-first expansion of the
// reachable composite state space — the generation-time counterpart of
// the engine's AOT mode — and resolves every joint transition.
func (m *model) expand() error {
	initial := make([]int32, len(m.auts))
	for i, a := range m.auts {
		initial[i] = a.Initial
	}
	key := func(vec []int32) string {
		var sb strings.Builder
		for _, s := range vec {
			fmt.Fprintf(&sb, "%d,", s)
		}
		return sb.String()
	}
	ids := map[string]int32{key(initial): 0}
	m.states = []*stateInfo{{vec: initial}}
	for si := 0; si < len(m.states); si++ {
		st := m.states[si]
		st.byPort = make(map[int32][]int32)
		joints := ca.ExpandJoint(m.auts, st.vec, ca.ExpandConnected)
		for _, j := range joints {
			tid := int32(len(m.trans))
			t := &transInfo{id: tid, joint: j}
			if err := m.resolveTrans(t); err != nil {
				return err
			}
			tk := key(j.Targets)
			target, ok := ids[tk]
			if !ok {
				target = int32(len(m.states))
				if int(target) >= m.cfg.MaxStates {
					return fmt.Errorf("gen: %w: ahead-of-time expansion exceeds %d composite states (the interpreted JIT engine has no such limit)", ca.ErrTooLarge, m.cfg.MaxStates)
				}
				ids[tk] = target
				m.states = append(m.states, &stateInfo{vec: append([]int32(nil), j.Targets...)})
			}
			t.target = target
			t.flow = len(t.guards) == 0 && t.cellWrites() == 0 && target == int32(si)
			m.trans = append(m.trans, t)
			st.trans = append(st.trans, tid)
			if len(t.syncPorts) == 0 {
				st.taus = append(st.taus, tid)
			}
			for _, p := range t.syncPorts {
				st.byPort[p] = append(st.byPort[p], tid)
			}
		}
	}
	return nil
}

func (t *transInfo) cellWrites() int {
	n := 0
	for _, o := range t.outs {
		if !o.deliver {
			n++
		}
	}
	return n
}

// resolveTrans classifies one joint transition's sync set, guards, and
// external effects, mirroring ca.CompilePlan's port classification.
func (m *model) resolveTrans(t *transInfo) error {
	t.joint.Sync.ForEach(func(p ca.PortID) {
		if ci, ok := m.portIdx[p]; ok {
			t.syncPorts = append(t.syncPorts, ci)
		}
	})
	for gi := range t.joint.Guards {
		g := &t.joint.Guards[gi]
		name, negate := g.Name, false
		if strings.HasPrefix(name, "!") {
			name, negate = name[1:], true
		}
		if name == "" {
			return fmt.Errorf("gen: transition guard without a registered filter name cannot be generated")
		}
		xfs, err := m.xformChain(g.XformNames, len(g.XformNames) > 0)
		if err != nil {
			return err
		}
		t.guards = append(t.guards, guardInfo{src: g.In, filter: m.filterID(name), negate: negate, xforms: xfs})
	}
	for ai := range t.joint.Acts {
		act := &t.joint.Acts[ai]
		switch act.Dst.Kind {
		case ca.LocPort:
			ci, boundary := m.portIdx[act.Dst.Port]
			if !boundary || m.ports[ci].source {
				continue // hidden (or source) destination: feeds chains only
			}
			inSync := false
			for _, sp := range t.syncPorts {
				if sp == ci {
					inSync = true
				}
			}
			if !inSync {
				return fmt.Errorf("gen: delivery to sink %q outside the transition's synchronization set", m.ports[ci].name)
			}
			xfs, err := m.actXforms(act)
			if err != nil {
				return err
			}
			t.outs = append(t.outs, outInfo{deliver: true, port: ci, src: act.Src, xforms: xfs})
		case ca.LocCell:
			xfs, err := m.actXforms(act)
			if err != nil {
				return err
			}
			t.outs = append(t.outs, outInfo{cell: act.Dst.Cell, src: act.Src, xforms: xfs})
		case ca.LocConst:
			return fmt.Errorf("gen: constant as action destination")
		}
	}
	t.label = m.labelOf(t)
	return nil
}

// filterID interns a filter name; table order is first-reference order,
// which is deterministic (joint transitions enumerate deterministically).
func (m *model) filterID(name string) int {
	if id, ok := m.filterIdx[name]; ok {
		return id
	}
	id := len(m.filters)
	m.filters = append(m.filters, name)
	m.filterIdx[name] = id
	return id
}

// xformChain interns a transformation name chain (outermost first).
// anon reports the chain should exist: a non-empty chain containing an
// empty name, or an expected-but-missing chain, marks a transformation
// composed from an anonymous function, which cannot be re-emitted.
func (m *model) xformChain(names []string, anon bool) ([]int, error) {
	if len(names) == 0 {
		if anon {
			return nil, fmt.Errorf("gen: transformation without a registered name cannot be generated")
		}
		return nil, nil
	}
	ids := make([]int, 0, len(names))
	for _, name := range names {
		if name == "" {
			return nil, fmt.Errorf("gen: transformation without a registered name cannot be generated")
		}
		id, ok := m.xformIdx[name]
		if !ok {
			id = len(m.xforms)
			m.xforms = append(m.xforms, name)
			m.xformIdx[name] = id
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// actXforms interns an action's transformation composition.
func (m *model) actXforms(act *ca.Action) ([]int, error) {
	return m.xformChain(act.XformNames, act.Xform != nil)
}

// labelOf renders a transition's port set and effects for the comment
// the emitter attaches to each specialized case.
func (m *model) labelOf(t *transInfo) string {
	var names []string
	for _, ci := range t.syncPorts {
		names = append(names, m.ports[ci].name)
	}
	lbl := "{" + strings.Join(names, ",") + "}"
	for _, g := range t.guards {
		neg := ""
		if g.negate {
			neg = "!"
		}
		lbl += fmt.Sprintf(" [%s%s]", neg, m.filters[g.filter])
	}
	nd, nc := 0, 0
	for _, o := range t.outs {
		if o.deliver {
			nd++
		} else {
			nc++
		}
	}
	if nd > 0 {
		lbl += fmt.Sprintf(" %d deliver", nd)
	}
	if nc > 0 {
		lbl += fmt.Sprintf(" %d cell", nc)
	}
	if t.flow {
		lbl += " flow"
	}
	return lbl
}

// constExpr renders a constant as Go source. The DSL only produces nil
// and token constants (Fifo1Full seeds, spout emissions); plain scalar
// literals are supported for hand-assembled automata.
func constExpr(v any) (string, error) {
	switch v := v.(type) {
	case nil:
		return "nil", nil
	case prim.Token:
		return "token{}", nil
	case bool, int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, float32, float64, string:
		return fmt.Sprintf("%#v", v), nil
	}
	return "", fmt.Errorf("gen: constant of type %T cannot be rendered as Go source", v)
}

// sanitizePackage derives a legal lower-case package name.
func sanitizePackage(name string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(name) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
			sb.WriteRune(r)
		}
	}
	s := sb.String()
	if s == "" || s[0] >= '0' && s[0] <= '9' {
		s = "conn" + s
	}
	return s
}

func checkPackageName(name string) error {
	if name == "" {
		return fmt.Errorf("gen: empty package name")
	}
	for i, r := range name {
		ok := r >= 'a' && r <= 'z' || r == '_' || r >= '0' && r <= '9' && i > 0
		if !ok {
			return fmt.Errorf("gen: %q is not a usable package name (lower-case letters, digits, underscore)", name)
		}
	}
	return nil
}
