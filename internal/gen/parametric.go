package gen

import (
	"fmt"
	"go/format"
	"strings"

	"repro/internal/ca"
	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/prim"
	"repro/internal/sema"
)

// This file implements the parametric-N code generation path. Where
// Generate (gen.go) expands the whole composite state space ahead of
// time for one fixed array length, GenerateParametric emits one static
// template per *region shape*: the connector is probed at a few array
// lengths, partitioned into asynchronous regions exactly as the
// interpreted PartitionRegions path partitions it, and every distinct
// solid single-automaton region structure (ca.CanonicalRegion) becomes
// one genrun.Template — state/transition tables over slot indices with
// inlined guard and data-move closures. The emitted package carries the
// connector's embedded source text plus the template list and calls
// genrun.New(n), which re-plans the regions at the requested N and binds
// each matching region to its template (engine.BindGen); the composite
// space is never expanded, so one generation run serves every N.
//
// The closures mirror ca.CompilePlan's semantics transition by
// transition: hidden-port data-flow chains become memoized locals,
// every output value is computed before any delivery or cell write
// (pre-step simultaneity), deliveries go to sink-classified slots in
// action order, cell writes follow in action order, and guards test
// registered filters with the "!name" negation convention. Region
// shapes that cannot be re-emitted (anonymous functions, causal cycles)
// are skipped: genrun leaves their regions interpreted, so a partially
// generatable connector still runs correctly.

// probeLengths are the array lengths GenerateParametric instantiates to
// discover region shapes. Shapes of product-style connectors are
// N-invariant; probing several lengths catches shapes that only appear
// past a boundary case (first/last element specializations).
var probeLengths = []int{2, 3, 4}

// pTemplate is one distinct region shape: the canonical automaton it was
// derived from plus the rendered Go source of its transition closures.
type pTemplate struct {
	key     string
	cls     string
	autName string
	states  int
	initial int32
	cells   int
	count   int // matching regions across all probes (diagnostics)

	aut     *ca.Automaton
	slot    map[ca.PortID]int
	cellIdx map[ca.CellID]int

	filters   []string
	filterIdx map[string]int
	xforms    []string
	xformIdx  map[string]int

	// trans[s][i] is the rendered genrun.Trans literal body for
	// transition i of state s.
	trans [][]pTrans
}

type pTrans struct {
	syncSlots []int
	target    int32
	flow      bool
	guardSrc  []string // closure body lines; empty = nil Guards
	execSrc   []string // closure body lines; empty = nil Exec
	label     string
}

// pModel is the resolved form the parametric emitter works from.
type pModel struct {
	cfg       Config
	src       string
	tmpls     []*pTemplate
	skipped   []string // shape names that stay interpreted, with reasons
	needsPrim bool
}

// GenerateParametric compiles one connector of src and emits its
// parametric package: a thin shell over internal/gen/genrun holding the
// embedded source and one static template per distinct region shape.
// Unlike Generate's output the emitted package is not self-contained —
// it imports the genrun runtime — and its New takes the array length:
// New(n, opts...) works for every n >= 1 from one generation run.
func GenerateParametric(src string, cfg Config) (*Generated, error) {
	m, err := buildParametricModel(src, cfg)
	if err != nil {
		return nil, err
	}
	file, err := m.emit()
	if err != nil {
		return nil, err
	}
	states, trans := 0, 0
	for _, t := range m.tmpls {
		states += t.states
		for _, ts := range t.trans {
			trans += len(ts)
		}
	}
	return &Generated{
		File:        file,
		Package:     m.cfg.Package,
		Connector:   m.cfg.Connector,
		States:      states,
		Transitions: trans,
		Templates:   len(m.tmpls),
	}, nil
}

func buildParametricModel(src string, cfg Config) (*pModel, error) {
	if cfg.Package == "" {
		cfg.Package = sanitizePackage(cfg.Connector)
	}
	if err := checkPackageName(cfg.Package); err != nil {
		return nil, err
	}
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	tmpl, err := compile.Build(info, cfg.Connector, cfg.Funcs, compile.Options{Simplify: true})
	if err != nil {
		return nil, err
	}

	m := &pModel{cfg: cfg, src: src}
	probes := probeLengths
	if cfg.N > 0 {
		extra := true
		for _, n := range probes {
			if n == cfg.N {
				extra = false
			}
		}
		if extra {
			probes = append(append([]int(nil), probes...), cfg.N)
		}
	}
	// seen maps key+cls to the built template, or nil for a shape already
	// diagnosed as non-generatable (so its reason is recorded once).
	seen := map[string]*pTemplate{}
	for _, n := range probes {
		lengths := make(map[string]int)
		for _, p := range tmpl.ArrayParams() {
			lengths[p] = n
		}
		asm, err := tmpl.Instantiate(lengths)
		if err != nil {
			return nil, fmt.Errorf("gen: probing %s at n=%d: %w", cfg.Connector, n, err)
		}
		plan := ca.PlanRegions(asm.U, asm.Auts)
		for ri, spec := range plan.Regions {
			if len(spec.Auts) != 1 || len(spec.Nodes) != 0 {
				continue // node regions and multi-automaton regions stay interpreted
			}
			a := asm.Auts[spec.Auts[0]]
			key, ports, cells := ca.CanonicalRegion(a)
			cls := regionCls(asm.U, plan, ri, ports)
			id := key + "\x00" + cls
			if pt, ok := seen[id]; ok {
				if pt != nil {
					pt.count++
				}
				continue
			}
			pt, err := m.buildTemplate(a, key, cls, ports, cells)
			if err != nil {
				seen[id] = nil
				m.skipped = append(m.skipped, fmt.Sprintf("%s: %v", a.Name, err))
				continue
			}
			pt.count = 1
			seen[id] = pt
			m.tmpls = append(m.tmpls, pt)
		}
	}
	if len(m.tmpls) == 0 {
		msg := "all regions are node or multi-automaton regions"
		if len(m.skipped) > 0 {
			msg = m.skipped[0]
		}
		return nil, fmt.Errorf("gen: connector %q has no generatable region shape (%s)", cfg.Connector, msg)
	}
	return m, nil
}

// regionCls classifies each canonical port slot of region ri the way the
// engine's plan compilation will classify it at bind time (see
// Engine.planDir): an emitting link endpoint is a value source, a
// boundary port keeps its universe direction, an accepting link endpoint
// with no task behind it is a value sink, and everything else is an
// internal vertex. engine.BindGen re-derives the same classification
// from the live region and refuses a template whose string differs, so
// a stale template can never silently misread a differently-cut region.
func regionCls(u *ca.Universe, plan *ca.RegionPlan, ri int, ports []ca.PortID) string {
	emit := map[ca.PortID]bool{}
	accept := map[ca.PortID]bool{}
	for _, lk := range plan.Links {
		if lk.To == ri {
			emit[lk.DstPort] = true
		}
		if lk.From == ri {
			accept[lk.SrcPort] = true
		}
	}
	var sb strings.Builder
	for _, p := range ports {
		switch {
		case emit[p]:
			sb.WriteByte('S')
		case u.DirOf(p) == ca.DirNone && accept[p]:
			sb.WriteByte('K')
		default:
			sb.WriteByte(engine.ClsOfDir(u.DirOf(p)))
		}
	}
	return sb.String()
}

// buildTemplate renders one region automaton's transition closures.
func (m *pModel) buildTemplate(a *ca.Automaton, key, cls string, ports []ca.PortID, cells []ca.CellID) (*pTemplate, error) {
	pt := &pTemplate{
		key:       key,
		cls:       cls,
		autName:   a.Name,
		states:    a.NumStates(),
		initial:   a.Initial,
		cells:     len(cells),
		aut:       a,
		slot:      make(map[ca.PortID]int, len(ports)),
		cellIdx:   make(map[ca.CellID]int, len(cells)),
		filterIdx: make(map[string]int),
		xformIdx:  make(map[string]int),
	}
	for i, p := range ports {
		pt.slot[p] = i
	}
	for i, c := range cells {
		pt.cellIdx[c] = i
	}
	pt.trans = make([][]pTrans, a.NumStates())
	for s := range a.Trans {
		for i := range a.Trans[s] {
			t := &a.Trans[s][i]
			rt, err := m.buildTrans(pt, t, int32(s))
			if err != nil {
				return nil, err
			}
			pt.trans[s] = append(pt.trans[s], rt)
		}
	}
	return pt, nil
}

// buildTrans renders one transition: sync slots, the guard conjunction
// closure, and the data-move closure, with ca.CompilePlan's evaluation
// order baked into straight-line code.
func (m *pModel) buildTrans(pt *pTemplate, t *ca.Transition, state int32) (pTrans, error) {
	rt := pTrans{target: t.Target}
	var err error
	t.Sync.ForEach(func(p ca.PortID) {
		slot, ok := pt.slot[p]
		if !ok && err == nil {
			err = fmt.Errorf("gen: sync port %q not referenced by the region automaton", pt.aut.U.Name(p))
		}
		rt.syncSlots = append(rt.syncSlots, slot)
	})
	if err != nil {
		return rt, err
	}

	// Guard closure: resolve each guard input in order, flushing chain
	// locals before its check — the interpreter's evaluation order.
	gctx := &pExprCtx{m: m, pt: pt, t: t, prefix: "w"}
	for gi := range t.Guards {
		g := &t.Guards[gi]
		name, negate := g.Name, false
		if strings.HasPrefix(name, "!") {
			name, negate = name[1:], true
		}
		if name == "" {
			return rt, fmt.Errorf("gen: transition guard without a registered filter name cannot be generated")
		}
		expr, err := gctx.resolve(g.In)
		if err != nil {
			return rt, err
		}
		xfs, err := pt.xformChain(g.XformNames, len(g.XformNames) > 0)
		if err != nil {
			return rt, err
		}
		rt.guardSrc = append(rt.guardSrc, gctx.body...)
		gctx.body = gctx.body[:0]
		neg := "!"
		if negate {
			neg = ""
		}
		rt.guardSrc = append(rt.guardSrc,
			fmt.Sprintf("if %sg.Filt[%d](%s) {", neg, pt.filterID(name), pt.wrapXf(expr, xfs)),
			"\treturn false",
			"}")
	}
	if len(rt.guardSrc) > 0 {
		rt.guardSrc = append(rt.guardSrc, "return true")
	}

	// Exec closure: external effects in action order. Every output value
	// is computed before any delivery or cell write, so simultaneous
	// read+write of a cell within one step sees the pre-step value.
	type outRef struct {
		deliver bool
		slot    int
		cell    int
		val     string
	}
	var outs []outRef
	ectx := &pExprCtx{m: m, pt: pt, t: t, prefix: "h"}
	cellWrites := 0
	for ai := range t.Acts {
		act := &t.Acts[ai]
		switch act.Dst.Kind {
		case ca.LocPort:
			slot, ok := pt.slot[act.Dst.Port]
			if !ok || pt.cls[slot] != 'K' {
				continue // hidden (or source) destination: feeds chains only
			}
			expr, err := ectx.resolveAct(act)
			if err != nil {
				return rt, err
			}
			v := fmt.Sprintf("v%d", len(outs))
			ectx.body = append(ectx.body, fmt.Sprintf("%s := %s", v, expr))
			outs = append(outs, outRef{deliver: true, slot: slot, val: v})
		case ca.LocCell:
			idx, ok := pt.cellIdx[act.Dst.Cell]
			if !ok {
				return rt, fmt.Errorf("gen: cell write outside the region automaton's referenced cells")
			}
			expr, err := ectx.resolveAct(act)
			if err != nil {
				return rt, err
			}
			v := fmt.Sprintf("v%d", len(outs))
			ectx.body = append(ectx.body, fmt.Sprintf("%s := %s", v, expr))
			outs = append(outs, outRef{slot: -1, cell: idx, val: v})
			cellWrites++
		case ca.LocConst:
			return rt, fmt.Errorf("gen: constant as action destination")
		}
	}
	rt.execSrc = append(rt.execSrc, ectx.body...)
	for _, o := range outs {
		if o.deliver {
			rt.execSrc = append(rt.execSrc, fmt.Sprintf("g.Deliver(%d, %s)", o.slot, o.val))
		}
	}
	for _, o := range outs {
		if !o.deliver {
			rt.execSrc = append(rt.execSrc, fmt.Sprintf("g.SetCell(%d, %s)", o.cell, o.val))
		}
	}
	rt.flow = len(t.Guards) == 0 && cellWrites == 0 && t.Target == state
	rt.label = pt.transLabel(t, rt)
	return rt, nil
}

func (pt *pTemplate) transLabel(t *ca.Transition, rt pTrans) string {
	var names []string
	t.Sync.ForEach(func(p ca.PortID) { names = append(names, pt.aut.U.Name(p)) })
	lbl := "{" + strings.Join(names, ",") + "}"
	for _, g := range t.Guards {
		lbl += fmt.Sprintf(" [%s]", g.Name)
	}
	if rt.flow {
		lbl += " flow"
	}
	return lbl
}

func (pt *pTemplate) filterID(name string) int {
	if id, ok := pt.filterIdx[name]; ok {
		return id
	}
	id := len(pt.filters)
	pt.filters = append(pt.filters, name)
	pt.filterIdx[name] = id
	return id
}

// xformChain interns a transformation name chain (outermost first); anon
// marks a chain composed from an anonymous function, which cannot be
// re-emitted — the shape then stays interpreted.
func (pt *pTemplate) xformChain(names []string, anon bool) ([]int, error) {
	if len(names) == 0 {
		if anon {
			return nil, fmt.Errorf("gen: transformation without a registered name cannot be generated")
		}
		return nil, nil
	}
	ids := make([]int, 0, len(names))
	for _, name := range names {
		if name == "" {
			return nil, fmt.Errorf("gen: transformation without a registered name cannot be generated")
		}
		id, ok := pt.xformIdx[name]
		if !ok {
			id = len(pt.xforms)
			pt.xforms = append(pt.xforms, name)
			pt.xformIdx[name] = id
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// wrapXf applies a transformation composition (indices outermost first)
// around a value expression: [a, b] renders g.Xf[a](g.Xf[b](e)).
func (pt *pTemplate) wrapXf(expr string, xfs []int) string {
	for i := len(xfs) - 1; i >= 0; i-- {
		expr = fmt.Sprintf("g.Xf[%d](%s)", xfs[i], expr)
	}
	return expr
}

// pExprCtx renders data locations as Go expressions against the GenCtx,
// resolving hidden-port chains into memoized locals exactly as
// ca.CompilePlan does.
type pExprCtx struct {
	m         *pModel
	pt        *pTemplate
	t         *ca.Transition
	body      []string
	memo      map[ca.PortID]string
	resolving map[ca.PortID]bool
	nLocal    int
	prefix    string
}

func (c *pExprCtx) resolveAct(act *ca.Action) (string, error) {
	expr, err := c.resolve(act.Src)
	if err != nil {
		return "", err
	}
	xfs, err := c.pt.xformChain(act.XformNames, act.Xform != nil)
	if err != nil {
		return "", err
	}
	return c.pt.wrapXf(expr, xfs), nil
}

func (c *pExprCtx) resolve(l ca.Loc) (string, error) {
	switch l.Kind {
	case ca.LocConst:
		return c.constExpr(l.Const)
	case ca.LocCell:
		idx, ok := c.pt.cellIdx[l.Cell]
		if !ok {
			return "", fmt.Errorf("gen: cell read outside the region automaton's referenced cells")
		}
		return fmt.Sprintf("g.Cell(%d)", idx), nil
	case ca.LocPort:
		return c.resolvePort(l.Port)
	}
	return "", fmt.Errorf("gen: invalid location kind %d", l.Kind)
}

func (c *pExprCtx) resolvePort(p ca.PortID) (string, error) {
	if slot, ok := c.pt.slot[p]; ok && c.pt.cls[slot] == 'S' {
		return fmt.Sprintf("g.Val(%d)", slot), nil
	}
	if c.memo == nil {
		c.memo = make(map[ca.PortID]string)
		c.resolving = make(map[ca.PortID]bool)
	}
	if v, ok := c.memo[p]; ok {
		return v, nil
	}
	if c.resolving[p] {
		return "", fmt.Errorf("gen: causal cycle through port %q in transition data flow", c.pt.aut.U.Name(p))
	}
	for ai := range c.t.Acts {
		act := &c.t.Acts[ai]
		if act.Dst.Kind != ca.LocPort || act.Dst.Port != p {
			continue
		}
		c.resolving[p] = true
		src, err := c.resolveAct(act)
		delete(c.resolving, p)
		if err != nil {
			return "", err
		}
		v := fmt.Sprintf("%s%d", c.prefix, c.nLocal)
		c.nLocal++
		c.body = append(c.body, fmt.Sprintf("%s := %s", v, src))
		c.memo[p] = v
		return v, nil
	}
	return "", fmt.Errorf("gen: no value defined for port %q in transition", c.pt.aut.U.Name(p))
}

// constExpr renders a constant as Go source for the parametric package
// (which has the real prim package on hand, unlike the self-contained
// fixed-N output and its local token type).
func (c *pExprCtx) constExpr(v any) (string, error) {
	switch v := v.(type) {
	case nil:
		return "nil", nil
	case prim.Token:
		c.m.needsPrim = true
		return "prim.Token{}", nil
	case bool, int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, float32, float64, string:
		return fmt.Sprintf("%#v", v), nil
	}
	return "", fmt.Errorf("gen: constant of type %T cannot be rendered as Go source", v)
}

// emit renders the parametric package as one gofmt-formatted file.
func (m *pModel) emit() ([]byte, error) {
	var sb strings.Builder
	p := func(format string, args ...any) {
		fmt.Fprintf(&sb, format, args...)
		sb.WriteByte('\n')
	}
	p("// Code generated by \"reoc gen -parametric\" from connector %s; DO NOT EDIT.", m.cfg.Connector)
	p("")
	p("// Package %s is a parametric statically compiled Reo connector:", m.cfg.Package)
	p("// %s, generated once and instantiable at any array length.", m.cfg.Connector)
	p("// Instead of an ahead-of-time expansion of one fixed-N composite")
	p("// space, the package holds one static template per region shape")
	p("// (%d shape(s)); New(n) re-plans the connector's asynchronous", len(m.tmpls))
	p("// regions at the requested length and binds every matching region")
	p("// to its template's compiled dispatch and data moves, joined by the")
	p("// engine's real SPSC links. Regions without a matching template run")
	p("// interpreted, so the instance is correct at every N.")
	p("package %s", m.cfg.Package)
	p("")
	p("import (")
	p("\t\"repro/internal/gen/genrun\"")
	if m.needsPrim {
		p("")
		p("\t\"repro/internal/prim\"")
	}
	p(")")
	p("")
	p("// connectorName names the source definition New compiles at run time.")
	p("const connectorName = %q", m.cfg.Connector)
	p("")
	p("// source embeds the connector's protocol text; genrun.New re-runs the")
	p("// ordinary pipeline (parse, check, compile, instantiate, region plan)")
	p("// on it to obtain the region structure at the requested length.")
	p("const source = %q", m.src)
	p("")
	p("// Option, Instance, and Funcs re-export the parametric runtime's API")
	p("// so callers need not import genrun directly.")
	p("type (")
	p("\tOption   = genrun.Option")
	p("\tInstance = genrun.Instance")
	p("\tFuncs    = genrun.Funcs")
	p(")")
	p("")
	p("var (")
	p("\tWithSeed    = genrun.WithSeed")
	p("\tWithWorkers = genrun.WithWorkers")
	p("\tWithRuntime = genrun.WithRuntime")
	p("\tWithFuncs   = genrun.WithFuncs")
	p(")")
	p("")
	p("// templates holds one static shape per distinct canonical region")
	p("// structure observed while probing the connector at array lengths %v.", probeLengths)
	if len(m.skipped) > 0 {
		p("// Shapes left to the interpreter:")
		for _, s := range m.skipped {
			p("//   %s", s)
		}
	}
	p("var templates = []*genrun.Template{")
	for _, t := range m.tmpls {
		p("\t// %s: %d states, cls %q", t.autName, t.states, t.cls)
		p("\t{")
		p("\t\tKey:     %q,", t.key)
		p("\t\tCls:     %q,", t.cls)
		p("\t\tStates:  %d,", t.states)
		p("\t\tInitial: %d,", t.initial)
		p("\t\tCells:   %d,", t.cells)
		if len(t.filters) > 0 {
			p("\t\tFilterNames: []string{%s},", quoteList(t.filters))
		}
		if len(t.xforms) > 0 {
			p("\t\tXformNames: []string{%s},", quoteList(t.xforms))
		}
		p("\t\tTrans: [][]genrun.Trans{")
		for s, ts := range t.trans {
			if len(ts) == 0 {
				p("\t\t\tnil, // state %d", s)
				continue
			}
			p("\t\t\t{ // state %d", s)
			for i := range ts {
				emitPTrans(p, &ts[i])
			}
			p("\t\t\t},")
		}
		p("\t\t},")
		p("\t},")
	}
	p("}")
	p("")
	p("// New instantiates the connector at array length n: every array")
	p("// parameter takes length n, and each region whose structure matches a")
	p("// template runs the template's generated code.")
	p("func New(n int, opts ...Option) (*Instance, error) {")
	p("\treturn genrun.New(source, connectorName, n, templates, opts...)")
	p("}")

	src, err := format.Source([]byte(sb.String()))
	if err != nil {
		// A formatting failure is a generator bug; surface the raw text
		// for diagnosis rather than hiding it.
		return nil, fmt.Errorf("gen: emitted source does not parse: %w\n%s", err, sb.String())
	}
	return src, nil
}

func emitPTrans(p func(string, ...any), t *pTrans) {
	var fields []string
	if len(t.syncSlots) > 0 {
		var xs []string
		for _, s := range t.syncSlots {
			xs = append(xs, fmt.Sprintf("%d", s))
		}
		fields = append(fields, fmt.Sprintf("Sync: []int32{%s}", strings.Join(xs, ", ")))
	}
	fields = append(fields, fmt.Sprintf("Target: %d", t.target))
	if t.flow {
		fields = append(fields, "Flow: true")
	}
	p("\t\t\t\t// %s", t.label)
	p("\t\t\t\t{%s,", strings.Join(fields, ", "))
	if len(t.guardSrc) > 0 {
		p("\t\t\t\t\tGuards: func(g *genrun.Ctx) bool {")
		for _, l := range t.guardSrc {
			p("\t\t\t\t\t\t%s", l)
		}
		p("\t\t\t\t\t},")
	}
	if len(t.execSrc) > 0 {
		p("\t\t\t\t\tExec: func(g *genrun.Ctx) {")
		for _, l := range t.execSrc {
			p("\t\t\t\t\t\t%s", l)
		}
		p("\t\t\t\t\t},")
	}
	p("\t\t\t\t},")
}
