package gen

// This file builds generated-region templates *in process*: instead of
// emitting Go source (parametric.go) and compiling a scratch module, it
// compiles each region automaton's ca.Transitions directly into
// engine.GenTemplate closures and hands them to engine.BindGen. The
// result runs on the exact same generated fast path (fireLoopGen) as
// `reoc gen -parametric` output — same candidate enumeration, seeded
// choice, fused flow bursts — which is what makes it usable as a
// differential lane for arbitrary connectors: the schedule explorer
// (internal/explore) generates random connectors and binds them here
// without ever shelling out to the Go toolchain.
//
// The closure compiler mirrors ca.CompilePlan's resolution rules
// (sources read pending values, sinks receive deliveries, hidden ports
// resolve through the transition's own action chain with memoized
// locals) and the parametric emitter's evaluation order (guard chains
// flushed before each check; every output value computed before any
// delivery or cell write). Unlike the emitter it does not need
// registered function *names*: guards capture Guard.Pred and actions
// capture Action.Xform directly, so anonymous functions are fine.

import (
	"fmt"

	"repro/internal/ca"
	"repro/internal/compile"
	"repro/internal/engine"
)

// InProcOptions configure the in-process template builder.
type InProcOptions struct {
	// MutateRotateCandidates rotates every multi-transition state's
	// candidate row by one position. The rotated template still passes
	// BindGen's structural validation (state/transition counts and slot
	// classification are unchanged) but resolves seeded choice against a
	// misordered candidate list — an off-by-one in the generated
	// runtime's candidate ordering. It exists solely so the explorer's
	// mutation self-check (`reoc explore -selfcheck`, TestExplore
	// MutationCheck) can prove the differential harness detects exactly
	// this class of bug. Never set it outside that self-check.
	MutateRotateCandidates bool
}

// InProcBinder returns a bind callback for engine.NewMultiRegionsBound
// that compiles every eligible region (single automaton, no synthesized
// node automata) into an in-process generated template and binds it.
// Regions whose transitions cannot be compiled (multi-automaton regions,
// causal cycles) are silently left interpreted — the mixed instance
// stays correct, exactly as with emitted parametric templates. The
// returned counter reports how many regions were bound.
func InProcBinder(asm *compile.Assembly, opt InProcOptions) (bind func(ri int, spec ca.RegionSpec, eng *engine.Engine), bound *int) {
	plan := ca.PlanRegions(asm.U, asm.Auts)
	bound = new(int)
	bind = func(ri int, spec ca.RegionSpec, eng *engine.Engine) {
		if len(spec.Auts) != 1 || len(spec.Nodes) != 0 {
			return
		}
		a := asm.Auts[spec.Auts[0]]
		_, ports, cells := ca.CanonicalRegion(a)
		cls := regionCls(asm.U, plan, ri, ports)
		gt, err := BuildInProcTemplate(a, cls, ports, cells, opt)
		if err != nil {
			return
		}
		if eng.BindGen(gt, ports, cells, nil, nil) == nil {
			*bound++
		}
	}
	return bind, bound
}

// BuildInProcTemplate compiles one region automaton into a generated
// template whose guard/exec closures capture the automaton's own
// predicate and transformation functions. cls must be the slot
// classification of the region's ports under its actual link layout
// (regionCls / engine.ClsOfDir); BindGen re-validates it at bind time.
func BuildInProcTemplate(a *ca.Automaton, cls string, ports []ca.PortID, cells []ca.CellID, opt InProcOptions) (*engine.GenTemplate, error) {
	ip := &ipCompiler{
		aut:     a,
		cls:     cls,
		slot:    make(map[ca.PortID]int, len(ports)),
		cellIdx: make(map[ca.CellID]int, len(cells)),
	}
	for i, p := range ports {
		ip.slot[p] = i
	}
	for i, c := range cells {
		ip.cellIdx[c] = i
	}
	gt := &engine.GenTemplate{
		States:  a.NumStates(),
		Initial: a.Initial,
		Cells:   len(cells),
		Cls:     cls,
		Trans:   make([][]engine.GenTrans, a.NumStates()),
	}
	for s := range a.Trans {
		row := make([]engine.GenTrans, 0, len(a.Trans[s]))
		for i := range a.Trans[s] {
			tr, err := ip.buildTrans(&a.Trans[s][i], int32(s))
			if err != nil {
				return nil, err
			}
			row = append(row, tr)
		}
		if opt.MutateRotateCandidates && len(row) > 1 {
			rot := make([]engine.GenTrans, 0, len(row))
			rot = append(rot, row[1:]...)
			rot = append(rot, row[0])
			row = rot
		}
		gt.Trans[s] = row
	}
	return gt, nil
}

type ipCompiler struct {
	aut     *ca.Automaton
	cls     string
	slot    map[ca.PortID]int
	cellIdx map[ca.CellID]int
}

// ipRef is a compiled data location: the closure-level form of ca's
// valRef.
type ipRef struct {
	kind  byte // 'c' const, 'm' cell, 'p' source port slot, 'l' local
	c     any
	cell  int
	pslot int
	local int
}

func (c *ipCompiler) readRef(g *engine.GenCtx, locals []any, r *ipRef) any {
	switch r.kind {
	case 'c':
		return r.c
	case 'm':
		return g.Cell(r.cell)
	case 'p':
		return g.Val(r.pslot)
	default:
		return locals[r.local]
	}
}

// ipOp computes one memoized hidden-port chain local:
// locals[dst] = xform(read(src)).
type ipOp struct {
	src   ipRef
	xform func(any) any
	dst   int
}

// ipExprCtx resolves Locs for one closure (guard or exec), memoizing
// hidden-port chains into locals exactly as ca.CompilePlan does.
type ipExprCtx struct {
	c         *ipCompiler
	t         *ca.Transition
	ops       []ipOp
	memo      map[ca.PortID]int
	resolving map[ca.PortID]bool
}

func (x *ipExprCtx) resolve(l ca.Loc) (ipRef, error) {
	switch l.Kind {
	case ca.LocConst:
		return ipRef{kind: 'c', c: l.Const}, nil
	case ca.LocCell:
		idx, ok := x.c.cellIdx[l.Cell]
		if !ok {
			return ipRef{}, fmt.Errorf("gen: cell read outside the region automaton's referenced cells")
		}
		return ipRef{kind: 'm', cell: idx}, nil
	case ca.LocPort:
		return x.resolvePort(l.Port)
	}
	return ipRef{}, fmt.Errorf("gen: invalid location kind %d", l.Kind)
}

func (x *ipExprCtx) resolvePort(p ca.PortID) (ipRef, error) {
	if slot, ok := x.c.slot[p]; ok && x.c.cls[slot] == 'S' {
		return ipRef{kind: 'p', pslot: slot}, nil
	}
	if x.memo == nil {
		x.memo = make(map[ca.PortID]int)
		x.resolving = make(map[ca.PortID]bool)
	}
	if l, ok := x.memo[p]; ok {
		return ipRef{kind: 'l', local: l}, nil
	}
	if x.resolving[p] {
		return ipRef{}, fmt.Errorf("gen: causal cycle through port %q in transition data flow", x.c.aut.U.Name(p))
	}
	for ai := range x.t.Acts {
		act := &x.t.Acts[ai]
		if act.Dst.Kind != ca.LocPort || act.Dst.Port != p {
			continue
		}
		x.resolving[p] = true
		src, err := x.resolve(act.Src)
		delete(x.resolving, p)
		if err != nil {
			return ipRef{}, err
		}
		l := len(x.ops)
		x.ops = append(x.ops, ipOp{src: src, xform: act.Xform, dst: l})
		x.memo[p] = l
		return ipRef{kind: 'l', local: l}, nil
	}
	return ipRef{}, fmt.Errorf("gen: no value defined for port %q in transition", x.c.aut.U.Name(p))
}

// buildTrans compiles one transition into a GenTrans, mirroring
// parametric.go's buildTrans evaluation order with closures in place of
// rendered source.
func (c *ipCompiler) buildTrans(t *ca.Transition, state int32) (engine.GenTrans, error) {
	var out engine.GenTrans
	var serr error
	t.Sync.ForEach(func(p ca.PortID) {
		slot, ok := c.slot[p]
		if !ok && serr == nil {
			serr = fmt.Errorf("gen: sync port %q not referenced by the region automaton", c.aut.U.Name(p))
		}
		out.Sync = append(out.Sync, int32(slot))
	})
	if serr != nil {
		return out, serr
	}
	out.Target = t.Target

	// Guard closure: chain locals flushed before each check, in the
	// interpreter's order. Guard.Pred already folds negation and any
	// transformation chain, so it is applied to the raw resolved input —
	// exactly as ca.CompilePlan's CheckGuards does.
	if len(t.Guards) > 0 {
		gctx := &ipExprCtx{c: c, t: t}
		type ipGuard struct {
			src    ipRef
			pred   func(any) bool
			opsEnd int
		}
		var guards []ipGuard
		for gi := range t.Guards {
			g := &t.Guards[gi]
			if g.Pred == nil {
				return out, fmt.Errorf("gen: transition guard without a predicate cannot be compiled")
			}
			src, err := gctx.resolve(g.In)
			if err != nil {
				return out, err
			}
			guards = append(guards, ipGuard{src: src, pred: g.Pred, opsEnd: len(gctx.ops)})
		}
		gops := gctx.ops
		locals := make([]any, len(gops))
		out.Guards = func(g *engine.GenCtx) bool {
			done := 0
			for i := range guards {
				gd := &guards[i]
				for ; done < gd.opsEnd; done++ {
					op := &gops[done]
					v := c.readRef(g, locals, &op.src)
					if op.xform != nil {
						v = op.xform(v)
					}
					locals[op.dst] = v
				}
				if !gd.pred(c.readRef(g, locals, &gd.src)) {
					return false
				}
			}
			return true
		}
	}

	// Exec closure: external effects in action order, every output value
	// computed before any delivery or cell write (pre-step simultaneity),
	// deliveries before deferred cell writes.
	type ipOut struct {
		src     ipRef
		xform   func(any) any
		slot    int
		cell    int
		deliver bool
		opsEnd  int
	}
	ectx := &ipExprCtx{c: c, t: t}
	var outs []ipOut
	cellWrites := 0
	for ai := range t.Acts {
		act := &t.Acts[ai]
		switch act.Dst.Kind {
		case ca.LocPort:
			slot, ok := c.slot[act.Dst.Port]
			if !ok || c.cls[slot] != 'K' {
				continue // hidden (or source) destination: feeds chains only
			}
			src, err := ectx.resolve(act.Src)
			if err != nil {
				return out, err
			}
			outs = append(outs, ipOut{src: src, xform: act.Xform, slot: slot, deliver: true, opsEnd: len(ectx.ops)})
		case ca.LocCell:
			idx, ok := c.cellIdx[act.Dst.Cell]
			if !ok {
				return out, fmt.Errorf("gen: cell write outside the region automaton's referenced cells")
			}
			src, err := ectx.resolve(act.Src)
			if err != nil {
				return out, err
			}
			outs = append(outs, ipOut{src: src, xform: act.Xform, cell: idx, opsEnd: len(ectx.ops)})
			cellWrites++
		case ca.LocConst:
			return out, fmt.Errorf("gen: constant as action destination")
		}
	}
	if len(outs) > 0 || len(ectx.ops) > 0 {
		eops := ectx.ops
		elocals := make([]any, len(eops))
		vals := make([]any, len(outs))
		outsv := outs
		out.Exec = func(g *engine.GenCtx) {
			done := 0
			for i := range outsv {
				o := &outsv[i]
				for ; done < o.opsEnd; done++ {
					op := &eops[done]
					v := c.readRef(g, elocals, &op.src)
					if op.xform != nil {
						v = op.xform(v)
					}
					elocals[op.dst] = v
				}
				v := c.readRef(g, elocals, &o.src)
				if o.xform != nil {
					v = o.xform(v)
				}
				vals[i] = v
			}
			for i := range outsv {
				if outsv[i].deliver {
					g.Deliver(outsv[i].slot, vals[i])
				}
			}
			for i := range outsv {
				if !outsv[i].deliver {
					g.SetCell(outsv[i].cell, vals[i])
				}
			}
		}
	}
	out.Flow = len(t.Guards) == 0 && cellWrites == 0 && t.Target == state
	return out, nil
}
