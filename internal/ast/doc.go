// Package ast defines the abstract syntax of the textual connector
// language of §IV-B: connector definitions composed with `mult`, port
// arrays, array lengths (#a), conditional expressions, iterated
// composition (`prod`), and a `main` definition wiring connectors to
// tasks.
package ast
