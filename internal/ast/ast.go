package ast

import (
	"fmt"
	"strings"
)

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// File is a parsed source file.
type File struct {
	Defs  []*ConnDef
	Mains []*MainDef
}

// Def returns the connector definition with the given name, if present.
func (f *File) Def(name string) *ConnDef {
	for _, d := range f.Defs {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Param is a formal parameter of a connector signature: a scalar vertex or
// a vertex array.
type Param struct {
	Name    string
	IsArray bool
	Pos     Pos
}

// ConnDef is one connector definition: Name(tails;heads) = body.
type ConnDef struct {
	Name  string
	Tails []Param
	Heads []Param
	Body  Expr
	Pos   Pos
}

// Params returns all parameters, tails then heads.
func (d *ConnDef) Params() []Param {
	out := make([]Param, 0, len(d.Tails)+len(d.Heads))
	out = append(out, d.Tails...)
	return append(out, d.Heads...)
}

// Expr is a connector expression.
type Expr interface {
	exprNode()
	Position() Pos
}

// Mult is the composition of factors (the `mult` operator, alluding to ×).
type Mult struct {
	Factors []Expr
	Pos     Pos
}

// Invoke instantiates a primitive or defined connector's signature.
// Attr carries the dotted attribute of parametrized primitives
// (Filter.even, Fifo.4, Transformer.double).
type Invoke struct {
	Name  string
	Attr  string
	Tails []PortArg
	Heads []PortArg
	Pos   Pos
}

// Prod is iterated composition: prod (i:lo..hi) body.
type Prod struct {
	Var    string
	Lo, Hi IntExpr
	Body   Expr
	Pos    Pos
}

// If is conditional composition. Else may be nil (empty connector).
type If struct {
	Cond BoolExpr
	Then Expr
	Else Expr
	Pos  Pos
}

func (*Mult) exprNode()   {}
func (*Invoke) exprNode() {}
func (*Prod) exprNode()   {}
func (*If) exprNode()     {}

func (m *Mult) Position() Pos   { return m.Pos }
func (i *Invoke) Position() Pos { return i.Pos }
func (p *Prod) Position() Pos   { return p.Pos }
func (i *If) Position() Pos     { return i.Pos }

// PortArg references one vertex or a slice of an array of vertices:
// name, name[e], name[e1][e2] (multi-dimensional locals introduced by
// flattening), or name[lo..hi] (an array slice, only valid where an array
// is expected).
type PortArg struct {
	Name    string
	Indices []IntExpr // nil for bare references
	IsRange bool
	Lo, Hi  IntExpr // range bounds when IsRange
	Pos     Pos
}

func (p PortArg) String() string {
	var sb strings.Builder
	sb.WriteString(p.Name)
	if p.IsRange {
		fmt.Fprintf(&sb, "[%s..%s]", Render(p.Lo), Render(p.Hi))
		return sb.String()
	}
	for _, ix := range p.Indices {
		fmt.Fprintf(&sb, "[%s]", Render(ix))
	}
	return sb.String()
}

// IntExpr is an integer expression over literals, iteration variables,
// main parameters, and array lengths.
type IntExpr interface {
	intNode()
	Position() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Val int
	Pos Pos
}

// VarRef references an iteration variable or a main parameter.
type VarRef struct {
	Name string
	Pos  Pos
}

// LenOf is #name: the length of an array parameter.
type LenOf struct {
	Name string
	Pos  Pos
}

// BinInt is a binary arithmetic expression.
type BinInt struct {
	Op   string // + - * / %
	L, R IntExpr
	Pos  Pos
}

func (*IntLit) intNode() {}
func (*VarRef) intNode() {}
func (*LenOf) intNode()  {}
func (*BinInt) intNode() {}

func (e *IntLit) Position() Pos { return e.Pos }
func (e *VarRef) Position() Pos { return e.Pos }
func (e *LenOf) Position() Pos  { return e.Pos }
func (e *BinInt) Position() Pos { return e.Pos }

// BoolExpr is a condition.
type BoolExpr interface {
	boolNode()
	Position() Pos
}

// Cmp compares two integer expressions: == != < <= > >=.
type Cmp struct {
	Op   string
	L, R IntExpr
	Pos  Pos
}

// BoolBin combines conditions: && ||.
type BoolBin struct {
	Op   string
	L, R BoolExpr
	Pos  Pos
}

// Not negates a condition.
type Not struct {
	X   BoolExpr
	Pos Pos
}

func (*Cmp) boolNode()     {}
func (*BoolBin) boolNode() {}
func (*Not) boolNode()     {}

func (e *Cmp) Position() Pos     { return e.Pos }
func (e *BoolBin) Position() Pos { return e.Pos }
func (e *Not) Position() Pos     { return e.Pos }

// MainDef is: main(params) = invocations among tasks.
type MainDef struct {
	Params []string
	Conns  []*Invoke
	Tasks  []TaskItem
	Pos    Pos
}

// TaskItem is either a TaskInst or a TaskForall.
type TaskItem interface{ taskNode() }

// TaskInst instantiates a task signature, e.g. Tasks.pro(out[i]).
type TaskInst struct {
	Name string
	Args []PortArg
	Pos  Pos
}

// TaskForall replicates task instances over a range.
type TaskForall struct {
	Var    string
	Lo, Hi IntExpr
	Body   []TaskItem
	Pos    Pos
}

func (*TaskInst) taskNode()   {}
func (*TaskForall) taskNode() {}

// Render pretty-prints an integer expression.
func Render(e IntExpr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Val)
	case *VarRef:
		return e.Name
	case *LenOf:
		return "#" + e.Name
	case *BinInt:
		return "(" + Render(e.L) + e.Op + Render(e.R) + ")"
	default:
		return "?"
	}
}

// RenderBool pretty-prints a condition.
func RenderBool(e BoolExpr) string {
	switch e := e.(type) {
	case *Cmp:
		return Render(e.L) + e.Op + Render(e.R)
	case *BoolBin:
		return "(" + RenderBool(e.L) + e.Op + RenderBool(e.R) + ")"
	case *Not:
		return "!(" + RenderBool(e.X) + ")"
	default:
		return "?"
	}
}

// RenderExpr pretty-prints a connector expression (used by cmd/reoc to
// show flattened and normalized forms).
func RenderExpr(e Expr, indent string) string {
	switch e := e.(type) {
	case *Mult:
		parts := make([]string, len(e.Factors))
		for i, f := range e.Factors {
			parts[i] = RenderExpr(f, indent)
		}
		return strings.Join(parts, "\n"+indent+"mult ")
	case *Invoke:
		var sb strings.Builder
		sb.WriteString(e.Name)
		if e.Attr != "" {
			sb.WriteString("." + e.Attr)
		}
		sb.WriteByte('(')
		for i, a := range e.Tails {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(a.String())
		}
		sb.WriteByte(';')
		for i, a := range e.Heads {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(a.String())
		}
		sb.WriteByte(')')
		return sb.String()
	case *Prod:
		return fmt.Sprintf("prod (%s:%s..%s) {\n%s  %s\n%s}", e.Var, Render(e.Lo), Render(e.Hi),
			indent, RenderExpr(e.Body, indent+"  "), indent)
	case *If:
		s := fmt.Sprintf("if (%s) {\n%s  %s\n%s}", RenderBool(e.Cond), indent, RenderExpr(e.Then, indent+"  "), indent)
		if e.Else != nil {
			s += fmt.Sprintf(" else {\n%s  %s\n%s}", indent, RenderExpr(e.Else, indent+"  "), indent)
		}
		return s
	default:
		return "?"
	}
}
