// Package graph implements Reo's graphical representation of connectors —
// a directed hypergraph of vertices and typed (hyper)arcs (§III-A) — and
// the graph-to-text translator of the paper's toolchain (Fig. 11): a
// drawn, nonparametrized connector is translated to the textual syntax,
// which can then be parametrized by hand.
package graph
