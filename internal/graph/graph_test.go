package graph_test

import (
	"strings"
	"testing"
	"time"

	reo "repro"
	"repro/internal/graph"
)

// TestExample1RoundTrip draws Fig. 5, translates it to text (Fig. 8),
// compiles it, and checks the protocol of Example 1 end to end — the full
// workflow of Fig. 11.
func TestExample1RoundTrip(t *testing.T) {
	g := graph.Example1()
	src, err := g.ToText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "ConnectorEx11(tl1,tl2;hd1,hd2)") {
		t.Fatalf("unexpected header in:\n%s", src)
	}
	prog, err := reo.Compile(src)
	if err != nil {
		t.Fatalf("generated text does not compile: %v\n%s", err, src)
	}
	conn, err := prog.Connector("ConnectorEx11")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		go inst.Outport("tl1").Send("A")
		go inst.Outport("tl2").Send("B")
		if v, err := inst.Inport("hd1").Recv(); err != nil || v != "A" {
			t.Errorf("hd1 = %v, %v", v, err)
		}
		if v, err := inst.Inport("hd2").Recv(); err != nil || v != "B" {
			t.Errorf("hd2 = %v, %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("round-tripped connector deadlocked")
	}
}

func TestValidateCatchesBadBoundary(t *testing.T) {
	g := &graph.Connector{
		Name:          "Bad",
		BoundaryTails: []string{"a"},
		BoundaryHeads: []string{"b"},
		Arcs: []graph.Arc{
			{Type: graph.Sync, Tails: []string{"b"}, Heads: []string{"a"}},
		},
	}
	if err := g.Validate(); err == nil {
		t.Error("boundary tail written by arc not rejected")
	}
}

func TestPublicVertexRule(t *testing.T) {
	g := graph.Example1()
	for _, v := range []string{"tl1", "tl2", "hd1", "hd2"} {
		if !g.Public(v) {
			t.Errorf("boundary vertex %q not public", v)
		}
	}
	vs := g.Vertices()
	if len(vs) != 12 {
		t.Errorf("vertices = %d, want 12: %v", len(vs), vs)
	}
}

func TestEmptyConnectorRejected(t *testing.T) {
	g := &graph.Connector{Name: "E", BoundaryTails: []string{"a"}}
	if err := g.Validate(); err == nil {
		t.Error("empty connector accepted")
	}
}
