package graph

import (
	"fmt"
	"sort"
	"strings"
)

// ArcType is a primitive connector type (the markings of Fig. 6).
type ArcType string

// Arc types supported by the translator; these mirror the builtin
// primitives of the textual language.
const (
	Sync        ArcType = "Sync"
	LossySync   ArcType = "LossySync"
	SyncDrain   ArcType = "SyncDrain"
	AsyncDrain  ArcType = "AsyncDrain"
	SyncSpout   ArcType = "SyncSpout"
	Fifo1       ArcType = "Fifo1"
	Fifo1Full   ArcType = "Fifo1Full"
	Merger      ArcType = "Merger"
	Replicator  ArcType = "Replicator"
	Router      ArcType = "Router"
	Seq         ArcType = "Seq"
	Filter      ArcType = "Filter"
	Transformer ArcType = "Transformer"
	Valve1      ArcType = "Valve1"
)

// Arc is one (hyper)arc: a set of tails, a set of heads, and a type
// (graphically, the marking). Attr carries Filter/Transformer function
// names and Fifo capacities.
type Arc struct {
	Type  ArcType
	Tails []string
	Heads []string
	Attr  string
}

// Connector is a drawn connector: Γ as a set of primitives (the
// alternative representation (V,A) = ⊕Γ of §III-A; prim(a) for every arc).
type Connector struct {
	Name string
	Arcs []Arc
	// BoundaryTails/BoundaryHeads are the public vertices linked to
	// connectees, in signature order.
	BoundaryTails []string
	BoundaryHeads []string
}

// Vertices returns all vertex names, sorted.
func (c *Connector) Vertices() []string {
	set := map[string]bool{}
	for _, a := range c.Arcs {
		for _, v := range a.Tails {
			set[v] = true
		}
		for _, v := range a.Heads {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Public reports whether a vertex is public: it has at most one incoming
// or outgoing arc end (§III-A).
func (c *Connector) Public(v string) bool {
	in, out := 0, 0
	for _, a := range c.Arcs {
		for _, h := range a.Heads {
			if h == v {
				in++
			}
		}
		for _, t := range a.Tails {
			if t == v {
				out++
			}
		}
	}
	return in <= 1 || out <= 1
}

// Validate checks the connector's boundary declaration: boundary tails
// must not be written by any arc, boundary heads not read.
func (c *Connector) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("graph: connector needs a name")
	}
	for _, v := range c.BoundaryTails {
		for _, a := range c.Arcs {
			for _, h := range a.Heads {
				if h == v {
					return fmt.Errorf("graph: boundary tail %q is written by a %s arc", v, a.Type)
				}
			}
		}
	}
	for _, v := range c.BoundaryHeads {
		for _, a := range c.Arcs {
			for _, t := range a.Tails {
				if t == v {
					return fmt.Errorf("graph: boundary head %q is read by a %s arc", v, a.Type)
				}
			}
		}
	}
	if len(c.Arcs) == 0 {
		return fmt.Errorf("graph: connector has no arcs")
	}
	return nil
}

// ToText translates the drawn connector to the textual syntax (Fig. 11's
// graph-to-text component; e.g. Fig. 5 to Fig. 8).
func (c *Connector) ToText() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(%s;%s) =\n", c.Name,
		strings.Join(c.BoundaryTails, ","), strings.Join(c.BoundaryHeads, ","))
	for i, a := range c.Arcs {
		sep := "    "
		if i > 0 {
			sep = "    mult "
		}
		name := string(a.Type)
		if a.Attr != "" {
			name += "." + a.Attr
		}
		fmt.Fprintf(&sb, "%s%s(%s;%s)\n", sep, name,
			strings.Join(a.Tails, ","), strings.Join(a.Heads, ","))
	}
	return sb.String(), nil
}

// Example1 builds Fig. 5 — the paper's running example as a drawn graph.
func Example1() *Connector {
	return &Connector{
		Name:          "ConnectorEx11",
		BoundaryTails: []string{"tl1", "tl2"},
		BoundaryHeads: []string{"hd1", "hd2"},
		Arcs: []Arc{
			{Type: Replicator, Tails: []string{"tl1"}, Heads: []string{"prev1", "v1"}},
			{Type: Replicator, Tails: []string{"tl2"}, Heads: []string{"prev2", "v2"}},
			{Type: Fifo1, Tails: []string{"v1"}, Heads: []string{"w1"}},
			{Type: Fifo1, Tails: []string{"v2"}, Heads: []string{"w2"}},
			{Type: Replicator, Tails: []string{"w1"}, Heads: []string{"next1", "hd1"}},
			{Type: Replicator, Tails: []string{"w2"}, Heads: []string{"next2", "hd2"}},
			{Type: Seq, Tails: []string{"next1", "prev2"}},
			{Type: Seq, Tails: []string{"prev1", "next2"}},
		},
	}
}
