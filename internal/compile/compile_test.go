package compile_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/ca"
	"repro/internal/compile"
	"repro/internal/parser"
	"repro/internal/sema"
)

func build(t *testing.T, src, def string, opts compile.Options) *compile.Template {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := compile.Build(info, def, compile.Funcs{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

const orderedSrc = `
X(tl;prev,next,hd) =
    Replicator(tl;prev,v) mult Fifo1(v;w) mult Replicator(w;next,hd)

Ordered(tl[];hd[]) =
    if (#tl == 1) {
        Fifo1(tl[1];hd[1])
    } else {
        prod (i:1..#tl) X(tl[i];prev[i],next[i],hd[i])
        mult prod (i:1..#tl-1) Seq(next[i],prev[i+1];)
        mult Seq(prev[1],next[#tl];)
    }
`

// TestInstantiationShape reproduces the structure of Fig. 10: for N=1 a
// single Fifo1 medium; for N>1, N X-mediums, N-1 Seq mediums, and one
// closing Seq.
func TestInstantiationShape(t *testing.T) {
	tmpl := build(t, orderedSrc, "Ordered", compile.Options{Simplify: true})
	asm, err := tmpl.Instantiate(map[string]int{"tl": 1, "hd": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(asm.Auts) != 1 {
		t.Errorf("N=1: %d constituents, want 1 (the Fifo1 branch)", len(asm.Auts))
	}
	for _, n := range []int{2, 5, 9} {
		asm, err := tmpl.Instantiate(map[string]int{"tl": n, "hd": n})
		if err != nil {
			t.Fatal(err)
		}
		want := n + (n - 1) + 1
		if len(asm.Auts) != want {
			t.Errorf("N=%d: %d constituents, want %d", n, len(asm.Auts), want)
		}
		if got := len(asm.Tails["tl"]); got != n {
			t.Errorf("N=%d: %d tail ports", n, got)
		}
	}
}

// TestMediumComposition: the X section must compose into ONE medium
// automaton per iteration (3 primitives -> 1 product automaton), with
// the section-private vertex hidden.
func TestMediumComposition(t *testing.T) {
	tmpl := build(t, orderedSrc, "Ordered", compile.Options{Simplify: true})
	asm, err := tmpl.Instantiate(map[string]int{"tl": 3, "hd": 3})
	if err != nil {
		t.Fatal(err)
	}
	// Each X medium is the product of Replicator × Fifo1 × Replicator:
	// 2 control states (the fifo) and 4 visible ports (tl, prev, next,
	// hd) after hiding the private interior vertices v and w. The Seq
	// constituents are also 2-state but have only 2 ports.
	xMediums := 0
	for _, a := range asm.Auts {
		if a.NumStates() == 2 && a.Ports.Count() == 4 {
			xMediums++
		}
	}
	if xMediums != 3 {
		t.Errorf("expected 3 composed X mediums (2 states, 4 ports), found %d", xMediums)
	}
}

// TestPrivateHiddenFreshPerInstance: private vertices of a medium become
// fresh instance ports, distinct across loop iterations.
func TestPrivateHiddenFreshPerInstance(t *testing.T) {
	src := `A(a[];b[]) = prod (i:1..#a) { Fifo1(a[i];m) mult Fifo1(m;b[i]) }`
	// m is indexed only implicitly: it is a top-level local used inside a
	// prod — shared across iterations, NOT private. All iterations merge
	// on m (one shared middle vertex).
	tmpl := build(t, src, "A", compile.Options{})
	asm, err := tmpl.Instantiate(map[string]int{"a": 2, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := asm.U.Lookup("m"); !ok {
		t.Error("shared local m should exist as one instance vertex")
	}
}

func TestScalarConnector(t *testing.T) {
	tmpl := build(t, `A(a;b) = Fifo1(a;m) mult Fifo1(m;b)`, "A", compile.Options{Simplify: true})
	if len(tmpl.ArrayParams()) != 0 {
		t.Errorf("array params: %v", tmpl.ArrayParams())
	}
	asm, err := tmpl.Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fully static: one composed medium with 4 states (2 fifos), the
	// private m hidden.
	if len(asm.Auts) != 1 {
		t.Fatalf("constituents = %d, want 1", len(asm.Auts))
	}
	if asm.Auts[0].NumStates() != 4 {
		t.Errorf("states = %d, want 4", asm.Auts[0].NumStates())
	}
	if m, ok := asm.U.Lookup("m"); ok {
		// m may exist as a name only if still referenced; it must not
		// appear in any sync set.
		for _, ts := range asm.Auts[0].Trans {
			for _, tr := range ts {
				if tr.Sync.Has(m) {
					t.Error("private vertex in sync set after hiding")
				}
			}
		}
	}
}

// TestNonparametrizedCoincides (§IV-C): for definitions without arrays,
// conditionals, and iterations, parametrized compilation coincides with
// the existing approach — everything composes at compile time into a
// single automaton.
func TestNonparametrizedCoincides(t *testing.T) {
	tmpl := build(t, `
A(a,b;c,d) =
    Replicator(a;x,y) mult Fifo1(x;p) mult Fifo1(y;q)
    mult Sync(p;c) mult Sync(q;d) mult SyncDrain(b,a;)
`, "A", compile.Options{Simplify: true})
	asm, err := tmpl.Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(asm.Auts) != 1 {
		t.Errorf("nonparametrized def left %d constituents", len(asm.Auts))
	}
}

// TestInstantiateLengthValidation.
func TestInstantiateLengthValidation(t *testing.T) {
	tmpl := build(t, orderedSrc, "Ordered", compile.Options{})
	if _, err := tmpl.Instantiate(map[string]int{"tl": 2}); err == nil {
		t.Error("missing hd length accepted")
	}
	if _, err := tmpl.Instantiate(map[string]int{"tl": 0, "hd": 0}); err == nil {
		t.Error("empty arrays accepted")
	}
	if _, err := tmpl.Instantiate(map[string]int{"tl": 2, "hd": 2, "xx": 3}); err == nil {
		t.Error("extraneous length accepted")
	}
}

// TestMergerInsertion: a vertex with multiple writers gets a merger node;
// the count of constituents grows by one.
func TestMergerInsertion(t *testing.T) {
	tmpl := build(t, `A(a[];b) = prod (i:1..#a) Sync(a[i];m) mult Sync(m;b)`, "A", compile.Options{})
	for _, n := range []int{2, 4} {
		asm, err := tmpl.Instantiate(map[string]int{"a": n})
		if err != nil {
			t.Fatal(err)
		}
		// n writers (syncs) + 1 reader medium + 1 inserted merger.
		if len(asm.Auts) != n+2 {
			t.Errorf("N=%d: constituents = %d, want %d", n, len(asm.Auts), n+2)
		}
	}
}

// TestDynPrimArity: a variadic primitive over a parametric range is
// checked at instantiation.
func TestDynPrimArity(t *testing.T) {
	tmpl := build(t, `A(a[];b) = Merger(a[1..#a];b)`, "A", compile.Options{})
	for _, n := range []int{1, 7} {
		asm, err := tmpl.Instantiate(map[string]int{"a": n})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if got := asm.Auts[0].NumTransitions(); got != n {
			t.Errorf("N=%d: merger transitions = %d", n, got)
		}
	}
}

// TestConditionalBranching: both branches of Fig. 9's if are exercised.
func TestConditionalBranching(t *testing.T) {
	tmpl := build(t, orderedSrc, "Ordered", compile.Options{})
	one, err := tmpl.Instantiate(map[string]int{"tl": 1, "hd": 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := tmpl.Instantiate(map[string]int{"tl": 4, "hd": 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Auts) >= len(many.Auts) {
		t.Errorf("branch selection broken: %d vs %d", len(one.Auts), len(many.Auts))
	}
}

// TestInstantiateDeterministic: instantiating twice yields identical
// shapes (sizes, port counts) — a property over random N.
func TestInstantiateDeterministic(t *testing.T) {
	tmpl := build(t, orderedSrc, "Ordered", compile.Options{Simplify: true})
	prop := func(nRaw uint8) bool {
		n := int(nRaw%8) + 1
		a1, err1 := tmpl.Instantiate(map[string]int{"tl": n, "hd": n})
		a2, err2 := tmpl.Instantiate(map[string]int{"tl": n, "hd": n})
		if err1 != nil || err2 != nil {
			return false
		}
		if len(a1.Auts) != len(a2.Auts) || a1.U.NumPorts() != a2.U.NumPorts() || a1.U.NumCells() != a2.U.NumCells() {
			return false
		}
		for i := range a1.Auts {
			if a1.Auts[i].NumStates() != a2.Auts[i].NumStates() ||
				a1.Auts[i].NumTransitions() != a2.Auts[i].NumTransitions() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMakePrimArityErrors.
func TestMakePrimArityErrors(t *testing.T) {
	u := ca.NewUniverse()
	p := func() ca.PortID { return u.FreshPort("p") }
	cases := []struct {
		name         string
		tails, heads int
	}{
		{"Sync", 2, 1},
		{"Sync", 1, 0},
		{"SyncDrain", 1, 0},
		{"Replicator", 2, 2},
		{"Merger", 0, 1},
	}
	for _, tc := range cases {
		tails := make([]ca.PortID, tc.tails)
		heads := make([]ca.PortID, tc.heads)
		for i := range tails {
			tails[i] = p()
		}
		for i := range heads {
			heads[i] = p()
		}
		if _, err := compile.MakePrim(u, tc.name, "", tails, heads, compile.Funcs{}); err == nil {
			t.Errorf("%s(%d;%d): no arity error", tc.name, tc.tails, tc.heads)
		}
	}
	if _, err := compile.MakePrim(u, "Nope", "", nil, nil, compile.Funcs{}); err == nil {
		t.Error("unknown primitive accepted")
	}
}

// TestFig10Analogy documents the medium counts for the paper's Fig. 10
// code shape at a concrete N.
func TestFig10Analogy(t *testing.T) {
	tmpl := build(t, orderedSrc, "Ordered", compile.Options{Simplify: true})
	const n = 4
	asm, err := tmpl.Instantiate(map[string]int{"tl": n, "hd": n})
	if err != nil {
		t.Fatal(err)
	}
	// Automaton3 analogue: n X-instances; Automaton4: n-1 Seq2;
	// Automaton2: the closing Seq2. (Automaton1 is the N=1 branch.)
	names := map[string]int{}
	for _, a := range asm.Auts {
		names[fmt.Sprintf("states=%d", a.NumStates())]++
	}
	if names["states=2"] != n+n-1+1 {
		// X mediums have 2 states; Seq primitives also have 2 states
		// (two tails). All n + (n-1) + 1 constituents are 2-state.
		t.Errorf("constituent state profile unexpected: %v", names)
	}
}
