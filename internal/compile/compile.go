package compile

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/ca"
	"repro/internal/flatten"
	"repro/internal/normalize"
	"repro/internal/prim"
	"repro/internal/sema"
)

// Funcs supplies the data functions referenced by Filter.* and
// Transformer.* primitives.
//
// Both kinds must be pure: deterministic in their argument and free of
// observable side effects. The engine relies on this — guards are
// evaluated once per dispatch opportunity (not re-polled while nothing
// changes), transformations exactly once per fired step — so an impure
// function can make enablement decisions stale or observe surprising
// call counts.
type Funcs struct {
	Filters      map[string]func(any) bool
	Transformers map[string]func(any) any
}

// Options control compile-time composition.
type Options struct {
	// Simplify applies transition-label simplification to each medium
	// automaton (§V-B point 1; the E7 ablation toggles this).
	Simplify bool
	// Limits bound compile-time products; a section whose product would
	// exceed them is left as separate constituents (graceful fallback).
	Limits ca.ProductLimits
}

// Template is a compiled, still-parametric connector.
type Template struct {
	Name  string
	Tails []ast.Param
	Heads []ast.Param

	nodes []node
	funcs Funcs
	opts  Options

	// Flat and Norm keep the intermediate forms for inspection
	// (cmd/reoc, tests).
	Flat ast.Expr
	Norm ast.Expr
}

// ArrayParams returns the names of array parameters (which need lengths
// at instantiation).
func (t *Template) ArrayParams() []string {
	var out []string
	for _, p := range append(append([]ast.Param{}, t.Tails...), t.Heads...) {
		if p.IsArray {
			out = append(out, p.Name)
		}
	}
	return out
}

// Build compiles the named definition.
func Build(info *sema.Info, name string, funcs Funcs, opts Options) (*Template, error) {
	di, ok := info.Defs[name]
	if !ok {
		return nil, fmt.Errorf("compile: unknown definition %q", name)
	}
	flat, err := flatten.Flatten(info, name)
	if err != nil {
		return nil, err
	}
	norm := normalize.Normalize(flat)

	t := &Template{
		Name:  name,
		Tails: di.Def.Tails,
		Heads: di.Def.Heads,
		funcs: funcs,
		opts:  opts,
		Flat:  flat,
		Norm:  norm,
	}

	c := &compiler{
		tmpl:   t,
		params: make(map[string]bool),
		usage:  make(map[string]map[int]bool),
	}
	for _, p := range di.Def.Params() {
		c.params[p.Name] = true
	}

	root := c.collectLevel(norm, nil)
	c.recordUsage(root)
	t.nodes, err = c.buildLevel(root)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// rawLevel is one normalized composition level before automaton building.
type rawLevel struct {
	id      int
	encl    []string // enclosing iteration variables, outermost first
	invokes []*ast.Invoke
	prods   []*rawProd
	ifs     []*rawIf
}

type rawProd struct {
	v      string
	lo, hi ast.IntExpr
	body   *rawLevel
}

type rawIf struct {
	cond       ast.BoolExpr
	then, els8 *rawLevel // els8 may be nil
}

type compiler struct {
	tmpl   *Template
	params map[string]bool
	nextID int
	usage  map[string]map[int]bool // vertex name -> level ids using it
}

func (c *compiler) collectLevel(e ast.Expr, encl []string) *rawLevel {
	lvl := &rawLevel{id: c.nextID, encl: append([]string(nil), encl...)}
	c.nextID++
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Mult:
			for _, f := range e.Factors {
				walk(f)
			}
		case *ast.Invoke:
			lvl.invokes = append(lvl.invokes, e)
		case *ast.Prod:
			body := c.collectLevel(e.Body, append(encl, e.Var))
			lvl.prods = append(lvl.prods, &rawProd{v: e.Var, lo: e.Lo, hi: e.Hi, body: body})
		case *ast.If:
			ri := &rawIf{cond: e.Cond, then: c.collectLevel(e.Then, encl)}
			if e.Else != nil {
				ri.els8 = c.collectLevel(e.Else, encl)
			}
			lvl.ifs = append(lvl.ifs, ri)
		}
	}
	walk(e)
	return lvl
}

// dynUsageID is the pseudo-level charged with the vertices of dynamic
// (length-dependent) invocations: such vertices are instantiated by name
// and must never be treated as private to a medium.
const dynUsageID = -1

func (c *compiler) recordUsage(lvl *rawLevel) {
	note := func(a ast.PortArg, id int) {
		if c.usage[a.Name] == nil {
			c.usage[a.Name] = make(map[int]bool)
		}
		c.usage[a.Name][id] = true
	}
	for _, inv := range lvl.invokes {
		id := lvl.id
		if isDynamic(inv) {
			id = dynUsageID
		}
		for _, a := range inv.Tails {
			note(a, id)
		}
		for _, a := range inv.Heads {
			note(a, id)
		}
	}
	for _, p := range lvl.prods {
		c.recordUsage(p.body)
	}
	for _, i := range lvl.ifs {
		c.recordUsage(i.then)
		if i.els8 != nil {
			c.recordUsage(i.els8)
		}
	}
}

// privateTo reports whether vertex name occurs only in level id and is not
// a parameter.
func (c *compiler) privateTo(name string, id int) bool {
	if c.params[name] {
		return false
	}
	uses := c.usage[name]
	return len(uses) == 1 && uses[id]
}

// node is one instantiation step of the template (cf. the body of
// Fig. 10's connect method).
type node interface {
	instantiate(b *InstBuilder, env *ienv) error
}

// symPort is a symbolic vertex: a name plus index expressions evaluated at
// instantiation.
type symPort struct {
	name    string
	indices []ast.IntExpr
	private bool // resolved to a fresh vertex per medium instantiation
}

func (s symPort) String() string {
	var sb strings.Builder
	sb.WriteString(s.name)
	for _, ix := range s.indices {
		fmt.Fprintf(&sb, "[%s]", ast.Render(ix))
	}
	return sb.String()
}

// medNode is a compile-time-composed medium automaton template.
type medNode struct {
	// auts usually holds one automaton (the section product); several if
	// composition was skipped (size fallback or shared-writer safety).
	auts []*ca.Automaton
	u    *ca.Universe
	// ports maps template ports to their symbolic form.
	ports map[ca.PortID]symPort
	// reads/writes record per-automaton roles (parallel to auts).
	reads  []ca.BitSet
	writes []ca.BitSet
}

// dynPrimNode is a primitive whose arity depends on lengths (it has
// parametric range arguments); it is built directly at instantiation.
type dynPrimNode struct {
	inv   *ast.Invoke
	funcs Funcs
}

// prodNode defers a loop to instantiation time.
type prodNode struct {
	v      string
	lo, hi ast.IntExpr
	body   []node
}

// ifNode defers a conditional to instantiation time.
type ifNode struct {
	cond       ast.BoolExpr
	then, els8 []node
}

// buildLevel converts one rawLevel into instantiation nodes, composing
// the section's static constituents into a medium automaton.
func (c *compiler) buildLevel(lvl *rawLevel) ([]node, error) {
	var nodes []node
	var static []*ast.Invoke
	for _, inv := range lvl.invokes {
		if isDynamic(inv) {
			nodes = append(nodes, &dynPrimNode{inv: inv, funcs: c.tmpl.funcs})
		} else {
			static = append(static, inv)
		}
	}
	if len(static) > 0 {
		med, err := c.buildMedium(static, lvl)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, med)
	}
	for _, p := range lvl.prods {
		body, err := c.buildLevel(p.body)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, &prodNode{v: p.v, lo: p.lo, hi: p.hi, body: body})
	}
	for _, i := range lvl.ifs {
		then, err := c.buildLevel(i.then)
		if err != nil {
			return nil, err
		}
		nd := &ifNode{cond: i.cond, then: then}
		if i.els8 != nil {
			nd.els8, err = c.buildLevel(i.els8)
			if err != nil {
				return nil, err
			}
		}
		nodes = append(nodes, nd)
	}
	return nodes, nil
}

// isDynamic reports whether the invocation's shape depends on lengths:
// it has a range argument with non-constant bounds.
func isDynamic(inv *ast.Invoke) bool {
	for _, a := range append(append([]ast.PortArg{}, inv.Tails...), inv.Heads...) {
		if a.IsRange {
			if _, ok := constInt(a.Lo); !ok {
				return true
			}
			if _, ok := constInt(a.Hi); !ok {
				return true
			}
		}
	}
	return false
}

func constInt(e ast.IntExpr) (int, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Val, true
	case *ast.BinInt:
		l, lok := constInt(e.L)
		r, rok := constInt(e.R)
		if !lok || !rok {
			return 0, false
		}
		switch e.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case "%":
			if r == 0 {
				return 0, false
			}
			return l % r, true
		}
	}
	return 0, false
}

// buildMedium builds and composes the automata of a section's static
// constituents over a fresh template universe.
func (c *compiler) buildMedium(invs []*ast.Invoke, lvl *rawLevel) (*medNode, error) {
	tu := ca.NewUniverse()
	med := &medNode{u: tu, ports: make(map[ca.PortID]symPort)}
	canon := make(map[string]ca.PortID)

	intern := func(a ast.PortArg) ca.PortID {
		key := a.String()
		if p, ok := canon[key]; ok {
			return p
		}
		p := tu.Port(key)
		canon[key] = p
		sp := symPort{name: a.Name, indices: a.Indices}
		sp.private = c.privateTo(a.Name, lvl.id) && indexPrefixMatches(a.Indices, lvl.encl)
		med.ports[p] = sp
		return p
	}
	expand := func(args []ast.PortArg) ([]ca.PortID, error) {
		var out []ca.PortID
		for _, a := range args {
			if a.IsRange {
				lo, _ := constInt(a.Lo)
				hi, _ := constInt(a.Hi)
				for i := lo; i <= hi; i++ {
					out = append(out, intern(ast.PortArg{
						Name:    a.Name,
						Indices: []ast.IntExpr{&ast.IntLit{Val: i}},
						Pos:     a.Pos,
					}))
				}
				continue
			}
			out = append(out, intern(a))
		}
		return out, nil
	}

	type built struct {
		aut    *ca.Automaton
		reads  ca.BitSet
		writes ca.BitSet
	}
	var parts []built
	for _, inv := range invs {
		tails, err := expand(inv.Tails)
		if err != nil {
			return nil, err
		}
		heads, err := expand(inv.Heads)
		if err != nil {
			return nil, err
		}
		aut, err := MakePrim(tu, inv.Name, inv.Attr, tails, heads, c.tmpl.funcs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", inv.Pos, err)
		}
		rd := tu.NewSet()
		wr := tu.NewSet()
		for _, p := range tails {
			rd.Set(p)
		}
		for _, p := range heads {
			wr.Set(p)
		}
		parts = append(parts, built{aut: aut, reads: rd, writes: wr})
	}

	// Section-local node resolution: a private vertex written by several
	// constituents needs a merger inserted *before* composition.
	writerCount := make(map[ca.PortID]int)
	for _, p := range parts {
		p.writes.ForEach(func(v ca.PortID) { writerCount[v]++ })
	}
	for v, n := range writerCount {
		if n < 2 {
			continue
		}
		sp := med.ports[v]
		if !sp.private {
			// Possible external writers too; resolved at instantiation.
			continue
		}
		var ins []ca.PortID
		for i := range parts {
			if !parts[i].writes.Has(v) {
				continue
			}
			w := tu.FreshPort("mrg/" + tu.Name(v))
			med.ports[w] = symPort{name: tu.Name(w), private: true}
			parts[i].aut = ca.RemapPorts(parts[i].aut, map[ca.PortID]ca.PortID{v: w})
			parts[i].writes.Clear(v)
			newW := tu.NewSet()
			parts[i].writes.ForEach(func(q ca.PortID) { newW.Set(q) })
			newW.Set(w)
			parts[i].writes = newW
			ins = append(ins, w)
		}
		m := prim.Merger(tu, ins, v)
		rd := tu.NewSet()
		for _, w := range ins {
			rd.Set(w)
		}
		wr := tu.NewSet()
		wr.Set(v)
		parts = append(parts, built{aut: m, reads: rd, writes: wr})
	}

	// Safety: constituents touching a non-private port that could need
	// instance-level node resolution stay out of the compile-time
	// product, so that resolution can remap each of them individually:
	//   - ports written by >= 2 section constituents (potential mergers),
	//   - ports both read and written within the section (a composed
	//     medium would count as reader *and* writer of the vertex, which
	//     node resolution cannot split).
	solo := make([]bool, len(parts))
	writerCount = make(map[ca.PortID]int)
	readerCount := make(map[ca.PortID]int)
	for _, p := range parts {
		p.writes.ForEach(func(v ca.PortID) { writerCount[v]++ })
		p.reads.ForEach(func(v ca.PortID) { readerCount[v]++ })
	}
	markSolo := func(v ca.PortID) {
		for i := range parts {
			if parts[i].writes.Has(v) || parts[i].reads.Has(v) {
				solo[i] = true
			}
		}
	}
	for v, n := range writerCount {
		if med.ports[v].private {
			continue
		}
		if n >= 2 || (n >= 1 && readerCount[v] >= 1) {
			markSolo(v)
		}
	}

	var composable []*ca.Automaton
	composedReads := tu.NewSet()
	composedWrites := tu.NewSet()
	for i, p := range parts {
		if solo[i] {
			med.auts = append(med.auts, p.aut)
			med.reads = append(med.reads, p.reads)
			med.writes = append(med.writes, p.writes)
			continue
		}
		composable = append(composable, p.aut)
		composedReads.OrInto(p.reads)
		composedWrites.OrInto(p.writes)
	}
	if len(composable) > 0 {
		composed, err := ca.ProductAll(composable, ca.ExpandFull, c.tmpl.opts.Limits)
		if err != nil {
			// Fallback: leave the section uncomposed.
			for i, p := range parts {
				if !solo[i] {
					med.auts = append(med.auts, p.aut)
					med.reads = append(med.reads, p.reads)
					med.writes = append(med.writes, p.writes)
				}
			}
		} else {
			composed.Name = fmt.Sprintf("%s/medium%d", c.tmpl.Name, lvl.id)
			// Hide private vertices: they cannot be shared with any
			// other medium, so they are pure internals of this one.
			hidden := tu.NewSet()
			for p, sp := range med.ports {
				if sp.private {
					hidden.Set(p)
				}
			}
			composed = ca.Hide(composed, hidden)
			if c.tmpl.opts.Simplify {
				vis := func(p ca.PortID) bool { return !hidden.Has(p) }
				simp, err := ca.Simplify(composed, vis)
				if err == nil {
					composed = simp
				}
			}
			med.auts = append(med.auts, composed)
			composedReads.AndNotInto(hidden)
			composedWrites.AndNotInto(hidden)
			med.reads = append(med.reads, composedReads)
			med.writes = append(med.writes, composedWrites)
		}
	}
	return med, nil
}

// indexPrefixMatches reports whether the index expressions start with
// exactly the enclosing iteration variables, in order — the condition
// under which a per-level vertex is genuinely private to one instantiation
// of the level (rather than shared across loop iterations).
func indexPrefixMatches(indices []ast.IntExpr, encl []string) bool {
	if len(indices) < len(encl) {
		return false
	}
	for i, v := range encl {
		ref, ok := indices[i].(*ast.VarRef)
		if !ok || ref.Name != v {
			return false
		}
	}
	return true
}

// MakePrim builds a primitive automaton over u with the given concrete
// port lists. Exposed for the builder API and tests.
func MakePrim(u *ca.Universe, name, attr string, tails, heads []ca.PortID, funcs Funcs) (*ca.Automaton, error) {
	b, ok := sema.Builtins[name]
	if !ok {
		return nil, fmt.Errorf("unknown primitive %q", name)
	}
	checkArity := func(n, min, max int, side string) error {
		if n < min {
			return fmt.Errorf("primitive %q needs at least %d %s port(s), got %d", name, min, side, n)
		}
		if max >= 0 && n > max {
			return fmt.Errorf("primitive %q takes at most %d %s port(s), got %d", name, max, side, n)
		}
		return nil
	}
	if err := checkArity(len(tails), b.MinTails, b.MaxTails, "tail"); err != nil {
		return nil, err
	}
	if err := checkArity(len(heads), b.MinHeads, b.MaxHeads, "head"); err != nil {
		return nil, err
	}

	switch name {
	case "Sync":
		return prim.Sync(u, tails[0], heads[0]), nil
	case "LossySync":
		return prim.LossySync(u, tails[0], heads[0]), nil
	case "SyncDrain":
		return prim.SyncDrain(u, tails[0], tails[1]), nil
	case "AsyncDrain":
		return prim.AsyncDrain(u, tails[0], tails[1]), nil
	case "SyncSpout":
		return prim.SyncSpout(u, heads[0], heads[1]), nil
	case "Spout1":
		return prim.Spout1(u, heads[0]), nil
	case "Fifo1":
		return prim.Fifo1(u, tails[0], heads[0]), nil
	case "Fifo1Full":
		return prim.Fifo1Full(u, tails[0], heads[0], prim.Token{}), nil
	case "Fifo":
		k, err := strconv.Atoi(attr)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("Fifo.%s: capacity must be a positive integer", attr)
		}
		return prim.FifoK(u, tails[0], heads[0], k), nil
	case "Filter":
		f, ok := funcs.Filters[attr]
		if !ok {
			return nil, fmt.Errorf("Filter.%s: no registered filter %q", attr, attr)
		}
		return prim.Filter(u, tails[0], heads[0], attr, f), nil
	case "Transformer":
		f, ok := funcs.Transformers[attr]
		if !ok {
			return nil, fmt.Errorf("Transformer.%s: no registered transformer %q", attr, attr)
		}
		return prim.Transformer(u, tails[0], heads[0], attr, f), nil
	case "Merger":
		return prim.Merger(u, tails, heads[0]), nil
	case "Replicator":
		return prim.Replicator(u, tails[0], heads), nil
	case "Router":
		return prim.Router(u, tails[0], heads), nil
	case "Seq":
		return prim.Seq(u, tails), nil
	case "Valve1":
		return prim.Valve1(u, tails[0], heads[0], tails[1]), nil
	}
	return nil, fmt.Errorf("primitive %q not implemented", name)
}
