package compile

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/ca"
	"repro/internal/prim"
)

// Assembly is a fully instantiated connector: concrete constituent
// automata over a fresh instance universe, with boundary ports bound to
// the definition's parameters. It is the input to engine construction.
type Assembly struct {
	U    *ca.Universe
	Auts []*ca.Automaton
	// Tails/Heads map parameter names to their instance ports in array
	// order (index 0 holds element 1). Scalars have one port.
	Tails map[string][]ca.PortID
	Heads map[string][]ca.PortID
}

// InstBuilder accumulates instance automata and vertex-role bookkeeping
// during instantiation.
type InstBuilder struct {
	u       *ca.Universe
	auts    []*ca.Automaton
	readers map[ca.PortID][]int
	writers map[ca.PortID][]int
	instSeq int
}

func newInstBuilder() *InstBuilder {
	return &InstBuilder{
		u:       ca.NewUniverse(),
		readers: make(map[ca.PortID][]int),
		writers: make(map[ca.PortID][]int),
	}
}

func (b *InstBuilder) add(a *ca.Automaton, reads, writes []ca.PortID) {
	idx := len(b.auts)
	b.auts = append(b.auts, a)
	for _, p := range reads {
		b.readers[p] = append(b.readers[p], idx)
	}
	for _, p := range writes {
		b.writers[p] = append(b.writers[p], idx)
	}
}

// ienv is the instantiation environment: iteration-variable values and
// array lengths.
type ienv struct {
	vars    map[string]int
	lengths map[string]int
}

func evalInt(e ast.IntExpr, env *ienv) (int, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Val, nil
	case *ast.VarRef:
		v, ok := env.vars[e.Name]
		if !ok {
			return 0, fmt.Errorf("%s: unbound variable %q", e.Pos, e.Name)
		}
		return v, nil
	case *ast.LenOf:
		n, ok := env.lengths[e.Name]
		if !ok {
			return 0, fmt.Errorf("%s: no length given for array %q", e.Pos, e.Name)
		}
		return n, nil
	case *ast.BinInt:
		l, err := evalInt(e.L, env)
		if err != nil {
			return 0, err
		}
		r, err := evalInt(e.R, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("%s: division by zero", e.Pos)
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, fmt.Errorf("%s: modulo by zero", e.Pos)
			}
			return l % r, nil
		}
		return 0, fmt.Errorf("%s: unknown operator %q", e.Pos, e.Op)
	}
	return 0, fmt.Errorf("unknown integer expression %T", e)
}

func evalBool(e ast.BoolExpr, env *ienv) (bool, error) {
	switch e := e.(type) {
	case *ast.Cmp:
		l, err := evalInt(e.L, env)
		if err != nil {
			return false, err
		}
		r, err := evalInt(e.R, env)
		if err != nil {
			return false, err
		}
		switch e.Op {
		case "==":
			return l == r, nil
		case "!=":
			return l != r, nil
		case "<":
			return l < r, nil
		case "<=":
			return l <= r, nil
		case ">":
			return l > r, nil
		case ">=":
			return l >= r, nil
		}
		return false, fmt.Errorf("%s: unknown comparison %q", e.Pos, e.Op)
	case *ast.BoolBin:
		l, err := evalBool(e.L, env)
		if err != nil {
			return false, err
		}
		if e.Op == "&&" && !l {
			return false, nil
		}
		if e.Op == "||" && l {
			return true, nil
		}
		return evalBool(e.R, env)
	case *ast.Not:
		v, err := evalBool(e.X, env)
		return !v, err
	}
	return false, fmt.Errorf("unknown condition %T", e)
}

// instPortName renders the canonical instance vertex name.
func instPortName(name string, idxs []int) string {
	out := name
	for _, i := range idxs {
		out += fmt.Sprintf("[%d]", i)
	}
	return out
}

func evalPortArg(a ast.PortArg, env *ienv) (string, error) {
	idxs := make([]int, 0, len(a.Indices))
	for _, e := range a.Indices {
		v, err := evalInt(e, env)
		if err != nil {
			return "", err
		}
		idxs = append(idxs, v)
	}
	return instPortName(a.Name, idxs), nil
}

// Instantiate evaluates the template for concrete array lengths,
// producing the connector instance's constituent automata. This is the
// run-time share of the parametrized compilation approach: the loops and
// conditionals recorded at compile time execute now, stamping out medium
// automata (§IV-D, Fig. 10's connect method).
func (t *Template) Instantiate(lengths map[string]int) (*Assembly, error) {
	env := &ienv{vars: make(map[string]int), lengths: make(map[string]int)}
	for _, p := range t.ArrayParams() {
		n, ok := lengths[p]
		if !ok {
			return nil, fmt.Errorf("compile: no length for array parameter %q of %q", p, t.Name)
		}
		if n < 1 {
			return nil, fmt.Errorf("compile: length %d for array parameter %q must be >= 1 (arrays are nonempty)", n, p)
		}
		env.lengths[p] = n
	}
	for p := range lengths {
		if _, ok := env.lengths[p]; !ok {
			return nil, fmt.Errorf("compile: %q is not an array parameter of %q", p, t.Name)
		}
	}

	b := newInstBuilder()
	asm := &Assembly{
		Tails: make(map[string][]ca.PortID),
		Heads: make(map[string][]ca.PortID),
	}
	bind := func(params []ast.Param, out map[string][]ca.PortID, dir ca.Dir) {
		for _, p := range params {
			if p.IsArray {
				n := env.lengths[p.Name]
				for i := 1; i <= n; i++ {
					id := b.u.Port(instPortName(p.Name, []int{i}))
					b.u.SetDir(id, dir)
					out[p.Name] = append(out[p.Name], id)
				}
			} else {
				id := b.u.Port(p.Name)
				b.u.SetDir(id, dir)
				out[p.Name] = append(out[p.Name], id)
			}
		}
	}
	bind(t.Tails, asm.Tails, ca.DirSource)
	bind(t.Heads, asm.Heads, ca.DirSink)

	for _, nd := range t.nodes {
		if err := nd.instantiate(b, env); err != nil {
			return nil, err
		}
	}
	if len(b.auts) == 0 {
		return nil, fmt.Errorf("compile: connector %q instantiates to an empty composition", t.Name)
	}
	if err := b.resolveNodes(); err != nil {
		return nil, err
	}

	asm.U = b.u
	asm.Auts = b.auts
	return asm, nil
}

func (m *medNode) instantiate(b *InstBuilder, env *ienv) error {
	b.instSeq++
	prefix := fmt.Sprintf("inst%d", b.instSeq)
	portMap := make(map[ca.PortID]ca.PortID, len(m.ports))
	for tp, sp := range m.ports {
		if sp.private {
			portMap[tp] = b.u.FreshPort(prefix + "/" + sp.name)
			continue
		}
		idxs := make([]int, 0, len(sp.indices))
		for _, e := range sp.indices {
			v, err := evalInt(e, env)
			if err != nil {
				return err
			}
			idxs = append(idxs, v)
		}
		portMap[tp] = b.u.Port(instPortName(sp.name, idxs))
	}
	for k, aut := range m.auts {
		inst, full := ca.InstantiateInto(aut, b.u, portMap, prefix)
		var reads, writes []ca.PortID
		m.reads[k].ForEach(func(p ca.PortID) {
			if q, ok := full[p]; ok {
				reads = append(reads, q)
			}
		})
		m.writes[k].ForEach(func(p ca.PortID) {
			if q, ok := full[p]; ok {
				writes = append(writes, q)
			}
		})
		b.add(inst, reads, writes)
	}
	return nil
}

func (d *dynPrimNode) instantiate(b *InstBuilder, env *ienv) error {
	expand := func(args []ast.PortArg) ([]ca.PortID, error) {
		var out []ca.PortID
		for _, a := range args {
			if a.IsRange {
				lo, err := evalInt(a.Lo, env)
				if err != nil {
					return nil, err
				}
				hi, err := evalInt(a.Hi, env)
				if err != nil {
					return nil, err
				}
				if hi < lo {
					return nil, fmt.Errorf("%s: empty range %d..%d", a.Pos, lo, hi)
				}
				for i := lo; i <= hi; i++ {
					out = append(out, b.u.Port(instPortName(a.Name, []int{i})))
				}
				continue
			}
			name, err := evalPortArg(a, env)
			if err != nil {
				return nil, err
			}
			out = append(out, b.u.Port(name))
		}
		return out, nil
	}
	tails, err := expand(d.inv.Tails)
	if err != nil {
		return err
	}
	heads, err := expand(d.inv.Heads)
	if err != nil {
		return err
	}
	aut, err := MakePrim(b.u, d.inv.Name, d.inv.Attr, tails, heads, d.funcs)
	if err != nil {
		return fmt.Errorf("%s: %w", d.inv.Pos, err)
	}
	b.add(aut, tails, heads)
	return nil
}

func (p *prodNode) instantiate(b *InstBuilder, env *ienv) error {
	lo, err := evalInt(p.lo, env)
	if err != nil {
		return err
	}
	hi, err := evalInt(p.hi, env)
	if err != nil {
		return err
	}
	saved, had := env.vars[p.v]
	for i := lo; i <= hi; i++ {
		env.vars[p.v] = i
		for _, nd := range p.body {
			if err := nd.instantiate(b, env); err != nil {
				return err
			}
		}
	}
	if had {
		env.vars[p.v] = saved
	} else {
		delete(env.vars, p.v)
	}
	return nil
}

func (n *ifNode) instantiate(b *InstBuilder, env *ienv) error {
	c, err := evalBool(n.cond, env)
	if err != nil {
		return err
	}
	branch := n.then
	if !c {
		branch = n.els8
	}
	for _, nd := range branch {
		if err := nd.instantiate(b, env); err != nil {
			return err
		}
	}
	return nil
}

// resolveNodes applies Reo node semantics to shared vertices: a vertex
// written by several producers (constituent automata and/or a
// task-attached source port) gets an explicit nondeterministic merger;
// multiple readers need nothing extra (the synchronous product already
// replicates data to every reader).
func (b *InstBuilder) resolveNodes() error {
	// Deterministic order: sort the multi-writer vertices.
	var multi []ca.PortID
	for v, ws := range b.writers {
		total := len(ws)
		if b.u.DirOf(v) == ca.DirSource {
			total++ // the attached task is a writer too
		}
		if total > 1 {
			multi = append(multi, v)
		}
	}
	sort.Slice(multi, func(i, j int) bool { return multi[i] < multi[j] })

	for _, v := range multi {
		ws := b.writers[v]
		for _, k := range ws {
			for _, r := range b.readers[v] {
				if r == k {
					return fmt.Errorf(
						"compile: vertex %q is both read and written by the same composed constituent and has other writers; restructure the connector",
						b.u.Name(v))
				}
			}
		}
		var ins []ca.PortID
		for _, k := range ws {
			w := b.u.FreshPort("node/" + b.u.Name(v))
			b.auts[k] = ca.RemapPorts(b.auts[k], map[ca.PortID]ca.PortID{v: w})
			b.writers[w] = []int{k}
			ins = append(ins, w)
		}
		delete(b.writers, v)

		out := v
		if b.u.DirOf(v) == ca.DirSource {
			// The task keeps writing v; v joins the merger inputs, and
			// readers move to a fresh merged vertex.
			ins = append(ins, v)
			out = b.u.FreshPort("node-out/" + b.u.Name(v))
			for _, r := range b.readers[v] {
				b.auts[r] = ca.RemapPorts(b.auts[r], map[ca.PortID]ca.PortID{v: out})
			}
			b.readers[out] = b.readers[v]
			delete(b.readers, v)
		}

		idx := len(b.auts)
		b.auts = append(b.auts, prim.Merger(b.u, ins, out))
		for _, w := range ins {
			b.readers[w] = append(b.readers[w], idx)
		}
		b.writers[out] = append(b.writers[out], idx)
	}
	return nil
}
