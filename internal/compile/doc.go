// Package compile implements the paper's parametrized compilation
// (§IV-C): a flattened, normalized connector definition is translated into
// a Template — the analogue of the generated Connector class of Fig. 10.
//
// Work that does not depend on array lengths is done here, at compile
// time: the constituents of each section are built as automata over a
// private template universe and composed into a "medium automaton"
// (with private vertices hidden and, optionally, transition labels
// simplified). Work that depends on lengths — loop unrolling, conditional
// selection, port binding — is recorded as instantiation nodes and
// deferred to Template.Instantiate, which runs when the number of tasks
// is known (§IV-D).
package compile
