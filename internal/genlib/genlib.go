// Package genlib holds checked-in output of the static code-generation
// backend (`reoc gen`), so that in-process tests and benchmarks can run
// a generated connector next to its interpreted twin without invoking
// the Go toolchain at test time.
//
// Each subdirectory is one emitted package, produced from the .reo
// source checked in beside this file. The golden test in internal/gen
// regenerates every entry and fails on any byte difference, so the
// checked-in output can never drift from the generator; regenerate
// with `go generate ./internal/genlib` after changing the generator or
// a source.
//
// internal/genlib/lane (from lane.reo) is the single Fifo1 lane of
// BenchmarkFireSteady: the root benchmark drives the interpreted and
// generated backends through the identical workload, and
// `reoc bench-gen` turns that comparison into perf-gate rows.
package genlib

//go:generate go run repro/cmd/reoc gen lane.reo Lane -o lane -pkg lane -force
