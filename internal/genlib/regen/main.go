// Command regen regenerates the checked-in parametric connector
// packages of internal/genlib (`reoc gen -parametric` output). It exists
// because the funcful connectors (xfab) reference registered data
// functions, which the reoc CLI cannot supply: generation must happen
// in-process with gendrv's shared test functions registered, exactly as
// the golden test re-derives them. Run from the genlib directory (the
// go:generate line in genlib.go does) after changing the generator or a
// .reo source, and commit the result.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	reo "repro"
	"repro/internal/gen"
	"repro/internal/gen/gendrv"
)

func main() {
	entries := []struct {
		src, connector, pkg string
		funcs               reo.Funcs
	}{
		{"fabric.reo", "Fabric", "fabric", reo.Funcs{}},
		{"xfab.reo", "XFab", "xfab", reo.Funcs{Filters: gendrv.TestFilters(), Transformers: gendrv.TestXforms()}},
		{"msfabric.reo", "MSFabric", "msfabric", reo.Funcs{}},
	}
	for _, e := range entries {
		src, err := os.ReadFile(e.src)
		if err != nil {
			fatal(err)
		}
		g, err := gen.GenerateParametric(string(src), gen.Config{
			Connector: e.connector,
			Package:   e.pkg,
			Funcs:     e.funcs,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.connector, err))
		}
		if err := os.MkdirAll(e.pkg, 0o755); err != nil {
			fatal(err)
		}
		target := filepath.Join(e.pkg, e.pkg+"_gen.go")
		if err := os.WriteFile(target, g.File, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("regen: wrote %s (%d region templates, %d states, %d transitions)\n",
			target, g.Templates, g.States, g.Transitions)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "regen:", err)
	os.Exit(1)
}
