package flatten

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sema"
)

// Flatten returns the body of the named definition with all composite
// constituents expanded. The result contains only primitive invocations
// under Mult/Prod/If structure.
func Flatten(info *sema.Info, name string) (ast.Expr, error) {
	di, ok := info.Defs[name]
	if !ok {
		return nil, fmt.Errorf("flatten: unknown definition %q", name)
	}
	f := &flattener{info: info}
	env := newEnv()
	// Top-level parameters bind to themselves.
	for _, p := range di.Def.Params() {
		env.ports[p.Name] = binding{arg: ast.PortArg{Name: p.Name}, isArray: p.IsArray, identity: true}
	}
	return f.expr(di.Def.Body, env)
}

type binding struct {
	// arg is the resolved argument: a scalar reference or a range.
	arg     ast.PortArg
	isArray bool
	// identity marks top-level parameters bound to themselves.
	identity bool
}

type env struct {
	// ports binds parameter names of the definition being expanded.
	ports map[string]binding
	// locals maps this definition's local names to their renamed form.
	locals map[string]string
	// vars renames iteration variables (capture avoidance).
	vars map[string]string
	// encl is the stack of iteration variables (post-rename) enclosing
	// the current position, used to freeze ext at inline sites.
	encl []string
	// ext is the frozen stack of iteration variables that enclosed the
	// *invocation site* of the body being expanded. An in-lined body's
	// locals become arrays over exactly these dimensions: one private
	// copy per instantiation of the body, but a single vertex with
	// respect to the body's own internal loops (locals have static
	// scope within their definition).
	ext []string
	// extendLocals is true while expanding an in-lined body (locals get
	// renamed and the ext-dimension extension); false at top level.
	extendLocals bool
	// lens substitutes #param for expanded bodies.
	lens map[string]ast.IntExpr
}

func newEnv() *env {
	return &env{
		ports:  make(map[string]binding),
		locals: make(map[string]string),
		vars:   make(map[string]string),
		lens:   make(map[string]ast.IntExpr),
	}
}

type flattener struct {
	info *sema.Info
	uid  int
	// scope tracks all iteration-variable names in scope to keep
	// renames collision-free.
	scope map[string]bool
}

func (f *flattener) fresh(base string) string {
	f.uid++
	return fmt.Sprintf("%s$%d", base, f.uid)
}

func (f *flattener) expr(e ast.Expr, en *env) (ast.Expr, error) {
	switch e := e.(type) {
	case *ast.Mult:
		out := &ast.Mult{Pos: e.Pos}
		for _, fac := range e.Factors {
			nf, err := f.expr(fac, en)
			if err != nil {
				return nil, err
			}
			if m, ok := nf.(*ast.Mult); ok {
				out.Factors = append(out.Factors, m.Factors...)
			} else {
				out.Factors = append(out.Factors, nf)
			}
		}
		if len(out.Factors) == 1 {
			return out.Factors[0], nil
		}
		return out, nil

	case *ast.Invoke:
		if _, isBuiltin := sema.Builtins[e.Name]; isBuiltin {
			return f.substInvoke(e, en)
		}
		return f.inline(e, en)

	case *ast.Prod:
		lo, err := f.intExpr(e.Lo, en)
		if err != nil {
			return nil, err
		}
		hi, err := f.intExpr(e.Hi, en)
		if err != nil {
			return nil, err
		}
		// Rename the iteration variable if it is already in scope.
		name := e.Var
		if f.scope == nil {
			f.scope = make(map[string]bool)
		}
		if f.scope[name] {
			name = f.fresh(name)
		}
		f.scope[name] = true
		oldVar, hadVar := en.vars[e.Var]
		en.vars[e.Var] = name
		en.encl = append(en.encl, name)
		body, err := f.expr(e.Body, en)
		en.encl = en.encl[:len(en.encl)-1]
		if hadVar {
			en.vars[e.Var] = oldVar
		} else {
			delete(en.vars, e.Var)
		}
		delete(f.scope, name)
		if err != nil {
			return nil, err
		}
		return &ast.Prod{Var: name, Lo: lo, Hi: hi, Body: body, Pos: e.Pos}, nil

	case *ast.If:
		cond, err := f.boolExpr(e.Cond, en)
		if err != nil {
			return nil, err
		}
		then, err := f.expr(e.Then, en)
		if err != nil {
			return nil, err
		}
		out := &ast.If{Cond: cond, Then: then, Pos: e.Pos}
		if e.Else != nil {
			out.Else, err = f.expr(e.Else, en)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("flatten: unknown expression node %T", e)
}

// substInvoke rewrites a primitive invocation's port arguments under the
// current environment.
func (f *flattener) substInvoke(inv *ast.Invoke, en *env) (*ast.Invoke, error) {
	out := &ast.Invoke{Name: inv.Name, Attr: inv.Attr, Pos: inv.Pos}
	var err error
	out.Tails, err = f.portArgs(inv.Tails, en)
	if err != nil {
		return nil, err
	}
	out.Heads, err = f.portArgs(inv.Heads, en)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (f *flattener) portArgs(args []ast.PortArg, en *env) ([]ast.PortArg, error) {
	out := make([]ast.PortArg, 0, len(args))
	for _, a := range args {
		na, err := f.portArg(a, en)
		if err != nil {
			return nil, err
		}
		out = append(out, na)
	}
	return out, nil
}

// portArg resolves one vertex reference under the environment.
func (f *flattener) portArg(a ast.PortArg, en *env) (ast.PortArg, error) {
	// Substitute index expressions first.
	indices := make([]ast.IntExpr, 0, len(a.Indices))
	for _, ix := range a.Indices {
		nix, err := f.intExpr(ix, en)
		if err != nil {
			return ast.PortArg{}, err
		}
		indices = append(indices, nix)
	}
	if a.IsRange {
		lo, err := f.intExpr(a.Lo, en)
		if err != nil {
			return ast.PortArg{}, err
		}
		hi, err := f.intExpr(a.Hi, en)
		if err != nil {
			return ast.PortArg{}, err
		}
		if b, isParam := en.ports[a.Name]; isParam {
			return rebindRange(a, b, lo, hi)
		}
		// Range over a local array. Supported only where the local needs
		// no enclosing-dimension extension (top-level definitions):
		// a range cannot carry a multi-dimensional prefix.
		if en.extendLocals && len(en.ext) > 0 {
			return ast.PortArg{}, fmt.Errorf("%s: range over local array %q inside an in-lined body under iteration", a.Pos, a.Name)
		}
		name, seen := en.locals[a.Name]
		if !seen {
			if en.extendLocals {
				name = f.fresh(a.Name)
			} else {
				name = a.Name
			}
			en.locals[a.Name] = name
		}
		return ast.PortArg{Name: name, IsRange: true, Lo: lo, Hi: hi, Pos: a.Pos}, nil
	}

	if b, isParam := en.ports[a.Name]; isParam {
		return rebindScalar(a, b, indices)
	}

	// Local vertex.
	name, seen := en.locals[a.Name]
	if !seen {
		if en.extendLocals {
			name = f.fresh(a.Name)
		} else {
			name = a.Name
		}
		en.locals[a.Name] = name
	}
	out := ast.PortArg{Name: name, Pos: a.Pos}
	if en.extendLocals {
		for _, v := range en.ext {
			out.Indices = append(out.Indices, &ast.VarRef{Name: v, Pos: a.Pos})
		}
	}
	out.Indices = append(out.Indices, indices...)
	return out, nil
}

// rebindScalar resolves a parameter reference (bare or indexed) through
// its binding.
func rebindScalar(a ast.PortArg, b binding, indices []ast.IntExpr) (ast.PortArg, error) {
	if !b.isArray {
		if len(indices) > 0 {
			return ast.PortArg{}, fmt.Errorf("%s: scalar parameter %q indexed", a.Pos, a.Name)
		}
		// The binding's argument is already fully resolved.
		return b.arg, nil
	}
	// Bare reference to an array parameter: a whole-array pass-through
	// (valid only as an argument for another array parameter; sema
	// enforces the context).
	if len(indices) == 0 {
		return b.arg, nil
	}
	// Array parameter with an index: p[e].
	if len(indices) != 1 {
		return ast.PortArg{}, fmt.Errorf("%s: array parameter %q needs exactly one index", a.Pos, a.Name)
	}
	e := indices[0]
	if b.identity {
		return ast.PortArg{Name: b.arg.Name, Indices: []ast.IntExpr{e}, Pos: a.Pos}, nil
	}
	if b.arg.IsRange {
		// p bound to x[lo..hi]: p[e] = x[lo + e - 1] (arrays are 1-based).
		ix := addInt(addInt(b.arg.Lo, e), &ast.IntLit{Val: -1})
		return ast.PortArg{Name: b.arg.Name, Indices: []ast.IntExpr{ix}, Pos: a.Pos}, nil
	}
	// p bound to a whole array by name.
	out := b.arg
	out.Indices = append(append([]ast.IntExpr(nil), b.arg.Indices...), e)
	return out, nil
}

// rebindRange resolves p[lo..hi] where p is an array parameter.
func rebindRange(a ast.PortArg, b binding, lo, hi ast.IntExpr) (ast.PortArg, error) {
	if !b.isArray {
		return ast.PortArg{}, fmt.Errorf("%s: range over scalar parameter %q", a.Pos, a.Name)
	}
	if b.identity {
		return ast.PortArg{Name: b.arg.Name, IsRange: true, Lo: lo, Hi: hi, Pos: a.Pos}, nil
	}
	if b.arg.IsRange {
		// p = x[plo..phi]; p[lo..hi] = x[plo+lo-1 .. plo+hi-1].
		nlo := addInt(addInt(b.arg.Lo, lo), &ast.IntLit{Val: -1})
		nhi := addInt(addInt(b.arg.Lo, hi), &ast.IntLit{Val: -1})
		return ast.PortArg{Name: b.arg.Name, IsRange: true, Lo: nlo, Hi: nhi, Pos: a.Pos}, nil
	}
	return ast.PortArg{Name: b.arg.Name, IsRange: true, Lo: lo, Hi: hi, Pos: a.Pos}, nil
}

func addInt(l, r ast.IntExpr) ast.IntExpr {
	// Fold the common literal cases to keep flattened output readable.
	ll, lok := l.(*ast.IntLit)
	rl, rok := r.(*ast.IntLit)
	if lok && rok {
		return &ast.IntLit{Val: ll.Val + rl.Val}
	}
	if lok && ll.Val == 0 {
		return r
	}
	if rok && rl.Val == 0 {
		return l
	}
	return &ast.BinInt{Op: "+", L: l, R: r}
}

// inline expands a composite invocation.
func (f *flattener) inline(inv *ast.Invoke, en *env) (ast.Expr, error) {
	target := f.info.Defs[inv.Name]
	if target == nil {
		return nil, fmt.Errorf("%s: unknown connector %q", inv.Pos, inv.Name)
	}
	def := target.Def

	// Resolve the invocation arguments in the caller environment.
	tails, err := f.portArgs(inv.Tails, en)
	if err != nil {
		return nil, err
	}
	heads, err := f.portArgs(inv.Heads, en)
	if err != nil {
		return nil, err
	}

	inner := newEnv()
	inner.extendLocals = true
	inner.encl = append(inner.encl, en.encl...)
	inner.ext = append(inner.ext, en.encl...)
	// vars: enclosing iteration variables remain visible inside index
	// expressions introduced by substitution only — the body's own
	// references to them are out of scope (sema guarantees the body only
	// references its own iteration variables and parameters).

	bind := func(params []ast.Param, args []ast.PortArg) error {
		if len(params) != len(args) {
			return fmt.Errorf("%s: %q expects %d arguments, got %d", inv.Pos, def.Name, len(params), len(args))
		}
		for i, p := range params {
			arg := args[i]
			inner.ports[p.Name] = binding{arg: arg, isArray: p.IsArray}
			if p.IsArray {
				if arg.IsRange {
					// #p = hi - lo + 1
					inner.lens[p.Name] = addInt(addInt(arg.Hi, &ast.BinInt{Op: "-", L: &ast.IntLit{Val: 0}, R: arg.Lo}), &ast.IntLit{Val: 1})
				} else {
					inner.lens[p.Name] = &ast.LenOf{Name: arg.Name}
				}
			}
		}
		return nil
	}
	if err := bind(def.Tails, tails); err != nil {
		return nil, err
	}
	if err := bind(def.Heads, heads); err != nil {
		return nil, err
	}
	return f.expr(def.Body, inner)
}

func (f *flattener) intExpr(e ast.IntExpr, en *env) (ast.IntExpr, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e, nil
	case *ast.VarRef:
		if n, ok := en.vars[e.Name]; ok {
			return &ast.VarRef{Name: n, Pos: e.Pos}, nil
		}
		return e, nil
	case *ast.LenOf:
		if sub, ok := en.lens[e.Name]; ok {
			return sub, nil
		}
		return e, nil
	case *ast.BinInt:
		l, err := f.intExpr(e.L, en)
		if err != nil {
			return nil, err
		}
		r, err := f.intExpr(e.R, en)
		if err != nil {
			return nil, err
		}
		return &ast.BinInt{Op: e.Op, L: l, R: r, Pos: e.Pos}, nil
	}
	return nil, fmt.Errorf("flatten: unknown integer expression %T", e)
}

func (f *flattener) boolExpr(e ast.BoolExpr, en *env) (ast.BoolExpr, error) {
	switch e := e.(type) {
	case *ast.Cmp:
		l, err := f.intExpr(e.L, en)
		if err != nil {
			return nil, err
		}
		r, err := f.intExpr(e.R, en)
		if err != nil {
			return nil, err
		}
		return &ast.Cmp{Op: e.Op, L: l, R: r, Pos: e.Pos}, nil
	case *ast.BoolBin:
		l, err := f.boolExpr(e.L, en)
		if err != nil {
			return nil, err
		}
		r, err := f.boolExpr(e.R, en)
		if err != nil {
			return nil, err
		}
		return &ast.BoolBin{Op: e.Op, L: l, R: r, Pos: e.Pos}, nil
	case *ast.Not:
		x, err := f.boolExpr(e.X, en)
		if err != nil {
			return nil, err
		}
		return &ast.Not{X: x, Pos: e.Pos}, nil
	}
	return nil, fmt.Errorf("flatten: unknown condition %T", e)
}
