// Package flatten expands composite connector definitions in-line
// (§IV-C, first compilation step): every non-primitive constituent is
// recursively replaced by its body, with parameters substituted by the
// invocation's arguments and local vertices hygienically renamed.
//
// A local vertex of an in-lined body that sits under enclosing `prod`
// iterations at the invocation site becomes an array indexed by the
// enclosing iteration variables: each instantiated body gets its own
// private vertices, as the paper's in-lining semantics requires. Local
// vertices of the *top-level* definition itself are single vertices with
// static scope, shared across iterations.
package flatten
