package flatten_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/flatten"
	"repro/internal/parser"
	"repro/internal/sema"
)

func flat(t *testing.T, src, def string) ast.Expr {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	e, err := flatten.Flatten(info, def)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// countInvokes counts primitive invocations by name.
func countInvokes(e ast.Expr) map[string]int {
	out := map[string]int{}
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Mult:
			for _, f := range e.Factors {
				walk(f)
			}
		case *ast.Invoke:
			out[e.Name]++
		case *ast.Prod:
			walk(e.Body)
		case *ast.If:
			walk(e.Then)
			if e.Else != nil {
				walk(e.Else)
			}
		}
	}
	walk(e)
	return out
}

// TestExample9 reproduces the paper's Example 9: flattening
// ConnectorEx11b yields ConnectorEx11a up to associativity and
// commutativity of mult (same multiset of primitives).
func TestExample9(t *testing.T) {
	src := `
ConnectorEx11a(tl1,tl2;hd1,hd2) =
    Replicator(tl1;prev1,v1) mult Replicator(tl2;prev2,v2)
    mult Fifo1(v1;w1) mult Fifo1(v2;w2)
    mult Replicator(w1;next1,hd1) mult Replicator(w2;next2,hd2)
    mult Seq(next1,prev2;) mult Seq(prev1,next2;)

X(tl;prev,next,hd) =
    Replicator(tl;prev,v) mult Fifo1(v;w) mult Replicator(w;next,hd)

ConnectorEx11b(tl1,tl2;hd1,hd2) =
    X(tl1;prev1,next1,hd1) mult X(tl2;prev2,next2,hd2)
    mult Seq(next1,prev2;) mult Seq(prev1,next2;)
`
	a := countInvokes(flat(t, src, "ConnectorEx11a"))
	b := countInvokes(flat(t, src, "ConnectorEx11b"))
	for name, n := range a {
		if b[name] != n {
			t.Errorf("%s: a has %d, b has %d", name, n, b[name])
		}
	}
	if len(a) != len(b) {
		t.Errorf("primitive sets differ: %v vs %v", a, b)
	}
}

// TestHygienicRenaming: two inlines of the same definition get distinct
// locals.
func TestHygienicRenaming(t *testing.T) {
	src := `
B(x;y) = Fifo1(x;m) mult Fifo1(m;y)
A(a;b) = B(a;mid) mult B(mid;b)
`
	e := flat(t, src, "A")
	rendered := ast.RenderExpr(e, "")
	// Two distinct renamed locals must appear, and the bare name "m"
	// must not leak.
	if strings.Contains(rendered, "(m;") || strings.Contains(rendered, ";m)") {
		t.Errorf("unrenamed local leaked:\n%s", rendered)
	}
	names := map[string]bool{}
	for _, tok := range strings.FieldsFunc(rendered, func(r rune) bool {
		return strings.ContainsRune("();, \n", r)
	}) {
		if strings.HasPrefix(tok, "m$") {
			names[tok] = true
		}
	}
	if len(names) != 2 {
		t.Errorf("want 2 distinct renamed m locals, got %v", names)
	}
}

// TestLoopLocalExtension: locals of a body in-lined under prod become
// arrays over the iteration variable (fresh vertices per iteration).
func TestLoopLocalExtension(t *testing.T) {
	src := `
X(x;y) = Fifo1(x;v) mult Fifo1(v;y)
A(a[];b[]) = prod (i:1..#a) X(a[i];b[i])
`
	e := flat(t, src, "A")
	rendered := ast.RenderExpr(e, "")
	if !strings.Contains(rendered, "[i]") || !strings.Contains(rendered, "v$") {
		t.Errorf("loop-extended local missing:\n%s", rendered)
	}
}

// TestTopLevelLocalNotExtended: the defining connector's own locals keep
// static scope across iterations (the implicit-merger idiom).
func TestTopLevelLocalNotExtended(t *testing.T) {
	src := `A(a[];b) = prod (i:1..#a) Sync(a[i];m) mult Sync(m;b)`
	e := flat(t, src, "A")
	rendered := ast.RenderExpr(e, "")
	if strings.Contains(rendered, "m[") || strings.Contains(rendered, "m$") {
		t.Errorf("top-level local wrongly extended:\n%s", rendered)
	}
}

// TestRangeIndexArithmetic: binding an array parameter to a slice offsets
// indices (p[e] -> x[lo+e-1]).
func TestRangeIndexArithmetic(t *testing.T) {
	src := `
B(x[];y) = Merger(x[1..#x];y)
A(a[];b) = B(a[3..5];b)
`
	e := flat(t, src, "A")
	rendered := ast.RenderExpr(e, "")
	// #x = 5-3+1 = 3; x[1..3] maps back to a[3..5].
	if !strings.Contains(rendered, "a[") {
		t.Errorf("slice rebinding lost the base array:\n%s", rendered)
	}
	inv := e.(*ast.Invoke)
	if !inv.Tails[0].IsRange {
		t.Fatalf("expected range arg, got %v", inv.Tails[0])
	}
}

// TestLenOfSubstitution: #p for a range-bound parameter becomes hi-lo+1.
func TestLenOfSubstitution(t *testing.T) {
	src := `
B(x[];) = Seq(x[1..#x];)
A(a[];) = B(a[2..#a];)
`
	e := flat(t, src, "A")
	inv := e.(*ast.Invoke)
	if inv.Name != "Seq" {
		t.Fatalf("got %s", inv.Name)
	}
	arg := inv.Tails[0]
	if !arg.IsRange || arg.Name != "a" {
		t.Fatalf("arg: %+v", arg)
	}
	if strings.Contains(ast.Render(arg.Hi), "#x") {
		t.Errorf("#x not substituted: %s", ast.Render(arg.Hi))
	}
}

// TestIterationVarCapture: nested inlines with clashing loop variables
// stay hygienic.
func TestIterationVarCapture(t *testing.T) {
	src := `
B(x[];y[]) = prod (i:1..#x) Sync(x[i];y[i])
A(a[];b[]) = prod (i:1..#a) B(a;b)
`
	e := flat(t, src, "A")
	// Outer prod over i; inner prod must have been renamed.
	outer := e.(*ast.Prod)
	inner := outer.Body.(*ast.Prod)
	if inner.Var == outer.Var {
		t.Errorf("loop variable captured: outer %q inner %q", outer.Var, inner.Var)
	}
}

func TestFlattenUnknownDef(t *testing.T) {
	f, _ := parser.Parse(`A(a;b) = Sync(a;b)`)
	info, _ := sema.Check(f)
	if _, err := flatten.Flatten(info, "Nope"); err == nil {
		t.Error("unknown definition accepted")
	}
}
