// Package wire is the framing layer of distributed region links: the
// length-prefixed binary protocol two reod nodes (or any two processes
// sharing a split region plan) speak over a stream connection.
//
// A connection carries frames. Every frame is
//
//	u32  length of the body, big-endian (the prefix itself excluded)
//	u8   frame type
//	u32  link index (the position in the shared region plan's link list)
//	u64  sequence number
//	...  payload, by type
//
// Data frames move one committed burst of a link: the payload is a
// count-prefixed run of typed tagged values (codec.go), and Seq is the
// absolute index of the first value (counting every value ever pushed
// on the link, including a Fifo1Full seed). DataBatch frames multiplex
// bursts of several links bound for the same peer into one frame — one
// syscall — each sub-burst carrying its own link, seq and values; the
// header Link/Seq are unused. Ack frames carry no payload; Seq is the
// cumulative count of values the consumer's region has popped, so one
// ack retires every in-flight burst up to it. AckBatch frames coalesce
// the head advances of many links into one frame of (link, seq) pairs.
// Hello frames open a connection: the payload carries the node's name
// and the identity checksum of its region plan, and both checks (plus
// the protocol version) must match before any Data flows. Close
// announces an orderly local shutdown; Error carries a peer's failure
// reason so the local regions can break with it.
//
// The hot path is allocation-free at steady state: WriteFrame stages
// the body in a pooled buffer and issues one Write; ReadFrameInto
// decodes into a caller-owned Frame and scratch buffer, reusing the
// value slices of previous frames. Frames themselves pool through
// GetFrame/PutFrame.
//
// The protocol is strictly SPSC per link — exactly one node produces
// Data and exactly one produces Acks — so sequence numbers need no
// reconciliation: any gap is a protocol violation, reported, never
// repaired. Version 2 introduced the typed codec and the batch frames;
// the Hello exchange refuses a version mismatch, so mixed-version
// fleets fail loudly at connect, never mid-stream.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
)

// Frame types.
const (
	// FrameHello opens a connection: identity handshake, both directions.
	FrameHello = iota + 1
	// FrameData carries one committed burst of link Link, first value at
	// absolute sequence Seq.
	FrameData
	// FrameAck retires delivered values of link Link: Seq is the
	// cumulative pop count on the consumer side.
	FrameAck
	// FrameClose announces an orderly shutdown of the sending node.
	FrameClose
	// FrameError carries the sending node's failure reason (Err).
	FrameError
	// FrameAckBatch coalesces cumulative acks of many links into one
	// frame (Acks).
	FrameAckBatch
	// FrameDataBatch multiplexes committed bursts of many links into one
	// frame (Bursts).
	FrameDataBatch
)

// DefaultMaxFrame bounds a frame body (16 MiB): a length prefix beyond
// it is treated as stream corruption, not an allocation request.
const DefaultMaxFrame = 1 << 24

// Version is the protocol version carried (and required equal) in the
// Hello exchange. Version 2: typed value codec, ack and data batch
// frames.
const Version = 2

// helloMagic guards against a non-wire peer: the first four payload
// bytes of every Hello.
const helloMagic = 0x5245_4F57 // "REOW"

// frameHeaderLen is the fixed body prefix every frame carries: type,
// link, seq.
const frameHeaderLen = 13

// Ack is one entry of an AckBatch: the cumulative pop count of one
// link.
type Ack struct {
	Link uint32
	Seq  uint64
}

// Burst is one entry of a DataBatch: one committed burst of one link.
type Burst struct {
	Link uint32
	Seq  uint64
	Vals []any
}

// Frame is one decoded protocol frame.
type Frame struct {
	Type byte
	// Link is the plan-global link index the frame addresses
	// (FrameData/FrameAck only).
	Link uint32
	// Seq is the absolute first-value index of a Data burst, or the
	// cumulative pop count of an Ack.
	Seq uint64
	// Vals is a Data burst's payload.
	Vals []any
	// Acks is an AckBatch's payload.
	Acks []Ack
	// Bursts is a DataBatch's payload.
	Bursts []Burst
	// Node and Sum are the Hello identity: the sender's node name and
	// its plan checksum (IdentitySum).
	Node string
	Sum  uint64
	// Err is a FrameError's failure reason.
	Err string
}

// Reset clears the frame for reuse: value references are dropped (so a
// pooled frame does not pin decoded payloads) but every slice keeps its
// capacity, which is what makes the steady-state read/write path
// allocation-free.
func (f *Frame) Reset() {
	f.Type, f.Link, f.Seq = 0, 0, 0
	f.Node, f.Err = "", ""
	f.Sum = 0
	for i := range f.Vals {
		f.Vals[i] = nil
	}
	f.Vals = f.Vals[:0]
	f.Acks = f.Acks[:0]
	for i := range f.Bursts {
		b := &f.Bursts[i]
		for j := range b.Vals {
			b.Vals[j] = nil
		}
		b.Vals = b.Vals[:0]
		b.Link, b.Seq = 0, 0
	}
	f.Bursts = f.Bursts[:0]
}

// NextBurst appends and returns the frame's next DataBatch burst,
// reusing the value-slice capacity a previous occupant of the slot left
// behind (append of a fresh Burst{} would drop it).
func (f *Frame) NextBurst(link uint32, seq uint64) *Burst {
	n := len(f.Bursts)
	if n < cap(f.Bursts) {
		f.Bursts = f.Bursts[:n+1]
	} else {
		f.Bursts = append(f.Bursts, Burst{})
	}
	b := &f.Bursts[n]
	b.Link, b.Seq = link, seq
	b.Vals = b.Vals[:0]
	return b
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// GetFrame returns a pooled, reset frame.
func GetFrame() *Frame { return framePool.Get().(*Frame) }

// PutFrame resets f and returns it to the pool. The caller must not
// touch f (or any slice it handed out) afterwards.
func PutFrame(f *Frame) {
	f.Reset()
	framePool.Put(f)
}

// encBuf is a pooled encode buffer: WriteFrame stages prefix + body in
// it and issues a single Write, and the buffer's growth is retained
// across frames.
type encBuf struct{ b []byte }

var encPool = sync.Pool{New: func() any { return new(encBuf) }}

// IdentitySum folds the given strings into a 64-bit FNV-1a checksum.
// Both nodes of a connection derive it from their region plan (connector
// name, seed, region and link shapes); a mismatch at Hello means the
// processes were built from different programs and the connection is
// refused before any data moves.
func IdentitySum(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// WriteFrame encodes f to w as one length-prefixed frame, staged in a
// pooled buffer and issued as a single Write. Zero steady-state
// allocations for fast-path payloads.
func WriteFrame(w io.Writer, f *Frame) error {
	eb := encPool.Get().(*encBuf)
	defer encPool.Put(eb)
	b := eb.b[:0]
	b = append(b, 0, 0, 0, 0) // length prefix, patched below
	b = append(b, f.Type)
	b = binary.BigEndian.AppendUint32(b, f.Link)
	b = binary.BigEndian.AppendUint64(b, f.Seq)
	var err error
	switch f.Type {
	case FrameHello:
		b = binary.BigEndian.AppendUint32(b, helloMagic)
		b = binary.BigEndian.AppendUint16(b, Version)
		b = binary.BigEndian.AppendUint64(b, f.Sum)
		b = append(b, f.Node...)
	case FrameData:
		if b, err = appendValues(b, f.Vals); err != nil {
			eb.b = b
			return fmt.Errorf("wire: encode burst (link %d, seq %d): %w", f.Link, f.Seq, err)
		}
	case FrameDataBatch:
		b = binary.AppendUvarint(b, uint64(len(f.Bursts)))
		for i := range f.Bursts {
			br := &f.Bursts[i]
			b = binary.AppendUvarint(b, uint64(br.Link))
			b = binary.AppendUvarint(b, br.Seq)
			if b, err = appendValues(b, br.Vals); err != nil {
				eb.b = b
				return fmt.Errorf("wire: encode burst (link %d, seq %d): %w", br.Link, br.Seq, err)
			}
		}
	case FrameAckBatch:
		b = binary.AppendUvarint(b, uint64(len(f.Acks)))
		for _, a := range f.Acks {
			b = binary.AppendUvarint(b, uint64(a.Link))
			b = binary.AppendUvarint(b, a.Seq)
		}
	case FrameError:
		b = append(b, f.Err...)
	case FrameAck, FrameClose:
		// Header only.
	default:
		eb.b = b
		return fmt.Errorf("wire: write of unknown frame type %d", f.Type)
	}
	eb.b = b
	if len(b)-4 > DefaultMaxFrame {
		return fmt.Errorf("wire: frame body %d bytes exceeds limit %d", len(b)-4, DefaultMaxFrame)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err = w.Write(b)
	return err
}

// ReadFrame decodes the next frame from r into a fresh frame. io.EOF is
// returned verbatim on a clean boundary (no partial frame read); any
// mid-frame truncation surfaces as io.ErrUnexpectedEOF. Hot loops
// should use ReadFrameInto with a reused frame and scratch buffer
// instead.
func ReadFrame(r io.Reader) (*Frame, error) {
	f := new(Frame)
	var scratch []byte
	if err := ReadFrameInto(r, f, &scratch); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFrameInto decodes the next frame from r into f, staging the body
// in *scratch (grown as needed, reused across calls). f is Reset first,
// so its slices' capacities — value slices included — carry over; at
// steady state the read path allocates only what the decoded values
// themselves require (nothing, for small scalars and unit types).
func ReadFrameInto(r io.Reader, f *Frame, scratch *[]byte) error {
	f.Reset()
	body := *scratch
	if cap(body) < 4 {
		// The prefix reads through the scratch buffer too: a local array
		// would escape to the Read call and cost one allocation per frame.
		body = make([]byte, 4, 512)
		*scratch = body
	}
	prefix := body[:4]
	if _, err := io.ReadFull(r, prefix); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("wire: truncated length prefix: %w", err)
		}
		return err
	}
	n := binary.BigEndian.Uint32(prefix)
	if n < frameHeaderLen {
		return fmt.Errorf("wire: frame body %d bytes, need at least 13", n)
	}
	if n > DefaultMaxFrame {
		return fmt.Errorf("wire: frame body %d bytes exceeds limit %d", n, DefaultMaxFrame)
	}
	if cap(body) < int(n) {
		body = make([]byte, n)
		*scratch = body
	} else {
		body = body[:n]
	}
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("wire: truncated frame body: %w", io.ErrUnexpectedEOF)
	}
	f.Type = body[0]
	f.Link = binary.BigEndian.Uint32(body[1:5])
	f.Seq = binary.BigEndian.Uint64(body[5:13])
	payload := body[frameHeaderLen:]
	var err error
	switch f.Type {
	case FrameHello:
		if len(payload) < 14 {
			return fmt.Errorf("wire: hello payload %d bytes, need at least 14", len(payload))
		}
		if magic := binary.BigEndian.Uint32(payload[0:4]); magic != helloMagic {
			return fmt.Errorf("wire: bad hello magic %#x (not a wire peer?)", magic)
		}
		if v := binary.BigEndian.Uint16(payload[4:6]); v != Version {
			return fmt.Errorf("wire: protocol version %d, want %d", v, Version)
		}
		f.Sum = binary.BigEndian.Uint64(payload[6:14])
		f.Node = string(payload[14:])
	case FrameData:
		if f.Vals, payload, err = readValues(f.Vals, payload); err != nil {
			return fmt.Errorf("wire: decode burst (link %d, seq %d): %w", f.Link, f.Seq, err)
		}
		if len(payload) != 0 {
			return fmt.Errorf("wire: data frame carries %d trailing bytes", len(payload))
		}
	case FrameDataBatch:
		var count uint64
		if count, payload, err = readUvarint(payload); err != nil {
			return fmt.Errorf("wire: decode data batch: %w", err)
		}
		// Each burst costs at least two varint bytes plus a count byte.
		if count > uint64(len(payload)) {
			return fmt.Errorf("wire: %d bursts exceed %d payload bytes", count, len(payload))
		}
		for i := uint64(0); i < count; i++ {
			var link, seq uint64
			if link, payload, err = readUvarint(payload); err != nil {
				return fmt.Errorf("wire: decode data batch: %w", err)
			}
			if link > uint64(^uint32(0)) {
				return fmt.Errorf("wire: data batch link index %d overflows", link)
			}
			if seq, payload, err = readUvarint(payload); err != nil {
				return fmt.Errorf("wire: decode data batch: %w", err)
			}
			br := f.NextBurst(uint32(link), seq)
			if br.Vals, payload, err = readValues(br.Vals, payload); err != nil {
				return fmt.Errorf("wire: decode burst (link %d, seq %d): %w", link, seq, err)
			}
		}
		if len(payload) != 0 {
			return fmt.Errorf("wire: data batch carries %d trailing bytes", len(payload))
		}
	case FrameAckBatch:
		var count uint64
		if count, payload, err = readUvarint(payload); err != nil {
			return fmt.Errorf("wire: decode ack batch: %w", err)
		}
		// Each ack costs at least two varint bytes.
		if count > uint64(len(payload)) {
			return fmt.Errorf("wire: %d acks exceed %d payload bytes", count, len(payload))
		}
		for i := uint64(0); i < count; i++ {
			var link, seq uint64
			if link, payload, err = readUvarint(payload); err != nil {
				return fmt.Errorf("wire: decode ack batch: %w", err)
			}
			if link > uint64(^uint32(0)) {
				return fmt.Errorf("wire: ack batch link index %d overflows", link)
			}
			if seq, payload, err = readUvarint(payload); err != nil {
				return fmt.Errorf("wire: decode ack batch: %w", err)
			}
			f.Acks = append(f.Acks, Ack{Link: uint32(link), Seq: seq})
		}
		if len(payload) != 0 {
			return fmt.Errorf("wire: ack batch carries %d trailing bytes", len(payload))
		}
	case FrameError:
		f.Err = string(payload)
	case FrameAck, FrameClose:
		if len(payload) != 0 {
			return fmt.Errorf("wire: frame type %d carries %d unexpected payload bytes", f.Type, len(payload))
		}
	default:
		return fmt.Errorf("wire: unknown frame type %d", f.Type)
	}
	return nil
}
