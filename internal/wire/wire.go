// Package wire is the framing layer of distributed region links: the
// length-prefixed binary protocol two reod nodes (or any two processes
// sharing a split region plan) speak over a stream connection.
//
// A connection carries frames. Every frame is
//
//	u32  length of the body, big-endian (the prefix itself excluded)
//	u8   frame type
//	u32  link index (the position in the shared region plan's link list)
//	u64  sequence number
//	...  payload, by type
//
// Data frames move one committed burst of a link: the payload is the
// gob encoding of the burst's values, and Seq is the absolute index of
// the first value (counting every value ever pushed on the link,
// including a Fifo1Full seed). Ack frames carry no payload; Seq is the
// cumulative count of values the consumer's region has popped, so one
// ack retires every in-flight burst up to it. Hello frames open a
// connection: the payload carries the node's name and the identity
// checksum of its region plan, and both checks must match before any
// Data flows. Close announces an orderly local shutdown; Error carries
// a peer's failure reason so the local regions can break with it.
//
// The protocol is strictly SPSC per link — exactly one node produces
// Data and exactly one produces Acks — so sequence numbers need no
// reconciliation: any gap is a protocol violation, reported, never
// repaired.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
)

// Frame types.
const (
	// FrameHello opens a connection: identity handshake, both directions.
	FrameHello = iota + 1
	// FrameData carries one committed burst of link Link, first value at
	// absolute sequence Seq.
	FrameData
	// FrameAck retires delivered values of link Link: Seq is the
	// cumulative pop count on the consumer side.
	FrameAck
	// FrameClose announces an orderly shutdown of the sending node.
	FrameClose
	// FrameError carries the sending node's failure reason (Err).
	FrameError
)

// DefaultMaxFrame bounds a frame body (16 MiB): a length prefix beyond
// it is treated as stream corruption, not an allocation request.
const DefaultMaxFrame = 1 << 24

// Version is the protocol version carried (and required equal) in the
// Hello exchange.
const Version = 1

// helloMagic guards against a non-wire peer: the first four payload
// bytes of every Hello.
const helloMagic = 0x5245_4F57 // "REOW"

// Frame is one decoded protocol frame.
type Frame struct {
	Type byte
	// Link is the plan-global link index the frame addresses
	// (FrameData/FrameAck only).
	Link uint32
	// Seq is the absolute first-value index of a Data burst, or the
	// cumulative pop count of an Ack.
	Seq uint64
	// Vals is a Data burst's payload.
	Vals []any
	// Node and Sum are the Hello identity: the sender's node name and
	// its plan checksum (IdentitySum).
	Node string
	Sum  uint64
	// Err is a FrameError's failure reason.
	Err string
}

// wireVal wraps a burst value for gob. Encoding a nil interface value
// directly is a gob error, but a zero struct field is simply omitted —
// so wrapping makes nil round-trip for free, and typed values ride in a
// single-field struct at one byte of framing overhead.
type wireVal struct{ V any }

// Register exposes gob registration for user payload types: any
// concrete type sent through a distributed connector beyond the
// pre-registered basics must be registered identically on every node.
func Register(v any) { gob.Register(v) }

func init() {
	// The basics every workload uses, registered on both ends by
	// construction. Strings, bools, float64, int and []byte are
	// self-registering in gob; the rest are not.
	gob.Register(int8(0))
	gob.Register(int16(0))
	gob.Register(int32(0))
	gob.Register(int64(0))
	gob.Register(uint(0))
	gob.Register(uint8(0))
	gob.Register(uint16(0))
	gob.Register(uint32(0))
	gob.Register(uint64(0))
	gob.Register(float32(0))
	gob.Register([]any(nil))
	gob.Register(map[string]any(nil))
}

// IdentitySum folds the given strings into a 64-bit FNV-1a checksum.
// Both nodes of a connection derive it from their region plan (connector
// name, seed, region and link shapes); a mismatch at Hello means the
// processes were built from different programs and the connection is
// refused before any data moves.
func IdentitySum(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// WriteFrame encodes f to w as one length-prefixed frame.
func WriteFrame(w io.Writer, f *Frame) error {
	var body bytes.Buffer
	body.WriteByte(f.Type)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], f.Link)
	binary.BigEndian.PutUint64(hdr[4:12], f.Seq)
	body.Write(hdr[:])
	switch f.Type {
	case FrameHello:
		var fixed [14]byte
		binary.BigEndian.PutUint32(fixed[0:4], helloMagic)
		binary.BigEndian.PutUint16(fixed[4:6], Version)
		binary.BigEndian.PutUint64(fixed[6:14], f.Sum)
		body.Write(fixed[:])
		body.WriteString(f.Node)
	case FrameData:
		vals := make([]wireVal, len(f.Vals))
		for i, v := range f.Vals {
			vals[i].V = v
		}
		if err := gob.NewEncoder(&body).Encode(vals); err != nil {
			return fmt.Errorf("wire: encode burst (link %d, seq %d): %w", f.Link, f.Seq, err)
		}
	case FrameError:
		body.WriteString(f.Err)
	case FrameAck, FrameClose:
		// Header only.
	default:
		return fmt.Errorf("wire: write of unknown frame type %d", f.Type)
	}
	if body.Len() > DefaultMaxFrame {
		return fmt.Errorf("wire: frame body %d bytes exceeds limit %d", body.Len(), DefaultMaxFrame)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(body.Len()))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// ReadFrame decodes the next frame from r. io.EOF is returned verbatim
// on a clean boundary (no partial frame read); any mid-frame truncation
// surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (*Frame, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: truncated length prefix: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n < 13 {
		return nil, fmt.Errorf("wire: frame body %d bytes, need at least 13", n)
	}
	if n > DefaultMaxFrame {
		return nil, fmt.Errorf("wire: frame body %d bytes exceeds limit %d", n, DefaultMaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: truncated frame body: %w", io.ErrUnexpectedEOF)
	}
	f := &Frame{
		Type: body[0],
		Link: binary.BigEndian.Uint32(body[1:5]),
		Seq:  binary.BigEndian.Uint64(body[5:13]),
	}
	payload := body[13:]
	switch f.Type {
	case FrameHello:
		if len(payload) < 14 {
			return nil, fmt.Errorf("wire: hello payload %d bytes, need at least 14", len(payload))
		}
		if magic := binary.BigEndian.Uint32(payload[0:4]); magic != helloMagic {
			return nil, fmt.Errorf("wire: bad hello magic %#x (not a wire peer?)", magic)
		}
		if v := binary.BigEndian.Uint16(payload[4:6]); v != Version {
			return nil, fmt.Errorf("wire: protocol version %d, want %d", v, Version)
		}
		f.Sum = binary.BigEndian.Uint64(payload[6:14])
		f.Node = string(payload[14:])
	case FrameData:
		var vals []wireVal
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&vals); err != nil {
			return nil, fmt.Errorf("wire: decode burst (link %d, seq %d): %w", f.Link, f.Seq, err)
		}
		f.Vals = make([]any, len(vals))
		for i := range vals {
			f.Vals[i] = vals[i].V
		}
	case FrameError:
		f.Err = string(payload)
	case FrameAck, FrameClose:
		if len(payload) != 0 {
			return nil, fmt.Errorf("wire: frame type %d carries %d unexpected payload bytes", f.Type, len(payload))
		}
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", f.Type)
	}
	return f, nil
}
