package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, f *Frame) *Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after one frame", buf.Len())
	}
	return got
}

func TestDataRoundTrip(t *testing.T) {
	cases := [][]any{
		{1, 2, 3},
		{"a", "b"},
		{nil},                      // nil must survive the gob wrapper
		{nil, 42, nil, "x"},        // mixed
		{int64(7), 3.5, true, nil}, // assorted scalar types
		{[]byte{1, 2}, []any{1, "two", nil}, map[string]any{"k": 9}},
		{}, // empty burst
	}
	for i, vals := range cases {
		f := &Frame{Type: FrameData, Link: uint32(i), Seq: uint64(i * 100)}
		f.Vals = vals
		got := roundTrip(t, f)
		if got.Link != f.Link || got.Seq != f.Seq {
			t.Errorf("case %d: header (%d,%d), want (%d,%d)", i, got.Link, got.Seq, f.Link, f.Seq)
		}
		if len(got.Vals) != len(vals) {
			t.Fatalf("case %d: %d values, want %d", i, len(got.Vals), len(vals))
		}
		if !reflect.DeepEqual(got.Vals, vals) && len(vals) > 0 {
			t.Errorf("case %d: values %v, want %v", i, got.Vals, vals)
		}
	}
}

func TestHeaderFrames(t *testing.T) {
	ack := roundTrip(t, &Frame{Type: FrameAck, Link: 3, Seq: 12345})
	if ack.Type != FrameAck || ack.Link != 3 || ack.Seq != 12345 {
		t.Errorf("ack round-trip: %+v", ack)
	}
	cl := roundTrip(t, &Frame{Type: FrameClose})
	if cl.Type != FrameClose {
		t.Errorf("close round-trip: %+v", cl)
	}
	er := roundTrip(t, &Frame{Type: FrameError, Err: "region 2: guard blew up"})
	if er.Err != "region 2: guard blew up" {
		t.Errorf("error round-trip: %q", er.Err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	f := roundTrip(t, &Frame{Type: FrameHello, Node: "b", Sum: 0xdeadbeefcafe})
	if f.Node != "b" || f.Sum != 0xdeadbeefcafe {
		t.Errorf("hello round-trip: node %q sum %#x", f.Node, f.Sum)
	}
}

func TestHelloRejectsBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: FrameHello, Node: "x", Sum: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	bad := append([]byte(nil), raw...)
	bad[4+13] ^= 0xff // flip a magic byte (4 prefix + 13 header)
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err %v", err)
	}
	bad = append([]byte(nil), raw...)
	bad[4+13+4] ^= 0xff // flip a version byte
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: err %v", err)
	}
}

func TestCleanEOFAndTruncation(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err %v, want io.EOF", err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: FrameData, Seq: 1, Vals: []any{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Every proper prefix of a frame must fail with ErrUnexpectedEOF,
	// never a clean EOF and never a bogus decode.
	for n := 1; n < len(raw); n++ {
		_, err := ReadFrame(bytes.NewReader(raw[:n]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncated at %d/%d: err %v, want ErrUnexpectedEOF", n, len(raw), err)
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(DefaultMaxFrame+1))
	buf.WriteString("xxxxxxxxxxxxxxxx")
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversize prefix: err %v", err)
	}
	huge := &Frame{Type: FrameData, Vals: []any{make([]byte, DefaultMaxFrame)}}
	if err := WriteFrame(io.Discard, huge); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversize write: err %v", err)
	}
}

func TestUndersizeBodyRejected(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(5))
	buf.Write([]byte{FrameAck, 0, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "at least 13") {
		t.Errorf("undersize body: err %v", err)
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(13))
	body := make([]byte, 13)
	body[0] = 99
	buf.Write(body)
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "unknown frame type") {
		t.Errorf("unknown type read: err %v", err)
	}
	if err := WriteFrame(io.Discard, &Frame{Type: 99}); err == nil {
		t.Error("unknown type write accepted")
	}
}

func TestIdentitySum(t *testing.T) {
	a := IdentitySum("Pipeline", "seed=1", "regions=3")
	if a != IdentitySum("Pipeline", "seed=1", "regions=3") {
		t.Error("sum not deterministic")
	}
	if a == IdentitySum("Pipeline", "seed=2", "regions=3") {
		t.Error("sum ignores a part")
	}
	// The NUL separator keeps part boundaries significant.
	if IdentitySum("ab", "c") == IdentitySum("a", "bc") {
		t.Error("sum collapses part boundaries")
	}
}

func TestManyFramesOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 50; i++ {
		f := &Frame{Type: FrameData, Link: uint32(i % 3), Seq: uint64(i), Vals: []any{i, nil}}
		if i%7 == 0 {
			f = &Frame{Type: FrameAck, Link: 1, Seq: uint64(i)}
		}
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d: seq %d", i, f.Seq)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("after all frames: err %v, want io.EOF", err)
	}
}
