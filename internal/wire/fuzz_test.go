package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame throws arbitrary bytes at the frame decoder. The
// contract under corruption is: an error, never a panic, and never an
// allocation larger than the stream itself could justify (length fields
// are validated against the remaining payload before any growth). Valid
// frames must also survive a decode into a dirty reused frame.
func FuzzReadFrame(f *testing.F) {
	// Seed with one well-formed frame of every type...
	seeds := []*Frame{
		{Type: FrameHello, Node: "fuzz", Sum: 0x1234},
		{Type: FrameData, Link: 1, Seq: 9, Vals: []any{1, "s", nil, []byte{2}, []any{true}, 3.5}},
		{Type: FrameAck, Link: 2, Seq: 1 << 33},
		{Type: FrameClose},
		{Type: FrameError, Err: "boom"},
		{Type: FrameAckBatch, Acks: []Ack{{Link: 1, Seq: 2}, {Link: 3, Seq: 4}}},
		{Type: FrameDataBatch, Bursts: []Burst{{Link: 1, Seq: 2, Vals: []any{7}}, {Link: 3, Seq: 0, Vals: []any{"x", nil}}}},
	}
	for _, sf := range seeds {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, sf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// ...and targeted corruptions: truncations, a hostile length prefix,
	// bad tags, an oversized value count.
	var buf bytes.Buffer
	WriteFrame(&buf, seeds[1])
	raw := buf.Bytes()
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:4])
	f.Add(binary.BigEndian.AppendUint32(nil, 0xFFFF_FFFF))
	f.Add(append(binary.BigEndian.AppendUint32(nil, 14), FrameData, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 255))
	f.Add(append(binary.BigEndian.AppendUint32(nil, 18),
		FrameData, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		// A reused frame pre-soiled with stale state: decoding must fully
		// overwrite or reset it, success or failure.
		fr := &Frame{Vals: []any{"stale"}, Acks: []Ack{{9, 9}}, Node: "old"}
		var scratch []byte
		if err := ReadFrameInto(bytes.NewReader(data), fr, &scratch); err != nil {
			return
		}
		// A frame the decoder accepted must re-encode and re-decode
		// cleanly (gob payloads aside: their byte form is not canonical,
		// so only structural success is asserted).
		var out bytes.Buffer
		if err := WriteFrame(&out, fr); err != nil {
			t.Fatalf("re-encode of accepted frame: %v\nframe: %+v", err, fr)
		}
		if _, err := ReadFrame(&out); err != nil {
			t.Fatalf("re-decode of accepted frame: %v\nframe: %+v", err, fr)
		}
	})
}
