package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// codecUnit is a test-local zero-size type for the unit registry.
type codecUnit struct{}

// codecExotic exercises the gob fallback: a struct type outside the
// typed fast path that both "ends" (the one test process) register.
type codecExotic struct {
	Name  string
	Count int
}

func init() {
	RegisterUnit(codecUnit{})
	Register(codecExotic{})
}

// TestCodecRoundTrip drives every fast-path type, the gob fallback and
// nil through a Data frame and asserts the exact concrete type AND value
// come back — the differential harnesses type-assert decoded payloads,
// so `int` must never come back as `int64`.
func TestCodecRoundTrip(t *testing.T) {
	cases := []any{
		nil,
		false, true,
		int(0), int(255), int(-1), int(math.MaxInt64), int(math.MinInt64),
		int8(-128), int8(127),
		int16(-32768), int16(32767),
		int32(math.MinInt32), int32(math.MaxInt32),
		int64(math.MinInt64), int64(math.MaxInt64),
		uint(0), uint(math.MaxUint64),
		uint8(0), uint8(255),
		uint16(65535),
		uint32(math.MaxUint32),
		uint64(math.MaxUint64),
		float32(3.5), float32(math.Pi),
		float64(0), math.Inf(1), math.Inf(-1), 6.02214076e23,
		"", "hello", strings.Repeat("x", 10_000),
		[]byte{}, []byte{0, 1, 2, 255},
		[]any{}, []any{1, "two", nil, []any{true, 3.5}},
		codecUnit{},
		codecExotic{Name: "n", Count: 7},
		map[string]any{"k": 9, "nested": "deep"},
	}
	for i, want := range cases {
		var buf bytes.Buffer
		f := &Frame{Type: FrameData, Link: 1, Seq: uint64(i), Vals: []any{want}}
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("case %d (%T): write: %v", i, want, err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("case %d (%T): read: %v", i, want, err)
		}
		if len(got.Vals) != 1 {
			t.Fatalf("case %d (%T): %d values back", i, want, len(got.Vals))
		}
		v := got.Vals[0]
		if reflect.TypeOf(v) != reflect.TypeOf(want) {
			t.Errorf("case %d: type %T, want %T", i, v, want)
		}
		if !reflect.DeepEqual(v, want) {
			t.Errorf("case %d (%T): value %v, want %v", i, want, v, want)
		}
	}
	// NaN compares unequal to itself; check via the bit pattern.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: FrameData, Vals: []any{math.NaN()}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f64, ok := got.Vals[0].(float64); !ok || !math.IsNaN(f64) {
		t.Errorf("NaN round-trip: %v (%T)", got.Vals[0], got.Vals[0])
	}
}

// TestCodecUnitIdentity: a registered unit type decodes to the canonical
// registered value, so tokens stay comparable across the wire.
func TestCodecUnitIdentity(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: FrameData, Vals: []any{codecUnit{}, codecUnit{}}}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f.Vals {
		if _, ok := v.(codecUnit); !ok {
			t.Errorf("value %d: %T, want codecUnit", i, v)
		}
	}
	// Two bytes per unit value: tag + index. Prefix(4) + header(13) +
	// count(1) + 2×2 = 22 total.
	if buf.Len() != 0 {
		t.Errorf("%d bytes left", buf.Len())
	}
}

func TestRegisterUnitRejectsSizedTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RegisterUnit(int) did not panic")
		}
	}()
	RegisterUnit(42)
}

func TestAckBatchRoundTrip(t *testing.T) {
	acks := []Ack{{Link: 0, Seq: 1}, {Link: 7, Seq: 1 << 40}, {Link: math.MaxUint32, Seq: math.MaxUint64}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: FrameAckBatch, Acks: acks}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameAckBatch || !reflect.DeepEqual(f.Acks, acks) {
		t.Errorf("ack batch round-trip: %+v", f)
	}
}

func TestDataBatchRoundTrip(t *testing.T) {
	bursts := []Burst{
		{Link: 2, Seq: 100, Vals: []any{1, 2, 3}},
		{Link: 5, Seq: 7, Vals: []any{"a", nil}},
		{Link: 9, Seq: 0, Vals: []any{}},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: FrameDataBatch, Bursts: bursts}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameDataBatch || len(f.Bursts) != len(bursts) {
		t.Fatalf("data batch round-trip: %+v", f)
	}
	for i, want := range bursts {
		got := f.Bursts[i]
		if got.Link != want.Link || got.Seq != want.Seq || len(got.Vals) != len(want.Vals) {
			t.Errorf("burst %d: %+v, want %+v", i, got, want)
		}
		if len(want.Vals) > 0 && !reflect.DeepEqual(got.Vals, want.Vals) {
			t.Errorf("burst %d values: %v, want %v", i, got.Vals, want.Vals)
		}
	}
}

// TestHelloRejectsV1Peer crafts the exact Hello a version-1 node would
// send and asserts the v2 decoder refuses it by version, loudly.
func TestHelloRejectsV1Peer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: FrameHello, Node: "old-node", Sum: 42}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The version rides big-endian at payload offset 4 (prefix 4 +
	// header 13 + magic 4).
	binary.BigEndian.PutUint16(raw[4+13+4:], 1)
	_, err := ReadFrame(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("protocol version 1, want %d", Version)) {
		t.Errorf("v1 hello: err %v", err)
	}
}

func TestCorruptValuesRejected(t *testing.T) {
	frame := func(payload []byte) []byte {
		body := make([]byte, frameHeaderLen+len(payload))
		body[0] = FrameData
		copy(body[frameHeaderLen:], payload)
		out := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
		return append(out, body...)
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"unknown tag", []byte{1, 255}},
		{"count beyond payload", binary.AppendUvarint(nil, 1<<40)},
		{"string length beyond payload", []byte{1, tagString, 200, 'x'}},
		{"bytes length beyond payload", []byte{1, tagBytes, 200, 'x'}},
		{"slice length beyond payload", []byte{1, tagSlice, 200}},
		{"gob length beyond payload", []byte{1, tagGob, 200}},
		{"truncated float32", []byte{1, tagFloat32, 0, 0}},
		{"truncated float64", []byte{1, tagFloat64, 0}},
		{"missing tag", []byte{2, tagNil}},
		{"int8 out of range", append([]byte{1, tagInt8}, binary.AppendVarint(nil, 300)...)},
		{"uint16 out of range", append([]byte{1, tagUint16}, binary.AppendUvarint(nil, 1<<20)...)},
		{"unit index unregistered", append([]byte{1, tagUnit}, binary.AppendUvarint(nil, 1<<30)...)},
		{"trailing bytes", []byte{1, tagNil, 0xEE}},
		{"bad gob blob", []byte{1, tagGob, 2, 0xff, 0xff}},
	}
	for _, tc := range cases {
		if _, err := ReadFrame(bytes.NewReader(frame(tc.payload))); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

// TestDeepNestingRejected: a tagSlice tower past maxValueDepth must be
// refused on both ends, never recursed into a stack overflow.
func TestDeepNestingRejected(t *testing.T) {
	deep := []any{}
	for i := 0; i < maxValueDepth+2; i++ {
		deep = []any{deep}
	}
	err := WriteFrame(io.Discard, &Frame{Type: FrameData, Vals: []any{deep}})
	if err == nil || !strings.Contains(err.Error(), "nesting exceeds") {
		t.Errorf("deep encode: err %v", err)
	}
	// Hand-build the decoder-side equivalent: a run of nested tagSlice
	// headers, each announcing one element.
	payload := binary.AppendUvarint(nil, 1) // one top-level value
	for i := 0; i < maxValueDepth+2; i++ {
		payload = append(payload, tagSlice, 1)
	}
	payload = append(payload, tagNil)
	body := make([]byte, frameHeaderLen+len(payload))
	body[0] = FrameData
	copy(body[frameHeaderLen:], payload)
	raw := append(binary.BigEndian.AppendUint32(nil, uint32(len(body))), body...)
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "nesting exceeds") {
		t.Errorf("deep decode: err %v", err)
	}
}

// repeatReader replays one encoded frame forever without allocating.
type repeatReader struct {
	raw []byte
	pos int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.pos == len(r.raw) {
		r.pos = 0
	}
	n := copy(p, r.raw[r.pos:])
	r.pos += n
	return n, nil
}

// TestSteadyStateAllocs pins the tentpole guarantee: with pooled frames,
// pooled encode buffers, a reused scratch slice and fast-path payloads,
// a warm WriteFrame/ReadFrameInto cycle allocates nothing. Small ints
// box from the runtime's static table, so even the decoded values are
// free.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is unreliable under -race")
	}
	wf := &Frame{Type: FrameData, Link: 3, Seq: 0, Vals: []any{1, 2, 3, true, nil, codecUnit{}}}
	writes := testing.AllocsPerRun(1000, func() {
		if err := WriteFrame(io.Discard, wf); err != nil {
			t.Fatal(err)
		}
	})
	if writes != 0 {
		t.Errorf("WriteFrame: %v allocs/op, want 0", writes)
	}

	var buf bytes.Buffer
	if err := WriteFrame(&buf, wf); err != nil {
		t.Fatal(err)
	}
	src := &repeatReader{raw: buf.Bytes()}
	rf := GetFrame()
	defer PutFrame(rf)
	var scratch []byte
	reads := testing.AllocsPerRun(1000, func() {
		if err := ReadFrameInto(src, rf, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if reads != 0 {
		t.Errorf("ReadFrameInto: %v allocs/op, want 0", reads)
	}

	// The batch shapes the pumps emit at load must stay free too.
	bf := GetFrame()
	defer PutFrame(bf)
	for i := 0; i < 3; i++ {
		b := bf.NextBurst(uint32(i), uint64(i*10))
		b.Vals = append(b.Vals, i, i+1)
	}
	bf.Type = FrameDataBatch
	bf.Acks = append(bf.Acks, Ack{Link: 1, Seq: 5}, Ack{Link: 2, Seq: 9})
	batchWrites := testing.AllocsPerRun(1000, func() {
		if err := WriteFrame(io.Discard, bf); err != nil {
			t.Fatal(err)
		}
	})
	if batchWrites != 0 {
		t.Errorf("WriteFrame(DataBatch): %v allocs/op, want 0", batchWrites)
	}

	buf.Reset()
	if err := WriteFrame(&buf, bf); err != nil {
		t.Fatal(err)
	}
	src = &repeatReader{raw: buf.Bytes()}
	batchReads := testing.AllocsPerRun(1000, func() {
		if err := ReadFrameInto(src, rf, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if batchReads != 0 {
		t.Errorf("ReadFrameInto(DataBatch): %v allocs/op, want 0", batchReads)
	}
}

// TestFramePoolReuse: a frame cycled through the pool carries no stale
// state into its next occupancy.
func TestFramePoolReuse(t *testing.T) {
	f := GetFrame()
	f.Type = FrameData
	f.Vals = append(f.Vals, "stale")
	f.Acks = append(f.Acks, Ack{Link: 9, Seq: 9})
	f.NextBurst(4, 4).Vals = append(f.Bursts[0].Vals, "old")
	f.Node, f.Err, f.Sum = "n", "e", 1
	PutFrame(f)
	g := GetFrame()
	defer PutFrame(g)
	if g.Type != 0 || len(g.Vals) != 0 || len(g.Acks) != 0 || len(g.Bursts) != 0 ||
		g.Node != "" || g.Err != "" || g.Sum != 0 {
		t.Errorf("pooled frame not reset: %+v", g)
	}
}
