package wire

// The typed value codec of protocol v2: every burst value is one tag
// byte plus a compact, type-specific payload. The common payload types
// — nil, bool, the int/uint family, floats, string, []byte, []any and
// registered zero-size unit types such as prim.Token — encode without
// reflection or descriptors, so a steady stream of frames costs no
// per-frame type negotiation (the v1 gob framing re-transmitted full
// type descriptors with every burst, because each frame needed its own
// self-contained encoder). Exotic registered types fall back to a
// per-value gob blob behind tagGob; the descriptor cost then applies to
// those values only.
//
// Decoding restores the exact concrete type that was encoded (an int
// stays an int, an int64 an int64), which the differential harnesses
// rely on: a distributed run must be bit-identical to the in-process
// one, type assertions included.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// Value tags. The numbering is part of the v2 wire format: changing it
// requires a Version bump.
const (
	tagNil byte = iota
	tagFalse
	tagTrue
	tagInt     // zigzag varint
	tagInt8    // zigzag varint, range-checked
	tagInt16   // zigzag varint, range-checked
	tagInt32   // zigzag varint, range-checked
	tagInt64   // zigzag varint
	tagUint    // uvarint
	tagUint8   // uvarint, range-checked
	tagUint16  // uvarint, range-checked
	tagUint32  // uvarint, range-checked
	tagUint64  // uvarint
	tagFloat32 // 4 bytes big-endian IEEE 754
	tagFloat64 // 8 bytes big-endian IEEE 754
	tagString  // uvarint length + bytes
	tagBytes   // uvarint length + bytes
	tagSlice   // []any: uvarint length + values, recursively
	tagUnit    // uvarint index into the RegisterUnit table
	tagGob     // uvarint length + gob(wireVal{v}): the fallback
)

// maxValueDepth bounds tagSlice nesting so a crafted frame cannot
// recurse the decoder off the stack.
const maxValueDepth = 64

// wireVal wraps a fallback value for gob. Encoding a nil interface
// value directly is a gob error, but a zero struct field is simply
// omitted — and typed values ride in a single-field struct at one byte
// of framing overhead.
type wireVal struct{ V any }

// Register exposes gob registration for fallback payload types: any
// concrete type sent through a distributed connector beyond the typed
// fast path must be registered identically on every node.
func Register(v any) { gob.Register(v) }

// Unit-type registry: zero-size singleton types (prim.Token) encode as
// tagUnit plus a table index, so a token costs two bytes on the wire
// and boxes allocation-free on decode (the canonical value is returned
// from the table). Registration order defines the indices and must
// therefore be identical on every node — in practice both ends link the
// same packages, whose init order Go fixes by import graph.
var (
	unitMu   sync.RWMutex
	unitVals []any
	unitIdx  = map[reflect.Type]uint64{}
)

// RegisterUnit assigns a compact typed tag to a zero-size struct type.
// Idempotent per type; panics on a type that carries data (its values
// would all decode to the registered one).
func RegisterUnit(v any) {
	t := reflect.TypeOf(v)
	if t == nil || t.Size() != 0 {
		panic(fmt.Sprintf("wire: RegisterUnit needs a zero-size concrete type, got %T", v))
	}
	unitMu.Lock()
	defer unitMu.Unlock()
	if _, ok := unitIdx[t]; ok {
		return
	}
	unitIdx[t] = uint64(len(unitVals))
	unitVals = append(unitVals, v)
}

func lookupUnit(v any) (uint64, bool) {
	unitMu.RLock()
	idx, ok := unitIdx[reflect.TypeOf(v)]
	unitMu.RUnlock()
	return idx, ok
}

func unitValue(idx uint64) (any, bool) {
	unitMu.RLock()
	defer unitMu.RUnlock()
	if idx >= uint64(len(unitVals)) {
		return nil, false
	}
	return unitVals[idx], true
}

func init() {
	// Fallback-path registrations for composite basics (maps, and any
	// scalar a user nests inside one): both ends register by
	// construction. Strings, bools, float64, int and []byte are
	// self-registering in gob; the rest are not.
	gob.Register(int8(0))
	gob.Register(int16(0))
	gob.Register(int32(0))
	gob.Register(int64(0))
	gob.Register(uint(0))
	gob.Register(uint8(0))
	gob.Register(uint16(0))
	gob.Register(uint32(0))
	gob.Register(uint64(0))
	gob.Register(float32(0))
	gob.Register([]any(nil))
	gob.Register(map[string]any(nil))
}

// appendValues appends a length-prefixed run of tagged values.
func appendValues(b []byte, vals []any) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(vals)))
	var err error
	for _, v := range vals {
		if b, err = appendValue(b, v, 0); err != nil {
			return b, err
		}
	}
	return b, nil
}

// appendValue appends one tagged value. Zero allocations for every
// fast-path type; the gob fallback allocates its encoder state.
func appendValue(b []byte, v any, depth int) ([]byte, error) {
	if depth > maxValueDepth {
		return b, fmt.Errorf("wire: value nesting exceeds depth %d", maxValueDepth)
	}
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case bool:
		if x {
			return append(b, tagTrue), nil
		}
		return append(b, tagFalse), nil
	case int:
		return binary.AppendVarint(append(b, tagInt), int64(x)), nil
	case int8:
		return binary.AppendVarint(append(b, tagInt8), int64(x)), nil
	case int16:
		return binary.AppendVarint(append(b, tagInt16), int64(x)), nil
	case int32:
		return binary.AppendVarint(append(b, tagInt32), int64(x)), nil
	case int64:
		return binary.AppendVarint(append(b, tagInt64), x), nil
	case uint:
		return binary.AppendUvarint(append(b, tagUint), uint64(x)), nil
	case uint8:
		return binary.AppendUvarint(append(b, tagUint8), uint64(x)), nil
	case uint16:
		return binary.AppendUvarint(append(b, tagUint16), uint64(x)), nil
	case uint32:
		return binary.AppendUvarint(append(b, tagUint32), uint64(x)), nil
	case uint64:
		return binary.AppendUvarint(append(b, tagUint64), x), nil
	case float32:
		return binary.BigEndian.AppendUint32(append(b, tagFloat32), math.Float32bits(x)), nil
	case float64:
		return binary.BigEndian.AppendUint64(append(b, tagFloat64), math.Float64bits(x)), nil
	case string:
		b = binary.AppendUvarint(append(b, tagString), uint64(len(x)))
		return append(b, x...), nil
	case []byte:
		b = binary.AppendUvarint(append(b, tagBytes), uint64(len(x)))
		return append(b, x...), nil
	case []any:
		b = binary.AppendUvarint(append(b, tagSlice), uint64(len(x)))
		var err error
		for _, e := range x {
			if b, err = appendValue(b, e, depth+1); err != nil {
				return b, err
			}
		}
		return b, nil
	default:
		if idx, ok := lookupUnit(v); ok {
			return binary.AppendUvarint(append(b, tagUnit), idx), nil
		}
		return appendGob(b, v)
	}
}

func appendGob(b []byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireVal{v}); err != nil {
		return b, fmt.Errorf("wire: encode %T: %w", v, err)
	}
	b = binary.AppendUvarint(append(b, tagGob), uint64(buf.Len()))
	return append(b, buf.Bytes()...), nil
}

// readValues decodes a length-prefixed run of tagged values, appending
// into dst (so a pooled frame's value slice keeps its capacity across
// reads). Returns the extended slice and the remaining bytes.
func readValues(dst []any, b []byte) ([]any, []byte, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return dst, b, fmt.Errorf("wire: malformed value count")
	}
	b = b[n:]
	// Every value costs at least one tag byte, so a count beyond the
	// remaining payload is corruption — reject before any growth, so a
	// crafted prefix cannot force a huge allocation.
	if count > uint64(len(b)) {
		return dst, b, fmt.Errorf("wire: %d values exceed %d payload bytes", count, len(b))
	}
	var (
		v   any
		err error
	)
	for i := uint64(0); i < count; i++ {
		if v, b, err = readValue(b, 0); err != nil {
			return dst, b, err
		}
		dst = append(dst, v)
	}
	return dst, b, nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("wire: malformed varint")
	}
	return v, b[n:], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("wire: malformed uvarint")
	}
	return v, b[n:], nil
}

// readValue decodes one tagged value. Small-valued integers, bools and
// unit types box without allocating; strings, byte slices and large
// scalars allocate exactly their payload.
func readValue(b []byte, depth int) (any, []byte, error) {
	if depth > maxValueDepth {
		return nil, b, fmt.Errorf("wire: value nesting exceeds depth %d", maxValueDepth)
	}
	if len(b) == 0 {
		return nil, b, fmt.Errorf("wire: missing value tag")
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case tagNil:
		return nil, b, nil
	case tagFalse:
		return false, b, nil
	case tagTrue:
		return true, b, nil
	case tagInt:
		v, b, err := readVarint(b)
		return int(v), b, err
	case tagInt8:
		v, b, err := readVarint(b)
		if err == nil && (v < math.MinInt8 || v > math.MaxInt8) {
			return nil, b, fmt.Errorf("wire: int8 value %d out of range", v)
		}
		return int8(v), b, err
	case tagInt16:
		v, b, err := readVarint(b)
		if err == nil && (v < math.MinInt16 || v > math.MaxInt16) {
			return nil, b, fmt.Errorf("wire: int16 value %d out of range", v)
		}
		return int16(v), b, err
	case tagInt32:
		v, b, err := readVarint(b)
		if err == nil && (v < math.MinInt32 || v > math.MaxInt32) {
			return nil, b, fmt.Errorf("wire: int32 value %d out of range", v)
		}
		return int32(v), b, err
	case tagInt64:
		v, b, err := readVarint(b)
		return v, b, err
	case tagUint:
		v, b, err := readUvarint(b)
		return uint(v), b, err
	case tagUint8:
		v, b, err := readUvarint(b)
		if err == nil && v > math.MaxUint8 {
			return nil, b, fmt.Errorf("wire: uint8 value %d out of range", v)
		}
		return uint8(v), b, err
	case tagUint16:
		v, b, err := readUvarint(b)
		if err == nil && v > math.MaxUint16 {
			return nil, b, fmt.Errorf("wire: uint16 value %d out of range", v)
		}
		return uint16(v), b, err
	case tagUint32:
		v, b, err := readUvarint(b)
		if err == nil && v > math.MaxUint32 {
			return nil, b, fmt.Errorf("wire: uint32 value %d out of range", v)
		}
		return uint32(v), b, err
	case tagUint64:
		v, b, err := readUvarint(b)
		return v, b, err
	case tagFloat32:
		if len(b) < 4 {
			return nil, b, fmt.Errorf("wire: truncated float32")
		}
		return math.Float32frombits(binary.BigEndian.Uint32(b)), b[4:], nil
	case tagFloat64:
		if len(b) < 8 {
			return nil, b, fmt.Errorf("wire: truncated float64")
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
	case tagString:
		n, b, err := readUvarint(b)
		if err != nil {
			return nil, b, err
		}
		if n > uint64(len(b)) {
			return nil, b, fmt.Errorf("wire: string length %d exceeds %d payload bytes", n, len(b))
		}
		return string(b[:n]), b[n:], nil
	case tagBytes:
		n, b, err := readUvarint(b)
		if err != nil {
			return nil, b, err
		}
		if n > uint64(len(b)) {
			return nil, b, fmt.Errorf("wire: byte-slice length %d exceeds %d payload bytes", n, len(b))
		}
		cp := make([]byte, n)
		copy(cp, b)
		return cp, b[n:], nil
	case tagSlice:
		n, b, err := readUvarint(b)
		if err != nil {
			return nil, b, err
		}
		if n > uint64(len(b)) {
			return nil, b, fmt.Errorf("wire: slice length %d exceeds %d payload bytes", n, len(b))
		}
		out := make([]any, 0, n)
		var v any
		for i := uint64(0); i < n; i++ {
			if v, b, err = readValue(b, depth+1); err != nil {
				return nil, b, err
			}
			out = append(out, v)
		}
		return out, b, nil
	case tagUnit:
		idx, b, err := readUvarint(b)
		if err != nil {
			return nil, b, err
		}
		v, ok := unitValue(idx)
		if !ok {
			return nil, b, fmt.Errorf("wire: unit type index %d not registered", idx)
		}
		return v, b, nil
	case tagGob:
		n, b, err := readUvarint(b)
		if err != nil {
			return nil, b, err
		}
		if n > uint64(len(b)) {
			return nil, b, fmt.Errorf("wire: gob length %d exceeds %d payload bytes", n, len(b))
		}
		var wv wireVal
		if err := gob.NewDecoder(bytes.NewReader(b[:n])).Decode(&wv); err != nil {
			return nil, b, fmt.Errorf("wire: decode fallback value: %w", err)
		}
		return wv.V, b[n:], nil
	default:
		return nil, b, fmt.Errorf("wire: unknown value tag %d", tag)
	}
}
