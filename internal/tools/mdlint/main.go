// Command mdlint is the documentation link checker of the CI docs job:
// it walks the repository's markdown files and verifies that every
// relative link target exists on disk. External (http/https/mailto)
// links and pure in-page anchors are skipped, so the check runs
// offline and never flakes on network state.
//
//	go run ./internal/tools/mdlint [root]
//
// Exits non-zero listing every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare in this tree; add them here if they appear.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip in-file anchors and quoting artifacts.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s: broken link %q (%s)\n", path, m[1], resolved)
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlint:", err)
		os.Exit(1)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Println("mdlint: OK")
}
