// Package prim builds the constraint automata of Reo's primitive
// connectors (§III-A, Fig. 6 of the paper, plus the further standard
// primitives from the Reo literature used by the benchmark connectors).
//
// Constructors take the universe and the vertex IDs the primitive is
// attached to, and return the automaton implementing its local semantics.
// Direction bookkeeping (which vertices are boundary source/sink ports)
// belongs to connector assembly, not to primitives.
package prim
