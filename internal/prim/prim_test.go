package prim_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/ca"
	"repro/internal/prim"
)

// shape asserts state and transition counts.
func shape(t *testing.T, a *ca.Automaton, states, trans int) {
	t.Helper()
	if a.NumStates() != states {
		t.Errorf("%s: states = %d, want %d", a.Name, a.NumStates(), states)
	}
	if a.NumTransitions() != trans {
		t.Errorf("%s: transitions = %d, want %d", a.Name, a.NumTransitions(), trans)
	}
}

func TestShapes(t *testing.T) {
	u := ca.NewUniverse()
	p := func() ca.PortID { return u.FreshPort("p") }
	ps := func(n int) []ca.PortID {
		out := make([]ca.PortID, n)
		for i := range out {
			out[i] = p()
		}
		return out
	}
	shape(t, prim.Sync(u, p(), p()), 1, 1)
	shape(t, prim.LossySync(u, p(), p()), 1, 2)
	shape(t, prim.SyncDrain(u, p(), p()), 1, 1)
	shape(t, prim.AsyncDrain(u, p(), p()), 1, 2)
	shape(t, prim.SyncSpout(u, p(), p()), 1, 1)
	shape(t, prim.Spout1(u, p()), 1, 1)
	shape(t, prim.Fifo1(u, p(), p()), 2, 2)
	shape(t, prim.Fifo1Full(u, p(), p(), 1), 2, 2)
	shape(t, prim.Filter(u, p(), p(), "f", func(any) bool { return true }), 1, 2)
	shape(t, prim.Transformer(u, p(), p(), "t", func(v any) any { return v }), 1, 1)
	shape(t, prim.Merger(u, ps(5), p()), 1, 5)
	shape(t, prim.Replicator(u, p(), ps(5)), 1, 1)
	shape(t, prim.Router(u, p(), ps(5)), 1, 5)
	shape(t, prim.Seq(u, ps(4)), 4, 4)
	shape(t, prim.Valve1(u, p(), p(), p()), 2, 3)
}

// TestFifoKProperty: for random capacities, FifoK accepts exactly k
// values from the empty state before blocking, and emits them in order.
func TestFifoKProperty(t *testing.T) {
	prop := func(kRaw uint8) bool {
		k := int(kRaw%6) + 1
		u := ca.NewUniverse()
		a, b := u.Port("a"), u.Port("b")
		f := prim.FifoK(u, a, b, k)
		st := f.Initial
		// k accepts must be possible.
		for i := 0; i < k; i++ {
			next := int32(-1)
			for _, tr := range f.Trans[st] {
				if tr.Sync.Has(a) {
					next = tr.Target
				}
			}
			if next < 0 {
				return false
			}
			st = next
		}
		// No further accept; an emit must exist.
		emits := 0
		for _, tr := range f.Trans[st] {
			if tr.Sync.Has(a) {
				return false
			}
			if tr.Sync.Has(b) {
				emits++
			}
		}
		return emits == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFifoKOrder runs k values through a FifoK end to end via the data
// actions and checks FIFO order.
func TestFifoKOrder(t *testing.T) {
	const k = 3
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	f := prim.FifoK(u, a, b, k)
	cells := u.InitialCells()
	st := f.Initial
	isSrc := func(p ca.PortID) bool { return p == a }
	isSnk := func(p ca.PortID) bool { return p == b }

	push := func(v any) {
		t.Helper()
		for i := range f.Trans[st] {
			tr := &f.Trans[st][i]
			if !tr.Sync.Has(a) {
				continue
			}
			env := ca.NewEnv(tr, cells, isSrc, func(ca.PortID) any { return v })
			res, err := env.Execute(isSnk)
			if err != nil {
				t.Fatal(err)
			}
			for c, val := range res.CellWrites {
				cells[c] = val
			}
			st = tr.Target
			return
		}
		t.Fatal("no accept transition")
	}
	pop := func() any {
		t.Helper()
		for i := range f.Trans[st] {
			tr := &f.Trans[st][i]
			if !tr.Sync.Has(b) {
				continue
			}
			env := ca.NewEnv(tr, cells, isSrc, nil)
			res, err := env.Execute(isSnk)
			if err != nil {
				t.Fatal(err)
			}
			st = tr.Target
			return res.Delivered[b]
		}
		t.Fatal("no emit transition")
		return nil
	}

	// Interleave pushes and pops across the ring boundary.
	push(1)
	push(2)
	if v := pop(); v != 1 {
		t.Fatalf("pop = %v, want 1", v)
	}
	push(3)
	push(4)
	for want := 2; want <= 4; want++ {
		if v := pop(); v != want {
			t.Fatalf("pop = %v, want %d", v, want)
		}
	}
}

func TestMergerDistinctTransitions(t *testing.T) {
	u := ca.NewUniverse()
	ins := []ca.PortID{u.Port("i1"), u.Port("i2"), u.Port("i3")}
	out := u.Port("o")
	m := prim.Merger(u, ins, out)
	seen := map[string]bool{}
	for _, tr := range m.Trans[0] {
		key := fmt.Sprint(u.PortSetNames(tr.Sync))
		if seen[key] {
			t.Errorf("duplicate transition %s", key)
		}
		seen[key] = true
		if !tr.Sync.Has(out) || tr.Sync.Count() != 2 {
			t.Errorf("merger transition %s should fire one input + output", key)
		}
	}
}

func TestReplicatorSingleStep(t *testing.T) {
	u := ca.NewUniverse()
	in := u.Port("in")
	outs := []ca.PortID{u.Port("o1"), u.Port("o2")}
	r := prim.Replicator(u, in, outs)
	tr := r.Trans[0][0]
	if tr.Sync.Count() != 3 {
		t.Errorf("replicator fires %d ports, want 3", tr.Sync.Count())
	}
	if len(tr.Acts) != 2 {
		t.Errorf("replicator has %d actions, want 2", len(tr.Acts))
	}
}

func TestFifoKPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FifoK(0) did not panic")
		}
	}()
	u := ca.NewUniverse()
	prim.FifoK(u, u.Port("a"), u.Port("b"), 0)
}
