package prim

import (
	"encoding/gob"
	"fmt"

	"repro/internal/ca"
	"repro/internal/wire"
)

// Token is the value produced by data-less emitters such as SyncSpout.
type Token struct{}

func init() {
	// Tokens cross process boundaries when a token-carrying buffer (a
	// sequencer ring's Fifo1Full, say) is cut into a remote region link.
	// The unit registration gives Token a typed fast-path tag (two bytes
	// on the wire, allocation-free decode); the gob registration keeps it
	// decodable when nested inside a fallback-encoded composite.
	wire.RegisterUnit(Token{})
	gob.Register(Token{})
}

// Sync: in every step a message flows synchronously from a to b.
func Sync(u *ca.Universe, a, b ca.PortID) *ca.Automaton {
	return ca.NewBuilder(u, "Sync", 1, 0).
		T(0, 0).Sync(a, b).Move(ca.PortLoc(b), ca.PortLoc(a)).Done().
		Build()
}

// LossySync: either a message flows from a to b, or it flows past a and
// is lost (when the b-side cannot accept).
func LossySync(u *ca.Universe, a, b ca.PortID) *ca.Automaton {
	return ca.NewBuilder(u, "LossySync", 1, 0).
		T(0, 0).Sync(a, b).Move(ca.PortLoc(b), ca.PortLoc(a)).Done().
		T(0, 0).Sync(a).Done().
		Build()
}

// SyncDrain: both tails fire together; the data is lost.
func SyncDrain(u *ca.Universe, a, b ca.PortID) *ca.Automaton {
	return ca.NewBuilder(u, "SyncDrain", 1, 0).
		T(0, 0).Sync(a, b).Done().
		Build()
}

// AsyncDrain: either tail fires, never both together.
func AsyncDrain(u *ca.Universe, a, b ca.PortID) *ca.Automaton {
	return ca.NewBuilder(u, "AsyncDrain", 1, 0).
		T(0, 0).Sync(a).Done().
		T(0, 0).Sync(b).Done().
		Build()
}

// SyncSpout: both heads fire together, each receiving a fresh token.
func SyncSpout(u *ca.Universe, a, b ca.PortID) *ca.Automaton {
	return ca.NewBuilder(u, "SyncSpout", 1, 0).
		T(0, 0).Sync(a, b).
		Move(ca.PortLoc(a), ca.ConstLoc(Token{})).
		Move(ca.PortLoc(b), ca.ConstLoc(Token{})).Done().
		Build()
}

// Fifo1: an asynchronous channel with a one-place buffer (Fig. 6b).
func Fifo1(u *ca.Universe, a, b ca.PortID) *ca.Automaton {
	c := u.NewCell()
	return fifo1(u, "Fifo1", 0, a, b, c)
}

// Fifo1Full: a Fifo1 whose buffer initially holds v — the primitive that
// seeds token rings (sequencers, locks).
func Fifo1Full(u *ca.Universe, a, b ca.PortID, v any) *ca.Automaton {
	c := u.NewCellInit(v)
	return fifo1(u, "Fifo1Full", 1, a, b, c)
}

func fifo1(u *ca.Universe, name string, initial int32, a, b ca.PortID, c ca.CellID) *ca.Automaton {
	return ca.NewBuilder(u, name, 2, initial).
		T(0, 1).Sync(a).Move(ca.CellLoc(c), ca.PortLoc(a)).Done().
		T(1, 0).Sync(b).Move(ca.PortLoc(b), ca.CellLoc(c)).Done().
		Build()
}

// FifoK: a bounded FIFO with k buffer slots (fifon in Fig. 6b). Control
// states encode (count, head); data lives in k memory cells used as a
// ring.
func FifoK(u *ca.Universe, a, b ca.PortID, k int) *ca.Automaton {
	if k < 1 {
		panic(fmt.Sprintf("prim: FifoK capacity %d < 1", k))
	}
	cells := make([]ca.CellID, k)
	for i := range cells {
		cells[i] = u.NewCell()
	}
	// state = count*k + head, count ∈ 0..k, head ∈ 0..k-1.
	st := func(count, head int) int32 { return int32(count*k + head) }
	bld := ca.NewBuilder(u, fmt.Sprintf("Fifo%d", k), (k+1)*k, st(0, 0))
	for count := 0; count <= k; count++ {
		for head := 0; head < k; head++ {
			if count < k { // accept into slot (head+count) mod k
				slot := cells[(head+count)%k]
				bld.T(st(count, head), st(count+1, head)).
					Sync(a).Move(ca.CellLoc(slot), ca.PortLoc(a)).Done()
			}
			if count > 0 { // emit from head slot
				slot := cells[head]
				bld.T(st(count, head), st(count-1, (head+1)%k)).
					Sync(b).Move(ca.PortLoc(b), ca.CellLoc(slot)).Done()
			}
		}
	}
	return bld.Build()
}

// Filter: a message flows from a to b if pred holds of it; otherwise it
// flows past a and is lost.
func Filter(u *ca.Universe, a, b ca.PortID, name string, pred func(any) bool) *ca.Automaton {
	not := func(v any) bool { return !pred(v) }
	return ca.NewBuilder(u, "Filter<"+name+">", 1, 0).
		T(0, 0).Sync(a, b).Guard(name, ca.PortLoc(a), pred).
		Move(ca.PortLoc(b), ca.PortLoc(a)).Done().
		T(0, 0).Sync(a).Guard("!"+name, ca.PortLoc(a), not).Done().
		Build()
}

// Transformer: a message flows from a to b transformed by f. The name is
// recorded on the action so the static code generator can reference the
// registered function from emitted source.
func Transformer(u *ca.Universe, a, b ca.PortID, name string, f func(any) any) *ca.Automaton {
	return ca.NewBuilder(u, "Transformer<"+name+">", 1, 0).
		T(0, 0).Sync(a, b).MoveXN(ca.PortLoc(b), ca.PortLoc(a), name, f).Done().
		Build()
}

// Merger: in every step a message flows from one nondeterministically
// selected tail to the head (mergn, Fig. 6d).
func Merger(u *ca.Universe, ins []ca.PortID, out ca.PortID) *ca.Automaton {
	bld := ca.NewBuilder(u, fmt.Sprintf("Merger%d", len(ins)), 1, 0)
	for _, in := range ins {
		bld.T(0, 0).Sync(in, out).Move(ca.PortLoc(out), ca.PortLoc(in)).Done()
	}
	return bld.Build()
}

// Replicator: in every step a message flows from the tail to all heads
// synchronously (repln, Fig. 6e).
func Replicator(u *ca.Universe, in ca.PortID, outs []ca.PortID) *ca.Automaton {
	tb := ca.NewBuilder(u, fmt.Sprintf("Repl%d", len(outs)), 1, 0).
		T(0, 0).Sync(in).Sync(outs...)
	for _, o := range outs {
		tb.Move(ca.PortLoc(o), ca.PortLoc(in))
	}
	return tb.Done().Build()
}

// Router: in every step a message flows from the tail to exactly one
// nondeterministically selected head (exclusive router).
func Router(u *ca.Universe, in ca.PortID, outs []ca.PortID) *ca.Automaton {
	bld := ca.NewBuilder(u, fmt.Sprintf("Router%d", len(outs)), 1, 0)
	for _, o := range outs {
		bld.T(0, 0).Sync(in, o).Move(ca.PortLoc(o), ca.PortLoc(in)).Done()
	}
	return bld.Build()
}

// Seq: the n tails fire one at a time, cyclically, starting with the
// first; data is lost (seqn, Fig. 6c generalizes seq2).
func Seq(u *ca.Universe, tails []ca.PortID) *ca.Automaton {
	n := len(tails)
	if n == 0 {
		panic("prim: Seq needs at least one tail")
	}
	bld := ca.NewBuilder(u, fmt.Sprintf("Seq%d", n), n, 0)
	for i, t := range tails {
		bld.T(int32(i), int32((i+1)%n)).Sync(t).Done()
	}
	return bld.Build()
}

// Valve1: data flows from a to b while open; each message on ctl toggles
// the valve. Initially open.
func Valve1(u *ca.Universe, a, b, ctl ca.PortID) *ca.Automaton {
	return ca.NewBuilder(u, "Valve1", 2, 0).
		T(0, 0).Sync(a, b).Move(ca.PortLoc(b), ca.PortLoc(a)).Done().
		T(0, 1).Sync(ctl).Done().
		T(1, 0).Sync(ctl).Done().
		Build()
}

// Spout1: emits fresh tokens on its single head whenever asked.
func Spout1(u *ca.Universe, a ca.PortID) *ca.Automaton {
	return ca.NewBuilder(u, "Spout1", 1, 0).
		T(0, 0).Sync(a).Move(ca.PortLoc(a), ca.ConstLoc(Token{})).Done().
		Build()
}
