package ca

import "fmt"

// PortID identifies a vertex/port within a Universe.
type PortID int32

// CellID identifies a memory cell (e.g. a FIFO buffer slot) within a
// Universe. Cell contents live in per-connector-instance storage; the
// Universe only records allocation and initial values.
type CellID int32

// Dir is the direction of a boundary port from the environment's view.
type Dir uint8

const (
	// DirNone marks internal vertices (no task attached).
	DirNone Dir = iota
	// DirSource marks ports on which a task performs send operations
	// (data flows from the environment into the connector).
	DirSource
	// DirSink marks ports on which a task performs receive operations
	// (data flows from the connector to the environment).
	DirSink
)

func (d Dir) String() string {
	switch d {
	case DirSource:
		return "source"
	case DirSink:
		return "sink"
	default:
		return "internal"
	}
}

// Universe interns port names and allocates memory cells for one connector
// (template or instance). PortIDs and CellIDs are only meaningful relative
// to their Universe.
type Universe struct {
	names   []string
	byName  map[string]PortID
	dirs    []Dir
	cells   []any // initial values; nil means empty
	hasInit []bool
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{byName: make(map[string]PortID)}
}

// Port interns name and returns its ID, creating it if necessary.
func (u *Universe) Port(name string) PortID {
	if id, ok := u.byName[name]; ok {
		return id
	}
	id := PortID(len(u.names))
	u.names = append(u.names, name)
	u.dirs = append(u.dirs, DirNone)
	u.byName[name] = id
	return id
}

// FreshPort creates a new port with a unique name derived from prefix.
func (u *Universe) FreshPort(prefix string) PortID {
	name := fmt.Sprintf("%s·%d", prefix, len(u.names))
	for {
		if _, ok := u.byName[name]; !ok {
			break
		}
		name += "'"
	}
	return u.Port(name)
}

// Lookup returns the ID for name, if interned.
func (u *Universe) Lookup(name string) (PortID, bool) {
	id, ok := u.byName[name]
	return id, ok
}

// Name returns the interned name of p.
func (u *Universe) Name(p PortID) string {
	if int(p) < 0 || int(p) >= len(u.names) {
		return fmt.Sprintf("?port%d", p)
	}
	return u.names[p]
}

// NumPorts returns the number of interned ports.
func (u *Universe) NumPorts() int { return len(u.names) }

// SetDir records the boundary direction of p.
func (u *Universe) SetDir(p PortID, d Dir) { u.dirs[p] = d }

// DirOf returns the boundary direction of p.
func (u *Universe) DirOf(p PortID) Dir {
	if int(p) >= len(u.dirs) {
		return DirNone
	}
	return u.dirs[p]
}

// NewCell allocates a memory cell with no initial value.
func (u *Universe) NewCell() CellID {
	u.cells = append(u.cells, nil)
	u.hasInit = append(u.hasInit, false)
	return CellID(len(u.cells) - 1)
}

// NewCellInit allocates a memory cell whose initial content is v (the cell
// starts full, as in an initially-full FIFO1).
func (u *Universe) NewCellInit(v any) CellID {
	u.cells = append(u.cells, v)
	u.hasInit = append(u.hasInit, true)
	return CellID(len(u.cells) - 1)
}

// NumCells returns the number of allocated cells.
func (u *Universe) NumCells() int { return len(u.cells) }

// CellInitial returns the initial value of cell c (nil if it starts
// empty).
func (u *Universe) CellInitial(c CellID) any {
	if int(c) < 0 || int(c) >= len(u.cells) {
		return nil
	}
	return u.cells[c]
}

// InitialCells returns a fresh cell store with initial values applied.
func (u *Universe) InitialCells() []any {
	out := make([]any, len(u.cells))
	copy(out, u.cells)
	return out
}

// NewSet returns an empty bit set sized for this universe's ports.
func (u *Universe) NewSet() BitSet { return NewBitSet(len(u.names)) }

// SetOf returns a bit set containing exactly the given ports.
func (u *Universe) SetOf(ports ...PortID) BitSet {
	s := u.NewSet()
	for _, p := range ports {
		s.Set(p)
	}
	return s
}

// PortSetNames renders a port set with names, for diagnostics.
func (u *Universe) PortSetNames(s BitSet) []string {
	var out []string
	s.ForEach(func(p PortID) { out = append(out, u.Name(p)) })
	return out
}
