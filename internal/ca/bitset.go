package ca

import (
	"math/bits"
	"strconv"
	"strings"
)

// BitSet is a fixed-capacity bit set used for port sets in transition
// labels. All BitSets participating in one operation must come from the
// same Universe (same capacity); operations do not reallocate.
type BitSet []uint64

// NewBitSet returns an empty bit set with capacity for n bits.
func NewBitSet(n int) BitSet {
	return make(BitSet, (n+63)/64)
}

// Set sets bit i. The caller must ensure i is within capacity.
func (b BitSet) Set(i PortID) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b BitSet) Clear(i PortID) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (b BitSet) Has(i PortID) bool {
	w := int(i >> 6)
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)&63)) != 0
}

// IsEmpty reports whether no bit is set.
func (b BitSet) IsEmpty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a copy of b.
func (b BitSet) Clone() BitSet {
	c := make(BitSet, len(b))
	copy(c, b)
	return c
}

// OrInto sets b |= o in place.
func (b BitSet) OrInto(o BitSet) {
	for i := range o {
		b[i] |= o[i]
	}
}

// AndNotInto sets b &^= o in place.
func (b BitSet) AndNotInto(o BitSet) {
	for i := range o {
		b[i] &^= o[i]
	}
}

// And returns a fresh bit set holding b & o.
func (b BitSet) And(o BitSet) BitSet {
	c := make(BitSet, len(b))
	for i := range b {
		c[i] = b[i] & o[i]
	}
	return c
}

// Or returns a fresh bit set holding b | o.
func (b BitSet) Or(o BitSet) BitSet {
	c := make(BitSet, len(b))
	for i := range b {
		c[i] = b[i] | o[i]
	}
	return c
}

// Equal reports whether b and o hold the same bits.
func (b BitSet) Equal(o BitSet) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share any bit.
func (b BitSet) Intersects(o BitSet) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every bit of b is also set in o.
func (b BitSet) SubsetOf(o BitSet) bool {
	for i := range b {
		var w uint64
		if i < len(o) {
			w = o[i]
		}
		if b[i]&^w != 0 {
			return false
		}
	}
	return true
}

// MaskedSubsetOf reports whether b∩mask ⊆ of, without allocating.
func (b BitSet) MaskedSubsetOf(mask, of BitSet) bool {
	for i := range b {
		if b[i]&mask[i]&^of[i] != 0 {
			return false
		}
	}
	return true
}

// IntersectionEqual reports whether b∩mask == o∩mask without allocating.
func (b BitSet) IntersectionEqual(o, mask BitSet) bool {
	for i := range mask {
		if (b[i]^o[i])&mask[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for every set bit, in increasing order.
func (b BitSet) ForEach(f func(PortID)) {
	for i, w := range b {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			f(PortID(i*64 + j))
			w &= w - 1
		}
	}
}

// Ports returns the set bits as a sorted slice.
func (b BitSet) Ports() []PortID {
	out := make([]PortID, 0, b.Count())
	b.ForEach(func(p PortID) { out = append(out, p) })
	return out
}

// String renders the set as "{1,5,9}" for debugging.
func (b BitSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(p PortID) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(strconv.Itoa(int(p)))
	})
	sb.WriteByte('}')
	return sb.String()
}
