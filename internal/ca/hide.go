package ca

// Hide removes the given ports from every transition's synchronization
// set (Reo's hiding operator). Data actions are left in place: a hidden
// port that carries data inside a transition remains as an internal
// binding in the action chain, resolved lazily at fire time (or eliminated
// by Simplify).
//
// Transitions whose synchronization set becomes empty are internal (τ)
// steps. A τ self-loop with no cell effect is dropped: it is unobservable
// and would let the engine spin forever.
func Hide(a *Automaton, hidden BitSet) *Automaton {
	out := &Automaton{
		Name:    a.Name,
		U:       a.U,
		Ports:   a.Ports.Clone(),
		Initial: a.Initial,
		Trans:   make([][]Transition, len(a.Trans)),
	}
	out.Ports.AndNotInto(hidden)
	for s, ts := range a.Trans {
		res := make([]Transition, 0, len(ts))
		for _, t := range ts {
			nt := Transition{
				Target: t.Target,
				Sync:   t.Sync.Clone(),
				Guards: t.Guards,
				Acts:   t.Acts,
			}
			nt.Sync.AndNotInto(hidden)
			if nt.Sync.IsEmpty() && nt.Target == int32(s) && !writesCell(nt.Acts) {
				continue // unobservable self-loop
			}
			res = append(res, nt)
		}
		out.Trans[s] = res
	}
	return out
}

func writesCell(acts []Action) bool {
	for i := range acts {
		if acts[i].Dst.Kind == LocCell {
			return true
		}
	}
	return false
}

// HideByName hides the named ports (ignoring names not in the universe).
func HideByName(a *Automaton, names ...string) *Automaton {
	h := a.U.NewSet()
	for _, n := range names {
		if p, ok := a.U.Lookup(n); ok {
			h.Set(p)
		}
	}
	return Hide(a, h)
}
