package ca

// InstantiateInto clones a into the destination universe dst, mapping
// ports through portMap. Ports not present in portMap receive fresh
// private ports in dst (prefixed for diagnosability); memory cells are
// re-allocated in dst preserving initial values. This is the run-time
// instantiation step of parametrized execution: one compile-time medium
// automaton template stamped out per loop iteration (§IV-D, Fig. 10).
//
// The returned map extension includes the fresh ports that were created.
func InstantiateInto(a *Automaton, dst *Universe, portMap map[PortID]PortID, freshPrefix string) (*Automaton, map[PortID]PortID) {
	full := make(map[PortID]PortID, a.Ports.Count())
	for k, v := range portMap {
		full[k] = v
	}
	mapPort := func(p PortID) PortID {
		if q, ok := full[p]; ok {
			return q
		}
		q := dst.FreshPort(freshPrefix + "/" + a.U.Name(p))
		full[p] = q
		return q
	}

	// Cells: re-allocate preserving initial values.
	cellMap := make([]CellID, a.U.NumCells())
	cellSeen := make([]bool, a.U.NumCells())
	inits := a.U.InitialCells()
	hasInit := a.U.hasInit
	mapCell := func(c CellID) CellID {
		if cellSeen[c] {
			return cellMap[c]
		}
		var nc CellID
		if int(c) < len(hasInit) && hasInit[c] {
			nc = dst.NewCellInit(inits[c])
		} else {
			nc = dst.NewCell()
		}
		cellMap[c] = nc
		cellSeen[c] = true
		return nc
	}

	mapLoc := func(l Loc) Loc {
		switch l.Kind {
		case LocPort:
			return PortLoc(mapPort(l.Port))
		case LocCell:
			return CellLoc(mapCell(l.Cell))
		default:
			return l
		}
	}

	out := &Automaton{
		Name:    a.Name,
		U:       dst,
		Initial: a.Initial,
		Trans:   make([][]Transition, len(a.Trans)),
	}
	// Map transitions first so fresh ports exist before sizing bitsets.
	type protoT struct {
		target int32
		sync   []PortID
		guards []Guard
		acts   []Action
	}
	proto := make([][]protoT, len(a.Trans))
	var allPorts []PortID
	for s, ts := range a.Trans {
		ps := make([]protoT, 0, len(ts))
		for _, t := range ts {
			pt := protoT{target: t.Target}
			t.Sync.ForEach(func(p PortID) {
				pt.sync = append(pt.sync, mapPort(p))
			})
			for _, g := range t.Guards {
				g.In = mapLoc(g.In)
				pt.guards = append(pt.guards, g)
			}
			for _, act := range t.Acts {
				act.Dst = mapLoc(act.Dst)
				act.Src = mapLoc(act.Src)
				pt.acts = append(pt.acts, act)
			}
			ps = append(ps, pt)
		}
		proto[s] = ps
	}
	a.Ports.ForEach(func(p PortID) { allPorts = append(allPorts, mapPort(p)) })

	out.Ports = dst.NewSet()
	for _, p := range allPorts {
		out.Ports.Set(p)
	}
	for s, ps := range proto {
		ts := make([]Transition, 0, len(ps))
		for _, pt := range ps {
			t := Transition{
				Target: pt.target,
				Sync:   dst.NewSet(),
				Guards: pt.guards,
				Acts:   pt.acts,
			}
			for _, p := range pt.sync {
				t.Sync.Set(p)
			}
			ts = append(ts, t)
		}
		out.Trans[s] = ts
	}
	return out, full
}

// RemapPorts rewrites an automaton within its own universe, substituting
// port IDs according to subst (identity where absent). Used by node
// resolution when a shared written vertex must be split per writer.
func RemapPorts(a *Automaton, subst map[PortID]PortID) *Automaton {
	get := func(p PortID) PortID {
		if q, ok := subst[p]; ok {
			return q
		}
		return p
	}
	mapLoc := func(l Loc) Loc {
		if l.Kind == LocPort {
			return PortLoc(get(l.Port))
		}
		return l
	}
	out := &Automaton{
		Name:    a.Name,
		U:       a.U,
		Ports:   a.U.NewSet(),
		Initial: a.Initial,
		Trans:   make([][]Transition, len(a.Trans)),
	}
	a.Ports.ForEach(func(p PortID) { out.Ports.Set(get(p)) })
	for s, ts := range a.Trans {
		res := make([]Transition, 0, len(ts))
		for _, t := range ts {
			nt := Transition{Target: t.Target, Sync: a.U.NewSet()}
			t.Sync.ForEach(func(p PortID) { nt.Sync.Set(get(p)) })
			for _, g := range t.Guards {
				g.In = mapLoc(g.In)
				nt.Guards = append(nt.Guards, g)
			}
			for _, act := range t.Acts {
				act.Dst = mapLoc(act.Dst)
				act.Src = mapLoc(act.Src)
				nt.Acts = append(nt.Acts, act)
			}
			res = append(res, nt)
		}
		out.Trans[s] = res
	}
	return out
}
