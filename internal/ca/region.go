package ca

import (
	"fmt"
	"strings"
)

// This file implements asynchronous-region partitioning: the static
// analysis that decomposes a connector's constituent automata into
// synchronous regions joined by buffered links (the optimization
// direction of the paper's §V-C(3), after Jongmans, Santini & Arbab and
// the Dreams/GALS line of work by Proença et al.).
//
// The cut point is a *buffer constituent*: an automaton whose transitions
// never synchronize more than one port at a time — a full buffer never
// requires multi-party consensus across it. Such a constituent can be
// replaced by a bounded queue between the region producing into it and
// the region consuming out of it; each region then fires with purely
// local information (its own pending operations plus the fill levels of
// its adjacent queues), so regions execute concurrently.

// UnionFind is a plain disjoint-set forest with path halving, shared by
// the component partitioner (engine.NewMulti) and the region planner so
// their grouping semantics cannot drift apart.
type UnionFind []int

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) UnionFind {
	u := make(UnionFind, n)
	for i := range u {
		u[i] = i
	}
	return u
}

// Find returns the representative of x's set.
func (u UnionFind) Find(x int) int {
	for u[x] != x {
		u[x] = u[u[x]]
		x = u[x]
	}
	return x
}

// Union merges the sets of a and b.
func (u UnionFind) Union(a, b int) { u[u.Find(a)] = u.Find(b) }

// BufferShape describes a constituent recognized as a one-place buffer
// (the Fifo1/Fifo1Full shape, detected structurally — any automaton with
// the same state graph qualifies, whatever primitive produced it).
type BufferShape struct {
	// In is the accept port (data flows into the buffer when it fires).
	In PortID
	// Out is the emit port (data flows out of the buffer when it fires).
	Out PortID
	// Cell holds the buffered value between accept and emit.
	Cell CellID
	// Capacity is the number of values the buffer holds (1 for Fifo1).
	Capacity int
	// Full reports whether the buffer starts full (Fifo1Full); the
	// initial content is the universe's initial value for Cell.
	Full bool
}

// DetectBuffer reports whether a is structurally a one-place buffer:
// two states forming a cycle, one transition accepting a single port
// into a cell, one emitting the same cell through a single other port,
// with no guards and no other actions. Both Fifo1 and Fifo1Full match
// (distinguished by the initial state); so does any hand-built automaton
// of the same shape.
func DetectBuffer(a *Automaton) (BufferShape, bool) {
	var none BufferShape
	if a.NumStates() != 2 || a.NumTransitions() != 2 || a.Ports.Count() != 2 {
		return none, false
	}
	if len(a.Trans[0]) != 1 || len(a.Trans[1]) != 1 {
		return none, false
	}
	classify := func(s int32) (accept bool, p PortID, c CellID, ok bool) {
		t := &a.Trans[s][0]
		if t.Target == s || len(t.Guards) != 0 || len(t.Acts) != 1 || t.Sync.Count() != 1 {
			return false, 0, 0, false
		}
		p = t.Sync.Ports()[0]
		act := &t.Acts[0]
		if act.Xform != nil {
			return false, 0, 0, false
		}
		switch {
		case act.Dst.Kind == LocCell && act.Src.Kind == LocPort && act.Src.Port == p:
			return true, p, act.Dst.Cell, true
		case act.Dst.Kind == LocPort && act.Dst.Port == p && act.Src.Kind == LocCell:
			return false, p, act.Src.Cell, true
		}
		return false, 0, 0, false
	}
	acc0, p0, c0, ok0 := classify(0)
	acc1, p1, c1, ok1 := classify(1)
	if !ok0 || !ok1 || acc0 == acc1 || c0 != c1 || p0 == p1 {
		return none, false
	}
	sh := BufferShape{Cell: c0, Capacity: 1}
	if acc0 {
		sh.In, sh.Out = p0, p1
		sh.Full = a.Initial == 1
	} else {
		sh.In, sh.Out = p1, p0
		sh.Full = a.Initial == 0
	}
	return sh, true
}

// RegionSpec is one synchronous region of a RegionPlan.
type RegionSpec struct {
	// Auts are indices (into the analyzed constituent slice) of the
	// automata executing inside this region.
	Auts []int
	// Nodes are ports for which the region consists only of a synthesized
	// single-port node automaton: link endpoints with no constituent
	// attached (task-facing buffer ends, or relay nodes between two
	// buffers).
	Nodes []PortID
}

// RegionLink is one buffered boundary between two regions: a buffer
// constituent converted into a bounded queue. The source region fires
// SrcPort to push (gated on the queue being non-full); the target region
// fires DstPort to pop (gated on it being non-empty).
type RegionLink struct {
	From, To         int
	SrcPort, DstPort PortID
	Capacity         int
	// Full/Initial describe the queue's starting contents.
	Full    bool
	Initial any
	// Buffer is the index of the converted constituent.
	Buffer int
}

// RegionPlan is the result of the region analysis: a partition of the
// constituents into synchronous regions plus the links joining them.
// Constituents that appear in no region are exactly the buffers listed
// in Links.
type RegionPlan struct {
	Regions []RegionSpec
	Links   []RegionLink
}

// NumCut returns how many buffer constituents were converted to links.
func (rp *RegionPlan) NumCut() int { return len(rp.Links) }

// PlanRegions partitions the constituent automata into asynchronous
// regions. Non-buffer constituents sharing a port always land in the
// same region (they may need multi-party consensus). A buffer constituent
// is cut into a link unless both of its ports attach to the same region —
// then cutting gains nothing and the buffer stays an ordinary
// constituent. Ports attached only to buffers (task-facing buffer ends
// and buffer-to-buffer relay nodes) get singleton node regions.
//
// The analysis is linear in total automaton size up to the union-find
// fixpoint, and must be given the same automata slice later used to
// build the region engines.
func PlanRegions(u *Universe, auts []*Automaton) *RegionPlan {
	n := len(auts)
	shapes := make([]BufferShape, n)
	isBuf := make([]bool, n)
	for i, a := range auts {
		a.PadToUniverse()
		shapes[i], isBuf[i] = DetectBuffer(a)
	}

	// Defensive: two buffers emitting through the same port would need a
	// merge at the link level; keep such buffers as ordinary constituents.
	// (Connector assembly never produces this — multi-writer vertices get
	// explicit mergers — but hand-built automata can.)
	outUsers := make(map[PortID][]int)
	for i := range auts {
		if isBuf[i] {
			outUsers[shapes[i].Out] = append(outUsers[shapes[i].Out], i)
		}
	}
	for _, ids := range outUsers {
		if len(ids) > 1 {
			for _, i := range ids {
				isBuf[i] = false
			}
		}
	}

	// users[p] lists every constituent whose alphabet contains p.
	users := make(map[PortID][]int)
	for i, a := range auts {
		a.Ports.ForEach(func(p PortID) { users[p] = append(users[p], i) })
	}

	uf := NewUnionFind(n)
	find := uf.Find
	union := uf.Union

	// An isolated buffer — no other constituent on either port — is
	// already decoupled from everything except its tasks: cutting it
	// would replace one engine with two node regions and a link for no
	// concurrency gain. Keep it solid; it becomes its own singleton
	// region, exactly the component cut.
	for i := range auts {
		if !isBuf[i] {
			continue
		}
		if len(users[shapes[i].In]) == 1 && len(users[shapes[i].Out]) == 1 {
			isBuf[i] = false
		}
	}

	// Union solid (non-buffer) constituents sharing a port; buffers do not
	// participate — they are the prospective cut points.
	solidUnion := func(i int) {
		auts[i].Ports.ForEach(func(p PortID) {
			for _, j := range users[p] {
				if j != i && !isBuf[j] {
					union(i, j)
				}
			}
		})
	}
	for i := range auts {
		if !isBuf[i] {
			solidUnion(i)
		}
	}

	// sideRoot returns the region root a buffer port attaches to: the
	// union-find root of any solid user, or -1 if only buffers (or
	// nothing) use the port.
	sideRoot := func(self int, p PortID) int {
		for _, j := range users[p] {
			if j != self && !isBuf[j] {
				return find(j)
			}
		}
		return -1
	}

	// Fixpoint: a buffer whose two sides already attach to one region is
	// kept as an ordinary constituent (no cut). Keeping it makes it solid,
	// which can connect further buffers' sides, so iterate.
	for changed := true; changed; {
		changed = false
		for i := range auts {
			if !isBuf[i] {
				continue
			}
			in := sideRoot(i, shapes[i].In)
			out := sideRoot(i, shapes[i].Out)
			if in >= 0 && in == out {
				isBuf[i] = false
				solidUnion(i)
				changed = true
			}
		}
	}

	// Number regions: solid constituents by union-find root, in first-
	// constituent order.
	plan := &RegionPlan{}
	regionOf := make(map[int]int)
	for i := range auts {
		if isBuf[i] {
			continue
		}
		r := find(i)
		ri, ok := regionOf[r]
		if !ok {
			ri = len(plan.Regions)
			regionOf[r] = ri
			plan.Regions = append(plan.Regions, RegionSpec{})
		}
		plan.Regions[ri].Auts = append(plan.Regions[ri].Auts, i)
	}

	// Node regions for link endpoints with no solid constituent attached,
	// one per port, created in buffer order for determinism.
	nodeRegion := make(map[PortID]int)
	regionForPort := func(self int, p PortID) int {
		for _, j := range users[p] {
			if j != self && !isBuf[j] {
				return regionOf[find(j)]
			}
		}
		if ri, ok := nodeRegion[p]; ok {
			return ri
		}
		ri := len(plan.Regions)
		nodeRegion[p] = ri
		plan.Regions = append(plan.Regions, RegionSpec{Nodes: []PortID{p}})
		return ri
	}
	for i := range auts {
		if !isBuf[i] {
			continue
		}
		sh := shapes[i]
		lk := RegionLink{
			From:     regionForPort(i, sh.In),
			To:       regionForPort(i, sh.Out),
			SrcPort:  sh.In,
			DstPort:  sh.Out,
			Capacity: sh.Capacity,
			Full:     sh.Full,
			Buffer:   i,
		}
		if sh.Full {
			lk.Initial = u.CellInitial(sh.Cell)
		}
		plan.Links = append(plan.Links, lk)
	}
	return plan
}

// PortRegions maps every port to the index of the region that executes
// it (-1 for ports outside the plan, e.g. hidden ports of cut buffers).
// This is the ownership a distributed placement uses to decide which
// node drives which boundary port.
func (rp *RegionPlan) PortRegions(u *Universe, auts []*Automaton) []int {
	owner := make([]int, u.NumPorts())
	for i := range owner {
		owner[i] = -1
	}
	for ri, spec := range rp.Regions {
		for _, ai := range spec.Auts {
			ri := ri
			auts[ai].Ports.ForEach(func(p PortID) { owner[p] = ri })
		}
		for _, p := range spec.Nodes {
			owner[p] = ri
		}
	}
	return owner
}

// NodeAutomaton synthesizes the trivial automaton of a node region: one
// state with a self-loop firing the single port. It carries no data
// actions — the value flowing through the node comes from the adjacent
// link or pending operation at run time.
func NodeAutomaton(u *Universe, p PortID) *Automaton {
	return NewBuilder(u, "node:"+u.Name(p), 1, 0).
		T(0, 0).Sync(p).Done().
		Build()
}

// Dump renders the plan for diagnostics (cmd/reoc regions).
func (rp *RegionPlan) Dump(u *Universe, auts []*Automaton) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d regions, %d links (%d constituents, %d cut buffers)\n",
		len(rp.Regions), len(rp.Links), len(auts), len(rp.Links))
	for ri, r := range rp.Regions {
		fmt.Fprintf(&sb, "region %d:", ri)
		for _, ai := range r.Auts {
			ports := u.PortSetNames(visiblePorts(u, auts[ai]))
			fmt.Fprintf(&sb, " %s{%s}", auts[ai].Name, strings.Join(ports, ","))
		}
		for _, p := range r.Nodes {
			fmt.Fprintf(&sb, " node(%s)", u.Name(p))
		}
		sb.WriteByte('\n')
	}
	for li, lk := range rp.Links {
		state := "empty"
		if lk.Full {
			state = "full"
		}
		fmt.Fprintf(&sb, "link %d: region %d --%s>%s--> region %d  cap=%d %s (%s)\n",
			li, lk.From, u.Name(lk.SrcPort), u.Name(lk.DstPort), lk.To,
			lk.Capacity, state, auts[lk.Buffer].Name)
	}
	return sb.String()
}

// visiblePorts returns the task-visible (boundary) ports of a, falling
// back to the full alphabet when it has none, sorted for stable output.
func visiblePorts(u *Universe, a *Automaton) BitSet {
	vis := u.NewSet()
	any := false
	a.Ports.ForEach(func(p PortID) {
		if u.DirOf(p) != DirNone {
			vis.Set(p)
			any = true
		}
	})
	if !any {
		return a.Ports
	}
	return vis
}
