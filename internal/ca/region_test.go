package ca_test

import (
	"testing"

	"repro/internal/ca"
	"repro/internal/prim"
)

func TestDetectBufferShapes(t *testing.T) {
	u := ca.NewUniverse()
	a, b, c := u.Port("a"), u.Port("b"), u.Port("c")

	if sh, ok := ca.DetectBuffer(prim.Fifo1(u, a, b)); !ok || sh.In != a || sh.Out != b || sh.Full {
		t.Errorf("Fifo1: got %+v ok=%v, want In=a Out=b empty", sh, ok)
	}
	if sh, ok := ca.DetectBuffer(prim.Fifo1Full(u, a, b, 42)); !ok || sh.In != a || sh.Out != b || !sh.Full {
		t.Errorf("Fifo1Full: got %+v ok=%v, want In=a Out=b full", sh, ok)
	} else if u.CellInitial(sh.Cell) != 42 {
		t.Errorf("Fifo1Full initial content = %v, want 42", u.CellInitial(sh.Cell))
	}
	// FifoK(1) has the same structure as Fifo1 — detection is structural,
	// not by primitive name.
	if _, ok := ca.DetectBuffer(prim.FifoK(u, a, b, 1)); !ok {
		t.Error("FifoK(1) should be detected as a buffer shape")
	}

	negatives := map[string]*ca.Automaton{
		"Sync":      prim.Sync(u, a, b),
		"LossySync": prim.LossySync(u, a, b),
		"SyncDrain": prim.SyncDrain(u, a, b),
		"Seq":       prim.Seq(u, []ca.PortID{a, b}),
		"FifoK(2)":  prim.FifoK(u, a, b, 2),
		"Valve1":    prim.Valve1(u, a, b, c),
		"Merger":    prim.Merger(u, []ca.PortID{a, b}, c),
	}
	for name, aut := range negatives {
		if _, ok := ca.DetectBuffer(aut); ok {
			t.Errorf("%s wrongly detected as buffer", name)
		}
	}
}

// TestPlanRegionsChain cuts a drain-coupled token chain: Sync(a;x),
// Fifo1(x;y), Sync(y;b) must become two regions joined by one link.
func TestPlanRegionsChain(t *testing.T) {
	u := ca.NewUniverse()
	a, x, y, b := u.Port("a"), u.Port("x"), u.Port("y"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	auts := []*ca.Automaton{prim.Sync(u, a, x), prim.Fifo1(u, x, y), prim.Sync(u, y, b)}
	plan := ca.PlanRegions(u, auts)
	if len(plan.Regions) != 2 || len(plan.Links) != 1 {
		t.Fatalf("got %d regions, %d links, want 2/1:\n%s",
			len(plan.Regions), len(plan.Links), plan.Dump(u, auts))
	}
	lk := plan.Links[0]
	if lk.SrcPort != x || lk.DstPort != y || lk.Full || lk.Capacity != 1 {
		t.Errorf("link = %+v, want x->y cap 1 empty", lk)
	}
	if lk.From == lk.To {
		t.Error("link must join two distinct regions")
	}
}

// TestPlanRegionsKeepsCoupledBuffer: a buffer whose two ports attach to
// the same region (here through a SyncDrain spanning it) must not be cut.
func TestPlanRegionsKeepsCoupledBuffer(t *testing.T) {
	u := ca.NewUniverse()
	x, y := u.Port("x"), u.Port("y")
	u.SetDir(x, ca.DirSource)
	u.SetDir(y, ca.DirSink)
	auts := []*ca.Automaton{prim.Fifo1(u, x, y), prim.SyncDrain(u, x, y)}
	plan := ca.PlanRegions(u, auts)
	if len(plan.Regions) != 1 || len(plan.Links) != 0 {
		t.Fatalf("got %d regions, %d links, want 1/0 (buffer spanned by drain):\n%s",
			len(plan.Regions), len(plan.Links), plan.Dump(u, auts))
	}
}

// TestPlanRegionsKeepFixpoint: keeping one buffer can glue the sides of
// another; the fixpoint must propagate. Fifo1(x;y) is spanned by a drain;
// Fifo1(y;z) then also has both sides on the same region via the kept
// first buffer and a Sync(z;x) back-edge.
func TestPlanRegionsKeepFixpoint(t *testing.T) {
	u := ca.NewUniverse()
	x, y, z := u.Port("x"), u.Port("y"), u.Port("z")
	auts := []*ca.Automaton{
		prim.Fifo1(u, x, y),
		prim.SyncDrain(u, x, y),
		prim.Fifo1(u, y, z),
		prim.SyncDrain(u, y, z),
	}
	plan := ca.PlanRegions(u, auts)
	if len(plan.Regions) != 1 || len(plan.Links) != 0 {
		t.Fatalf("got %d regions, %d links, want 1/0:\n%s",
			len(plan.Regions), len(plan.Links), plan.Dump(u, auts))
	}
}

// TestPlanRegionsNodeRegions: a pure buffer pipeline (task - Fifo1 -
// relay node - Fifo1 - task) has no solid constituents at all; every
// endpoint port gets a synthesized node region.
func TestPlanRegionsNodeRegions(t *testing.T) {
	u := ca.NewUniverse()
	a, m, b := u.Port("a"), u.Port("m"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	auts := []*ca.Automaton{prim.Fifo1(u, a, m), prim.Fifo1(u, m, b)}
	plan := ca.PlanRegions(u, auts)
	if len(plan.Regions) != 3 || len(plan.Links) != 2 {
		t.Fatalf("got %d regions, %d links, want 3/2:\n%s",
			len(plan.Regions), len(plan.Links), plan.Dump(u, auts))
	}
	nodes := 0
	for _, r := range plan.Regions {
		if len(r.Auts) != 0 {
			t.Errorf("unexpected solid constituents in region: %+v", r)
		}
		nodes += len(r.Nodes)
	}
	if nodes != 3 {
		t.Errorf("synthesized %d node ports, want 3 (a, m, b)", nodes)
	}
	// The relay node m must be the target of link 0 and the source of
	// link 1 — the same region on both.
	if plan.Links[0].To != plan.Links[1].From {
		t.Errorf("relay node split across regions: %+v", plan.Links)
	}
}

// TestPlanRegionsSharedOutKept: two buffers emitting through one port
// would need a link-level merge; both must stay ordinary constituents.
func TestPlanRegionsSharedOutKept(t *testing.T) {
	u := ca.NewUniverse()
	a, b, m := u.Port("a"), u.Port("b"), u.Port("m")
	c := u.Port("c")
	auts := []*ca.Automaton{
		prim.Fifo1(u, a, m),
		prim.Fifo1(u, b, m),
		prim.Sync(u, m, c),
	}
	plan := ca.PlanRegions(u, auts)
	if len(plan.Links) != 0 {
		t.Fatalf("shared-out buffers must not be cut:\n%s", plan.Dump(u, auts))
	}
}

// TestPlanRegionsReplication: several buffers accepting from one port
// (a replicated node) each become a link from the same source region.
func TestPlanRegionsReplication(t *testing.T) {
	u := ca.NewUniverse()
	in := u.Port("in")
	u.SetDir(in, ca.DirSource)
	var auts []*ca.Automaton
	outs := make([]ca.PortID, 3)
	for i := range outs {
		outs[i] = u.Port("out" + string(rune('0'+i)))
		u.SetDir(outs[i], ca.DirSink)
		auts = append(auts, prim.Fifo1(u, in, outs[i]))
	}
	plan := ca.PlanRegions(u, auts)
	if len(plan.Links) != 3 {
		t.Fatalf("want 3 links:\n%s", plan.Dump(u, auts))
	}
	src := plan.Links[0].From
	for _, lk := range plan.Links {
		if lk.From != src {
			t.Errorf("replicated accepts must share one source region: %+v", plan.Links)
		}
	}
	// 1 shared source node region + 3 sink node regions.
	if len(plan.Regions) != 4 {
		t.Errorf("got %d regions, want 4:\n%s", len(plan.Regions), plan.Dump(u, auts))
	}
}

func TestNodeAutomaton(t *testing.T) {
	u := ca.NewUniverse()
	p := u.Port("p")
	a := ca.NodeAutomaton(u, p)
	if a.NumStates() != 1 || a.NumTransitions() != 1 || !a.Ports.Has(p) {
		t.Fatalf("bad node automaton: %v", a)
	}
}
