package ca

// Builder constructs automata imperatively. It is used by the primitive
// library and by tests.
type Builder struct {
	a *Automaton
}

// NewBuilder starts an automaton with the given number of control states.
func NewBuilder(u *Universe, name string, numStates int, initial int32) *Builder {
	a := &Automaton{
		Name:    name,
		U:       u,
		Ports:   u.NewSet(),
		Initial: initial,
		Trans:   make([][]Transition, numStates),
	}
	return &Builder{a: a}
}

// TransitionBuilder accumulates one transition.
type TransitionBuilder struct {
	b    *Builder
	from int32
	t    Transition
}

// T starts a transition from state `from` to state `to`.
func (b *Builder) T(from, to int32) *TransitionBuilder {
	return &TransitionBuilder{
		b:    b,
		from: from,
		t:    Transition{Target: to, Sync: b.a.U.NewSet()},
	}
}

// Sync adds ports to the transition's synchronization set.
func (tb *TransitionBuilder) Sync(ports ...PortID) *TransitionBuilder {
	for _, p := range ports {
		tb.t.Sync.Set(p)
		tb.b.a.Ports.Set(p)
	}
	return tb
}

// Move adds a data action dst := src.
func (tb *TransitionBuilder) Move(dst, src Loc) *TransitionBuilder {
	tb.t.Acts = append(tb.t.Acts, Action{Dst: dst, Src: src})
	return tb
}

// MoveX adds a data action dst := xform(src).
func (tb *TransitionBuilder) MoveX(dst, src Loc, xform func(any) any) *TransitionBuilder {
	tb.t.Acts = append(tb.t.Acts, Action{Dst: dst, Src: src, Xform: xform})
	return tb
}

// MoveXN adds a data action dst := xform(src) where xform came from a
// named registration; the name travels on the action so the static code
// generator can reference the function from generated source.
func (tb *TransitionBuilder) MoveXN(dst, src Loc, name string, xform func(any) any) *TransitionBuilder {
	tb.t.Acts = append(tb.t.Acts, Action{Dst: dst, Src: src, Xform: xform, XformNames: []string{name}})
	return tb
}

// Guard adds a data constraint on the value at `in`.
func (tb *TransitionBuilder) Guard(name string, in Loc, pred func(any) bool) *TransitionBuilder {
	tb.t.Guards = append(tb.t.Guards, Guard{In: in, Pred: pred, Name: name})
	return tb
}

// Done appends the transition to the automaton.
func (tb *TransitionBuilder) Done() *Builder {
	a := tb.b.a
	a.Trans[tb.from] = append(a.Trans[tb.from], tb.t)
	return tb.b
}

// Build finalizes and returns the automaton.
func (b *Builder) Build() *Automaton { return b.a }
