package ca_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ca"
	"repro/internal/prim"
)

// randomPipeline builds a random chain of Sync/Fifo1/LossySync primitives
// over shared intermediate vertices — a family of well-formed connectors
// for property testing.
func randomPipeline(r *rand.Rand, u *ca.Universe, length int) []*ca.Automaton {
	var auts []*ca.Automaton
	prev := u.FreshPort("v")
	for i := 0; i < length; i++ {
		next := u.FreshPort("v")
		switch r.Intn(3) {
		case 0:
			auts = append(auts, prim.Sync(u, prev, next))
		case 1:
			auts = append(auts, prim.Fifo1(u, prev, next))
		default:
			auts = append(auts, prim.LossySync(u, prev, next))
		}
		prev = next
	}
	return auts
}

// TestProductAssociativeSizes: ((a×b)×c) and (a×(b×c)) have identical
// reachable state and transition counts for random pipelines.
func TestProductAssociativeSizes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	prop := func() bool {
		u := ca.NewUniverse()
		auts := randomPipeline(r, u, 3)
		ab, err := ca.Product(auts[0], auts[1], ca.ProductLimits{})
		if err != nil {
			return false
		}
		abc1, err := ca.Product(ab, auts[2], ca.ProductLimits{})
		if err != nil {
			return false
		}
		bc, err := ca.Product(auts[1], auts[2], ca.ProductLimits{})
		if err != nil {
			return false
		}
		abc2, err := ca.Product(auts[0], bc, ca.ProductLimits{})
		if err != nil {
			return false
		}
		return abc1.NumStates() == abc2.NumStates() &&
			abc1.NumTransitions() == abc2.NumTransitions()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestProductMatchesKWayExpansion: the materialized ProductAll agrees
// with ExpandJoint on the initial state's step count (full mode).
func TestProductMatchesKWayExpansion(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	prop := func() bool {
		u := ca.NewUniverse()
		auts := randomPipeline(r, u, 4)
		p, err := ca.ProductAll(auts, ca.ExpandFull, ca.ProductLimits{})
		if err != nil {
			return false
		}
		states := make([]int32, len(auts))
		joints := ca.ExpandJoint(auts, states, ca.ExpandFull)
		return len(p.Trans[p.Initial]) == len(joints)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestConnectedSubsetOfFull: every connected joint appears among the full
// joints (same sync set and targets).
func TestConnectedSubsetOfFull(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	prop := func() bool {
		u := ca.NewUniverse()
		auts := randomPipeline(r, u, 4)
		states := make([]int32, len(auts))
		conn := ca.ExpandJoint(auts, states, ca.ExpandConnected)
		full := ca.ExpandJoint(auts, states, ca.ExpandFull)
		key := func(j ca.Joint) string {
			return j.Sync.String() + "|" + string(encodeTargets(j.Targets))
		}
		fullSet := map[string]bool{}
		for _, j := range full {
			fullSet[key(j)] = true
		}
		for _, j := range conn {
			if !fullSet[key(j)] {
				return false
			}
		}
		return len(conn) <= len(full)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func encodeTargets(ts []int32) []byte {
	out := make([]byte, len(ts))
	for i, v := range ts {
		out[i] = byte(v)
	}
	return out
}

// TestExpandAfterUniverseGrowth: automata built before new ports are
// interned still compose (bit-set padding regression, unit level).
func TestExpandAfterUniverseGrowth(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	early := prim.Sync(u, a, b) // 2-port universe: 1-word bit sets
	for i := 0; i < 70; i++ {
		u.FreshPort("grow")
	}
	c := u.FreshPort("c") // id > 63
	late := prim.Sync(u, b, c)
	joints := ca.ExpandJoint([]*ca.Automaton{early, late}, []int32{0, 0}, ca.ExpandConnected)
	if len(joints) != 1 {
		t.Fatalf("joints = %d, want 1", len(joints))
	}
	if !joints[0].Sync.Has(c) || !joints[0].Sync.Has(a) {
		t.Error("padded joint lost ports")
	}
}

// TestHideAfterGrowth: hiding with a full-size mask on a pre-growth
// automaton must not panic and must clear the port.
func TestHideAfterGrowth(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	s := prim.Sync(u, a, b)
	s.PadToUniverse()
	for i := 0; i < 70; i++ {
		u.FreshPort("grow")
	}
	s.PadToUniverse()
	h := ca.Hide(s, u.SetOf(b))
	if h.Trans[0][0].Sync.Has(b) {
		t.Error("hide failed after growth")
	}
}
