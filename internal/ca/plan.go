package ca

import (
	"fmt"
	"strings"
)

// This file implements compiled transition plans: the ahead-of-time
// counterpart of the Env interpreter in automaton.go. The interpreter
// resolves hidden-port data-flow chains lazily with per-fire maps; a Plan
// resolves them once, at expansion time, into a flat program of slot
// assignments over a preallocated scratch array, so that the engine's
// steady-state firing path performs no allocation and no graph walking.
//
// A Plan is compiled per joint transition of one expanded composite state
// and cached with it. CheckGuards and Execute on the same Plan must not be
// interleaved with other uses of that Plan: the engine serializes firing
// under its lock, which is exactly the required discipline.

// PlanHost supplies the runtime context a Plan needs while firing: pending
// send values for boundary source ports, and a destination for values the
// transition delivers to boundary sink ports. The engine implements it;
// using an interface (rather than func values) keeps the hot path free of
// closure allocations.
type PlanHost interface {
	// PlanPortVal returns the pending send value on a boundary source port.
	PlanPortVal(PortID) any
	// PlanDeliver hands a value to the pending receive on a sink port.
	PlanDeliver(PortID, any)
}

// refKind discriminates where a compiled value reference reads from.
type refKind uint8

const (
	refConst refKind = iota // immediate value
	refCell                 // instance memory cell
	refPort                 // boundary source port (pending send value)
	refSlot                 // scratch slot computed by an earlier slotOp
	refErr                  // resolution failed at compile time; surfaces lazily
)

// valRef is a compiled data location: the resolved form of a Loc.
type valRef struct {
	kind refKind
	cell CellID
	port PortID
	slot int32
	c    any
	err  error
}

// slotOp computes one scratch slot: scratch[dst] = xform(read(src)).
// Slot ops replace the interpreter's lazy hidden-port chain resolution;
// they are emitted in dependency order, so reading src is always valid.
type slotOp struct {
	src   valRef
	xform func(any) any
	dst   int32
}

// planGuard is one compiled data constraint. opsEnd is the prefix of the
// guard op list that must have run before this guard reads its input,
// preserving the interpreter's evaluation (and error) order.
type planGuard struct {
	src    valRef
	pred   func(any) bool
	name   string
	opsEnd int32
}

// outOp is one external effect of firing: a delivery to a boundary sink
// port or a deferred cell write, in the original action order. opsEnd is
// the prefix of the exec op list needed before reading src.
type outOp struct {
	src     valRef
	xform   func(any) any
	port    PortID
	cell    CellID
	deliver bool
	opsEnd  int32
	err     error // non-nil for actions the interpreter rejects at fire time
}

// Plan is a compiled transition: pre-resolved guard and action steps with
// preallocated scratch, firing with zero steady-state allocations.
// A Plan is not safe for concurrent use; Execute must only follow a
// successful CheckGuards on the same pending-operation snapshot.
type Plan struct {
	// Sync is the synchronization set of the compiled transition.
	Sync BitSet
	// T is the source transition (diagnostics only).
	T *Transition

	guardOps []slotOp
	guards   []planGuard
	execOps  []slotOp
	outs     []outOp
	scratch  []any
	outVals  []any
}

// planCompiler carries the state of one plan compilation.
type planCompiler struct {
	t         *Transition
	dirOf     func(PortID) Dir
	slots     map[PortID]int32
	resolving map[PortID]bool
	ops       *[]slotOp
	numSlots  int32
}

// CompilePlan compiles t into a Plan. dirOf classifies ports: source ports
// read pending send values, sink ports receive deliveries, and all other
// ports are internal vertices resolved through the transition's own action
// chain — exactly the interpreter's rules, but decided once here instead of
// per fire. Resolution failures (causal cycles, undefined ports) are
// recorded and surface with the interpreter's error messages only if the
// failing value is actually read, matching lazy behavior.
func CompilePlan(t *Transition, dirOf func(PortID) Dir) *Plan {
	p := &Plan{Sync: t.Sync, T: t}
	c := &planCompiler{
		t:         t,
		dirOf:     dirOf,
		slots:     make(map[PortID]int32),
		resolving: make(map[PortID]bool),
	}

	// Guard phase: resolve each guard input in order.
	c.ops = &p.guardOps
	for i := range t.Guards {
		g := &t.Guards[i]
		src := c.resolve(g.In)
		p.guards = append(p.guards, planGuard{
			src:    src,
			pred:   g.Pred,
			name:   g.Name,
			opsEnd: int32(len(p.guardOps)),
		})
	}

	// Output phase: external effects in original action order. Slots
	// computed during the guard phase are reused; new chains needed only
	// by outputs land in execOps.
	c.ops = &p.execOps
	for i := range t.Acts {
		act := &t.Acts[i]
		switch act.Dst.Kind {
		case LocPort:
			if c.dirOf(act.Dst.Port) != DirSink {
				continue // hidden destination: feeds chains only
			}
			src := c.resolve(act.Src)
			p.outs = append(p.outs, outOp{
				src:     src,
				xform:   act.Xform,
				port:    act.Dst.Port,
				deliver: true,
				opsEnd:  int32(len(p.execOps)),
			})
		case LocCell:
			src := c.resolve(act.Src)
			p.outs = append(p.outs, outOp{
				src:    src,
				xform:  act.Xform,
				cell:   act.Dst.Cell,
				opsEnd: int32(len(p.execOps)),
			})
		case LocConst:
			p.outs = append(p.outs, outOp{
				opsEnd: int32(len(p.execOps)),
				err:    fmt.Errorf("ca: constant as action destination"),
			})
		}
	}

	p.scratch = make([]any, c.numSlots)
	p.outVals = make([]any, len(p.outs))
	return p
}

// resolve compiles a Loc into a valRef, emitting slot ops for hidden-port
// chains. Mirrors Env.Value/Env.portValue: source ports read pending
// values; other ports are defined by the first action targeting them.
func (c *planCompiler) resolve(l Loc) valRef {
	switch l.Kind {
	case LocConst:
		return valRef{kind: refConst, c: l.Const}
	case LocCell:
		return valRef{kind: refCell, cell: l.Cell}
	case LocPort:
		return c.resolvePort(l.Port)
	}
	return valRef{kind: refErr, err: fmt.Errorf("ca: invalid location kind %d", l.Kind)}
}

func (c *planCompiler) resolvePort(p PortID) valRef {
	if c.dirOf(p) == DirSource {
		return valRef{kind: refPort, port: p}
	}
	if s, ok := c.slots[p]; ok {
		return valRef{kind: refSlot, slot: s}
	}
	if c.resolving[p] {
		return valRef{kind: refErr, err: fmt.Errorf("ca: causal cycle through port %d in transition data flow", p)}
	}
	for i := range c.t.Acts {
		act := &c.t.Acts[i]
		if act.Dst.Kind != LocPort || act.Dst.Port != p {
			continue
		}
		c.resolving[p] = true
		src := c.resolve(act.Src)
		delete(c.resolving, p)
		if src.kind == refErr {
			return src
		}
		slot := c.numSlots
		c.numSlots++
		*c.ops = append(*c.ops, slotOp{src: src, xform: act.Xform, dst: slot})
		c.slots[p] = slot
		return valRef{kind: refSlot, slot: slot}
	}
	return valRef{kind: refErr, err: fmt.Errorf("ca: no value defined for port %d in transition", p)}
}

// read resolves a compiled reference at fire time.
func (p *Plan) read(r *valRef, cells []any, host PlanHost) (any, error) {
	switch r.kind {
	case refConst:
		return r.c, nil
	case refCell:
		return cells[r.cell], nil
	case refPort:
		return host.PlanPortVal(r.port), nil
	case refSlot:
		return p.scratch[r.slot], nil
	}
	return nil, r.err
}

// runOps executes ops[from:to] into the scratch array.
func (p *Plan) runOps(ops []slotOp, from, to int32, cells []any, host PlanHost) (int32, error) {
	for ; from < to; from++ {
		op := &ops[from]
		v, err := p.read(&op.src, cells, host)
		if err != nil {
			return from, err
		}
		if op.xform != nil {
			v = op.xform(v)
		}
		p.scratch[op.dst] = v
	}
	return from, nil
}

// CheckGuards evaluates the compiled guards. Chain steps run interleaved
// with guard reads in the interpreter's order, so which guard fails — or
// which resolution error surfaces first — is unchanged.
func (p *Plan) CheckGuards(cells []any, host PlanHost) (bool, error) {
	var done int32
	for i := range p.guards {
		g := &p.guards[i]
		var err error
		done, err = p.runOps(p.guardOps, done, g.opsEnd, cells, host)
		if err != nil {
			p.Reset()
			return false, err
		}
		v, err := p.read(&g.src, cells, host)
		if err != nil {
			p.Reset()
			return false, err
		}
		if !g.pred(v) {
			p.Reset()
			return false, nil
		}
	}
	return true, nil
}

// Reset drops references to the last fire's data values, so plans cached
// with their expanded state do not pin user payloads between fires.
// CheckGuards resets on a false/error outcome itself; after a true
// outcome the guard-phase slots must survive until Execute, so the
// caller resets once the firing attempt is over.
func (p *Plan) Reset() {
	for i := range p.scratch {
		p.scratch[i] = nil
	}
	for i := range p.outVals {
		p.outVals[i] = nil
	}
}

// Execute fires the compiled actions: it computes every output value (all
// cell reads see pre-step cell contents), then performs deliveries through
// the host and finally the deferred cell writes — the same simultaneity
// semantics as the interpreter's FireResult, without building maps.
//
// Execute must follow a successful CheckGuards on the same
// pending-operation snapshot: guard-phase scratch slots are reused, not
// recomputed, so each data function runs exactly once per fire — the
// interpreter's memoization semantics, which matters for stateful or
// expensive transformations.
func (p *Plan) Execute(cells []any, host PlanHost) error {
	var done int32
	for i := range p.outs {
		o := &p.outs[i]
		var err error
		done, err = p.runOps(p.execOps, done, o.opsEnd, cells, host)
		if err != nil {
			return err
		}
		if o.err != nil {
			return o.err
		}
		v, err := p.read(&o.src, cells, host)
		if err != nil {
			return err
		}
		if o.xform != nil {
			v = o.xform(v)
		}
		p.outVals[i] = v
	}
	for i := range p.outs {
		if p.outs[i].deliver {
			host.PlanDeliver(p.outs[i].port, p.outVals[i])
		}
	}
	for i := range p.outs {
		if !p.outs[i].deliver {
			cells[p.outs[i].cell] = p.outVals[i]
		}
	}
	return nil
}

// Slots returns the number of scratch slots the plan allocates — the
// compiled size of the transition's hidden data-flow chains.
func (p *Plan) Slots() int { return len(p.scratch) }

// Guards returns the number of compiled guards.
func (p *Plan) Guards() int { return len(p.guards) }

// Deliveries returns how many sink-port deliveries the plan performs.
func (p *Plan) Deliveries() int {
	n := 0
	for i := range p.outs {
		if p.outs[i].deliver {
			n++
		}
	}
	return n
}

// CellWrites returns how many deferred cell writes the plan performs.
func (p *Plan) CellWrites() int { return len(p.outs) - p.Deliveries() }

// Dump renders the compiled plan for diagnostics (cmd/reoc plan).
func (p *Plan) Dump(u *Universe) string {
	var sb strings.Builder
	sb.WriteString("{" + strings.Join(u.PortSetNames(p.Sync), ",") + "}")
	fmt.Fprintf(&sb, " slots=%d", p.Slots())
	for i := range p.guards {
		g := &p.guards[i]
		fmt.Fprintf(&sb, " [%s(%s)]", g.name, p.refStr(u, &g.src))
	}
	for i := range p.outs {
		o := &p.outs[i]
		switch {
		case o.err != nil:
			fmt.Fprintf(&sb, " <error: %v>", o.err)
		case o.deliver:
			fmt.Fprintf(&sb, " %s!=%s", u.Name(o.port), p.refStr(u, &o.src))
		default:
			fmt.Fprintf(&sb, " cell%d:=%s", o.cell, p.refStr(u, &o.src))
		}
	}
	return sb.String()
}

func (p *Plan) refStr(u *Universe, r *valRef) string {
	switch r.kind {
	case refConst:
		return fmt.Sprintf("%v", r.c)
	case refCell:
		return fmt.Sprintf("cell%d", r.cell)
	case refPort:
		return u.Name(r.port)
	case refSlot:
		return fmt.Sprintf("s%d", r.slot)
	}
	return fmt.Sprintf("<error: %v>", r.err)
}
