// Package ca implements constraint automata with data — the formal
// semantics of Reo connectors (Baier, Sirjani, Arbab, Rutten 2006) — along
// with the synchronous product, hiding, reachability restriction, and the
// transition-label simplification used by the paper's "existing" compiler.
//
// An Automaton is a finite control structure whose transitions are labeled
// with a synchronization set (the ports through which data flows in that
// step, as a BitSet), a list of data guards, and a list of data actions
// (assignments moving message values between ports and memory cells).
package ca
