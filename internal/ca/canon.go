package ca

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalRegion renders a region automaton's structure as a canonical
// key that is invariant under port/cell renaming: every referenced port
// is replaced by its slot index (the position in the returned ascending
// port list) and every referenced cell by its index in the returned
// ascending cell list. Two solid regions with the same key differ only
// in which concrete ports and cells they are wired to — precisely the
// property the parametric code generator needs to emit one static
// template per region *shape* and bind it to every instance of that
// shape at runtime, whatever the array length.
//
// The key covers control structure (state count, initial state,
// per-state transition order, targets), synchronization sets,
// guards (registered name including any "!" negation prefix, folded
// transformer names, observed location, an anonymous-predicate marker),
// and actions (destination/source locations, transformer names, an
// anonymous-transformation marker), plus the initial values of the
// referenced cells. The automaton's Name is deliberately excluded:
// instances of one template differ only by their instantiation prefix.
func CanonicalRegion(a *Automaton) (key string, ports []PortID, cells []CellID) {
	portSet := map[PortID]bool{}
	cellSet := map[CellID]bool{}
	a.Ports.ForEach(func(p PortID) { portSet[p] = true })
	noteLoc := func(l Loc) {
		switch l.Kind {
		case LocPort:
			portSet[l.Port] = true
		case LocCell:
			cellSet[l.Cell] = true
		}
	}
	for _, ts := range a.Trans {
		for i := range ts {
			t := &ts[i]
			t.Sync.ForEach(func(p PortID) { portSet[p] = true })
			for j := range t.Guards {
				noteLoc(t.Guards[j].In)
			}
			for j := range t.Acts {
				noteLoc(t.Acts[j].Dst)
				noteLoc(t.Acts[j].Src)
			}
		}
	}
	for p := range portSet {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	for c := range cellSet {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })

	slot := make(map[PortID]int, len(ports))
	for i, p := range ports {
		slot[p] = i
	}
	cellIdx := make(map[CellID]int, len(cells))
	for i, c := range cells {
		cellIdx[c] = i
	}
	locStr := func(l Loc) string {
		switch l.Kind {
		case LocPort:
			return fmt.Sprintf("p%d", slot[l.Port])
		case LocCell:
			return fmt.Sprintf("c%d", cellIdx[l.Cell])
		default:
			return fmt.Sprintf("k%#v", l.Const)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "s%d;i%d", a.NumStates(), a.Initial)
	for s, ts := range a.Trans {
		fmt.Fprintf(&sb, ";st%d{", s)
		for i := range ts {
			t := &ts[i]
			sb.WriteString("t[")
			t.Sync.ForEach(func(p PortID) { fmt.Fprintf(&sb, "p%d,", slot[p]) })
			fmt.Fprintf(&sb, "]->%d", t.Target)
			for j := range t.Guards {
				g := &t.Guards[j]
				fmt.Fprintf(&sb, "[g:%s;xf:%s;in:%s", g.Name, strings.Join(g.XformNames, ","), locStr(g.In))
				if g.Pred != nil && g.Name == "" {
					sb.WriteString(";anon")
				}
				sb.WriteString("]")
			}
			for j := range t.Acts {
				act := &t.Acts[j]
				fmt.Fprintf(&sb, "[a:%s<-%s;xf:%s", locStr(act.Dst), locStr(act.Src), strings.Join(act.XformNames, ","))
				if act.Xform != nil && len(act.XformNames) == 0 {
					sb.WriteString(";anon")
				}
				sb.WriteString("]")
			}
			sb.WriteString(";")
		}
		sb.WriteString("}")
	}
	sb.WriteString(";cells:")
	for _, c := range cells {
		fmt.Fprintf(&sb, "%#v,", a.U.CellInitial(c))
	}
	return sb.String(), ports, cells
}
