package ca

import "fmt"

// Simplify applies the transition-label simplification of the paper's
// §V-B point (1) (after Jongmans & Arbab, "Take Command of Your
// Constraints!"): within each transition, data-flow chains through hidden
// vertices are contracted so that every remaining action reads directly
// from a boundary source port, a memory cell, or a constant, and writes
// directly to a boundary sink port or a memory cell. Actions that only
// feed hidden intermediaries are dropped.
//
// Firing a simplified transition needs no lazy chain resolution, which is
// what makes single-transition firing "(much) faster" in the existing
// compiler. The engine applies this per medium automaton or per composed
// automaton depending on options, enabling the E7 ablation.
//
// visible reports whether a port is a boundary port (source or sink);
// everything else is treated as an internal binding to contract.
func Simplify(a *Automaton, visible func(PortID) bool) (*Automaton, error) {
	out := &Automaton{
		Name:    a.Name,
		U:       a.U,
		Ports:   a.Ports.Clone(),
		Initial: a.Initial,
		Trans:   make([][]Transition, len(a.Trans)),
	}
	for s, ts := range a.Trans {
		res := make([]Transition, 0, len(ts))
		for i := range ts {
			nt, err := simplifyTransition(&ts[i], visible)
			if err != nil {
				return nil, fmt.Errorf("ca: simplify %q state %d: %w", a.Name, s, err)
			}
			res = append(res, nt)
		}
		out.Trans[s] = res
	}
	return out, nil
}

// chain is a resolved data source: a root location plus the composition of
// the transforms encountered along the contracted path. names mirrors
// xform for the static code generator: the registry names composed into
// xform, outermost first, or nil when xform (if any) involves an
// anonymous transformation.
type chain struct {
	root  Loc
	xform func(any) any
	names []string
}

func composeXform(outer, inner func(any) any) func(any) any {
	if outer == nil {
		return inner
	}
	if inner == nil {
		return outer
	}
	return func(v any) any { return outer(inner(v)) }
}

// composeNames composes the registry-name mirrors of two transforms,
// outermost first. A non-nil func with no names is anonymous and
// poisons the composition (nil result despite a non-nil composed func),
// so the code generator can detect and reject it.
func composeNames(outer func(any) any, outerNames []string, inner func(any) any, innerNames []string) []string {
	if outer != nil && len(outerNames) == 0 {
		return nil
	}
	if inner != nil && len(innerNames) == 0 {
		return nil
	}
	if len(outerNames) == 0 {
		return innerNames
	}
	return append(append([]string(nil), outerNames...), innerNames...)
}

func simplifyTransition(t *Transition, visible func(PortID) bool) (Transition, error) {
	// Index: defining action per internal port.
	defs := make(map[PortID]*Action)
	for i := range t.Acts {
		act := &t.Acts[i]
		if act.Dst.Kind == LocPort && !visible(act.Dst.Port) {
			if _, dup := defs[act.Dst.Port]; dup {
				return Transition{}, fmt.Errorf("port %d written twice in one transition", act.Dst.Port)
			}
			defs[act.Dst.Port] = act
		}
	}

	memo := make(map[PortID]chain)
	var resolve func(l Loc, seen map[PortID]bool) (chain, error)
	resolve = func(l Loc, seen map[PortID]bool) (chain, error) {
		if l.Kind != LocPort || visible(l.Port) {
			return chain{root: l}, nil
		}
		if c, ok := memo[l.Port]; ok {
			return c, nil
		}
		if seen[l.Port] {
			return chain{}, fmt.Errorf("causal cycle through port %d", l.Port)
		}
		def, ok := defs[l.Port]
		if !ok {
			return chain{}, fmt.Errorf("no definition for internal port %d", l.Port)
		}
		seen[l.Port] = true
		c, err := resolve(def.Src, seen)
		delete(seen, l.Port)
		if err != nil {
			return chain{}, err
		}
		c = chain{
			root:  c.root,
			xform: composeXform(def.Xform, c.xform),
			names: composeNames(def.Xform, def.XformNames, c.xform, c.names),
		}
		memo[l.Port] = c
		return c, nil
	}

	nt := Transition{Target: t.Target, Sync: t.Sync}
	for i := range t.Guards {
		g := t.Guards[i]
		c, err := resolve(g.In, map[PortID]bool{})
		if err != nil {
			return Transition{}, err
		}
		if c.xform != nil {
			// Fold the chain's transform into the predicate, recording
			// the composed registry names (an anonymous fold is marked
			// with a single empty name so the code generator rejects it).
			pred, xf := g.Pred, c.xform
			g.Pred = func(v any) bool { return pred(xf(v)) }
			if len(c.names) > 0 {
				g.XformNames = c.names
			} else {
				g.XformNames = []string{""}
			}
		}
		g.In = c.root
		nt.Guards = append(nt.Guards, g)
	}
	for i := range t.Acts {
		act := t.Acts[i]
		if act.Dst.Kind == LocPort && !visible(act.Dst.Port) {
			continue // internal feed; contracted away
		}
		c, err := resolve(act.Src, map[PortID]bool{})
		if err != nil {
			return Transition{}, err
		}
		act.Src = c.root
		act.XformNames = composeNames(act.Xform, act.XformNames, c.xform, c.names)
		act.Xform = composeXform(act.Xform, c.xform)
		nt.Acts = append(nt.Acts, act)
	}
	return nt, nil
}
