package ca_test

import (
	"fmt"
	"testing"

	"repro/internal/ca"
)

// planHost is a test PlanHost over plain maps.
type planHost struct {
	vals      map[ca.PortID]any
	delivered map[ca.PortID]any
}

func newPlanHost() *planHost {
	return &planHost{vals: map[ca.PortID]any{}, delivered: map[ca.PortID]any{}}
}

func (h *planHost) PlanPortVal(p ca.PortID) any    { return h.vals[p] }
func (h *planHost) PlanDeliver(p ca.PortID, v any) { h.delivered[p] = v }

// fireBoth runs t through the Env interpreter and through a compiled Plan
// under identical inputs and checks that guard outcomes, deliveries, and
// cell effects agree. It returns the (shared) outcome.
func fireBoth(t *testing.T, tr *ca.Transition, dirs map[ca.PortID]ca.Dir, cells []any, pending map[ca.PortID]any) (bool, map[ca.PortID]any, []any) {
	t.Helper()
	dirOf := func(p ca.PortID) ca.Dir { return dirs[p] }
	isSource := func(p ca.PortID) bool { return dirs[p] == ca.DirSource }
	isSink := func(p ca.PortID) bool { return dirs[p] == ca.DirSink }
	portVal := func(p ca.PortID) any { return pending[p] }

	// Interpreter.
	envCells := append([]any(nil), cells...)
	env := ca.NewEnv(tr, envCells, isSource, portVal)
	envOK, envGuardErr := env.CheckGuards()
	var envRes ca.FireResult
	var envExecErr error
	if envOK {
		envRes, envExecErr = env.Execute(isSink)
		if envExecErr == nil {
			for c, v := range envRes.CellWrites {
				envCells[c] = v
			}
		}
	}

	// Compiled plan.
	planCells := append([]any(nil), cells...)
	host := newPlanHost()
	host.vals = pending
	pl := ca.CompilePlan(tr, dirOf)
	planOK, planGuardErr := pl.CheckGuards(planCells, host)
	var planExecErr error
	if planOK {
		planExecErr = pl.Execute(planCells, host)
	}

	if envOK != planOK {
		t.Fatalf("guard outcome: env=%v plan=%v", envOK, planOK)
	}
	if fmt.Sprint(envGuardErr) != fmt.Sprint(planGuardErr) {
		t.Fatalf("guard error: env=%v plan=%v", envGuardErr, planGuardErr)
	}
	if fmt.Sprint(envExecErr) != fmt.Sprint(planExecErr) {
		t.Fatalf("exec error: env=%v plan=%v", envExecErr, planExecErr)
	}
	if !envOK || envExecErr != nil {
		return false, nil, nil
	}
	if len(envRes.Delivered) != len(host.delivered) {
		t.Fatalf("deliveries: env=%v plan=%v", envRes.Delivered, host.delivered)
	}
	for p, v := range envRes.Delivered {
		if host.delivered[p] != v {
			t.Fatalf("delivery on port %d: env=%v plan=%v", p, v, host.delivered[p])
		}
	}
	for i := range envCells {
		if envCells[i] != planCells[i] {
			t.Fatalf("cell %d: env=%v plan=%v", i, envCells[i], planCells[i])
		}
	}
	return true, host.delivered, planCells
}

// TestPlanChainParity: a data-flow chain through hidden ports with
// transformations, a guard on the chain, a sink delivery, a cell write,
// and a cell read that must see the pre-step cell value.
func TestPlanChainParity(t *testing.T) {
	u := ca.NewUniverse()
	a, h1, h2, b, c := u.Port("a"), u.Port("h1"), u.Port("h2"), u.Port("b"), u.Port("c")
	cell := u.NewCell()
	dirs := map[ca.PortID]ca.Dir{a: ca.DirSource, b: ca.DirSink, c: ca.DirSink}

	inc := func(v any) any { return v.(int) + 1 }
	dbl := func(v any) any { return v.(int) * 2 }
	tr := &ca.Transition{
		Sync: u.SetOf(a, b, c),
		Guards: []ca.Guard{
			{In: ca.PortLoc(h2), Pred: func(v any) bool { return v.(int) > 0 }, Name: "pos"},
		},
		Acts: []ca.Action{
			{Dst: ca.PortLoc(h1), Src: ca.PortLoc(a), Xform: inc},
			{Dst: ca.PortLoc(h2), Src: ca.PortLoc(h1), Xform: dbl},
			{Dst: ca.PortLoc(b), Src: ca.PortLoc(h2)},
			{Dst: ca.CellLoc(cell), Src: ca.PortLoc(h2)},
			{Dst: ca.PortLoc(c), Src: ca.CellLoc(cell)},
		},
	}
	cells := []any{100}
	ok, delivered, outCells := fireBoth(t, tr, dirs, cells, map[ca.PortID]any{a: 5})
	if !ok {
		t.Fatal("transition did not fire")
	}
	// a=5 → h1=6 → h2=12; b gets 12; the cell becomes 12; c reads the
	// pre-step cell content 100 (simultaneous read+write semantics).
	if delivered[b] != 12 {
		t.Errorf("b = %v, want 12", delivered[b])
	}
	if delivered[c] != 100 {
		t.Errorf("c = %v, want 100 (pre-step cell value)", delivered[c])
	}
	if outCells[cell] != 12 {
		t.Errorf("cell = %v, want 12", outCells[cell])
	}
}

// TestPlanGuardFalseParity: a failing guard disables the transition in
// both implementations without error.
func TestPlanGuardFalseParity(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	dirs := map[ca.PortID]ca.Dir{a: ca.DirSource, b: ca.DirSink}
	tr := &ca.Transition{
		Sync: u.SetOf(a, b),
		Guards: []ca.Guard{
			{In: ca.PortLoc(a), Pred: func(v any) bool { return v.(int)%2 == 0 }, Name: "even"},
		},
		Acts: []ca.Action{{Dst: ca.PortLoc(b), Src: ca.PortLoc(a)}},
	}
	ok, _, _ := fireBoth(t, tr, dirs, nil, map[ca.PortID]any{a: 3})
	if ok {
		t.Fatal("odd value passed an even guard")
	}
}

// TestPlanCycleErrorParity: a causal cycle in the action chain surfaces
// the interpreter's error, from the same port, in both implementations.
func TestPlanCycleErrorParity(t *testing.T) {
	u := ca.NewUniverse()
	h1, h2, b := u.Port("h1"), u.Port("h2"), u.Port("b")
	dirs := map[ca.PortID]ca.Dir{b: ca.DirSink}
	tr := &ca.Transition{
		Sync: u.SetOf(b),
		Guards: []ca.Guard{
			{In: ca.PortLoc(h1), Pred: func(any) bool { return true }, Name: "true"},
		},
		Acts: []ca.Action{
			{Dst: ca.PortLoc(h1), Src: ca.PortLoc(h2)},
			{Dst: ca.PortLoc(h2), Src: ca.PortLoc(h1)},
		},
	}
	fireBoth(t, tr, dirs, nil, nil) // fails if error strings diverge
}

// TestPlanUndefinedPortParity: reading a port no action defines errors
// identically in both implementations.
func TestPlanUndefinedPortParity(t *testing.T) {
	u := ca.NewUniverse()
	x, b := u.Port("x"), u.Port("b")
	dirs := map[ca.PortID]ca.Dir{b: ca.DirSink}
	tr := &ca.Transition{
		Sync: u.SetOf(b),
		Acts: []ca.Action{{Dst: ca.PortLoc(b), Src: ca.PortLoc(x)}},
	}
	fireBoth(t, tr, dirs, nil, nil)
}

// TestPlanConstDestParity: a constant as action destination is rejected at
// fire time with the interpreter's error.
func TestPlanConstDestParity(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	dirs := map[ca.PortID]ca.Dir{a: ca.DirSource, b: ca.DirSink}
	tr := &ca.Transition{
		Sync: u.SetOf(a, b),
		Acts: []ca.Action{
			{Dst: ca.PortLoc(b), Src: ca.PortLoc(a)},
			{Dst: ca.ConstLoc(1), Src: ca.PortLoc(a)},
		},
	}
	fireBoth(t, tr, dirs, nil, map[ca.PortID]any{a: 1})
}

// TestPlanUnusedCycleIgnored: a cyclic chain nothing reads must not
// produce errors — lazily, it is never resolved.
func TestPlanUnusedCycleIgnored(t *testing.T) {
	u := ca.NewUniverse()
	a, h1, h2, b := u.Port("a"), u.Port("h1"), u.Port("h2"), u.Port("b")
	dirs := map[ca.PortID]ca.Dir{a: ca.DirSource, b: ca.DirSink}
	tr := &ca.Transition{
		Sync: u.SetOf(a, b),
		Acts: []ca.Action{
			{Dst: ca.PortLoc(h1), Src: ca.PortLoc(h2)},
			{Dst: ca.PortLoc(h2), Src: ca.PortLoc(h1)},
			{Dst: ca.PortLoc(b), Src: ca.PortLoc(a)},
		},
	}
	ok, delivered, _ := fireBoth(t, tr, dirs, nil, map[ca.PortID]any{a: 9})
	if !ok || delivered[b] != 9 {
		t.Fatalf("fired=%v delivered=%v, want b=9", ok, delivered)
	}
}

// TestPlanScratchReuse: repeated firing of the same compiled plan with
// different pending values must not leak state between fires.
func TestPlanScratchReuse(t *testing.T) {
	u := ca.NewUniverse()
	a, h, b := u.Port("a"), u.Port("h"), u.Port("b")
	dirs := map[ca.PortID]ca.Dir{a: ca.DirSource, b: ca.DirSink}
	dirOf := func(p ca.PortID) ca.Dir { return dirs[p] }
	tr := &ca.Transition{
		Sync: u.SetOf(a, b),
		Guards: []ca.Guard{
			{In: ca.PortLoc(h), Pred: func(v any) bool { return v.(int) < 100 }, Name: "small"},
		},
		Acts: []ca.Action{
			{Dst: ca.PortLoc(h), Src: ca.PortLoc(a), Xform: func(v any) any { return v.(int) * 10 }},
			{Dst: ca.PortLoc(b), Src: ca.PortLoc(h)},
		},
	}
	pl := ca.CompilePlan(tr, dirOf)
	host := newPlanHost()
	for i := 1; i <= 5; i++ {
		host.vals[a] = i
		ok, err := pl.CheckGuards(nil, host)
		if err != nil || !ok {
			t.Fatalf("round %d: guards = %v, %v", i, ok, err)
		}
		if err := pl.Execute(nil, host); err != nil {
			t.Fatalf("round %d: execute: %v", i, err)
		}
		if host.delivered[b] != i*10 {
			t.Fatalf("round %d: b = %v, want %d", i, host.delivered[b], i*10)
		}
	}
	// A too-large value must now fail the guard on the same plan.
	host.vals[a] = 50
	if ok, _ := pl.CheckGuards(nil, host); ok {
		t.Fatal("guard passed for 500")
	}
}

// TestPlanXformRunsOncePerFire: a chain transformation feeding both a
// guard and a delivery must run exactly once per fire — the
// interpreter's memoization semantics (guard-phase slots are reused by
// Execute, not recomputed).
func TestPlanXformRunsOncePerFire(t *testing.T) {
	u := ca.NewUniverse()
	a, h, b := u.Port("a"), u.Port("h"), u.Port("b")
	dirs := map[ca.PortID]ca.Dir{a: ca.DirSource, b: ca.DirSink}
	calls := 0
	tr := &ca.Transition{
		Sync: u.SetOf(a, b),
		Guards: []ca.Guard{
			{In: ca.PortLoc(h), Pred: func(any) bool { return true }, Name: "true"},
		},
		Acts: []ca.Action{
			{Dst: ca.PortLoc(h), Src: ca.PortLoc(a), Xform: func(v any) any { calls++; return v }},
			{Dst: ca.PortLoc(b), Src: ca.PortLoc(h)},
		},
	}
	pl := ca.CompilePlan(tr, func(p ca.PortID) ca.Dir { return dirs[p] })
	host := newPlanHost()
	host.vals[a] = 1
	for round := 1; round <= 3; round++ {
		ok, err := pl.CheckGuards(nil, host)
		if err != nil || !ok {
			t.Fatalf("round %d: guards = %v, %v", round, ok, err)
		}
		if err := pl.Execute(nil, host); err != nil {
			t.Fatalf("round %d: execute: %v", round, err)
		}
		pl.Reset()
		if calls != round {
			t.Fatalf("round %d: xform ran %d times, want %d (once per fire)", round, calls, round)
		}
	}
}

// TestPlanResetReleasesValues: Reset must drop data references so cached
// plans do not pin payloads between fires.
func TestPlanResetReleasesValues(t *testing.T) {
	u := ca.NewUniverse()
	a, h, b := u.Port("a"), u.Port("h"), u.Port("b")
	dirs := map[ca.PortID]ca.Dir{a: ca.DirSource, b: ca.DirSink}
	tr := &ca.Transition{
		Sync: u.SetOf(a, b),
		Guards: []ca.Guard{
			{In: ca.PortLoc(h), Pred: func(any) bool { return true }, Name: "true"},
		},
		Acts: []ca.Action{
			{Dst: ca.PortLoc(h), Src: ca.PortLoc(a)},
			{Dst: ca.PortLoc(b), Src: ca.PortLoc(h)},
		},
	}
	pl := ca.CompilePlan(tr, func(p ca.PortID) ca.Dir { return dirs[p] })
	host := newPlanHost()
	host.vals[a] = "payload"
	if ok, err := pl.CheckGuards(nil, host); err != nil || !ok {
		t.Fatalf("guards = %v, %v", ok, err)
	}
	if err := pl.Execute(nil, host); err != nil {
		t.Fatal(err)
	}
	if pl.Slots() != 1 {
		t.Fatalf("slots = %d, want 1", pl.Slots())
	}
	pl.Reset()
	// After Reset, a fresh fire must recompute from the new pending value
	// rather than reuse stale scratch.
	host.vals[a] = "fresh"
	if ok, err := pl.CheckGuards(nil, host); err != nil || !ok {
		t.Fatalf("guards = %v, %v", ok, err)
	}
	if err := pl.Execute(nil, host); err != nil {
		t.Fatal(err)
	}
	if host.delivered[b] != "fresh" {
		t.Fatalf("b = %v, want fresh", host.delivered[b])
	}
}

// TestStatePackerPacksAndFallsBack covers both key regimes.
func TestStatePackerPacksAndFallsBack(t *testing.T) {
	mk := func(n, states int) []*ca.Automaton {
		u := ca.NewUniverse()
		auts := make([]*ca.Automaton, n)
		for i := range auts {
			a := &ca.Automaton{Name: fmt.Sprintf("a%d", i), U: u, Ports: u.NewSet(), Trans: make([][]ca.Transition, states)}
			auts[i] = a
		}
		return auts
	}
	// Small: packable, distinct tuples get distinct keys.
	auts := mk(8, 5)
	p := ca.NewStatePacker(auts)
	seen := map[ca.StateKey][]int32{}
	state := make([]int32, 8)
	var walk func(i int)
	var dup bool
	walk = func(i int) {
		if dup {
			return
		}
		if i == 8 {
			k := p.Key(state)
			if prev, ok := seen[k]; ok {
				t.Errorf("collision: %v and %v", prev, state)
				dup = true
				return
			}
			seen[k] = append([]int32(nil), state...)
			return
		}
		for s := int32(0); s < 5; s++ {
			state[i] = s
			walk(i + 1)
		}
	}
	walk(0)

	// Huge: 80 constituents with 1<<20 states each cannot pack into 256
	// bits; the interning fallback must still produce distinct keys.
	big := mk(80, 1<<20)
	bp := ca.NewStatePacker(big)
	bigState := make([]int32, 80)
	k1 := bp.Key(bigState)
	bigState[79] = 913
	k2 := bp.Key(bigState)
	if k1 == k2 {
		t.Error("fallback keys collide for distinct tuples")
	}
	bigState[79] = 0
	if k3 := bp.Key(bigState); k3 != k1 {
		t.Error("fallback keys differ for identical tuples")
	}
}
