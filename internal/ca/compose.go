package ca

import (
	"errors"
	"fmt"
)

// ExpandMode selects how joint global steps are enumerated from the local
// steps of a set of constituent automata.
type ExpandMode uint8

const (
	// ExpandConnected enumerates only "connected" global steps: sets of
	// local transitions linked through shared fired ports. Global steps
	// consisting of several mutually independent local transitions are
	// not combined — they occur as consecutive steps instead, which is
	// observationally equivalent and avoids an exponential number of
	// transitions per composite state.
	ExpandConnected ExpandMode = iota
	// ExpandFull enumerates every consistent combination, including
	// combinations of mutually independent local transitions. This is
	// the textbook product; per-state transition counts can grow
	// exponentially in the number of independent constituents — the
	// blow-up §V-C(3) of the paper observes for NPB with N ≥ 16.
	ExpandFull
)

// Joint is one global execution step of a set of constituent automata:
// a consistent combination of local transitions (at most one per
// constituent; -1 means the constituent idles).
type Joint struct {
	// Local[i] is the index into auts[i].Trans[states[i]] of the chosen
	// transition, or -1 if constituent i idles.
	Local []int32
	// Sync is the union of the chosen transitions' synchronization sets.
	Sync BitSet
	// Guards and Acts are the concatenations over chosen transitions.
	Guards []Guard
	Acts   []Action
	// Targets[i] is the successor local state of constituent i.
	Targets []int32
}

// ExpandJoint computes the global steps available to the constituents
// `auts` in local states `states`. All automata must share one Universe.
//
// A combination {t_i} is consistent iff for the union S of all chosen
// sync sets, every constituent j satisfies S ∩ Ports(j) == Sync(t_j)
// (with Sync(idle) = ∅): a port shared by several constituents flows in
// all of them or in none.
func ExpandJoint(auts []*Automaton, states []int32, mode ExpandMode) []Joint {
	if len(auts) == 0 {
		return nil
	}
	u := auts[0].U
	for _, a := range auts {
		a.PadToUniverse()
	}
	switch mode {
	case ExpandFull:
		return expandFull(u, auts, states)
	default:
		return expandConnected(u, auts, states)
	}
}

// expandFull is a complete backtracking enumeration with forward pruning.
func expandFull(u *Universe, auts []*Automaton, states []int32) []Joint {
	k := len(auts)
	var out []Joint
	chosen := make([]int32, k)
	targets := make([]int32, k)
	sync := u.NewSet()
	forb := u.NewSet() // ports owned by an already-decided automaton but not fired by it

	var rec func(i int, any bool)
	rec = func(i int, nonIdle bool) {
		if i == k {
			if nonIdle {
				out = append(out, buildJoint(u, auts, states, chosen, targets, sync))
			}
			return
		}
		a := auts[i]
		// Option: idle. Valid iff no already-fired port belongs to a.
		if !sync.Intersects(a.Ports) {
			chosen[i] = -1
			targets[i] = states[i]
			forbAdd := a.Ports.And(inverse(forb))
			forb.OrInto(a.Ports)
			rec(i+1, nonIdle)
			forb.AndNotInto(forbAdd)
		}
		// Options: each local transition.
		for ti := range a.Trans[states[i]] {
			t := &a.Trans[states[i]][ti]
			// Ports fired by t must not be forbidden, and every
			// already-fired port owned by a must be fired by t.
			if t.Sync.Intersects(forb) {
				continue
			}
			if !projectionCovered(sync, a.Ports, t.Sync) {
				continue
			}
			chosen[i] = int32(ti)
			targets[i] = t.Target
			syncAdd := t.Sync.And(inverse(sync))
			sync.OrInto(t.Sync)
			forbAdd := a.Ports.And(inverse(forb))
			forbAdd.AndNotInto(t.Sync)
			// Careful: ports of a not fired by t become forbidden,
			// except those already forbidden.
			forb.OrInto(forbAdd)
			rec(i+1, true)
			forb.AndNotInto(forbAdd)
			sync.AndNotInto(syncAdd)
		}
	}
	rec(0, false)
	return out
}

// projectionCovered reports whether sync ∩ ports ⊆ chosen, i.e. every
// already-globally-fired port owned by this automaton is fired by the
// candidate transition.
func projectionCovered(sync, ports, chosen BitSet) bool {
	for i := range sync {
		if sync[i]&ports[i]&^chosen[i] != 0 {
			return false
		}
	}
	return true
}

func inverse(b BitSet) BitSet {
	c := make(BitSet, len(b))
	for i := range b {
		c[i] = ^b[i]
	}
	return c
}

// expandConnected enumerates connected global steps only: for each seed
// transition of the lowest-index participating constituent, grow the
// cluster by pulling in every constituent whose alphabet intersects the
// accumulated sync set, branching over its projection-compatible
// transitions.
func expandConnected(u *Universe, auts []*Automaton, states []int32) []Joint {
	k := len(auts)
	// ownersOf[p] would be ideal; with modest k a scan is fine and
	// avoids building an index per call (callers memoize results).
	var out []Joint
	chosen := make([]int32, k)
	targets := make([]int32, k)

	for seed := 0; seed < k; seed++ {
		a := auts[seed]
		for ti := range a.Trans[states[seed]] {
			t := &a.Trans[states[seed]][ti]
			for i := range chosen {
				chosen[i] = -1
				targets[i] = states[i]
			}
			chosen[seed] = int32(ti)
			targets[seed] = t.Target
			sync := t.Sync.Clone()
			grow(u, auts, states, seed, chosen, targets, sync, func() {
				out = append(out, buildJoint(u, auts, states, chosen, targets, sync))
			})
		}
	}
	return out
}

// grow recursively satisfies the constraint that every constituent whose
// alphabet intersects sync participates with a matching projection.
// Constituents with index < seed must not be pulled in (such clusters are
// emitted when they themselves are the seed), except that a constituent
// with a *smaller* index that is forced by the sync set means this cluster
// is a duplicate and is abandoned.
func grow(u *Universe, auts []*Automaton, states []int32, seed int, chosen, targets []int32, sync BitSet, emit func()) {
	// Find a constituent that is forced to participate but has not
	// chosen a transition yet.
	forced := -1
	for i, a := range auts {
		if chosen[i] >= 0 {
			continue
		}
		if a.Ports.Intersects(sync) {
			if i < seed {
				return // duplicate cluster; found from smaller seed
			}
			forced = i
			break
		}
	}
	if forced < 0 {
		// Verify projections of all participants (sync may have grown
		// after they were chosen).
		for i, a := range auts {
			if chosen[i] < 0 {
				continue
			}
			t := &a.Trans[states[i]][chosen[i]]
			if !t.Sync.IntersectionEqual(sync, a.Ports) {
				return
			}
		}
		emit()
		return
	}
	a := auts[forced]
	need := sync.And(a.Ports)
	for ti := range a.Trans[states[forced]] {
		t := &a.Trans[states[forced]][ti]
		if !need.SubsetOf(t.Sync) {
			continue
		}
		chosen[forced] = int32(ti)
		targets[forced] = t.Target
		added := t.Sync.And(inverse(sync))
		sync.OrInto(added)
		grow(u, auts, states, seed, chosen, targets, sync, emit)
		sync.AndNotInto(added)
		chosen[forced] = -1
		targets[forced] = states[forced]
	}
}

func buildJoint(u *Universe, auts []*Automaton, states []int32, chosen, targets []int32, sync BitSet) Joint {
	j := Joint{
		Local:   append([]int32(nil), chosen...),
		Targets: append([]int32(nil), targets...),
		Sync:    sync.Clone(),
	}
	for i, a := range auts {
		if chosen[i] < 0 {
			continue
		}
		t := &a.Trans[states[i]][chosen[i]]
		j.Guards = append(j.Guards, t.Guards...)
		j.Acts = append(j.Acts, t.Acts...)
	}
	return j
}

// StateKey is a packed composite-state identifier: a fixed-size,
// comparable key for maps over composite states, replacing per-lookup
// string conversion on hot paths.
type StateKey [4]uint64

// StatePacker packs composite state tuples into StateKeys. Each
// constituent gets a fixed bit field sized by its state count; fields
// never straddle word boundaries. When the total exceeds 256 bits (dozens
// of constituents with large local spaces), the packer falls back to
// interning tuples: lookups of already-seen tuples remain allocation-free
// (map[string] lookup with an in-place byte-slice conversion), and only
// the first visit of a state allocates. The intern table is append-only —
// IDs must stay stable for keys already handed out — so in the fallback
// regime memory grows with the distinct states visited even when the
// caller bounds its own cache; a deliberate tradeoff, far smaller per
// state than the expansions such a cache evicts.
type StatePacker struct {
	word  []int
	shift []uint
	// fallback interning (packable == false)
	packable bool
	intern   map[string]uint64
	buf      []byte
}

// NewStatePacker sizes a packer for the given constituents' state spaces.
func NewStatePacker(auts []*Automaton) *StatePacker {
	k := &StatePacker{
		word:     make([]int, len(auts)),
		shift:    make([]uint, len(auts)),
		packable: true,
	}
	word, used := 0, uint(0)
	for i, a := range auts {
		n := a.NumStates()
		width := uint(1)
		for 1<<width < n {
			width++
		}
		if used+width > 64 {
			word++
			used = 0
		}
		if word >= len(StateKey{}) {
			k.packable = false
			break
		}
		k.word[i] = word
		k.shift[i] = used
		used += width
	}
	if !k.packable {
		k.intern = make(map[string]uint64)
		k.buf = make([]byte, 4*len(auts))
	}
	return k
}

// Key packs a state tuple. For packable spaces this never allocates; the
// interning fallback allocates only on the first visit of a tuple.
func (k *StatePacker) Key(state []int32) StateKey {
	if k.packable {
		var sk StateKey
		for i, s := range state {
			sk[k.word[i]] |= uint64(uint32(s)) << k.shift[i]
		}
		return sk
	}
	b := k.buf
	for i, v := range state {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	id, ok := k.intern[string(b)]
	if !ok {
		id = uint64(len(k.intern))
		k.intern[string(b)] = id
	}
	return StateKey{id, ^uint64(0), ^uint64(0), ^uint64(0)}
}

// ErrTooLarge is returned when materializing a product exceeds limits —
// the analogue of the existing compiler failing to compile a connector
// whose large automaton is too big (paper §V-B).
var ErrTooLarge = errors.New("ca: product exceeds size limits")

// ProductLimits bounds eager product construction.
type ProductLimits struct {
	MaxStates      int // 0 = default
	MaxTransitions int // 0 = default
}

func (l ProductLimits) states() int {
	if l.MaxStates <= 0 {
		return 1 << 20
	}
	return l.MaxStates
}

func (l ProductLimits) transitions() int {
	if l.MaxTransitions <= 0 {
		return 4 << 20
	}
	return l.MaxTransitions
}

// ProductAll materializes the synchronous product of the constituents as a
// single automaton, restricted to the states reachable from the initial
// configuration (ahead-of-time composition, §IV-D). Mode selects the joint
// enumeration rule. Returns ErrTooLarge if limits are exceeded.
func ProductAll(auts []*Automaton, mode ExpandMode, lim ProductLimits) (*Automaton, error) {
	if len(auts) == 0 {
		return nil, errors.New("ca: empty product")
	}
	u := auts[0].U
	for _, a := range auts {
		if a.U != u {
			return nil, errors.New("ca: product constituents from different universes")
		}
		a.PadToUniverse()
	}
	k := len(auts)
	packer := NewStatePacker(auts)
	keyOf := packer.Key

	init := make([]int32, k)
	for i, a := range auts {
		init[i] = a.Initial
	}

	index := map[StateKey]int32{keyOf(init): 0}
	tuples := [][]int32{init}
	out := &Automaton{
		Name:    "product",
		U:       u,
		Ports:   u.NewSet(),
		Initial: 0,
	}
	for _, a := range auts {
		out.Ports.OrInto(a.Ports)
	}
	totalTrans := 0
	for qi := 0; qi < len(tuples); qi++ {
		joints := ExpandJoint(auts, tuples[qi], mode)
		ts := make([]Transition, 0, len(joints))
		for _, j := range joints {
			key := keyOf(j.Targets)
			tgt, ok := index[key]
			if !ok {
				tgt = int32(len(tuples))
				index[key] = tgt
				tuples = append(tuples, j.Targets)
				if len(tuples) > lim.states() {
					return nil, fmt.Errorf("%w: >%d states", ErrTooLarge, lim.states())
				}
			}
			ts = append(ts, Transition{Target: tgt, Sync: j.Sync, Guards: j.Guards, Acts: j.Acts})
		}
		totalTrans += len(ts)
		if totalTrans > lim.transitions() {
			return nil, fmt.Errorf("%w: >%d transitions", ErrTooLarge, lim.transitions())
		}
		out.Trans = append(out.Trans, ts)
	}
	return out, nil
}

// Product composes two automata with the textbook binary rule — used for
// compile-time composition of a definition's constituents section into a
// medium automaton (§IV-C). Equivalent to ProductAll with ExpandFull but
// kept binary for clarity and testability of algebraic laws.
func Product(a, b *Automaton, lim ProductLimits) (*Automaton, error) {
	return ProductAll([]*Automaton{a, b}, ExpandFull, lim)
}
