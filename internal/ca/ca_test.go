package ca_test

import (
	"testing"

	"repro/internal/ca"
	"repro/internal/prim"
)

func TestBitSetBasics(t *testing.T) {
	b := ca.NewBitSet(130)
	if !b.IsEmpty() {
		t.Fatal("new bitset not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("count = %d, want 3", b.Count())
	}
	for _, i := range []ca.PortID{0, 64, 129} {
		if !b.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Has(1) || b.Has(63) || b.Has(128) {
		t.Fatal("unexpected bit set")
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Fatal("clear failed")
	}
	c := b.Clone()
	if !c.Equal(b) {
		t.Fatal("clone not equal")
	}
	c.Set(5)
	if c.Equal(b) {
		t.Fatal("clone aliases original")
	}
}

func TestBitSetOps(t *testing.T) {
	u := ca.NewUniverse()
	var ids []ca.PortID
	for i := 0; i < 70; i++ {
		ids = append(ids, u.FreshPort("p"))
	}
	a := u.SetOf(ids[0], ids[1], ids[65])
	b := u.SetOf(ids[1], ids[65], ids[69])
	if got := a.And(b).Count(); got != 2 {
		t.Fatalf("and count = %d, want 2", got)
	}
	if got := a.Or(b).Count(); got != 4 {
		t.Fatalf("or count = %d, want 4", got)
	}
	if !a.Intersects(b) {
		t.Fatal("intersects false")
	}
	if a.SubsetOf(b) {
		t.Fatal("a ⊆ b should be false")
	}
	if !a.And(b).SubsetOf(a) {
		t.Fatal("a∩b ⊆ a should be true")
	}
	mask := u.SetOf(ids[1], ids[65])
	if !a.IntersectionEqual(b, mask) {
		t.Fatal("projections onto {1,65} should agree")
	}
	mask2 := u.SetOf(ids[0], ids[69])
	if a.IntersectionEqual(b, mask2) {
		t.Fatal("projections onto {0,69} should differ")
	}
}

func TestUniverseInterning(t *testing.T) {
	u := ca.NewUniverse()
	a := u.Port("a")
	a2 := u.Port("a")
	if a != a2 {
		t.Fatal("same name interned twice")
	}
	b := u.Port("b")
	if a == b {
		t.Fatal("distinct names collided")
	}
	if u.Name(a) != "a" || u.Name(b) != "b" {
		t.Fatal("name lookup broken")
	}
	f1 := u.FreshPort("x")
	f2 := u.FreshPort("x")
	if f1 == f2 {
		t.Fatal("fresh ports collided")
	}
	u.SetDir(a, ca.DirSource)
	if u.DirOf(a) != ca.DirSource || u.DirOf(b) != ca.DirNone {
		t.Fatal("dir bookkeeping broken")
	}
}

func TestUniverseCells(t *testing.T) {
	u := ca.NewUniverse()
	c1 := u.NewCell()
	c2 := u.NewCellInit("tok")
	cells := u.InitialCells()
	if cells[c1] != nil || cells[c2] != "tok" {
		t.Fatalf("initial cells = %v", cells)
	}
}

// syncTransfer fires the single transition of a Sync automaton by hand and
// checks data transfer through the Env machinery.
func TestSyncAutomatonFire(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	aut := prim.Sync(u, a, b)
	if aut.NumStates() != 1 || aut.NumTransitions() != 1 {
		t.Fatalf("sync shape: %d states %d trans", aut.NumStates(), aut.NumTransitions())
	}
	tr := &aut.Trans[0][0]
	env := ca.NewEnv(tr, u.InitialCells(), func(p ca.PortID) bool { return u.DirOf(p) == ca.DirSource },
		func(p ca.PortID) any { return 42 })
	res, err := env.Execute(func(p ca.PortID) bool { return u.DirOf(p) == ca.DirSink })
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[b] != 42 {
		t.Fatalf("delivered %v, want 42", res.Delivered[b])
	}
}

// TestProductSyncChain checks the key algebraic fact of §III-C: the
// pipeline composition of two sync channels behaves as one sync channel.
func TestProductSyncChain(t *testing.T) {
	u := ca.NewUniverse()
	a, m, b := u.Port("a"), u.Port("m"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	s1 := prim.Sync(u, a, m)
	s2 := prim.Sync(u, m, b)
	p, err := ca.Product(s1, s2, ca.ProductLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 1 {
		t.Fatalf("product states = %d, want 1", p.NumStates())
	}
	// The only transition must fire a, m, b together.
	if p.NumTransitions() != 1 {
		t.Fatalf("product transitions = %d, want 1: %s", p.NumTransitions(), p)
	}
	tr := p.Trans[0][0]
	want := u.SetOf(a, m, b)
	if !tr.Sync.Equal(want) {
		t.Fatalf("sync = %v, want %v", u.PortSetNames(tr.Sync), u.PortSetNames(want))
	}

	// Hide m, then fire: value must flow a -> b through the chain.
	h := ca.Hide(p, u.SetOf(m))
	tr2 := &h.Trans[0][0]
	if tr2.Sync.Has(m) {
		t.Fatal("hidden port still in sync set")
	}
	env := ca.NewEnv(tr2, nil, func(p ca.PortID) bool { return p == a },
		func(ca.PortID) any { return "msg" })
	res, err := env.Execute(func(p ca.PortID) bool { return p == b })
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[b] != "msg" {
		t.Fatalf("delivered %v through hidden chain, want msg", res.Delivered[b])
	}

	// Simplify must contract the chain: single action b := a.
	s, err := ca.Simplify(h, func(p ca.PortID) bool { return p == a || p == b })
	if err != nil {
		t.Fatal(err)
	}
	st := s.Trans[0][0]
	if len(st.Acts) != 1 {
		t.Fatalf("simplified acts = %d, want 1", len(st.Acts))
	}
	act := st.Acts[0]
	if act.Dst.Kind != ca.LocPort || act.Dst.Port != b || act.Src.Kind != ca.LocPort || act.Src.Port != a {
		t.Fatalf("simplified action = %+v, want b := a", act)
	}
}

func TestProductCommutative(t *testing.T) {
	u := ca.NewUniverse()
	a, m, b := u.Port("a"), u.Port("m"), u.Port("b")
	f1 := prim.Fifo1(u, a, m)
	f2 := prim.Fifo1(u, m, b)
	p12, err := ca.Product(f1, f2, ca.ProductLimits{})
	if err != nil {
		t.Fatal(err)
	}
	p21, err := ca.Product(f2, f1, ca.ProductLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if p12.NumStates() != p21.NumStates() || p12.NumTransitions() != p21.NumTransitions() {
		t.Fatalf("product not commutative up to size: %d/%d vs %d/%d",
			p12.NumStates(), p12.NumTransitions(), p21.NumStates(), p21.NumTransitions())
	}
}

// TestFifoChainProduct: two fifo1 in a row give a 2-capacity buffer with
// an internal τ move after hiding the middle vertex.
func TestFifoChainProduct(t *testing.T) {
	u := ca.NewUniverse()
	a, m, b := u.Port("a"), u.Port("m"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	p, err := ca.Product(prim.Fifo1(u, a, m), prim.Fifo1(u, m, b), ca.ProductLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", p.NumStates())
	}
	h := ca.Hide(p, u.SetOf(m))
	// From (full, empty) there must be a τ transition moving the datum.
	tau := 0
	for _, ts := range h.Trans {
		for _, tr := range ts {
			if tr.Sync.IsEmpty() {
				tau++
			}
		}
	}
	if tau == 0 {
		t.Fatal("no τ transition after hiding middle of fifo chain")
	}
}

func TestExpandConnectedVsFull(t *testing.T) {
	// Two independent syncs: connected mode must not combine them;
	// full mode must offer the combined step too.
	u := ca.NewUniverse()
	a1, b1 := u.Port("a1"), u.Port("b1")
	a2, b2 := u.Port("a2"), u.Port("b2")
	auts := []*ca.Automaton{prim.Sync(u, a1, b1), prim.Sync(u, a2, b2)}
	states := []int32{0, 0}

	conn := ca.ExpandJoint(auts, states, ca.ExpandConnected)
	if len(conn) != 2 {
		t.Fatalf("connected joints = %d, want 2", len(conn))
	}
	full := ca.ExpandJoint(auts, states, ca.ExpandFull)
	if len(full) != 3 {
		t.Fatalf("full joints = %d, want 3 (two solos + combo)", len(full))
	}
}

func TestExpandConnectedReplicatorCluster(t *testing.T) {
	// Writer -> replicator -> two readers: the only global step fires
	// all four automata, even though the two readers share no ports
	// with each other (the cluster is connected through the replicator).
	u := ca.NewUniverse()
	x, in := u.Port("x"), u.Port("in")
	o1, o2 := u.Port("o1"), u.Port("o2")
	y1, y2 := u.Port("y1"), u.Port("y2")
	auts := []*ca.Automaton{
		prim.Sync(u, x, in),
		prim.Replicator(u, in, []ca.PortID{o1, o2}),
		prim.Sync(u, o1, y1),
		prim.Sync(u, o2, y2),
	}
	joints := ca.ExpandJoint(auts, []int32{0, 0, 0, 0}, ca.ExpandConnected)
	if len(joints) != 1 {
		t.Fatalf("joints = %d, want 1", len(joints))
	}
	want := u.SetOf(x, in, o1, o2, y1, y2)
	if !joints[0].Sync.Equal(want) {
		t.Fatalf("joint sync = %v", u.PortSetNames(joints[0].Sync))
	}
}

func TestExpandNoDuplicates(t *testing.T) {
	// A merger with two inputs has exactly two global steps per round.
	u := ca.NewUniverse()
	i1, i2, o := u.Port("i1"), u.Port("i2"), u.Port("o")
	m := prim.Merger(u, []ca.PortID{i1, i2}, o)
	recv := prim.Sync(u, o, u.Port("sink"))
	joints := ca.ExpandJoint([]*ca.Automaton{m, recv}, []int32{0, 0}, ca.ExpandConnected)
	if len(joints) != 2 {
		t.Fatalf("joints = %d, want 2", len(joints))
	}
}

func TestProductAllLimit(t *testing.T) {
	// 8 independent fifos: 2^8 states; a limit of 10 must trip.
	u := ca.NewUniverse()
	var auts []*ca.Automaton
	for i := 0; i < 8; i++ {
		a := u.FreshPort("a")
		b := u.FreshPort("b")
		auts = append(auts, prim.Fifo1(u, a, b))
	}
	_, err := ca.ProductAll(auts, ca.ExpandConnected, ca.ProductLimits{MaxStates: 10})
	if err == nil {
		t.Fatal("expected ErrTooLarge")
	}
}

func TestSeqPrimitive(t *testing.T) {
	u := ca.NewUniverse()
	t1, t2, t3 := u.Port("t1"), u.Port("t2"), u.Port("t3")
	s := prim.Seq(u, []ca.PortID{t1, t2, t3})
	if s.NumStates() != 3 {
		t.Fatalf("states = %d", s.NumStates())
	}
	// State 0 only fires t1; state 1 only t2; state 2 only t3.
	for i, want := range []ca.PortID{t1, t2, t3} {
		ts := s.Trans[i]
		if len(ts) != 1 || !ts[0].Sync.Equal(u.SetOf(want)) {
			t.Fatalf("state %d transitions wrong", i)
		}
		if ts[0].Target != int32((i+1)%3) {
			t.Fatalf("state %d target = %d", i, ts[0].Target)
		}
	}
}

func TestFifoKShape(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	f := prim.FifoK(u, a, b, 3)
	// Reachable behavior: from empty, 3 accepts then must emit.
	st := f.Initial
	for i := 0; i < 3; i++ {
		var next int32 = -1
		for _, tr := range f.Trans[st] {
			if tr.Sync.Has(a) {
				next = tr.Target
			}
		}
		if next < 0 {
			t.Fatalf("accept %d unavailable", i)
		}
		st = next
	}
	for _, tr := range f.Trans[st] {
		if tr.Sync.Has(a) {
			t.Fatal("fifo3 accepted a 4th element")
		}
	}
}

func TestInstantiateInto(t *testing.T) {
	// Template in its own universe; instantiate twice into a target
	// universe; cells must be fresh per instance.
	tu := ca.NewUniverse()
	a, b := tu.Port("a"), tu.Port("b")
	tmpl := prim.Fifo1Full(tu, a, b, "tok")

	du := ca.NewUniverse()
	x1, y1 := du.Port("x1"), du.Port("y1")
	x2, y2 := du.Port("x2"), du.Port("y2")
	i1, m1 := ca.InstantiateInto(tmpl, du, map[ca.PortID]ca.PortID{a: x1, b: y1}, "i1")
	i2, _ := ca.InstantiateInto(tmpl, du, map[ca.PortID]ca.PortID{a: x2, b: y2}, "i2")
	if m1[a] != x1 || m1[b] != y1 {
		t.Fatal("port map not honored")
	}
	if du.NumCells() != 2 {
		t.Fatalf("cells = %d, want 2 (one per instance)", du.NumCells())
	}
	cells := du.InitialCells()
	if cells[0] != "tok" || cells[1] != "tok" {
		t.Fatalf("initial cell values = %v", cells)
	}
	if !i1.Ports.Equal(du.SetOf(x1, y1)) || !i2.Ports.Equal(du.SetOf(x2, y2)) {
		t.Fatal("instantiated port sets wrong")
	}
	if i1.Initial != 1 {
		t.Fatal("initially-full fifo must start in state 1")
	}
}

func TestRemapPorts(t *testing.T) {
	u := ca.NewUniverse()
	a, b, c := u.Port("a"), u.Port("b"), u.Port("c")
	s := prim.Sync(u, a, b)
	r := ca.RemapPorts(s, map[ca.PortID]ca.PortID{b: c})
	if !r.Ports.Equal(u.SetOf(a, c)) {
		t.Fatalf("remapped ports = %v", u.PortSetNames(r.Ports))
	}
	tr := r.Trans[0][0]
	if !tr.Sync.Equal(u.SetOf(a, c)) {
		t.Fatal("sync not remapped")
	}
	if tr.Acts[0].Dst.Port != c {
		t.Fatal("action dst not remapped")
	}
}

func TestHideDropsUnobservableSelfLoop(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	d := prim.SyncDrain(u, a, b)
	h := ca.Hide(d, u.SetOf(a, b))
	if h.NumTransitions() != 0 {
		t.Fatalf("unobservable self-loop survived hide: %s", h)
	}
}

func TestSimplifyGuardChain(t *testing.T) {
	// filter even on a -> m, sync m -> b; hide m; simplified guard must
	// test the value at a.
	u := ca.NewUniverse()
	a, m, b := u.Port("a"), u.Port("m"), u.Port("b")
	even := func(v any) bool { return v.(int)%2 == 0 }
	f := prim.Filter(u, a, m, "even", even)
	s := prim.Sync(u, m, b)
	p, err := ca.Product(f, s, ca.ProductLimits{})
	if err != nil {
		t.Fatal(err)
	}
	h := ca.Hide(p, u.SetOf(m))
	simp, err := ca.Simplify(h, func(p ca.PortID) bool { return p == a || p == b })
	if err != nil {
		t.Fatal(err)
	}
	// Find the transition with {a,b}: guard must reference a.
	found := false
	for _, tr := range simp.Trans[0] {
		if tr.Sync.Equal(u.SetOf(a, b)) {
			found = true
			for _, g := range tr.Guards {
				if g.In.Kind != ca.LocPort || g.In.Port != a {
					t.Fatalf("guard in = %+v, want port a", g.In)
				}
			}
		}
	}
	if !found {
		t.Fatal("no {a,b} transition in simplified filter chain")
	}
}
