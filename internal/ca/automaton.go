package ca

import (
	"fmt"
	"strings"
)

// LocKind discriminates the kinds of data locations an Action can name.
type LocKind uint8

const (
	// LocPort names a vertex. If the vertex is a boundary source port its
	// value is the pending send value; if it is hidden, its value is
	// defined by another action of the same transition (a data-flow
	// chain), resolved lazily unless the automaton has been simplified.
	LocPort LocKind = iota
	// LocCell names a memory cell.
	LocCell
	// LocConst is an immediate value (valid as a source only).
	LocConst
)

// Loc is a data location: a port, a cell, or a constant.
type Loc struct {
	Kind  LocKind
	Port  PortID
	Cell  CellID
	Const any
}

// PortLoc returns a Loc naming port p.
func PortLoc(p PortID) Loc { return Loc{Kind: LocPort, Port: p} }

// CellLoc returns a Loc naming cell c.
func CellLoc(c CellID) Loc { return Loc{Kind: LocCell, Cell: c} }

// ConstLoc returns a Loc holding the immediate value v.
func ConstLoc(v any) Loc { return Loc{Kind: LocConst, Const: v} }

// Action is one data assignment performed when a transition fires:
// Dst receives Xform(value of Src) (identity if Xform is nil).
type Action struct {
	Dst   Loc
	Src   Loc
	Xform func(any) any
	// XformNames lists the registry names whose composition Xform is,
	// outermost first (a single name for a Transformer.* primitive;
	// longer when Simplify contracted a transformer chain into one
	// action). The engine never reads it; the static code generator
	// (internal/gen) uses it to re-emit the composition by name, since a
	// func value cannot be rendered as source code. A non-nil Xform with
	// an empty XformNames marks an anonymous transformation, which the
	// generator rejects.
	XformNames []string
}

// Guard is a data constraint: the transition may fire only if Pred holds
// of the value observed at In.
type Guard struct {
	In   Loc
	Pred func(any) bool
	// Name is a diagnostic label (e.g. the registered filter name).
	Name string
	// XformNames lists the registered transformations Pred applies to
	// the observed value before the named filter, outermost first —
	// non-empty only when Simplify folded a transformer chain into the
	// predicate. The static code generator re-emits the fold by name; a
	// fold of anonymous transformations is marked by a single empty
	// string, which the generator rejects.
	XformNames []string
}

// Transition is one execution step of an automaton.
type Transition struct {
	Target int32
	// Sync is the set of ports through which data flows in this step.
	// After Hide it contains only non-hidden ports; a transition whose
	// Sync is empty is an internal (τ) step the engine may fire
	// spontaneously.
	Sync BitSet
	// Guards must all hold for the transition to be enabled.
	Guards []Guard
	// Acts are the data assignments performed on firing.
	Acts []Action
}

// Automaton is a constraint automaton with data over a Universe.
// It is immutable once built; run-time cell contents live in the engine.
type Automaton struct {
	Name    string
	U       *Universe
	Ports   BitSet // every port occurring in any Sync (visible alphabet)
	Initial int32
	Trans   [][]Transition // indexed by state
}

// NumStates returns the number of control states.
func (a *Automaton) NumStates() int { return len(a.Trans) }

// PadToUniverse widens the automaton's bit sets to the universe's current
// port count. Universes grow while a connector instance is assembled
// (fresh internal vertices, node mergers), so automata built early can
// have shorter bit sets than automata built late; every composition entry
// point pads first so that set operations line up. Padding is the
// identity on the represented sets and idempotent.
func (a *Automaton) PadToUniverse() {
	w := (a.U.NumPorts() + 63) / 64
	a.Ports = padSet(a.Ports, w)
	for s := range a.Trans {
		for i := range a.Trans[s] {
			a.Trans[s][i].Sync = padSet(a.Trans[s][i].Sync, w)
		}
	}
}

func padSet(b BitSet, w int) BitSet {
	if len(b) >= w {
		return b
	}
	nb := make(BitSet, w)
	copy(nb, b)
	return nb
}

// NumTransitions returns the total transition count across all states.
func (a *Automaton) NumTransitions() int {
	n := 0
	for _, ts := range a.Trans {
		n += len(ts)
	}
	return n
}

// Env supplies values for data locations during guard evaluation and
// transition firing.
//   - Boundary source ports resolve to pending send values.
//   - Hidden ports resolve through the transition's own action chain.
//   - Cells resolve to the instance cell store.
//
// Env is the reference interpreter for transition semantics: it resolves
// data-flow chains lazily, allocating memo maps per fire. The engine's hot
// path uses compiled Plans instead (see plan.go), which must agree with
// Env observably; Env remains for simplification, tests, and as the
// executable specification the plan compiler is checked against.
type Env struct {
	t *Transition
	// PortVal returns the pending value on a boundary source port.
	PortVal func(PortID) any
	// Cells is the instance cell store.
	Cells []any
	// scratch memoizes resolved hidden-port values.
	scratch map[PortID]any
	// resolving detects causality cycles in action chains.
	resolving map[PortID]bool
	// IsSource reports whether the port is a boundary source port.
	IsSource func(PortID) bool
}

// NewEnv prepares an evaluation environment for firing t.
func NewEnv(t *Transition, cells []any, isSource func(PortID) bool, portVal func(PortID) any) *Env {
	return &Env{t: t, PortVal: portVal, Cells: cells, IsSource: isSource}
}

// Value resolves the data value at l.
func (e *Env) Value(l Loc) (any, error) {
	switch l.Kind {
	case LocConst:
		return l.Const, nil
	case LocCell:
		return e.Cells[l.Cell], nil
	case LocPort:
		return e.portValue(l.Port)
	}
	return nil, fmt.Errorf("ca: invalid location kind %d", l.Kind)
}

func (e *Env) portValue(p PortID) (any, error) {
	if e.IsSource != nil && e.IsSource(p) {
		return e.PortVal(p), nil
	}
	if e.scratch != nil {
		if v, ok := e.scratch[p]; ok {
			return v, nil
		}
	}
	if e.resolving[p] {
		return nil, fmt.Errorf("ca: causal cycle through port %d in transition data flow", p)
	}
	// Find the action that defines this (hidden or sink) port and
	// evaluate its source recursively. This is the unsimplified, lazy
	// resolution path; Simplify removes the need for it.
	for i := range e.t.Acts {
		act := &e.t.Acts[i]
		if act.Dst.Kind == LocPort && act.Dst.Port == p {
			if e.resolving == nil {
				e.resolving = make(map[PortID]bool)
			}
			e.resolving[p] = true
			v, err := e.Value(act.Src)
			delete(e.resolving, p)
			if err != nil {
				return nil, err
			}
			if act.Xform != nil {
				v = act.Xform(v)
			}
			if e.scratch == nil {
				e.scratch = make(map[PortID]any)
			}
			e.scratch[p] = v
			return v, nil
		}
	}
	return nil, fmt.Errorf("ca: no value defined for port %d in transition", p)
}

// CheckGuards evaluates all guards of t under e.
func (e *Env) CheckGuards() (bool, error) {
	for i := range e.t.Guards {
		g := &e.t.Guards[i]
		v, err := e.Value(g.In)
		if err != nil {
			return false, err
		}
		if !g.Pred(v) {
			return false, nil
		}
	}
	return true, nil
}

// FireResult is the outcome of executing a transition's data actions.
type FireResult struct {
	// Delivered maps sink ports to the value each must hand to its
	// pending receive operation.
	Delivered map[PortID]any
	// CellWrites are deferred cell updates (applied after all reads, so
	// that simultaneous read+write of a cell within one step sees the
	// pre-step value).
	CellWrites map[CellID]any
}

// Execute runs the data actions of the transition under e, producing
// deliveries for sink ports and cell updates. Actions whose destination is
// a hidden port only feed chains and produce no external effect.
func (e *Env) Execute(isSink func(PortID) bool) (FireResult, error) {
	res := FireResult{Delivered: make(map[PortID]any), CellWrites: make(map[CellID]any)}
	for i := range e.t.Acts {
		act := &e.t.Acts[i]
		switch act.Dst.Kind {
		case LocPort:
			if isSink != nil && isSink(act.Dst.Port) {
				v, err := e.Value(act.Src)
				if err != nil {
					return res, err
				}
				if act.Xform != nil {
					v = act.Xform(v)
				}
				res.Delivered[act.Dst.Port] = v
			}
			// Hidden destinations are resolved on demand via portValue.
		case LocCell:
			v, err := e.Value(act.Src)
			if err != nil {
				return res, err
			}
			if act.Xform != nil {
				v = act.Xform(v)
			}
			res.CellWrites[act.Dst.Cell] = v
		case LocConst:
			return res, fmt.Errorf("ca: constant as action destination")
		}
	}
	return res, nil
}

// String renders the automaton for debugging.
func (a *Automaton) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "automaton %q: %d states, initial %d\n", a.Name, a.NumStates(), a.Initial)
	for s, ts := range a.Trans {
		for _, t := range ts {
			names := a.U.PortSetNames(t.Sync)
			fmt.Fprintf(&sb, "  %d --%v--> %d (%d acts, %d guards)\n", s, names, t.Target, len(t.Acts), len(t.Guards))
		}
	}
	return sb.String()
}

// locStr renders a Loc for debugging.
func (a *Automaton) locStr(l Loc) string {
	switch l.Kind {
	case LocPort:
		return a.U.Name(l.Port)
	case LocCell:
		return fmt.Sprintf("cell%d", l.Cell)
	default:
		return fmt.Sprintf("%v", l.Const)
	}
}

// DumpTransition renders one transition in detail, for cmd/reoc.
func (a *Automaton) DumpTransition(t *Transition) string {
	var sb strings.Builder
	sb.WriteString("{" + strings.Join(a.U.PortSetNames(t.Sync), ",") + "}")
	for _, g := range t.Guards {
		fmt.Fprintf(&sb, " [%s(%s)]", g.Name, a.locStr(g.In))
	}
	for _, act := range t.Acts {
		fmt.Fprintf(&sb, " %s:=%s", a.locStr(act.Dst), a.locStr(act.Src))
	}
	return sb.String()
}
