package engine

import (
	"errors"

	"repro/internal/ca"
)

// This file abstracts the region-link boundary behind a Transport: the
// construction-time hook that decides what backs each planned link. The
// in-process SPSC queue (memTransport) is the default and costs nothing
// on the hot path — the interface is consulted only while the Multi is
// built. A network transport (tcp.go) instead backs each cut link with
// a *pair* of half links, one per process, and moves committed bursts
// between them as framed batch messages.
//
// A half link is an ordinary *link whose far-side engine pointer is nil:
// the engine keeps pushing/popping it under its own lock exactly as
// in-process, and where it would nudge the missing neighbor it raises
// the link's signal instead (fireLinks/fireLinksGen), waking the
// transport pump that services the queue. The pump side of a half link
// obeys the same SPSC discipline the two engines would: on a
// producer-local half the engine is the only pusher and the transport
// the only popper; on a consumer-local half the transport is the only
// pusher and the engine the only popper.

// ErrLinkBroken reports that a distributed region link failed — the peer
// connection dropped, a frame arrived out of sequence, or the remote
// node reported a protocol violation. It breaks every local region, so
// pending and future operations fail wrapping this sentinel.
var ErrLinkBroken = errors.New("engine: remote region link broken")

// Transport backs the links of one region-partitioned coordinator.
// Bind is called once per planned link during construction; Start once
// after every local region engine is built (network transports connect
// their peers and launch pump goroutines there); Close once from
// Multi.Close, after the local engines are closed.
type Transport interface {
	// Bind allocates the queue(s) behind planned link li. prodLocal and
	// consLocal report which sides run in this process; at least one is
	// true. The returned prod link is the producer-side endpoint to
	// register at the source region's accept port (nil when the producer
	// is remote), and cons the consumer-side endpoint for the target
	// region's emit port (nil when the consumer is remote). An
	// in-process transport returns the same queue twice. Bind also
	// applies the spec's Fifo1Full seeding.
	Bind(li int, spec ca.RegionLink, prodLocal, consLocal bool) (prod, cons *link, err error)
	// Start is called once, after the local engines are built and every
	// endpoint is registered, with the owning coordinator. It must not
	// block on traffic, but may block while connecting peers.
	Start(m *Multi) error
	// Close tears the transport down: peers are notified, connections
	// closed, pump goroutines joined. Called after the local engines are
	// closed; idempotent.
	Close() error
}

// Placement assigns the regions of a plan across processes: Hosted[ri]
// reports whether region ri runs in this process, and Transport backs
// the links Hosted splits. A nil Hosted hosts everything locally.
type Placement struct {
	Hosted    []bool
	Transport Transport
}

// memTransport is the in-process default: every link is one shared SPSC
// queue, both endpoints in this process — byte-for-byte the pre-Transport
// behavior.
type memTransport struct{}

func (memTransport) Bind(_ int, spec ca.RegionLink, prodLocal, consLocal bool) (*link, *link, error) {
	if !prodLocal || !consLocal {
		return nil, nil, errors.New("engine: in-process transport cannot back a remote link")
	}
	l := newLink(spec.Capacity)
	seedLink(l, spec)
	return l, l, nil
}

func (memTransport) Start(*Multi) error { return nil }
func (memTransport) Close() error       { return nil }

// seedLink applies the plan's Fifo1Full seeding. Pre-publication: the
// link is not shared yet, so the plain slot write followed by the tail
// store is safe.
func seedLink(l *link, spec ca.RegionLink) {
	if spec.Full {
		l.buf[0] = spec.Initial
		l.tail.Store(1)
	}
}

// noteSignal records that a fire changed the queue state of half link l,
// whose far side is serviced by a transport pump rather than a sibling
// engine; the pump must be signaled once this engine's commits are
// published. Called with mu held; deduplicated like outNudges.
func (e *Engine) noteSignal(l *link) {
	if l.signal == nil {
		return
	}
	for _, x := range e.outSignals {
		if x == l {
			return
		}
	}
	e.outSignals = append(e.outSignals, l)
}

// flushSignals raises the pump signal of every half link this engine's
// fires touched. Called with mu held, after fireLoop returned — every
// deferred commit is published by then, so a woken pump always observes
// the queue state that prompted the signal. The signal channel is a
// one-slot coalescing buffer: the non-blocking send never stalls the
// engine, and a pump that missed intermediate raises re-checks the
// counters anyway.
func (e *Engine) flushSignals() {
	for i, l := range e.outSignals {
		select {
		case l.signal <- struct{}{}:
		default:
		}
		e.outSignals[i] = nil
	}
	e.outSignals = e.outSignals[:0]
}

// pumpNudge wakes the engine on behalf of a transport pump: a network
// read pushed items into one of its half links, or an ack freed slots
// in one. The runtime path posts a scheduler wake; the synchronous path
// runs the fire pass inline on the pump's goroutine and drains the
// nudges it produces, exactly as a neighboring region would.
func (e *Engine) pumpNudge() {
	e.mu.Lock()
	if e.closed || e.broken != nil {
		e.mu.Unlock()
		return
	}
	if rt := e.sched; rt != nil {
		e.mu.Unlock()
		rt.wake(e)
		return
	}
	e.fireLoop(pumpTrigger)
	e.flushSignals()
	nudges := e.outNudges
	e.outNudges = nil
	e.mu.Unlock()
	e.processNudges(nudges)
}
