package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the concurrent runtime for region-partitioned
// connectors: a fixed worker pool that runs region engines in response
// to wake-ups. In synchronous mode (Options.Workers == 0) every
// cross-region nudge is drained inline by the goroutine that fired
// (region.go, processNudges), so a connector cut into eight regions
// still burns one core; with workers, a nudge becomes a wake-up posted
// to the scheduler and the affected regions fire concurrently.
//
// Each engine carries a run state (idle / queued / running / dirty)
// advanced by compare-and-swap, which both deduplicates wake-ups (an
// already-queued engine is not queued twice) and guarantees that no
// enablement is lost: a wake-up arriving while the engine runs flips it
// to dirty, and the finishing worker requeues it, so a fire pass
// happens-after every wake. Engines are assigned a home worker
// round-robin at construction (the run queue is keyed by engine); a
// worker whose own queue is empty steals from its siblings before
// parking, so load imbalance between regions does not idle cores.

// Engine run states (Engine.schedState).
const (
	// schedIdle: quiescent, not queued; a wake-up must enqueue it.
	schedIdle int32 = iota
	// schedQueued: on some worker's run queue awaiting a fire pass.
	schedQueued
	// schedRunning: a worker is inside its fire pass.
	schedRunning
	// schedDirty: running, and a wake-up arrived meanwhile; the worker
	// requeues the engine when the current pass finishes.
	schedDirty
)

// scheduler is the worker pool of one region-partitioned Multi.
type scheduler struct {
	mu sync.Mutex
	// queues[w] is worker w's FIFO run queue. One mutex guards them
	// all: enqueues are O(1) and rare relative to the fires a single
	// wake-up batches, so the scheduler lock is not the hot path — the
	// hot path (link push/pop) is lock-free.
	queues   [][]*Engine
	cond     *sync.Cond
	sleeping int
	closed   bool
	wg       sync.WaitGroup
	// maxTau bounds consecutive link-only visits per worker — the
	// worker-pool mirror of the processNudges walk budget: a token
	// spinning through pure relay regions makes link progress forever
	// without completing any boundary operation.
	maxTau int
	// completions counts fire passes (on any worker) that moved a
	// boundary operation forward — batched operations count item
	// progress, and a fused k-item burst is one completing pass, so a
	// batch parked across many passes still registers as throughput.
	// Workers reset their τ burst whenever it has
	// advanced, so a worker whose steady-state diet is pure-relay
	// regions — a dedicated home worker for the middle of a hot
	// pipeline — does not mistake healthy global throughput for a
	// livelocked relay cycle.
	completions atomic.Int64
}

// newScheduler builds the pool, assigns every engine a home worker, and
// starts the workers. workers < 0 selects GOMAXPROCS; the pool is
// capped at the region count (extra workers could never run anything).
func newScheduler(workers int, engines []*Engine, maxTau int) *scheduler {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	if workers < 1 {
		workers = 1
	}
	if maxTau <= 0 {
		maxTau = 1 << 20
	}
	s := &scheduler{queues: make([][]*Engine, workers), maxTau: maxTau}
	s.cond = sync.NewCond(&s.mu)
	for i, e := range engines {
		e.sched = s
		e.homeWorker = int32(i % workers)
		e.schedState.Store(schedIdle)
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker(w)
	}
	// The initial wake of every region replaces the synchronous settle:
	// initially full links can enable relay fires before any task
	// operation arrives.
	for _, e := range engines {
		s.wake(e)
	}
	return s
}

// workers returns the pool size.
func (s *scheduler) workers() int { return len(s.queues) }

// wake requests a fire pass for e, deduplicating against one already
// pending. Must be called WITHOUT any engine lock held (it takes the
// scheduler lock; lock order is engine.mu strictly before scheduler.mu
// never holds, since neither is acquired under the other).
func (s *scheduler) wake(e *Engine) {
	for {
		switch st := e.schedState.Load(); st {
		case schedIdle:
			if e.schedState.CompareAndSwap(schedIdle, schedQueued) {
				s.enqueue(e)
				return
			}
		case schedRunning:
			if e.schedState.CompareAndSwap(schedRunning, schedDirty) {
				return
			}
		default: // queued or dirty: a pass that sees the change is pending
			return
		}
	}
}

// wakeAll posts one wake-up per engine (the worker-pool replacement for
// processNudges on the register path).
func (s *scheduler) wakeAll(engines []*Engine) {
	for _, e := range engines {
		s.wake(e)
	}
}

func (s *scheduler) enqueue(e *Engine) {
	s.mu.Lock()
	if s.closed {
		// Workers are gone; the engine is (being) closed too, so the
		// pass it asked for has nothing left to do.
		s.mu.Unlock()
		return
	}
	s.queues[e.homeWorker] = append(s.queues[e.homeWorker], e)
	if s.sleeping > 0 {
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// next returns the next engine for worker w: its own queue first, then
// stolen from a sibling, else it parks. Returns nil on shutdown.
func (s *scheduler) next(w int) *Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if q := s.queues[w]; len(q) > 0 {
			e := q[0]
			s.queues[w] = q[1:]
			return e
		}
		// Steal: scan the siblings round-robin from our right neighbor.
		for i := 1; i < len(s.queues); i++ {
			v := (w + i) % len(s.queues)
			if q := s.queues[v]; len(q) > 0 {
				e := q[0]
				s.queues[v] = q[1:]
				return e
			}
		}
		s.sleeping++
		s.cond.Wait()
		s.sleeping--
	}
}

func (s *scheduler) worker(w int) {
	defer s.wg.Done()
	// burst counts the worker's consecutive link-only visits with no
	// boundary completion anywhere in the pool — the per-worker τ
	// budget. lastSeen snapshots the global completion counter: any
	// advance means some task's operation finished since the worker
	// last looked, so the link churn it is relaying is real throughput,
	// not a closed cycle. A visit that fired nothing leaves the burst
	// unchanged (quiescence produces no further wake-ups, so it cannot
	// spin).
	burst := 0
	lastSeen := s.completions.Load()
	for {
		e := s.next(w)
		if e == nil {
			return
		}
		e.schedState.Store(schedRunning)
		s.runEngine(e, &burst, &lastSeen)
	}
}

// runEngine performs one fire pass of e and reposts the wake-ups the
// pass produced.
func (s *scheduler) runEngine(e *Engine, burst *int, lastSeen *int64) {
	e.mu.Lock()
	completed, linked := false, false
	if !e.closed && e.broken == nil {
		e.fireLoop(pumpTrigger)
		completed, linked = e.fireCompleted, e.fireLinkActive
	}
	// Collect nudges even from a pass that broke the engine: link-state
	// changes it made before breaking must still wake the neighbors.
	nudges := e.outNudges
	e.outNudges = nil
	e.mu.Unlock()
	// Leave the running state before posting nudges: a neighbor's pass
	// may wake us right back, and that wake must find idle (enqueue) or
	// our own dirty-requeue below, never be swallowed.
	for {
		if e.schedState.CompareAndSwap(schedRunning, schedIdle) {
			break
		}
		if e.schedState.CompareAndSwap(schedDirty, schedQueued) {
			s.enqueue(e)
			break
		}
	}
	s.wakeAll(nudges)
	if completed {
		s.completions.Add(1)
		*burst = 0
		*lastSeen = s.completions.Load()
		return
	}
	if !linked {
		return
	}
	if cur := s.completions.Load(); cur != *lastSeen {
		*lastSeen = cur
		*burst = 1 // this link-only visit starts a fresh window
		return
	}
	*burst++
	if *burst > s.maxTau {
		// Link progress with no boundary completion anywhere for a full
		// budget: a closed cycle of links with no task on it. Break the
		// group, as the synchronous walk budget would.
		e.breakExternal(ErrLivelock)
		*burst = 0
	}
}

// shutdown stops the workers and waits for them to exit. Idempotent.
// Pending queue entries are dropped: every engine is closed (or broken)
// by the time the coordinator shuts its scheduler down, so a dropped
// pass has nothing to fire.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
