package engine_test

import (
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/engine"
	"repro/internal/prim"
)

// TestAOTTooLargeFails: ahead-of-time composition must refuse state
// spaces beyond the limit at construction time.
func TestAOTTooLargeFails(t *testing.T) {
	u := ca.NewUniverse()
	var auts []*ca.Automaton
	for i := 0; i < 12; i++ {
		a := u.FreshPort("a")
		b := u.FreshPort("b")
		u.SetDir(a, ca.DirSource)
		u.SetDir(b, ca.DirSink)
		auts = append(auts, prim.Fifo1(u, a, b))
	}
	_, err := engine.New(u, auts, engine.Options{Composition: engine.AOT, MaxStates: 100})
	if err == nil {
		t.Fatal("AOT accepted a 2^12-state space with limit 100")
	}
	// JIT with the same inputs must construct instantly.
	e, err := engine.New(u, auts, engine.Options{Composition: engine.JIT, MaxStates: 100})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
}

// TestLivelockDetected: a token ring with no boundary gating spins
// internally; the engine must detect the τ-burst and fail pending
// operations instead of hanging.
func TestLivelockDetected(t *testing.T) {
	u := ca.NewUniverse()
	r1, r2 := u.Port("r1"), u.Port("r2")
	x, y := u.Port("x"), u.Port("y")
	u.SetDir(x, ca.DirSource)
	u.SetDir(y, ca.DirSink)
	auts := []*ca.Automaton{
		prim.Fifo1Full(u, r2, r1, "tok"), // internal ring
		prim.Fifo1(u, r1, r2),
		prim.Fifo1(u, x, y), // an honest lane so the engine has boundary work
	}
	e, err := engine.New(u, auts, engine.Options{MaxTauBurst: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	errc := make(chan error, 1)
	go func() { errc <- e.Send(x, 1) }()
	select {
	case err := <-errc:
		if err == nil {
			// The send may complete before the burst trips; the next
			// operation must then observe the broken engine.
			if _, err2 := e.Recv(y); err2 == nil {
				t.Fatal("livelock not detected")
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine hung instead of detecting livelock")
	}
}

// TestExpansionCountsAndCache: revisiting composite states must hit the
// cache rather than re-expanding.
func TestExpansionCountsAndCache(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e, err := engine.New(u, []*ca.Automaton{prim.Fifo1(u, a, b)}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 50; i++ {
		if err := e.Send(a, i); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Recv(b); err != nil {
			t.Fatal(err)
		}
	}
	if e.Steps() != 100 {
		t.Errorf("steps = %d", e.Steps())
	}
	if e.Expansions() > 2 {
		t.Errorf("expansions = %d, want <= 2 (both fifo states)", e.Expansions())
	}
	if e.CachedStates() > 2 {
		t.Errorf("cached states = %d", e.CachedStates())
	}
}

// TestDeterministicWithSeed: identical seeds and op orders yield
// identical merger choices.
func TestDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) []any {
		u := ca.NewUniverse()
		i1, i2, o := u.Port("i1"), u.Port("i2"), u.Port("o")
		u.SetDir(i1, ca.DirSource)
		u.SetDir(i2, ca.DirSource)
		u.SetDir(o, ca.DirSink)
		e, err := engine.New(u, []*ca.Automaton{prim.Merger(u, []ca.PortID{i1, i2}, o)},
			engine.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		var got []any
		for r := 0; r < 10; r++ {
			done1 := make(chan struct{})
			done2 := make(chan struct{})
			go func() { e.Send(i1, "a"); close(done1) }()
			time.Sleep(time.Millisecond)
			go func() { e.Send(i2, "b"); close(done2) }()
			time.Sleep(time.Millisecond)
			v, _ := e.Recv(o)
			got = append(got, v)
			v, _ = e.Recv(o)
			got = append(got, v)
			<-done1
			<-done2
		}
		return got
	}
	a := run(99)
	b := run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

// TestMultiCloseIdempotent and step accounting across partitions.
func TestMultiAccounting(t *testing.T) {
	u := ca.NewUniverse()
	var auts []*ca.Automaton
	var as, bs []ca.PortID
	for i := 0; i < 3; i++ {
		a := u.FreshPort("a")
		b := u.FreshPort("b")
		u.SetDir(a, ca.DirSource)
		u.SetDir(b, ca.DirSink)
		as = append(as, a)
		bs = append(bs, b)
		auts = append(auts, prim.Fifo1(u, a, b))
	}
	m, err := engine.NewMulti(u, auts, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.Send(as[i], i)
		m.Recv(bs[i])
	}
	if m.Steps() != 6 {
		t.Errorf("steps = %d, want 6", m.Steps())
	}
	if m.Expansions() == 0 {
		t.Error("no expansions recorded")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := m.Send(as[0], 1); err != engine.ErrClosed {
		t.Errorf("post-close send: %v", err)
	}
}

// TestSendRecvOnForeignPort: operations on ports no partition owns fail
// cleanly.
func TestMultiForeignPort(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	m, err := engine.NewMulti(u, []*ca.Automaton{prim.Sync(u, a, b)}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	stray := u.FreshPort("stray")
	if err := m.Send(stray, 1); err == nil {
		t.Error("send on unowned port accepted")
	}
}
