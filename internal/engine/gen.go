package engine

import (
	"fmt"

	"repro/internal/ca"
)

// This file implements generated-region execution: a region engine whose
// dispatch tables, guards, and data actions were emitted as static Go
// code by `reoc gen` (internal/gen's parametric path) instead of being
// interpreted from compiled plans. The generated code supplies a
// GenTemplate — transition tables over *slot indices* plus guard/exec
// closures — and BindGen instantiates it against one concrete region: the
// slots are bound to the region's actual PortIDs/CellIDs, and the engine
// switches its fire loop to the static tables (fireLoopGen).
//
// Everything around the fire loop is shared with the interpreted path
// verbatim: operation registration and batch cursors, region links and
// gate masks, nudges, the worker runtime, close/break/reset, and the
// Steps/GuardEvals accounting. The generated loop mirrors fireLoop's
// observable behavior exactly — candidate enumeration order, the
// guardEvals-per-candidate counting, seeded choice, fused pure-flow
// bursts with deferred link publication, and the τ-livelock budget — so
// a generated region is indistinguishable from an interpreted one to its
// tasks, its sibling regions, and the differential tests.

// GenTrans is one transition of a generated region template. Sync lists
// the template's port slots (ascending) through which data flows; Guards
// and Exec are the emitted guard conjunction and data actions, reading
// and writing through the bound GenCtx. Either may be nil (no guards /
// no actions).
type GenTrans struct {
	Sync   []int32
	Target int32
	Flow   bool
	Guards func(*GenCtx) bool
	Exec   func(*GenCtx)
}

// GenTemplate is the static form of one region automaton, parametric in
// the actual ports: slot i stands for the i-th referenced port (in
// ascending universe order at generation time), classified by Cls[i] —
// 'S' for a value source (boundary send port or emitting link endpoint),
// 'K' for a value sink (boundary receive port or accepting link
// endpoint), 'I' for an internal vertex. BindGen checks the
// classification against the region it binds, so a template generated
// for one link layout can never silently misread a differently-cut
// region.
type GenTemplate struct {
	States  int
	Initial int32
	Cells   int
	Cls     string
	Trans   [][]GenTrans
}

// GenCtx is the execution context handed to generated guard/exec
// closures: it maps template slots to the bound region's real ports and
// cells, and carries the resolved filter/transformer functions the
// emitted code calls by index.
type GenCtx struct {
	e       *Engine
	portIDs []ca.PortID
	cellIDs []ca.CellID
	// Filt and Xf hold the registered filter/transformer functions in
	// the order the generated package declared them; emitted guards and
	// actions index into them.
	Filt []func(any) bool
	Xf   []func(any) any
}

// Val returns the value currently observable at slot: the pending send's
// current batch item, or the head of the emitting link.
func (g *GenCtx) Val(slot int) any { return g.e.PlanPortVal(g.portIDs[slot]) }

// Deliver hands a fired value to slot: the pending receive's current
// batch item, and/or the staging buffer of the accepting links.
func (g *GenCtx) Deliver(slot int, v any) { g.e.PlanDeliver(g.portIDs[slot], v) }

// Cell reads the i-th bound memory cell.
func (g *GenCtx) Cell(i int) any { return g.e.cells[g.cellIDs[i]] }

// SetCell writes the i-th bound memory cell.
func (g *GenCtx) SetCell(i int, v any) { g.e.cells[g.cellIDs[i]] = v }

// genTrans is one bound transition: template slots resolved to PortIDs,
// pre-split into the subsets the dispatch and firing paths walk.
type genTrans struct {
	// syncPorts holds every sync port ascending (advanceOps/fuseBudget
	// order — the bit-set walk of the interpreted path is ascending too).
	syncPorts []ca.PortID
	// bndPorts is sync ∩ boundary: ports needing a pending operation.
	bndPorts []ca.PortID
	// gatePorts is sync ∩ linkGate: ports needing their queue condition.
	gatePorts []ca.PortID
	target    int32
	flow      bool
	guards    func(*GenCtx) bool
	exec      func(*GenCtx)
}

// genMode is the bound static dispatch state of a generated region,
// mirroring the interpreted path's per-state expansion indexes (byPort,
// taus) over the fixed transition tables.
type genMode struct {
	ctx    *GenCtx
	trans  [][]genTrans
	byPort []map[ca.PortID][]int32
	taus   [][]int32
}

// BindGen installs a generated template on a single-automaton region
// engine: slots are bound to ports/cells, the static dispatch indexes
// are built, and the engine's fire loop switches to the generated path.
// Must be called after link endpoints are finalized (initLinks) and
// before any operation registers; NewMultiRegionsBound's bind callback
// is the intended call site. The template must structurally match the
// region's automaton — state/transition counts, initial state, and the
// per-slot classification under the region's actual link layout — or an
// error is returned and the engine is left untouched (it simply stays
// interpreted).
func (e *Engine) BindGen(t *GenTemplate, ports []ca.PortID, cells []ca.CellID, filts []func(any) bool, xfs []func(any) any) error {
	if len(e.auts) != 1 {
		return fmt.Errorf("engine: BindGen on a %d-automaton region", len(e.auts))
	}
	a := e.auts[0]
	if a.NumStates() != t.States || len(t.Trans) != t.States {
		return fmt.Errorf("engine: generated template has %d states, region automaton %d", t.States, a.NumStates())
	}
	if a.Initial != t.Initial {
		return fmt.Errorf("engine: generated template initial state %d, region automaton %d", t.Initial, a.Initial)
	}
	if len(ports) != len(t.Cls) {
		return fmt.Errorf("engine: %d ports bound to a %d-slot template", len(ports), len(t.Cls))
	}
	if len(cells) != t.Cells {
		return fmt.Errorf("engine: %d cells bound to a %d-cell template", len(cells), t.Cells)
	}
	for slot, p := range ports {
		if got := clsOfDir(e.planDir(p)); got != t.Cls[slot] {
			return fmt.Errorf("engine: slot %d (%s) classifies %q under this region's links, template wants %q",
				slot, e.u.Name(p), string(got), string(t.Cls[slot]))
		}
	}
	g := &genMode{
		ctx:    &GenCtx{e: e, portIDs: ports, cellIDs: cells, Filt: filts, Xf: xfs},
		trans:  make([][]genTrans, t.States),
		byPort: make([]map[ca.PortID][]int32, t.States),
		taus:   make([][]int32, t.States),
	}
	for s := range t.Trans {
		if len(a.Trans[s]) != len(t.Trans[s]) {
			return fmt.Errorf("engine: generated template state %d has %d transitions, region automaton %d",
				s, len(t.Trans[s]), len(a.Trans[s]))
		}
		g.trans[s] = make([]genTrans, len(t.Trans[s]))
		g.byPort[s] = make(map[ca.PortID][]int32)
		for i := range t.Trans[s] {
			tt := &t.Trans[s][i]
			bt := &g.trans[s][i]
			bt.target = tt.Target
			bt.flow = tt.Flow
			bt.guards = tt.Guards
			bt.exec = tt.Exec
			hasGate := false
			for _, slot := range tt.Sync {
				p := ports[slot]
				bt.syncPorts = append(bt.syncPorts, p)
				if e.boundary.Has(p) {
					bt.bndPorts = append(bt.bndPorts, p)
				}
				if e.linkGate != nil && e.linkGate.Has(p) {
					bt.gatePorts = append(bt.gatePorts, p)
				}
				if e.gated(p) {
					g.byPort[s][p] = append(g.byPort[s][p], int32(i))
					hasGate = true
				}
			}
			if !hasGate {
				g.taus[s] = append(g.taus[s], int32(i))
			}
		}
	}
	e.gen = g
	return nil
}

// clsOfDir maps a plan-compilation direction to the template slot
// classification character. planDir already folds link endpoints into
// the boundary directions (an emitting endpoint is a value source, an
// accepting endpoint with no task a value sink), so the mapping is
// direct.
func clsOfDir(d ca.Dir) byte {
	switch d {
	case ca.DirSource:
		return 'S'
	case ca.DirSink:
		return 'K'
	default:
		return 'I'
	}
}

// ClsOfDir exposes the slot classification to the code generator, which
// must bake the same classification into emitted templates.
func ClsOfDir(d ca.Dir) byte { return clsOfDir(d) }

// fireLoopGen is fireLoop over the bound static tables: same candidate
// enumeration order (the trigger's port index merged with the τ list, or
// a full scan), same per-candidate guardEvals accounting, same seeded
// pick, same fused-flow burst, same τ budget. Called with mu held.
func (e *Engine) fireLoopGen(trigger ca.PortID) {
	g := e.gen
	e.fireCompleted, e.fireLinkActive = false, false
	if e.broken != nil {
		return
	}
	indexed := trigger != pumpTrigger
	if !indexed && e.linkGate != nil {
		e.refreshLinks()
	}
	tau := 0
	for {
		st := e.state[0]
		trans := g.trans[st]
		e.enabledBuf = e.enabledBuf[:0]
		if indexed {
			indexed = false
			byp := g.byPort[st][trigger]
			taus := g.taus[st]
			i, j := 0, 0
			for i < len(byp) || j < len(taus) {
				var next int32
				switch {
				case j >= len(taus) || (i < len(byp) && byp[i] < taus[j]):
					next = byp[i]
					i++
				default:
					next = taus[j]
					j++
				}
				e.tryEnableGen(g, &trans[next], next)
			}
		} else {
			for i := range trans {
				e.tryEnableGen(g, &trans[i], int32(i))
			}
		}
		if len(e.enabledBuf) == 0 {
			return
		}
		pick := 0
		if len(e.enabledBuf) > 1 {
			pick = e.rng.Intn(len(e.enabledBuf))
		}
		t := &trans[e.enabledBuf[pick]]
		if t.exec != nil {
			t.exec(g.ctx)
		}
		linkActive := false
		if e.linkGate != nil {
			linkActive = e.fireLinksGen(t, false)
		}
		var traced []TracePort
		var tracedp *[]TracePort
		if e.tracer != nil {
			tracedp = &traced
		}
		completedAny := e.advanceOpsGen(t, tracedp)
		if t.flow && e.tracer == nil {
			e.fireFusedGen(t)
		}
		e.state[0] = t.target
		step := e.steps.Add(1)
		if e.tracer != nil {
			e.tracer(TraceEvent{Step: step, Ports: traced, Internal: !completedAny})
		}
		e.fireCompleted = e.fireCompleted || completedAny
		e.fireLinkActive = e.fireLinkActive || linkActive
		if completedAny || linkActive {
			tau = 0
		} else {
			tau++
			if tau > e.opts.MaxTauBurst {
				e.break_(ErrLivelock)
				return
			}
		}
	}
}

// tryEnableGen appends transition i to the candidate buffer if every
// boundary port in its sync set has a pending operation, every link
// endpoint's queue condition holds, and its guards pass. Counts one
// guard evaluation per mask-passing candidate, guards or not — exactly
// as the interpreted tryEnable does. Generated guards call only
// registered pure functions, so there is no error path. Must be called
// with mu held.
func (e *Engine) tryEnableGen(g *genMode, t *genTrans, i int32) {
	for _, p := range t.bndPorts {
		if !e.pendMask.Has(p) {
			return
		}
	}
	for _, p := range t.gatePorts {
		if !e.linkOK.Has(p) {
			return
		}
	}
	e.guardEvals.Add(1)
	if t.guards != nil && !t.guards(g.ctx) {
		return
	}
	e.enabledBuf = append(e.enabledBuf, i)
}

// advanceOpsGen is advanceOps over the bound transition's sync ports
// (ascending, matching the interpreted bit-set walk). Called with mu
// held.
func (e *Engine) advanceOpsGen(t *genTrans, traced *[]TracePort) bool {
	progressed := false
	for _, p := range t.syncPorts {
		o := e.pend[p]
		if o == nil {
			continue
		}
		if traced != nil {
			*traced = append(*traced, TracePort{Name: e.u.Name(p), Dir: e.dirs[p], Val: o.vals[o.cur]})
		}
		o.cur++
		progressed = true
		if o.cur == len(o.vals) {
			e.pend[p] = nil
			e.pendMask.Clear(p)
			o.done <- struct{}{}
		}
	}
	return progressed
}

// fireLinksGen is fireLinks over the bound transition's link endpoints
// (gatePorts, ascending — the same order as the interpreted masked
// bit-set walk). Called with mu held.
func (e *Engine) fireLinksGen(t *genTrans, deferred bool) bool {
	active := false
	for _, p := range t.gatePorts {
		active = true
		var v any
		fromLink := false
		if l := e.emitAt[p]; l != nil {
			if deferred {
				v = l.popDefer()
			} else {
				v = l.pop()
			}
			fromLink = true
			if o := e.pend[p]; o != nil && !o.send {
				o.vals[o.cur] = v
			}
			if l.src != nil {
				e.noteNudge(l.src)
			} else {
				e.noteSignal(l) // remote producer: signal the ack pump
			}
		}
		if outs := e.acceptAt[p]; len(outs) > 0 {
			if !fromLink {
				if o := e.pend[p]; o != nil && o.send {
					v = o.vals[o.cur]
				} else if pv, ok := e.pushVal[p]; ok {
					v = pv
				}
			}
			for _, l := range outs {
				if deferred {
					l.pushDefer(v)
				} else {
					l.push(v)
				}
				if l.dst != nil {
					e.noteNudge(l.dst)
				} else {
					e.noteSignal(l) // remote consumer: signal the send pump
				}
			}
		}
		if !deferred {
			e.refreshLinkPort(p)
		}
	}
	for p := range e.pushVal {
		delete(e.pushVal, p)
	}
	return active
}

// commitLinksGen is commitLinks over the bound transition's link
// endpoints. Called with mu held.
func (e *Engine) commitLinksGen(t *genTrans) {
	for _, p := range t.gatePorts {
		if l := e.emitAt[p]; l != nil {
			l.commitPops()
		}
		for _, l := range e.acceptAt[p] {
			l.commitPushes()
		}
		e.refreshLinkPort(p)
	}
}

// fuseBudgetGen is fuseBudget over the bound transition's sync ports.
// Called with mu held.
func (e *Engine) fuseBudgetGen(t *genTrans) int {
	k := int(^uint(0) >> 1)
	found := false
	for _, p := range t.syncPorts {
		if e.boundary.Has(p) {
			o := e.pend[p]
			if o == nil {
				return 0
			}
			if r := o.remaining(); r < k {
				k = r
			}
			found = true
		}
		if e.emitAt != nil {
			if l := e.emitAt[p]; l != nil {
				if r := l.avail(); r < k {
					k = r
				}
				found = true
			}
		}
		if e.acceptAt != nil {
			for _, l := range e.acceptAt[p] {
				if r := l.free(); r < k {
					k = r
				}
				found = true
			}
		}
	}
	if !found || k <= 0 {
		return 0
	}
	return k
}

// fireFusedGen is fireFused over a bound pure-flow transition. Generated
// execs have no error path, so the burst cannot break the engine. Called
// with mu held.
func (e *Engine) fireFusedGen(t *genTrans) {
	k := e.fuseBudgetGen(t)
	if k == 0 {
		return
	}
	for j := 0; j < k; j++ {
		if t.exec != nil {
			t.exec(e.gen.ctx)
		}
		if e.linkGate != nil {
			e.fireLinksGen(t, true)
		}
		e.advanceOpsGen(t, nil)
	}
	if e.linkGate != nil {
		e.commitLinksGen(t)
	}
	e.steps.Add(int64(k))
}

// Generated reports whether the engine runs on a bound generated
// template (diagnostics and tests).
func (e *Engine) Generated() bool { return e.gen != nil }
