package engine_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/engine"
	"repro/internal/prim"
)

// waitForErr waits for one error on ch, failing the test after timeout
// (the stubEntityTicker.waitForCalls pattern: signal channel + deadline,
// no sleeping in a loop).
func waitForErr(t *testing.T, ch <-chan error, timeout time.Duration, what string) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(timeout):
		t.Fatalf("timed out waiting for %s", what)
		return nil
	}
}

// TestWorkersChainEndToEnd runs the cut chain on a 2-worker scheduler:
// values must arrive in order, and the pool size must be reported.
func TestWorkersChainEndToEnd(t *testing.T) {
	m, a, b := regionChain(t, engine.Options{Workers: 2})
	defer m.Close()
	if m.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", m.Workers())
	}
	const rounds = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			if err := m.Send(a, i); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < rounds; i++ {
		v, err := m.Recv(b)
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("recv %d = %v", i, v)
		}
	}
	if err := waitForErr(t, done, 5*time.Second, "sender"); err != nil {
		t.Fatal(err)
	}
}

// TestWorkersPoolCaps checks the worker-count normalization: negative
// selects GOMAXPROCS, and the pool never exceeds the region count.
func TestWorkersPoolCaps(t *testing.T) {
	m, _, _ := regionChain(t, engine.Options{Workers: -1})
	defer m.Close()
	want := runtime.GOMAXPROCS(0)
	if want > m.Partitions() {
		want = m.Partitions()
	}
	if m.Workers() != want {
		t.Errorf("Workers() = %d, want %d (GOMAXPROCS capped at regions)", m.Workers(), want)
	}
	m2, _, _ := regionChain(t, engine.Options{Workers: 64})
	defer m2.Close()
	if m2.Workers() != m2.Partitions() {
		t.Errorf("Workers() = %d, want %d (capped at regions)", m2.Workers(), m2.Partitions())
	}
}

// TestWorkersInitiallyFullLink: the workers' initial wake must settle
// seeded links, so the seed value is deliverable with no send.
func TestWorkersInitiallyFullLink(t *testing.T) {
	u := ca.NewUniverse()
	a, x, y, b := u.Port("a"), u.Port("x"), u.Port("y"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	auts := []*ca.Automaton{prim.Sync(u, a, x), prim.Fifo1Full(u, x, y, "seed"), prim.Sync(u, y, b)}
	m, err := engine.NewMultiRegions(u, auts, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, err := m.Recv(b)
	if err != nil || v != "seed" {
		t.Fatalf("recv = %v, %v; want seed", v, err)
	}
	go m.Send(a, 7)
	if v, err = m.Recv(b); err != nil || v != 7 {
		t.Fatalf("recv = %v, %v; want 7", v, err)
	}
}

// TestWorkersCloseDuringParkedRecv: Close must fail a Recv parked on
// its wait slot while the scheduler is live, and shut the pool down.
func TestWorkersCloseDuringParkedRecv(t *testing.T) {
	m, _, b := regionChain(t, engine.Options{Workers: 2})
	parked := make(chan error, 1)
	go func() {
		_, err := m.Recv(b)
		parked <- err
	}()
	// Give the recv time to park (nothing is ever sent, so it cannot
	// complete any other way).
	time.Sleep(20 * time.Millisecond)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := waitForErr(t, parked, 2*time.Second, "parked recv"); err != engine.ErrClosed {
		t.Errorf("parked recv error = %v, want ErrClosed", err)
	}
	// Close is idempotent with the scheduler shut down.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkersGroupErrorMidNudge: a closed cycle of links with no task
// on it livelocks; the per-worker τ budget must break the spinning
// region's group, failing operations parked in *sibling* regions with
// ErrLivelock (group error propagation through the scheduler).
func TestWorkersGroupErrorMidNudge(t *testing.T) {
	u := ca.NewUniverse()
	x, y := u.Port("x"), u.Port("y")
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	auts := []*ca.Automaton{
		prim.Fifo1Full(u, x, y, prim.Token{}), // token cycle: pure relay,
		prim.Fifo1(u, y, x),                   // spins forever
		prim.Fifo1(u, a, b),                   // innocent sibling region
	}
	m, err := engine.NewMultiRegions(u, auts, engine.Options{Workers: 2, MaxTauBurst: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	recvErr := make(chan error, 1)
	go func() {
		// Parked (or immediately failed, if the budget fired first) —
		// either way the livelock must surface here.
		_, err := m.Recv(b)
		recvErr <- err
	}()
	if err := waitForErr(t, recvErr, 10*time.Second, "livelock propagation"); !errors.Is(err, engine.ErrLivelock) {
		t.Errorf("sibling recv error = %v, want ErrLivelock", err)
	}
}

// TestWorkersAssignmentReported: region-partitioned Infos must report a
// home worker in worker mode and -1 in synchronous mode.
func TestWorkersAssignmentReported(t *testing.T) {
	m, _, _ := regionChain(t, engine.Options{Workers: 2})
	defer m.Close()
	seen := map[int]bool{}
	for i, in := range m.Infos() {
		if in.Worker < 0 || in.Worker >= m.Workers() {
			t.Errorf("region %d: worker %d out of range [0,%d)", i, in.Worker, m.Workers())
		}
		seen[in.Worker] = true
	}
	// Round-robin assignment over 2 regions and 2 workers covers both.
	if len(seen) != 2 {
		t.Errorf("home workers %v, want both of the pool used", seen)
	}
	ms, _, _ := regionChain(t, engine.Options{})
	defer ms.Close()
	for i, in := range ms.Infos() {
		if in.Worker != -1 {
			t.Errorf("synchronous region %d: worker = %d, want -1", i, in.Worker)
		}
	}
	if ms.Workers() != 0 {
		t.Errorf("synchronous Workers() = %d, want 0", ms.Workers())
	}
}

// TestWorkersSchedulerDrainRace hammers a multi-region relay pipeline
// from concurrent tasks and closes it mid-flight; under -race this
// exercises the lock-free links, the CAS run states, and scheduler
// shutdown against in-flight fire passes.
func TestWorkersSchedulerDrainRace(t *testing.T) {
	const lanes = 4
	u := ca.NewUniverse()
	var auts []*ca.Automaton
	var as, bs []ca.PortID
	for i := 0; i < lanes; i++ {
		a := u.Port(fmt.Sprintf("a%d", i))
		mid := u.Port(fmt.Sprintf("m%d", i))
		b := u.Port(fmt.Sprintf("b%d", i))
		u.SetDir(a, ca.DirSource)
		u.SetDir(b, ca.DirSink)
		as, bs = append(as, a), append(bs, b)
		// Two buffers per lane: the middle vertex becomes a pure relay
		// region, so every value crosses two links and a scheduled hop.
		auts = append(auts, prim.Fifo1(u, a, mid), prim.Fifo1(u, mid, b))
	}
	m, err := engine.NewMultiRegions(u, auts, engine.Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*lanes)
	for i := 0; i < lanes; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for k := 0; ; k++ {
				if err := m.Send(as[i], k); err != nil {
					errs <- err
					return
				}
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			last := -1
			for {
				v, err := m.Recv(bs[i])
				if err != nil {
					errs <- err
					return
				}
				if v.(int) != last+1 {
					t.Errorf("lane %d: got %v after %d", i, v, last)
					errs <- nil
					return
				}
				last = v.(int)
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	m.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && err != engine.ErrClosed {
			t.Errorf("task error = %v, want ErrClosed", err)
		}
	}
	if m.Steps() == 0 {
		t.Error("no steps fired before Close")
	}
}

// --- shared-runtime tests ---------------------------------------------
// The tests below run coordinators on an explicit shared Runtime (the
// engine.Options.Runtime path Connect's WithRuntime uses), where Close
// detaches the instance instead of tearing the pool down.

// TestSharedRuntimeTwoInstances interleaves traffic over two
// coordinators multiplexed on one 2-worker runtime, then closes one and
// checks the other is unaffected.
func TestSharedRuntimeTwoInstances(t *testing.T) {
	rt := engine.NewRuntime(2)
	defer rt.Close()
	m1, a1, b1 := regionChain(t, engine.Options{Runtime: rt})
	m2, a2, b2 := regionChain(t, engine.Options{Runtime: rt})
	defer m2.Close()
	if m1.Workers() != 2 || m2.Workers() != 2 {
		t.Fatalf("Workers() = %d/%d, want 2/2", m1.Workers(), m2.Workers())
	}
	if got := rt.Attached(); got != 4 {
		t.Fatalf("Attached() = %d, want 4 (2 regions x 2 instances)", got)
	}
	const rounds = 100
	for i := 0; i < rounds; i++ {
		if err := m1.Send(a1, i); err != nil {
			t.Fatal(err)
		}
		if err := m2.Send(a2, -i); err != nil {
			t.Fatal(err)
		}
		if v, err := m2.Recv(b2); err != nil || v != -i {
			t.Fatalf("m2 recv %d = %v, %v", i, v, err)
		}
		if v, err := m1.Recv(b1); err != nil || v != i {
			t.Fatalf("m1 recv %d = %v, %v", i, v, err)
		}
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Attached(); got != 2 {
		t.Errorf("Attached() after close = %d, want 2", got)
	}
	// The survivor keeps flowing on the still-running pool.
	if err := m2.Send(a2, "after"); err != nil {
		t.Fatal(err)
	}
	if v, err := m2.Recv(b2); err != nil || v != "after" {
		t.Fatalf("m2 recv after close = %v, %v", v, err)
	}
}

// TestSharedRuntimeDoubleClose: Close must be idempotent on a shared
// runtime — the second call must not detach (or disturb) anything.
func TestSharedRuntimeDoubleClose(t *testing.T) {
	rt := engine.NewRuntime(1)
	defer rt.Close()
	m, a, b := regionChain(t, engine.Options{Runtime: rt})
	m2, a2, b2 := regionChain(t, engine.Options{Runtime: rt})
	defer m2.Close()
	go m.Send(a, 1)
	if v, err := m.Recv(b); err != nil || v != 1 {
		t.Fatalf("recv = %v, %v", v, err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(a, 2); err != engine.ErrClosed {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
	go m2.Send(a2, 3)
	if v, err := m2.Recv(b2); err != nil || v != 3 {
		t.Fatalf("sibling recv after double close = %v, %v", v, err)
	}
}

// TestSharedRuntimeConcurrentClose races many Close calls against each
// other and against parked operations: every call must return only
// after the coordinator is fully closed, and the parked ops must fail
// with ErrClosed.
func TestSharedRuntimeConcurrentClose(t *testing.T) {
	rt := engine.NewRuntime(2)
	defer rt.Close()
	for round := 0; round < 20; round++ {
		m, a, b := regionChain(t, engine.Options{Runtime: rt})
		parked := make(chan error, 2)
		go func() {
			_, err := m.Recv(b)
			parked <- err
		}()
		go func() {
			// Fill the buffer, then park a second send on the full lane.
			if err := m.Send(a, 0); err != nil {
				parked <- err
				return
			}
			parked <- m.Send(a, 1)
		}()
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := m.Close(); err != nil {
					t.Errorf("concurrent close = %v", err)
				}
			}()
		}
		wg.Wait()
		for i := 0; i < 2; i++ {
			err := waitForErr(t, parked, 5*time.Second, "parked op after close")
			if err != nil && err != engine.ErrClosed {
				t.Errorf("parked op error = %v, want nil or ErrClosed", err)
			}
		}
		if rt.Attached() != 0 {
			t.Fatalf("round %d: Attached() = %d after close, want 0", round, rt.Attached())
		}
	}
}

// TestSharedRuntimeCloseDuringParkedSend: a send parked on a full
// buffer must fail with ErrClosed when the instance detaches from the
// shared pool (the close-while-parked-send path the instance pool
// recycles through).
func TestSharedRuntimeCloseDuringParkedSend(t *testing.T) {
	rt := engine.NewRuntime(2)
	defer rt.Close()
	m, a, _ := regionChain(t, engine.Options{Runtime: rt})
	if err := m.Send(a, 1); err != nil { // fills the Fifo1
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() {
		parked <- m.Send(a, 2) // buffer full: parks
	}()
	time.Sleep(20 * time.Millisecond)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := waitForErr(t, parked, 2*time.Second, "parked send"); err != engine.ErrClosed {
		t.Errorf("parked send error = %v, want ErrClosed", err)
	}
}

// TestSharedRuntimeLivelockIsolation: a τ-livelock in one instance must
// break only that instance's group — a sibling instance sharing the
// same runtime keeps serving.
func TestSharedRuntimeLivelockIsolation(t *testing.T) {
	rt := engine.NewRuntime(2)
	defer rt.Close()
	healthy, a, b := regionChain(t, engine.Options{Runtime: rt})
	defer healthy.Close()

	u := ca.NewUniverse()
	x, y := u.Port("x"), u.Port("y")
	ia, ib := u.Port("ia"), u.Port("ib")
	u.SetDir(ia, ca.DirSource)
	u.SetDir(ib, ca.DirSink)
	auts := []*ca.Automaton{
		prim.Fifo1Full(u, x, y, prim.Token{}), // token cycle with no task:
		prim.Fifo1(u, y, x),                   // spins until the τ budget fires
		prim.Fifo1(u, ia, ib),
	}
	sick, err := engine.NewMultiRegions(u, auts, engine.Options{Runtime: rt, MaxTauBurst: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer sick.Close()
	recvErr := make(chan error, 1)
	go func() {
		_, err := sick.Recv(ib)
		recvErr <- err
	}()
	if err := waitForErr(t, recvErr, 10*time.Second, "livelock propagation"); !errors.Is(err, engine.ErrLivelock) {
		t.Errorf("sick recv error = %v, want ErrLivelock", err)
	}
	// The healthy instance on the same pool is untouched.
	for i := 0; i < 50; i++ {
		go healthy.Send(a, i)
		if v, err := healthy.Recv(b); err != nil || v != i {
			t.Fatalf("healthy recv %d = %v, %v", i, v, err)
		}
	}
}
