// Package engine executes composed connectors at run time.
//
// An Engine is the reactive state machine of §III-B: tasks register
// pending send/receive operations on boundary ports; whenever an operation
// arrives, the engine checks whether some global transition of the
// composite automaton is enabled (all ports in its synchronization set
// have matching pending operations and all data guards hold), fires it,
// distributes data, and completes the involved operations.
//
// The composite automaton is never materialized as a whole unless asked:
// the engine keeps the constituent ("medium") automata and a cache of
// expanded composite states. Ahead-of-time composition (§IV-D) expands the
// full reachable space at construction; just-in-time composition expands a
// composite state the first time it is visited. The cache may be bounded,
// with an eviction policy, implementing the future-work extension of §V-B.
//
// Expansion compiles every joint transition into a ca.Plan (pre-resolved
// guard/action steps with preallocated scratch) and builds a port index
// over the expanded state, so the steady-state firing path is
// allocation-free and proportional to the transitions a newly pended port
// can actually enable — not to the state's out-degree.
package engine
