package engine

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ca"
)

// This file implements asynchronous-region execution: the run-time half
// of ca.PlanRegions. A region is an ordinary Engine extended with *link
// endpoints* — ports backed by bounded queues that stand in for the
// buffer constituents cut out of the region graph. A link endpoint is
// always ready to accept while its queue is non-full and to offer while
// non-empty, so a region decides its fires with purely local information
// and never takes a neighbor's lock while holding its own. After a fire
// changes link state, the firing goroutine re-fires the affected
// neighbors one at a time (processNudges), so cross-region progress
// needs no background goroutines.

// link is the bounded SPSC queue backing one cut buffer constituent.
// The source region pushes (by firing the buffer's accept port), the
// target region pops (by firing its emit port). All pushes happen under
// the source engine's lock and all pops under the target engine's, so
// each index has exactly one writer at a time and the queue needs no
// lock of its own: buf[t] is written before the tail store releases it,
// and any consumer that loaded the new tail acquires that write. The
// two regions therefore never contend on a mutex, no matter how hot the
// link runs.
type link struct {
	buf []any
	// head is advanced only by the consumer, tail only by the producer.
	// pendPop/pendPush count batch items consumed/produced during a fused
	// burst but not yet published: the burst defers the counter store so
	// k items cost one release store per side (commitPops/commitPushes)
	// instead of k — the cross-core handoff is what a hot link pays for.
	// Each pend counter lives with its side's counter and is only ever
	// touched under that side's engine lock (and is zero whenever that
	// lock is released). Padding keeps the two sides on separate cache
	// lines so the regions do not false-share.
	head     atomic.Int64
	pendPop  int64
	_        [48]byte
	tail     atomic.Int64
	pendPush int64
	_        [48]byte

	// src/dst are the producer/consumer region engines. Either may be
	// nil: the link is then a *half link* of a distributed cut (see
	// transport.go) whose far side lives in another process, serviced by
	// a transport pump instead of a sibling engine.
	src, dst         *Engine
	srcPort, dstPort ca.PortID

	// signal, when non-nil, is the transport pump's one-slot coalescing
	// wake-up for a half link: raised (non-blocking) after the local
	// engine publishes commits the pump must observe — fresh pushes on a
	// producer-local half, fresh pops on a consumer-local half.
	signal chan struct{}
}

func newLink(capacity int) *link {
	if capacity < 1 {
		capacity = 1
	}
	return &link{buf: make([]any, capacity)}
}

// push appends v and publishes it. Producer side only (under the source
// engine's lock).
func (l *link) push(v any) {
	l.pushDefer(v)
	l.commitPushes()
}

// pushDefer stages v in the next free slot without publishing it;
// commitPushes publishes the whole staged run with one tail store.
// Producer side only.
func (l *link) pushDefer(v any) {
	t := l.tail.Load() + l.pendPush
	if t-l.head.Load() >= int64(len(l.buf)) {
		panic("engine: push on full region link (gate invariant violated)")
	}
	l.buf[t%int64(len(l.buf))] = v
	l.pendPush++
}

// commitPushes publishes every deferred push. The slot writes above
// happen-before the single release store, exactly as with per-item
// pushes. Producer side only.
func (l *link) commitPushes() {
	if l.pendPush == 0 {
		return
	}
	l.tail.Store(l.tail.Load() + l.pendPush)
	l.pendPush = 0
}

// pop removes, publishes and returns the head value. Consumer side only
// (under the target engine's lock).
func (l *link) pop() any {
	v := l.popDefer()
	l.commitPops()
	return v
}

// popDefer consumes the current head value without publishing the slot
// back to the producer; commitPops publishes the whole consumed run with
// one head store. Consumer side only.
func (l *link) popDefer() any {
	h := l.head.Load() + l.pendPop
	if l.tail.Load() == h {
		panic("engine: pop on empty region link (gate invariant violated)")
	}
	v := l.buf[h%int64(len(l.buf))]
	l.pendPop++
	return v
}

// commitPops clears the consumed slots (so the queue does not pin
// payloads) and frees them to the producer with one head store.
// Consumer side only.
func (l *link) commitPops() {
	if l.pendPop == 0 {
		return
	}
	h := l.head.Load()
	for i := int64(0); i < l.pendPop; i++ {
		l.buf[(h+i)%int64(len(l.buf))] = nil
	}
	l.head.Store(h + l.pendPop)
	l.pendPop = 0
}

// reset empties the queue and re-seeds it from the plan's link spec,
// returning it to its as-constructed state for instance recycling. Both
// sides must be quiescent: the owning coordinator is closed and its
// engines detached from any runtime, so the plain stores cannot race
// (the next attach publishes them, as construction does).
func (l *link) reset(spec ca.RegionLink) {
	for i := range l.buf {
		l.buf[i] = nil
	}
	l.pendPop, l.pendPush = 0, 0
	l.head.Store(0)
	if spec.Full {
		l.buf[0] = spec.Initial
		l.tail.Store(1)
	} else {
		l.tail.Store(0)
	}
}

// peek returns the value the link currently offers: the head shifted
// past any deferred pops. Consumer side only: the slot is stable until
// the consuming region itself commits, and the consumer observed
// non-empty (an acquiring tail load) when its gate bit was set.
func (l *link) peek() any {
	return l.buf[(l.head.Load()+l.pendPop)%int64(len(l.buf))]
}

// avail returns how many items the link still offers the consumer,
// counting deferred pops as gone. Consumer side only.
func (l *link) avail() int {
	return int(l.tail.Load() - l.head.Load() - l.pendPop)
}

// free returns how many items the link still accepts from the producer,
// counting deferred pushes as used. Producer side only; a stale head
// under-reports, which is at worst a shorter fused burst.
func (l *link) free() int {
	return len(l.buf) - int(l.tail.Load()+l.pendPush-l.head.Load())
}

// empty reports whether the queue offers no value. On the consumer side
// this is exact; elsewhere it may be stale-true, which is at worst a
// missed enable that the producer's wake-up repairs.
func (l *link) empty() bool {
	return l.tail.Load() == l.head.Load()+l.pendPop
}

// full reports whether the queue accepts no value. On the producer side
// this is exact; elsewhere it may be stale-true, repaired by the
// consumer's wake-up.
func (l *link) full() bool {
	return l.tail.Load()+l.pendPush-l.head.Load() == int64(len(l.buf))
}

// regionGroup ties the regions of one connector together for error
// propagation — a broken region breaks its siblings, since the
// connector as a whole can no longer honor its protocol — and for the
// τ-livelock budget: completions counts fire passes anywhere in the
// group that moved a boundary operation forward. Scoping the counter to
// the instance (rather than to the worker pool) keeps livelock
// detection sound on a shared runtime, where another instance's healthy
// throughput must not mask this one's closed relay cycle.
type regionGroup struct {
	engines     []*Engine
	completions atomic.Int64
	// breakWG joins the asynchronous break_ propagation goroutines, so
	// instance recycling cannot reset an engine a stale break is still
	// about to touch.
	breakWG sync.WaitGroup
	// onBreak, when non-nil, is invoked (once per break_, from the
	// propagation goroutine) so a network transport can notify the peer
	// nodes of the failure. Set before Start returns, never mutated
	// after.
	onBreak func(error)
}

func (g *regionGroup) breakOthers(src *Engine, err error) {
	for _, e := range g.engines {
		if e != src {
			e.breakExternal(err)
		}
	}
}

// breakExternal marks the engine broken on behalf of a sibling region.
func (e *Engine) breakExternal(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.broken != nil {
		return
	}
	e.break_(err)
}

// addAccept registers an outbound link at port p (the region pushes into
// it when p fires). Several links may accept at one port: a replicated
// node pushes to all of them in the same fire.
func (e *Engine) addAccept(p ca.PortID, l *link) {
	if e.acceptAt == nil {
		e.acceptAt = make(map[ca.PortID][]*link)
	}
	e.acceptAt[p] = append(e.acceptAt[p], l)
}

// addEmit registers an inbound link at port p (the region pops from it
// when p fires). At most one link may emit at a port — link-level merges
// are excluded by the planner.
func (e *Engine) addEmit(p ca.PortID, l *link) {
	if e.emitAt == nil {
		e.emitAt = make(map[ca.PortID]*link)
	}
	if _, dup := e.emitAt[p]; dup {
		panic("engine: two links emitting at one port")
	}
	e.emitAt[p] = l
}

// initLinks finalizes link-endpoint bookkeeping. Must run after all
// addAccept/addEmit calls and before the engine expands any state (the
// compiled plans depend on which ports are link endpoints).
func (e *Engine) initLinks() {
	if len(e.emitAt) == 0 && len(e.acceptAt) == 0 {
		return
	}
	e.linkGate = e.u.NewSet()
	e.linkOK = e.u.NewSet()
	seen := make(map[ca.PortID]bool)
	for p := range e.emitAt {
		if !seen[p] {
			seen[p] = true
			e.gatePorts = append(e.gatePorts, p)
		}
	}
	for p := range e.acceptAt {
		if !seen[p] {
			seen[p] = true
			e.gatePorts = append(e.gatePorts, p)
		}
	}
	sort.Slice(e.gatePorts, func(i, j int) bool { return e.gatePorts[i] < e.gatePorts[j] })
	for _, p := range e.gatePorts {
		e.linkGate.Set(p)
	}
	e.pushVal = make(map[ca.PortID]any)
	e.refreshLinks()
}

// refreshLinks recomputes every link gate bit. Called with mu held.
// Neighbor activity can only turn gates on (they never consume our
// readiness), so a stale bit is at worst a missed enable that the
// neighbor's nudge repairs.
func (e *Engine) refreshLinks() {
	for _, p := range e.gatePorts {
		e.refreshLinkPort(p)
	}
}

func (e *Engine) refreshLinkPort(p ca.PortID) {
	ok := true
	if l := e.emitAt[p]; l != nil && l.empty() {
		ok = false
	}
	if ok {
		for _, l := range e.acceptAt[p] {
			if l.full() {
				ok = false
				break
			}
		}
	}
	if ok {
		e.linkOK.Set(p)
	} else {
		e.linkOK.Clear(p)
	}
}

// fireLinks performs the link effects of a fired transition: pop every
// emitting endpoint in the sync set, push every accepting one, deliver
// popped values to pending receives, and nudge the neighbors whose gates
// changed. Called with mu held, after the plan executed and before
// pending operations are advanced. Reports whether any endpoint was
// touched (link progress resets the τ-livelock counter: a relay region
// completes no boundary operations but still makes global progress).
//
// With deferred set (the fused batch burst), pops and pushes are staged
// on the queues without publishing the head/tail counters and the gate
// bits are left alone; commitLinks publishes the whole burst with one
// store per endpoint and refreshes the gates. The burst's budget
// (fuseBudget) guarantees the staged run never over- or underflows a
// queue.
func (e *Engine) fireLinks(pl *ca.Plan, deferred bool) bool {
	active := false
	for wi := range pl.Sync {
		if wi >= len(e.linkGate) {
			break
		}
		w := pl.Sync[wi] & e.linkGate[wi]
		for w != 0 {
			p := ca.PortID(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
			active = true
			var v any
			fromLink := false
			if l := e.emitAt[p]; l != nil {
				if deferred {
					v = l.popDefer()
				} else {
					v = l.pop()
				}
				fromLink = true
				if o := e.pend[p]; o != nil && !o.send {
					o.vals[o.cur] = v
				}
				if l.src != nil {
					e.noteNudge(l.src)
				} else {
					e.noteSignal(l) // remote producer: signal the ack pump
				}
			}
			if outs := e.acceptAt[p]; len(outs) > 0 {
				if !fromLink {
					if o := e.pend[p]; o != nil && o.send {
						v = o.vals[o.cur]
					} else if pv, ok := e.pushVal[p]; ok {
						v = pv
					}
				}
				for _, l := range outs {
					if deferred {
						l.pushDefer(v)
					} else {
						l.push(v)
					}
					if l.dst != nil {
						e.noteNudge(l.dst)
					} else {
						e.noteSignal(l) // remote consumer: signal the send pump
					}
				}
			}
			if !deferred {
				e.refreshLinkPort(p)
			}
		}
	}
	for p := range e.pushVal {
		delete(e.pushVal, p)
	}
	return active
}

// commitLinks publishes the deferred pops and pushes a fused burst
// staged on the fired plan's link endpoints — one release store per
// endpoint side, regardless of the burst length — and refreshes the
// affected gate bits. Called with mu held.
func (e *Engine) commitLinks(pl *ca.Plan) {
	for wi := range pl.Sync {
		if wi >= len(e.linkGate) {
			break
		}
		w := pl.Sync[wi] & e.linkGate[wi]
		for w != 0 {
			p := ca.PortID(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
			if l := e.emitAt[p]; l != nil {
				l.commitPops()
			}
			for _, l := range e.acceptAt[p] {
				l.commitPushes()
			}
			e.refreshLinkPort(p)
		}
	}
}

// noteNudge records that a fire changed link state visible to neighbor
// t, which must be re-fired once this engine's lock is released. Called
// with mu held; self-nudges are dropped (the running fireLoop rescans).
func (e *Engine) noteNudge(t *Engine) {
	if t == e {
		return
	}
	for _, x := range e.outNudges {
		if x == t {
			return
		}
	}
	e.outNudges = append(e.outNudges, t)
}

// processNudges delivers cross-region wake-ups collected by this
// engine's fires: it locks each noted neighbor in turn — never holding
// two engine locks at once, so lock order cannot deadlock — and runs its
// fire loop, accumulating any nudges those fires produce in turn
// (a token relaying across several regions is walked to quiescence by
// the goroutine that set it in motion). Must be called WITHOUT mu held.
//
// Every link-state change happens inside some engine's fire loop, and
// the goroutine that ran that loop processes its nudges afterwards, so
// no enablement is ever lost: the neighbor's re-fire happens-after the
// change via its lock acquisition.
//
// A closed cycle of links with no task anywhere on it (a token spinning
// through pure relay regions) would keep the walk alive forever; the
// per-engine τ-burst guard cannot see it because each region's own fire
// loop quiesces after one hop. The walk therefore carries its own
// budget, mirroring the single-engine ErrLivelock on τ bursts.
func (e *Engine) processNudges(work []*Engine) {
	visits := 0
	for len(work) > 0 {
		visits++
		if visits > e.opts.MaxTauBurst {
			e.breakExternal(ErrLivelock)
			return
		}
		t := work[0]
		work = work[1:]
		t.mu.Lock()
		if t.closed || t.broken != nil {
			t.mu.Unlock()
			continue
		}
		t.fireLoop(pumpTrigger)
		t.flushSignals()
		more := t.outNudges
		t.outNudges = nil
		t.mu.Unlock()
		// Deduplicate; e itself may be re-enqueued (a downstream pop can
		// reopen our own gates).
		for _, m := range more {
			seen := false
			for _, w := range work {
				if w == m {
					seen = true
					break
				}
			}
			if !seen {
				work = append(work, m)
			}
		}
	}
}

// deliverNudges drains the cross-region wake-ups captured by a register
// call inline. In runtime mode register already posted them as wake-ups
// under the engine lock (flushWakes) and returned nil, so this only
// ever walks in synchronous mode. Must be called WITHOUT mu held.
func (e *Engine) deliverNudges(nudges []*Engine) {
	if len(nudges) == 0 {
		return
	}
	if rt := e.sched; rt != nil {
		for _, t := range nudges {
			rt.wake(t)
		}
		return
	}
	e.processNudges(nudges)
}

// settle runs the initial fire pass of a freshly built region (and its
// ripple effects): initially full links can enable relay fires before
// any task operation arrives.
func (e *Engine) settle() {
	if e.linkGate == nil {
		return
	}
	e.mu.Lock()
	e.fireLoop(pumpTrigger)
	e.flushSignals()
	nudges := e.outNudges
	e.outNudges = nil
	e.mu.Unlock()
	e.processNudges(nudges)
}

// linkCount returns the number of link endpoints attached to the engine.
func (e *Engine) linkCount() int {
	n := len(e.emitAt)
	for _, ls := range e.acceptAt {
		n += len(ls)
	}
	return n
}

// NewMultiRegions partitions the constituents into asynchronous regions
// (ca.PlanRegions): buffer-shaped constituents whose sides attach to
// different regions become bounded links, every other constituent joins
// the region of its shared ports, and link endpoints without a
// constituent get synthesized single-port node automata. Each region is
// an independently locked engine; cross-region coordination happens only
// through the links, so regions fire concurrently.
//
// Compared to NewMulti (connected components), the region cut also
// splits connectors that are one component: any full buffer decouples
// the consensus on its two sides.
func NewMultiRegions(u *ca.Universe, auts []*ca.Automaton, opts Options) (*Multi, error) {
	return NewMultiRegionsBound(u, auts, opts, nil)
}

// NewMultiRegionsBound is NewMultiRegions with a construction hook: after
// each region's link endpoints are finalized (initLinks) and before it
// expands any state, bind is called with the region index, its planned
// spec, and the region engine. Generated backends use it to install
// static templates via Engine.BindGen; a bind that declines (or fails)
// simply leaves that region interpreted, so mixed instances are fine.
func NewMultiRegionsBound(u *ca.Universe, auts []*ca.Automaton, opts Options, bind func(ri int, spec ca.RegionSpec, eng *Engine)) (*Multi, error) {
	return newMultiRegions(u, auts, opts, Placement{}, bind)
}

// NewMultiRegionsPlaced is NewMultiRegions with a placement: only the
// hosted regions get engines in this process, and the links the
// placement splits are backed by the placement's Transport. Ports of
// remote regions stay routable (operations on them report the remote
// hosting), and the coordinator's statistics sum the local regions only.
func NewMultiRegionsPlaced(u *ca.Universe, auts []*ca.Automaton, opts Options, pl Placement) (*Multi, error) {
	if pl.Transport == nil {
		return nil, errors.New("engine: placement without a transport")
	}
	return newMultiRegions(u, auts, opts, pl, nil)
}

func newMultiRegions(u *ca.Universe, auts []*ca.Automaton, opts Options, placed Placement, bind func(ri int, spec ca.RegionSpec, eng *Engine)) (*Multi, error) {
	if len(auts) == 0 {
		return nil, errors.New("engine: no constituent automata")
	}
	for _, a := range auts {
		if a.U != u {
			return nil, errors.New("engine: constituent from foreign universe")
		}
	}
	plan := ca.PlanRegions(u, auts)
	if placed.Hosted != nil && len(placed.Hosted) != len(plan.Regions) {
		return nil, fmt.Errorf("engine: placement hosts %d regions, plan has %d", len(placed.Hosted), len(plan.Regions))
	}
	hosted := func(ri int) bool { return placed.Hosted == nil || placed.Hosted[ri] }
	tr := placed.Transport
	if tr == nil {
		tr = memTransport{}
	}

	group := &regionGroup{}
	m := &Multi{owner: make([]int, u.NumPorts()), regions: true, plan: plan,
		group: group, transport: placed.Transport}
	for i := range m.owner {
		m.owner[i] = -1
	}
	for ri, spec := range plan.Regions {
		sub := make([]*ca.Automaton, 0, len(spec.Auts)+len(spec.Nodes))
		for _, ai := range spec.Auts {
			sub = append(sub, auts[ai])
		}
		for _, p := range spec.Nodes {
			sub = append(sub, ca.NodeAutomaton(u, p))
		}
		// Every port is owned by its planned region, hosted here or not:
		// engineFor uses the map to name the remote hosting in errors.
		for _, a := range sub {
			a.Ports.ForEach(func(p ca.PortID) { m.owner[p] = ri })
		}
		if !hosted(ri) {
			m.engines = append(m.engines, nil)
			continue
		}
		ropts := opts
		// Distinct per-region streams keep each region's choices
		// reproducible for a given seed — the region index is global to
		// the plan, so a region's stream is identical no matter which
		// process hosts it.
		ropts.Seed = opts.Seed + int64(ri)
		eng, err := newEngine(u, sub, ropts)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("engine: region %d: %w", ri, err)
		}
		eng.group = group
		group.engines = append(group.engines, eng)
		m.engines = append(m.engines, eng)
	}

	for li, lk := range plan.Links {
		prodLocal, consLocal := hosted(lk.From), hosted(lk.To)
		if !prodLocal && !consLocal {
			// Both sides remote: the link is some other process's concern.
			m.links = append(m.links, nil)
			continue
		}
		prod, cons, err := tr.Bind(li, lk, prodLocal, consLocal)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("engine: link %d: %w", li, err)
		}
		if prodLocal {
			prod.src, prod.srcPort = m.engines[lk.From], lk.SrcPort
			prod.src.addAccept(lk.SrcPort, prod)
		}
		if consLocal {
			cons.dst, cons.dstPort = m.engines[lk.To], lk.DstPort
			cons.dst.addEmit(lk.DstPort, cons)
		}
		if prodLocal {
			m.links = append(m.links, prod)
		} else {
			m.links = append(m.links, cons)
		}
	}

	for ri, e := range m.engines {
		if e == nil {
			continue
		}
		e.initLinks()
		if bind != nil {
			bind(ri, plan.Regions[ri], e)
		}
		if err := e.finish(); err != nil {
			m.Close()
			return nil, err
		}
	}
	// Connect the transport before any region fires: pumps must exist
	// before a settle pass raises their signals. (The one-slot signal
	// buffer would also hold one early raise, but a blocking network
	// start after settle could not surface dial errors to the caller.)
	if err := tr.Start(m); err != nil {
		m.Close()
		return nil, fmt.Errorf("engine: transport: %w", err)
	}
	switch {
	case opts.Runtime != nil:
		// Shared runtime: the regions multiplex over an existing
		// process-wide pool. attach posts the initial wake of every
		// region, replacing the synchronous settle — relay fires enabled
		// by initially full links happen on the workers before (or
		// concurrently with) the first Send/Recv, which parks until a
		// fire completes its operation either way.
		m.sched = opts.Runtime
		m.sched.attach(group.engines)
	case opts.Workers != 0:
		// Dedicated runtime (runtime.go): a worker pool owned by this
		// coordinator, sized by the caller and torn down at Close.
		m.sched = newDedicatedRuntime(opts.Workers, group.engines)
	default:
		// Settle initially full links (Fifo1Full seeds) so relay fires
		// that need no task operation happen before the first Send/Recv.
		for _, e := range group.engines {
			e.settle()
		}
	}
	return m, nil
}
