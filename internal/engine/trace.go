package engine

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ca"
)

// TraceEvent describes one fired global execution step.
type TraceEvent struct {
	// Step is the 1-based global step number within the engine.
	Step int64
	// Ports are the boundary vertices that fired, with the values
	// observed there (nil for pure synchronization ports).
	Ports []TracePort
	// Internal reports whether the step was a τ step (no boundary
	// operation completed).
	Internal bool
}

// TracePort is one boundary port's part in a step.
type TracePort struct {
	Name string
	Dir  ca.Dir
	Val  any
}

func (e TraceEvent) String() string {
	if e.Internal {
		return fmt.Sprintf("step %d: τ", e.Step)
	}
	parts := make([]string, 0, len(e.Ports))
	for _, p := range e.Ports {
		arrow := "->"
		if p.Dir == ca.DirSink {
			arrow = "<-"
		}
		parts = append(parts, fmt.Sprintf("%s%s%v", p.Name, arrow, p.Val))
	}
	return fmt.Sprintf("step %d: {%s}", e.Step, strings.Join(parts, ", "))
}

// Tracer receives engine events. Callbacks run while the engine lock is
// held: keep them fast and do not call back into the engine.
type Tracer func(TraceEvent)

// SetTracer installs (or clears, with nil) the trace hook.
func (e *Engine) SetTracer(t Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tracer = t
}

// SetTracer installs the hook on every partition.
func (m *Multi) SetTracer(t Tracer) {
	for _, e := range m.engines {
		e.SetTracer(t)
	}
}

// Recorder is a convenience Tracer accumulating events.
type Recorder struct {
	mu     sync.Mutex
	events []TraceEvent
}

// Trace is the Tracer to install.
func (r *Recorder) Trace(e TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a snapshot of the recorded events.
func (r *Recorder) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceEvent(nil), r.events...)
}
