package engine

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ca"
)

// Multi is a partitioned coordinator: the router over independently
// locked engines, for both partition kinds.
//
// NewMulti partitions on connected components of the shared-port graph
// (the optimization of §V-C(3), after Jongmans, Santini & Arbab,
// "Partially distributed coordination with Reo and constraint
// automata"): components share no ports, so no consensus between them is
// ever needed, and the per-state expansion work is exponential only in
// the largest component — not in the whole connector.
//
// NewMultiRegions (region.go) cuts finer: full buffers never require
// consensus across them, so connectors that are a single component still
// decompose into synchronous regions joined by bounded links, each
// firing concurrently.
type Multi struct {
	engines []*Engine
	owner   []int // port -> engine index (-1 if unknown)

	// regions marks a region-partitioned coordinator; plan and links
	// describe the cut (diagnostics). With a placement, engines and
	// links keep plan-aligned indices: entries hosted by another
	// process are nil.
	regions bool
	plan    *ca.RegionPlan
	links   []*link
	group   *regionGroup
	// transport is the placement's link transport (nil for a fully
	// local coordinator); closed by Close after the engines.
	transport Transport
	// sched is the worker pool regions fire on (nil in synchronous
	// mode): a dedicated pool owned by this coordinator, or a shared
	// Runtime multiplexing many coordinators (see runtime.go).
	sched *Runtime

	// closeMu serializes Close and Reset; closed makes Close idempotent
	// (and safe to race), which instance pooling relies on.
	closeMu sync.Mutex
	closed  bool
}

// NewMulti partitions the constituents and builds one engine per
// component. The static analysis is linear in the total automaton size.
func NewMulti(u *ca.Universe, auts []*ca.Automaton, opts Options) (*Multi, error) {
	if len(auts) == 0 {
		return nil, errors.New("engine: no constituent automata")
	}
	uf := ca.NewUnionFind(len(auts))

	// Union constituents sharing any port. portFirst remembers the first
	// constituent seen per port; linear in total port occurrences.
	portFirst := make([]int, u.NumPorts())
	for i := range portFirst {
		portFirst[i] = -1
	}
	for i, a := range auts {
		a.Ports.ForEach(func(p ca.PortID) {
			if portFirst[p] < 0 {
				portFirst[p] = i
			} else {
				uf.Union(portFirst[p], i)
			}
		})
	}

	groups := make(map[int][]*ca.Automaton)
	var order []int
	for i, a := range auts {
		r := uf.Find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], a)
	}

	m := &Multi{owner: make([]int, u.NumPorts())}
	for i := range m.owner {
		m.owner[i] = -1
	}
	for gi, r := range order {
		sub := groups[r]
		eng, err := New(u, sub, opts)
		if err != nil {
			return nil, fmt.Errorf("engine: partition %d: %w", gi, err)
		}
		m.engines = append(m.engines, eng)
		for _, a := range sub {
			a.Ports.ForEach(func(p ca.PortID) { m.owner[p] = gi })
		}
	}
	return m, nil
}

// Partitions returns the number of independent engines.
func (m *Multi) Partitions() int { return len(m.engines) }

// Workers returns the size of the worker pool region engines fire on (0
// when cross-region nudges are drained synchronously on the callers'
// goroutines).
func (m *Multi) Workers() int {
	if m.sched == nil {
		return 0
	}
	return m.sched.Workers()
}

// Runtime returns the worker pool the coordinator's regions fire on
// (nil in synchronous mode).
func (m *Multi) Runtime() *Runtime { return m.sched }

// RegionPartitioned reports whether the coordinator was built by
// NewMultiRegions (buffer-boundary cut) rather than NewMulti
// (connected components).
func (m *Multi) RegionPartitioned() bool { return m.regions }

// Plan returns the region plan behind a region-partitioned coordinator
// (nil for component partitioning).
func (m *Multi) Plan() *ca.RegionPlan { return m.plan }

// PartitionInfo is a per-engine statistics snapshot.
type PartitionInfo struct {
	// Constituents counts the automata executing in the partition
	// (including synthesized node automata for region partitions).
	Constituents int
	// Links counts the link endpoints attached to the partition (always
	// 0 for component partitions).
	Links int
	// Worker is the scheduler worker the partition's run queue is keyed
	// to (its home; idle workers may steal it), or -1 when the
	// coordinator runs synchronously.
	Worker                        int
	Steps, Expansions, GuardEvals int64
}

// Infos returns one statistics snapshot per partition.
// live returns the partition engines hosted in this process (every
// engine for an unplaced coordinator).
func (m *Multi) live() []*Engine {
	if m.group != nil {
		return m.group.engines
	}
	return m.engines
}

func (m *Multi) Infos() []PartitionInfo {
	out := make([]PartitionInfo, len(m.engines))
	for i, e := range m.engines {
		if e == nil {
			out[i] = PartitionInfo{Worker: -1}
			continue
		}
		worker := -1
		if m.sched != nil {
			worker = int(e.homeWorker)
		}
		out[i] = PartitionInfo{
			Constituents: len(e.auts),
			Links:        e.linkCount(),
			Worker:       worker,
			Steps:        e.Steps(),
			Expansions:   e.Expansions(),
			GuardEvals:   e.GuardEvals(),
		}
	}
	return out
}

func (m *Multi) engineFor(p ca.PortID) (*Engine, error) {
	if int(p) >= len(m.owner) || m.owner[p] < 0 {
		return nil, fmt.Errorf("engine: port %d not owned by any partition", p)
	}
	e := m.engines[m.owner[p]]
	if e == nil {
		return nil, fmt.Errorf("engine: port %d is hosted by remote region %d", p, m.owner[p])
	}
	return e, nil
}

// Send routes to the owning partition.
func (m *Multi) Send(p ca.PortID, v any) error {
	e, err := m.engineFor(p)
	if err != nil {
		return err
	}
	return e.Send(p, v)
}

// Recv routes to the owning partition.
func (m *Multi) Recv(p ca.PortID) (any, error) {
	e, err := m.engineFor(p)
	if err != nil {
		return nil, err
	}
	return e.Recv(p)
}

// SendBatch routes to the owning partition: a batch involves exactly one
// port, so the whole batch amortizes against that partition's lock.
func (m *Multi) SendBatch(p ca.PortID, vs []any) (int, error) {
	e, err := m.engineFor(p)
	if err != nil {
		return 0, err
	}
	return e.SendBatch(p, vs)
}

// RecvBatch routes to the owning partition.
func (m *Multi) RecvBatch(p ca.PortID, buf []any) (int, error) {
	e, err := m.engineFor(p)
	if err != nil {
		return 0, err
	}
	return e.RecvBatch(p, buf)
}

// Close closes all partitions, then quiesces the worker pool (if any):
// a dedicated pool is shut down and its workers joined; a shared
// Runtime has the regions detached from it instead, leaving the pool
// running for its other instances. Pending operations in every region
// fail with ErrClosed first, so no in-flight fire pass can complete new
// work after Close returns. Idempotent and safe to call concurrently:
// every call returns only after the coordinator is fully closed.
func (m *Multi) Close() error {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	for _, e := range m.live() {
		e.Close()
	}
	if m.sched != nil {
		if m.sched.dedicated {
			m.sched.shutdown()
		} else {
			m.sched.detach(m.live())
		}
	}
	if m.transport != nil {
		// After the engines: pumps observing closed engines drain and
		// exit, and the peers get the Close frame last.
		m.transport.Close()
	}
	return nil
}

// Reset returns a closed coordinator to its as-constructed state so the
// instance can be recycled instead of rebuilt: engines are reset (see
// Engine.Reset), link queues emptied and re-seeded from the region
// plan, and the regions re-settled — re-attached to the shared Runtime,
// or settled synchronously. Fails if the coordinator is still open, or
// if it owns a dedicated worker pool (that pool was torn down by Close;
// use a shared Runtime for instances meant to be recycled).
func (m *Multi) Reset() error {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	if !m.closed {
		return errors.New("engine: reset of an open coordinator")
	}
	if m.sched != nil && m.sched.dedicated {
		return errors.New("engine: reset of a dedicated-runtime coordinator")
	}
	if m.transport != nil {
		// A placed coordinator's transport tore its connections down at
		// Close; the peers' halves of the links are gone with them.
		return errors.New("engine: reset of a remote-placed coordinator")
	}
	if len(m.engines) > 0 {
		if g := m.engines[0].group; g != nil {
			// Join stale break-propagation goroutines and zero the
			// τ-budget completion counter before touching any engine.
			g.breakWG.Wait()
			g.completions.Store(0)
		}
	}
	for _, e := range m.engines {
		if err := e.Reset(); err != nil {
			return err
		}
	}
	for i, l := range m.links {
		l.reset(m.plan.Links[i])
	}
	for _, e := range m.engines {
		e.mu.Lock()
		if e.linkGate != nil {
			e.refreshLinks()
		}
		e.mu.Unlock()
	}
	m.closed = false
	if m.sched != nil {
		m.sched.attach(m.engines)
	} else {
		for _, e := range m.engines {
			e.settle()
		}
	}
	return nil
}

// Steps sums global steps across the locally hosted partitions.
func (m *Multi) Steps() int64 {
	var n int64
	for _, e := range m.live() {
		n += e.Steps()
	}
	return n
}

// Expansions sums composite-state expansions across the locally hosted
// partitions.
func (m *Multi) Expansions() int64 {
	var n int64
	for _, e := range m.live() {
		n += e.Expansions()
	}
	return n
}

// GuardEvals sums guard-evaluation counts across the locally hosted
// partitions.
func (m *Multi) GuardEvals() int64 {
	var n int64
	for _, e := range m.live() {
		n += e.GuardEvals()
	}
	return n
}

// OpsRegistered sums accepted-operation counts across the locally
// hosted partitions.
func (m *Multi) OpsRegistered() int64 {
	var n int64
	for _, e := range m.live() {
		n += e.OpsRegistered()
	}
	return n
}
