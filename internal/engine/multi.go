package engine

import (
	"errors"
	"fmt"

	"repro/internal/ca"
)

// Multi is a partitioned coordinator (the optimization of §V-C(3), after
// Jongmans, Santini & Arbab, "Partially distributed coordination with Reo
// and constraint automata"): the constituent automata are partitioned into
// connected components of the shared-port graph; each component is an
// independent Engine with its own lock and composite state. Components
// share no ports, so no consensus between them is ever needed, and the
// per-state expansion work is exponential only in the largest component —
// not in the whole connector.
type Multi struct {
	engines []*Engine
	owner   []int // port -> engine index (-1 if unknown)
}

// NewMulti partitions the constituents and builds one engine per
// component. The static analysis is linear in the total automaton size.
func NewMulti(u *ca.Universe, auts []*ca.Automaton, opts Options) (*Multi, error) {
	if len(auts) == 0 {
		return nil, errors.New("engine: no constituent automata")
	}
	parent := make([]int, len(auts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Union constituents sharing any port. portFirst remembers the first
	// constituent seen per port; linear in total port occurrences.
	portFirst := make([]int, u.NumPorts())
	for i := range portFirst {
		portFirst[i] = -1
	}
	for i, a := range auts {
		a.Ports.ForEach(func(p ca.PortID) {
			if portFirst[p] < 0 {
				portFirst[p] = i
			} else {
				union(portFirst[p], i)
			}
		})
	}

	groups := make(map[int][]*ca.Automaton)
	var order []int
	for i, a := range auts {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], a)
	}

	m := &Multi{owner: make([]int, u.NumPorts())}
	for i := range m.owner {
		m.owner[i] = -1
	}
	for gi, r := range order {
		sub := groups[r]
		eng, err := New(u, sub, opts)
		if err != nil {
			return nil, fmt.Errorf("engine: partition %d: %w", gi, err)
		}
		m.engines = append(m.engines, eng)
		for _, a := range sub {
			a.Ports.ForEach(func(p ca.PortID) { m.owner[p] = gi })
		}
	}
	return m, nil
}

// Partitions returns the number of independent components.
func (m *Multi) Partitions() int { return len(m.engines) }

func (m *Multi) engineFor(p ca.PortID) (*Engine, error) {
	if int(p) >= len(m.owner) || m.owner[p] < 0 {
		return nil, fmt.Errorf("engine: port %d not owned by any partition", p)
	}
	return m.engines[m.owner[p]], nil
}

// Send routes to the owning partition.
func (m *Multi) Send(p ca.PortID, v any) error {
	e, err := m.engineFor(p)
	if err != nil {
		return err
	}
	return e.Send(p, v)
}

// Recv routes to the owning partition.
func (m *Multi) Recv(p ca.PortID) (any, error) {
	e, err := m.engineFor(p)
	if err != nil {
		return nil, err
	}
	return e.Recv(p)
}

// Close closes all partitions.
func (m *Multi) Close() error {
	for _, e := range m.engines {
		e.Close()
	}
	return nil
}

// Steps sums global steps across partitions.
func (m *Multi) Steps() int64 {
	var n int64
	for _, e := range m.engines {
		n += e.Steps()
	}
	return n
}

// Expansions sums composite-state expansions across partitions.
func (m *Multi) Expansions() int64 {
	var n int64
	for _, e := range m.engines {
		n += e.Expansions()
	}
	return n
}

// GuardEvals sums guard-evaluation counts across partitions.
func (m *Multi) GuardEvals() int64 {
	var n int64
	for _, e := range m.engines {
		n += e.GuardEvals()
	}
	return n
}
