package engine

import (
	"repro/internal/ca"
)

// intner is the pick randomness jointCache needs (RandomEvict);
// satisfied by both *rand.Rand and the engine's pickRNG.
type intner interface{ Intn(n int) int }

// EvictionPolicy selects which expanded composite state to discard when a
// bounded state cache is full (the §V-B future-work extension).
type EvictionPolicy uint8

const (
	// LRU evicts the least recently used state.
	LRU EvictionPolicy = iota
	// FIFO evicts the state expanded longest ago.
	FIFO
	// RandomEvict evicts a uniformly random state.
	RandomEvict
)

func (p EvictionPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	default:
		return "random"
	}
}

type centry struct {
	key        ca.StateKey
	ex         *expanded
	prev, next *centry
	idx        int // position in entries slice (RandomEvict)
}

// jointCache memoizes composite-state expansions, keyed by packed
// StateKeys so steady-state lookups never allocate. cap == 0 means
// unbounded. Not safe for concurrent use; the engine serializes access.
type jointCache struct {
	cap       int
	policy    EvictionPolicy
	m         map[ca.StateKey]*centry
	head      *centry // most recent (LRU) / newest (FIFO)
	tail      *centry // eviction candidate
	entries   []*centry
	rng       intner
	evictions int64
}

func newJointCache(capacity int, policy EvictionPolicy, rng intner) *jointCache {
	return &jointCache{cap: capacity, policy: policy, m: make(map[ca.StateKey]*centry), rng: rng}
}

func (c *jointCache) len() int { return len(c.m) }

func (c *jointCache) get(key ca.StateKey) (*expanded, bool) {
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	if c.cap > 0 && c.policy == LRU {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.ex, true
}

func (c *jointCache) put(key ca.StateKey, ex *expanded) {
	if _, ok := c.m[key]; ok {
		return
	}
	e := &centry{key: key, ex: ex}
	if c.cap > 0 && len(c.m) >= c.cap {
		c.evict()
	}
	c.m[key] = e
	switch {
	case c.cap == 0:
		// Unbounded: no ordering bookkeeping needed.
	case c.policy == RandomEvict:
		e.idx = len(c.entries)
		c.entries = append(c.entries, e)
	default:
		c.pushFront(e)
	}
}

func (c *jointCache) evict() {
	c.evictions++
	if c.policy == RandomEvict {
		i := c.rng.Intn(len(c.entries))
		victim := c.entries[i]
		last := len(c.entries) - 1
		c.entries[i] = c.entries[last]
		c.entries[i].idx = i
		c.entries = c.entries[:last]
		delete(c.m, victim.key)
		return
	}
	victim := c.tail
	c.unlink(victim)
	delete(c.m, victim.key)
}

func (c *jointCache) pushFront(e *centry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *jointCache) unlink(e *centry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
