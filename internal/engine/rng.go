package engine

// pickRNG is the engine's nondeterministic-choice stream: an
// xorshift64* generator whose entire state is one word, so each of the
// (possibly very many) live engines costs 8 bytes of randomness state
// instead of math/rand's ~5 KB table — and reseeding on instance reset
// is a handful of multiplies rather than a 607-word reinitialization.
// Dispatch picks need uniformity over a handful of candidates, not
// cryptographic quality, and determinism per seed is preserved: the
// same seed always yields the same choice sequence.
type pickRNG struct{ s uint64 }

// reseed (re)initializes the stream for a seed. The seed is passed
// through a splitmix64 finalizer so nearby seeds — region engines use
// opts.Seed + regionIndex — start in uncorrelated states; the state is
// kept nonzero (a zero xorshift state is a fixed point).
func (r *pickRNG) reseed(seed int64) {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	r.s = z
}

// Intn returns a uniform pick in [0, n). n must be > 0 and small (the
// engine picks among enabled transitions or cache entries); the modulo
// bias over the 32-bit output scramble is negligible at those sizes.
func (r *pickRNG) Intn(n int) int {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	x := r.s * 0x2545F4914F6CDD1D
	return int((x >> 32) % uint64(n))
}
