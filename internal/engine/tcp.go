package engine

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/ca"
	"repro/internal/wire"
)

// This file is the network Transport: region links cut across processes,
// carried over TCP as framed batch messages (internal/wire). The design
// maps the in-process link protocol 1:1 onto the wire:
//
//   - A producer-local half link is a *mirror* of the planned queue. The
//     region engine pushes into it exactly as in-process; the send pump
//     transmits every committed value as a Data frame but does NOT pop —
//     slots are freed only when the peer's Ack arrives. The mirror's
//     occupancy is therefore the end-to-end in-flight count, so the
//     producer region observes precisely the planned capacity: no hidden
//     buffering, and the connector's choice behavior (which fires are
//     enabled when) matches the single-process run bit for bit.
//
//   - A consumer-local half link is the real queue. The connection
//     reader pushes arriving bursts (the credit invariant above
//     guarantees space); the region engine pops as in-process; the ack
//     pump watches the head and reports cumulative pops, retiring the
//     producer's mirror slots.
//
// All sequence numbers are absolute value counts from the start of the
// run, Fifo1Full seeds included; the seed itself is pre-loaded on both
// sides and never transmitted. One committed burst becomes one frame,
// so a remote link costs one (coalesced) syscall per burst, not per
// item — the same amortization the in-process deferred commits buy.

// TCPConfig wires one node of a distributed region plan.
type TCPConfig struct {
	// Node is this process's name in Nodes.
	Node string
	// Nodes maps node names to their listen addresses ("host:port").
	// Every node of the plan must appear.
	Nodes map[string]string
	// RegionNode assigns each plan region to a node name (plan-aligned,
	// consistent across all nodes).
	RegionNode []string
	// Listener, when non-nil, is used instead of listening on
	// Nodes[Node] — tests pass a 127.0.0.1:0 listener and read the
	// assigned port back.
	Listener net.Listener
	// Identity is the plan checksum (wire.IdentitySum over the connector
	// identity) exchanged and verified in the handshake.
	Identity uint64
	// DialTimeout bounds connection establishment per peer, retries
	// included (default 10s).
	DialTimeout time.Duration
}

// tcpPeer is one connected neighbor node: a conn, its writer queue, the
// writer goroutine draining the queue through a buffered writer that
// flushes on empty — frames enqueued back-to-back coalesce into one
// syscall — and the aggregated pump state servicing every half link
// shared with this peer. dataLinks/ackLinks and the two signal channels
// are assigned in Start before any goroutine launches and are read-only
// afterwards.
type tcpPeer struct {
	name string
	conn net.Conn
	out  chan *wire.Frame
	// dataLinks are the producer-local halves whose committed values this
	// peer consumes; one send pump services them all, multiplexing
	// concurrent bursts into DataBatch frames. ackLinks are the
	// consumer-local halves whose pops this peer's mirrors wait on; one
	// ack pump coalesces their head advances into AckBatch frames.
	dataLinks []*tcpLink
	ackLinks  []*tcpLink
	// dataSig/ackSig are the shared one-slot coalescing wake-ups the
	// engines raise (via link.signal) when a serviced link's counters
	// move: one channel per pump, not per link, so a pump wake rescans
	// every link it services and batches whatever accumulated.
	dataSig chan struct{}
	ackSig  chan struct{}
}

// tcpLink is one half link: the local queue endpoint plus the pump
// state servicing its remote side.
type tcpLink struct {
	li   int
	spec ca.RegionLink
	l    *link
	peer string
	// prodLocal: the local engine produces; the link is the sender
	// mirror and the pump transmits Data (sent = absolute count
	// transmitted). Otherwise the local engine consumes; the link is
	// the real queue and the pump transmits Acks (ackSent = last
	// cumulative pop count reported).
	prodLocal bool
	sent      int64
	ackSent   int64
}

// TCPTransport implements Transport over per-node-pair TCP connections.
type TCPTransport struct {
	cfg    TCPConfig
	half   []*tcpLink
	byLink map[int]*tcpLink
	// peerMu guards peers during Start only (the dial loop and the
	// accept goroutine register concurrently); the map is read-only
	// once Start returns.
	peerMu sync.Mutex
	peers  map[string]*tcpPeer
	m      *Multi
	ln     net.Listener

	closed    chan struct{}
	closeOnce sync.Once
	failOnce  sync.Once
	pumpWG    sync.WaitGroup
	writerWG  sync.WaitGroup
	readerWG  sync.WaitGroup
}

// NewTCPTransport returns a transport for one node of the plan. Nothing
// connects until Start.
func NewTCPTransport(cfg TCPConfig) *TCPTransport {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	return &TCPTransport{
		cfg:    cfg,
		byLink: make(map[int]*tcpLink),
		peers:  make(map[string]*tcpPeer),
		closed: make(chan struct{}),
	}
}

// Bind implements Transport. Both-local links get a plain shared queue;
// cut links get a seeded half link plus pump state for Start to launch.
func (t *TCPTransport) Bind(li int, spec ca.RegionLink, prodLocal, consLocal bool) (*link, *link, error) {
	if prodLocal && consLocal {
		l := newLink(spec.Capacity)
		seedLink(l, spec)
		return l, l, nil
	}
	if spec.From >= len(t.cfg.RegionNode) || spec.To >= len(t.cfg.RegionNode) {
		return nil, nil, fmt.Errorf("engine: link %d joins region beyond the node assignment", li)
	}
	l := newLink(spec.Capacity)
	seedLink(l, spec)
	// The signal is a placeholder until Start: once the peers are known,
	// every half link sharing a peer-direction is rewired to that pump's
	// shared channel (no engine fires before Start returns, so the swap
	// is unobserved).
	l.signal = make(chan struct{}, 1)
	tl := &tcpLink{li: li, spec: spec, l: l, prodLocal: prodLocal}
	// The absolute counters start past the seed: it is pre-loaded on
	// both sides and never crosses the wire.
	tl.sent = l.tail.Load()
	if prodLocal {
		tl.peer = t.cfg.RegionNode[spec.To]
	} else {
		tl.peer = t.cfg.RegionNode[spec.From]
	}
	if tl.peer == t.cfg.Node {
		return nil, nil, fmt.Errorf("engine: link %d cut but both regions assigned to node %q", li, tl.peer)
	}
	if _, ok := t.cfg.Nodes[tl.peer]; !ok {
		return nil, nil, fmt.Errorf("engine: link %d peers with unknown node %q", li, tl.peer)
	}
	t.half = append(t.half, tl)
	t.byLink[li] = tl
	if prodLocal {
		return l, nil, nil
	}
	return nil, l, nil
}

// Start implements Transport: listen, connect every peer (smaller node
// name dials, with capped-backoff retry; both directions handshake),
// then launch the per-peer reader/writer and per-link pump goroutines.
func (t *TCPTransport) Start(m *Multi) error {
	t.m = m
	if len(t.half) == 0 {
		return nil
	}
	var dialNames, acceptNames []string
	seen := map[string]bool{}
	for _, tl := range t.half {
		if seen[tl.peer] {
			continue
		}
		seen[tl.peer] = true
		if t.cfg.Node < tl.peer {
			dialNames = append(dialNames, tl.peer)
		} else {
			acceptNames = append(acceptNames, tl.peer)
		}
	}
	sort.Strings(dialNames)

	if len(acceptNames) > 0 {
		t.ln = t.cfg.Listener
		if t.ln == nil {
			addr, ok := t.cfg.Nodes[t.cfg.Node]
			if !ok {
				return fmt.Errorf("engine: node %q has no listen address", t.cfg.Node)
			}
			ln, err := net.Listen("tcp", addr)
			if err != nil {
				return fmt.Errorf("engine: listen %s: %w", addr, err)
			}
			t.ln = ln
		}
	}

	// Accept concurrently with dialing: with three or more nodes a peer
	// may be mid-dial to its own peers while we dial it, so serializing
	// accepts after dials could deadlock the fleet.
	accepted := make(chan error, 1)
	go func() { accepted <- t.acceptPeers(acceptNames) }()
	dialErr := t.dialPeers(dialNames)
	acceptErr := <-accepted
	if dialErr != nil || acceptErr != nil {
		t.teardownConns()
		if dialErr != nil {
			return dialErr
		}
		return acceptErr
	}

	// onBreak: a local region failure must break the peers' regions
	// too, not just the local siblings.
	m.group.onBreak = func(err error) {
		for _, p := range t.peers {
			t.send(p, &wire.Frame{Type: wire.FrameError, Err: err.Error()})
		}
	}

	// Group the half links by peer and rewire their signals to the
	// per-peer pump channels — one send pump and one ack pump per peer,
	// no matter how many links it shares with us. Must happen before any
	// reader launches: a reader's pumpNudge can fire an engine, whose
	// flushSignals must raise the pump channel, not the Bind placeholder.
	for _, tl := range t.half {
		p := t.peers[tl.peer]
		if tl.prodLocal {
			if p.dataSig == nil {
				p.dataSig = make(chan struct{}, 1)
			}
			tl.l.signal = p.dataSig
			p.dataLinks = append(p.dataLinks, tl)
		} else {
			if p.ackSig == nil {
				p.ackSig = make(chan struct{}, 1)
			}
			tl.l.signal = p.ackSig
			p.ackLinks = append(p.ackLinks, tl)
		}
	}
	for _, p := range t.peers {
		t.writerWG.Add(1)
		go t.writer(p)
		t.readerWG.Add(1)
		go t.reader(p)
		if len(p.dataLinks) > 0 {
			t.pumpWG.Add(1)
			go t.sendPump(p)
		}
		if len(p.ackLinks) > 0 {
			t.pumpWG.Add(1)
			go t.ackPump(p)
		}
	}
	return nil
}

func (t *TCPTransport) dialPeers(names []string) error {
	for _, name := range names {
		addr := t.cfg.Nodes[name]
		deadline := time.Now().Add(t.cfg.DialTimeout)
		backoff := 50 * time.Millisecond
		var conn net.Conn
		var lastErr error
		for attempts := 0; ; {
			// The deadline may have elapsed mid-backoff; a zero or
			// negative remaining timeout would make DialTimeout dial
			// WITHOUT a deadline, hanging the whole Start on a black-holed
			// peer. Fail fast instead.
			remaining := time.Until(deadline)
			if remaining <= 0 {
				if lastErr == nil {
					lastErr = errors.New("deadline elapsed before the first attempt")
				}
				return fmt.Errorf("engine: dial %s (%s): deadline exceeded after %d attempts: %w", name, addr, attempts, lastErr)
			}
			c, err := net.DialTimeout("tcp", addr, remaining)
			attempts++
			if err == nil {
				conn = c
				break
			}
			lastErr = err
			if time.Now().Add(backoff).After(deadline) {
				return fmt.Errorf("engine: dial %s (%s): deadline exceeded after %d attempts: %w", name, addr, attempts, err)
			}
			// The peer may simply not be up yet: retry with capped
			// exponential backoff until the deadline.
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		if err := t.handshake(conn, name, true); err != nil {
			conn.Close()
			return err
		}
	}
	return nil
}

func (t *TCPTransport) acceptPeers(names []string) error {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	for len(want) > 0 {
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("engine: accept: %w", err)
		}
		if err := t.handshake(conn, "", false); err != nil {
			conn.Close()
			return err
		}
		// handshake registered the peer under its announced name.
		t.peerMu.Lock()
		for n := range want {
			if _, ok := t.peers[n]; ok {
				delete(want, n)
			}
		}
		t.peerMu.Unlock()
	}
	return nil
}

// handshake exchanges Hello frames: the dialer speaks first, the
// acceptor answers. Both verify the identity checksum; the dialer also
// pins the peer name it dialed, the acceptor just requires a name it
// knows.
func (t *TCPTransport) handshake(conn net.Conn, expect string, dialer bool) error {
	conn.SetDeadline(time.Now().Add(t.cfg.DialTimeout))
	defer conn.SetDeadline(time.Time{})
	hello := &wire.Frame{Type: wire.FrameHello, Node: t.cfg.Node, Sum: t.cfg.Identity}
	recv := func() (*wire.Frame, error) {
		f, err := wire.ReadFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("engine: handshake read: %w", err)
		}
		if f.Type == wire.FrameError {
			// The peer refused us and said why; report its reason, not EOF.
			return nil, fmt.Errorf("engine: peer refused connection: %s", f.Err)
		}
		if f.Type != wire.FrameHello {
			return nil, fmt.Errorf("engine: handshake got frame type %d, want hello", f.Type)
		}
		if f.Sum != t.cfg.Identity {
			err := fmt.Errorf("engine: identity mismatch with %q: theirs %#x, ours %#x (different program, seed, or partitioning?)", f.Node, f.Sum, t.cfg.Identity)
			// Tell the peer before hanging up, so both sides report the
			// mismatch instead of one seeing a bare EOF.
			wire.WriteFrame(conn, &wire.Frame{Type: wire.FrameError, Err: err.Error()})
			return nil, err
		}
		return f, nil
	}
	var peerName string
	if dialer {
		if err := wire.WriteFrame(conn, hello); err != nil {
			return fmt.Errorf("engine: handshake write: %w", err)
		}
		f, err := recv()
		if err != nil {
			return err
		}
		if f.Node != expect {
			return fmt.Errorf("engine: dialed %q but %q answered", expect, f.Node)
		}
		peerName = f.Node
	} else {
		f, err := recv()
		if err != nil {
			return err
		}
		if _, ok := t.cfg.Nodes[f.Node]; !ok {
			return fmt.Errorf("engine: hello from unknown node %q", f.Node)
		}
		if err := wire.WriteFrame(conn, hello); err != nil {
			return fmt.Errorf("engine: handshake write: %w", err)
		}
		peerName = f.Node
	}
	t.peerMu.Lock()
	defer t.peerMu.Unlock()
	if _, dup := t.peers[peerName]; dup {
		return fmt.Errorf("engine: duplicate connection from %q", peerName)
	}
	t.peers[peerName] = &tcpPeer{name: peerName, conn: conn, out: make(chan *wire.Frame, 64)}
	return nil
}

func (t *TCPTransport) teardownConns() {
	for _, p := range t.peers {
		p.conn.Close()
	}
	if t.ln != nil && t.ln != t.cfg.Listener {
		t.ln.Close()
	}
}

// send enqueues f to p's writer; never blocks past transport shutdown.
func (t *TCPTransport) send(p *tcpPeer, f *wire.Frame) {
	select {
	case p.out <- f:
	case <-t.closed:
	}
}

// writer drains p.out through a buffered writer, flushing whenever the
// queue runs empty — consecutive bursts coalesce into one syscall. A
// write error marks the peer dead but keeps the loop draining so pumps
// never block; the loop exits only on the FrameClose sentinel Close
// enqueues after the pumps are joined.
func (t *TCPTransport) writer(p *tcpPeer) {
	defer t.writerWG.Done()
	bw := bufio.NewWriterSize(p.conn, 64<<10)
	dead := false
	for f := range p.out {
		if f.Type == wire.FrameClose {
			if !dead {
				wire.WriteFrame(bw, f)
				bw.Flush()
			}
			return
		}
		if dead {
			wire.PutFrame(f)
			continue
		}
		err := wire.WriteFrame(bw, f)
		wire.PutFrame(f)
		if err != nil {
			dead = true
			t.fail(fmt.Errorf("write to %q: %w", p.name, err))
			continue
		}
		if len(p.out) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
				t.fail(fmt.Errorf("flush to %q: %w", p.name, err))
			}
		}
	}
}

// reader dispatches inbound frames. Data and Ack (single or batched)
// drive the half links directly — pushing/retiring slots under the SPSC
// discipline the far engine would — and wake the local engine via
// pumpNudge. The loop decodes into one reused frame and scratch buffer,
// so at steady state it allocates only what the payload values require.
func (t *TCPTransport) reader(p *tcpPeer) {
	defer t.readerWG.Done()
	br := bufio.NewReaderSize(p.conn, 64<<10)
	f := wire.GetFrame()
	defer wire.PutFrame(f)
	var scratch []byte
	for {
		if err := wire.ReadFrameInto(br, f, &scratch); err != nil {
			select {
			case <-t.closed:
				// Local teardown closed the conn under us: not a failure.
			default:
				t.fail(fmt.Errorf("read from %q: %w", p.name, err))
			}
			return
		}
		switch f.Type {
		case wire.FrameData:
			if !t.applyData(p, f.Link, f.Seq, f.Vals) {
				return
			}
		case wire.FrameDataBatch:
			for i := range f.Bursts {
				b := &f.Bursts[i]
				if !t.applyData(p, b.Link, b.Seq, b.Vals) {
					return
				}
			}
		case wire.FrameAck:
			if !t.applyAck(p, f.Link, f.Seq) {
				return
			}
		case wire.FrameAckBatch:
			for _, a := range f.Acks {
				if !t.applyAck(p, a.Link, a.Seq) {
					return
				}
			}
		case wire.FrameClose:
			// Orderly peer shutdown: close the whole coordinator. Must
			// run off this goroutine — Close joins the readers.
			go t.m.Close()
			return
		case wire.FrameError:
			t.breakLocal(fmt.Errorf("node %q: %s: %w", p.name, f.Err, ErrLinkBroken))
			return
		default:
			t.fail(fmt.Errorf("frame type %d from %q", f.Type, p.name))
			return
		}
	}
}

// applyData delivers one inbound burst into its consumer-local queue
// and wakes the consuming region. Returns false (after failing the
// transport) on any protocol violation.
func (t *TCPTransport) applyData(p *tcpPeer, link uint32, seq uint64, vals []any) bool {
	tl, ok := t.byLink[int(link)]
	if !ok || tl.prodLocal {
		t.fail(fmt.Errorf("data from %q for link %d, which this node does not consume", p.name, link))
		return false
	}
	l := tl.l
	tail := l.tail.Load()
	if seq != uint64(tail) {
		t.fail(fmt.Errorf("link %d: burst at seq %d, expected %d", link, seq, tail))
		return false
	}
	n := int64(len(vals))
	if free := int64(len(l.buf)) - (tail - l.head.Load()); n > free {
		// The credit invariant bounds in-flight data to the queue
		// capacity; an overflow can only be a protocol violation.
		t.fail(fmt.Errorf("link %d: burst of %d overflows %d free slots", link, n, free))
		return false
	}
	for i := int64(0); i < n; i++ {
		l.buf[(tail+i)%int64(len(l.buf))] = vals[i]
	}
	l.tail.Store(tail + n)
	l.dst.pumpNudge()
	return true
}

// applyAck retires acknowledged values of a producer-local mirror and
// wakes the producing region. Returns false (after failing the
// transport) on any protocol violation.
func (t *TCPTransport) applyAck(p *tcpPeer, link uint32, seq uint64) bool {
	tl, ok := t.byLink[int(link)]
	if !ok || !tl.prodLocal {
		t.fail(fmt.Errorf("ack from %q for link %d, which this node does not produce", p.name, link))
		return false
	}
	l := tl.l
	head := l.head.Load()
	if seq < uint64(head) || seq > uint64(l.tail.Load()) {
		t.fail(fmt.Errorf("link %d: ack %d outside [%d,%d]", link, seq, head, l.tail.Load()))
		return false
	}
	for i := head; i < int64(seq); i++ {
		l.buf[i%int64(len(l.buf))] = nil
	}
	l.head.Store(int64(seq))
	l.src.pumpNudge()
	return true
}

// sendPump transmits the committed contents of every producer-local
// mirror the peer consumes: on each wake it scans all of them and moves
// every value between the last transmitted index and the published tail.
// One pending link goes out as a classic Data frame; concurrent bursts
// of several links multiplex into a single DataBatch frame — one frame,
// one syscall, no matter how many links woke together. Slots are NOT
// freed — the peer's Ack does that — so the engine sees exactly the
// planned capacity end to end. Frames and their value slices come from
// the wire pool and return to it after the writer flushes them, so the
// steady-state pump is allocation-free.
func (t *TCPTransport) sendPump(p *tcpPeer) {
	defer t.pumpWG.Done()
	for {
		f := wire.GetFrame()
		for _, tl := range p.dataLinks {
			l := tl.l
			tail := l.tail.Load()
			if tail == tl.sent {
				continue
			}
			b := f.NextBurst(uint32(tl.li), uint64(tl.sent))
			size := int64(len(l.buf))
			for i := tl.sent; i < tail; i++ {
				b.Vals = append(b.Vals, l.buf[i%size])
			}
			tl.sent = tail
		}
		switch len(f.Bursts) {
		case 0:
			wire.PutFrame(f)
			select {
			case <-p.dataSig:
			case <-t.closed:
				return
			}
		case 1:
			// A single link's burst keeps the v1 Data shape: the header
			// carries link and seq, saving the batch framing bytes on the
			// (RTT-bound) single-link path.
			b := &f.Bursts[0]
			f.Type, f.Link, f.Seq = wire.FrameData, b.Link, b.Seq
			f.Vals, b.Vals = b.Vals, f.Vals
			f.Bursts = f.Bursts[:0]
			t.send(p, f)
		default:
			f.Type = wire.FrameDataBatch
			t.send(p, f)
		}
	}
}

// ackPump reports the pops of every consumer-local queue the peer
// produces into: on each wake it scans all of them, and every head that
// advanced past its last report joins one cumulative ack — a single Ack
// frame when one link moved, one coalesced AckBatch frame when several
// did. Each entry retires every in-flight burst up to its seq on the
// producer node.
func (t *TCPTransport) ackPump(p *tcpPeer) {
	defer t.pumpWG.Done()
	for {
		f := wire.GetFrame()
		for _, tl := range p.ackLinks {
			head := tl.l.head.Load()
			if head == tl.ackSent {
				continue
			}
			f.Acks = append(f.Acks, wire.Ack{Link: uint32(tl.li), Seq: uint64(head)})
			tl.ackSent = head
		}
		switch len(f.Acks) {
		case 0:
			wire.PutFrame(f)
			select {
			case <-p.ackSig:
			case <-t.closed:
				return
			}
		case 1:
			f.Type, f.Link, f.Seq = wire.FrameAck, f.Acks[0].Link, f.Acks[0].Seq
			f.Acks = f.Acks[:0]
			t.send(p, f)
		default:
			f.Type = wire.FrameAckBatch
			t.send(p, f)
		}
	}
}

// fail reports a transport failure exactly once: the local regions
// break with ErrLinkBroken (pending operations fail), and break
// propagation notifies the peers via onBreak.
func (t *TCPTransport) fail(err error) {
	t.failOnce.Do(func() {
		t.breakLocal(fmt.Errorf("%w: %s", ErrLinkBroken, err))
	})
}

func (t *TCPTransport) breakLocal(err error) {
	for _, e := range t.m.live() {
		e.breakExternal(err)
	}
}

// Close implements Transport: announce an orderly shutdown to every
// peer and join all goroutines. Called by Multi.Close after the local
// engines are closed, so the pumps have nothing more to move.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.pumpWG.Wait()
		for _, p := range t.peers {
			// Direct send (not t.send — closed is already closed): the
			// pumps are joined, so the writer is the only other party on
			// the channel and it always drains to the sentinel.
			p.out <- &wire.Frame{Type: wire.FrameClose}
		}
		t.writerWG.Wait()
		for _, p := range t.peers {
			p.conn.Close()
		}
		t.readerWG.Wait()
		if t.ln != nil {
			t.ln.Close()
		}
	})
	return nil
}
