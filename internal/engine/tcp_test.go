package engine

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestDialDeadlineElapsed: a deadline that expires before (or between)
// attempts must fail fast with a clear error — never reach
// net.DialTimeout with a zero/negative remaining timeout, which would
// dial WITHOUT a deadline and hang Start on a black-holed peer.
func TestDialDeadlineElapsed(t *testing.T) {
	tr := &TCPTransport{cfg: TCPConfig{
		Node:        "a",
		Nodes:       map[string]string{"b": "127.0.0.1:1"},
		DialTimeout: -time.Second, // already elapsed when dialPeers starts
	}}
	err := tr.dialPeers([]string{"b"})
	if err == nil || !strings.Contains(err.Error(), "deadline exceeded after 0 attempts") {
		t.Errorf("elapsed deadline: err %v", err)
	}
}

// TestDialDeadlineExhausted: a peer that refuses connections burns the
// deadline through backoff retries; the error must name the peer and
// count the attempts.
func TestDialDeadlineExhausted(t *testing.T) {
	// Grab a port nothing listens on by binding and immediately closing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	tr := &TCPTransport{cfg: TCPConfig{
		Node:        "a",
		Nodes:       map[string]string{"b": addr},
		DialTimeout: 200 * time.Millisecond,
	}}
	start := time.Now()
	err = tr.dialPeers([]string{"b"})
	if err == nil || !strings.Contains(err.Error(), "deadline exceeded after") {
		t.Errorf("refused peer: err %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("dialPeers took %v, deadline was 200ms", elapsed)
	}
}
