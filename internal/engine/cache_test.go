package engine

import (
	"math/rand"
	"testing"

	"repro/internal/ca"
	"repro/internal/prim"
)

func ck(n uint64) ca.StateKey { return ca.StateKey{n} }

func keys(c *jointCache) map[uint64]bool {
	out := make(map[uint64]bool, len(c.m))
	for k := range c.m {
		out[k[0]] = true
	}
	return out
}

func TestJointCacheLRUEvictionOrder(t *testing.T) {
	c := newJointCache(2, LRU, rand.New(rand.NewSource(1)))
	c.put(ck(1), &expanded{})
	c.put(ck(2), &expanded{})
	// Touch 1 so 2 becomes least recently used.
	if _, ok := c.get(ck(1)); !ok {
		t.Fatal("entry 1 missing")
	}
	c.put(ck(3), &expanded{})
	got := keys(c)
	if !got[1] || !got[3] || got[2] {
		t.Errorf("LRU kept %v, want {1,3}", got)
	}
	if c.evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.evictions)
	}
	// Another insert must now evict 1 (3 was used more recently? no:
	// insertion counts as use; 1 was used before 3 was inserted).
	c.put(ck(4), &expanded{})
	got = keys(c)
	if !got[3] || !got[4] || got[1] {
		t.Errorf("LRU kept %v, want {3,4}", got)
	}
}

func TestJointCacheFIFOIgnoresUse(t *testing.T) {
	c := newJointCache(2, FIFO, rand.New(rand.NewSource(1)))
	c.put(ck(1), &expanded{})
	c.put(ck(2), &expanded{})
	// Touch 1; FIFO must still evict it first (oldest insertion).
	c.get(ck(1))
	c.get(ck(1))
	c.put(ck(3), &expanded{})
	got := keys(c)
	if !got[2] || !got[3] || got[1] {
		t.Errorf("FIFO kept %v, want {2,3}", got)
	}
	if c.evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.evictions)
	}
}

func TestJointCacheRandomEvictBounded(t *testing.T) {
	c := newJointCache(4, RandomEvict, rand.New(rand.NewSource(7)))
	for i := uint64(0); i < 100; i++ {
		c.put(ck(i), &expanded{})
	}
	if c.len() != 4 {
		t.Errorf("len = %d, want 4", c.len())
	}
	if c.evictions != 96 {
		t.Errorf("evictions = %d, want 96", c.evictions)
	}
	// The swap-delete bookkeeping must keep entries and map consistent.
	if len(c.entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(c.entries))
	}
	for i, e := range c.entries {
		if e.idx != i {
			t.Errorf("entries[%d].idx = %d", i, e.idx)
		}
		if c.m[e.key] != e {
			t.Errorf("entries[%d] not in map", i)
		}
	}
}

func TestJointCacheUnboundedNeverEvicts(t *testing.T) {
	c := newJointCache(0, LRU, rand.New(rand.NewSource(1)))
	for i := uint64(0); i < 1000; i++ {
		c.put(ck(i), &expanded{})
	}
	if c.len() != 1000 || c.evictions != 0 {
		t.Errorf("len = %d evictions = %d, want 1000/0", c.len(), c.evictions)
	}
}

// TestReExpansionAfterEviction: with a cache bound of one state, a Fifo1's
// two composite states evict each other on every step, so every revisit
// must re-expand — and the connector must still move data correctly.
func TestReExpansionAfterEviction(t *testing.T) {
	for _, pol := range []EvictionPolicy{LRU, FIFO, RandomEvict} {
		t.Run(pol.String(), func(t *testing.T) {
			u := ca.NewUniverse()
			a, b := u.Port("a"), u.Port("b")
			u.SetDir(a, ca.DirSource)
			u.SetDir(b, ca.DirSink)
			e, err := New(u, []*ca.Automaton{prim.Fifo1(u, a, b)}, Options{CacheSize: 1, Policy: pol, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			const rounds = 10
			for i := 0; i < rounds; i++ {
				if err := e.Send(a, i); err != nil {
					t.Fatal(err)
				}
				v, err := e.Recv(b)
				if err != nil || v != i {
					t.Fatalf("recv = %v, %v; want %d", v, err, i)
				}
			}
			if e.Steps() != 2*rounds {
				t.Errorf("steps = %d, want %d", e.Steps(), 2*rounds)
			}
			// Every step enters the state it just evicted: expansions must
			// track steps, not the two-state space.
			if e.Expansions() < 2*rounds {
				t.Errorf("expansions = %d, want >= %d (cache bound forces re-expansion)", e.Expansions(), 2*rounds)
			}
			if e.Evictions() < 2*rounds-1 {
				t.Errorf("evictions = %d, want >= %d", e.Evictions(), 2*rounds-1)
			}
			if e.CachedStates() != 1 {
				t.Errorf("cached states = %d, want 1", e.CachedStates())
			}
		})
	}
}

func TestJointCachePutExistingIsNoop(t *testing.T) {
	c := newJointCache(2, LRU, rand.New(rand.NewSource(1)))
	ex := &expanded{}
	c.put(ck(1), ex)
	c.put(ck(1), &expanded{})
	got, ok := c.get(ck(1))
	if !ok || got != ex {
		t.Error("re-put replaced the original expansion")
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}
