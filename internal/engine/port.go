package engine

import "repro/internal/ca"

// Coordinator is the operational interface of a connector instance: what
// ports talk to. Both Engine and Multi implement it.
type Coordinator interface {
	Send(p ca.PortID, v any) error
	Recv(p ca.PortID) (any, error)
	// SendBatch registers one operation carrying all of vs and blocks
	// until every item was accepted; RecvBatch fills buf and blocks until
	// every slot was delivered. Both return the number of items moved
	// (short only on error) and amortize one registration — one engine
	// lock acquisition and one completion handshake — over the batch.
	SendBatch(p ca.PortID, vs []any) (int, error)
	RecvBatch(p ca.PortID, buf []any) (int, error)
	Close() error
	Steps() int64
	Expansions() int64
	// GuardEvals reports how many candidate transitions had their guards
	// evaluated while dispatching — the engine's per-step matching work.
	GuardEvals() int64
	// OpsRegistered reports how many port operations have ever been
	// accepted for pending (monotonic; completions do not decrement).
	OpsRegistered() int64
}

var (
	_ Coordinator = (*Engine)(nil)
	_ Coordinator = (*Multi)(nil)
)

// Outport is a task's sending end of a connector boundary vertex
// (the generalized Foster-Chandy model, Fig. 3 of the paper). Send blocks
// until the connector fires a transition accepting the value.
type Outport struct {
	c    Coordinator
	p    ca.PortID
	name string
}

// NewOutport binds a source port to a coordinator.
func NewOutport(c Coordinator, p ca.PortID, name string) *Outport {
	return &Outport{c: c, p: p, name: name}
}

// Send offers v to the connector and blocks until accepted.
func (o *Outport) Send(v any) error { return o.c.Send(o.p, v) }

// SendBatch offers every item of vs in order, as one registered
// operation, and blocks until the last is accepted. Equivalent to
// len(vs) consecutive Send calls, minus len(vs)-1 lock acquisitions and
// handshakes. The batch is an ordered sequence of independent items, not
// an atomic group. The connector reads vs in place: do not mutate it
// until SendBatch returns.
func (o *Outport) SendBatch(vs []any) error {
	_, err := o.c.SendBatch(o.p, vs)
	return err
}

// Name returns the vertex name this outport is linked to.
func (o *Outport) Name() string { return o.name }

// ID returns the underlying port ID.
func (o *Outport) ID() ca.PortID { return o.p }

// Inport is a task's receiving end of a connector boundary vertex.
// Recv blocks until the connector fires a transition delivering a value.
type Inport struct {
	c    Coordinator
	p    ca.PortID
	name string
}

// NewInport binds a sink port to a coordinator.
func NewInport(c Coordinator, p ca.PortID, name string) *Inport {
	return &Inport{c: c, p: p, name: name}
}

// Recv blocks until the connector delivers a value.
func (i *Inport) Recv() (any, error) { return i.c.Recv(i.p) }

// RecvBatch blocks until the connector has delivered one value into
// every slot of buf, in order, as one registered operation. Returns how
// many leading slots hold delivered values: len(buf) on nil error,
// possibly fewer when the connector closed or broke mid-batch.
// Equivalent to len(buf) consecutive Recv calls, minus len(buf)-1 lock
// acquisitions and handshakes.
func (i *Inport) RecvBatch(buf []any) (int, error) { return i.c.RecvBatch(i.p, buf) }

// Name returns the vertex name this inport is linked to.
func (i *Inport) Name() string { return i.name }

// ID returns the underlying port ID.
func (i *Inport) ID() ca.PortID { return i.p }
