package engine_test

import (
	"strings"
	"testing"

	"repro/internal/ca"
	"repro/internal/engine"
	"repro/internal/prim"
)

func TestTraceRecordsSteps(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e, err := engine.New(u, []*ca.Automaton{prim.Fifo1(u, a, b)}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var rec engine.Recorder
	e.SetTracer(rec.Trace)
	e.Send(a, 42)
	v, _ := e.Recv(b)
	if v != 42 {
		t.Fatalf("recv = %v", v)
	}

	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Step != 1 || evs[1].Step != 2 {
		t.Errorf("step numbering: %+v", evs)
	}
	if len(evs[0].Ports) != 1 || evs[0].Ports[0].Name != "a" || evs[0].Ports[0].Val != 42 {
		t.Errorf("first event: %+v", evs[0])
	}
	if evs[1].Ports[0].Dir != ca.DirSink || evs[1].Ports[0].Val != 42 {
		t.Errorf("second event: %+v", evs[1])
	}
	if s := evs[0].String(); !strings.Contains(s, "a->42") {
		t.Errorf("render: %s", s)
	}
	if s := evs[1].String(); !strings.Contains(s, "b<-42") {
		t.Errorf("render: %s", s)
	}

	// Clearing stops recording.
	e.SetTracer(nil)
	e.Send(a, 1)
	if len(rec.Events()) != 2 {
		t.Error("tracer fired after clearing")
	}
}

func TestTraceInternalSteps(t *testing.T) {
	// Chained fifos produce τ steps when the datum shuffles internally.
	u := ca.NewUniverse()
	a, m, b := u.Port("a"), u.Port("m"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e, err := engine.New(u, []*ca.Automaton{prim.Fifo1(u, a, m), prim.Fifo1(u, m, b)}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var rec engine.Recorder
	e.SetTracer(rec.Trace)
	e.Send(a, "x")
	sawInternal := false
	for _, ev := range rec.Events() {
		if ev.Internal {
			sawInternal = true
			if !strings.Contains(ev.String(), "τ") {
				t.Errorf("internal event render: %s", ev)
			}
		}
	}
	if !sawInternal {
		t.Error("no τ step traced for the internal shuffle")
	}
}
