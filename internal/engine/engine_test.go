package engine_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/engine"
	"repro/internal/prim"
)

const tick = 50 * time.Millisecond

// must waits for f to finish within a deadline, failing the test on
// timeout — catches engine deadlocks without hanging the suite.
func within(t *testing.T, d time.Duration, what string, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { defer close(done); f() }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("timeout waiting for %s", what)
	}
}

func newEngine(t *testing.T, u *ca.Universe, auts []*ca.Automaton, opts engine.Options) *engine.Engine {
	t.Helper()
	e, err := engine.New(u, auts, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestEngineSyncTransfersValue(t *testing.T) {
	for _, comp := range []engine.Composition{engine.JIT, engine.AOT} {
		t.Run(fmt.Sprint(comp), func(t *testing.T) {
			u := ca.NewUniverse()
			a, b := u.Port("a"), u.Port("b")
			u.SetDir(a, ca.DirSource)
			u.SetDir(b, ca.DirSink)
			e := newEngine(t, u, []*ca.Automaton{prim.Sync(u, a, b)}, engine.Options{Composition: comp})

			within(t, 5*time.Second, "sync transfer", func() {
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := e.Send(a, 7); err != nil {
						t.Errorf("send: %v", err)
					}
				}()
				v, err := e.Recv(b)
				if err != nil {
					t.Errorf("recv: %v", err)
				}
				if v != 7 {
					t.Errorf("recv = %v, want 7", v)
				}
				wg.Wait()
			})
			if e.Steps() != 1 {
				t.Errorf("steps = %d, want 1", e.Steps())
			}
		})
	}
}

func TestEngineSendBlocksUntilRecv(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e := newEngine(t, u, []*ca.Automaton{prim.Sync(u, a, b)}, engine.Options{})

	sent := make(chan struct{})
	go func() {
		e.Send(a, 1)
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("send on sync completed without a receiver")
	case <-time.After(tick):
	}
	within(t, 5*time.Second, "recv", func() { e.Recv(b) })
	within(t, 5*time.Second, "send completion", func() { <-sent })
}

func TestEngineFifo1Decouples(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e := newEngine(t, u, []*ca.Automaton{prim.Fifo1(u, a, b)}, engine.Options{})

	within(t, 5*time.Second, "buffered send", func() {
		if err := e.Send(a, "x"); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	within(t, 5*time.Second, "buffered recv", func() {
		v, err := e.Recv(b)
		if err != nil || v != "x" {
			t.Errorf("recv = %v, %v", v, err)
		}
	})
}

func TestEngineFifo1FullInitialToken(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e := newEngine(t, u, []*ca.Automaton{prim.Fifo1Full(u, a, b, "tok")}, engine.Options{})

	within(t, 5*time.Second, "initial token recv", func() {
		v, err := e.Recv(b)
		if err != nil || v != "tok" {
			t.Errorf("recv = %v, %v", v, err)
		}
	})
}

// TestEngineFifoChainTau: fifo1(a;m) × fifo1(m;b), m hidden. The datum
// must shuffle through the internal vertex by a spontaneous τ step so both
// buffer slots can be used.
func TestEngineFifoChainTau(t *testing.T) {
	u := ca.NewUniverse()
	a, m, b := u.Port("a"), u.Port("m"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	f1 := ca.Hide(prim.Fifo1(u, a, m), u.SetOf())
	f2 := prim.Fifo1(u, m, b)
	p, err := ca.Product(f1, f2, ca.ProductLimits{})
	if err != nil {
		t.Fatal(err)
	}
	h := ca.Hide(p, u.SetOf(m))
	e := newEngine(t, u, []*ca.Automaton{h}, engine.Options{})

	within(t, 5*time.Second, "two buffered sends", func() {
		e.Send(a, 1)
		e.Send(a, 2)
	})
	within(t, 5*time.Second, "ordered recvs", func() {
		v1, _ := e.Recv(b)
		v2, _ := e.Recv(b)
		if v1 != 1 || v2 != 2 {
			t.Errorf("recvs = %v, %v; want 1, 2", v1, v2)
		}
	})
}

func TestEngineMergerDeliversAll(t *testing.T) {
	u := ca.NewUniverse()
	const n = 8
	var ins []ca.PortID
	for i := 0; i < n; i++ {
		p := u.Port(fmt.Sprintf("in%d", i))
		u.SetDir(p, ca.DirSource)
		ins = append(ins, p)
	}
	out := u.Port("out")
	u.SetDir(out, ca.DirSink)
	e := newEngine(t, u, []*ca.Automaton{prim.Merger(u, ins, out)}, engine.Options{Seed: 1})

	within(t, 10*time.Second, "merger round", func() {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				e.Send(ins[i], i)
			}(i)
		}
		got := map[any]bool{}
		for i := 0; i < n; i++ {
			v, err := e.Recv(out)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if got[v] {
				t.Errorf("duplicate %v", v)
			}
			got[v] = true
		}
		wg.Wait()
		if len(got) != n {
			t.Errorf("got %d distinct values, want %d", len(got), n)
		}
	})
}

func TestEngineReplicatorBroadcast(t *testing.T) {
	u := ca.NewUniverse()
	in := u.Port("in")
	u.SetDir(in, ca.DirSource)
	outs := []ca.PortID{u.Port("o1"), u.Port("o2"), u.Port("o3")}
	for _, o := range outs {
		u.SetDir(o, ca.DirSink)
	}
	e := newEngine(t, u, []*ca.Automaton{prim.Replicator(u, in, outs)}, engine.Options{})

	within(t, 5*time.Second, "broadcast", func() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); e.Send(in, "bc") }()
		for _, o := range outs {
			wg.Add(1)
			go func(o ca.PortID) {
				defer wg.Done()
				v, err := e.Recv(o)
				if err != nil || v != "bc" {
					t.Errorf("recv(%d) = %v, %v", o, v, err)
				}
			}(o)
		}
		wg.Wait()
	})
	if e.Steps() != 1 {
		t.Errorf("broadcast steps = %d, want 1 (single global step)", e.Steps())
	}
}

func TestEngineRouterExclusive(t *testing.T) {
	u := ca.NewUniverse()
	in := u.Port("in")
	u.SetDir(in, ca.DirSource)
	o1, o2 := u.Port("o1"), u.Port("o2")
	u.SetDir(o1, ca.DirSink)
	u.SetDir(o2, ca.DirSink)
	e := newEngine(t, u, []*ca.Automaton{prim.Router(u, in, []ca.PortID{o1, o2})}, engine.Options{Seed: 42})

	// Only o2 has a pending recv: value must route there.
	within(t, 5*time.Second, "exclusive route", func() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); e.Send(in, 9) }()
		v, err := e.Recv(o2)
		if err != nil || v != 9 {
			t.Errorf("recv = %v, %v", v, err)
		}
		wg.Wait()
	})
}

// TestEngineExample1 wires the paper's running example (Fig. 5) from
// primitives and checks the protocol: the communication from A to C
// strictly precedes the communication from B to C, with B's send blocked
// until C received A's message.
func TestEngineExample1(t *testing.T) {
	for _, comp := range []engine.Composition{engine.JIT, engine.AOT} {
		t.Run(fmt.Sprint(comp), func(t *testing.T) {
			u := ca.NewUniverse()
			tl1, tl2 := u.Port("tl1"), u.Port("tl2")
			hd1, hd2 := u.Port("hd1"), u.Port("hd2")
			prev1, prev2 := u.Port("prev1"), u.Port("prev2")
			next1, next2 := u.Port("next1"), u.Port("next2")
			v1, v2 := u.Port("v1"), u.Port("v2")
			w1, w2 := u.Port("w1"), u.Port("w2")
			u.SetDir(tl1, ca.DirSource)
			u.SetDir(tl2, ca.DirSource)
			u.SetDir(hd1, ca.DirSink)
			u.SetDir(hd2, ca.DirSink)

			// Internal vertices keep DirNone: the engine synchronizes
			// constituents on them without requiring pending operations.
			auts := []*ca.Automaton{
				prim.Replicator(u, tl1, []ca.PortID{prev1, v1}),
				prim.Replicator(u, tl2, []ca.PortID{prev2, v2}),
				prim.Fifo1(u, v1, w1),
				prim.Fifo1(u, v2, w2),
				prim.Replicator(u, w1, []ca.PortID{next1, hd1}),
				prim.Replicator(u, w2, []ca.PortID{next2, hd2}),
				prim.Seq(u, []ca.PortID{next1, prev2}),
				prim.Seq(u, []ca.PortID{prev1, next2}),
			}
			e := newEngine(t, u, auts, engine.Options{Composition: comp})

			within(t, 10*time.Second, "example 1 protocol", func() {
				aSent := make(chan struct{})
				bSent := make(chan struct{})
				go func() { e.Send(tl1, "from A"); close(aSent) }()
				<-aSent // A's send completes immediately (fifo empty)

				go func() { e.Send(tl2, "from B"); close(bSent) }()
				select {
				case <-bSent:
					t.Error("B's send completed before C received A's message")
				case <-time.After(tick):
				}

				v, err := e.Recv(hd1)
				if err != nil || v != "from A" {
					t.Errorf("C first recv = %v, %v", v, err)
				}
				<-bSent // now B's send must complete
				v, err = e.Recv(hd2)
				if err != nil || v != "from B" {
					t.Errorf("C second recv = %v, %v", v, err)
				}
			})
		})
	}
}

func TestEngineFilterDropsAndPasses(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	even := func(v any) bool { return v.(int)%2 == 0 }
	e := newEngine(t, u, []*ca.Automaton{prim.Filter(u, a, b, "even", even)}, engine.Options{})

	within(t, 10*time.Second, "filter", func() {
		go func() {
			for i := 1; i <= 6; i++ {
				e.Send(a, i)
			}
		}()
		var got []int
		for len(got) < 3 {
			v, err := e.Recv(b)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = append(got, v.(int))
		}
		want := []int{2, 4, 6}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("got %v, want %v", got, want)
			}
		}
	})
}

func TestEngineFilterOddDroppedWithoutReceiver(t *testing.T) {
	// A filtered-out value must complete the send even with no receiver.
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	even := func(v any) bool { return v.(int)%2 == 0 }
	e := newEngine(t, u, []*ca.Automaton{prim.Filter(u, a, b, "even", even)}, engine.Options{})
	within(t, 5*time.Second, "dropped send", func() {
		if err := e.Send(a, 3); err != nil {
			t.Errorf("send: %v", err)
		}
	})
}

func TestEngineTransformer(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	double := func(v any) any { return v.(int) * 2 }
	e := newEngine(t, u, []*ca.Automaton{prim.Transformer(u, a, b, "double", double)}, engine.Options{})
	within(t, 5*time.Second, "transform", func() {
		go e.Send(a, 21)
		v, err := e.Recv(b)
		if err != nil || v != 42 {
			t.Errorf("recv = %v, %v; want 42", v, err)
		}
	})
}

func TestEngineValveToggle(t *testing.T) {
	u := ca.NewUniverse()
	a, b, ctl := u.Port("a"), u.Port("b"), u.Port("ctl")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	u.SetDir(ctl, ca.DirSource)
	e := newEngine(t, u, []*ca.Automaton{prim.Valve1(u, a, b, ctl)}, engine.Options{})

	within(t, 10*time.Second, "valve", func() {
		// Open: flows.
		go e.Send(a, 1)
		if v, _ := e.Recv(b); v != 1 {
			t.Error("open valve blocked")
		}
		// Close it.
		e.Send(ctl, prim.Token{})
		sent := make(chan struct{})
		go func() { e.Send(a, 2); close(sent) }()
		recvd := make(chan struct{})
		go func() { e.Recv(b); close(recvd) }()
		select {
		case <-recvd:
			t.Error("closed valve let data through")
		case <-time.After(tick):
		}
		// Reopen: the stuck pair must complete.
		e.Send(ctl, prim.Token{})
		<-sent
		<-recvd
	})
}

func TestEngineCloseUnblocks(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e := newEngine(t, u, []*ca.Automaton{prim.Sync(u, a, b)}, engine.Options{})

	errc := make(chan error, 1)
	go func() {
		errc <- e.Send(a, 1)
	}()
	time.Sleep(tick)
	e.Close()
	within(t, 5*time.Second, "unblock on close", func() {
		if err := <-errc; err != engine.ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	})
	if err := e.Send(a, 2); err != engine.ErrClosed {
		t.Errorf("post-close send err = %v", err)
	}
}

func TestEnginePortBusy(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e := newEngine(t, u, []*ca.Automaton{prim.Sync(u, a, b)}, engine.Options{})
	go e.Send(a, 1)
	time.Sleep(tick)
	if err := e.Send(a, 2); err != engine.ErrPortBusy {
		t.Errorf("err = %v, want ErrPortBusy", err)
	}
}

func TestEngineWrongDirection(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e := newEngine(t, u, []*ca.Automaton{prim.Sync(u, a, b)}, engine.Options{})
	if err := e.Send(b, 1); err == nil {
		t.Error("send on sink port must fail")
	}
	if _, err := e.Recv(a); err == nil {
		t.Error("recv on source port must fail")
	}
}

func TestEngineBoundedCacheCorrect(t *testing.T) {
	// A chain of independent fifos visits many composite states; a tiny
	// cache must still behave correctly (recompute evicted states).
	for _, pol := range []engine.EvictionPolicy{engine.LRU, engine.FIFO, engine.RandomEvict} {
		t.Run(pol.String(), func(t *testing.T) {
			u := ca.NewUniverse()
			const n = 4
			var auts []*ca.Automaton
			var as, bs []ca.PortID
			for i := 0; i < n; i++ {
				a := u.Port(fmt.Sprintf("a%d", i))
				b := u.Port(fmt.Sprintf("b%d", i))
				u.SetDir(a, ca.DirSource)
				u.SetDir(b, ca.DirSink)
				as = append(as, a)
				bs = append(bs, b)
				auts = append(auts, prim.Fifo1(u, a, b))
			}
			e := newEngine(t, u, auts, engine.Options{CacheSize: 2, Policy: pol, Seed: 7})

			within(t, 10*time.Second, "bounded cache run", func() {
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						for r := 0; r < 20; r++ {
							e.Send(as[i], r)
						}
					}(i)
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						for r := 0; r < 20; r++ {
							v, err := e.Recv(bs[i])
							if err != nil || v != r {
								t.Errorf("fifo %d recv = %v, %v; want %d", i, v, err, r)
								return
							}
						}
					}(i)
				}
				wg.Wait()
			})
			if e.CachedStates() > 2 {
				t.Errorf("cache grew to %d entries despite bound 2", e.CachedStates())
			}
			if e.Evictions() == 0 {
				t.Error("expected evictions with cache bound 2")
			}
		})
	}
}

func TestMultiPartitionsIndependentSyncs(t *testing.T) {
	u := ca.NewUniverse()
	a1, b1 := u.Port("a1"), u.Port("b1")
	a2, b2 := u.Port("a2"), u.Port("b2")
	for _, p := range []ca.PortID{a1, a2} {
		u.SetDir(p, ca.DirSource)
	}
	for _, p := range []ca.PortID{b1, b2} {
		u.SetDir(p, ca.DirSink)
	}
	m, err := engine.NewMulti(u, []*ca.Automaton{prim.Sync(u, a1, b1), prim.Sync(u, a2, b2)}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Partitions() != 2 {
		t.Fatalf("partitions = %d, want 2", m.Partitions())
	}
	within(t, 5*time.Second, "both partitions", func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); m.Send(a1, 1) }()
		go func() { defer wg.Done(); m.Send(a2, 2) }()
		if v, _ := m.Recv(b1); v != 1 {
			t.Error("partition 1 wrong value")
		}
		if v, _ := m.Recv(b2); v != 2 {
			t.Error("partition 2 wrong value")
		}
		wg.Wait()
	})
}

func TestMultiKeepsCoupledTogether(t *testing.T) {
	u := ca.NewUniverse()
	a, mid, b := u.Port("a"), u.Port("m"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	m, err := engine.NewMulti(u, []*ca.Automaton{prim.Sync(u, a, mid), prim.Sync(u, mid, b)}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Partitions() != 1 {
		t.Fatalf("partitions = %d, want 1 (shared vertex m)", m.Partitions())
	}
}

func TestEngineStepCounting(t *testing.T) {
	u := ca.NewUniverse()
	a, b := u.Port("a"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	e := newEngine(t, u, []*ca.Automaton{prim.Fifo1(u, a, b)}, engine.Options{})
	within(t, 10*time.Second, "counted rounds", func() {
		for i := 0; i < 10; i++ {
			e.Send(a, i)
			e.Recv(b)
		}
	})
	if e.Steps() != 20 {
		t.Errorf("steps = %d, want 20", e.Steps())
	}
}
