package engine

import (
	"runtime"
	"sync"
)

// This file implements the concurrent runtime for region-partitioned
// connectors: a fixed worker pool that runs region engines in response
// to wake-ups. In synchronous mode (no Workers, no Runtime) every
// cross-region nudge is drained inline by the goroutine that fired
// (region.go, processNudges), so a connector cut into eight regions
// still burns one core; with a runtime, a nudge becomes a wake-up
// posted to the pool and the affected regions fire concurrently.
//
// A Runtime comes in two flavors sharing all of the machinery:
//
//   - dedicated: owned by one Multi (Options.Workers != 0), sized by
//     the caller and capped at the region count, shut down when the
//     instance closes — the historical per-instance pool.
//   - shared: process-wide (DefaultRuntime, or any NewRuntime the
//     caller keeps), sized at GOMAXPROCS, multiplexing the regions of
//     arbitrarily many instances over one fixed set of workers.
//     Instances attach at construction and detach at Close; the pool
//     itself is never torn down between instances, so Connect/Close
//     churn spawns no goroutines.
//
// Each engine carries a run state (idle / queued / running / dirty)
// advanced by compare-and-swap, which both deduplicates wake-ups (an
// already-queued engine is not queued twice) and guarantees that no
// enablement is lost: a wake-up arriving while the engine runs flips it
// to dirty, and the finishing worker requeues it, so a fire pass
// happens-after every wake. Engines are assigned a home worker
// round-robin at attach (the run queue is keyed by engine); a worker
// whose own queue is empty steals from its siblings before parking, so
// load imbalance between regions does not idle cores.
//
// Queue entries are hints, not ownership: a worker claims an engine by
// CASing queued→running and silently drops entries that lose the race
// (or whose engine went idle via detach). That is what makes detach
// safe without scanning the queues — a stale entry for a detached or
// even pool-recycled engine is at worst one wasted CAS.

// Engine run states (Engine.schedState).
const (
	// schedIdle: quiescent, not queued; a wake-up must enqueue it.
	schedIdle int32 = iota
	// schedQueued: on some worker's run queue awaiting a fire pass.
	schedQueued
	// schedRunning: a worker is inside its fire pass.
	schedRunning
	// schedDirty: running, and a wake-up arrived meanwhile; the worker
	// requeues the engine when the current pass finishes.
	schedDirty
)

// engineRing is one worker's FIFO run queue: a growable ring so the
// steady state — entries cycling through a warm buffer — allocates
// nothing, no matter how many instances churn through the runtime.
type engineRing struct {
	buf  []*Engine
	head int
	n    int
}

func (r *engineRing) push(e *Engine) {
	if r.n == len(r.buf) {
		grown := make([]*Engine, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
}

func (r *engineRing) pop() *Engine {
	if r.n == 0 {
		return nil
	}
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e
}

// Runtime is a worker pool multiplexing region engines — of one
// connector instance (dedicated mode) or of arbitrarily many (shared
// mode) — over a fixed set of goroutines. The zero value is not usable;
// build one with NewRuntime or use DefaultRuntime.
type Runtime struct {
	mu sync.Mutex
	// queues[w] is worker w's FIFO run queue. One mutex guards them
	// all: enqueues are O(1) and rare relative to the fires a single
	// wake-up batches, so the runtime lock is not the hot path — the
	// hot path (link push/pop) is lock-free.
	queues   []engineRing
	cond     *sync.Cond
	sleeping int
	closed   bool
	wg       sync.WaitGroup
	// nextHome hands out home workers round-robin across attach calls,
	// so the instances of a shared runtime spread over the pool instead
	// of all landing on worker 0.
	nextHome int
	// attached counts currently attached engines (diagnostics).
	attached int
	// dedicated marks a pool owned by a single Multi: Close of that
	// Multi shuts the pool down instead of detaching from it.
	dedicated bool
}

// defaultRuntime is the lazily started process-global pool backing
// instances connected with WithRuntime(nil).
var (
	defaultRuntime     *Runtime
	defaultRuntimeOnce sync.Once
)

// DefaultRuntime returns the process-global shared runtime, starting
// its GOMAXPROCS workers on first use. It is never shut down.
func DefaultRuntime() *Runtime {
	defaultRuntimeOnce.Do(func() {
		defaultRuntime = NewRuntime(0)
	})
	return defaultRuntime
}

// NewRuntime starts a shared runtime with the given number of workers
// (<= 0 selects GOMAXPROCS). Instances attach to it via
// Options.Runtime; Close stops the workers and must only be called
// after every attached instance has been closed.
func NewRuntime(workers int) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return startRuntime(workers, false)
}

// newDedicatedRuntime starts the per-instance pool of one Multi
// (Options.Workers != 0): workers < 0 selects GOMAXPROCS, and the pool
// is capped at the region count (extra workers could never run
// anything).
func newDedicatedRuntime(workers int, engines []*Engine) *Runtime {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	if workers < 1 {
		workers = 1
	}
	rt := startRuntime(workers, true)
	rt.attach(engines)
	return rt
}

func startRuntime(workers int, dedicated bool) *Runtime {
	rt := &Runtime{queues: make([]engineRing, workers), dedicated: dedicated}
	rt.cond = sync.NewCond(&rt.mu)
	rt.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go rt.worker(w)
	}
	return rt
}

// Workers returns the pool size.
func (rt *Runtime) Workers() int { return len(rt.queues) }

// Attached returns the number of engines currently multiplexed over
// the pool (diagnostics; racy by nature on a shared runtime).
func (rt *Runtime) Attached() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.attached
}

// attach hands a fresh (or recycled) instance's engines to the pool:
// assigns home workers, then posts the initial wake of every region —
// the worker-pool replacement for the synchronous settle, since
// initially full links can enable relay fires before any task
// operation arrives. The engines must be quiescent (schedIdle) and not
// attached to any runtime.
func (rt *Runtime) attach(engines []*Engine) {
	rt.mu.Lock()
	for _, e := range engines {
		e.sched = rt
		e.homeWorker = int32(rt.nextHome % len(rt.queues))
		rt.nextHome++
		e.schedState.Store(schedIdle)
	}
	rt.attached += len(engines)
	rt.mu.Unlock()
	for _, e := range engines {
		rt.wake(e)
	}
}

// detach returns a closing instance's engines to the quiescent state so
// they can be recycled (or collected). Every engine must already be
// closed or broken: closed engines produce no wake-ups, so once each
// one is observed idle it stays idle. Entries still sitting in run
// queues are left behind — workers drop them when the queued→running
// claim fails.
func (rt *Runtime) detach(engines []*Engine) {
	for _, e := range engines {
		for {
			st := e.schedState.Load()
			if st == schedIdle {
				break
			}
			// A queued engine can be reclaimed directly: its queue entry
			// becomes stale and is dropped at pop time. Running or dirty
			// means a worker is (about to be) inside a pass; wait it out.
			if st == schedQueued && e.schedState.CompareAndSwap(schedQueued, schedIdle) {
				break
			}
			runtime.Gosched()
		}
		e.sched = nil
	}
	rt.mu.Lock()
	rt.attached -= len(engines)
	rt.mu.Unlock()
}

// wake requests a fire pass for e, deduplicating against one already
// pending. Safe to call with an engine lock held: it only CASes the
// target's run state and takes the runtime lock (engine locks are never
// acquired under the runtime lock).
func (rt *Runtime) wake(e *Engine) {
	for {
		switch st := e.schedState.Load(); st {
		case schedIdle:
			if e.schedState.CompareAndSwap(schedIdle, schedQueued) {
				rt.enqueue(e)
				return
			}
		case schedRunning:
			if e.schedState.CompareAndSwap(schedRunning, schedDirty) {
				return
			}
		default: // queued or dirty: a pass that sees the change is pending
			return
		}
	}
}

func (rt *Runtime) enqueue(e *Engine) {
	rt.mu.Lock()
	if rt.closed {
		// Workers are gone; the engine is (being) closed too, so the
		// pass it asked for has nothing left to do.
		rt.mu.Unlock()
		return
	}
	rt.queues[e.homeWorker].push(e)
	if rt.sleeping > 0 {
		rt.cond.Signal()
	}
	rt.mu.Unlock()
}

// next returns the next queue entry for worker w: its own queue first,
// then stolen from a sibling, else it parks. Returns nil on shutdown.
func (rt *Runtime) next(w int) *Engine {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for {
		if rt.closed {
			return nil
		}
		if e := rt.queues[w].pop(); e != nil {
			return e
		}
		// Steal: scan the siblings round-robin from our right neighbor.
		for i := 1; i < len(rt.queues); i++ {
			if e := rt.queues[(w+i)%len(rt.queues)].pop(); e != nil {
				return e
			}
		}
		rt.sleeping++
		rt.cond.Wait()
		rt.sleeping--
	}
}

func (rt *Runtime) worker(w int) {
	defer rt.wg.Done()
	for {
		e := rt.next(w)
		if e == nil {
			return
		}
		// Claim the entry. A failed claim means the entry is stale — the
		// engine was detached (idle), or another entry for it already ran
		// and it has since been claimed again — and is simply dropped.
		if !e.schedState.CompareAndSwap(schedQueued, schedRunning) {
			continue
		}
		rt.runEngine(e)
	}
}

// runEngine performs one fire pass of e. Wake-ups the pass produced are
// posted by flushWakes while the engine lock is still held (after
// fireLoop returned, so every deferred link commit is published);
// livelock accounting (noteTauProgress) runs there too, against the
// instance's own region group, so one instance's throughput can never
// mask another's relay livelock on a shared pool.
func (rt *Runtime) runEngine(e *Engine) {
	e.mu.Lock()
	if !e.closed && e.broken == nil {
		e.fireLoop(pumpTrigger)
		e.noteTauProgress()
	}
	// Flush nudges even from a pass that broke the engine: link-state
	// changes it made before breaking must still wake the neighbors.
	e.flushWakes()
	e.flushSignals()
	closedNow := e.closed || e.broken != nil
	e.mu.Unlock()
	// Leave the running state: a wake that arrived during the pass
	// flipped it to dirty, and the pass must be rerun — unless the
	// engine is closed or broken, in which case the wake has nothing
	// left to observe and requeueing would keep a dead engine cycling
	// through the pool.
	for {
		if e.schedState.CompareAndSwap(schedRunning, schedIdle) {
			return
		}
		if closedNow {
			if e.schedState.CompareAndSwap(schedDirty, schedIdle) {
				return
			}
		} else if e.schedState.CompareAndSwap(schedDirty, schedQueued) {
			rt.enqueue(e)
			return
		}
	}
}

// Close stops the workers and waits for them to exit. Idempotent. Every
// attached instance must already be closed: pending queue entries are
// dropped, which is only safe because a closed engine's pass has
// nothing to fire. The process-global DefaultRuntime is never closed.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		rt.wg.Wait()
		return nil
	}
	rt.closed = true
	rt.cond.Broadcast()
	rt.mu.Unlock()
	rt.wg.Wait()
	return nil
}

// shutdown is Close under its historical (dedicated-pool) name.
func (rt *Runtime) shutdown() { rt.Close() }

// flushWakes posts the cross-region wake-ups collected by this engine's
// fires to its runtime and resets the buffer in place, so the scheduler
// path re-uses one nudge buffer forever instead of allocating per pass.
// Called with e.mu held, after fireLoop returned — every link commit
// the fires deferred is published by then, so a woken neighbor always
// observes the queue state that enabled it. (Lock order: engine locks
// may take the runtime lock, never the reverse.)
func (e *Engine) flushWakes() {
	if len(e.outNudges) == 0 {
		return
	}
	rt := e.sched
	for _, t := range e.outNudges {
		rt.wake(t)
	}
	e.outNudges = e.outNudges[:0]
}

// noteCompletion records boundary-operation progress for the τ-livelock
// budget shared by the instance's regions. Called with e.mu held after
// a fire pass (on either the register or the worker path).
func (e *Engine) noteCompletion() {
	if e.fireCompleted && e.group != nil {
		e.group.completions.Add(1)
	}
}

// noteTauProgress advances the engine's τ-burst accounting after a
// worker fire pass: link-only passes with no boundary completion
// anywhere in the instance's region group accumulate, and a full
// MaxTauBurst of them means a token is spinning through pure relay
// regions — a closed cycle of links with no task on it — so the engine
// breaks with ErrLivelock, as the synchronous walk budget would. Any
// group-wide completion since the engine's last pass resets the burst:
// healthy global throughput is not a livelock, even if this engine's
// own diet is pure relay. Called with e.mu held; the counters live on
// the engine (one worker runs an engine at a time, so they need no
// atomicity beyond the lock).
func (e *Engine) noteTauProgress() {
	g := e.group
	if g == nil {
		return
	}
	if e.fireCompleted {
		g.completions.Add(1)
		e.linkBurst = 0
		e.lastSeen = g.completions.Load()
		return
	}
	if !e.fireLinkActive {
		return // quiescent visit; produces no wake-ups, cannot spin
	}
	if cur := g.completions.Load(); cur != e.lastSeen {
		e.lastSeen = cur
		e.linkBurst = 1 // this link-only pass starts a fresh window
		return
	}
	e.linkBurst++
	if e.linkBurst > e.opts.MaxTauBurst {
		e.break_(ErrLivelock)
	}
}
