// Package engine executes composed connectors at run time.
//
// An Engine is the reactive state machine of §III-B: tasks register
// pending send/receive operations on boundary ports; whenever an operation
// arrives, the engine checks whether some global transition of the
// composite automaton is enabled (all ports in its synchronization set
// have matching pending operations and all data guards hold), fires it,
// distributes data, and completes the involved operations.
//
// The composite automaton is never materialized as a whole unless asked:
// the engine keeps the constituent ("medium") automata and a cache of
// expanded composite states. Ahead-of-time composition (§IV-D) expands the
// full reachable space at construction; just-in-time composition expands a
// composite state the first time it is visited. The cache may be bounded,
// with an eviction policy, implementing the future-work extension of §V-B.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/ca"
)

// ErrClosed is returned by operations on a closed connector.
var ErrClosed = errors.New("engine: connector closed")

// ErrPortBusy is returned when a second operation is attempted on a port
// that already has one pending. Ports are single-owner.
var ErrPortBusy = errors.New("engine: port already has a pending operation")

// ErrLivelock is returned when the engine fires an excessive burst of
// internal (τ) steps without completing any boundary operation.
var ErrLivelock = errors.New("engine: internal-step livelock")

// Composition selects when composite states are expanded.
type Composition uint8

const (
	// JIT expands a composite state the first time it is reached
	// (just-in-time composition, §IV-D).
	JIT Composition = iota
	// AOT expands the entire reachable composite state space at
	// construction time (ahead-of-time composition, §IV-D).
	AOT
)

// Options configure an Engine.
type Options struct {
	Composition Composition
	Expand      ca.ExpandMode
	// CacheSize bounds the number of expanded composite states retained
	// (0 = unbounded). Ignored for AOT.
	CacheSize int
	Policy    EvictionPolicy
	// Seed makes nondeterministic transition selection reproducible.
	Seed int64
	// MaxStates bounds AOT expansion (0 = 1<<20).
	MaxStates int
	// MaxTauBurst bounds consecutive internal steps (0 = 1<<20).
	MaxTauBurst int
}

type op struct {
	send bool
	val  any
	out  any
	err  error
	done chan struct{}
}

// Engine coordinates one connector instance (or one partition of one).
type Engine struct {
	u    *ca.Universe
	auts []*ca.Automaton
	opts Options

	mu       sync.Mutex
	state    []int32
	cells    []any
	pend     []*op
	pendMask ca.BitSet
	// boundary marks ports with a task attached (source or sink).
	// Ports outside it are internal vertices: they appear in
	// synchronization sets purely to couple constituents and require no
	// pending operation.
	boundary ca.BitSet
	dirs     []ca.Dir
	cache    *jointCache
	rng      *rand.Rand
	closed   bool
	broken   error
	tracer   Tracer

	steps      atomic.Int64
	expansions atomic.Int64
	keyBuf     []byte
}

// New builds an engine over the constituent automata, which must all
// belong to universe u. Port directions are taken from u. For AOT
// composition the reachable composite space is expanded eagerly; ErrTooLarge
// is returned if it exceeds Options.MaxStates — the run-time analogue of
// the existing compiler failing on connectors with huge automata.
func New(u *ca.Universe, auts []*ca.Automaton, opts Options) (*Engine, error) {
	if len(auts) == 0 {
		return nil, errors.New("engine: no constituent automata")
	}
	for _, a := range auts {
		if a.U != u {
			return nil, errors.New("engine: constituent from foreign universe")
		}
		a.PadToUniverse()
	}
	if opts.MaxTauBurst <= 0 {
		opts.MaxTauBurst = 1 << 20
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 1 << 20
	}
	e := &Engine{
		u:        u,
		auts:     auts,
		opts:     opts,
		state:    make([]int32, len(auts)),
		cells:    u.InitialCells(),
		pend:     make([]*op, u.NumPorts()),
		pendMask: u.NewSet(),
		boundary: u.NewSet(),
		dirs:     make([]ca.Dir, u.NumPorts()),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		keyBuf:   make([]byte, 4*len(auts)),
	}
	for p := range e.dirs {
		e.dirs[p] = u.DirOf(ca.PortID(p))
		if e.dirs[p] != ca.DirNone {
			e.boundary.Set(ca.PortID(p))
		}
	}
	for i, a := range auts {
		e.state[i] = a.Initial
	}
	cacheSize := opts.CacheSize
	if opts.Composition == AOT {
		cacheSize = 0 // AOT requires the full space retained
	}
	e.cache = newJointCache(cacheSize, opts.Policy, e.rng)
	if opts.Composition == AOT {
		if err := e.expandAll(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// expanded is the memoized expansion of one composite state.
type expanded struct {
	trans   []ca.Transition
	targets [][]int32
}

func (e *Engine) key(state []int32) string {
	b := e.keyBuf
	for i, v := range state {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

// expandState returns the expansion of the given composite state, using
// the cache. Must be called with mu held.
func (e *Engine) expandState(state []int32) *expanded {
	k := e.key(state)
	if ex, ok := e.cache.get(k); ok {
		return ex
	}
	joints := ca.ExpandJoint(e.auts, state, e.opts.Expand)
	ex := &expanded{
		trans:   make([]ca.Transition, len(joints)),
		targets: make([][]int32, len(joints)),
	}
	for i, j := range joints {
		ex.trans[i] = ca.Transition{Sync: j.Sync, Guards: j.Guards, Acts: j.Acts}
		ex.targets[i] = j.Targets
	}
	e.expansions.Add(1)
	e.cache.put(k, ex)
	return ex
}

// expandAll performs AOT composition: BFS over reachable composite states.
func (e *Engine) expandAll() error {
	seen := map[string]bool{}
	queue := [][]int32{append([]int32(nil), e.state...)}
	seen[e.key(e.state)] = true
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		ex := e.expandState(st)
		for _, tgt := range ex.targets {
			k := e.key(tgt)
			if !seen[k] {
				seen[k] = true
				if len(seen) > e.opts.MaxStates {
					return fmt.Errorf("%w: ahead-of-time composition >%d states", ca.ErrTooLarge, e.opts.MaxStates)
				}
				queue = append(queue, append([]int32(nil), tgt...))
			}
		}
	}
	return nil
}

func (e *Engine) isSource(p ca.PortID) bool { return e.dirs[p] == ca.DirSource }
func (e *Engine) isSink(p ca.PortID) bool   { return e.dirs[p] == ca.DirSink }

func (e *Engine) portVal(p ca.PortID) any {
	if o := e.pend[p]; o != nil {
		return o.val
	}
	return nil
}

// Send registers a send operation on port p and blocks until a transition
// involving p fires (completing the operation) or the connector closes.
func (e *Engine) Send(p ca.PortID, v any) error {
	o, err := e.register(p, true, v)
	if err != nil {
		return err
	}
	<-o.done
	return o.err
}

// Recv registers a receive operation on port p and blocks until a value is
// delivered or the connector closes.
func (e *Engine) Recv(p ca.PortID) (any, error) {
	o, err := e.register(p, false, nil)
	if err != nil {
		return nil, err
	}
	<-o.done
	return o.out, o.err
}

func (e *Engine) register(p ca.PortID, send bool, v any) (*op, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if e.broken != nil {
		return nil, e.broken
	}
	if int(p) >= len(e.pend) {
		return nil, fmt.Errorf("engine: unknown port %d", p)
	}
	if send && e.dirs[p] != ca.DirSource {
		return nil, fmt.Errorf("engine: send on non-source port %q", e.u.Name(p))
	}
	if !send && e.dirs[p] != ca.DirSink {
		return nil, fmt.Errorf("engine: recv on non-sink port %q", e.u.Name(p))
	}
	if e.pend[p] != nil {
		return nil, ErrPortBusy
	}
	o := &op{send: send, val: v, done: make(chan struct{})}
	e.pend[p] = o
	e.pendMask.Set(p)
	e.fireLoop()
	return o, nil
}

// fireLoop fires enabled transitions until quiescence. Called with mu held.
func (e *Engine) fireLoop() {
	if e.broken != nil {
		return
	}
	tau := 0
	for {
		ex := e.expandState(e.state)
		var enabled []int
		var envs []*ca.Env
		for i := range ex.trans {
			t := &ex.trans[i]
			// Enabled iff every *boundary* port in the sync set has a
			// pending operation; internal vertices need none.
			if !t.Sync.MaskedSubsetOf(e.boundary, e.pendMask) {
				continue
			}
			env := ca.NewEnv(t, e.cells, e.isSource, e.portVal)
			ok, err := env.CheckGuards()
			if err != nil {
				e.break_(err)
				return
			}
			if ok {
				enabled = append(enabled, i)
				envs = append(envs, env)
			}
		}
		if len(enabled) == 0 {
			return
		}
		pick := 0
		if len(enabled) > 1 {
			pick = e.rng.Intn(len(enabled))
		}
		ti := enabled[pick]
		t := &ex.trans[ti]
		res, err := envs[pick].Execute(e.isSink)
		if err != nil {
			e.break_(err)
			return
		}
		for c, v := range res.CellWrites {
			e.cells[c] = v
		}
		completedAny := false
		var traced []TracePort
		t.Sync.ForEach(func(p ca.PortID) {
			o := e.pend[p]
			if o == nil {
				return // internal vertex; no operation to complete
			}
			if !o.send {
				o.out = res.Delivered[p]
			}
			if e.tracer != nil {
				val := o.val
				if !o.send {
					val = o.out
				}
				traced = append(traced, TracePort{Name: e.u.Name(p), Dir: e.dirs[p], Val: val})
			}
			e.pend[p] = nil
			e.pendMask.Clear(p)
			close(o.done)
			completedAny = true
		})
		copy(e.state, ex.targets[ti])
		step := e.steps.Add(1)
		if e.tracer != nil {
			e.tracer(TraceEvent{Step: step, Ports: traced, Internal: !completedAny})
		}
		if completedAny {
			tau = 0
		} else {
			tau++
			if tau > e.opts.MaxTauBurst {
				e.break_(ErrLivelock)
				return
			}
		}
	}
}

// break_ marks the engine broken and fails all pending operations.
// Called with mu held.
func (e *Engine) break_(err error) {
	e.broken = err
	for p, o := range e.pend {
		if o == nil {
			continue
		}
		o.err = err
		e.pend[p] = nil
		e.pendMask.Clear(ca.PortID(p))
		close(o.done)
	}
}

// Close shuts the connector down, failing all pending and future
// operations with ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	for p, o := range e.pend {
		if o == nil {
			continue
		}
		o.err = ErrClosed
		e.pend[p] = nil
		e.pendMask.Clear(ca.PortID(p))
		close(o.done)
	}
	return nil
}

// Steps returns the number of global execution steps fired so far — the
// metric of the paper's connector benchmarks (§V-B).
func (e *Engine) Steps() int64 { return e.steps.Load() }

// Expansions returns how many composite states have been expanded
// (cache misses), a measure of composition work done at run time.
func (e *Engine) Expansions() int64 { return e.expansions.Load() }

// CachedStates returns the number of composite states currently retained.
func (e *Engine) CachedStates() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache.len()
}

// Evictions returns how many cache entries have been evicted.
func (e *Engine) Evictions() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache.evictions
}

// Universe returns the instance universe (for diagnostics).
func (e *Engine) Universe() *ca.Universe { return e.u }
