package engine

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/ca"
)

// ErrClosed is returned by operations on a closed connector.
var ErrClosed = errors.New("engine: connector closed")

// ErrPortBusy is returned when a second operation is attempted on a port
// that already has one pending. Ports are single-owner.
var ErrPortBusy = errors.New("engine: port already has a pending operation")

// ErrLivelock is returned when the engine fires an excessive burst of
// internal (τ) steps without completing any boundary operation.
var ErrLivelock = errors.New("engine: internal-step livelock")

// Composition selects when composite states are expanded.
type Composition uint8

const (
	// JIT expands a composite state the first time it is reached
	// (just-in-time composition, §IV-D).
	JIT Composition = iota
	// AOT expands the entire reachable composite state space at
	// construction time (ahead-of-time composition, §IV-D).
	AOT
)

// Options configure an Engine.
type Options struct {
	Composition Composition
	Expand      ca.ExpandMode
	// CacheSize bounds the number of expanded composite states retained
	// (0 = unbounded). Ignored for AOT.
	CacheSize int
	Policy    EvictionPolicy
	// Seed makes nondeterministic transition selection reproducible.
	Seed int64
	// MaxStates bounds AOT expansion (0 = 1<<20).
	MaxStates int
	// MaxTauBurst bounds consecutive internal steps (0 = 1<<20).
	MaxTauBurst int
	// Workers selects the dedicated concurrent runtime for
	// NewMultiRegions: the number of pool workers region engines fire on
	// (capped at the region count), with cross-region nudges posted as
	// wake-ups. 0 runs the synchronous nudge-draining path on the
	// callers' goroutines; negative means GOMAXPROCS. Ignored outside
	// region partitioning, and mutually exclusive with Runtime.
	Workers int
	// Runtime attaches the region engines to a shared worker pool
	// (runtime.go) instead of starting a dedicated one: many instances
	// multiplex over its fixed workers, and Close detaches rather than
	// tearing the pool down. Only meaningful for NewMultiRegions.
	Runtime *Runtime
}

// op is one pending port operation. Every op is a batch: vals holds the
// items — the values to send on a source port, or the destination buffer
// of a receive on a sink port — and cur counts how many of them fired
// transitions have already moved. Scalar Send/Recv are the k=1 case on
// the same code path: they alias the one-slot inline array, so the pool
// round-trip stays allocation-free and the firing path never branches on
// scalar-vs-batch.
type op struct {
	send bool
	// vals are the operation's items; the engine reads/writes vals[cur]
	// and the op completes when cur reaches len(vals). Batched operations
	// alias the caller's slice (the caller must not touch it until the
	// operation returns); scalar operations alias inline.
	vals   []any
	cur    int
	inline [1]any
	err    error
	// done carries the single completion signal. It is buffered so the
	// engine never blocks signaling it, and reusable so completed ops can
	// return to the pool instead of being reallocated per operation.
	done chan struct{}
}

// remaining returns how many items the op still has to move.
func (o *op) remaining() int { return len(o.vals) - o.cur }

// Engine coordinates one connector instance (or one partition of one).
type Engine struct {
	u    *ca.Universe
	auts []*ca.Automaton
	opts Options

	mu    sync.Mutex
	state []int32
	cells []any
	// initCells snapshots the initial cell values so Reset can restore
	// them without allocating.
	initCells []any
	pend      []*op
	pendMask  ca.BitSet
	// boundary marks ports with a task attached (source or sink).
	// Ports outside it are internal vertices: they appear in
	// synchronization sets purely to couple constituents and require no
	// pending operation.
	boundary ca.BitSet
	dirs     []ca.Dir
	cache    *jointCache
	packer   *ca.StatePacker
	rng      pickRNG
	closed   bool
	broken   error
	tracer   Tracer
	// enabledBuf is the reusable candidate buffer of fireLoop.
	enabledBuf []int32
	opPool     sync.Pool

	// Region-link support (see region.go). All nil/empty unless the
	// engine is one region of a NewMultiRegions coordinator.
	//
	// emitAt maps a port to the inbound link offering values at it;
	// acceptAt maps a port to the outbound links consuming from it.
	// linkGate marks ports with any endpoint; linkOK the subset whose
	// queue conditions (non-empty to emit, non-full to accept) currently
	// hold. pushVal buffers plan-computed values for accepting ports
	// within one fire. outNudges collects the neighbor regions whose
	// gates this engine's fires changed; the goroutine that fired drains
	// it after releasing the lock (see processNudges).
	emitAt    map[ca.PortID]*link
	acceptAt  map[ca.PortID][]*link
	gatePorts []ca.PortID
	linkGate  ca.BitSet
	linkOK    ca.BitSet
	pushVal   map[ca.PortID]any
	outNudges []*Engine
	// outSignals collects the half links (transport.go) whose queue
	// state this engine's fires changed; flushed (with mu held, after
	// fireLoop publishes its commits) as coalescing pump wake-ups.
	outSignals []*link
	group      *regionGroup

	// Worker-runtime support (runtime.go). sched is non-nil when the
	// engine is a region of a coordinator attached to a Runtime
	// (dedicated via Options.Workers, or shared via Options.Runtime);
	// nudges are then posted to it as wake-ups instead of drained
	// inline. schedState is the engine's run state (idle/queued/running/
	// dirty) advanced by CAS; homeWorker the queue assignment of the
	// current attach. fireCompleted/fireLinkActive report, per fireLoop
	// call (under mu), whether the pass moved any boundary operation
	// forward (a batched operation's item progress counts, and a fused
	// k-step is k items of progress) / touched any link — the runtime's
	// τ-budget signals. linkBurst/lastSeen are the engine's τ-burst
	// accounting against its group's completion counter (one worker runs
	// an engine at a time; both are touched only under mu).
	// gen, when non-nil, switches the fire loop to a generated region
	// template bound by BindGen (see gen.go). Everything outside the
	// loop — ops, links, nudges, runtime, close/break/reset — is shared.
	gen *genMode

	sched          *Runtime
	schedState     atomic.Int32
	homeWorker     int32
	fireCompleted  bool
	fireLinkActive bool
	linkBurst      int
	lastSeen       int64

	steps      atomic.Int64
	expansions atomic.Int64
	guardEvals atomic.Int64
	registered atomic.Int64
}

// New builds an engine over the constituent automata, which must all
// belong to universe u. Port directions are taken from u. For AOT
// composition the reachable composite space is expanded eagerly; ErrTooLarge
// is returned if it exceeds Options.MaxStates — the run-time analogue of
// the existing compiler failing on connectors with huge automata.
func New(u *ca.Universe, auts []*ca.Automaton, opts Options) (*Engine, error) {
	e, err := newEngine(u, auts, opts)
	if err != nil {
		return nil, err
	}
	if err := e.finish(); err != nil {
		return nil, err
	}
	return e, nil
}

// newEngine builds the engine without expanding any state, so region
// construction can attach link endpoints first (compiled plans depend on
// which ports are link endpoints). finish completes construction.
func newEngine(u *ca.Universe, auts []*ca.Automaton, opts Options) (*Engine, error) {
	if len(auts) == 0 {
		return nil, errors.New("engine: no constituent automata")
	}
	for _, a := range auts {
		if a.U != u {
			return nil, errors.New("engine: constituent from foreign universe")
		}
		a.PadToUniverse()
	}
	if opts.MaxTauBurst <= 0 {
		opts.MaxTauBurst = 1 << 20
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 1 << 20
	}
	e := &Engine{
		u:         u,
		auts:      auts,
		opts:      opts,
		state:     make([]int32, len(auts)),
		cells:     u.InitialCells(),
		initCells: u.InitialCells(),
		pend:      make([]*op, u.NumPorts()),
		pendMask:  u.NewSet(),
		boundary:  u.NewSet(),
		dirs:      make([]ca.Dir, u.NumPorts()),
		packer:    ca.NewStatePacker(auts),
	}
	e.rng.reseed(opts.Seed)
	for p := range e.dirs {
		e.dirs[p] = u.DirOf(ca.PortID(p))
		if e.dirs[p] != ca.DirNone {
			e.boundary.Set(ca.PortID(p))
		}
	}
	for i, a := range auts {
		e.state[i] = a.Initial
	}
	cacheSize := opts.CacheSize
	if opts.Composition == AOT {
		cacheSize = 0 // AOT requires the full space retained
	}
	e.cache = newJointCache(cacheSize, opts.Policy, &e.rng)
	return e, nil
}

// finish completes construction after any link endpoints are attached:
// for AOT composition the reachable composite space is expanded now.
func (e *Engine) finish() error {
	if e.opts.Composition == AOT {
		return e.expandAll()
	}
	return nil
}

// expanded is the memoized expansion of one composite state: every joint
// transition compiled to a plan, plus dispatch indexes over them.
type expanded struct {
	plans   []*ca.Plan
	targets [][]int32
	// byPort[p] lists (ascending) the plans whose sync set contains
	// boundary port p: the only transitions a fresh operation on p can
	// newly enable. A map keyed by the ports that actually occur keeps
	// per-state memory proportional to the state's transitions, not to
	// the universe size.
	byPort map[ca.PortID][]int32
	// taus lists plans with no boundary port in their sync set; they need
	// no pending operation and are always dispatch candidates.
	taus []int32
	// flow[i] marks plan i as a pure flow: no guards, no cell writes, and
	// a target state equal to the source state. Firing it changes nothing
	// the dispatch scan depends on except operation cursors and link
	// queues, so a pending batch can fuse up to k consecutive firings of
	// it into one dispatch decision (fireLoop's fused fast path).
	flow []bool
}

func (e *Engine) dirOf(p ca.PortID) ca.Dir {
	if int(p) >= len(e.dirs) {
		return ca.DirNone
	}
	return e.dirs[p]
}

// planDir classifies ports for plan compilation. It agrees with the
// universe's boundary directions except at link endpoints: an emitting
// endpoint behaves as a source (the plan reads its value from the queue
// head via PlanPortVal), and an accepting endpoint with no other value
// origin behaves as a sink (the plan computes and delivers the value the
// region must push).
func (e *Engine) planDir(p ca.PortID) ca.Dir {
	if e.emitAt != nil {
		if _, ok := e.emitAt[p]; ok {
			return ca.DirSource
		}
	}
	d := e.dirOf(p)
	if d == ca.DirNone && e.acceptAt != nil {
		if _, ok := e.acceptAt[p]; ok {
			return ca.DirSink
		}
	}
	return d
}

// gated reports whether port p participates in dispatch indexing: either
// a task boundary port (needs a pending operation) or a link endpoint
// (needs its queue condition).
func (e *Engine) gated(p ca.PortID) bool {
	return e.boundary.Has(p) || (e.linkGate != nil && e.linkGate.Has(p))
}

// expandState returns the expansion of the given composite state, using
// the cache. Must be called with mu held.
func (e *Engine) expandState(state []int32) *expanded {
	k := e.packer.Key(state)
	if ex, ok := e.cache.get(k); ok {
		return ex
	}
	joints := ca.ExpandJoint(e.auts, state, e.opts.Expand)
	ex := &expanded{
		plans:   make([]*ca.Plan, len(joints)),
		targets: make([][]int32, len(joints)),
		byPort:  make(map[ca.PortID][]int32),
		flow:    make([]bool, len(joints)),
	}
	for i, j := range joints {
		t := &ca.Transition{Sync: j.Sync, Guards: j.Guards, Acts: j.Acts}
		ex.plans[i] = ca.CompilePlan(t, e.planDir)
		ex.targets[i] = j.Targets
		flow := ex.plans[i].Guards() == 0 && ex.plans[i].CellWrites() == 0
		for ai := 0; flow && ai < len(j.Targets); ai++ {
			if j.Targets[ai] != state[ai] {
				flow = false
			}
		}
		ex.flow[i] = flow
		hasGate := false
		j.Sync.ForEach(func(p ca.PortID) {
			if e.gated(p) {
				ex.byPort[p] = append(ex.byPort[p], int32(i))
				hasGate = true
			}
		})
		if !hasGate {
			ex.taus = append(ex.taus, int32(i))
		}
	}
	e.expansions.Add(1)
	e.cache.put(k, ex)
	return ex
}

// expandAll performs AOT composition: BFS over reachable composite states.
func (e *Engine) expandAll() error {
	seen := map[ca.StateKey]bool{e.packer.Key(e.state): true}
	queue := [][]int32{append([]int32(nil), e.state...)}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		ex := e.expandState(st)
		for _, tgt := range ex.targets {
			k := e.packer.Key(tgt)
			if !seen[k] {
				seen[k] = true
				if len(seen) > e.opts.MaxStates {
					return fmt.Errorf("%w: ahead-of-time composition >%d states", ca.ErrTooLarge, e.opts.MaxStates)
				}
				queue = append(queue, append([]int32(nil), tgt...))
			}
		}
	}
	return nil
}

// PlanPortVal implements ca.PlanHost: the pending operation's current
// item on a source port, or the value the inbound link currently offers
// at it (the head, shifted past any pops deferred by a fused burst).
func (e *Engine) PlanPortVal(p ca.PortID) any {
	if o := e.pend[p]; o != nil && o.send {
		return o.vals[o.cur]
	}
	if e.emitAt != nil {
		if l := e.emitAt[p]; l != nil {
			return l.peek()
		}
	}
	return nil
}

// PlanDeliver implements ca.PlanHost: hand a fired value to the pending
// receive's current batch slot on a sink port, and stage it for any
// outbound links accepting at the port (pushed by fireLinks once the
// step commits).
func (e *Engine) PlanDeliver(p ca.PortID, v any) {
	if o := e.pend[p]; o != nil && !o.send {
		o.vals[o.cur] = v
	}
	if e.acceptAt != nil {
		if _, ok := e.acceptAt[p]; ok {
			e.pushVal[p] = v
		}
	}
}

// Send registers a send operation on port p and blocks until a transition
// involving p fires (completing the operation) or the connector closes.
func (e *Engine) Send(p ca.PortID, v any) error {
	o := e.getOp(true)
	o.inline[0] = v
	o.vals = o.inline[:1]
	_, err := e.runOp(p, o)
	return err
}

// Recv registers a receive operation on port p and blocks until a value is
// delivered or the connector closes.
func (e *Engine) Recv(p ca.PortID) (any, error) {
	o := e.getOp(false)
	o.vals = o.inline[:1]
	nudges, err := e.register(p, o)
	if err != nil {
		e.putOp(o)
		return nil, err
	}
	e.deliverNudges(nudges)
	<-o.done
	out, err := o.inline[0], o.err
	e.putOp(o)
	return out, err
}

// SendBatch registers one operation carrying all of vs on port p and
// blocks until every item has been accepted by a fired transition (or
// the connector closes/breaks). The batch is an ordered sequence of
// independent items, not an atomic group: items are accepted one
// transition firing at a time, exactly as len(vs) consecutive Send calls
// would be, but under a single engine-lock registration and a single
// completion handshake. Returns how many items were accepted (always
// len(vs) on nil error). The engine reads vs in place; the caller must
// not mutate it until SendBatch returns. An empty batch is a no-op.
func (e *Engine) SendBatch(p ca.PortID, vs []any) (int, error) {
	if len(vs) == 0 {
		return 0, nil
	}
	o := e.getOp(true)
	o.vals = vs
	return e.runOp(p, o)
}

// RecvBatch registers one operation that fills buf and blocks until
// len(buf) values have been delivered (or the connector closes/breaks).
// Returns how many leading entries of buf hold delivered values: len(buf)
// on nil error, possibly fewer when the error interrupted a partially
// moved batch. The ordering guarantee matches len(buf) consecutive Recv
// calls. An empty buffer is a no-op.
func (e *Engine) RecvBatch(p ca.PortID, buf []any) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	o := e.getOp(false)
	o.vals = buf
	return e.runOp(p, o)
}

// runOp drives a prepared op through register/park/complete and recycles
// it, returning the number of items moved.
func (e *Engine) runOp(p ca.PortID, o *op) (int, error) {
	nudges, err := e.register(p, o)
	if err != nil {
		e.putOp(o)
		return 0, err
	}
	e.deliverNudges(nudges)
	<-o.done
	n, err := o.cur, o.err
	e.putOp(o)
	return n, err
}

func (e *Engine) getOp(send bool) *op {
	if x := e.opPool.Get(); x != nil {
		o := x.(*op)
		o.send = send
		return o
	}
	return &op{send: send, done: make(chan struct{}, 1)}
}

// putOp recycles a completed op. Only the goroutine that registered the op
// may call it, after receiving the completion signal. The reset drops the
// value slice reference (it may alias caller memory) and the inline slot,
// so pooled ops never pin user payloads between operations.
func (e *Engine) putOp(o *op) {
	o.vals, o.cur, o.err = nil, 0, nil
	o.inline[0] = nil
	e.opPool.Put(o)
}

// register adds a pending operation and runs the fire loop. It returns
// the cross-region nudges the fires produced (captured under the lock);
// the caller must deliver them via processNudges after unlocking. On
// error the op was not pended and the caller still owns it.
func (e *Engine) register(p ca.PortID, o *op) ([]*Engine, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if e.broken != nil {
		return nil, e.broken
	}
	if int(p) >= len(e.pend) {
		return nil, fmt.Errorf("engine: unknown port %d", p)
	}
	if o.send && e.dirs[p] != ca.DirSource {
		return nil, fmt.Errorf("engine: send on non-source port %q", e.u.Name(p))
	}
	if !o.send && e.dirs[p] != ca.DirSink {
		return nil, fmt.Errorf("engine: recv on non-sink port %q", e.u.Name(p))
	}
	if e.pend[p] != nil {
		return nil, ErrPortBusy
	}
	e.pend[p] = o
	e.pendMask.Set(p)
	e.registered.Add(1)
	e.fireLoop(p)
	e.flushSignals()
	if e.sched != nil {
		// Runtime mode: post the wake-ups right here, while still holding
		// the lock (safe — wake never takes an engine lock) and reusing
		// the nudge buffer, and feed the group completion counter the
		// livelock guard measures throughput by. The caller has nothing
		// left to deliver.
		e.noteCompletion()
		e.flushWakes()
		return nil, nil
	}
	nudges := e.outNudges
	e.outNudges = nil
	return nudges, nil
}

// tryEnable appends plan i to the candidate buffer if its sync set is
// covered by pending operations and its guards hold. Returns false on a
// guard evaluation error (the engine is broken). Must be called with mu
// held.
func (e *Engine) tryEnable(ex *expanded, i int32) bool {
	pl := ex.plans[i]
	// Enabled iff every *boundary* port in the sync set has a pending
	// operation and every link endpoint's queue condition holds; internal
	// vertices need neither.
	if !pl.Sync.MaskedSubsetOf(e.boundary, e.pendMask) {
		return true
	}
	if e.linkGate != nil && !pl.Sync.MaskedSubsetOf(e.linkGate, e.linkOK) {
		return true
	}
	e.guardEvals.Add(1)
	ok, err := pl.CheckGuards(e.cells, e)
	if err != nil {
		e.resetEnabled(ex)
		e.break_(err)
		return false
	}
	if ok {
		e.enabledBuf = append(e.enabledBuf, i)
	}
	return true
}

// resetEnabled releases the guard-phase scratch of every candidate that
// passed CheckGuards this round, so plans cached with their expansion do
// not pin user payloads (CheckGuards resets failing candidates itself).
func (e *Engine) resetEnabled(ex *expanded) {
	for _, ei := range e.enabledBuf {
		ex.plans[ei].Reset()
	}
}

// pumpTrigger is the fireLoop sentinel for pump wake-ups: no fresh
// operation, so the indexed first iteration is skipped in favor of a
// full scan (any link gate may have changed).
const pumpTrigger ca.PortID = -1

// fireLoop fires enabled transitions until quiescence. Called with mu held
// from register, with the port whose fresh operation woke the engine, or
// from the pump with pumpTrigger.
//
// The first iteration dispatches through the expanded state's port index:
// when the loop last reached quiescence nothing was enabled, and a new
// operation on p can only enable transitions whose sync set contains p
// (cells and other pending operations are unchanged, and guards are pure —
// the documented contract of compile.Funcs) — plus τ transitions, which
// are included for robustness. After a fire the composite state
// and cells have changed, so subsequent iterations scan the full state.
func (e *Engine) fireLoop(trigger ca.PortID) {
	if e.gen != nil {
		e.fireLoopGen(trigger)
		return
	}
	e.fireCompleted, e.fireLinkActive = false, false
	if e.broken != nil {
		return
	}
	indexed := trigger != pumpTrigger
	if !indexed && e.linkGate != nil {
		// A drain visit: pick up the neighbor queue activity that
		// prompted it. Register-path calls skip this — neighbor changes
		// always arrive with their own drain visit, and gates only ever
		// turn on asynchronously, so a not-yet-refreshed gate is at worst
		// a missed enable the pending visit repairs.
		e.refreshLinks()
	}
	tau := 0
	for {
		ex := e.expandState(e.state)
		e.enabledBuf = e.enabledBuf[:0]
		if indexed {
			indexed = false
			// Merge the trigger's plan list with the τ list in ascending
			// plan order, so the RNG sees candidates exactly as a full
			// scan would.
			byp := ex.byPort[trigger]
			taus := ex.taus
			i, j := 0, 0
			for i < len(byp) || j < len(taus) {
				var next int32
				switch {
				case j >= len(taus) || (i < len(byp) && byp[i] < taus[j]):
					next = byp[i]
					i++
				default:
					next = taus[j]
					j++
				}
				if !e.tryEnable(ex, next) {
					return
				}
			}
		} else {
			for i := range ex.plans {
				if !e.tryEnable(ex, int32(i)) {
					return
				}
			}
		}
		if len(e.enabledBuf) == 0 {
			return
		}
		pick := 0
		if len(e.enabledBuf) > 1 {
			pick = e.rng.Intn(len(e.enabledBuf))
		}
		ti := e.enabledBuf[pick]
		pl := ex.plans[ti]
		if err := pl.Execute(e.cells, e); err != nil {
			e.resetEnabled(ex)
			e.break_(err)
			return
		}
		linkActive := false
		if e.linkGate != nil {
			// Pop/push the link endpoints in the sync set before
			// completing operations: popped values feed pending receives.
			linkActive = e.fireLinks(pl, false)
		}
		var traced []TracePort
		var tracedp *[]TracePort
		if e.tracer != nil {
			tracedp = &traced // stays on the stack; only appends allocate
		}
		// Advance every pending operation in the sync set one item (sink
		// values were delivered by the plan via PlanDeliver) and complete
		// the exhausted ones.
		completedAny := e.advanceOps(pl, tracedp)
		// Fused flow fast path: a pure-flow plan left state and cells
		// untouched, so while every gate in its sync set still has items
		// (batch cursors, link queues) re-firing it needs no fresh
		// dispatch scan and no guard evaluation. Move the whole remaining
		// budget in one burst, each item counting as one global step.
		// Tracing stays on the scanned path so every step is reported
		// individually.
		if ex.flow[ti] && e.tracer == nil {
			if !e.fireFused(ex, pl) {
				return
			}
		}
		copy(e.state, ex.targets[ti])
		// Release the data values the enabled candidates computed during
		// guard evaluation (and the fired plan's outputs): cached plans
		// must not pin user payloads between fires.
		e.resetEnabled(ex)
		step := e.steps.Add(1)
		if e.tracer != nil {
			e.tracer(TraceEvent{Step: step, Ports: traced, Internal: !completedAny})
		}
		e.fireCompleted = e.fireCompleted || completedAny
		e.fireLinkActive = e.fireLinkActive || linkActive
		if completedAny || linkActive {
			tau = 0
		} else {
			tau++
			if tau > e.opts.MaxTauBurst {
				e.break_(ErrLivelock)
				return
			}
		}
	}
}

// advanceOps moves every pending operation in the fired plan's sync set
// one item forward: the plan's Execute consumed vals[cur] of each source
// and delivered into vals[cur] of each sink. Operations whose batch is
// exhausted complete (cleared and signaled); the rest stay pending with
// their cursor advanced. Reports whether any operation progressed —
// item-level progress, which resets the τ-livelock budget even when a
// large batch keeps its op pending. Appends trace records to *traced
// when non-nil. Called with mu held.
func (e *Engine) advanceOps(pl *ca.Plan, traced *[]TracePort) bool {
	progressed := false
	for wi, w := range pl.Sync {
		for w != 0 {
			p := ca.PortID(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
			o := e.pend[p]
			if o == nil {
				continue // internal vertex or link endpoint; no operation
			}
			if traced != nil {
				*traced = append(*traced, TracePort{Name: e.u.Name(p), Dir: e.dirs[p], Val: o.vals[o.cur]})
			}
			o.cur++
			progressed = true
			if o.cur == len(o.vals) {
				e.pend[p] = nil
				e.pendMask.Clear(p)
				o.done <- struct{}{}
			}
		}
	}
	return progressed
}

// fuseBudget returns how many additional consecutive firings of flow
// plan pl are guaranteed enabled right now: the minimum of the remaining
// batch items across the pending operations on its boundary ports and
// the item/space counts of its link endpoints. 0 when the sync set has
// no gated port at all — a pure τ flow must stay on the scanned path,
// where the livelock guard can see it spin. Called with mu held, after
// the triggering fire already advanced its cursors and queues.
func (e *Engine) fuseBudget(pl *ca.Plan) int {
	k := int(^uint(0) >> 1)
	found := false
	for wi, w := range pl.Sync {
		for w != 0 {
			p := ca.PortID(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
			if e.boundary.Has(p) {
				o := e.pend[p]
				if o == nil {
					return 0 // batch exhausted: the transition is disabled
				}
				if r := o.remaining(); r < k {
					k = r
				}
				found = true
			}
			if e.emitAt != nil {
				if l := e.emitAt[p]; l != nil {
					if r := l.avail(); r < k {
						k = r
					}
					found = true
				}
			}
			if e.acceptAt != nil {
				for _, l := range e.acceptAt[p] {
					if r := l.free(); r < k {
						k = r
					}
					found = true
				}
			}
		}
	}
	if !found || k <= 0 {
		return 0
	}
	return k
}

// fireFused re-fires a just-fired pure-flow plan as many times as its
// batch budget allows, fusing up to k item movements into the one
// dispatch decision fireLoop already made: guards need no re-evaluation
// (a flow plan has none), the composite state is unchanged by
// construction, and link endpoints defer their queue publication so the
// whole burst costs one release store per endpoint (commitLinks). Every
// fused item counts as one global step, keeping Steps parity with the
// scalar run. Returns false when an Execute error broke the engine.
// Called with mu held.
func (e *Engine) fireFused(ex *expanded, pl *ca.Plan) bool {
	k := e.fuseBudget(pl)
	if k == 0 {
		return true
	}
	for j := 0; j < k; j++ {
		if err := pl.Execute(e.cells, e); err != nil {
			if e.linkGate != nil {
				e.commitLinks(pl)
			}
			e.resetEnabled(ex)
			e.break_(err)
			return false
		}
		if e.linkGate != nil {
			e.fireLinks(pl, true)
		}
		e.advanceOps(pl, nil)
	}
	if e.linkGate != nil {
		e.commitLinks(pl)
	}
	e.steps.Add(int64(k))
	return true
}

// break_ marks the engine broken and fails all pending operations.
// Called with mu held. A broken region breaks its sibling regions
// asynchronously (their locks cannot be taken while holding this one).
func (e *Engine) break_(err error) {
	e.broken = err
	for p, o := range e.pend {
		if o == nil {
			continue
		}
		o.err = err
		e.pend[p] = nil
		e.pendMask.Clear(ca.PortID(p))
		o.done <- struct{}{}
	}
	if e.group != nil {
		// The goroutine is joined by the group's WaitGroup: instance
		// recycling must not reset an engine a stale break is still
		// about to touch.
		e.group.breakWG.Add(1)
		g := e.group
		go func() {
			defer g.breakWG.Done()
			g.breakOthers(e, err)
			if g.onBreak != nil {
				// Transport hook (tcp.go): tell the peer nodes so their
				// regions break too, not just the local siblings.
				g.onBreak(err)
			}
		}()
	}
}

// Close shuts the connector down, failing all pending and future
// operations with ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	for p, o := range e.pend {
		if o == nil {
			continue
		}
		o.err = ErrClosed
		e.pend[p] = nil
		e.pendMask.Clear(ca.PortID(p))
		o.done <- struct{}{}
	}
	return nil
}

// Reset returns a closed (or broken) engine to its initial state so the
// instance can be recycled instead of reallocated: automaton states,
// cells, counters, and the choice stream are restored exactly as after
// construction, while warm structures — the expanded-state cache, the
// op pool, the candidate and nudge buffers — are retained. A recycled
// engine therefore replays the same per-seed choice sequence as a
// fresh one (Expansions may read lower, since the cache is already
// warm). Fails if the engine is still open. Link queues are the
// coordinator's to reset (Multi.Reset); a plain engine has none.
func (e *Engine) Reset() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed && e.broken == nil {
		return errors.New("engine: reset of an open engine")
	}
	for i, a := range e.auts {
		e.state[i] = a.Initial
	}
	copy(e.cells, e.initCells)
	e.closed = false
	e.broken = nil
	e.rng.reseed(e.opts.Seed)
	e.enabledBuf = e.enabledBuf[:0]
	e.outNudges = e.outNudges[:0]
	e.outSignals = e.outSignals[:0]
	e.fireCompleted, e.fireLinkActive = false, false
	e.linkBurst, e.lastSeen = 0, 0
	e.steps.Store(0)
	e.expansions.Store(0)
	e.guardEvals.Store(0)
	e.registered.Store(0)
	return nil
}

// Steps returns the number of global execution steps fired so far — the
// metric of the paper's connector benchmarks (§V-B).
func (e *Engine) Steps() int64 { return e.steps.Load() }

// Expansions returns how many composite states have been expanded
// (cache misses), a measure of composition work done at run time.
func (e *Engine) Expansions() int64 { return e.expansions.Load() }

// GuardEvals returns how many candidate transitions had their guards
// evaluated — the dispatch work of the engine. With port-indexed dispatch
// this is proportional to affected transitions, not state out-degree.
func (e *Engine) GuardEvals() int64 { return e.guardEvals.Load() }

// OpsRegistered returns how many port operations have ever been accepted
// for pending (a monotonic count; completed operations stay counted).
// Deterministic test drivers use it to sequence op arrival order across
// goroutines without sleeping.
func (e *Engine) OpsRegistered() int64 { return e.registered.Load() }

// CachedStates returns the number of composite states currently retained.
func (e *Engine) CachedStates() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache.len()
}

// Evictions returns how many cache entries have been evicted.
func (e *Engine) Evictions() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache.evictions
}

// Universe returns the instance universe (for diagnostics).
func (e *Engine) Universe() *ca.Universe { return e.u }
