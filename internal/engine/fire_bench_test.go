package engine_test

import (
	"fmt"
	"testing"

	"repro/internal/ca"
	"repro/internal/engine"
	"repro/internal/prim"
)

// lanes builds n independent Fifo1 lanes in one universe. The composite
// state has out-degree n (every lane contributes one enabled-able
// transition), which makes it a worst case for dispatch that rescans all
// transitions of the current state on every operation.
func lanes(n int) (*ca.Universe, []*ca.Automaton, []ca.PortID, []ca.PortID) {
	u := ca.NewUniverse()
	var auts []*ca.Automaton
	var as, bs []ca.PortID
	for i := 0; i < n; i++ {
		a := u.Port(fmt.Sprintf("a%d", i))
		b := u.Port(fmt.Sprintf("b%d", i))
		u.SetDir(a, ca.DirSource)
		u.SetDir(b, ca.DirSink)
		as = append(as, a)
		bs = append(bs, b)
		auts = append(auts, prim.Fifo1(u, a, b))
	}
	return u, auts, as, bs
}

// BenchmarkFireStep measures one fired global step (a completed boundary
// operation) on a warmed JIT engine, across composite out-degrees. The
// steady state must be allocation-free: every visited composite state is
// already expanded, so each op is pure dispatch + data movement.
func BenchmarkFireStep(b *testing.B) {
	for _, n := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("fanout=%d", n), func(b *testing.B) {
			u, auts, as, bs := lanes(n)
			e, err := engine.New(u, auts, engine.Options{Composition: engine.JIT})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			// Warm the cache: visit every composite state the loop uses.
			for i := 0; i < n; i++ {
				if err := e.Send(as[i], i); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Recv(bs[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lane := i % n
				if err := e.Send(as[lane], i); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Recv(bs[lane]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			steps := float64(e.Steps())
			b.ReportMetric(steps/b.Elapsed().Seconds(), "steps/s")
		})
	}
}

// BenchmarkFireStepGuarded adds data guards to every lane (filters that
// always pass), so dispatch cost includes guard evaluation of candidate
// transitions, not just sync-set mask checks.
func BenchmarkFireStepGuarded(b *testing.B) {
	pass := func(any) bool { return true }
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("fanout=%d", n), func(b *testing.B) {
			u := ca.NewUniverse()
			var auts []*ca.Automaton
			var as, bs []ca.PortID
			for i := 0; i < n; i++ {
				a := u.Port(fmt.Sprintf("a%d", i))
				c := u.Port(fmt.Sprintf("b%d", i))
				u.SetDir(a, ca.DirSource)
				u.SetDir(c, ca.DirSink)
				as = append(as, a)
				bs = append(bs, c)
				auts = append(auts, prim.Filter(u, a, c, "pass", pass))
			}
			e, err := engine.New(u, auts, engine.Options{Composition: engine.JIT})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lane := i % n
				done := make(chan struct{})
				go func() {
					_, _ = e.Recv(bs[lane])
					close(done)
				}()
				if err := e.Send(as[lane], i); err != nil {
					b.Fatal(err)
				}
				<-done
			}
		})
	}
}
