package engine

import (
	"fmt"

	"repro/internal/ca"
)

// Backend is the minimal runtime contract shared by the interpreted
// engine and the packages emitted by `reoc gen`: a connector instance
// addressed by boundary vertex *names* rather than ca.PortID, so that a
// generated package — which is self-contained and cannot import this
// module — satisfies it structurally with stdlib types only.
//
// Code written against Backend (the differential harness, the
// generated-vs-interpreted benchmarks, examples) runs unchanged on
// either backend: obtain one from reo.Instance.Backend() for the
// interpreted engine, or from a generated package's New().
type Backend interface {
	// Send offers v on the named boundary source vertex and blocks until
	// a transition accepts it (Outport.Send semantics).
	Send(port string, v any) error
	// Recv blocks until a transition delivers a value on the named
	// boundary sink vertex (Inport.Recv semantics).
	Recv(port string) (any, error)
	// SendBatch and RecvBatch are the batched counterparts: one
	// registered operation per call, items moved one transition firing
	// at a time, the count of moved items returned (short only on
	// error). See Coordinator.
	SendBatch(port string, vs []any) (int, error)
	RecvBatch(port string, buf []any) (int, error)
	// Ports returns the boundary vertex names bound to a connector
	// parameter, in array order (one name for scalar parameters, nil for
	// unknown parameters).
	Ports(param string) []string
	Close() error
	// Steps, GuardEvals, and OpsRegistered mirror the Coordinator
	// statistics of the same names.
	Steps() int64
	GuardEvals() int64
	OpsRegistered() int64
}

// Named adapts a Coordinator to the Backend interface: it routes
// name-addressed operations to ca.PortID-addressed ones through a fixed
// name table. The reo package constructs one per Instance.
type Named struct {
	c Coordinator
	// ports maps vertex name -> port ID via the closed-over resolver;
	// params maps parameter name -> vertex names in array order.
	ports  map[string]portRef
	params map[string][]string
}

type portRef struct {
	id     int32
	source bool
}

// NewNamed builds the adapter. sources and sinks map parameter names to
// (vertex name, port ID) pairs in array order; a vertex name must be
// unique across both.
func NewNamed(c Coordinator, sources, sinks map[string][]NamedPort) *Named {
	n := &Named{
		c:      c,
		ports:  make(map[string]portRef),
		params: make(map[string][]string),
	}
	for param, ps := range sources {
		for _, p := range ps {
			n.ports[p.Name] = portRef{id: int32(p.ID), source: true}
			n.params[param] = append(n.params[param], p.Name)
		}
	}
	for param, ps := range sinks {
		for _, p := range ps {
			n.ports[p.Name] = portRef{id: int32(p.ID)}
			n.params[param] = append(n.params[param], p.Name)
		}
	}
	return n
}

// NamedPort is one boundary vertex entry of a NewNamed table.
type NamedPort struct {
	Name string
	ID   int32
}

func (n *Named) resolve(port string, source bool) (ca.PortID, error) {
	r, ok := n.ports[port]
	if !ok {
		return 0, fmt.Errorf("engine: unknown boundary vertex %q", port)
	}
	if r.source != source {
		if source {
			return 0, fmt.Errorf("engine: send on non-source vertex %q", port)
		}
		return 0, fmt.Errorf("engine: recv on non-sink vertex %q", port)
	}
	return ca.PortID(r.id), nil
}

// Send implements Backend.
func (n *Named) Send(port string, v any) error {
	p, err := n.resolve(port, true)
	if err != nil {
		return err
	}
	return n.c.Send(p, v)
}

// Recv implements Backend.
func (n *Named) Recv(port string) (any, error) {
	p, err := n.resolve(port, false)
	if err != nil {
		return nil, err
	}
	return n.c.Recv(p)
}

// SendBatch implements Backend.
func (n *Named) SendBatch(port string, vs []any) (int, error) {
	p, err := n.resolve(port, true)
	if err != nil {
		return 0, err
	}
	return n.c.SendBatch(p, vs)
}

// RecvBatch implements Backend.
func (n *Named) RecvBatch(port string, buf []any) (int, error) {
	p, err := n.resolve(port, false)
	if err != nil {
		return 0, err
	}
	return n.c.RecvBatch(p, buf)
}

// Ports implements Backend. The slice is a copy, as with the generated
// runtime's Ports: callers may reorder or truncate it freely.
func (n *Named) Ports(param string) []string {
	return append([]string(nil), n.params[param]...)
}

// Close implements Backend.
func (n *Named) Close() error { return n.c.Close() }

// Steps implements Backend.
func (n *Named) Steps() int64 { return n.c.Steps() }

// GuardEvals implements Backend.
func (n *Named) GuardEvals() int64 { return n.c.GuardEvals() }

// OpsRegistered implements Backend.
func (n *Named) OpsRegistered() int64 { return n.c.OpsRegistered() }

var _ Backend = (*Named)(nil)
