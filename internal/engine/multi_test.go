package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/engine"
	"repro/internal/prim"
)

// multiLanes builds a Multi over n independent Fifo1 components.
func multiLanes(t *testing.T, n int) (*engine.Multi, *ca.Universe, []ca.PortID, []ca.PortID) {
	t.Helper()
	u := ca.NewUniverse()
	var auts []*ca.Automaton
	var as, bs []ca.PortID
	for i := 0; i < n; i++ {
		a := u.Port(fmt.Sprintf("a%d", i))
		b := u.Port(fmt.Sprintf("b%d", i))
		u.SetDir(a, ca.DirSource)
		u.SetDir(b, ca.DirSink)
		as, bs = append(as, a), append(bs, b)
		auts = append(auts, prim.Fifo1(u, a, b))
	}
	m, err := engine.NewMulti(u, auts, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, u, as, bs
}

func TestMultiUnknownPortErrors(t *testing.T) {
	m, u, _, _ := multiLanes(t, 2)
	defer m.Close()
	// A port beyond the universe is unknown.
	if err := m.Send(ca.PortID(9999), 1); err == nil || !strings.Contains(err.Error(), "not owned") {
		t.Errorf("send on out-of-range port: err = %v, want ownership error", err)
	}
	if _, err := m.Recv(ca.PortID(9999)); err == nil || !strings.Contains(err.Error(), "not owned") {
		t.Errorf("recv on out-of-range port: err = %v, want ownership error", err)
	}
	// A port interned after partitioning belongs to no engine.
	stray := u.Port("stray")
	if err := m.Send(stray, 1); err == nil || !strings.Contains(err.Error(), "not owned") {
		t.Errorf("send on unowned port: err = %v, want ownership error", err)
	}
	// Direction misuse is still caught by the owning engine.
	m2, _, as, bs := multiLanes(t, 1)
	defer m2.Close()
	if err := m2.Send(bs[0], 1); err == nil {
		t.Error("send on sink port should fail")
	}
	if _, err := m2.Recv(as[0]); err == nil {
		t.Error("recv on source port should fail")
	}
}

func TestMultiStatAggregation(t *testing.T) {
	const n, rounds = 3, 10
	m, _, as, bs := multiLanes(t, n)
	defer m.Close()
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			if err := m.Send(as[i], r); err != nil {
				t.Fatal(err)
			}
			if v, err := m.Recv(bs[i]); err != nil || v != r {
				t.Fatalf("lane %d round %d: %v, %v", i, r, v, err)
			}
		}
	}
	if got, want := m.Steps(), int64(2*n*rounds); got != want {
		t.Errorf("Steps() = %d, want %d (accept+emit per round per lane)", got, want)
	}
	infos := m.Infos()
	if len(infos) != n {
		t.Fatalf("Infos() = %d entries, want %d", len(infos), n)
	}
	var steps, exps, guards int64
	for _, in := range infos {
		steps += in.Steps
		exps += in.Expansions
		guards += in.GuardEvals
		if in.Links != 0 {
			t.Errorf("component partition reports %d links, want 0", in.Links)
		}
	}
	if steps != m.Steps() || exps != m.Expansions() || guards != m.GuardEvals() {
		t.Errorf("aggregates (%d,%d,%d) != sums (%d,%d,%d)",
			m.Steps(), m.Expansions(), m.GuardEvals(), steps, exps, guards)
	}
	if m.Expansions() == 0 || m.GuardEvals() == 0 {
		t.Error("expansion/guard counters should be nonzero after a run")
	}
	if m.RegionPartitioned() {
		t.Error("NewMulti must not report region partitioning")
	}
}

func TestMultiClosePropagatesToAllPartitions(t *testing.T) {
	const n = 4
	m, _, _, bs := multiLanes(t, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) { _, err := m.Recv(bs[i]); errs <- err }(i)
	}
	time.Sleep(20 * time.Millisecond) // let the receives pend
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if err != engine.ErrClosed {
				t.Errorf("pending recv error = %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("pending recv not released by Close")
		}
	}
	// Post-close operations fail too.
	if err := m.Send(ca.PortID(0), 1); err != engine.ErrClosed {
		t.Errorf("post-close send error = %v, want ErrClosed", err)
	}
}

// TestMultiConcurrentCrossPartition hammers all partitions from
// concurrent goroutines; run under -race this exercises the router's
// lock-free dispatch to independently locked engines.
func TestMultiConcurrentCrossPartition(t *testing.T) {
	const n, rounds = 8, 50
	m, _, as, bs := multiLanes(t, n)
	defer m.Close()
	if m.Partitions() != n {
		t.Fatalf("partitions = %d, want %d", m.Partitions(), n)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := m.Send(as[i], i*rounds+r); err != nil {
					t.Errorf("send lane %d: %v", i, err)
					return
				}
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				v, err := m.Recv(bs[i])
				if err != nil || v != i*rounds+r {
					t.Errorf("lane %d recv = %v, %v; want %d", i, v, err, i*rounds+r)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got, want := m.Steps(), int64(2*n*rounds); got != want {
		t.Errorf("Steps() = %d, want %d", got, want)
	}
}
