package engine_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/engine"
	"repro/internal/prim"
)

// regionChain builds Sync(a;x) | Fifo1(x;y) | Sync(y;b): one connected
// component that region partitioning must cut at the buffer.
func regionChain(t *testing.T, opts engine.Options) (*engine.Multi, ca.PortID, ca.PortID) {
	t.Helper()
	u := ca.NewUniverse()
	a, x, y, b := u.Port("a"), u.Port("x"), u.Port("y"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	auts := []*ca.Automaton{prim.Sync(u, a, x), prim.Fifo1(u, x, y), prim.Sync(u, y, b)}
	m, err := engine.NewMultiRegions(u, auts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Partitions() != 2 {
		t.Fatalf("partitions = %d, want 2 (cut at the buffer)", m.Partitions())
	}
	if !m.RegionPartitioned() {
		t.Fatal("RegionPartitioned() = false")
	}
	return m, a, b
}

func TestRegionsCutChainEndToEnd(t *testing.T) {
	m, a, b := regionChain(t, engine.Options{})
	defer m.Close()
	const rounds = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			if err := m.Send(a, i); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < rounds; i++ {
		v, err := m.Recv(b)
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("recv %d = %v", i, v)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.Steps() == 0 {
		t.Error("no steps counted")
	}
}

// TestRegionsBufferCapacityBlocks: with the link holding one value, a
// second send must block until the receiver drains the first.
func TestRegionsBufferCapacityBlocks(t *testing.T) {
	m, a, b := regionChain(t, engine.Options{})
	defer m.Close()
	if err := m.Send(a, 1); err != nil { // fills the link
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() { second <- m.Send(a, 2) }()
	select {
	case err := <-second:
		t.Fatalf("second send completed with buffer full: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	for want := 1; want <= 2; want++ {
		v, err := m.Recv(b)
		if err != nil || v != want {
			t.Fatalf("recv = %v, %v; want %d", v, err, want)
		}
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
}

// TestRegionsInitiallyFullLink: a Fifo1Full constituent becomes a link
// that starts full; its seed value must come out first.
func TestRegionsInitiallyFullLink(t *testing.T) {
	u := ca.NewUniverse()
	a, x, y, b := u.Port("a"), u.Port("x"), u.Port("y"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	auts := []*ca.Automaton{prim.Sync(u, a, x), prim.Fifo1Full(u, x, y, "seed"), prim.Sync(u, y, b)}
	m, err := engine.NewMultiRegions(u, auts, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, err := m.Recv(b) // no send needed: the link starts full
	if err != nil || v != "seed" {
		t.Fatalf("recv = %v, %v; want seed", v, err)
	}
	go m.Send(a, 7)
	if v, err = m.Recv(b); err != nil || v != 7 {
		t.Fatalf("recv = %v, %v; want 7", v, err)
	}
}

// TestRegionsNodeRelay: a pure buffer pipeline (only node regions) must
// relay values across multiple pump-driven hops.
func TestRegionsNodeRelay(t *testing.T) {
	u := ca.NewUniverse()
	a, mid, b := u.Port("a"), u.Port("m"), u.Port("b")
	u.SetDir(a, ca.DirSource)
	u.SetDir(b, ca.DirSink)
	auts := []*ca.Automaton{prim.Fifo1(u, a, mid), prim.Fifo1(u, mid, b)}
	m, err := engine.NewMultiRegions(u, auts, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Partitions() != 3 {
		t.Fatalf("partitions = %d, want 3 (two ends and a relay node)", m.Partitions())
	}
	const rounds = 100
	go func() {
		for i := 0; i < rounds; i++ {
			if m.Send(a, i) != nil {
				return
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		v, err := m.Recv(b)
		if err != nil || v != i {
			t.Fatalf("recv %d = %v, %v", i, v, err)
		}
	}
}

// TestRegionsReplicatedAccept: one node feeding several links pushes to
// all of them in a single fire (replication), gated on all being
// non-full.
func TestRegionsReplicatedAccept(t *testing.T) {
	u := ca.NewUniverse()
	in := u.Port("in")
	u.SetDir(in, ca.DirSource)
	var auts []*ca.Automaton
	var outs []ca.PortID
	for i := 0; i < 3; i++ {
		o := u.Port(fmt.Sprintf("out%d", i))
		u.SetDir(o, ca.DirSink)
		outs = append(outs, o)
		auts = append(auts, prim.Fifo1(u, in, o))
	}
	m, err := engine.NewMultiRegions(u, auts, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Send(in, "v"); err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		v, err := m.Recv(o)
		if err != nil || v != "v" {
			t.Fatalf("recv %v = %v, %v", o, v, err)
		}
	}
}

// TestRegionsTokenRing drives a sequencer-style token ring cut into one
// region per drain: N clients must complete in strict cyclic order.
func TestRegionsTokenRing(t *testing.T) {
	const n = 4
	u := ca.NewUniverse()
	var auts []*ca.Automaton
	cs := make([]ca.PortID, n)
	rs := make([]ca.PortID, n)
	for i := 0; i < n; i++ {
		cs[i] = u.Port(fmt.Sprintf("c%d", i))
		rs[i] = u.Port(fmt.Sprintf("r%d", i))
		u.SetDir(cs[i], ca.DirSource)
	}
	for i := 0; i < n-1; i++ {
		auts = append(auts, prim.Fifo1(u, rs[i], rs[i+1]))
	}
	auts = append(auts, prim.Fifo1Full(u, rs[n-1], rs[0], prim.Token{}))
	for i := 0; i < n; i++ {
		auts = append(auts, prim.SyncDrain(u, cs[i], rs[i]))
	}
	m, err := engine.NewMultiRegions(u, auts, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Partitions() != n {
		t.Fatalf("partitions = %d, want %d", m.Partitions(), n)
	}

	// Probe the token order deterministically: the out-of-turn client
	// must stay blocked until the in-turn client has fired.
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			next := make(chan error, 1)
			go func(who int) { next <- m.Send(cs[(who+1)%n], 0) }(i)
			select {
			case err := <-next:
				t.Fatalf("round %d: client %d completed out of turn: %v", round, (i+1)%n, err)
			case <-time.After(20 * time.Millisecond):
			}
			if err := m.Send(cs[i], round); err != nil {
				t.Fatalf("round %d: client %d: %v", round, i, err)
			}
			// Now the out-of-turn probe is the in-turn client.
			if err := <-next; err != nil {
				t.Fatalf("round %d: client %d: %v", round, (i+1)%n, err)
			}
			i++ // the probe consumed client i+1's turn
		}
	}
}

// TestRegionsClosePropagatesToPending: Close must fail pending
// operations in every region.
func TestRegionsClosePropagatesToPending(t *testing.T) {
	m, a, b := regionChain(t, engine.Options{})
	errs := make(chan error, 2)
	// Both sides loop until the connector fails them; after Close, each
	// goroutine's in-flight operation must surface ErrClosed whichever
	// region it is pending in.
	go func() {
		for {
			if _, err := m.Recv(b); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		for {
			if err := m.Send(a, 0); err != nil {
				errs <- err
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	m.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != engine.ErrClosed {
				t.Errorf("pending op error = %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("pending operation not released by Close")
		}
	}
}

// TestRegionsAOT: ahead-of-time composition must expand each region's
// space with link gates in place.
func TestRegionsAOT(t *testing.T) {
	m, a, b := regionChain(t, engine.Options{Composition: engine.AOT})
	defer m.Close()
	go m.Send(a, 5)
	v, err := m.Recv(b)
	if err != nil || v != 5 {
		t.Fatalf("recv = %v, %v", v, err)
	}
	if m.Expansions() == 0 {
		t.Error("AOT should have expanded states eagerly")
	}
}

// TestRegionsClosedCycleLivelocks: a closed loop of cut buffers with no
// task anywhere on it spins a token through pure relay regions forever.
// The nudge walk must hit its budget and break the group with
// ErrLivelock instead of hanging NewMultiRegions — the region analogue
// of the single engine's τ-burst guard.
func TestRegionsClosedCycleLivelocks(t *testing.T) {
	u := ca.NewUniverse()
	x, y := u.Port("x"), u.Port("y")
	auts := []*ca.Automaton{prim.Fifo1Full(u, x, y, prim.Token{}), prim.Fifo1(u, y, x)}
	done := make(chan *engine.Multi, 1)
	go func() {
		m, err := engine.NewMultiRegions(u, auts, engine.Options{MaxTauBurst: 1000})
		if err != nil {
			t.Errorf("construction failed: %v", err)
		}
		done <- m
	}()
	select {
	case m := <-done:
		if m != nil {
			m.Close()
		}
	case <-time.After(10 * time.Second):
		t.Fatal("NewMultiRegions hung on a closed buffer cycle")
	}
}

// TestRegionsInfos checks the per-region statistics snapshot.
func TestRegionsInfos(t *testing.T) {
	m, a, b := regionChain(t, engine.Options{})
	defer m.Close()
	go m.Send(a, 1)
	if _, err := m.Recv(b); err != nil {
		t.Fatal(err)
	}
	infos := m.Infos()
	if len(infos) != 2 {
		t.Fatalf("infos = %d entries, want 2", len(infos))
	}
	var steps int64
	links := 0
	for _, in := range infos {
		steps += in.Steps
		links += in.Links
		if in.Constituents == 0 {
			t.Error("region reports zero constituents")
		}
	}
	if steps != m.Steps() {
		t.Errorf("per-region steps sum %d != total %d", steps, m.Steps())
	}
	if links != 2 {
		t.Errorf("link endpoints = %d, want 2 (one per side)", links)
	}
	if m.Plan() == nil || m.Plan().NumCut() != 1 {
		t.Errorf("plan = %+v, want 1 cut buffer", m.Plan())
	}
}
