package sema_test

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/sema"
)

func check(t *testing.T, src string) (*sema.Info, error) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sema.Check(f)
}

func mustCheck(t *testing.T, src string) *sema.Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func mustFail(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("no error for:\n%s", src)
	}
	if fragment != "" && !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestSymbolClassification(t *testing.T) {
	info := mustCheck(t, `
A(a[];b) = prod (i:1..#a) Sync(a[i];m) mult Fifo1(m;b) mult Sync(b2[1];k)
`)
	syms := info.Defs["A"].Symbols
	cases := map[string]sema.SymKind{
		"a":  sema.SymParamArray,
		"b":  sema.SymParamScalar,
		"m":  sema.SymLocalScalar,
		"b2": sema.SymLocalArray,
		"k":  sema.SymLocalScalar,
	}
	for name, want := range cases {
		if got, ok := syms[name]; !ok || got != want {
			t.Errorf("%s: got %v (present %v), want %v", name, got, ok, want)
		}
	}
}

func TestValidPrograms(t *testing.T) {
	srcs := []string{
		`A(a;b) = Sync(a;b)`,
		`A(a,b;) = SyncDrain(a,b;)`,
		`A(;a,b) = SyncSpout(;a,b)`,
		`A(a[];b) = Merger(a[1..#a];b)`,
		`A(a;b[]) = Router(a;b[1..#b])`,
		`A(a[];) = Seq(a[1..#a];)`,
		`A(a[];b[]) = prod (i:1..#a) prod (j:1..2) Sync(a[i];b[i])`,
		`B(x;y) = Sync(x;y)  A(a;b) = B(a;b)`,
		`A(a[];b[]) = B(a[1..#a];b[1..#b])  B(x[];y[]) = prod (i:1..#x) Sync(x[i];y[i])`,
		`A(a[];b[]) = B(a;b)  B(x[];y[]) = prod (i:1..#x) Sync(x[i];y[i])`,
		`A(a;b) = if (1 == 1) { Sync(a;b) }`,
	}
	for _, src := range srcs {
		if _, err := check(t, src); err != nil {
			t.Errorf("valid program rejected: %v\n%s", err, src)
		}
	}
}

func TestInvalidPrograms(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`A(a;b) = Nope(a;b)`, "unknown connector"},
		{`A(a;a) = Sync(a;a)`, "duplicate parameter"},
		{`A(a;b) = Sync(a,b;b)`, "at most"},
		{`A(a;b) = Sync(;b)`, "at least"},
		{`A(a;b) = Fifo1.3(a;b)`, "no attribute"},
		{`A(a;b) = Fifo(a;b)`, "integer attribute"},
		{`A(a;b) = Fifo.zero(a;b)`, "positive integer"},
		{`A(a;b) = Filter(a;b)`, "function attribute"},
		{`A(a[];b) = prod (i:1..#a) Sync(a[j];b)`, "unknown variable"},
		{`A(a;b) = Sync(a;b) mult prod (i:1..#a) Sync(a;b)`, "not an array"},
		{`A(a[];b) = prod (i:1..#a) prod (i:1..2) Sync(a[i];b)`, "shadows"},
		{`A(a[];b) = prod (a:1..2) Sync(b;b)`, "shadows"},
		{`A(a[];b) = Sync(a[1];m) mult Sync(m[2];b)`, "used with an index"},
		{`A(a[];b) = Sync(m[1];b) mult Sync(m;b)`, "without an index"},
		{`A(a;b) = A(a;b)`, "recursive"},
		{`A(a;b) = B(a;b)  B(x;y) = A(x;y)`, "recursive"},
		{`Sync(a;b) = Fifo1(a;b)`, "shadows a primitive"},
		{`A(a;b) = Sync(a;b)  A(x;y) = Sync(x;y)`, "duplicate definition"},
		{`A(a[];b) = B(a[1];b)  B(x[];y) = Sync(x[1];y)`, "must be a range"},
		{`A(a;b) = B(a;b)  B(x[];y) = Sync(x[1];y)`, "must be a range"},
		{`A(a[];c[]) = B(a[1..#a];c[1..2])  B(x[];y) = Sync(x[1];y)`, "range argument for scalar"},
		{`A(a[];b) = prod (i:1..#a) Sync(i;b)`, "used as a vertex"},
	}
	for _, tc := range cases {
		mustFail(t, tc.src, tc.frag)
	}
}

func TestMainChecks(t *testing.T) {
	mustCheck(t, `
A(a[];b[]) = prod (i:1..#a) Sync(a[i];b[i])
main(N) = A(x[1..N];y[1..N]) among
    forall (i:1..N) T.p(x[i]) and T.c(y[1..N])
`)
	mustFail(t, `
A(a;b) = Sync(a;b)
main = Nope(x;y) among T.p(x)
`, "unknown connector")
	mustFail(t, `
A(a;b) = Sync(a;b)
main = A(x;y) among T.p(x[k])
`, "unknown variable")
	mustFail(t, `
A(a;b) = Sync(a;b)
main(N,N) = A(x;y) among T.p(x)
`, "duplicate main parameter")
	mustFail(t, `
A(a;b) = Sync(a;b)
main(N) = A(x;y) among forall (N:1..2) T.p(x)
`, "shadows")
}

func TestBuiltinTable(t *testing.T) {
	// Every builtin must be well-formed: bounds consistent.
	for name, b := range sema.Builtins {
		if b.Name != name {
			t.Errorf("%s: name mismatch %q", name, b.Name)
		}
		if b.MaxTails >= 0 && b.MaxTails < b.MinTails {
			t.Errorf("%s: tail bounds inverted", name)
		}
		if b.MaxHeads >= 0 && b.MaxHeads < b.MinHeads {
			t.Errorf("%s: head bounds inverted", name)
		}
	}
	if len(sema.Builtins) < 15 {
		t.Errorf("builtin table has %d entries; primitives missing?", len(sema.Builtins))
	}
}
