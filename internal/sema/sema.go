package sema

import (
	"fmt"
	"strconv"

	"repro/internal/ast"
)

// Error is a semantic error with position.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos ast.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// AttrKind describes what a builtin's dotted attribute means.
type AttrKind uint8

const (
	// AttrNone forbids an attribute.
	AttrNone AttrKind = iota
	// AttrInt requires an integer attribute (Fifo.4).
	AttrInt
	// AttrFunc requires the name of a registered data function
	// (Filter.even, Transformer.double).
	AttrFunc
)

// Builtin describes a primitive's signature. Arity bounds use -1 for
// "unbounded".
type Builtin struct {
	Name     string
	MinTails int
	MaxTails int
	MinHeads int
	MaxHeads int
	Attr     AttrKind
}

// Builtins is the table of primitive signatures available to programs.
var Builtins = map[string]Builtin{
	"Sync":        {Name: "Sync", MinTails: 1, MaxTails: 1, MinHeads: 1, MaxHeads: 1},
	"LossySync":   {Name: "LossySync", MinTails: 1, MaxTails: 1, MinHeads: 1, MaxHeads: 1},
	"SyncDrain":   {Name: "SyncDrain", MinTails: 2, MaxTails: 2},
	"AsyncDrain":  {Name: "AsyncDrain", MinTails: 2, MaxTails: 2},
	"SyncSpout":   {Name: "SyncSpout", MinHeads: 2, MaxHeads: 2},
	"Spout1":      {Name: "Spout1", MinHeads: 1, MaxHeads: 1},
	"Fifo1":       {Name: "Fifo1", MinTails: 1, MaxTails: 1, MinHeads: 1, MaxHeads: 1},
	"Fifo1Full":   {Name: "Fifo1Full", MinTails: 1, MaxTails: 1, MinHeads: 1, MaxHeads: 1},
	"Fifo":        {Name: "Fifo", MinTails: 1, MaxTails: 1, MinHeads: 1, MaxHeads: 1, Attr: AttrInt},
	"Filter":      {Name: "Filter", MinTails: 1, MaxTails: 1, MinHeads: 1, MaxHeads: 1, Attr: AttrFunc},
	"Transformer": {Name: "Transformer", MinTails: 1, MaxTails: 1, MinHeads: 1, MaxHeads: 1, Attr: AttrFunc},
	"Merger":      {Name: "Merger", MinTails: 1, MaxTails: -1, MinHeads: 1, MaxHeads: 1},
	"Replicator":  {Name: "Replicator", MinTails: 1, MaxTails: 1, MinHeads: 1, MaxHeads: -1},
	"Router":      {Name: "Router", MinTails: 1, MaxTails: 1, MinHeads: 1, MaxHeads: -1},
	"Seq":         {Name: "Seq", MinTails: 1, MaxTails: -1},
	"Valve1":      {Name: "Valve1", MinTails: 2, MaxTails: 2, MinHeads: 1, MaxHeads: 1},
}

// SymKind classifies a name inside a definition.
type SymKind uint8

const (
	SymParamScalar SymKind = iota
	SymParamArray
	SymLocalScalar
	SymLocalArray
)

func (k SymKind) String() string {
	switch k {
	case SymParamScalar:
		return "scalar parameter"
	case SymParamArray:
		return "array parameter"
	case SymLocalScalar:
		return "local vertex"
	default:
		return "local vertex array"
	}
}

// DefInfo is the symbol table of one definition.
type DefInfo struct {
	Def     *ConnInfoDef
	Symbols map[string]SymKind
}

// ConnInfoDef aliases ast.ConnDef for the public surface.
type ConnInfoDef = ast.ConnDef

// Info is the result of checking a file.
type Info struct {
	File *ast.File
	Defs map[string]*DefInfo
}

// Check validates the file and returns symbol information.
func Check(f *ast.File) (*Info, error) {
	info := &Info{File: f, Defs: make(map[string]*DefInfo)}
	for _, d := range f.Defs {
		if _, ok := Builtins[d.Name]; ok {
			return nil, errf(d.Pos, "definition %q shadows a primitive", d.Name)
		}
		if _, dup := info.Defs[d.Name]; dup {
			return nil, errf(d.Pos, "duplicate definition %q", d.Name)
		}
		info.Defs[d.Name] = &DefInfo{Def: d, Symbols: make(map[string]SymKind)}
	}
	for _, d := range f.Defs {
		if err := checkDef(info, d); err != nil {
			return nil, err
		}
	}
	if err := checkRecursion(info); err != nil {
		return nil, err
	}
	for _, m := range f.Mains {
		if err := checkMain(info, m); err != nil {
			return nil, err
		}
	}
	return info, nil
}

type defChecker struct {
	info *Info
	def  *ast.ConnDef
	syms map[string]SymKind
	// iters tracks iteration variables in scope.
	iters map[string]bool
}

func checkDef(info *Info, d *ast.ConnDef) error {
	c := &defChecker{
		info:  info,
		def:   d,
		syms:  info.Defs[d.Name].Symbols,
		iters: make(map[string]bool),
	}
	for _, p := range d.Params() {
		if _, dup := c.syms[p.Name]; dup {
			return errf(p.Pos, "duplicate parameter %q", p.Name)
		}
		if p.IsArray {
			c.syms[p.Name] = SymParamArray
		} else {
			c.syms[p.Name] = SymParamScalar
		}
	}
	return c.expr(d.Body)
}

func (c *defChecker) expr(e ast.Expr) error {
	switch e := e.(type) {
	case *ast.Mult:
		for _, f := range e.Factors {
			if err := c.expr(f); err != nil {
				return err
			}
		}
		return nil
	case *ast.Invoke:
		return c.invoke(e)
	case *ast.Prod:
		if c.iters[e.Var] {
			return errf(e.Pos, "iteration variable %q shadows an enclosing one", e.Var)
		}
		if _, exists := c.syms[e.Var]; exists {
			return errf(e.Pos, "iteration variable %q shadows a %s", e.Var, c.syms[e.Var])
		}
		if err := c.intExpr(e.Lo); err != nil {
			return err
		}
		if err := c.intExpr(e.Hi); err != nil {
			return err
		}
		c.iters[e.Var] = true
		err := c.expr(e.Body)
		delete(c.iters, e.Var)
		return err
	case *ast.If:
		if err := c.boolExpr(e.Cond); err != nil {
			return err
		}
		if err := c.expr(e.Then); err != nil {
			return err
		}
		if e.Else != nil {
			return c.expr(e.Else)
		}
		return nil
	}
	return errf(e.Position(), "internal: unknown expression node %T", e)
}

func (c *defChecker) invoke(inv *ast.Invoke) error {
	for _, a := range inv.Tails {
		if err := c.portArg(a); err != nil {
			return err
		}
	}
	for _, a := range inv.Heads {
		if err := c.portArg(a); err != nil {
			return err
		}
	}
	if b, ok := Builtins[inv.Name]; ok {
		return c.checkBuiltin(inv, b)
	}
	target, ok := c.info.Defs[inv.Name]
	if !ok {
		return errf(inv.Pos, "unknown connector %q", inv.Name)
	}
	if inv.Attr != "" {
		return errf(inv.Pos, "connector %q takes no attribute", inv.Name)
	}
	return c.checkDefCall(inv, target.Def)
}

func (c *defChecker) checkBuiltin(inv *ast.Invoke, b Builtin) error {
	switch b.Attr {
	case AttrNone:
		if inv.Attr != "" {
			return errf(inv.Pos, "primitive %q takes no attribute", b.Name)
		}
	case AttrInt:
		if inv.Attr == "" {
			return errf(inv.Pos, "primitive %q requires an integer attribute (e.g. %s.4)", b.Name, b.Name)
		}
		if n, err := strconv.Atoi(inv.Attr); err != nil || n < 1 {
			return errf(inv.Pos, "primitive %q: attribute %q is not a positive integer", b.Name, inv.Attr)
		}
	case AttrFunc:
		if inv.Attr == "" {
			return errf(inv.Pos, "primitive %q requires a function attribute (e.g. %s.even)", b.Name, b.Name)
		}
	}
	check := func(args []ast.PortArg, min, max int, side string) error {
		fixed := 0
		ranges := 0
		for _, a := range args {
			if a.IsRange {
				ranges++
			} else {
				fixed++
			}
		}
		if ranges > 0 {
			if max >= 0 && max == min && min == fixed+ranges {
				// Ranges in a fixed slot: length must turn out to be 1;
				// checked at instantiation.
				return nil
			}
			if max >= 0 && fixed > max {
				return errf(inv.Pos, "%s: too many %s arguments for %q", inv.Pos, side, b.Name)
			}
			return nil // final count checked at instantiation
		}
		if fixed < min {
			return errf(inv.Pos, "primitive %q needs at least %d %s argument(s), got %d", b.Name, min, side, fixed)
		}
		if max >= 0 && fixed > max {
			return errf(inv.Pos, "primitive %q takes at most %d %s argument(s), got %d", b.Name, max, side, fixed)
		}
		return nil
	}
	if err := check(inv.Tails, b.MinTails, b.MaxTails, "tail"); err != nil {
		return err
	}
	return check(inv.Heads, b.MinHeads, b.MaxHeads, "head")
}

func (c *defChecker) checkDefCall(inv *ast.Invoke, target *ast.ConnDef) error {
	match := func(args []ast.PortArg, params []ast.Param, side string) error {
		if len(args) != len(params) {
			return errf(inv.Pos, "connector %q expects %d %s argument(s), got %d",
				target.Name, len(params), side, len(args))
		}
		for i, a := range args {
			p := params[i]
			if p.IsArray {
				if a.IsRange {
					continue
				}
				// A bare name may denote a whole array.
				if len(a.Indices) == 0 {
					if k, ok := c.syms[a.Name]; ok && k == SymParamArray {
						continue
					}
					return errf(a.Pos, "argument %q for array parameter %q of %q must be a range (x[lo..hi]) or an array parameter",
						a.Name, p.Name, target.Name)
				}
				return errf(a.Pos, "argument for array parameter %q of %q must be a range or whole array", p.Name, target.Name)
			}
			if a.IsRange {
				return errf(a.Pos, "range argument for scalar parameter %q of %q", p.Name, target.Name)
			}
			if len(a.Indices) == 0 {
				if k, ok := c.syms[a.Name]; ok && k == SymParamArray {
					return errf(a.Pos, "array %q passed to scalar parameter %q of %q", a.Name, p.Name, target.Name)
				}
			}
		}
		return nil
	}
	if err := match(inv.Tails, target.Tails, "tail"); err != nil {
		return err
	}
	return match(inv.Heads, target.Heads, "head")
}

func (c *defChecker) portArg(a ast.PortArg) error {
	if c.iters[a.Name] {
		return errf(a.Pos, "iteration variable %q used as a vertex", a.Name)
	}
	indexed := len(a.Indices) > 0 || a.IsRange
	if k, ok := c.syms[a.Name]; ok {
		switch k {
		case SymParamScalar, SymLocalScalar:
			if indexed {
				return errf(a.Pos, "%s %q used with an index", k, a.Name)
			}
		case SymParamArray:
			// Bare use of an array parameter is only valid as a whole-array
			// argument; invoke checking handles that context.
		case SymLocalArray:
			if !indexed {
				return errf(a.Pos, "local vertex array %q used without an index", a.Name)
			}
		}
	} else {
		// First sighting of a local. Ranges over locals are allowed:
		// the bounds are explicit.
		if indexed {
			c.syms[a.Name] = SymLocalArray
		} else {
			c.syms[a.Name] = SymLocalScalar
		}
	}
	for _, ix := range a.Indices {
		if err := c.intExpr(ix); err != nil {
			return err
		}
	}
	if a.IsRange {
		if err := c.intExpr(a.Lo); err != nil {
			return err
		}
		if err := c.intExpr(a.Hi); err != nil {
			return err
		}
	}
	return nil
}

func (c *defChecker) intExpr(e ast.IntExpr) error {
	switch e := e.(type) {
	case *ast.IntLit:
		return nil
	case *ast.VarRef:
		if !c.iters[e.Name] {
			return errf(e.Pos, "unknown variable %q (not an iteration variable in scope)", e.Name)
		}
		return nil
	case *ast.LenOf:
		k, ok := c.syms[e.Name]
		if !ok || k != SymParamArray {
			return errf(e.Pos, "#%s: %q is not an array parameter", e.Name, e.Name)
		}
		return nil
	case *ast.BinInt:
		if err := c.intExpr(e.L); err != nil {
			return err
		}
		return c.intExpr(e.R)
	}
	return errf(e.Position(), "internal: unknown integer expression %T", e)
}

func (c *defChecker) boolExpr(e ast.BoolExpr) error {
	switch e := e.(type) {
	case *ast.Cmp:
		if err := c.intExpr(e.L); err != nil {
			return err
		}
		return c.intExpr(e.R)
	case *ast.BoolBin:
		if err := c.boolExpr(e.L); err != nil {
			return err
		}
		return c.boolExpr(e.R)
	case *ast.Not:
		return c.boolExpr(e.X)
	}
	return errf(e.Position(), "internal: unknown condition %T", e)
}

// checkRecursion rejects cyclic composite definitions (flattening must
// terminate).
func checkRecursion(info *Info) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return errf(info.Defs[name].Def.Pos, "recursive connector definition %q", name)
		case black:
			return nil
		}
		color[name] = gray
		var walk func(e ast.Expr) error
		walk = func(e ast.Expr) error {
			switch e := e.(type) {
			case *ast.Mult:
				for _, f := range e.Factors {
					if err := walk(f); err != nil {
						return err
					}
				}
			case *ast.Invoke:
				if _, isDef := info.Defs[e.Name]; isDef {
					return visit(e.Name)
				}
			case *ast.Prod:
				return walk(e.Body)
			case *ast.If:
				if err := walk(e.Then); err != nil {
					return err
				}
				if e.Else != nil {
					return walk(e.Else)
				}
			}
			return nil
		}
		if err := walk(info.Defs[name].Def.Body); err != nil {
			return err
		}
		color[name] = black
		return nil
	}
	for name := range info.Defs {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// checkMain validates a main definition: connector invocations resolve,
// integer expressions reference main parameters or forall variables.
func checkMain(info *Info, m *ast.MainDef) error {
	vars := make(map[string]bool)
	for _, p := range m.Params {
		if vars[p] {
			return errf(m.Pos, "duplicate main parameter %q", p)
		}
		vars[p] = true
	}
	var checkInt func(e ast.IntExpr) error
	checkInt = func(e ast.IntExpr) error {
		switch e := e.(type) {
		case *ast.IntLit:
			return nil
		case *ast.VarRef:
			if !vars[e.Name] {
				return errf(e.Pos, "unknown variable %q in main", e.Name)
			}
			return nil
		case *ast.LenOf:
			return errf(e.Pos, "#%s not allowed in main (lengths are explicit)", e.Name)
		case *ast.BinInt:
			if err := checkInt(e.L); err != nil {
				return err
			}
			return checkInt(e.R)
		}
		return nil
	}
	checkArg := func(a ast.PortArg) error {
		for _, ix := range a.Indices {
			if err := checkInt(ix); err != nil {
				return err
			}
		}
		if a.IsRange {
			if err := checkInt(a.Lo); err != nil {
				return err
			}
			return checkInt(a.Hi)
		}
		return nil
	}
	for _, inv := range m.Conns {
		_, isDef := info.Defs[inv.Name]
		_, isBuiltin := Builtins[inv.Name]
		if !isDef && !isBuiltin {
			return errf(inv.Pos, "unknown connector %q in main", inv.Name)
		}
		for _, a := range inv.Tails {
			if err := checkArg(a); err != nil {
				return err
			}
		}
		for _, a := range inv.Heads {
			if err := checkArg(a); err != nil {
				return err
			}
		}
	}
	var checkTask func(item ast.TaskItem) error
	checkTask = func(item ast.TaskItem) error {
		switch item := item.(type) {
		case *ast.TaskInst:
			for _, a := range item.Args {
				if err := checkArg(a); err != nil {
					return err
				}
			}
			return nil
		case *ast.TaskForall:
			if vars[item.Var] {
				return errf(item.Pos, "forall variable %q shadows another", item.Var)
			}
			if err := checkInt(item.Lo); err != nil {
				return err
			}
			if err := checkInt(item.Hi); err != nil {
				return err
			}
			vars[item.Var] = true
			for _, b := range item.Body {
				if err := checkTask(b); err != nil {
					return err
				}
			}
			delete(vars, item.Var)
			return nil
		}
		return nil
	}
	for _, t := range m.Tasks {
		if err := checkTask(t); err != nil {
			return err
		}
	}
	return nil
}
