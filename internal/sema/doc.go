// Package sema performs name resolution and static checking of parsed
// connector programs: signature arity, array/scalar usage consistency,
// iteration-variable scoping, #-length validity, and recursion detection
// among composite definitions.
package sema
