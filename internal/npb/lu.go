package npb

import (
	"fmt"
	"math"
)

// LU is the SSOR application benchmark: symmetric successive
// over-relaxation sweeps on a 2D 5-point Poisson problem. The forward
// (lower-triangular) sweep carries a true data dependency from row i-1 to
// row i, so row blocks owned by consecutive slaves form a software
// pipeline over column blocks; the backward sweep pipelines in the
// opposite direction. Per iteration the master only launches the sweep
// and reduces the residual — "master–slaves and pipeline" (Fig. 13,
// right panels).
type LU struct{}

// NewLU returns the LU application.
func NewLU() *LU { return &LU{} }

// Name returns "LU".
func (*LU) Name() string { return "LU" }

type luParams struct {
	n     int
	iters int
	omega float64
}

func luSizes(c Class) luParams {
	switch c {
	case ClassS:
		return luParams{n: 32, iters: 4, omega: 1.2}
	case ClassW:
		return luParams{n: 64, iters: 6, omega: 1.2}
	case ClassA:
		return luParams{n: 128, iters: 8, omega: 1.2}
	case ClassB:
		return luParams{n: 256, iters: 10, omega: 1.2}
	default:
		return luParams{n: 512, iters: 12, omega: 1.2}
	}
}

// luGrid holds the shared state: solution u and right-hand side b,
// both n×n row-major.
type luGrid struct {
	n    int
	u, b []float64
}

func newLUGrid(n int) *luGrid {
	g := &luGrid{n: n, u: make([]float64, n*n), b: make([]float64, n*n)}
	r := NewRand(314159265)
	for i := range g.b {
		g.b[i] = r.Next() - 0.5
	}
	return g
}

// luColBlocks is the pipeline granularity.
const luColBlocks = 4

// luForwardRows applies the forward SOR update to rows [rlo,rhi) and
// columns [clo,chi), in row-major order (Gauss-Seidel: reads already
// updated west/north neighbors).
func (g *luGrid) luForwardRows(rlo, rhi, clo, chi int, omega float64) {
	n := g.n
	for i := rlo; i < rhi; i++ {
		for j := clo; j < chi; j++ {
			var west, north, east, south float64
			if j > 0 {
				west = g.u[i*n+j-1]
			}
			if i > 0 {
				north = g.u[(i-1)*n+j]
			}
			if j < n-1 {
				east = g.u[i*n+j+1]
			}
			if i < n-1 {
				south = g.u[(i+1)*n+j]
			}
			gs := (g.b[i*n+j] + west + north + east + south) / 4
			g.u[i*n+j] = (1-omega)*g.u[i*n+j] + omega*gs
		}
	}
}

// luBackwardRows is the mirrored update in reverse row/column order.
func (g *luGrid) luBackwardRows(rlo, rhi, clo, chi int, omega float64) {
	n := g.n
	for i := rhi - 1; i >= rlo; i-- {
		for j := chi - 1; j >= clo; j-- {
			var west, north, east, south float64
			if j > 0 {
				west = g.u[i*n+j-1]
			}
			if i > 0 {
				north = g.u[(i-1)*n+j]
			}
			if j < n-1 {
				east = g.u[i*n+j+1]
			}
			if i < n-1 {
				south = g.u[(i+1)*n+j]
			}
			gs := (g.b[i*n+j] + west + north + east + south) / 4
			g.u[i*n+j] = (1-omega)*g.u[i*n+j] + omega*gs
		}
	}
}

// luResidualRows returns the squared residual over rows [rlo,rhi).
func (g *luGrid) luResidualRows(rlo, rhi int) float64 {
	n := g.n
	var s float64
	for i := rlo; i < rhi; i++ {
		for j := 0; j < n; j++ {
			var west, north, east, south float64
			if j > 0 {
				west = g.u[i*n+j-1]
			}
			if i > 0 {
				north = g.u[(i-1)*n+j]
			}
			if j < n-1 {
				east = g.u[i*n+j+1]
			}
			if i < n-1 {
				south = g.u[(i+1)*n+j]
			}
			r := g.b[i*n+j] + west + north + east + south - 4*g.u[i*n+j]
			s += r * r
		}
	}
	return s
}

func luSerial(prm luParams) float64 {
	g := newLUGrid(prm.n)
	var resid float64
	for it := 0; it < prm.iters; it++ {
		// Same column-block order as the pipelined version, so results
		// agree bit for bit.
		for cb := 0; cb < luColBlocks; cb++ {
			clo, chi := splitRange(prm.n, luColBlocks, cb)
			g.luForwardRows(0, prm.n, clo, chi, prm.omega)
		}
		for cb := luColBlocks - 1; cb >= 0; cb-- {
			clo, chi := splitRange(prm.n, luColBlocks, cb)
			g.luBackwardRows(0, prm.n, clo, chi, prm.omega)
		}
		resid = math.Sqrt(g.luResidualRows(0, prm.n))
	}
	return resid
}

// The serial sweeps above follow the same column-block schedule as the
// pipelined version. Within one sweep, every cell reads its west and
// north neighbors post-update and its east and south neighbors
// pre-update under both schedules, so all variants compute bit-identical
// results regardless of the number of slaves.

// luMsg is the master broadcast.
type luMsg struct {
	Op string // "iter" or "stop"
	G  *luGrid
}

// Run executes LU.
func (p *LU) Run(class Class, variant Variant, slaves int) (*Result, error) {
	prm := luSizes(class)
	want := cachedSerial("LU/"+class.String(), func() float64 { return luSerial(prm) })
	res := &Result{Program: p.Name(), Class: class, Variant: variant, Slaves: slaves}
	if variant == Serial {
		res.Checksum = want
		res.Verified = true
		return res, nil
	}

	g := newLUGrid(prm.n)
	var resid float64
	master := func(c Comm) error {
		for it := 0; it < prm.iters; it++ {
			for i := 0; i < slaves; i++ {
				if err := c.SendToSlave(i, luMsg{Op: "iter", G: g}); err != nil {
					return err
				}
			}
			// Barrier: all sweeps complete before anyone reads
			// neighbor rows for the residual.
			for i := 0; i < slaves; i++ {
				if _, err := c.RecvFromSlave(i); err != nil {
					return err
				}
			}
			for i := 0; i < slaves; i++ {
				if err := c.SendToSlave(i, luMsg{Op: "residual"}); err != nil {
					return err
				}
			}
			var sum float64
			for i := 0; i < slaves; i++ {
				v, err := c.RecvFromSlave(i)
				if err != nil {
					return err
				}
				sum += v.(float64)
			}
			resid = math.Sqrt(sum)
		}
		for i := 0; i < slaves; i++ {
			if err := c.SendToSlave(i, luMsg{Op: "stop"}); err != nil {
				return err
			}
		}
		return nil
	}
	slave := func(c PipeComm, i int) error {
		var gg *luGrid
		for {
			v, err := c.SlaveRecv(i)
			if err != nil {
				return err
			}
			msg := v.(luMsg)
			switch msg.Op {
			case "stop":
				return nil
			case "residual":
				rlo, rhi := splitRange(gg.n, slaves, i)
				if err := c.SlaveSend(i, gg.luResidualRows(rlo, rhi)); err != nil {
					return err
				}
				continue
			}
			gg = msg.G
			rlo, rhi := splitRange(gg.n, slaves, i)
			// Forward sweep: wavefront over column blocks, tokens
			// downstream.
			for cb := 0; cb < luColBlocks; cb++ {
				clo, chi := splitRange(gg.n, luColBlocks, cb)
				if i > 0 {
					if _, err := c.PipeRecv(i); err != nil {
						return err
					}
				}
				gg.luForwardRows(rlo, rhi, clo, chi, prm.omega)
				if i < slaves-1 {
					if err := c.PipeSend(i, cb); err != nil {
						return err
					}
				}
			}
			// Backward sweep: reverse wavefront, tokens upstream.
			for cb := luColBlocks - 1; cb >= 0; cb-- {
				clo, chi := splitRange(gg.n, luColBlocks, cb)
				if i < slaves-1 {
					if _, err := c.PipeRecvUp(i); err != nil {
						return err
					}
				}
				gg.luBackwardRows(rlo, rhi, clo, chi, prm.omega)
				if i > 0 {
					if err := c.PipeSendUp(i, cb); err != nil {
						return err
					}
				}
			}
			// Sweep-completion barrier; the residual follows in its
			// own round once every slave has finished writing.
			if err := c.SlaveSend(i, struct{}{}); err != nil {
				return err
			}
		}
	}
	steps, err := runMasterSlaves(variant, slaves, true, DefaultReoOptions, master, slave)
	if err != nil {
		return nil, err
	}
	res.Steps = steps
	res.Checksum = resid
	res.Verified = closeEnough(resid, want)
	if !res.Verified {
		return res, fmt.Errorf("LU: residual %g, want %g", resid, want)
	}
	return res, nil
}
