package npb

import (
	"fmt"
	"math"
)

// Shared infrastructure for the BT and SP application benchmarks: both
// are ADI (alternating direction implicit) solvers that repeatedly solve
// banded systems along x lines (rows, local to the owning slave) and
// along y lines (columns, partitioned across slaves with a barrier
// between the passes). SP solves scalar tridiagonal systems; BT solves
// 2x2 block tridiagonal systems. This mirrors the real NPB programs'
// structure (scalar penta- vs 5x5-block tridiagonal) at reduced band
// width, preserving the communication pattern and the local-solve work.

type adiParams struct {
	n      int
	iters  int
	lambda float64
}

func adiSizes(c Class) adiParams {
	switch c {
	case ClassS:
		return adiParams{n: 32, iters: 4, lambda: 0.25}
	case ClassW:
		return adiParams{n: 64, iters: 6, lambda: 0.25}
	case ClassA:
		return adiParams{n: 128, iters: 8, lambda: 0.25}
	case ClassB:
		return adiParams{n: 256, iters: 10, lambda: 0.25}
	default:
		return adiParams{n: 512, iters: 12, lambda: 0.25}
	}
}

// adiGrid is the shared field, components interleaved: comps values per
// cell (1 for SP, 2 for BT), row-major.
type adiGrid struct {
	n, comps int
	u        []float64
	scratch  []float64 // per-cell scratch for the sweeps
}

func newADIGrid(n, comps int) *adiGrid {
	g := &adiGrid{n: n, comps: comps,
		u:       make([]float64, n*n*comps),
		scratch: make([]float64, n*n*comps)}
	r := NewRand(314159265)
	for i := range g.u {
		g.u[i] = r.Next()
	}
	return g
}

// triSolve solves an in-place scalar tridiagonal system with constant
// coefficients (-lambda, 1+2*lambda, -lambda) by the Thomas algorithm.
// d is the right-hand side and receives the solution; cp is scratch of
// the same length.
func triSolve(d, cp []float64, lambda float64) {
	n := len(d)
	b := 1 + 2*lambda
	a := -lambda
	cp[0] = a / b
	d[0] = d[0] / b
	for i := 1; i < n; i++ {
		m := 1 / (b - a*cp[i-1])
		cp[i] = a * m
		d[i] = (d[i] - a*d[i-1]) * m
	}
	for i := n - 2; i >= 0; i-- {
		d[i] -= cp[i] * d[i+1]
	}
}

// blockTriSolve solves a 2x2 block tridiagonal system with constant
// blocks: diagonal D = [[1+2λ, λ/2], [-λ/2, 1+2λ]], off-diagonal
// A = -λ·I. d holds 2 components per point and receives the solution.
func blockTriSolve(d []float64, cp []float64, lambda float64) {
	n := len(d) / 2
	// Diagonal block and its inverse helpers.
	d11, d12 := 1+2*lambda, lambda/2
	d21, d22 := -lambda/2, 1+2*lambda
	a := -lambda // off-diagonal scalar block a·I

	inv2 := func(m11, m12, m21, m22 float64) (i11, i12, i21, i22 float64) {
		det := m11*m22 - m12*m21
		return m22 / det, -m12 / det, -m21 / det, m11 / det
	}

	// Forward elimination with 2x2 pivots; cp stores the 4 entries of
	// C'_i per point.
	i11, i12, i21, i22 := inv2(d11, d12, d21, d22)
	cp[0], cp[1], cp[2], cp[3] = a*i11, a*i12, a*i21, a*i22
	x, y := d[0], d[1]
	d[0], d[1] = i11*x+i12*y, i21*x+i22*y
	for i := 1; i < n; i++ {
		// M = D - a·C'_{i-1}
		m11 := d11 - a*cp[(i-1)*4+0]
		m12 := d12 - a*cp[(i-1)*4+1]
		m21 := d21 - a*cp[(i-1)*4+2]
		m22 := d22 - a*cp[(i-1)*4+3]
		j11, j12, j21, j22 := inv2(m11, m12, m21, m22)
		cp[i*4+0], cp[i*4+1] = a*j11, a*j12
		cp[i*4+2], cp[i*4+3] = a*j21, a*j22
		// rhs' = inv(M)·(d_i - a·d'_{i-1})
		rx := d[i*2] - a*d[(i-1)*2]
		ry := d[i*2+1] - a*d[(i-1)*2+1]
		d[i*2], d[i*2+1] = j11*rx+j12*ry, j21*rx+j22*ry
	}
	for i := n - 2; i >= 0; i-- {
		d[i*2] -= cp[i*4+0]*d[(i+1)*2] + cp[i*4+1]*d[(i+1)*2+1]
		d[i*2+1] -= cp[i*4+2]*d[(i+1)*2] + cp[i*4+3]*d[(i+1)*2+1]
	}
}

// adiXSweep solves the line systems along x (rows) for rows [lo,hi).
func (g *adiGrid) adiXSweep(lambda float64, lo, hi int) {
	n, cs := g.n, g.comps
	line := make([]float64, n*cs)
	cp := make([]float64, n*4)
	for i := lo; i < hi; i++ {
		copy(line, g.u[i*n*cs:(i+1)*n*cs])
		if cs == 1 {
			triSolve(line, cp[:n], lambda)
		} else {
			blockTriSolve(line, cp, lambda)
		}
		copy(g.u[i*n*cs:(i+1)*n*cs], line)
	}
}

// adiYSweep solves the line systems along y (columns) for columns [lo,hi).
func (g *adiGrid) adiYSweep(lambda float64, lo, hi int) {
	n, cs := g.n, g.comps
	line := make([]float64, n*cs)
	cp := make([]float64, n*4)
	for j := lo; j < hi; j++ {
		for i := 0; i < n; i++ {
			for c := 0; c < cs; c++ {
				line[i*cs+c] = g.u[(i*n+j)*cs+c]
			}
		}
		if cs == 1 {
			triSolve(line, cp[:n], lambda)
		} else {
			blockTriSolve(line, cp, lambda)
		}
		for i := 0; i < n; i++ {
			for c := 0; c < cs; c++ {
				g.u[(i*n+j)*cs+c] = line[i*cs+c]
			}
		}
	}
}

func (g *adiGrid) adiChecksum() float64 {
	var s float64
	for _, v := range g.u {
		s += v * v
	}
	return math.Sqrt(s)
}

// adiOp is one broadcast phase of the ADI run.
type adiOp struct {
	Kind string // "x" | "y" | "stop"
	G    *adiGrid
}

// adiRun executes the benchmark with the given per-phase barrier.
func adiRun(prm adiParams, comps int, apply func(op adiOp) error) (*adiGrid, error) {
	g := newADIGrid(prm.n, comps)
	for it := 0; it < prm.iters; it++ {
		if err := apply(adiOp{Kind: "x", G: g}); err != nil {
			return nil, err
		}
		if err := apply(adiOp{Kind: "y", G: g}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// adiProgramRun is the shared Run implementation for BT and SP.
func adiProgramRun(name string, comps int, class Class, variant Variant, slaves int) (*Result, error) {
	prm := adiSizes(class)
	want := cachedSerial(name+"/"+class.String(), func() float64 {
		serialG, _ := adiRun(prm, comps, func(op adiOp) error {
			if op.Kind == "x" {
				op.G.adiXSweep(prm.lambda, 0, prm.n)
			} else {
				op.G.adiYSweep(prm.lambda, 0, prm.n)
			}
			return nil
		})
		return serialG.adiChecksum()
	})
	res := &Result{Program: name, Class: class, Variant: variant, Slaves: slaves}
	if variant == Serial {
		res.Checksum = want
		res.Verified = true
		return res, nil
	}

	var got float64
	master := func(c Comm) error {
		g, err := adiRun(prm, comps, func(op adiOp) error {
			for i := 0; i < slaves; i++ {
				if err := c.SendToSlave(i, op); err != nil {
					return err
				}
			}
			for i := 0; i < slaves; i++ {
				if _, err := c.RecvFromSlave(i); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		got = g.adiChecksum()
		for i := 0; i < slaves; i++ {
			if err := c.SendToSlave(i, adiOp{Kind: "stop"}); err != nil {
				return err
			}
		}
		return nil
	}
	slave := func(c PipeComm, i int) error {
		for {
			v, err := c.SlaveRecv(i)
			if err != nil {
				return err
			}
			op := v.(adiOp)
			switch op.Kind {
			case "stop":
				return nil
			case "x":
				lo, hi := splitRange(op.G.n, slaves, i)
				op.G.adiXSweep(prm.lambda, lo, hi)
			case "y":
				lo, hi := splitRange(op.G.n, slaves, i)
				op.G.adiYSweep(prm.lambda, lo, hi)
			}
			if err := c.SlaveSend(i, struct{}{}); err != nil {
				return err
			}
		}
	}
	steps, err := runMasterSlaves(variant, slaves, false, DefaultReoOptions, master, slave)
	if err != nil {
		return nil, err
	}
	res.Steps = steps
	res.Checksum = got
	res.Verified = closeEnough(got, want)
	if !res.Verified {
		return res, fmt.Errorf("%s: checksum %g, want %g", name, got, want)
	}
	return res, nil
}

// BT is the block-tridiagonal ADI application (2x2 blocks).
type BT struct{}

// NewBT returns the BT application.
func NewBT() *BT { return &BT{} }

// Name returns "BT".
func (*BT) Name() string { return "BT" }

// Run executes BT.
func (p *BT) Run(class Class, variant Variant, slaves int) (*Result, error) {
	return adiProgramRun(p.Name(), 2, class, variant, slaves)
}

// SP is the scalar-tridiagonal ADI application.
type SP struct{}

// NewSP returns the SP application.
func NewSP() *SP { return &SP{} }

// Name returns "SP".
func (*SP) Name() string { return "SP" }

// Run executes SP.
func (p *SP) Run(class Class, variant Variant, slaves int) (*Result, error) {
	return adiProgramRun(p.Name(), 1, class, variant, slaves)
}
