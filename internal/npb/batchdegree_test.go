package npb

import "testing"

func TestBatchDegreeFloor(t *testing.T) {
	saved := DefaultBatch
	defer func() { DefaultBatch = saved }()
	DefaultBatch = 8
	if got := batchDegree(0); got != 1 {
		t.Errorf("batchDegree(0) = %d, want 1", got)
	}
	if got := batchDegree(3); got != 3 {
		t.Errorf("batchDegree(3) = %d, want 3", got)
	}
	DefaultBatch = 0
	if got := batchDegree(100); got != 1 {
		t.Errorf("batchDegree(100) with DefaultBatch=0 = %d, want 1", got)
	}
	// More slaves than work units: every slave still gets its message.
	DefaultBatch = 4
	p := NewEP()
	res, err := p.Run(ClassS, Reo, 5)
	if err != nil || !res.Verified {
		t.Fatalf("EP with batch floor: %v verified=%v", err, res != nil && res.Verified)
	}
}
