// Package npb is a from-scratch Go implementation of the NAS Parallel
// Benchmarks in the master–slaves organization of the paper's §V-C
// experiments: seven programs (EP, IS, CG, MG, FT kernels-style; LU, BT,
// SP application-style), each in three variants —
//
//   - Serial: the reference computation;
//   - Orig: hand-written coordination with Go channels (the "original
//     programs" of Fig. 13);
//   - Reo: tasks stripped of all synchronization and communication,
//     coordinated through connector-generated ports (the "Reo-based
//     variants").
//
// Problem classes S, W, A, B, C follow NPB's naming with sizes scaled to
// laptop time budgets (documented per program); the communication
// structures — scatter/gather per iteration, plus a slave pipeline in LU —
// reproduce the paper's setup exactly.
package npb
