package npb

import (
	"fmt"

	reo "repro"
	"repro/internal/genlib/msfabric"
)

// Comm is the coordination fabric between a master and N slaves: the only
// synchronization and communication the parallel variants use. The Orig
// implementation is hand-written on Go channels; the Reo implementation is
// generated from a connector definition — the tasks are identical
// (§V-C: "we stripped the tasks from all synchronization and
// communication, and replaced it with (operations on) outports and
// inports").
type Comm interface {
	// SendToSlave transfers a value master -> slave i (0-based).
	SendToSlave(i int, v any) error
	// RecvFromSlave transfers a value slave i -> master.
	RecvFromSlave(i int) (any, error)
	// SlaveSend transfers a value from slave i to the master.
	SlaveSend(i int, v any) error
	// SlaveRecv receives the next master value at slave i.
	SlaveRecv(i int) (any, error)
	// SendToSlaveBatch transfers every item of vs master -> slave i as
	// one lane operation: an ordered stream of independent items, paying
	// one coordination handshake for the whole batch on the Reo fabric
	// (the Orig fabric loops over its channel). The fabric reads vs in
	// place; do not mutate it until the call returns.
	SendToSlaveBatch(i int, vs []any) error
	// RecvFromSlaveBatch fills buf with the next len(buf) values from
	// slave i, returning how many leading slots were filled (len(buf) on
	// nil error).
	RecvFromSlaveBatch(i int, buf []any) (int, error)
	// SlaveSendBatch transfers every item of vs slave i -> master as one
	// lane operation.
	SlaveSendBatch(i int, vs []any) error
	// SlaveRecvBatch fills buf with the next len(buf) master values at
	// slave i.
	SlaveRecvBatch(i int, buf []any) (int, error)
	// Close tears the fabric down.
	Close() error
	// Steps reports connector global steps (0 for Orig).
	Steps() int64
}

// DefaultBatch is the scatter/gather batching degree the NPB programs
// use: work units per slave per round, moved through the fabric with the
// batched lane operations. 1 (the default) reproduces the paper's
// one-message-per-round structure on the scalar path. Benchmark drivers
// (cmd/fig13 -batch) override it before running; it must not be mutated
// concurrently with runs.
var DefaultBatch = 1

// batchDegree clamps the configured batch against a round's work-unit
// count: a batch cannot be wider than the units available to fill it,
// but never drops below one job per slave (a slave with an empty work
// range still gets its message, as the scalar structure always did).
func batchDegree(units int) int {
	b := DefaultBatch
	if b > units {
		b = units
	}
	if b < 1 {
		b = 1
	}
	return b
}

// PipeComm extends Comm with a slave-to-slave pipeline (LU's wavefront:
// "in one of the programs, additionally, the slaves are organized in a
// pipeline structure"). The pipeline is bidirectional: SSOR's forward
// sweep flows tokens downstream, the backward sweep upstream.
type PipeComm interface {
	Comm
	// PipeSend transfers a value slave i -> slave i+1.
	PipeSend(i int, v any) error
	// PipeRecv receives at slave i the value sent by slave i-1.
	PipeRecv(i int) (any, error)
	// PipeSendUp transfers a value slave i -> slave i-1.
	PipeSendUp(i int, v any) error
	// PipeRecvUp receives at slave i the value sent by slave i+1.
	PipeRecvUp(i int) (any, error)
}

// --- hand-written channel implementation ---------------------------------

type chanComm struct {
	toSlave   []chan any
	toMaster  []chan any
	pipe      []chan any // pipe[i]: slave i -> slave i+1
	pipeUp    []chan any // pipeUp[i]: slave i+1 -> slave i
	closed    chan struct{}
	closeOnce func()
}

// NewChanComm builds the Orig fabric: one buffered channel per direction
// per slave (the Foster-Chandy channels of the original programs).
func NewChanComm(n int, withPipe bool) PipeComm {
	c := &chanComm{
		toSlave:  make([]chan any, n),
		toMaster: make([]chan any, n),
		closed:   make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		c.toSlave[i] = make(chan any, 1)
		c.toMaster[i] = make(chan any, 1)
	}
	if withPipe {
		c.pipe = make([]chan any, n)
		c.pipeUp = make([]chan any, n)
		for i := range c.pipe {
			c.pipe[i] = make(chan any, 1)
			c.pipeUp[i] = make(chan any, 1)
		}
	}
	var once bool
	c.closeOnce = func() {
		if !once {
			once = true
			close(c.closed)
		}
	}
	return c
}

func (c *chanComm) send(ch chan any, v any) error {
	select {
	case ch <- v:
		return nil
	case <-c.closed:
		return fmt.Errorf("npb: comm closed")
	}
}

func (c *chanComm) recv(ch chan any) (any, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-c.closed:
		return nil, fmt.Errorf("npb: comm closed")
	}
}

// sendBatch loops the hand-written channel send: the Orig fabric has no
// cheaper bulk primitive, which is exactly the asymmetry the batched
// benchmarks measure.
func (c *chanComm) sendBatch(ch chan any, vs []any) error {
	for _, v := range vs {
		if err := c.send(ch, v); err != nil {
			return err
		}
	}
	return nil
}

func (c *chanComm) recvBatch(ch chan any, buf []any) (int, error) {
	for i := range buf {
		v, err := c.recv(ch)
		if err != nil {
			return i, err
		}
		buf[i] = v
	}
	return len(buf), nil
}

func (c *chanComm) SendToSlave(i int, v any) error   { return c.send(c.toSlave[i], v) }
func (c *chanComm) RecvFromSlave(i int) (any, error) { return c.recv(c.toMaster[i]) }
func (c *chanComm) SlaveSend(i int, v any) error     { return c.send(c.toMaster[i], v) }
func (c *chanComm) SlaveRecv(i int) (any, error)     { return c.recv(c.toSlave[i]) }

func (c *chanComm) SendToSlaveBatch(i int, vs []any) error { return c.sendBatch(c.toSlave[i], vs) }
func (c *chanComm) RecvFromSlaveBatch(i int, buf []any) (int, error) {
	return c.recvBatch(c.toMaster[i], buf)
}
func (c *chanComm) SlaveSendBatch(i int, vs []any) error { return c.sendBatch(c.toMaster[i], vs) }
func (c *chanComm) SlaveRecvBatch(i int, buf []any) (int, error) {
	return c.recvBatch(c.toSlave[i], buf)
}
func (c *chanComm) PipeSend(i int, v any) error   { return c.send(c.pipe[i], v) }
func (c *chanComm) PipeRecv(i int) (any, error)   { return c.recv(c.pipe[i-1]) }
func (c *chanComm) PipeSendUp(i int, v any) error { return c.send(c.pipeUp[i-1], v) }
func (c *chanComm) PipeRecvUp(i int) (any, error) { return c.recv(c.pipeUp[i]) }
func (c *chanComm) Steps() int64                  { return 0 }
func (c *chanComm) Close() error                  { c.closeOnce(); return nil }

// --- Reo connector implementation -----------------------------------------

// masterSlavesSrc is the scatter/gather connector: a Fifo1 lane per
// direction per slave, exactly the communication structure of the
// channel fabric, but generated from a protocol definition.
const masterSlavesSrc = `
MasterSlaves(mo[],so[];si[],mi[]) =
    prod (i:1..#mo) Fifo1(mo[i];si[i])
    mult prod (i:1..#so) Fifo1(so[i];mi[i])
`

// masterSlavesPipeSrc adds the bidirectional slave pipeline for LU:
// po/pi are the downstream lanes (slave i to i+1), qo/qi the upstream
// lanes (slave i+1 to i).
const masterSlavesPipeSrc = `
MasterSlavesPipe(mo[],so[],po[],qo[];si[],mi[],pi[],qi[]) =
    prod (i:1..#mo) Fifo1(mo[i];si[i])
    mult prod (i:1..#so) Fifo1(so[i];mi[i])
    mult prod (i:1..#po) Fifo1(po[i];pi[i])
    mult prod (i:1..#qo) Fifo1(qo[i];qi[i])
`

var (
	msProg   = reo.MustCompile(masterSlavesSrc)
	msPPProg = reo.MustCompile(masterSlavesPipeSrc)
)

// ConnectorSources exposes the NPB connector definitions as corpus
// seeds for the compiler fuzz targets.
func ConnectorSources() []string {
	return []string{masterSlavesSrc, masterSlavesPipeSrc}
}

type reoComm struct {
	inst *reo.Instance
	mo   []reo.Outport
	mi   []reo.Inport
	so   []reo.Outport
	si   []reo.Inport
	po   []reo.Outport
	pi   []reo.Inport
	qo   []reo.Outport
	qi   []reo.Inport
}

// ReoCommOptions configure the generated connector's engine (mode,
// partitioning, expansion rule) — the knobs of experiments E4/E5.
type ReoCommOptions struct {
	Opts []reo.ConnectOption
	// GenOpts configure the Gen variant's runtime (seed, worker pool);
	// the interpreted knobs in Opts do not apply there because the
	// generated fabric always runs region-partitioned.
	GenOpts []msfabric.Option
}

// DefaultReoOptions is the engine configuration the programs' Reo
// variants use. Benchmark drivers (cmd/fig13 -partition, E5) override it
// before running; it must not be mutated concurrently with runs.
var DefaultReoOptions ReoCommOptions

// NewReoComm builds the Reo fabric for n slaves.
func NewReoComm(n int, withPipe bool, rc ReoCommOptions) (PipeComm, error) {
	var conn *reo.Connector
	var lengths map[string]int
	var err error
	if withPipe {
		conn, err = msPPProg.Connector("MasterSlavesPipe")
		np := n - 1
		if np < 1 {
			np = 1 // a single-slave pipeline still needs a (unused) lane
		}
		lengths = map[string]int{"mo": n, "so": n, "si": n, "mi": n,
			"po": np, "pi": np, "qo": np, "qi": np}
	} else {
		conn, err = msProg.Connector("MasterSlaves")
		lengths = map[string]int{"mo": n, "so": n, "si": n, "mi": n}
	}
	if err != nil {
		return nil, err
	}
	inst, err := conn.Connect(lengths, rc.Opts...)
	if err != nil {
		return nil, err
	}
	c := &reoComm{
		inst: inst,
		mo:   inst.Outports("mo"),
		mi:   inst.Inports("mi"),
		so:   inst.Outports("so"),
		si:   inst.Inports("si"),
	}
	if withPipe {
		c.po = inst.Outports("po")
		c.pi = inst.Inports("pi")
		c.qo = inst.Outports("qo")
		c.qi = inst.Inports("qi")
	}
	return c, nil
}

func (c *reoComm) SendToSlave(i int, v any) error   { return c.mo[i].Send(v) }
func (c *reoComm) RecvFromSlave(i int) (any, error) { return c.mi[i].Recv() }
func (c *reoComm) SlaveSend(i int, v any) error     { return c.so[i].Send(v) }
func (c *reoComm) SlaveRecv(i int) (any, error)     { return c.si[i].Recv() }

func (c *reoComm) SendToSlaveBatch(i int, vs []any) error { return c.mo[i].SendBatch(vs) }
func (c *reoComm) RecvFromSlaveBatch(i int, buf []any) (int, error) {
	return c.mi[i].RecvBatch(buf)
}
func (c *reoComm) SlaveSendBatch(i int, vs []any) error { return c.so[i].SendBatch(vs) }
func (c *reoComm) SlaveRecvBatch(i int, buf []any) (int, error) {
	return c.si[i].RecvBatch(buf)
}
func (c *reoComm) PipeSend(i int, v any) error   { return c.po[i].Send(v) }
func (c *reoComm) PipeRecv(i int) (any, error)   { return c.pi[i-1].Recv() }
func (c *reoComm) PipeSendUp(i int, v any) error { return c.qo[i-1].Send(v) }
func (c *reoComm) PipeRecvUp(i int) (any, error) { return c.qi[i].Recv() }
func (c *reoComm) Steps() int64                  { return c.inst.Steps() }
func (c *reoComm) Close() error                  { return c.inst.Close() }

// --- generated (parametric static code) implementation --------------------

// genComm runs the MasterSlaves scatter/gather structure on the
// generated backend: internal/genlib/msfabric holds the statically
// emitted per-region code (`reoc gen -parametric` output over the same
// connector text as masterSlavesSrc), and New(n) instantiates it at the
// requested slave count — no per-N expansion, no interpretation of the
// hot dispatch.
type genComm struct {
	inst           *msfabric.Instance
	mo, mi, so, si []string
}

// NewGenComm builds the generated fabric for n slaves. The msfabric
// package has no slave pipeline, so withPipe (LU's wavefront) requires
// the interpreted Reo variant.
func NewGenComm(n int, withPipe bool, rc ReoCommOptions) (PipeComm, error) {
	if withPipe {
		return nil, fmt.Errorf("npb: the generated fabric has no slave pipeline; run LU on the reo variant")
	}
	inst, err := msfabric.New(n, rc.GenOpts...)
	if err != nil {
		return nil, err
	}
	return &genComm{
		inst: inst,
		mo:   inst.Ports("mo"),
		mi:   inst.Ports("mi"),
		so:   inst.Ports("so"),
		si:   inst.Ports("si"),
	}, nil
}

func (c *genComm) SendToSlave(i int, v any) error   { return c.inst.Send(c.mo[i], v) }
func (c *genComm) RecvFromSlave(i int) (any, error) { return c.inst.Recv(c.mi[i]) }
func (c *genComm) SlaveSend(i int, v any) error     { return c.inst.Send(c.so[i], v) }
func (c *genComm) SlaveRecv(i int) (any, error)     { return c.inst.Recv(c.si[i]) }

func (c *genComm) SendToSlaveBatch(i int, vs []any) error {
	_, err := c.inst.SendBatch(c.mo[i], vs)
	return err
}
func (c *genComm) RecvFromSlaveBatch(i int, buf []any) (int, error) {
	return c.inst.RecvBatch(c.mi[i], buf)
}
func (c *genComm) SlaveSendBatch(i int, vs []any) error {
	_, err := c.inst.SendBatch(c.so[i], vs)
	return err
}
func (c *genComm) SlaveRecvBatch(i int, buf []any) (int, error) {
	return c.inst.RecvBatch(c.si[i], buf)
}
func (c *genComm) PipeSend(i int, v any) error {
	return fmt.Errorf("npb: generated fabric has no pipeline")
}
func (c *genComm) PipeRecv(i int) (any, error) {
	return nil, fmt.Errorf("npb: generated fabric has no pipeline")
}
func (c *genComm) PipeSendUp(i int, v any) error {
	return fmt.Errorf("npb: generated fabric has no pipeline")
}
func (c *genComm) PipeRecvUp(i int) (any, error) {
	return nil, fmt.Errorf("npb: generated fabric has no pipeline")
}
func (c *genComm) Steps() int64 { return c.inst.Steps() }
func (c *genComm) Close() error { return c.inst.Close() }

// NewComm builds the fabric for a variant.
func NewComm(variant Variant, n int, withPipe bool, rc ReoCommOptions) (PipeComm, error) {
	switch variant {
	case Orig:
		return NewChanComm(n, withPipe), nil
	case Reo:
		return NewReoComm(n, withPipe, rc)
	case Gen:
		return NewGenComm(n, withPipe, rc)
	}
	return nil, fmt.Errorf("npb: variant %v has no comm", variant)
}

// runMasterSlaves is the shared parallel skeleton: it spawns the master
// and n slaves as goroutines over the fabric and waits for completion.
func runMasterSlaves(variant Variant, n int, withPipe bool, rc ReoCommOptions,
	master func(c Comm) error, slave func(c PipeComm, i int) error) (int64, error) {

	comm, err := NewComm(variant, n, withPipe, rc)
	if err != nil {
		return 0, err
	}
	errc := make(chan error, n+1)
	go func() { errc <- master(comm) }()
	for i := 0; i < n; i++ {
		go func(i int) { errc <- slave(comm, i) }(i)
	}
	var firstErr error
	for i := 0; i < n+1; i++ {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
			comm.Close() // unblock the other tasks
		}
	}
	steps := comm.Steps()
	comm.Close()
	return steps, firstErr
}
