package npb

import (
	"fmt"
	"math"
)

// MG is the multigrid kernel: V-cycles of the NPB MG scheme (residual,
// restriction, prolongation, point smoothing) on a 3D Poisson problem.
// Slaves own z-slabs of every grid level; arrays are shared (as in the
// Java-threads NPB) and every grid operation is one scatter/gather round:
// the master broadcasts the operation, slaves apply it to their slab, and
// the gather acts as the barrier between operations.
type MG struct{}

// NewMG returns the MG kernel.
func NewMG() *MG { return &MG{} }

// Name returns "MG".
func (*MG) Name() string { return "MG" }

type mgParams struct {
	size  int // grid edge (power of 2)
	iters int
}

func mgSizes(c Class) mgParams {
	switch c {
	case ClassS:
		return mgParams{size: 16, iters: 2}
	case ClassW:
		return mgParams{size: 32, iters: 3}
	case ClassA:
		return mgParams{size: 64, iters: 4}
	case ClassB:
		return mgParams{size: 64, iters: 12}
	default:
		return mgParams{size: 128, iters: 6}
	}
}

// grid3 is a dense 3D array with 1-cell borders handled by clamping.
type grid3 struct {
	n int
	v []float64
}

func newGrid3(n int) *grid3 { return &grid3{n: n, v: make([]float64, n*n*n)} }

func (g *grid3) at(x, y, z int) float64 {
	if x < 0 || y < 0 || z < 0 || x >= g.n || y >= g.n || z >= g.n {
		return 0 // homogeneous Dirichlet boundary
	}
	return g.v[(x*g.n+y)*g.n+z]
}

func (g *grid3) set(x, y, z int, val float64) { g.v[(x*g.n+y)*g.n+z] = val }

// mgLevels is the grid hierarchy: level 0 is finest.
type mgLevels struct {
	u, r, tmp []*grid3
	rhs       *grid3
}

func newMGLevels(n int) *mgLevels {
	var l mgLevels
	for s := n; s >= 4; s /= 2 {
		l.u = append(l.u, newGrid3(s))
		l.r = append(l.r, newGrid3(s))
		l.tmp = append(l.tmp, newGrid3(s))
	}
	l.rhs = newGrid3(n)
	return &l
}

// mgInitRHS places the NPB-style +1/-1 point charges deterministically.
func mgInitRHS(rhs *grid3) {
	r := NewRand(314159265)
	n := rhs.n
	for k := 0; k < 10; k++ {
		x := int(r.Next() * float64(n))
		y := int(r.Next() * float64(n))
		z := int(r.Next() * float64(n))
		val := 1.0
		if k%2 == 1 {
			val = -1
		}
		rhs.set(x, y, z, val)
	}
}

// The four grid operations, each applied to an x-slab [lo,hi).

// mgResidual: r = rhs - A·u with the 7-point Laplacian.
func mgResidual(u, rhs, r *grid3, lo, hi int) {
	n := u.n
	for x := lo; x < hi; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				au := 6*u.at(x, y, z) - u.at(x-1, y, z) - u.at(x+1, y, z) -
					u.at(x, y-1, z) - u.at(x, y+1, z) - u.at(x, y, z-1) - u.at(x, y, z+1)
				r.set(x, y, z, rhs.at(x, y, z)-au)
			}
		}
	}
}

// mgRestrict: coarse = average of fine (full weighting simplified to
// 2x2x2 box averaging).
func mgRestrict(fine, coarse *grid3, lo, hi int) {
	for x := lo; x < hi; x++ {
		for y := 0; y < coarse.n; y++ {
			for z := 0; z < coarse.n; z++ {
				var s float64
				for dx := 0; dx < 2; dx++ {
					for dy := 0; dy < 2; dy++ {
						for dz := 0; dz < 2; dz++ {
							s += fine.at(2*x+dx, 2*y+dy, 2*z+dz)
						}
					}
				}
				coarse.set(x, y, z, s/8)
			}
		}
	}
}

// mgProlongAdd: fine += piecewise-constant interpolation of coarse.
func mgProlongAdd(coarse, fine *grid3, lo, hi int) {
	for x := lo; x < hi; x++ {
		for y := 0; y < fine.n; y++ {
			for z := 0; z < fine.n; z++ {
				fine.v[(x*fine.n+y)*fine.n+z] += coarse.at(x/2, y/2, z/2)
			}
		}
	}
}

// mgSmooth: weighted-Jacobi step u' = u + w·(r - A·u)/6 written into out
// (separate arrays keep slab writes race-free).
func mgSmooth(u, r, out *grid3, lo, hi int) {
	n := u.n
	const w = 0.8
	for x := lo; x < hi; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				au := 6*u.at(x, y, z) - u.at(x-1, y, z) - u.at(x+1, y, z) -
					u.at(x, y-1, z) - u.at(x, y+1, z) - u.at(x, y, z-1) - u.at(x, y, z+1)
				out.set(x, y, z, u.at(x, y, z)+w*(r.at(x, y, z)-au)/6)
			}
		}
	}
}

// mgOp is a broadcast grid operation.
type mgOp struct {
	Kind   string // residual | restrict | prolong | smooth | copy | zero | stop
	Level  int
	SrcIsR bool
	L      *mgLevels
}

// mgApply runs one operation on an x-slab of the given level.
func mgApply(op mgOp, slaves, slave int) {
	l := op.L
	lev := op.Level
	switch op.Kind {
	case "residual":
		lo, hi := splitRange(l.u[lev].n, slaves, slave)
		rhs := l.rhs
		if lev > 0 {
			rhs = l.r[lev] // on coarse levels the restricted residual is the rhs
		}
		// Write into tmp to keep rhs intact, then the caller copies.
		mgResidual(l.u[lev], rhs, l.tmp[lev], lo, hi)
	case "restrict":
		lo, hi := splitRange(l.u[lev+1].n, slaves, slave)
		mgRestrict(l.tmp[lev], l.r[lev+1], lo, hi)
	case "prolong":
		lo, hi := splitRange(l.u[lev].n, slaves, slave)
		mgProlongAdd(l.u[lev+1], l.u[lev], lo, hi)
	case "smooth":
		lo, hi := splitRange(l.u[lev].n, slaves, slave)
		rhs := l.rhs
		if lev > 0 {
			rhs = l.r[lev]
		}
		mgSmooth(l.u[lev], rhs, l.tmp[lev], lo, hi)
	case "copy":
		lo, hi := splitRange(l.u[lev].n, slaves, slave)
		n := l.u[lev].n
		copy(l.u[lev].v[lo*n*n:hi*n*n], l.tmp[lev].v[lo*n*n:hi*n*n])
	case "zero":
		lo, hi := splitRange(l.u[lev].n, slaves, slave)
		n := l.u[lev].n
		s := l.u[lev].v[lo*n*n : hi*n*n]
		for i := range s {
			s[i] = 0
		}
	}
}

// mgSequence yields the operation list of one V-cycle.
func mgSequence(levels int) []mgOp {
	var ops []mgOp
	// Descend: smooth, residual, restrict.
	for lev := 0; lev < levels-1; lev++ {
		ops = append(ops,
			mgOp{Kind: "smooth", Level: lev}, mgOp{Kind: "copy", Level: lev},
			mgOp{Kind: "residual", Level: lev},
			mgOp{Kind: "restrict", Level: lev},
			mgOp{Kind: "zero", Level: lev + 1},
		)
	}
	// Bottom: a few smoothings.
	for k := 0; k < 4; k++ {
		ops = append(ops,
			mgOp{Kind: "smooth", Level: levels - 1}, mgOp{Kind: "copy", Level: levels - 1})
	}
	// Ascend: prolong, smooth.
	for lev := levels - 2; lev >= 0; lev-- {
		ops = append(ops,
			mgOp{Kind: "prolong", Level: lev},
			mgOp{Kind: "smooth", Level: lev}, mgOp{Kind: "copy", Level: lev},
		)
	}
	return ops
}

// mgChecksum is the L2 norm of the final fine-grid residual.
func mgChecksum(l *mgLevels) float64 {
	mgResidual(l.u[0], l.rhs, l.tmp[0], 0, l.u[0].n)
	var s float64
	for _, v := range l.tmp[0].v {
		s += v * v
	}
	return math.Sqrt(s)
}

func mgRun(prm mgParams, apply func(op mgOp) error) (*mgLevels, error) {
	l := newMGLevels(prm.size)
	mgInitRHS(l.rhs)
	levels := len(l.u)
	for it := 0; it < prm.iters; it++ {
		for _, op := range mgSequence(levels) {
			op.L = l
			if err := apply(op); err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}

// Run executes MG.
func (m *MG) Run(class Class, variant Variant, slaves int) (*Result, error) {
	prm := mgSizes(class)
	want := cachedSerial("MG/"+class.String(), func() float64 {
		serialLevels, _ := mgRun(prm, func(op mgOp) error {
			mgApply(op, 1, 0)
			return nil
		})
		return mgChecksum(serialLevels)
	})
	res := &Result{Program: m.Name(), Class: class, Variant: variant, Slaves: slaves}
	if variant == Serial {
		res.Checksum = want
		res.Verified = true
		return res, nil
	}

	var got float64
	master := func(c Comm) error {
		l, err := mgRun(prm, func(op mgOp) error {
			for i := 0; i < slaves; i++ {
				if err := c.SendToSlave(i, op); err != nil {
					return err
				}
			}
			for i := 0; i < slaves; i++ {
				if _, err := c.RecvFromSlave(i); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		got = mgChecksum(l)
		for i := 0; i < slaves; i++ {
			if err := c.SendToSlave(i, mgOp{Kind: "stop"}); err != nil {
				return err
			}
		}
		return nil
	}
	slave := func(c PipeComm, i int) error {
		for {
			v, err := c.SlaveRecv(i)
			if err != nil {
				return err
			}
			op := v.(mgOp)
			if op.Kind == "stop" {
				return nil
			}
			mgApply(op, slaves, i)
			if err := c.SlaveSend(i, struct{}{}); err != nil {
				return err
			}
		}
	}
	steps, err := runMasterSlaves(variant, slaves, false, DefaultReoOptions, master, slave)
	if err != nil {
		return nil, err
	}
	res.Steps = steps
	res.Checksum = got
	res.Verified = closeEnough(got, want)
	if !res.Verified {
		return res, fmt.Errorf("MG: residual %g, want %g", got, want)
	}
	return res, nil
}
