package npb

import (
	"fmt"
	"math"
)

// EP is the "embarrassingly parallel" kernel: generate pairs of uniform
// deviates with the NPB LCG, transform them into Gaussian deviates by the
// acceptance-rejection scheme, and tally them per square annulus. The
// only communication is the final reduction — the baseline for
// coordination overhead.
type EP struct{}

// NewEP returns the EP kernel.
func NewEP() *EP { return &EP{} }

// Name returns "EP".
func (*EP) Name() string { return "EP" }

const epSeed = 271828183

// epPairs returns the number of generated pairs per class (NPB uses
// 2^24 … 2^32; scaled down ~2^8 for laptop time budgets).
func epPairs(c Class) int {
	switch c {
	case ClassS:
		return 1 << 16
	case ClassW:
		return 1 << 18
	case ClassA:
		return 1 << 20
	case ClassB:
		return 1 << 22
	default:
		return 1 << 24
	}
}

// epAccum is the per-chunk tally.
type epAccum struct {
	Q      [10]int64
	Sx, Sy float64
	Pairs  int64
}

func (a *epAccum) add(b epAccum) {
	for i := range a.Q {
		a.Q[i] += b.Q[i]
	}
	a.Sx += b.Sx
	a.Sy += b.Sy
	a.Pairs += b.Pairs
}

// epChunk processes pairs [lo,hi) of the global stream.
func epChunk(lo, hi int) epAccum {
	r := NewRand(epSeed)
	r.Skip(uint64(2 * lo))
	var acc epAccum
	for k := lo; k < hi; k++ {
		x := 2*r.Next() - 1
		y := 2*r.Next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx := x * f
		gy := y * f
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l > 9 {
			l = 9
		}
		acc.Q[l]++
		acc.Sx += gx
		acc.Sy += gy
		acc.Pairs++
	}
	return acc
}

func (a epAccum) checksum() float64 {
	s := a.Sx + a.Sy
	for i, q := range a.Q {
		s += float64(i+1) * float64(q)
	}
	return s
}

// Run executes EP.
func (p *EP) Run(class Class, variant Variant, slaves int) (*Result, error) {
	pairs := epPairs(class)
	want := cachedSerial("EP/"+class.String(), func() float64 {
		return epChunk(0, pairs).checksum()
	})
	res := &Result{Program: p.Name(), Class: class, Variant: variant, Slaves: slaves}

	if variant == Serial {
		res.Checksum = want
		res.Verified = true
		return res, nil
	}

	// Scatter/gather over the batched lanes: each slave's range is split
	// into batch sub-chunks sent as one ordered lane batch, and the
	// slave's partial tallies come back the same way — one coordination
	// handshake per slave per direction, whatever the batch degree. The
	// default batch of 1 is the paper's one-message-per-slave structure,
	// running the very same code path.
	batch := batchDegree(pairs / slaves)
	var total epAccum
	master := func(c Comm) error {
		jobs := make([]any, batch)
		for i := 0; i < slaves; i++ {
			lo, hi := splitRange(pairs, slaves, i)
			for j := 0; j < batch; j++ {
				jlo, jhi := splitRange(hi-lo, batch, j)
				jobs[j] = [2]int{lo + jlo, lo + jhi}
			}
			if err := c.SendToSlaveBatch(i, jobs); err != nil {
				return err
			}
		}
		accs := make([]any, batch)
		for i := 0; i < slaves; i++ {
			if _, err := c.RecvFromSlaveBatch(i, accs); err != nil {
				return err
			}
			for _, a := range accs {
				total.add(a.(epAccum))
			}
		}
		return nil
	}
	slave := func(c PipeComm, i int) error {
		jobs := make([]any, batch)
		if _, err := c.SlaveRecvBatch(i, jobs); err != nil {
			return err
		}
		accs := make([]any, batch)
		for j, v := range jobs {
			b := v.([2]int)
			accs[j] = epChunk(b[0], b[1])
		}
		return c.SlaveSendBatch(i, accs)
	}
	steps, err := runMasterSlaves(variant, slaves, false, DefaultReoOptions, master, slave)
	if err != nil {
		return nil, err
	}
	res.Steps = steps
	res.Checksum = total.checksum()
	res.Verified = closeEnough(res.Checksum, want) && total.Pairs > 0
	if !res.Verified {
		return res, fmt.Errorf("EP: checksum %g, want %g", res.Checksum, want)
	}
	return res, nil
}
