package npb

import (
	"fmt"
	"math"
)

// CG estimates the smallest eigenvalue of a sparse symmetric positive
// definite matrix by inverse power iteration, solving A·z = x with the
// conjugate gradient method. Matrix rows are partitioned across slaves;
// every CG step broadcasts the direction vector and gathers the partial
// mat-vec rows and partial dot products — the master–slaves kernel shown
// in Fig. 13 (left panels).
type CG struct{}

// NewCG returns the CG kernel.
func NewCG() *CG { return &CG{} }

// Name returns "CG".
func (*CG) Name() string { return "CG" }

type cgParams struct {
	n       int // matrix order
	nzRow   int // off-diagonal entries generated per row
	outer   int // inverse power iterations
	cgSteps int // CG steps per solve
	shift   float64
}

func cgSizes(c Class) cgParams {
	switch c {
	case ClassS:
		return cgParams{n: 1000, nzRow: 6, outer: 4, cgSteps: 15, shift: 10}
	case ClassW:
		return cgParams{n: 4000, nzRow: 7, outer: 6, cgSteps: 20, shift: 12}
	case ClassA:
		return cgParams{n: 14000, nzRow: 8, outer: 8, cgSteps: 25, shift: 20}
	case ClassB:
		return cgParams{n: 35000, nzRow: 10, outer: 10, cgSteps: 25, shift: 60}
	default:
		return cgParams{n: 75000, nzRow: 12, outer: 12, cgSteps: 25, shift: 110}
	}
}

// sparseSym is a CSR sparse symmetric matrix.
type sparseSym struct {
	n      int
	rowPtr []int32
	colIdx []int32
	val    []float64
}

// cgMakeA generates the test matrix deterministically: nzRow random
// symmetric off-diagonal pairs per row plus a dominant diagonal — SPD by
// diagonal dominance (a simplified analogue of NPB's makea).
func cgMakeA(p cgParams) *sparseSym {
	r := NewRand(314159265)
	rows := make([]map[int32]float64, p.n)
	for i := range rows {
		rows[i] = make(map[int32]float64, p.nzRow*2+1)
	}
	for i := 0; i < p.n; i++ {
		for k := 0; k < p.nzRow; k++ {
			j := int32(r.Next() * float64(p.n))
			v := 2*r.Next() - 1
			if int(j) == i {
				continue
			}
			rows[i][j] += v
			rows[int(j)][int32(i)] += v
		}
	}
	a := &sparseSym{n: p.n, rowPtr: make([]int32, p.n+1)}
	for i := 0; i < p.n; i++ {
		var rowSum float64
		for _, v := range rows[i] {
			rowSum += math.Abs(v)
		}
		rows[i][int32(i)] = rowSum + p.shift
		// Deterministic column order.
		cols := make([]int32, 0, len(rows[i]))
		for j := range rows[i] {
			cols = append(cols, j)
		}
		sortInt32(cols)
		for _, j := range cols {
			a.colIdx = append(a.colIdx, j)
			a.val = append(a.val, rows[i][j])
		}
		a.rowPtr[i+1] = int32(len(a.colIdx))
	}
	return a
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// matVecRows computes q[lo:hi] = (A·p)[lo:hi] and returns the partial dot
// product p[lo:hi]·q[lo:hi].
func (a *sparseSym) matVecRows(p, q []float64, lo, hi int) float64 {
	var dot float64
	for i := lo; i < hi; i++ {
		var s float64
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			s += a.val[k] * p[a.colIdx[k]]
		}
		q[i] = s
		dot += p[i] * s
	}
	return dot
}

// cgState is the master-held solver state.
type cgState struct {
	a          *sparseSym
	x, z, r, p *[]float64
	q          []float64
}

// cgSerial runs the whole benchmark serially and returns the checksum.
func cgSerial(prm cgParams) float64 {
	a := cgMakeA(prm)
	solve := func(x []float64) ([]float64, float64) {
		n := a.n
		z := make([]float64, n)
		r := make([]float64, n)
		p := make([]float64, n)
		q := make([]float64, n)
		copy(r, x)
		copy(p, x)
		rho := dot(r, r)
		for it := 0; it < prm.cgSteps; it++ {
			pq := a.matVecRows(p, q, 0, n)
			alpha := rho / pq
			for i := 0; i < n; i++ {
				z[i] += alpha * p[i]
				r[i] -= alpha * q[i]
			}
			rho2 := dot(r, r)
			beta := rho2 / rho
			rho = rho2
			for i := 0; i < n; i++ {
				p[i] = r[i] + beta*p[i]
			}
		}
		return z, math.Sqrt(rho)
	}
	n := a.n
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	var zeta float64
	for outer := 0; outer < prm.outer; outer++ {
		z, _ := solve(x)
		zeta = prm.shift + 1/dot(x, z)
		norm := math.Sqrt(dot(z, z))
		for i := range x {
			x[i] = z[i] / norm
		}
	}
	return zeta
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// cgJob is the per-step broadcast; cgDone the per-step gather.
type cgJob struct {
	Op string // "matvec" or "stop"
	P  []float64
	Q  []float64
}

type cgDone struct {
	PartialPQ float64
}

// Run executes CG.
func (g *CG) Run(class Class, variant Variant, slaves int) (*Result, error) {
	prm := cgSizes(class)
	want := cachedSerial("CG/"+class.String(), func() float64 { return cgSerial(prm) })
	res := &Result{Program: g.Name(), Class: class, Variant: variant, Slaves: slaves}
	if variant == Serial {
		res.Checksum = want
		res.Verified = true
		return res, nil
	}

	a := cgMakeA(prm)
	n := a.n
	var zeta float64

	master := func(c Comm) error {
		// Distribute the matrix once (by reference, as in the Java
		// threads implementation; the scatter/gather rounds per CG step
		// are the measured coordination).
		for i := 0; i < slaves; i++ {
			if err := c.SendToSlave(i, a); err != nil {
				return err
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		z := make([]float64, n)
		r := make([]float64, n)
		p := make([]float64, n)
		q := make([]float64, n)

		matvec := func() (float64, error) {
			for i := 0; i < slaves; i++ {
				if err := c.SendToSlave(i, cgJob{Op: "matvec", P: p, Q: q}); err != nil {
					return 0, err
				}
			}
			var pq float64
			for i := 0; i < slaves; i++ {
				v, err := c.RecvFromSlave(i)
				if err != nil {
					return 0, err
				}
				pq += v.(cgDone).PartialPQ
			}
			return pq, nil
		}

		for outer := 0; outer < prm.outer; outer++ {
			for i := range z {
				z[i] = 0
			}
			copy(r, x)
			copy(p, x)
			rho := dot(r, r)
			for it := 0; it < prm.cgSteps; it++ {
				pq, err := matvec()
				if err != nil {
					return err
				}
				alpha := rho / pq
				for i := 0; i < n; i++ {
					z[i] += alpha * p[i]
					r[i] -= alpha * q[i]
				}
				rho2 := dot(r, r)
				beta := rho2 / rho
				rho = rho2
				for i := 0; i < n; i++ {
					p[i] = r[i] + beta*p[i]
				}
			}
			zeta = prm.shift + 1/dot(x, z)
			norm := math.Sqrt(dot(z, z))
			for i := range x {
				x[i] = z[i] / norm
			}
		}
		for i := 0; i < slaves; i++ {
			if err := c.SendToSlave(i, cgJob{Op: "stop"}); err != nil {
				return err
			}
		}
		return nil
	}

	slave := func(c PipeComm, i int) error {
		v, err := c.SlaveRecv(i)
		if err != nil {
			return err
		}
		mat := v.(*sparseSym)
		lo, hi := splitRange(mat.n, slaves, i)
		for {
			v, err := c.SlaveRecv(i)
			if err != nil {
				return err
			}
			job := v.(cgJob)
			if job.Op == "stop" {
				return nil
			}
			pq := mat.matVecRows(job.P, job.Q, lo, hi)
			if err := c.SlaveSend(i, cgDone{PartialPQ: pq}); err != nil {
				return err
			}
		}
	}

	steps, err := runMasterSlaves(variant, slaves, false, DefaultReoOptions, master, slave)
	if err != nil {
		return nil, err
	}
	res.Steps = steps
	res.Checksum = zeta
	res.Verified = closeEnough(zeta, want)
	if !res.Verified {
		return res, fmt.Errorf("CG: zeta %g, want %g", zeta, want)
	}
	return res, nil
}
