package npb

import (
	"fmt"
	"math"
	"sync"
)

// Class is an NPB problem class.
type Class byte

// Problem classes in increasing size.
const (
	ClassS Class = 'S'
	ClassW Class = 'W'
	ClassA Class = 'A'
	ClassB Class = 'B'
	ClassC Class = 'C'
)

// ParseClass converts a one-letter class name.
func ParseClass(s string) (Class, error) {
	if len(s) != 1 {
		return 0, fmt.Errorf("npb: bad class %q", s)
	}
	switch Class(s[0]) {
	case ClassS, ClassW, ClassA, ClassB, ClassC:
		return Class(s[0]), nil
	}
	return 0, fmt.Errorf("npb: bad class %q", s)
}

func (c Class) String() string { return string(c) }

// Variant selects the coordination implementation.
type Variant uint8

// Variants.
const (
	Serial Variant = iota
	Orig
	Reo
	// Gen runs the Reo coordination structure on the generated backend:
	// the parametric msfabric package (internal/genlib/msfabric), whose
	// per-region code was emitted once by `reoc gen -parametric` and is
	// instantiated at the requested slave count at run time.
	Gen
)

func (v Variant) String() string {
	switch v {
	case Serial:
		return "serial"
	case Orig:
		return "orig"
	case Gen:
		return "gen"
	default:
		return "reo"
	}
}

// Result is a program run's verification outcome.
type Result struct {
	Program  string
	Class    Class
	Variant  Variant
	Slaves   int
	Checksum float64
	Verified bool
	// Steps counts connector global steps (Reo variant only).
	Steps int64
}

// Program is one NPB benchmark program.
type Program interface {
	Name() string
	// Run executes the program. slaves is ignored for Serial.
	Run(class Class, variant Variant, slaves int) (*Result, error)
}

// Programs returns all seven NPB programs.
func Programs() []Program {
	return []Program{NewEP(), NewIS(), NewCG(), NewMG(), NewFT(), NewLU(), NewBT(), NewSP()}
}

// ProgramByName looks a program up.
func ProgramByName(name string) (Program, error) {
	for _, p := range Programs() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("npb: unknown program %q", name)
}

// --- NPB pseudorandom numbers -------------------------------------------
//
// The NPB linear congruential generator: x_{k+1} = a·x_k mod 2^46 with
// a = 5^13, yielding uniform doubles in (0,1) as x/2^46.

const (
	lcgA    = 1220703125 // 5^13
	lcgMod  = 1 << 46
	lcgMask = lcgMod - 1
)

// Rand is the NPB LCG.
type Rand struct{ x uint64 }

// NewRand seeds the generator (NPB uses 271828183 for EP, 314159265
// elsewhere).
func NewRand(seed uint64) *Rand { return &Rand{x: seed & lcgMask} }

// mulMod46 returns a*b mod 2^46 (exact: uint64 products of 46-bit values
// overflow, so split a into high/low 23-bit halves).
func mulMod46(a, b uint64) uint64 {
	const half = 1 << 23
	a1, a0 := a/half, a%half
	t := (a1 * b) % (lcgMod / half) // a1*b * 2^23 mod 2^46 needs a1*b mod 2^23
	return (t*half + a0*b) & lcgMask
}

// Next returns the next uniform double in (0,1).
func (r *Rand) Next() float64 {
	r.x = mulMod46(lcgA, r.x)
	return float64(r.x) / float64(lcgMod)
}

// Skip advances the generator by n steps in O(log n) (used by EP slaves
// to jump to their chunk's position in the stream).
func (r *Rand) Skip(n uint64) {
	a := uint64(lcgA)
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			r.x = mulMod46(a, r.x)
		}
		a = mulMod46(a, a)
	}
}

// Raw returns the raw 46-bit state (testing).
func (r *Rand) Raw() uint64 { return r.x }

// --- verification helpers -------------------------------------------------

// serialCache memoizes serial reference checksums per (program, class),
// so benchmark timings of the parallel variants are not dominated by
// recomputing the reference.
var serialCache sync.Map

func cachedSerial(key string, f func() float64) float64 {
	if v, ok := serialCache.Load(key); ok {
		return v.(float64)
	}
	v := f()
	serialCache.Store(key, v)
	return v
}

// closeEnough compares checksums with a relative tolerance.
func closeEnough(got, want float64) bool {
	if want == 0 {
		return math.Abs(got) < 1e-8
	}
	return math.Abs(got-want)/math.Abs(want) < 1e-8
}

// splitRange partitions [0,total) into n near-equal chunks; returns the
// bounds of chunk i.
func splitRange(total, n, i int) (lo, hi int) {
	base := total / n
	rem := total % n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
