package npb

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- tridiagonal solvers ---------------------------------------------------

// denseTriSolve solves the same constant-coefficient system by dense
// Gaussian elimination, as an oracle.
func denseTriSolve(d []float64, lambda float64) []float64 {
	n := len(d)
	A := make([][]float64, n)
	for i := range A {
		A[i] = make([]float64, n)
		A[i][i] = 1 + 2*lambda
		if i > 0 {
			A[i][i-1] = -lambda
		}
		if i < n-1 {
			A[i][i+1] = -lambda
		}
	}
	b := append([]float64(nil), d...)
	for i := 0; i < n; i++ {
		p := A[i][i]
		for j := i; j < n; j++ {
			A[i][j] /= p
		}
		b[i] /= p
		for k := i + 1; k < n; k++ {
			f := A[k][i]
			if f == 0 {
				continue
			}
			for j := i; j < n; j++ {
				A[k][j] -= f * A[i][j]
			}
			b[k] -= f * b[i]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		x[i] = b[i]
		for j := i + 1; j < n; j++ {
			x[i] -= A[i][j] * x[j]
		}
	}
	return x
}

func TestTriSolveAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	prop := func(nRaw uint8) bool {
		n := int(nRaw%30) + 2
		lambda := 0.3
		d := make([]float64, n)
		for i := range d {
			d[i] = r.Float64()*2 - 1
		}
		want := denseTriSolve(d, lambda)
		got := append([]float64(nil), d...)
		cp := make([]float64, n)
		triSolve(got, cp, lambda)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBlockTriSolveResidual: verify A·x = d for the 2x2 block system by
// recomputing the matrix-vector product.
func TestBlockTriSolveResidual(t *testing.T) {
	const n = 12
	const lambda = 0.25
	r := rand.New(rand.NewSource(9))
	d := make([]float64, 2*n)
	for i := range d {
		d[i] = r.Float64()*2 - 1
	}
	x := append([]float64(nil), d...)
	cp := make([]float64, 4*n)
	blockTriSolve(x, cp, lambda)

	// Recompute A·x with D = [[1+2λ, λ/2], [-λ/2, 1+2λ]], off-diag -λI.
	d11, d12 := 1+2*lambda, lambda/2
	d21, d22 := -lambda/2, 1+2*lambda
	for i := 0; i < n; i++ {
		gx := d11*x[2*i] + d12*x[2*i+1]
		gy := d21*x[2*i] + d22*x[2*i+1]
		if i > 0 {
			gx += -lambda * x[2*(i-1)]
			gy += -lambda * x[2*(i-1)+1]
		}
		if i < n-1 {
			gx += -lambda * x[2*(i+1)]
			gy += -lambda * x[2*(i+1)+1]
		}
		if math.Abs(gx-d[2*i]) > 1e-9 || math.Abs(gy-d[2*i+1]) > 1e-9 {
			t.Fatalf("residual at point %d: (%g, %g)", i, gx-d[2*i], gy-d[2*i+1])
		}
	}
}

// --- FFT -------------------------------------------------------------------

func TestFFTInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 8, 64, 256} {
		a := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range a {
			a[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
			orig[i] = a[i]
		}
		fft1(a, false)
		fft1(a, true)
		for i := range a {
			if cmplx.Abs(a[i]/complex(float64(n), 0)-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip failed at %d", n, i)
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n = 128
	a := make([]complex128, n)
	var timeEnergy float64
	for i := range a {
		a[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
		timeEnergy += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	fft1(a, false)
	var freqEnergy float64
	for i := range a {
		freqEnergy += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-9 {
		t.Fatalf("Parseval violated: %g vs %g", freqEnergy/float64(n), timeEnergy)
	}
}

func TestFFTKnownImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	a := make([]complex128, 16)
	a[0] = 1
	fft1(a, false)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT at %d = %v", i, v)
		}
	}
}

// --- multigrid -------------------------------------------------------------

// TestMGConverges: V-cycles must reduce the fine-grid residual.
func TestMGConverges(t *testing.T) {
	prm := mgParams{size: 16, iters: 1}
	l1, err := mgRun(prm, func(op mgOp) error { mgApply(op, 1, 0); return nil })
	if err != nil {
		t.Fatal(err)
	}
	r1 := mgChecksum(l1)
	prm.iters = 4
	l4, err := mgRun(prm, func(op mgOp) error { mgApply(op, 1, 0); return nil })
	if err != nil {
		t.Fatal(err)
	}
	r4 := mgChecksum(l4)
	if !(r4 < r1) {
		t.Errorf("V-cycles do not converge: r1=%g r4=%g", r1, r4)
	}
}

// TestMGSlabDecompositionExact: applying operations in slabs yields
// bit-identical grids to the serial application.
func TestMGSlabDecompositionExact(t *testing.T) {
	prm := mgParams{size: 16, iters: 2}
	serial, _ := mgRun(prm, func(op mgOp) error { mgApply(op, 1, 0); return nil })
	slabbed, _ := mgRun(prm, func(op mgOp) error {
		for s := 0; s < 4; s++ {
			mgApply(op, 4, s)
		}
		return nil
	})
	for i := range serial.u[0].v {
		if serial.u[0].v[i] != slabbed.u[0].v[i] {
			t.Fatalf("slab decomposition diverges at %d", i)
		}
	}
}

// --- LU --------------------------------------------------------------------

// TestLUConverges: SSOR residual decreases with iterations.
func TestLUConverges(t *testing.T) {
	p1 := luParams{n: 32, iters: 1, omega: 1.2}
	p8 := luParams{n: 32, iters: 8, omega: 1.2}
	if r1, r8 := luSerial(p1), luSerial(p8); !(r8 < r1) {
		t.Errorf("SSOR not converging: %g -> %g", r1, r8)
	}
}

// --- EP / IS ----------------------------------------------------------------

// TestEPChunkAdditive: splitting the pair range must tally identically to
// the whole range.
func TestEPChunkAdditive(t *testing.T) {
	const total = 1 << 12
	whole := epChunk(0, total)
	var sum epAccum
	for i := 0; i < 8; i++ {
		lo, hi := splitRange(total, 8, i)
		sum.add(epChunk(lo, hi))
	}
	if whole.Pairs != sum.Pairs || whole.Q != sum.Q {
		t.Fatalf("chunked tallies differ: %+v vs %+v", whole, sum)
	}
	if math.Abs(whole.Sx-sum.Sx) > 1e-9 || math.Abs(whole.Sy-sum.Sy) > 1e-9 {
		t.Fatalf("chunked sums differ")
	}
}

// TestISHistogramAdditive.
func TestISHistogramAdditive(t *testing.T) {
	const total = 1 << 12
	whole := isHistogram(isGenChunk(0, total))
	sum := make([]int64, isMaxKey)
	for i := 0; i < 5; i++ {
		lo, hi := splitRange(total, 5, i)
		for k, c := range isHistogram(isGenChunk(lo, hi)) {
			sum[k] += c
		}
	}
	for k := range whole {
		if whole[k] != sum[k] {
			t.Fatalf("histogram differs at key %d", k)
		}
	}
}

// TestSplitRangeCovers: chunks tile [0,total) exactly.
func TestSplitRangeCovers(t *testing.T) {
	prop := func(totalRaw, nRaw uint8) bool {
		total := int(totalRaw)
		n := int(nRaw%16) + 1
		prev := 0
		for i := 0; i < n; i++ {
			lo, hi := splitRange(total, n, i)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCGMatrixSymmetricSPD: the generated matrix is symmetric with a
// dominant diagonal.
func TestCGMatrixSymmetric(t *testing.T) {
	a := cgMakeA(cgParams{n: 200, nzRow: 5, shift: 10})
	get := func(i, j int) float64 {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if int(a.colIdx[k]) == j {
				return a.val[k]
			}
		}
		return 0
	}
	for i := 0; i < a.n; i++ {
		var off float64
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			j := int(a.colIdx[k])
			if j != i {
				off += math.Abs(a.val[k])
				if get(j, i) != a.val[k] {
					t.Fatalf("asymmetry at (%d,%d)", i, j)
				}
			}
		}
		if get(i, i) <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}
