package npb

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FT is the 3D FFT kernel: a forward 3D FFT of a pseudorandom complex
// field, followed by several evolution steps in the spectral domain, each
// checksummed. Slaves own slabs; 1D line FFTs along each axis are
// partitioned so that every line is owned by exactly one slave, with a
// scatter/gather barrier between axis passes (the shared-array analogue of
// NPB's transpose steps).
type FT struct{}

// NewFT returns the FT kernel.
func NewFT() *FT { return &FT{} }

// Name returns "FT".
func (*FT) Name() string { return "FT" }

type ftParams struct {
	n     int // cube edge (power of two)
	iters int
}

func ftSizes(c Class) ftParams {
	switch c {
	case ClassS:
		return ftParams{n: 16, iters: 2}
	case ClassW:
		return ftParams{n: 32, iters: 3}
	case ClassA:
		return ftParams{n: 64, iters: 4}
	case ClassB:
		return ftParams{n: 64, iters: 12}
	default:
		return ftParams{n: 128, iters: 6}
	}
}

// fft1 performs an in-place iterative radix-2 FFT on a of length n=2^k;
// invert selects the inverse transform (unscaled).
func fft1(a []complex128, invert bool) {
	n := len(a)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if invert {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// ftField is the shared cube, index (x*n+y)*n+z.
type ftField struct {
	n int
	v []complex128
}

func newFTField(n int) *ftField { return &ftField{n: n, v: make([]complex128, n*n*n)} }

func ftInit(f *ftField) {
	r := NewRand(314159265)
	for i := range f.v {
		f.v[i] = complex(r.Next()-0.5, r.Next()-0.5)
	}
}

// ftAxisPass FFTs all lines along the given axis whose owning index lies
// in [lo,hi). Ownership: z-axis lines owned by x; y-axis lines owned by
// x; x-axis lines owned by y — each line is touched by exactly one slave.
func ftAxisPass(f *ftField, axis int, invert bool, lo, hi int) {
	n := f.n
	line := make([]complex128, n)
	switch axis {
	case 2: // z lines: fixed (x,y); owner = x
		for x := lo; x < hi; x++ {
			for y := 0; y < n; y++ {
				base := (x*n + y) * n
				copy(line, f.v[base:base+n])
				fft1(line, invert)
				copy(f.v[base:base+n], line)
			}
		}
	case 1: // y lines: fixed (x,z); owner = x
		for x := lo; x < hi; x++ {
			for z := 0; z < n; z++ {
				for y := 0; y < n; y++ {
					line[y] = f.v[(x*n+y)*n+z]
				}
				fft1(line, invert)
				for y := 0; y < n; y++ {
					f.v[(x*n+y)*n+z] = line[y]
				}
			}
		}
	case 0: // x lines: fixed (y,z); owner = y
		for y := lo; y < hi; y++ {
			for z := 0; z < n; z++ {
				for x := 0; x < n; x++ {
					line[x] = f.v[(x*n+y)*n+z]
				}
				fft1(line, invert)
				for x := 0; x < n; x++ {
					f.v[(x*n+y)*n+z] = line[x]
				}
			}
		}
	}
}

// ftEvolve multiplies the spectrum slab by the evolution factors for
// step t.
func ftEvolve(f *ftField, t int, lo, hi int) {
	n := f.n
	alpha := 1e-6
	for x := lo; x < hi; x++ {
		kx := x
		if kx > n/2 {
			kx -= n
		}
		for y := 0; y < n; y++ {
			ky := y
			if ky > n/2 {
				ky -= n
			}
			for z := 0; z < n; z++ {
				kz := z
				if kz > n/2 {
					kz -= n
				}
				k2 := float64(kx*kx + ky*ky + kz*kz)
				f.v[(x*n+y)*n+z] *= complex(math.Exp(-4*alpha*math.Pi*math.Pi*k2*float64(t+1)), 0)
			}
		}
	}
}

// ftChecksum samples 64 spectrum entries along a fixed stride.
func ftChecksum(f *ftField) complex128 {
	var s complex128
	n3 := len(f.v)
	for j := 1; j <= 64; j++ {
		s += f.v[(j*j*31)%n3]
	}
	return s
}

// ftOp is one broadcast phase.
type ftOp struct {
	Kind   string // fft | evolve | stop
	Axis   int
	Invert bool
	T      int
	F      *ftField
}

func ftApply(op ftOp, slaves, slave int) {
	lo, hi := splitRange(op.F.n, slaves, slave)
	switch op.Kind {
	case "fft":
		ftAxisPass(op.F, op.Axis, op.Invert, lo, hi)
	case "evolve":
		ftEvolve(op.F, op.T, lo, hi)
	}
}

// ftSequence is the phase list of the whole benchmark run.
func ftSequence(iters int) []ftOp {
	ops := []ftOp{
		{Kind: "fft", Axis: 2}, {Kind: "fft", Axis: 1}, {Kind: "fft", Axis: 0},
	}
	for t := 0; t < iters; t++ {
		ops = append(ops, ftOp{Kind: "evolve", T: t})
	}
	return ops
}

func ftRun(prm ftParams, apply func(op ftOp) error) (*ftField, error) {
	f := newFTField(prm.n)
	ftInit(f)
	for _, op := range ftSequence(prm.iters) {
		op.F = f
		if err := apply(op); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Run executes FT.
func (p *FT) Run(class Class, variant Variant, slaves int) (*Result, error) {
	prm := ftSizes(class)
	want := cachedSerial("FT/"+class.String(), func() float64 {
		serialF, _ := ftRun(prm, func(op ftOp) error { ftApply(op, 1, 0); return nil })
		return cmplx.Abs(ftChecksum(serialF))
	})
	res := &Result{Program: p.Name(), Class: class, Variant: variant, Slaves: slaves}
	if variant == Serial {
		res.Checksum = want
		res.Verified = true
		return res, nil
	}

	var got float64
	master := func(c Comm) error {
		f, err := ftRun(prm, func(op ftOp) error {
			for i := 0; i < slaves; i++ {
				if err := c.SendToSlave(i, op); err != nil {
					return err
				}
			}
			for i := 0; i < slaves; i++ {
				if _, err := c.RecvFromSlave(i); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		got = cmplx.Abs(ftChecksum(f))
		for i := 0; i < slaves; i++ {
			if err := c.SendToSlave(i, ftOp{Kind: "stop"}); err != nil {
				return err
			}
		}
		return nil
	}
	slave := func(c PipeComm, i int) error {
		for {
			v, err := c.SlaveRecv(i)
			if err != nil {
				return err
			}
			op := v.(ftOp)
			if op.Kind == "stop" {
				return nil
			}
			ftApply(op, slaves, i)
			if err := c.SlaveSend(i, struct{}{}); err != nil {
				return err
			}
		}
	}
	steps, err := runMasterSlaves(variant, slaves, false, DefaultReoOptions, master, slave)
	if err != nil {
		return nil, err
	}
	res.Steps = steps
	res.Checksum = got
	res.Verified = closeEnough(got, want)
	if !res.Verified {
		return res, fmt.Errorf("FT: checksum %g, want %g", got, want)
	}
	return res, nil
}
