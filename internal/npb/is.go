package npb

import "fmt"

// IS is the integer-sort kernel: rank a stream of uniformly distributed
// integer keys by bucket counting. Communication: slaves histogram their
// key chunks, the master reduces the histograms into global bucket
// offsets, and slaves then rank their buckets — two scatter/gather rounds.
type IS struct{}

// NewIS returns the IS kernel.
func NewIS() *IS { return &IS{} }

// Name returns "IS".
func (*IS) Name() string { return "IS" }

const (
	isSeed    = 314159265
	isMaxKey  = 1 << 11
	isChkStep = 1021 // stride for the rank checksum (prime)
)

func isKeys(c Class) int {
	switch c {
	case ClassS:
		return 1 << 14
	case ClassW:
		return 1 << 16
	case ClassA:
		return 1 << 18
	case ClassB:
		return 1 << 20
	default:
		return 1 << 22
	}
}

// isKeyAt deterministically generates the k-th key of the stream.
func isGenChunk(lo, hi int) []int32 {
	r := NewRand(isSeed)
	r.Skip(uint64(lo))
	out := make([]int32, hi-lo)
	for i := range out {
		out[i] = int32(r.Next() * isMaxKey)
	}
	return out
}

// isHistogram counts keys per value.
func isHistogram(keys []int32) []int64 {
	h := make([]int64, isMaxKey)
	for _, k := range keys {
		h[k]++
	}
	return h
}

// isChecksum computes a deterministic function of the sorted key stream
// from the global histogram: for every key value v occupying positions
// [off, off+cnt) of the sorted order, add v multiplied by the number of
// checkpoint positions (multiples of isChkStep) inside the range.
func isChecksum(hist []int64, valueLo, valueHi int, prefix []int64) float64 {
	var s float64
	for v := valueLo; v < valueHi; v++ {
		off := prefix[v]
		cnt := hist[v]
		if cnt == 0 {
			continue
		}
		// Checkpoints in [off, off+cnt): ceil division bookkeeping.
		first := (off + isChkStep - 1) / isChkStep
		last := (off + cnt - 1) / isChkStep
		if k := last - first + 1; k > 0 {
			s += float64(v) * float64(k)
		}
	}
	return s
}

func isPrefix(hist []int64) []int64 {
	prefix := make([]int64, len(hist)+1)
	for v := 0; v < len(hist); v++ {
		prefix[v+1] = prefix[v] + hist[v]
	}
	return prefix
}

// isRankJob is the message of IS round 2.
type isRankJob struct {
	Hist   []int64
	Prefix []int64
	Lo, Hi int
}

func isSerial(class Class) float64 {
	n := isKeys(class)
	hist := isHistogram(isGenChunk(0, n))
	return isChecksum(hist, 0, isMaxKey, isPrefix(hist))
}

// Run executes IS.
func (p *IS) Run(class Class, variant Variant, slaves int) (*Result, error) {
	want := cachedSerial("IS/"+class.String(), func() float64 { return isSerial(class) })
	res := &Result{Program: p.Name(), Class: class, Variant: variant, Slaves: slaves}
	if variant == Serial {
		res.Checksum = want
		res.Verified = true
		return res, nil
	}

	n := isKeys(class)
	// Round 1's key ranges scatter as one ordered lane batch per slave
	// (batch sub-ranges each); the slave folds its sub-histograms locally,
	// so the gather stays one message. Batch 1 is the paper's structure.
	batch := batchDegree(n / slaves)
	var checksum float64
	master := func(c Comm) error {
		// Round 1: scatter key ranges, gather histograms.
		jobs := make([]any, batch)
		for i := 0; i < slaves; i++ {
			lo, hi := splitRange(n, slaves, i)
			for j := 0; j < batch; j++ {
				jlo, jhi := splitRange(hi-lo, batch, j)
				jobs[j] = [2]int{lo + jlo, lo + jhi}
			}
			if err := c.SendToSlaveBatch(i, jobs); err != nil {
				return err
			}
		}
		global := make([]int64, isMaxKey)
		for i := 0; i < slaves; i++ {
			v, err := c.RecvFromSlave(i)
			if err != nil {
				return err
			}
			for k, cnt := range v.([]int64) {
				global[k] += cnt
			}
		}
		prefix := isPrefix(global)
		// Round 2: scatter bucket-value ranges for ranking, gather
		// partial checksums.
		for i := 0; i < slaves; i++ {
			lo, hi := splitRange(isMaxKey, slaves, i)
			if err := c.SendToSlave(i, isRankJob{Hist: global, Prefix: prefix, Lo: lo, Hi: hi}); err != nil {
				return err
			}
		}
		for i := 0; i < slaves; i++ {
			v, err := c.RecvFromSlave(i)
			if err != nil {
				return err
			}
			checksum += v.(float64)
		}
		return nil
	}
	slave := func(c PipeComm, i int) error {
		jobs := make([]any, batch)
		if _, err := c.SlaveRecvBatch(i, jobs); err != nil {
			return err
		}
		hist := make([]int64, isMaxKey)
		for _, v := range jobs {
			b := v.([2]int)
			for k, cnt := range isHistogram(isGenChunk(b[0], b[1])) {
				hist[k] += cnt
			}
		}
		if err := c.SlaveSend(i, hist); err != nil {
			return err
		}
		v, err := c.SlaveRecv(i)
		if err != nil {
			return err
		}
		job := v.(isRankJob)
		return c.SlaveSend(i, isChecksum(job.Hist, job.Lo, job.Hi, job.Prefix))
	}
	steps, err := runMasterSlaves(variant, slaves, false, DefaultReoOptions, master, slave)
	if err != nil {
		return nil, err
	}
	res.Steps = steps
	res.Checksum = checksum
	res.Verified = closeEnough(checksum, want)
	if !res.Verified {
		return res, fmt.Errorf("IS: checksum %g, want %g", checksum, want)
	}
	return res, nil
}
