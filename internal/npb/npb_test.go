package npb_test

import (
	"fmt"
	"testing"

	"repro/internal/npb"
)

func TestLCGMatchesIteration(t *testing.T) {
	// Skip(n) must equal n sequential steps.
	a := npb.NewRand(271828183)
	for i := 0; i < 1000; i++ {
		a.Next()
	}
	b := npb.NewRand(271828183)
	b.Skip(1000)
	if a.Raw() != b.Raw() {
		t.Fatalf("skip mismatch: %d vs %d", a.Raw(), b.Raw())
	}
}

func TestLCGRange(t *testing.T) {
	r := npb.NewRand(314159265)
	for i := 0; i < 10000; i++ {
		v := r.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("LCG value %g out of (0,1)", v)
		}
	}
}

func TestLCGSkipZeroAndOne(t *testing.T) {
	a := npb.NewRand(99)
	b := npb.NewRand(99)
	b.Skip(0)
	if a.Raw() != b.Raw() {
		t.Fatal("skip(0) changed state")
	}
	a.Next()
	b.Skip(1)
	if a.Raw() != b.Raw() {
		t.Fatal("skip(1) != one step")
	}
}

// TestAllProgramsAllVariants verifies every NPB program at class S, for
// both coordination variants and several slave counts, against its serial
// reference — the correctness backbone of experiment E2-E4.
func TestAllProgramsAllVariants(t *testing.T) {
	for _, prog := range npb.Programs() {
		prog := prog
		t.Run(prog.Name(), func(t *testing.T) {
			t.Parallel()
			serial, err := prog.Run(npb.ClassS, npb.Serial, 1)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			if !serial.Verified {
				t.Fatal("serial not verified")
			}
			for _, variant := range []npb.Variant{npb.Orig, npb.Reo} {
				for _, n := range []int{1, 2, 4} {
					res, err := prog.Run(npb.ClassS, variant, n)
					if err != nil {
						t.Fatalf("%v N=%d: %v", variant, n, err)
					}
					if !res.Verified {
						t.Errorf("%v N=%d: not verified (checksum %g vs serial %g)",
							variant, n, res.Checksum, serial.Checksum)
					}
					if variant == npb.Reo && res.Steps == 0 {
						t.Errorf("%v N=%d: no connector steps recorded", variant, n)
					}
				}
			}
		})
	}
}

// TestClassWOneProgramEach spot-checks a larger class on the two Fig. 13
// programs.
// TestGeneratedVariant runs the master/slaves programs on the generated
// backend (npb.Gen: the parametric msfabric package) and requires the
// checksum to match the interpreted Reo variant bit for bit — the two
// backends run the same coordination structure, so the numerics cannot
// differ. EP and IS are the acceptance pair; the rest of the non-pipeline
// programs ride along at one slave count.
func TestGeneratedVariant(t *testing.T) {
	type cfg struct {
		name string
		ns   []int
	}
	cfgs := []cfg{
		{"EP", []int{1, 2, 4}},
		{"IS", []int{1, 2, 4}},
		{"CG", []int{2}},
		{"MG", []int{2}},
		{"FT", []int{2}},
		{"BT", []int{2}},
		{"SP", []int{2}},
	}
	for _, c := range cfgs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			prog, err := npb.ProgramByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range c.ns {
				reoRes, err := prog.Run(npb.ClassS, npb.Reo, n)
				if err != nil {
					t.Fatalf("reo N=%d: %v", n, err)
				}
				genRes, err := prog.Run(npb.ClassS, npb.Gen, n)
				if err != nil {
					t.Fatalf("gen N=%d: %v", n, err)
				}
				if !genRes.Verified {
					t.Errorf("gen N=%d: not verified (checksum %g)", n, genRes.Checksum)
				}
				if genRes.Checksum != reoRes.Checksum {
					t.Errorf("gen N=%d: checksum %g differs from interpreted %g",
						n, genRes.Checksum, reoRes.Checksum)
				}
				if genRes.Steps == 0 {
					t.Errorf("gen N=%d: no connector steps recorded", n)
				}
			}
		})
	}
}

// TestGeneratedVariantNoPipeline pins the LU restriction: the generated
// fabric has no slave pipeline, so the wavefront program must fail with a
// clear error instead of hanging or panicking.
func TestGeneratedVariantNoPipeline(t *testing.T) {
	prog, err := npb.ProgramByName("LU")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(npb.ClassS, npb.Gen, 2); err == nil {
		t.Fatal("LU on the generated fabric succeeded; want a no-pipeline error")
	}
}

func TestClassWFig13Programs(t *testing.T) {
	if testing.Short() {
		t.Skip("class W in -short mode")
	}
	for _, name := range []string{"CG", "LU"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := npb.ProgramByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, variant := range []npb.Variant{npb.Orig, npb.Reo} {
				res, err := prog.Run(npb.ClassW, variant, 4)
				if err != nil {
					t.Fatalf("%v: %v", variant, err)
				}
				if !res.Verified {
					t.Errorf("%v: not verified", variant)
				}
			}
		})
	}
}

func TestProgramByName(t *testing.T) {
	names := []string{"EP", "IS", "CG", "MG", "FT", "LU", "BT", "SP"}
	for _, n := range names {
		if _, err := npb.ProgramByName(n); err != nil {
			t.Errorf("missing program %s", n)
		}
	}
	if _, err := npb.ProgramByName("XX"); err == nil {
		t.Error("unknown program accepted")
	}
	if len(npb.Programs()) != 8 {
		t.Errorf("programs = %d, want 8 (7 NPB + both BT and SP substitutes)", len(npb.Programs()))
	}
}

func TestParseClass(t *testing.T) {
	for _, s := range []string{"S", "W", "A", "B", "C"} {
		c, err := npb.ParseClass(s)
		if err != nil || c.String() != s {
			t.Errorf("ParseClass(%q) = %v, %v", s, c, err)
		}
	}
	for _, s := range []string{"", "X", "SS"} {
		if _, err := npb.ParseClass(s); err == nil {
			t.Errorf("ParseClass(%q) accepted", s)
		}
	}
}

// TestReoCommPipeline checks the bidirectional pipeline lanes directly.
func TestReoCommPipeline(t *testing.T) {
	const n = 3
	comm, err := npb.NewComm(npb.Reo, n, true, npb.ReoCommOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer comm.Close()
	done := make(chan error, 4)
	go func() { done <- comm.PipeSend(0, "fwd") }()
	go func() {
		v, err := comm.PipeRecv(1)
		if err == nil && v != "fwd" {
			err = fmt.Errorf("fwd got %v", v)
		}
		done <- err
	}()
	go func() { done <- comm.PipeSendUp(2, "bwd") }()
	go func() {
		v, err := comm.PipeRecvUp(1)
		if err == nil && v != "bwd" {
			err = fmt.Errorf("bwd got %v", v)
		}
		done <- err
	}()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if comm.Steps() == 0 {
		t.Error("no steps counted on reo comm")
	}
}
