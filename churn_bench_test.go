// BenchmarkInstanceChurn and BenchmarkManyInstances measure the
// multi-instance serving path: alloc-cheap Connect/Close churn on the
// shared process runtime (reo.WithRuntime + reo.WithReuse) against the
// per-instance dedicated worker pool, and the steady-state fire rate
// with many connector instances live at once. `reoc bench-instances`
// runs the same cells standalone for the CI perf gate.
package reo_test

import (
	"fmt"
	"testing"

	reo "repro"
)

const churnProto = `Churn(a;b) = Fifo1(a;b)`

// BenchmarkInstanceChurn times one full Connect → Send → Recv → Close
// cycle per iteration. "dedicated" builds a fresh coordinator and
// worker pool each cycle; "shared" multiplexes onto the process-global
// runtime and recycles the instance through the template pool, so the
// cycle allocates (almost) nothing.
func BenchmarkInstanceChurn(b *testing.B) {
	prog := reo.MustCompile(churnProto)
	conn, err := prog.Connector("Churn")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts []reo.ConnectOption
	}{
		{"dedicated", []reo.ConnectOption{
			reo.WithPartitioning(reo.PartitionRegions), reo.WithWorkers(2)}},
		{"shared", []reo.ConnectOption{
			reo.WithPartitioning(reo.PartitionRegions), reo.WithRuntime(nil), reo.WithReuse(true)}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cycle := func() error {
				inst, err := conn.Connect(nil, m.opts...)
				if err != nil {
					return err
				}
				defer inst.Close()
				if err := inst.Outport("a").Send(1); err != nil {
					return err
				}
				_, err = inst.Inport("b").Recv()
				return err
			}
			if err := cycle(); err != nil { // warm the pool
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cycle(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkManyInstances keeps `live` instances attached to the shared
// runtime and fires them round-robin; the reported allocs/op pin the
// steady-state fire path at zero.
func BenchmarkManyInstances(b *testing.B) {
	prog := reo.MustCompile(churnProto)
	conn, err := prog.Connector("Churn")
	if err != nil {
		b.Fatal(err)
	}
	for _, live := range []int{100, 10000} {
		b.Run(fmt.Sprintf("live=%d", live), func(b *testing.B) {
			type lane struct {
				inst *reo.Instance
				out  reo.Outport
				in   reo.Inport
			}
			lanes := make([]lane, live)
			for i := range lanes {
				inst, err := conn.Connect(nil,
					reo.WithPartitioning(reo.PartitionRegions), reo.WithRuntime(nil))
				if err != nil {
					b.Fatal(err)
				}
				lanes[i] = lane{inst: inst, out: inst.Outport("a"), in: inst.Inport("b")}
			}
			defer func() {
				for _, l := range lanes {
					l.inst.Close()
				}
			}()
			for _, l := range lanes { // warm every instance
				if err := l.out.Send(0); err != nil {
					b.Fatal(err)
				}
				if _, err := l.in.Recv(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := lanes[i%live]
				if err := l.out.Send(i); err != nil {
					b.Fatal(err)
				}
				if _, err := l.in.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
