// BenchmarkBatchedThroughput measures items/s through the stage-coupled
// Fifo1 pipeline at batch sizes 1/8/64/512: the amortization curve of
// one engine-lock registration and one completion handshake per batch
// (plus fused dispatch on pure-flow transitions). batch=1 is the scalar
// Send/Recv path; the acceptance bar of the batched-port refactor is
// batch=64 sustaining at least 2x the scalar rate. The same workload
// backs `reoc bench-batch`, whose JSON rows the CI perf gate compares
// against BENCH_baseline.json.
package reo_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
)

func BenchmarkBatchedThroughput(b *testing.B) {
	const (
		stages = 4
		items  = 1 << 14
	)
	for _, batch := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			// Allocations here are per-run construction (connect, JIT
			// expansion, task goroutines); the steady-state firing path's
			// 0 allocs/op is asserted by TestBatchedSteadyStateAllocs.
			var moved int
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				res, err := bench.RunBatchThroughput(stages, items, batch)
				if err != nil {
					b.Fatal(err)
				}
				moved += res.Items
				elapsed += res.Elapsed
			}
			b.ReportMetric(float64(moved)/elapsed.Seconds(), "items/s")
		})
	}
}
