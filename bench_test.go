// Benchmarks regenerating the paper's tables and figures. One benchmark
// family per experiment of DESIGN.md:
//
//	BenchmarkFig12*            — E1: the eighteen-connector comparison
//	BenchmarkFig13*            — E2/E3: NPB CG and LU, orig vs reo
//	BenchmarkNPBAll            — E4: all seven programs, class S
//	BenchmarkExpansionBlowup   — E5: full expansion vs partitioning
//	BenchmarkStateCache        — E6: bounded state caches and policies
//	BenchmarkLabelSimplify     — E7: transition-label simplification
//
// The drivers report steps/s (global execution steps per second), the
// paper's connector metric; NPB benchmarks report wall time per run.
package reo_test

import (
	"fmt"
	"testing"
	"time"

	reo "repro"
	"repro/internal/bench"
	"repro/internal/connlib"
	"repro/internal/genlib/lane"
	"repro/internal/npb"
)

// window is the per-iteration measurement budget for step-rate benches.
const window = 50 * time.Millisecond

func stepRate(b *testing.B, d connlib.Def, n int, ap bench.Approach) {
	b.Helper()
	var totalSteps int64
	var totalTime time.Duration
	for i := 0; i < b.N; i++ {
		steps, failed, err := bench.StepRate(d, n, ap, window)
		if err != nil {
			b.Fatal(err)
		}
		if failed {
			b.Skipf("%s N=%d: %s approach fails to compile (expected for large automata)", d.Name, n, ap.Name)
		}
		totalSteps += steps
		totalTime += window
	}
	b.ReportMetric(float64(totalSteps)/totalTime.Seconds(), "steps/s")
}

// BenchmarkFig12 compares the existing (static per-N, simplified) and the
// new (parametrized + JIT) approach on the benchmark connectors. The full
// 18×{2..64} sweep is cmd/fig12; this bench covers a representative spread.
func BenchmarkFig12(b *testing.B) {
	for _, d := range connlib.All() {
		for _, n := range []int{2, 8, 32} {
			for _, ap := range []bench.Approach{bench.New(), bench.Existing(1 << 16)} {
				b.Run(fmt.Sprintf("%s/N=%d/%s", d.Name, n, ap.Name), func(b *testing.B) {
					stepRate(b, d, n, ap)
				})
			}
		}
	}
}

func benchNPB(b *testing.B, program string, class npb.Class, variant npb.Variant, slaves int) {
	b.Helper()
	prog, err := npb.ProgramByName(program)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := prog.Run(class, variant, slaves)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified {
			b.Fatalf("%s %s %v N=%d: not verified", program, class, variant, slaves)
		}
	}
}

// BenchmarkFig13CG regenerates the CG panels: orig vs reo run time over N.
func BenchmarkFig13CG(b *testing.B) {
	for _, class := range []npb.Class{npb.ClassS, npb.ClassW} {
		for _, n := range []int{2, 4, 8} {
			for _, v := range []npb.Variant{npb.Orig, npb.Reo} {
				b.Run(fmt.Sprintf("class=%s/N=%d/%s", class, n, v), func(b *testing.B) {
					benchNPB(b, "CG", class, v, n)
				})
			}
		}
	}
}

// BenchmarkFig13LU regenerates the LU panels (master–slaves + pipeline).
func BenchmarkFig13LU(b *testing.B) {
	for _, class := range []npb.Class{npb.ClassS, npb.ClassW} {
		for _, n := range []int{2, 4, 8} {
			for _, v := range []npb.Variant{npb.Orig, npb.Reo} {
				b.Run(fmt.Sprintf("class=%s/N=%d/%s", class, n, v), func(b *testing.B) {
					benchNPB(b, "LU", class, v, n)
				})
			}
		}
	}
}

// BenchmarkNPBAll covers the remaining five programs at class S, N=4
// (§V-C findings 1–2: small classes are overhead-dominated).
func BenchmarkNPBAll(b *testing.B) {
	for _, program := range []string{"EP", "IS", "MG", "FT", "BT", "SP"} {
		for _, v := range []npb.Variant{npb.Orig, npb.Reo} {
			b.Run(fmt.Sprintf("%s/%s", program, v), func(b *testing.B) {
				benchNPB(b, program, npb.ClassS, v, 4)
			})
		}
	}
}

// BenchmarkExpansionBlowup is E5: the master–slaves connector under the
// textbook full joint enumeration (exponentially many transitions per
// composite state as N grows — the paper's §V-C(3) non-termination cause)
// vs the partitioned engine (the [32]-style fix).
func BenchmarkExpansionBlowup(b *testing.B) {
	pingPong := func(b *testing.B, n int, opts npb.ReoCommOptions) {
		comm, err := npb.NewComm(npb.Reo, n, false, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer comm.Close()
		for i := 0; i < b.N; i++ {
			done := make(chan error, n)
			for s := 0; s < n; s++ {
				go func(s int) {
					v, err := comm.SlaveRecv(s)
					if err == nil {
						err = comm.SlaveSend(s, v)
					}
					done <- err
				}(s)
			}
			for s := 0; s < n; s++ {
				if err := comm.SendToSlave(s, s); err != nil {
					b.Fatal(err)
				}
			}
			for s := 0; s < n; s++ {
				if _, err := comm.RecvFromSlave(s); err != nil {
					b.Fatal(err)
				}
			}
			for s := 0; s < n; s++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	cases := []struct {
		name string
		opts []reo.ConnectOption
		maxN int
	}{
		{"connected", nil, 16},
		{"full-expansion", []reo.ConnectOption{reo.WithFullExpansion(true)}, 8},
		{"partitioned", []reo.ConnectOption{reo.WithPartitioning(reo.PartitionComponents)}, 16},
		{"full-expansion+partitioned", []reo.ConnectOption{reo.WithFullExpansion(true), reo.WithPartitioning(reo.PartitionComponents)}, 16},
	}
	for _, n := range []int{2, 4, 8, 16} {
		for _, c := range cases {
			if n > c.maxN {
				continue // full expansion without partitioning blows up
			}
			b.Run(fmt.Sprintf("N=%d/%s", n, c.name), func(b *testing.B) {
				pingPong(b, n, npb.ReoCommOptions{Opts: c.opts})
			})
		}
	}
}

// BenchmarkStateCache is E6: a connector whose composite state space is
// much larger than the working set, under bounded caches and the three
// eviction policies.
func BenchmarkStateCache(b *testing.B) {
	d, err := connlib.ByName("EarlyAsyncMerger")
	if err != nil {
		b.Fatal(err)
	}
	const n = 10
	cfgs := []struct {
		name string
		opts []reo.ConnectOption
	}{
		{"unbounded", nil},
		{"cache=64/lru", []reo.ConnectOption{reo.WithStateCache(64, reo.LRU)}},
		{"cache=64/fifo", []reo.ConnectOption{reo.WithStateCache(64, reo.FIFO)}},
		{"cache=64/random", []reo.ConnectOption{reo.WithStateCache(64, reo.Random)}},
		{"cache=8/lru", []reo.ConnectOption{reo.WithStateCache(8, reo.LRU)}},
	}
	for _, cfg := range cfgs {
		b.Run(cfg.name, func(b *testing.B) {
			ap := bench.Approach{Name: cfg.name, Opts: append([]reo.ConnectOption{reo.WithMode(reo.JIT)}, cfg.opts...)}
			stepRate(b, d, n, ap)
		})
	}
}

// BenchmarkLabelSimplify is E7: static-mode step rate with and without
// transition-label simplification on a connector with long data-flow
// chains through hidden vertices.
func BenchmarkLabelSimplify(b *testing.B) {
	d, err := connlib.ByName("OrderedMany2One")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		for _, simplify := range []bool{true, false} {
			b.Run(fmt.Sprintf("N=%d/simplify=%v", n, simplify), func(b *testing.B) {
				ap := bench.Approach{
					Name: fmt.Sprintf("static-simplify=%v", simplify),
					Opts: []reo.ConnectOption{
						reo.WithMode(reo.Static),
						reo.WithStaticSimplify(simplify),
					},
				}
				stepRate(b, d, n, ap)
			})
		}
	}
}

// BenchmarkFireSteady measures the steady-state firing path through the
// public API: a warmed JIT connector (every composite state expanded and
// every transition plan compiled) moving one value end to end. The engine
// fires through compiled transition plans with pooled operations, so this
// must report 0 allocs/op.
func BenchmarkFireSteady(b *testing.B) {
	prog := reo.MustCompile(`Lane(a;b) = Fifo1(a;b)`)
	conn := prog.MustConnector("Lane")
	inst, err := conn.Connect(nil, reo.WithMode(reo.JIT))
	if err != nil {
		b.Fatal(err)
	}
	defer inst.Close()
	out := inst.Outport("a")
	in := inst.Inport("b")
	// Warm: visit both composite states.
	if err := out.Send(0); err != nil {
		b.Fatal(err)
	}
	if _, err := in.Recv(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.Send(i); err != nil {
			b.Fatal(err)
		}
		if _, err := in.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(inst.GuardEvals())/float64(inst.Steps()), "guardevals/step")
}

// BenchmarkFireSteadyGenerated is BenchmarkFireSteady on the static
// code-generation backend: the identical Fifo1 lane, compiled ahead of
// time by `reoc gen` into internal/genlib/lane, moving one value end to
// end per iteration. The delta against BenchmarkFireSteady is the
// remaining interpretation tax of the engine's firing path (state-key
// packing, cache lookup, plan walking, bitset dispatch), which the
// generated backend replaces with straight-line control flow. Must also
// report 0 allocs/op.
func BenchmarkFireSteadyGenerated(b *testing.B) {
	inst, err := lane.New()
	if err != nil {
		b.Fatal(err)
	}
	defer inst.Close()
	out := inst.Outport("a")
	in := inst.Inport("b")
	if err := out.Send(0); err != nil {
		b.Fatal(err)
	}
	if _, err := in.Recv(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.Send(i); err != nil {
			b.Fatal(err)
		}
		if _, err := in.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(inst.GuardEvals())/float64(inst.Steps()), "guardevals/step")
}

// BenchmarkCompileOnce quantifies the headline workflow difference: the
// existing approach compiles once per N, the new approach once in total
// (Table/§V-B setup: "with the existing compiler, we needed to compile
// the connector six times ... with the new compiler, only one").
func BenchmarkCompileOnce(b *testing.B) {
	d, err := connlib.ByName("OrderedMany2One")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("new/compile-template", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Compile(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("new/connect/N=%d", n), func(b *testing.B) {
			conn, err := d.Compile()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				inst, err := conn.Connect(d.Lengths(n))
				if err != nil {
					b.Fatal(err)
				}
				inst.Close()
			}
		})
		b.Run(fmt.Sprintf("existing/compile+connect/N=%d", n), func(b *testing.B) {
			conn, err := d.Compile()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				inst, err := conn.Connect(d.Lengths(n), reo.WithMode(reo.Static), reo.WithMaxStates(1<<18))
				if err != nil {
					b.Fatal(err)
				}
				inst.Close()
			}
		})
	}
}
