package reo_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	reo "repro"
)

const tick = 50 * time.Millisecond

func within(t *testing.T, d time.Duration, what string, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { defer close(done); f() }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("timeout waiting for %s", what)
	}
}

// srcEx11 is Fig. 8 of the paper: the running example for exactly two
// senders, in both monolithic (a) and composite (b) forms.
const srcEx11 = `
ConnectorEx11a(tl1,tl2;hd1,hd2) =
    Replicator(tl1;prev1,v1) mult Replicator(tl2;prev2,v2)
    mult Fifo1(v1;w1) mult Fifo1(v2;w2)
    mult Replicator(w1;next1,hd1) mult Replicator(w2;next2,hd2)
    mult Seq(next1,prev2;) mult Seq(prev1,next2;)

X(tl;prev,next,hd) =
    Replicator(tl;prev,v) mult Fifo1(v;w) mult Replicator(w;next,hd)

ConnectorEx11b(tl1,tl2;hd1,hd2) =
    X(tl1;prev1,next1,hd1) mult X(tl2;prev2,next2,hd2)
    mult Seq(next1,prev2;) mult Seq(prev1,next2;)
`

// srcEx11N is Fig. 9: the parametrized version for N senders.
const srcEx11N = `
X(tl;prev,next,hd) =
    Replicator(tl;prev,v) mult Fifo1(v;w) mult Replicator(w;next,hd)

ConnectorEx11N(tl[];hd[]) =
    if (#tl == 1) {
        Fifo1(tl[1];hd[1])
    } else {
        prod (i:1..#tl) X(tl[i];prev[i],next[i],hd[i])
        mult prod (i:1..#tl-1) Seq(next[i],prev[i+1];)
        mult Seq(prev[1],next[#tl];)
    }
`

func allModes() []reo.Mode { return []reo.Mode{reo.JIT, reo.AOT, reo.Static} }

// checkOrdered drives an ordered many-to-one connector: N senders, one
// receiver reading from hd[1..N]; sender i's k-th message must arrive
// in position i of round k.
func checkOrderedProtocol(t *testing.T, inst *reo.Instance, n, rounds int, tails string, heads string) {
	t.Helper()
	outs := inst.Outports(tails)
	ins := inst.Inports(heads)
	if len(outs) != n || len(ins) != n {
		t.Fatalf("ports: %d outs, %d ins; want %d each", len(outs), len(ins), n)
	}
	within(t, 30*time.Second, "ordered protocol", func() {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					if err := outs[i].Send(fmt.Sprintf("%d/%d", i, r)); err != nil {
						t.Errorf("sender %d: %v", i, err)
						return
					}
				}
			}(i)
		}
		for r := 0; r < rounds; r++ {
			for i := 0; i < n; i++ {
				v, err := ins[i].Recv()
				if err != nil {
					t.Fatalf("recv %d/%d: %v", i, r, err)
				}
				want := fmt.Sprintf("%d/%d", i, r)
				if v != want {
					t.Fatalf("recv = %v, want %s", v, want)
				}
			}
		}
		wg.Wait()
	})
}

func TestExample1TwoSenders(t *testing.T) {
	prog := reo.MustCompile(srcEx11)
	for _, def := range []string{"ConnectorEx11a", "ConnectorEx11b"} {
		for _, mode := range allModes() {
			t.Run(fmt.Sprintf("%s/%s", def, mode), func(t *testing.T) {
				conn, err := prog.Connector(def)
				if err != nil {
					t.Fatal(err)
				}
				inst, err := conn.Connect(nil, reo.WithMode(mode))
				if err != nil {
					t.Fatal(err)
				}
				defer inst.Close()

				within(t, 20*time.Second, "two-sender protocol", func() {
					aSent := make(chan struct{})
					bSent := make(chan struct{})
					go func() { inst.Outport("tl1").Send("A"); close(aSent) }()
					<-aSent
					go func() { inst.Outport("tl2").Send("B"); close(bSent) }()
					select {
					case <-bSent:
						t.Error("B completed before C received A's message")
					case <-time.After(tick):
					}
					v, err := inst.Inport("hd1").Recv()
					if err != nil || v != "A" {
						t.Errorf("first recv = %v, %v", v, err)
					}
					<-bSent
					v, err = inst.Inport("hd2").Recv()
					if err != nil || v != "B" {
						t.Errorf("second recv = %v, %v", v, err)
					}
				})
			})
		}
	}
}

func TestExample8Parametrized(t *testing.T) {
	prog := reo.MustCompile(srcEx11N)
	conn, err := prog.Connector("ConnectorEx11N")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, mode := range allModes() {
			t.Run(fmt.Sprintf("N=%d/%s", n, mode), func(t *testing.T) {
				inst, err := conn.Connect(map[string]int{"tl": n, "hd": n}, reo.WithMode(mode), reo.WithSeed(int64(n)))
				if err != nil {
					t.Fatal(err)
				}
				defer inst.Close()
				checkOrderedProtocol(t, inst, n, 3, "tl", "hd")
			})
		}
	}
}

// TestFlattenEquivalence mirrors Example 9: flattening ConnectorEx11b
// yields ConnectorEx11a up to associativity/commutativity — both must
// behave identically; here we check their instance shapes agree.
func TestFlattenEquivalence(t *testing.T) {
	prog := reo.MustCompile(srcEx11)
	a, err := prog.Connector("ConnectorEx11a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.Connector("ConnectorEx11b")
	if err != nil {
		t.Fatal(err)
	}
	ia, err := a.Connect(nil, reo.WithMode(reo.Static))
	if err != nil {
		t.Fatal(err)
	}
	defer ia.Close()
	ib, err := b.Connect(nil, reo.WithMode(reo.Static))
	if err != nil {
		t.Fatal(err)
	}
	defer ib.Close()
	sa, sb := ia.Automata()[0], ib.Automata()[0]
	if sa.NumStates() != sb.NumStates() {
		t.Errorf("states: a=%d b=%d", sa.NumStates(), sb.NumStates())
	}
	if sa.NumTransitions() != sb.NumTransitions() {
		t.Errorf("transitions: a=%d b=%d", sa.NumTransitions(), sb.NumTransitions())
	}
}

func TestParametrizedSingleCompile(t *testing.T) {
	// One compilation serves all N — the headline capability. The same
	// template must instantiate at several N without recompiling.
	prog := reo.MustCompile(srcEx11N)
	conn, err := prog.Connector("ConnectorEx11N")
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 6; n++ {
		inst, err := conn.Connect(map[string]int{"tl": n, "hd": n})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if got := len(inst.Outports("tl")); got != n {
			t.Errorf("N=%d: %d outports", n, got)
		}
		inst.Close()
	}
}

func TestMergerDSL(t *testing.T) {
	prog := reo.MustCompile(`
MergeAll(in[];out) = prod (i:1..#in) Sync(in[i];out)
`)
	conn, err := prog.Connector("MergeAll")
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			inst, err := conn.Connect(map[string]int{"in": n}, reo.WithMode(mode), reo.WithSeed(3))
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			outs := inst.Outports("in")
			within(t, 20*time.Second, "implicit merge", func() {
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) { defer wg.Done(); outs[i].Send(i) }(i)
				}
				seen := map[any]bool{}
				for i := 0; i < n; i++ {
					v, err := inst.Inport("out").Recv()
					if err != nil {
						t.Errorf("recv: %v", err)
						return
					}
					if seen[v] {
						t.Errorf("duplicate %v", v)
					}
					seen[v] = true
				}
				wg.Wait()
			})
		})
	}
}

func TestBuiltinMergerRangeArg(t *testing.T) {
	prog := reo.MustCompile(`
MergeAll(in[];out) = Merger(in[1..#in];out)
`)
	conn, err := prog.Connector("MergeAll")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(map[string]int{"in": 4}, reo.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	outs := inst.Outports("in")
	within(t, 10*time.Second, "variadic merger", func() {
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); outs[i].Send(i * 10) }(i)
		}
		sum := 0
		for i := 0; i < 4; i++ {
			v, err := inst.Inport("out").Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			sum += v.(int)
		}
		if sum != 60 {
			t.Errorf("sum = %d, want 60", sum)
		}
		wg.Wait()
	})
}

func TestFilterTransformerFuncs(t *testing.T) {
	prog := reo.MustCompile(`
EvenDoubler(a;b) = Filter.even(a;m) mult Transformer.double(m;b)
`, reo.WithFuncs(reo.Funcs{
		Filters:      map[string]func(any) bool{"even": func(v any) bool { return v.(int)%2 == 0 }},
		Transformers: map[string]func(any) any{"double": func(v any) any { return v.(int) * 2 }},
	}))
	conn, err := prog.Connector("EvenDoubler")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			inst, err := conn.Connect(nil, reo.WithMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			within(t, 10*time.Second, "filter+transform", func() {
				go func() {
					for i := 1; i <= 4; i++ {
						inst.Outport("a").Send(i)
					}
				}()
				v1, _ := inst.Inport("b").Recv()
				v2, _ := inst.Inport("b").Recv()
				if v1 != 4 || v2 != 8 {
					t.Errorf("got %v, %v; want 4, 8", v1, v2)
				}
			})
		})
	}
}

func TestMissingFuncError(t *testing.T) {
	prog := reo.MustCompile(`F(a;b) = Filter.nope(a;b)`)
	_, err := prog.Connector("F")
	if err == nil {
		t.Fatal("expected error for unregistered filter")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown connector", `A(a;b) = Nope(a;b)`},
		{"recursive", `A(a;b) = A(a;b)`},
		{"mutually recursive", `A(a;b) = B(a;b)  B(a;b) = A(a;b)`},
		{"dup def", `A(a;b) = Sync(a;b)  A(a;b) = Sync(a;b)`},
		{"bad arity", `A(a;b) = Sync(a,a;b)`},
		{"scalar indexed", `A(a;b) = Sync(a[1];b)`},
		{"unknown var", `A(a[];b) = prod (i:1..#a) Sync(a[j];b)`},
		{"len of scalar", `A(a;b) = prod (i:1..#a) Sync(a;b)`},
		{"shadow primitive", `Sync(a;b) = Fifo1(a;b)`},
		{"array mixing", `A(a[];b) = Sync(m;b) mult Sync(a[1];m[2])`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := reo.Compile(tc.src); err == nil {
				t.Errorf("no error for %q", tc.src)
			}
		})
	}
}

func TestConnectErrors(t *testing.T) {
	prog := reo.MustCompile(srcEx11N)
	conn, err := prog.Connector("ConnectorEx11N")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Connect(nil); err == nil {
		t.Error("missing lengths accepted")
	}
	if _, err := conn.Connect(map[string]int{"tl": 0, "hd": 0}); err == nil {
		t.Error("zero length accepted (arrays are nonempty)")
	}
	if _, err := conn.Connect(map[string]int{"tl": 2, "hd": 2, "zz": 1}); err == nil {
		t.Error("unknown length key accepted")
	}
}

func TestStaticFailsOnHugeAutomaton(t *testing.T) {
	// N independent fifo pairs: 2^N composite states. Static must fail
	// at N where the new approach still connects instantly — the
	// dotted-bar cases of Fig. 12.
	prog := reo.MustCompile(`
Buffers(in[];out[]) = prod (i:1..#in) Fifo1(in[i];out[i])
`)
	conn, err := prog.Connector("Buffers")
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Connect(map[string]int{"in": 24, "out": 24},
		reo.WithMode(reo.Static), reo.WithMaxStates(1<<16))
	if err == nil {
		t.Fatal("static mode built a 2^24-state automaton?")
	}
	inst, err := conn.Connect(map[string]int{"in": 24, "out": 24}, reo.WithMode(reo.JIT))
	if err != nil {
		t.Fatalf("JIT should connect: %v", err)
	}
	inst.Close()
}

func TestPartitioningSplitsIndependent(t *testing.T) {
	prog := reo.MustCompile(`
Buffers(in[];out[]) = prod (i:1..#in) Fifo1(in[i];out[i])
`)
	conn, err := prog.Connector("Buffers")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(map[string]int{"in": 8, "out": 8}, reo.WithPartitioning(reo.PartitionComponents))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Partitions() != 8 {
		t.Errorf("partitions = %d, want 8", inst.Partitions())
	}
	outs := inst.Outports("in")
	ins := inst.Inports("out")
	within(t, 10*time.Second, "partitioned round", func() {
		for i := 0; i < 8; i++ {
			outs[i].Send(i)
		}
		for i := 0; i < 8; i++ {
			v, err := ins[i].Recv()
			if err != nil || v != i {
				t.Errorf("recv %d = %v, %v", i, v, err)
			}
		}
	})
}

func TestModesObservablyEquivalent(t *testing.T) {
	// A deterministic pipeline: all modes must deliver the same stream.
	prog := reo.MustCompile(`
Pipe(a;b) = Fifo1(a;m1) mult Fifo1(m1;m2) mult Fifo1(m2;b)
`)
	conn, err := prog.Connector("Pipe")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			inst, err := conn.Connect(nil, reo.WithMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			within(t, 20*time.Second, "pipeline stream", func() {
				go func() {
					for i := 0; i < 50; i++ {
						inst.Outport("a").Send(i)
					}
				}()
				for i := 0; i < 50; i++ {
					v, err := inst.Inport("b").Recv()
					if err != nil || v != i {
						t.Fatalf("recv %d = %v, %v", i, v, err)
					}
				}
			})
		})
	}
}

func TestBoundedStateCacheEndToEnd(t *testing.T) {
	prog := reo.MustCompile(`
Buffers(in[];out[]) = prod (i:1..#in) Fifo1(in[i];out[i])
`)
	conn, err := prog.Connector("Buffers")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(map[string]int{"in": 6, "out": 6},
		reo.WithStateCache(4, reo.LRU), reo.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	outs := inst.Outports("in")
	ins := inst.Inports("out")
	within(t, 30*time.Second, "bounded-cache traffic", func() {
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for r := 0; r < 30; r++ {
					outs[i].Send(r)
				}
			}(i)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for r := 0; r < 30; r++ {
					v, err := ins[i].Recv()
					if err != nil || v != r {
						t.Errorf("lane %d: recv %v, %v; want %d", i, v, err, r)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	})
}
