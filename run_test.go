package reo_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	reo "repro"
)

// srcMain mirrors Fig. 9's main: N producers, one consumer, ordered
// delivery through ConnectorEx11N.
const srcMain = srcEx11N + `
main(N) = ConnectorEx11N(out[1..N];in[1..N]) among
    forall (i:1..N) Tasks.pro(out[i]) and Tasks.con(in[1..N])
`

func TestRunMainExample8(t *testing.T) {
	prog := reo.MustCompile(srcMain)
	const n = 4
	const rounds = 3

	var mu sync.Mutex
	var received []string

	res, err := prog.Run(map[string]int{"N": n}, reo.Tasks{
		"Tasks.pro": func(tp reo.TaskPorts) error {
			if len(tp.Outs) != 1 {
				return fmt.Errorf("producer wants 1 outport, got %d", len(tp.Outs))
			}
			for r := 0; r < rounds; r++ {
				if err := tp.Outs[0].Send(fmt.Sprintf("%s/%d", tp.Outs[0].Name(), r)); err != nil {
					return err
				}
			}
			return nil
		},
		"Tasks.con": func(tp reo.TaskPorts) error {
			if len(tp.Ins) != n {
				return fmt.Errorf("consumer wants %d inports, got %d", n, len(tp.Ins))
			}
			for r := 0; r < rounds; r++ {
				for i := 0; i < n; i++ {
					v, err := tp.Ins[i].Recv()
					if err != nil {
						return err
					}
					mu.Lock()
					received = append(received, v.(string))
					mu.Unlock()
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskCount != n+1 {
		t.Errorf("task count = %d, want %d", res.TaskCount, n+1)
	}
	if res.Steps == 0 {
		t.Error("no global steps recorded")
	}
	if len(received) != n*rounds {
		t.Fatalf("received %d messages, want %d", len(received), n*rounds)
	}
	// Ordered protocol: within each round, producer order 1..N. Port
	// names are the connector-side vertex names (tl[i]).
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			want := fmt.Sprintf("tl[%d]/%d", i+1, r)
			if received[r*n+i] != want {
				t.Errorf("position %d = %q, want %q", r*n+i, received[r*n+i], want)
			}
		}
	}
}

func TestRunMainErrors(t *testing.T) {
	prog := reo.MustCompile(srcMain)
	if _, err := prog.Run(nil, reo.Tasks{}); err == nil {
		t.Error("missing main parameter accepted")
	}
	if _, err := prog.Run(map[string]int{"N": 2}, reo.Tasks{}); err == nil {
		t.Error("missing task registration accepted")
	}
	noMain := reo.MustCompile(`A(a;b) = Sync(a;b)`)
	if _, err := noMain.Run(nil, reo.Tasks{}); err == nil {
		t.Error("run without main accepted")
	}
}

// TestRunValidatesTaskNamesUpfront: a typo in any task name — even one
// nested in a forall — must fail before anything runs, with an error
// naming the registered tasks.
func TestRunValidatesTaskNamesUpfront(t *testing.T) {
	prog := reo.MustCompile(srcMain)
	started := false
	_, err := prog.Run(map[string]int{"N": 2}, reo.Tasks{
		"Tasks.pro": func(tp reo.TaskPorts) error { started = true; return nil },
		"Tasks.wrong": func(tp reo.TaskPorts) error {
			started = true
			return nil
		},
	})
	if err == nil {
		t.Fatal("unregistered task name accepted")
	}
	if started {
		t.Error("tasks were spawned despite an invalid task name")
	}
	for _, want := range []string{`"Tasks.con"`, "Tasks.pro", "Tasks.wrong"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	if _, err := prog.Run(map[string]int{"N": 2}, reo.Tasks{}); err == nil ||
		!strings.Contains(err.Error(), "registered: none") {
		t.Errorf("empty registry error = %v, want mention of no registered tasks", err)
	}
}

func TestRunTaskErrorPropagates(t *testing.T) {
	prog := reo.MustCompile(`
P(a;b) = Fifo1(a;b)
main() = P(x;y) among Tasks.bad(x) and Tasks.ok(y)
`)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := prog.Run(nil, reo.Tasks{
			"Tasks.bad": func(tp reo.TaskPorts) error { return fmt.Errorf("boom") },
			"Tasks.ok": func(tp reo.TaskPorts) error {
				tp.Ins[0].Recv() // fails when the run closes the connector
				return nil
			},
		})
		if err == nil {
			t.Error("task error not propagated")
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not terminate after task error")
	}
}
